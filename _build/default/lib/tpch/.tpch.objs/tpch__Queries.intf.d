lib/tpch/queries.mli:
