lib/relalg/summary.mli: Expr Format Plan Pred
