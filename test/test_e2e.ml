(* End-to-end tests: full sessions over generated TPC-H data.

   The central invariant is semantics preservation (§3.2): for every
   query, the compliant plan must return exactly the rows the
   traditional cost-only plan returns — masking and aggregation pushdown
   may change *where* things run, never *what* the query computes. *)

open Relalg

let cat = Tpch.Schema.catalog ()
let data = Tpch.Datagen.generate ~sf:0.003 ()
let db = Tpch.Datagen.load ~cat data

let session policies_texts =
  let s = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies s policies_texts;
  Cgqp.attach_database s db;
  s

let sorted_rows rel =
  Storage.Relation.rows rel |> Array.to_list
  |> List.map Array.to_list
  |> List.sort (List.compare Value.compare)

(* Round floats so plans with different evaluation orders compare
   equal. *)
let canon_rows rows =
  List.map
    (List.map (fun v ->
         match v with
         | Value.Float f -> Value.Float (Float.round (f *. 1e4) /. 1e4)
         | _ -> v))
    rows

let run_mode s mode sql =
  Cgqp.set_mode s mode;
  match Cgqp.run s sql with
  | Ok r -> r
  | Error e -> Alcotest.failf "execution failed: %s" (Cgqp.error_to_string e)

let test_semantics_preserved () =
  List.iter
    (fun (set, queries) ->
      let s = session (Tpch.Policies.texts set) in
      List.iter
        (fun (name, sql) ->
          let trad = run_mode s Optimizer.Memo.Traditional sql in
          let comp = run_mode s Optimizer.Memo.Compliant sql in
          let label =
            Printf.sprintf "%s under %s" name (Tpch.Policies.set_name_to_string set)
          in
          Alcotest.(check int) (label ^ ": cardinality")
            (Storage.Relation.cardinality trad.Cgqp.relation)
            (Storage.Relation.cardinality comp.Cgqp.relation);
          Alcotest.(check bool) (label ^ ": identical rows") true
            (canon_rows (sorted_rows trad.Cgqp.relation)
            = canon_rows (sorted_rows comp.Cgqp.relation)))
        queries)
    [ (Tpch.Policies.T, Tpch.Queries.all_extended); (Tpch.Policies.CRA, Tpch.Queries.all) ]

(* Independent oracle: evaluate the (normalized) logical plan directly
   on one site, bypassing the memo, traits and site selection entirely.
   Equi-joins use local hash rendering so the oracle stays tractable;
   everything else is evaluated literally. *)
let rec naive_physical ~table_cols (plan : Plan.t) : Exec.Pplan.t =
  let mk node children =
    { Exec.Pplan.node; loc = "oracle"; children;
      est = { Exec.Pplan.est_rows = 0.; est_width = 0. } }
  in
  match plan with
  | Plan.Scan { table; alias } ->
    mk (Exec.Pplan.Table_scan { table; alias; partition = 0 }) []
  | Plan.Select (p, i) -> mk (Exec.Pplan.Filter p) [ naive_physical ~table_cols i ]
  | Plan.Project (items, i) ->
    mk (Exec.Pplan.Project items) [ naive_physical ~table_cols i ]
  | Plan.Join (p, l, r) ->
    let attr_set pl =
      List.fold_left
        (fun s a -> Attr.Set.add a s)
        Attr.Set.empty
        (Plan.output_cols ~table_cols pl)
    in
    let lset = attr_set l and rset = attr_set r in
    let pairs, residual =
      List.fold_left
        (fun (pairs, residual) c ->
          match c with
          | Pred.Atom (Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b))
            when Attr.Set.mem a lset && Attr.Set.mem b rset ->
            ((a, b) :: pairs, residual)
          | Pred.Atom (Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b))
            when Attr.Set.mem b lset && Attr.Set.mem a rset ->
            ((b, a) :: pairs, residual)
          | c -> (pairs, c :: residual))
        ([], []) (Pred.conjuncts p)
    in
    let node =
      if pairs = [] then Exec.Pplan.Nl_join p
      else Exec.Pplan.Hash_join { keys = pairs; residual = Pred.conj_all residual }
    in
    mk node [ naive_physical ~table_cols l; naive_physical ~table_cols r ]
  | Plan.Aggregate { keys; aggs; input } ->
    mk (Exec.Pplan.Hash_agg { keys; aggs }) [ naive_physical ~table_cols input ]
  | Plan.Union xs -> mk Exec.Pplan.Union_all (List.map (naive_physical ~table_cols) xs)

let test_against_naive_oracle () =
  let s = session Tpch.Policies.set_t in
  let oracle_net = Catalog.Network.uniform ~locations:[ "oracle" ] ~alpha:0. ~beta:0. in
  let table_cols = Catalog.table_cols cat in
  List.iter
    (fun (name, sql) ->
      let optimized = run_mode s Optimizer.Memo.Compliant sql in
      let lplan =
        match Cgqp.plan_of_sql s sql with
        | Ok p -> p
        | Error e -> Alcotest.failf "bind failed: %s" (Cgqp.error_to_string e)
      in
      (* pushdown only, so joins get their equi conditions; no memo *)
      let pushed = Optimizer.Normalize.pushdown ~table_cols lplan in
      let naive =
        (Exec.Interp.run ~network:oracle_net ~db ~table_cols
           (naive_physical ~table_cols pushed))
          .Exec.Interp.relation
      in
      Alcotest.(check bool) (name ^ " matches the naive oracle") true
        (canon_rows (sorted_rows naive)
        = canon_rows (sorted_rows optimized.Cgqp.relation)))
    Tpch.Queries.all_extended

(* --- property: random small plans agree with the naive oracle ---

   A qcheck generator for SPJG plans over the TPC-H schema: a join
   chain along foreign keys, a random conjunction/disjunction of
   range atoms, then either a projection or a group-by. Each plan is
   optimized (caches and branch-and-bound at their defaults) and
   executed; the result must match the naive one-site interpretation
   of the same logical plan. This fuzzes exactly the machinery the
   hot-path work touches: interned predicates, the verdict cache and
   the pruned memo. *)

(* join chains: scans, equi-join pairs linking scan i+1 into the
   accumulated tree, and the integer columns usable in filters *)
let chains =
  [
    ([ ("nation", "n") ], [], [ ("n", "nationkey"); ("n", "regionkey") ]);
    ( [ ("region", "r"); ("nation", "n") ],
      [ (("r", "regionkey"), ("n", "regionkey")) ],
      [ ("r", "regionkey"); ("n", "nationkey") ] );
    ( [ ("nation", "n"); ("customer", "c") ],
      [ (("n", "nationkey"), ("c", "nationkey")) ],
      [ ("n", "regionkey"); ("c", "custkey") ] );
    ( [ ("customer", "c"); ("orders", "o") ],
      [ (("c", "custkey"), ("o", "custkey")) ],
      [ ("c", "nationkey"); ("o", "orderkey") ] );
    ( [ ("orders", "o"); ("lineitem", "l") ],
      [ (("o", "orderkey"), ("l", "orderkey")) ],
      [ ("o", "custkey"); ("l", "quantity"); ("l", "suppkey") ] );
    ( [ ("nation", "n"); ("supplier", "s") ],
      [ (("n", "nationkey"), ("s", "nationkey")) ],
      [ ("n", "regionkey"); ("s", "suppkey") ] );
    ( [ ("region", "r"); ("nation", "n"); ("customer", "c") ],
      [ (("r", "regionkey"), ("n", "regionkey")); (("n", "nationkey"), ("c", "nationkey")) ],
      [ ("r", "regionkey"); ("c", "custkey"); ("c", "nationkey") ] );
    ( [ ("customer", "c"); ("orders", "o"); ("lineitem", "l") ],
      [ (("c", "custkey"), ("o", "custkey")); (("o", "orderkey"), ("l", "orderkey")) ],
      [ ("c", "nationkey"); ("o", "orderkey"); ("l", "quantity") ] );
  ]

let qattr (rel, name) = Attr.make ~rel ~name
let qcol rc = Expr.Col (qattr rc)

let gen_plan =
  let open QCheck.Gen in
  let* scans, joins, cols = oneofl chains in
  let base =
    match scans with
    | [] -> assert false
    | (table, alias) :: rest ->
      List.fold_left2
        (fun acc (table, alias) (a, b) ->
          Plan.Join
            ( Pred.Atom (Pred.Cmp (Pred.Eq, qcol a, qcol b)),
              acc,
              Plan.Scan { table; alias } ))
        (Plan.Scan { table; alias })
        rest joins
  in
  let gen_atom =
    let* rc = oneofl cols in
    let* c = oneofl [ Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge; Pred.Ne ] in
    let* v = int_range 0 300 in
    return (Pred.Atom (Pred.Cmp (c, qcol rc, Expr.Const (Value.Int v))))
  in
  let* filtered =
    frequency
      [
        (1, return base);
        (2, map (fun p -> Plan.Select (p, base)) gen_atom);
        ( 1,
          map2 (fun p q -> Plan.Select (Pred.And (p, q), base)) gen_atom gen_atom );
        ( 1,
          map2 (fun p q -> Plan.Select (Pred.Or (p, q), base)) gen_atom gen_atom );
      ]
  in
  frequency
    [
      ( 2,
        (* projection of a random nonempty column subset *)
        let* n = int_range 1 (List.length cols) in
        let sub = List.filteri (fun i _ -> i < n) cols in
        return (Plan.Project (List.map (fun rc -> (qcol rc, qattr rc)) sub, filtered)) );
      ( 2,
        (* group one column by another *)
        let* key = oneofl cols in
        let* arg = oneofl cols in
        let* fn = oneofl [ Expr.Sum; Expr.Count; Expr.Min; Expr.Max ] in
        return
          (Plan.Aggregate
             {
               keys = [ qattr key ];
               aggs = [ { Expr.fn; arg = qcol arg; alias = "v" } ];
               input = filtered;
             }) );
    ]

let prop_random_plan_equivalence =
  let policies = Policy.Pcatalog.of_texts cat Tpch.Policies.unrestricted in
  let table_cols = Catalog.table_cols cat in
  let oracle_net = Catalog.Network.uniform ~locations:[ "oracle" ] ~alpha:0. ~beta:0. in
  QCheck.Test.make ~name:"random plans: optimized = naive oracle" ~count:80
    (QCheck.make gen_plan)
    (fun lplan ->
      let optimized =
        match Optimizer.Planner.optimize ~cat ~policies lplan with
        | Optimizer.Planner.Planned p ->
          (Exec.Interp.run ~network:(Catalog.network cat) ~db ~table_cols
             p.Optimizer.Planner.plan)
            .Exec.Interp.relation
        | Optimizer.Planner.Rejected r ->
          QCheck.Test.fail_reportf "unrestricted plan rejected: %s" r
      in
      let pushed = Optimizer.Normalize.pushdown ~table_cols lplan in
      let naive =
        (Exec.Interp.run ~network:oracle_net ~db ~table_cols
           (naive_physical ~table_cols pushed))
          .Exec.Interp.relation
      in
      canon_rows (sorted_rows optimized) = canon_rows (sorted_rows naive))

let test_carco_example_values () =
  (* hand-checkable CarCo-style instance: 2 customers, 3 orders, 4
     supply lines *)
  let open Catalog.Table_def in
  let coli c = column c Value.Tint in
  let cols c = column c Value.Tstr in
  let cat =
    Catalog.make
      ~network:(Catalog.Network.uniform ~locations:[ "n"; "e"; "a" ] ~alpha:1. ~beta:1e-6)
      [
        ( make ~name:"customer" ~key:[ "custkey" ] ~row_count:2 ()
            ~columns:[ coli "custkey"; cols "name"; coli "acctbal" ],
          [ { Catalog.db = "dn"; location = "n"; fraction = 1.0 } ] );
        ( make ~name:"orders" ~key:[ "ordkey" ] ~row_count:3 ()
            ~columns:[ coli "custkey"; coli "ordkey"; coli "totprice" ],
          [ { Catalog.db = "de"; location = "e"; fraction = 1.0 } ] );
        ( make ~name:"supply" ~key:[ "ordkey"; "quantity" ] ~row_count:4 ()
            ~columns:[ coli "ordkey"; coli "quantity" ],
          [ { Catalog.db = "da"; location = "a"; fraction = 1.0 } ] );
      ]
  in
  let db = Storage.Database.create () in
  let add name rows =
    let schema = List.map (fun c -> Attr.make ~rel:name ~name:c) (Catalog.table_cols cat name) in
    Storage.Database.add db ~table:name
      (Storage.Relation.make ~schema ~rows:(Array.of_list rows))
  in
  let i n = Value.Int n and s v = Value.Str v in
  add "customer" [ [| i 1; s "ann"; i 100 |]; [| i 2; s "bob"; i 200 |] ];
  add "orders" [ [| i 1; i 10; i 5 |]; [| i 1; i 11; i 7 |]; [| i 2; i 12; i 11 |] ];
  add "supply"
    [ [| i 10; i 2 |]; [| i 10; i 3 |]; [| i 11; i 4 |]; [| i 12; i 5 |] ];
  let sess = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies sess
    [
      "ship custkey, name from customer to e, a";
      "ship custkey, ordkey from orders to *";
      "ship totprice from orders to e";
      "ship quantity as aggregates sum from supply to e group by ordkey";
    ];
  Cgqp.attach_database sess db;
  let r =
    match
      Cgqp.run sess
        "SELECT c.name, SUM(o.totprice) AS p, SUM(s.quantity) AS q \
         FROM customer c, orders o, supply s \
         WHERE c.custkey = o.custkey AND o.ordkey = s.ordkey GROUP BY c.name"
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "run failed: %s" (Cgqp.error_to_string e)
  in
  (* expected (duplicate-sensitive!):
     ann: order 10 (price 5, 2 lines), order 11 (price 7, 1 line)
          p = 5*2 + 7*1 = 17, q = 2+3+4 = 9
     bob: order 12 (price 11, 1 line): p = 11, q = 5 *)
  let rows = sorted_rows r.Cgqp.relation in
  Alcotest.(check bool) "ann row" true
    (List.mem [ Value.Str "ann"; Value.Int 17; Value.Int 9 ] rows);
  Alcotest.(check bool) "bob row" true
    (List.mem [ Value.Str "bob"; Value.Int 11; Value.Int 5 ] rows);
  (* and the plan must not move raw supply or raw totprice illegally *)
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> Fmt.str "%a" Optimizer.Checker.pp_violation v)
       r.Cgqp.planned.Optimizer.Planner.violations)

let test_partitioned_execution () =
  let pcat =
    Tpch.Schema.catalog ~partition_tables:[ "customer"; "orders" ] ~partition_count:3 ()
  in
  let pdb = Tpch.Datagen.load ~cat:pcat data in
  let psess = Cgqp.create ~catalog:pcat () in
  Cgqp.add_policies psess
    (Tpch.Workload.gen_expressions ~seed:11 ~template:Tpch.Policies.CRA ~n:10 ());
  Cgqp.attach_database psess pdb;
  let r = run_mode psess Optimizer.Memo.Compliant Tpch.Queries.q3 in
  (* the same query over the unpartitioned database must agree *)
  let s = session Tpch.Policies.set_cra in
  let r0 = run_mode s Optimizer.Memo.Compliant Tpch.Queries.q3 in
  Alcotest.(check int) "same cardinality"
    (Storage.Relation.cardinality r0.Cgqp.relation)
    (Storage.Relation.cardinality r.Cgqp.relation);
  Alcotest.(check bool) "same rows" true
    (canon_rows (sorted_rows r0.Cgqp.relation) = canon_rows (sorted_rows r.Cgqp.relation))

let test_error_paths () =
  let s = session Tpch.Policies.set_cra in
  (match Cgqp.run s "SELECT FROM nothing" with
  | Error (`Parse _) -> ()
  | _ -> Alcotest.fail "parse error expected");
  (match Cgqp.run s "SELECT nosuchcol FROM customer" with
  | Error (`Bind _) -> ()
  | _ -> Alcotest.fail "bind error expected");
  (match Cgqp.run s "SELECT x.y FROM nosuchtable x" with
  | Error (`Bind _) -> ()
  | _ -> Alcotest.fail "unknown table expected");
  (* policies that cannot be parsed *)
  (match Cgqp.add_policies s [ "ship nothing sensible" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "bad policy must be rejected")

let test_rejection_path () =
  let s = Cgqp.create ~catalog:cat () in
  Cgqp.attach_database s db;
  (* no policies: cross-site queries are rejected at planning time *)
  match Cgqp.run s Tpch.Queries.q3 with
  | Error (`Rejected _) -> ()
  | Ok _ -> Alcotest.fail "must reject cross-site query without policies"
  | Error e -> Alcotest.failf "wrong error: %s" (Cgqp.error_to_string e)

let test_is_legal () =
  let s = session Tpch.Policies.set_cra in
  Alcotest.(check bool) "q3 legal" true (Cgqp.is_legal s Tpch.Queries.q3);
  let s0 = Cgqp.create ~catalog:cat () in
  Alcotest.(check bool) "cross-site without policies illegal" false
    (Cgqp.is_legal s0 Tpch.Queries.q3)

let test_order_by_and_limit () =
  let s = session Tpch.Policies.set_cra in
  let r =
    match
      Cgqp.run s
        "SELECT c.custkey, c.acctbal FROM customer c, nation n \
         WHERE c.nationkey = n.nationkey ORDER BY c.acctbal DESC LIMIT 5"
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "run failed: %s" (Cgqp.error_to_string e)
  in
  Alcotest.(check int) "limited" 5 (Storage.Relation.cardinality r.Cgqp.relation);
  let look = Storage.Relation.lookup_fn r.Cgqp.relation in
  let vals =
    Array.to_list (Storage.Relation.rows r.Cgqp.relation)
    |> List.map (fun row -> look (Attr.unqualified "acctbal") row)
  in
  let rec descending = function
    | a :: (b :: _ as rest) -> Value.compare a b >= 0 && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (descending vals)

let test_having () =
  let s = session Tpch.Policies.set_cra in
  let with_having =
    run_mode s Optimizer.Memo.Compliant
      "SELECT c.mktsegment, SUM(c.acctbal) AS total FROM customer c \
       GROUP BY c.mktsegment HAVING total > 0"
  in
  let without =
    run_mode s Optimizer.Memo.Compliant
      "SELECT c.mktsegment, SUM(c.acctbal) AS total FROM customer c \
       GROUP BY c.mktsegment"
  in
  Alcotest.(check bool) "having filters groups" true
    (Storage.Relation.cardinality with_having.Cgqp.relation
    <= Storage.Relation.cardinality without.Cgqp.relation);
  (* every surviving group satisfies the predicate *)
  let look = Storage.Relation.lookup_fn with_having.Cgqp.relation in
  Array.iter
    (fun row ->
      match look (Attr.unqualified "total") row with
      | Value.Float f -> Alcotest.(check bool) "positive" true (f > 0.)
      | Value.Int i -> Alcotest.(check bool) "positive" true (i > 0)
      | v -> Alcotest.failf "unexpected total %s" (Value.to_string v))
    (Storage.Relation.rows with_having.Cgqp.relation)

let test_shipped_bytes_accounted () =
  let s = session Tpch.Policies.set_cra in
  let r = run_mode s Optimizer.Memo.Compliant Tpch.Queries.q5 in
  Alcotest.(check bool) "some bytes shipped" true (r.Cgqp.shipped_bytes > 0);
  Alcotest.(check bool) "cost positive" true (r.Cgqp.ship_cost_ms > 0.)

let () =
  Alcotest.run "e2e"
    [
      ( "semantics",
        [
          Alcotest.test_case "compliant = traditional results" `Slow test_semantics_preserved;
          Alcotest.test_case "carco hand-checked" `Quick test_carco_example_values;
          Alcotest.test_case "naive oracle agreement" `Slow test_against_naive_oracle;
          QCheck_alcotest.to_alcotest prop_random_plan_equivalence;
          Alcotest.test_case "partitioned execution" `Quick test_partitioned_execution;
        ] );
      ( "api",
        [
          Alcotest.test_case "error paths" `Quick test_error_paths;
          Alcotest.test_case "rejection" `Quick test_rejection_path;
          Alcotest.test_case "is_legal" `Quick test_is_legal;
          Alcotest.test_case "ship accounting" `Quick test_shipped_bytes_accounted;
          Alcotest.test_case "order by / limit" `Quick test_order_by_and_limit;
          Alcotest.test_case "having" `Quick test_having;
        ] );
    ]
