test/test_pred.ml: Alcotest Attr Expr List Pred QCheck QCheck_alcotest Relalg Value
