(* Feedback + template-caching suite (docs/FEEDBACK.md):
   - 300-case qcheck property: a template-caching scheduler run is
     observationally identical to a non-template run — per-statement
     plan digests, result fingerprints and the full rendered report
     (modulo the hit/miss labels and cache-counter footer, which
     legitimately differ: a repeated literal pattern is a template hit
     on one side and a fresh exact miss on the other).
   - Directed regression: two statements differing only in a
     policy-sensitive literal must NOT share a template plan; two
     differing in an insensitive literal MUST.
   - Golden EXPLAIN for re-optimization: an est-vs-actual gap triggers
     one feedback fold — the epoch bumps exactly once and the second
     EXPLAIN ANALYZE shows converged estimates.
   - Plan_cache.clear resets the stats counters. *)

open Relalg
module PC = Cgqp.Plan_cache
module FB = Cgqp.Feedback
module Sc = Service.Script
module Sd = Service.Scheduler
module A = Service.Admission

(* ---------------- fixture ----------------

   The serving suite's two-table, three-region setup, with the customer
   row-count statistic as a knob so the est-vs-actual gap is
   controllable. *)

let locations = [ "AS"; "EU"; "NA" ]

let links =
  [ ("NA", "EU", 50., 1e-3); ("NA", "AS", 80., 2e-3); ("EU", "AS", 60., 1.5e-3) ]

let catalog ?(customer_rows = 20) () =
  let open Catalog.Table_def in
  let customer =
    make ~name:"customer" ~key:[ "custkey" ] ~row_count:customer_rows ()
      ~columns:
        [
          column ~stat:{ default_stat with distinct = 20 } "custkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 20; width = 12 } "name" Value.Tstr;
          column ~stat:{ default_stat with distinct = 10 } "acctbal" Value.Tint;
        ]
  in
  let orders =
    make ~name:"orders" ~key:[ "ordkey" ] ~row_count:60 ()
      ~columns:
        [
          column ~stat:{ default_stat with distinct = 20 } "custkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 60 } "ordkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 40 } "totprice" Value.Tint;
        ]
  in
  let network = Catalog.Network.make ~locations ~links () in
  Catalog.make ~network
    [
      (customer, [ { Catalog.db = "d1"; location = "NA"; fraction = 1.0 } ]);
      (orders, [ { Catalog.db = "d2"; location = "EU"; fraction = 1.0 } ]);
    ]

let data cat =
  let g = Storage.Prng.create ~seed:7 in
  let db = Storage.Database.create () in
  let add name rows =
    let schema =
      List.map (fun c -> Attr.make ~rel:name ~name:c) (Catalog.table_cols cat name)
    in
    Storage.Database.add db ~table:name
      (Storage.Relation.make ~schema ~rows:(Array.of_list rows))
  in
  add "customer"
    (List.init 20 (fun i ->
         [| Value.Int i; Value.Str (Printf.sprintf "c%02d" i); Value.Int (100 * i) |]));
  add "orders"
    (List.init 60 (fun i ->
         [| Value.Int (i mod 20); Value.Int i; Value.Int (10 + Storage.Prng.int g 90) |]));
  db

let open_policies =
  [
    "ship custkey, name, acctbal from customer to EU, AS";
    "ship custkey, ordkey, totprice from orders to NA, AS";
  ]

(* acctbal carries a policy predicate: its literals decide the SHIP
   verdict, so the template key must incorporate their values. *)
let guarded_policies =
  [
    "ship custkey, name, acctbal from customer to EU, AS where acctbal > 500";
    "ship custkey, ordkey, totprice from orders to NA, AS";
  ]

let policy_pool = [ open_policies; guarded_policies ]

let resolve_policy_set = function
  | "open" -> Some open_policies
  | "guarded" -> Some guarded_policies
  | _ -> None

(* Parameterized statement shapes — the literal varies, the template
   does not. Shape 3 has no equality literal: it exercises the
   non-template fallback inside a template-enabled session. *)
let statement shape k =
  match shape mod 4 with
  | 0 -> Printf.sprintf "SELECT name FROM customer WHERE custkey = %d" (k mod 25)
  | 1 ->
    Printf.sprintf "SELECT name, custkey FROM customer WHERE acctbal = %d"
      (100 * (k mod 20))
  | 2 -> Printf.sprintf "SELECT ordkey FROM orders WHERE totprice = %d" (10 + (k mod 90))
  | _ ->
    "SELECT c.name, o.totprice FROM customer AS c, orders AS o \
     WHERE c.custkey = o.custkey"

(* ---------------- 300-case transparency property ---------------- *)

type step = T_submit of int * int | T_pool of int | T_clear

let pp_step = function
  | T_submit (shape, k) -> Printf.sprintf "submit q%d(%d)" (shape mod 4) k
  | T_pool j -> Printf.sprintf "set-policies p%d" j
  | T_clear -> "clear-policies"

type tcase = { steps : step list list; case_seed : int; capacity : int }

let gen_tcase =
  QCheck.Gen.(
    let step =
      frequency
        [
          (6, map2 (fun s k -> T_submit (s, k)) (int_bound 3) (int_bound 99));
          (1, map (fun j -> T_pool j) (int_bound (List.length policy_pool - 1)));
          (1, return T_clear);
        ]
    in
    map
      (fun (steps, case_seed, capacity) -> { steps; case_seed; capacity })
      (triple
         (list_size (int_range 1 3) (list_size (int_range 1 8) step))
         (int_bound 9999) (int_range 1 8)))

let pp_tcase c =
  Printf.sprintf "seed=%d capacity=%d [%s]" c.case_seed c.capacity
    (String.concat " | "
       (List.map (fun s -> String.concat "; " (List.map pp_step s)) c.steps))

let arb_tcase = QCheck.make ~print:pp_tcase gen_tcase

let tscript c =
  let action = function
    | T_submit (shape, k) -> Sc.Submit (statement shape k)
    | T_pool 0 -> Sc.Set_policy_set "open"
    | T_pool _ -> Sc.Set_policy_set "guarded"
    | T_clear -> Sc.Clear_policies
  in
  {
    Sc.seed = None;
    tenants = [];
    sessions =
      List.mapi
        (fun i steps ->
          {
            Sc.sid = Printf.sprintf "s%d" i;
            tenant = Printf.sprintf "s%d" i;
            actions = Sc.Set_policy_set "open" :: List.map action steps;
          })
        c.steps;
  }

let run_tcase c ~template =
  let cat = catalog () in
  let env =
    Sd.env ~catalog:cat ~database:(data cat)
      ~cache:(PC.create ~capacity:c.capacity ())
      ~template ~resolve_policy_set ()
  in
  Sd.run ~env ~seed:c.case_seed (tscript c)

(* Everything in the rendered report except cache accounting must be
   byte-identical: pad-preserving rewrite of the hit/miss labels, drop
   the cache-counter footer lines. *)
let normalize_report r =
  let text = Fmt.str "%a" Sd.pp_report r in
  let text =
    Astring.String.cuts ~sep:"ok(miss)" text |> String.concat "ok(*)   "
  in
  let text = Astring.String.cuts ~sep:"ok(hit)" text |> String.concat "ok(*)  " in
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         not
           (Astring.String.is_prefix ~affix:"  cache:" line
           || Astring.String.is_prefix ~affix:"  template:" line))
  |> String.concat "\n"

let prop_template_transparent =
  QCheck.Test.make ~count:300
    ~name:"template-cache-on and template-cache-off runs are identical" arb_tcase
    (fun c ->
      let on = run_tcase c ~template:true in
      let off = run_tcase c ~template:false in
      let a = normalize_report on and b = normalize_report off in
      if a <> b then
        QCheck.Test.fail_reportf
          "template-on diverged from template-off:\n%s\n=== template-off ===\n%s" a b
      else true)

(* ---------------- sensitive-literal regression ---------------- *)

let session ?(policies = open_policies) ?cache ~template () =
  let cat = catalog () in
  let s = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies s policies;
  Cgqp.attach_database s (data cat);
  Cgqp.set_plan_cache s cache;
  Cgqp.set_template_cache s template;
  s

let observe s sql =
  match Cgqp.run s sql with
  | Ok r ->
    Printf.sprintf "ok plan=%s bytes=%d rows=%s"
      (Digest.to_hex (Digest.string (Exec.Pplan.to_string r.Cgqp.plan)))
      r.Cgqp.shipped_bytes
      (Storage.Relation.to_csv r.Cgqp.relation)
  | Error e -> "error " ^ Cgqp.error_to_string e

(* Under [guarded_policies] the acctbal literal decides whether customer
   rows may ship: 900 > 500 satisfies the policy predicate, 100 does
   not. The two statements must not share a template plan — and each
   must still match a fresh, non-template optimization. *)
let test_sensitive_literal_not_shared () =
  let cache = PC.create () in
  let templ = session ~policies:guarded_policies ~cache ~template:true () in
  let plain = session ~policies:guarded_policies ~template:false () in
  let s1 = "SELECT name, custkey FROM customer WHERE acctbal = 900" in
  let s2 = "SELECT name, custkey FROM customer WHERE acctbal = 100" in
  Alcotest.(check string) "statement 1 transparent" (observe plain s1) (observe templ s1);
  Alcotest.(check string) "statement 2 transparent" (observe plain s2) (observe templ s2);
  let st = PC.stats cache in
  Alcotest.(check int) "no template sharing across verdict-sensitive literals" 0
    st.PC.template_hits;
  Alcotest.(check bool) "both lookups consulted the template table" true
    (st.PC.template_misses >= 2)

(* The contrast: custkey carries no policy predicate, so its literals
   are parameterized out of the key and distinct statements share one
   template plan. *)
let test_insensitive_literal_shared () =
  let cache = PC.create () in
  let templ = session ~policies:guarded_policies ~cache ~template:true () in
  let plain = session ~policies:guarded_policies ~template:false () in
  let s1 = "SELECT name FROM customer WHERE custkey = 3" in
  let s2 = "SELECT name FROM customer WHERE custkey = 17" in
  Alcotest.(check string) "statement 1 transparent" (observe plain s1) (observe templ s1);
  Alcotest.(check string) "statement 2 transparent" (observe plain s2) (observe templ s2);
  let st = PC.stats cache in
  Alcotest.(check int) "second statement reused the first's template" 1
    st.PC.template_hits

(* ---------------- golden EXPLAIN re-optimization ---------------- *)

let contains ~needle hay = Astring.String.is_infix ~affix:needle hay

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Cgqp.error_to_string e)

(* Catalog statistics claim 10000 customers; the data holds 20. The
   first EXPLAIN ANALYZE shows the gap, feedback folds it away (epoch
   bumps exactly once), and the second run's estimates have converged
   onto the observed cardinality. *)
let test_feedback_reoptimization_golden () =
  let cat = catalog ~customer_rows:10_000 () in
  let s = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies s open_policies;
  Cgqp.attach_database s (data cat);
  let cache = PC.create () in
  Cgqp.set_plan_cache s (Some cache);
  let fb = FB.create ~min_obs:1 () in
  Cgqp.set_feedback s (Some fb);
  let q = "SELECT name FROM customer WHERE custkey = 3" in
  let before = ok_exn (Cgqp.explain_analyze s q) in
  Alcotest.(check bool) "scan estimate shows the stale statistic" true
    (contains ~needle:"est 10000 rows" before);
  Alcotest.(check bool) "actual rows recorded" true
    (contains ~needle:"act 20 rows" before);
  Alcotest.(check int) "one fold fired" 1 (FB.folds fb);
  Alcotest.(check int) "plan-cache epoch bumped exactly once" 1 (PC.epoch cache);
  let after = ok_exn (Cgqp.explain_analyze s q) in
  Alcotest.(check bool) "estimate converged onto the observed cardinality" true
    (contains ~needle:"est 20 rows" after);
  Alcotest.(check bool) "stale estimate gone" false
    (contains ~needle:"est 10000 rows" after);
  Alcotest.(check int) "no further folds" 1 (FB.folds fb);
  Alcotest.(check int) "epoch still bumped exactly once" 1 (PC.epoch cache);
  Alcotest.(check bool) "store reports convergence" true
    (FB.converged fb ~actual:(fun t -> if t = "customer" then Some 20 else None))

(* ---------------- feedback store unit behavior ---------------- *)

let test_feedback_store_thresholds () =
  let cat = catalog ~customer_rows:10_000 () in
  let s = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies s open_policies;
  Cgqp.attach_database s (data cat);
  let fb = FB.create ~min_obs:3 () in
  Cgqp.set_feedback s (Some fb);
  let q = "SELECT name FROM customer WHERE custkey = 3" in
  let run () = ignore (ok_exn (Cgqp.run s q)) in
  run ();
  run ();
  Alcotest.(check int) "below min_obs: no fold" 0 (FB.folds fb);
  run ();
  Alcotest.(check int) "third observation folds" 1 (FB.folds fb);
  Alcotest.(check bool) "catalog carries the corrected row count" true
    (Catalog.all_tables (Cgqp.catalog s)
    |> List.exists (fun (e : Catalog.entry) ->
           e.Catalog.def.Catalog.Table_def.name = "customer"
           && e.Catalog.def.Catalog.Table_def.row_count = 20))

(* ---------------- Plan_cache.clear resets stats ---------------- *)

let test_clear_resets_stats () =
  let cache = PC.create () in
  let s = session ~cache ~template:true () in
  let q1 = "SELECT name FROM customer WHERE custkey = 1" in
  let q2 = "SELECT name FROM customer WHERE custkey = 2" in
  ignore (observe s q1);
  ignore (observe s q2);
  ignore (observe s q2);
  let st = PC.stats cache in
  Alcotest.(check bool) "counters moved" true
    (st.PC.hits + st.PC.misses + st.PC.template_hits + st.PC.template_misses > 0);
  PC.clear cache;
  let st = PC.stats cache in
  Alcotest.(check int) "hits reset" 0 st.PC.hits;
  Alcotest.(check int) "misses reset" 0 st.PC.misses;
  Alcotest.(check int) "template hits reset" 0 st.PC.template_hits;
  Alcotest.(check int) "template misses reset" 0 st.PC.template_misses;
  Alcotest.(check int) "invalidations reset" 0 st.PC.invalidations;
  Alcotest.(check int) "evictions reset" 0 st.PC.evictions;
  Alcotest.(check int) "exact table empty" 0 (PC.size cache);
  Alcotest.(check int) "template table empty" 0 (PC.template_size cache)

(* ---------------- normalizer unit coverage ---------------- *)

let norm = Sqlfront.Normalizer.normalize

let test_normalizer_rules () =
  (match norm "SELECT name FROM customer WHERE custkey = 7" with
  | Some { Sqlfront.Normalizer.template; params } ->
    Alcotest.(check bool) "literal replaced by placeholder" true
      (Astring.String.is_infix ~affix:"?" template);
    Alcotest.(check int) "one parameter" 1 (List.length params);
    (match params with
    | [ { Sqlfront.Normalizer.column; value } ] ->
      Alcotest.(check string) "parameter column" "custkey" column;
      Alcotest.(check bool) "parameter value" true (value = Value.Int 7)
    | _ -> Alcotest.fail "expected one param")
  | None -> Alcotest.fail "eligible statement not normalized");
  (* same template for distinct literals *)
  let t k =
    Option.map
      (fun n -> n.Sqlfront.Normalizer.template)
      (norm (Printf.sprintf "SELECT name FROM customer WHERE custkey = %d" k))
  in
  Alcotest.(check bool) "distinct literals, one template" true (t 1 = t 999);
  (* conservative bails *)
  Alcotest.(check bool) "no WHERE: not normalized" true
    (norm "SELECT name FROM customer" = None);
  Alcotest.(check bool) "OR in WHERE: not normalized" true
    (norm "SELECT name FROM customer WHERE custkey = 1 OR acctbal = 2" = None);
  Alcotest.(check bool) "repeated column: not normalized" true
    (norm "SELECT custkey FROM customer WHERE custkey = 1" = None);
  Alcotest.(check bool) "range predicate: literal kept" true
    (norm "SELECT name FROM customer WHERE custkey > 5" = None)

let () =
  let rand =
    Random.State.make
      [| (match Sys.getenv_opt "QCHECK_SEED" with
         | Some s -> (try int_of_string s with _ -> 433494437)
         | None -> 433494437) |]
  in
  Alcotest.run "feedback"
    [
      ( "transparency",
        [ QCheck_alcotest.to_alcotest ~rand prop_template_transparent ] );
      ( "template guard",
        [
          Alcotest.test_case "sensitive literal not shared" `Quick
            test_sensitive_literal_not_shared;
          Alcotest.test_case "insensitive literal shared" `Quick
            test_insensitive_literal_shared;
        ] );
      ( "re-optimization",
        [
          Alcotest.test_case "golden EXPLAIN before/after fold" `Quick
            test_feedback_reoptimization_golden;
          Alcotest.test_case "min_obs threshold" `Quick test_feedback_store_thresholds;
        ] );
      ( "plan cache",
        [ Alcotest.test_case "clear resets stats" `Quick test_clear_resets_stats ] );
      ( "normalizer",
        [ Alcotest.test_case "rules" `Quick test_normalizer_rules ] );
    ]
