(* The policy catalog (Figure 2): all policy expressions in force,
   indexed by the table they govern. *)

module String_map = Map.Make (String)

type t = {
  by_table : Expression.t list String_map.t;
  all : Expression.t list;
  stamp : int;  (* unique per catalog; keys cross-catalog caches *)
  fingerprint : int;  (* content hash; equal for semantically equal sets *)
}

(* Policy catalogs are immutable after [make]; a construction-time
   stamp identifies one soundly in process-wide cache keys. Atomic:
   duplicate stamps issued by racing domains would alias distinct
   catalogs in the evaluator's verdict cache. *)
let next_stamp = Atomic.make 0
let fresh_stamp () = Atomic.fetch_and_add next_stamp 1 + 1

(* splitmix64 finalizer — the same mixing discipline as the fault
   scheduler, so the fingerprint has no structure an LRU key could
   accidentally collide on. *)
let mix64 (x : int64) : int64 =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

(* Content fingerprint: fold the sorted expression hashes through
   mix64. Sorting makes it order-insensitive; [make] dedupes, so it is
   also duplicate-insensitive — installing the same statement twice
   leaves the fingerprint (and any cache keyed by it) unchanged. *)
let fingerprint_of (exprs : Expression.t list) : int =
  let hs = List.sort compare (List.map Expression.hash exprs) in
  let h =
    List.fold_left
      (fun acc h -> mix64 (Int64.logxor acc (Int64.of_int h)))
      (mix64 0x9e3779b97f4a7c15L) hs
  in
  Int64.to_int h land max_int

let empty =
  {
    by_table = String_map.empty;
    all = [];
    stamp = fresh_stamp ();
    fingerprint = fingerprint_of [];
  }

let make (exprs : Expression.t list) : t =
  (* Intern on entry: every expression the evaluator ever sees is the
     canonical node, so the predicate intern table (and with it the
     implication-verdict cache) is shared across queries and sets. *)
  let exprs = List.map Expression.intern exprs in
  (* Drop duplicate statements (first occurrence wins): interning makes
     structural equality a pointer test. Re-installing an expression is
     a no-op, so the evaluator never pays twice for one policy and
     [fingerprint] is stable under repeated [add_policies]. *)
  let exprs =
    List.rev
      (List.fold_left
         (fun acc e -> if List.memq e acc then acc else e :: acc)
         [] exprs)
  in
  let by_table =
    List.fold_left
      (fun m e ->
        String_map.update e.Expression.table
          (function None -> Some [ e ] | Some es -> Some (es @ [ e ]))
          m)
      String_map.empty exprs
  in
  { by_table; all = exprs; stamp = fresh_stamp (); fingerprint = fingerprint_of exprs }

let stamp t = t.stamp
let fingerprint t = t.fingerprint

let of_texts (cat : Catalog.t) (texts : string list) : t =
  make (List.map (Expression.parse cat) texts)

let for_table t name =
  match String_map.find_opt (String.lowercase_ascii name) t.by_table with
  | Some es -> es
  | None -> []

let all t = t.all
let size t = List.length t.all

let pp ppf t =
  Fmt.(list ~sep:(any "@.") Expression.pp) ppf t.all
