lib/tpch/policies.mli: Catalog Policy
