lib/optimizer/site_selector.mli: Catalog Exec Memo
