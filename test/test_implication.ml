open Relalg
module I = Policy.Implication

let a name = Attr.make ~rel:"t" ~name
let col name = Expr.Col (a name)
let int n = Expr.Const (Value.Int n)
let str s = Expr.Const (Value.Str s)
let cmp c l r = Pred.Atom (Pred.Cmp (c, l, r))

let check name expected pq pe = Alcotest.(check bool) name expected (I.implies pq pe)

let test_trivial () =
  check "anything implies true" true (cmp Pred.Eq (col "a") (int 1)) Pred.True;
  check "false implies anything" true Pred.False (cmp Pred.Eq (col "a") (int 1));
  check "syntactic equality" true
    (cmp Pred.Gt (col "a") (int 1))
    (cmp Pred.Gt (col "a") (int 1))

let test_range_subsumption () =
  check "b>15 => b>10" true (cmp Pred.Gt (col "b") (int 15)) (cmp Pred.Gt (col "b") (int 10));
  check "b>10 !=> b>15" false (cmp Pred.Gt (col "b") (int 10)) (cmp Pred.Gt (col "b") (int 15));
  check "b>=10 !=> b>10" false (cmp Pred.Ge (col "b") (int 10)) (cmp Pred.Gt (col "b") (int 10));
  check "b>10 => b>=10" true (cmp Pred.Gt (col "b") (int 10)) (cmp Pred.Ge (col "b") (int 10));
  check "b=12 => b>10" true (cmp Pred.Eq (col "b") (int 12)) (cmp Pred.Gt (col "b") (int 10));
  check "5<b<8 => b<10" true
    (Pred.And (cmp Pred.Gt (col "b") (int 5), cmp Pred.Lt (col "b") (int 8)))
    (cmp Pred.Lt (col "b") (int 10));
  check "b<10 !=> b=5" false (cmp Pred.Lt (col "b") (int 10)) (cmp Pred.Eq (col "b") (int 5))

let test_conjunction () =
  let pq = Pred.And (cmp Pred.Gt (col "b") (int 15), cmp Pred.Eq (col "c") (str "x")) in
  check "conj implies its conjunct" true pq (cmp Pred.Gt (col "b") (int 10));
  check "conj implies other conjunct" true pq (cmp Pred.Eq (col "c") (str "x"));
  check "conj implies conj" true pq
    (Pred.And (cmp Pred.Gt (col "b") (int 10), cmp Pred.Eq (col "c") (str "x")));
  check "conj does not imply new atom" false pq (cmp Pred.Eq (col "d") (int 1))

let test_disjunction () =
  let pe = Pred.Or (cmp Pred.Gt (col "b") (int 10), cmp Pred.Eq (col "c") (str "x")) in
  check "stronger branch implies or" true (cmp Pred.Gt (col "b") (int 15)) pe;
  check "q-or into e-or" true
    (Pred.Or (cmp Pred.Gt (col "b") (int 20), cmp Pred.Eq (col "b") (int 11))) pe;
  check "one bad disjunct kills it" false
    (Pred.Or (cmp Pred.Gt (col "b") (int 20), cmp Pred.Eq (col "b") (int 5))) pe

let test_in_and_eq () =
  check "eq implies in" true
    (cmp Pred.Eq (col "c") (str "x"))
    (Pred.Atom (Pred.In (col "c", [ Value.Str "x"; Value.Str "y" ])));
  check "in implies in superset" true
    (Pred.Atom (Pred.In (col "c", [ Value.Str "x" ])))
    (Pred.Atom (Pred.In (col "c", [ Value.Str "x"; Value.Str "y" ])));
  check "in not implies in subset" false
    (Pred.Atom (Pred.In (col "c", [ Value.Str "x"; Value.Str "z" ])))
    (Pred.Atom (Pred.In (col "c", [ Value.Str "x"; Value.Str "y" ])));
  check "eq implies ne other" true
    (cmp Pred.Eq (col "b") (int 5))
    (cmp Pred.Ne (col "b") (int 6));
  check "eq does not imply ne same" false
    (cmp Pred.Eq (col "b") (int 5))
    (cmp Pred.Ne (col "b") (int 5))

let test_like () =
  let like pat = Pred.Atom (Pred.Like (col "c", pat)) in
  check "same like" true (like "%COPPER%") (like "%COPPER%");
  check "eq implies matching like" true (cmp Pred.Eq (col "c") (str "XCOPPERY")) (like "%COPPER%");
  check "eq does not imply failing like" false (cmp Pred.Eq (col "c") (str "TIN")) (like "%COPPER%");
  check "different like not implied" false (like "%COPPER%") (like "%TIN%")

let test_soundness_boundaries () =
  (* the paper's incompleteness example: A=5 AND B=3 does not imply
     A+B=8 under this test *)
  let pq = Pred.And (cmp Pred.Eq (col "a") (int 5), cmp Pred.Eq (col "b") (int 3)) in
  let pe = cmp Pred.Eq (Expr.Binop (Expr.Add, col "a", col "b")) (int 8) in
  check "A=5&B=3 !=> A+B=8 (incomplete)" false pq pe;
  (* negative literals must not produce range facts (NULL semantics) *)
  check "NOT(b<5) !=> b>=5" false
    (Pred.Not (cmp Pred.Lt (col "b") (int 5)))
    (cmp Pred.Ge (col "b") (int 5));
  (* but a pinned value decides negative goals *)
  check "b=7 => NOT(b<5)" true (cmp Pred.Eq (col "b") (int 7))
    (Pred.Not (cmp Pred.Lt (col "b") (int 5)))

let test_dates_and_strings () =
  let d s = Expr.Const (Value.Date (Option.get (Value.date_of_string s))) in
  check "date range" true
    (cmp Pred.Ge (col "sd") (d "1995-01-01"))
    (cmp Pred.Gt (col "sd") (d "1994-12-31"));
  check "string order" true
    (cmp Pred.Eq (col "c") (str "m"))
    (Pred.Atom (Pred.Cmp (Pred.Lt, col "c", str "z")))

(* --- property: implication is sound w.r.t. Pred.eval --- *)

let gen_atom_pred =
  let open QCheck.Gen in
  let atom =
    let* name = oneofl [ "x"; "y" ] in
    let* v = int_range 0 6 in
    oneof
      [
        (let* c = oneofl [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ] in
         return (cmp c (col name) (Expr.Const (Value.Int v))));
        return (Pred.Atom (Pred.In (col name, [ Value.Int v; Value.Int (v + 2) ])));
        return (Pred.Atom (Pred.Is_null (col name)));
        return (Pred.Atom (Pred.Not_null (col name)));
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (4, atom);
          (2, map2 (fun l r -> Pred.And (l, r)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun l r -> Pred.Or (l, r)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun p -> Pred.Not p) (go (depth - 1)));
        ]
  in
  go 2

let prop_soundness =
  QCheck.Test.make ~name:"implies is sound wrt eval (incl. NULL)" ~count:2000
    (QCheck.make QCheck.Gen.(pair gen_atom_pred gen_atom_pred))
    (fun (pq, pe) ->
      if I.implies pq pe then begin
        (* whenever pq holds under a binding, pe must hold too; include
           NULL in the domain to exercise three-valued corner cases *)
        let domain = Value.Null :: List.map (fun i -> Value.Int i) [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
        List.for_all
          (fun vx ->
            List.for_all
              (fun vy ->
                let lookup at =
                  if Attr.equal at (a "x") then vx
                  else if Attr.equal at (a "y") then vy
                  else Value.Null
                in
                (not (Pred.eval lookup pq)) || Pred.eval lookup pe)
              domain)
          domain
      end
      else true)

(* --- properties: the verdict cache and hash-consing are invisible --- *)

let prop_cache_transparent =
  QCheck.Test.make ~name:"cached implies = uncached implies" ~count:2000
    (QCheck.make QCheck.Gen.(pair gen_atom_pred gen_atom_pred))
    (fun (pq, pe) ->
      I.set_cache_enabled true;
      let cached = I.implies pq pe in
      let uncached = I.implies_uncached pq pe in
      (* and a second cached call (now certainly a hit) agrees too *)
      cached = uncached && I.implies pq pe = uncached)

let prop_intern_preserves_equality =
  QCheck.Test.make ~name:"hashcons preserves equal/compare" ~count:2000
    (QCheck.make QCheck.Gen.(pair gen_atom_pred gen_atom_pred))
    (fun (p, q) ->
      let p' = Pred.hashcons p and q' = Pred.hashcons q in
      Pred.equal p p' && Pred.equal q q'
      && Pred.compare_pred p' q' = Pred.compare_pred p q
      (* structural equality becomes pointer equality after interning *)
      && Pred.equal p q = (p' == q')
      && Pred.hash p' = Pred.hash p)

let prop_intern_stable_ids =
  QCheck.Test.make ~name:"intern ids are stable and discriminating" ~count:1000
    (QCheck.make QCheck.Gen.(pair gen_atom_pred gen_atom_pred))
    (fun (p, q) ->
      let _, idp = Pred.intern p in
      let _, idq = Pred.intern q in
      let _, idp2 = Pred.intern p in
      idp = idp2 && Pred.equal p q = (idp = idq))

let () =
  Alcotest.run "implication"
    [
      ( "implication",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "range subsumption" `Quick test_range_subsumption;
          Alcotest.test_case "conjunction" `Quick test_conjunction;
          Alcotest.test_case "disjunction" `Quick test_disjunction;
          Alcotest.test_case "in/eq" `Quick test_in_and_eq;
          Alcotest.test_case "like" `Quick test_like;
          Alcotest.test_case "soundness boundaries" `Quick test_soundness_boundaries;
          Alcotest.test_case "dates and strings" `Quick test_dates_and_strings;
          QCheck_alcotest.to_alcotest prop_soundness;
          QCheck_alcotest.to_alcotest prop_cache_transparent;
          QCheck_alcotest.to_alcotest prop_intern_preserves_equality;
          QCheck_alcotest.to_alcotest prop_intern_stable_ids;
        ] );
    ]
