(* The geo-distributed catalog: which tables exist, in which database at
   which location each (partition of a) table lives, and the network
   connecting the sites. The global schema is the union of local schemas
   (GAV mapping, §7.1): a global table maps to one local table per
   placement; a table with several placements is horizontally
   partitioned and is read as the union of its partitions (§7.5). *)

(* [catalog.ml] doubles as the library's root module: re-export the
   sibling modules so users write [Catalog.Network], [Catalog.Location],
   [Catalog.Table_def]. *)
module Location = Location
module Network = Network
module Table_def = Table_def

module String_map = Map.Make (String)

type placement = {
  db : string;  (* local database name, e.g. "db-1" *)
  location : Location.t;
  fraction : float;  (* share of the global rows stored here *)
}

type entry = { def : Table_def.t; placements : placement list }

type t = {
  tables : entry String_map.t;
  network : Network.t;
  stamp : int;  (* unique per catalog; keys cross-catalog caches *)
}

(* Catalogs are immutable after [make], so a construction-time stamp
   identifies one soundly for the lifetime of the process. Atomic so
   racing domains can never issue duplicate stamps into the stamp-keyed
   caches. *)
let next_stamp = Atomic.make 0

let make ~network tables =
  let m =
    List.fold_left
      (fun m (def, placements) ->
        if placements = [] then invalid_arg "Catalog.make: table without placement";
        String_map.add def.Table_def.name { def; placements } m)
      String_map.empty tables
  in
  { tables = m; network; stamp = Atomic.fetch_and_add next_stamp 1 + 1 }

let stamp t = t.stamp

let network t = t.network

(* Swap the network (e.g. for a fault-masked copy during degraded
   re-planning). The stamp is kept: policy verdicts depend on tables,
   policies and the location list — all unchanged — so caches keyed by
   the stamp stay sound across the swap. *)
let with_network t network = { t with network }
let locations t = Network.locations t.network

let find_table t name = String_map.find_opt (String.lowercase_ascii name) t.tables

let table_exn t name =
  match find_table t name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %s" name)

let table_def t name = (table_exn t name).def
let placements t name = (table_exn t name).placements

let is_partitioned t name = List.length (placements t name) > 1

(* Location of a non-partitioned table. *)
let home_location t name =
  match placements t name with
  | [ p ] -> p.location
  | ps -> (List.hd ps).location

let table_cols t name = Table_def.col_names (table_def t name)

let all_tables t = String_map.bindings t.tables |> List.map snd

(* The database housed at a location (the paper assumes one database per
   location); used to report which policy set applies. *)
let db_at t loc =
  String_map.fold
    (fun _ e acc ->
      List.fold_left
        (fun acc p -> if String.equal p.location loc then Some p.db else acc)
        acc e.placements)
    t.tables None

(* Tables (global names) whose placement includes [loc]. *)
let tables_at t loc =
  String_map.fold
    (fun name e acc ->
      if List.exists (fun p -> String.equal p.location loc) e.placements then name :: acc
      else acc)
    t.tables []
  |> List.rev

(* Resolve an aliased scan: all placements of the table. *)
let resolve t ~table = placements t table

let pp ppf t =
  String_map.iter
    (fun _ e ->
      Fmt.pf ppf "%a @@ %a@."
        Table_def.pp e.def
        Fmt.(list ~sep:comma (using (fun p -> p.db ^ "/" ^ p.location) string))
        e.placements)
    t.tables
