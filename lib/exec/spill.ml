(* Grace-style spill-to-disk for hash join and hash aggregation.

   When an execution's memory budget trips ([Runtime.should_spill]),
   the join/agg kernels hand their inputs here instead of building the
   full hash table in memory. Rows are hash-partitioned by the
   existing [Runtime.Row_key.hash] into on-disk run files, each
   partition is processed with only its own state resident, and the
   output is re-emitted in the exact order the in-memory kernel would
   have produced — so results, profiles, SHIP ledgers and EXPLAIN
   ANALYZE stay byte-identical whether or not an operator spilled
   (locked by the qcheck differential in [test/test_exec.ml]).

   Order preservation, the part worth being careful about:

   - All rows of one key land in one partition, in their original
     relative order. A partition's hash table therefore answers
     [find_all] with exactly the list the in-memory table would
     (reverse insertion order per key).
   - Join: probe rows are partitioned tagged with their global input
     index [gi]; per-partition match lists are written to run files
     and a final k-way merge replays them in ascending [gi] — the
     in-memory probe order. ([gi] is unique across partitions, so the
     merge has no ties.)
   - Agg: groups accumulate per partition (feeding each group its rows
     in input order, so non-commutative float rounding is preserved),
     are run-filed tagged with the group's first-seen input index, and
     merge back in ascending first-seen order — the in-memory
     emission order.

   Run files use [Marshal] (exact for the first-order [Value.t] and
   accumulator records, including float bits). Spill directories are
   created lazily under [CGQP_SPILL_DIR] (default: the system temp
   dir) and removed by [cleanup], which engines run on every exit
   path. *)

open Relalg

type t = {
  mem : Runtime.mem;
  mutable dir : string option;  (* created on first spill *)
  mutable lock : string option;  (* unique temp file reserving the name *)
  mutable opseq : int;  (* distinguishes run files of successive operators *)
}

let create mem = { mem; dir = None; lock = None; opseq = 0 }

let base_dir () =
  match Sys.getenv_opt "CGQP_SPILL_DIR" with
  | Some d when String.trim d <> "" -> d
  | _ -> Filename.get_temp_dir_name ()

(* Unique per-execution directory: [Filename.temp_file] atomically
   reserves a fresh name (kept as a lock file until [cleanup]) and the
   directory lives beside it. *)
let active_dir t =
  match t.dir with
  | Some d -> d
  | None ->
    let lock = Filename.temp_file ~temp_dir:(base_dir ()) "cgqp-spill-" "" in
    let d = lock ^ ".d" in
    Sys.mkdir d 0o700;
    t.lock <- Some lock;
    t.dir <- Some d;
    d

let cleanup t =
  (match t.dir with
  | None -> ()
  | Some d ->
    (try
       Array.iter
         (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
         (Sys.readdir d)
     with Sys_error _ -> ());
    try Sys.rmdir d with Sys_error _ -> ());
  (match t.lock with
  | None -> ()
  | Some f -> ( try Sys.remove f with Sys_error _ -> ()));
  t.dir <- None;
  t.lock <- None

(* --- run-file plumbing --- *)

let marshal_to oc v = Marshal.to_channel oc v []

let read_next (ic : in_channel) : 'a option =
  match Marshal.from_channel ic with
  | v -> Some v
  | exception End_of_file -> None

let row_bytes (row : Value.t array) =
  Array.fold_left (fun a v -> a + Value.byte_width v) 0 row

let remove_quiet p = try Sys.remove p with Sys_error _ -> ()

(* Start a spilled operator: bump counters, lay out per-partition run
   file paths. *)
let begin_op t ~bytes =
  let mem = t.mem in
  let np = Runtime.spill_partitions_for mem ~bytes in
  mem.Runtime.spill_ops <- mem.Runtime.spill_ops + 1;
  mem.Runtime.spill_parts <- mem.Runtime.spill_parts + np;
  let dir = active_dir t in
  let seq = t.opseq in
  t.opseq <- seq + 1;
  let path kind p = Filename.concat dir (Printf.sprintf "op%d-%s%d.run" seq kind p) in
  (np, path)

let part np (k : Value.t array) = Runtime.Row_key.hash k land max_int mod np

let close_outs t ocs =
  Array.iter
    (fun oc ->
      t.mem.Runtime.spill_run_bytes <- t.mem.Runtime.spill_run_bytes + pos_out oc;
      close_out oc)
    ocs

(* --- spilling hash join --- *)

(* [lkey]/[rkey] box a row's join key, [None] if any component is NULL
   (such rows never join, and are dropped during partitioning exactly
   as the in-memory build/probe drops them). [emit] receives (left
   row, build-table match) pairs in the same sequence the in-memory
   kernel produces: probe rows in input order, matches per probe row
   in the build table's reverse-insertion order. *)
let join t ~build_bytes ~lkey ~rkey ~emit (lrows : Value.t array array)
    (rrows : Value.t array array) =
  let mem = t.mem in
  let np, path = begin_op t ~bytes:build_bytes in
  (* phase 1: partition the build side, and the probe side tagged with
     the global probe index *)
  let bpaths = Array.init np (path "b") and ppaths = Array.init np (path "p") in
  let bocs = Array.map open_out_bin bpaths in
  Array.iter
    (fun row ->
      match rkey row with
      | None -> ()
      | Some k -> marshal_to bocs.(part np k) (k, row))
    rrows;
  close_outs t bocs;
  let pocs = Array.map open_out_bin ppaths in
  Array.iteri
    (fun gi row ->
      match lkey row with
      | None -> ()
      | Some k -> marshal_to pocs.(part np k) (gi, k, row))
    lrows;
  close_outs t pocs;
  (* phase 2: per partition, build a table over only that partition's
     build rows, probe, and run-file the match lists *)
  let mpaths = Array.init np (path "m") in
  for p = 0 to np - 1 do
    let tbl = Runtime.Row_tbl.create 256 in
    let resident = ref 0 in
    let bic = open_in_bin bpaths.(p) in
    let rec load () =
      match read_next bic with
      | None -> ()
      | Some ((k : Value.t array), (row : Value.t array)) ->
        Runtime.Row_tbl.add tbl k row;
        resident := !resident + row_bytes row;
        load ()
    in
    load ();
    close_in bic;
    Runtime.mem_charge mem !resident;
    let pic = open_in_bin ppaths.(p) and moc = open_out_bin mpaths.(p) in
    let rec probe () =
      match read_next pic with
      | None -> ()
      | Some ((gi : int), (k : Value.t array), (row : Value.t array)) ->
        (match Runtime.Row_tbl.find_all tbl k with
        | [] -> ()
        | ms -> marshal_to moc (gi, row, ms));
        probe ()
    in
    probe ();
    close_in pic;
    close_outs t [| moc |];
    Runtime.mem_release mem !resident;
    remove_quiet bpaths.(p);
    remove_quiet ppaths.(p)
  done;
  (* phase 3: k-way merge of the match files by ascending probe index
     (unique across partitions — no ties) *)
  let mics = Array.map open_in_bin mpaths in
  let heads :
      (int * Value.t array * Value.t array list) option array =
    Array.map read_next mics
  in
  let rec merge () =
    let best = ref (-1) in
    Array.iteri
      (fun j h ->
        match h with
        | Some (gi, _, _) ->
          if
            !best < 0
            ||
            match heads.(!best) with
            | Some (bgi, _, _) -> gi < bgi
            | None -> true
          then best := j
        | None -> ())
      heads;
    if !best >= 0 then begin
      (match heads.(!best) with
      | Some (_, lrow, ms) -> List.iter (fun rrow -> emit lrow rrow) ms
      | None -> assert false);
      heads.(!best) <- read_next mics.(!best);
      merge ()
    end
  in
  merge ();
  Array.iter close_in mics;
  Array.iter remove_quiet mpaths

(* --- spilling hash aggregation --- *)

(* [key] boxes a row's group key (NULL components are legal group
   values). [feed_row accs row] folds one row into a group's
   accumulators; [emit_group k accs] is called per group in first-seen
   input order — exactly the in-memory kernel's emission order. *)
let agg t ~input_bytes ~key ~na ~feed_row ~emit_group
    (rows : Value.t array array) =
  let mem = t.mem in
  let np, path = begin_op t ~bytes:input_bytes in
  (* phase 1: partition the input tagged with the global row index *)
  let ppaths = Array.init np (path "p") in
  let pocs = Array.map open_out_bin ppaths in
  Array.iteri
    (fun gi row ->
      let k = key row in
      marshal_to pocs.(part np k) (gi, k, row))
    rows;
  close_outs t pocs;
  (* phase 2: accumulate per partition (rows arrive in input order, so
     per-group accumulation order is preserved), then run-file each
     group tagged with its first-seen index *)
  let gpaths = Array.init np (path "g") in
  for p = 0 to np - 1 do
    let tbl : (int * Runtime.acc array) Runtime.Row_tbl.t =
      Runtime.Row_tbl.create 256
    in
    let order = ref [] in
    let resident = ref 0 in
    let pic = open_in_bin ppaths.(p) in
    let rec load () =
      match read_next pic with
      | None -> ()
      | Some ((gi : int), (k : Value.t array), (row : Value.t array)) ->
        Runtime.mem_charge mem (row_bytes row);
        resident := !resident + row_bytes row;
        (match Runtime.Row_tbl.find_opt tbl k with
        | Some (_, accs) -> feed_row accs row
        | None ->
          let accs = Array.init na (fun _ -> Runtime.fresh_acc ()) in
          Runtime.Row_tbl.add tbl k (gi, accs);
          order := (gi, k, accs) :: !order;
          feed_row accs row);
        load ()
    in
    load ();
    close_in pic;
    let goc = open_out_bin gpaths.(p) in
    List.iter (fun g -> marshal_to goc g) (List.rev !order);
    close_outs t [| goc |];
    Runtime.mem_release mem !resident;
    remove_quiet ppaths.(p)
  done;
  (* phase 3: merge groups back in ascending first-seen index *)
  let gics = Array.map open_in_bin gpaths in
  let heads : (int * Value.t array * Runtime.acc array) option array =
    Array.map read_next gics
  in
  let rec merge () =
    let best = ref (-1) in
    Array.iteri
      (fun j h ->
        match h with
        | Some (gi, _, _) ->
          if
            !best < 0
            ||
            match heads.(!best) with
            | Some (bgi, _, _) -> gi < bgi
            | None -> true
          then best := j
        | None -> ())
      heads;
    if !best >= 0 then begin
      (match heads.(!best) with
      | Some (_, k, accs) -> emit_group k accs
      | None -> assert false);
      heads.(!best) <- read_next gics.(!best);
      merge ()
    end
  in
  merge ();
  Array.iter close_in gics;
  Array.iter remove_quiet gpaths
