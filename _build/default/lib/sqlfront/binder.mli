(** Name resolution: turns a parsed query into a canonical logical
    plan — a left-deep chain of condition-less joins with the full WHERE
    predicate on top (the optimizer's pushdown rules distribute
    conjuncts afterwards), topped by Aggregate/Project as appropriate.

    Unqualified columns must resolve to exactly one alias; every scalar
    item of an aggregation query must be a GROUP BY key. *)

open Relalg

exception Error of string

val bind_query : table_cols:(string -> string list option) -> Ast.query -> Plan.t
(** [table_cols] returns a table's column list, or [None] for unknown
    tables. Raises {!Error} on resolution failures. *)

val plan_of_sql : table_cols:(string -> string list option) -> string -> Plan.t
(** Parse then bind. Parser errors propagate as
    {!Parser.Error}. *)
