(** Disk-backed column segment store.

    Persists a relation as one directory: a text [meta] file (schema,
    cardinality, per-column representation tags) plus one
    [col<j>.seg] file per column holding append-only segments of up to
    {!segment_rows} rows. Fixed-width columns (ints / floats / dates /
    bools) store one little-endian word per row; strings are
    offset-indexed (offset array + payload heap); the boxed fallback
    uses a tagged per-value codec. Every segment carries its null
    bitmap and a footer (row/null counts, min/max, serialized byte
    size).

    Round-trips are representation-exact — a read-back column is
    variant-, value- and [byte_size]-identical to what was written —
    and {!relation} wraps a stored directory as a paged
    {!Relation.t} that re-reads from disk on every access, so a
    relation is resident or disk-backed invisibly to all three
    engines. See [docs/STORAGE.md]. *)

open Relalg

val segment_rows : int
(** Rows per segment: 64K (65536). *)

val write : dir:string -> Relation.t -> unit
(** Persist a relation into [dir] (created if needed, existing files
    overwritten). *)

type handle
(** An opened segment directory (metadata only; column files are read
    on demand). *)

val openh : dir:string -> handle
(** Open a directory written by {!write}. Raises [Failure] on a
    missing/corrupt [meta] or a segment-size mismatch, [Sys_error] if
    the directory does not exist. *)

val schema : handle -> Attr.t list
val cardinality : handle -> int

val num_segments : handle -> int
(** Segments per column: [ceil (cardinality / segment_rows)]. *)

type cursor
(** A sequential scan over the stored segments, yielding one
    [Column.t] batch per column per segment. *)

val cursor : handle -> cursor

val next : cursor -> Column.t array option
(** The next segment across all columns (each column [<= segment_rows]
    rows, all the same length), or [None] when exhausted. The cursor
    closes its file handles automatically after the last segment;
    raises [Failure] on corrupt segment data. *)

val close : cursor -> unit
(** Release the cursor's file handles early (idempotent; abandoning a
    cursor without closing leaks descriptors until GC). *)

val read_all : handle -> Column.t array
(** Page the whole relation in: per-column concatenation of all
    segments, representation-identical to the columns that were
    written. *)

val relation : handle -> Relation.t
(** The stored relation as a paged {!Relation.t}: every [rows]/[cols]
    access re-reads from disk ({!Relation.is_paged} holds), so the
    resident working set is only what operators materialize. *)

val page_reads : unit -> int
(** Process-wide count of segment page-ins (one per column segment
    decoded from disk). *)

val page_read_bytes : unit -> int
(** Process-wide payload bytes decoded from disk. *)

val reset_page_reads : unit -> unit
