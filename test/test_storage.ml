open Relalg
module Prng = Storage.Prng

let test_prng_deterministic () =
  let a = Prng.create ~seed:99 and b = Prng.create ~seed:99 in
  let xs = List.init 100 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check (list int)) "same stream" xs ys;
  let c = Prng.create ~seed:100 in
  let zs = List.init 100 (fun _ -> Prng.int c 1_000_000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_prng_bounds () =
  let g = Prng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 10_000 do
    let v = Prng.range g (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "range out of bounds: %d" v
  done;
  for _ = 1 to 1_000 do
    let f = Prng.float g 1.0 in
    if f < 0. || f >= 1.0001 then Alcotest.failf "float out of bounds: %f" f
  done

let test_prng_pick_k () =
  let g = Prng.create ~seed:5 in
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  let k = Prng.pick_k g 4 xs in
  Alcotest.(check int) "k elements" 4 (List.length k);
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare k));
  List.iter (fun x -> Alcotest.(check bool) "member" true (List.mem x xs)) k

let test_prng_distribution () =
  (* coarse uniformity: each bucket within 3x of expectation *)
  let g = Prng.create ~seed:123 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket reasonable" true (c > 300 && c < 3000))
    buckets

let schema = [ Attr.make ~rel:"t" ~name:"a"; Attr.make ~rel:"t" ~name:"b" ]

let rel rows =
  Storage.Relation.make ~schema
    ~rows:(Array.of_list (List.map (fun (a, b) -> [| Value.Int a; Value.Str b |]) rows))

let test_relation_basic () =
  let r = rel [ (1, "x"); (2, "y") ] in
  Alcotest.(check int) "cardinality" 2 (Storage.Relation.cardinality r);
  Alcotest.(check bool) "byte size positive" true (Storage.Relation.byte_size r > 0)

let test_relation_lookup () =
  let r = rel [ (1, "x") ] in
  let look = Storage.Relation.lookup_fn r in
  let row = (Storage.Relation.rows r).(0) in
  Alcotest.(check bool) "exact" true
    (Value.equal (look (Attr.make ~rel:"t" ~name:"a") row) (Value.Int 1));
  Alcotest.(check bool) "by bare name" true
    (Value.equal (look (Attr.unqualified "b") row) (Value.Str "x"));
  Alcotest.(check bool) "missing is null" true
    (Value.equal (look (Attr.unqualified "zzz") row) Value.Null)

let test_relation_arity_check () =
  match
    Storage.Relation.make ~schema ~rows:[| [| Value.Int 1 |] |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch must be rejected"

let test_database () =
  let db = Storage.Database.create () in
  Storage.Database.add db ~table:"t" (rel [ (1, "x") ]);
  Storage.Database.add db ~table:"t" ~partition:1 (rel [ (2, "y") ]);
  Alcotest.(check int) "total rows" 2 (Storage.Database.total_rows db);
  Alcotest.(check bool) "find p0" true (Storage.Database.find db ~table:"t" () <> None);
  Alcotest.(check bool) "find p1" true
    (Storage.Database.find db ~table:"t" ~partition:1 () <> None);
  Alcotest.(check bool) "missing" true
    (Storage.Database.find db ~table:"nope" () = None);
  (* case-insensitive table names *)
  Alcotest.(check bool) "case" true (Storage.Database.find db ~table:"T" () <> None)

let test_order_by_and_take () =
  let r = rel [ (3, "c"); (1, "a"); (2, "b"); (1, "z") ] in
  let sorted = Storage.Relation.order_by r [ (Attr.make ~rel:"t" ~name:"a", false) ] in
  let firsts =
    Array.to_list (Storage.Relation.rows sorted) |> List.map (fun row -> row.(0))
  in
  Alcotest.(check bool) "ascending" true
    (firsts = [ Value.Int 1; Value.Int 1; Value.Int 2; Value.Int 3 ]);
  (* stability: the two key-1 rows keep their original relative order *)
  let seconds =
    Array.to_list (Storage.Relation.rows sorted) |> List.map (fun row -> row.(1))
  in
  Alcotest.(check bool) "stable" true
    (List.filteri (fun i _ -> i < 2) seconds = [ Value.Str "a"; Value.Str "z" ]);
  let top2 = Storage.Relation.take sorted 2 in
  Alcotest.(check int) "take" 2 (Storage.Relation.cardinality top2);
  Alcotest.(check int) "take beyond size is identity" 4
    (Storage.Relation.cardinality (Storage.Relation.take sorted 100))

let test_split_independence () =
  let g = Prng.create ~seed:4 in
  let h = Prng.split g in
  let a = List.init 50 (fun _ -> Prng.int g 1000) in
  let b = List.init 50 (fun _ -> Prng.int h 1000) in
  Alcotest.(check bool) "streams differ" true (a <> b)

(* --- columnar storage ---------------------------------------------

   The column-major representation behind [Relation.t]: every value
   (and its NULL bit) must survive rows -> columns -> rows for every
   [Value.ty], attribute resolution must be unaffected by the layout,
   and CSV loads land column-major with the declared types. *)

module Col = Storage.Column

let all_tys = [ Value.Tint; Value.Tfloat; Value.Tstr; Value.Tdate; Value.Tbool ]

let value_gen_of_ty ty =
  let open QCheck.Gen in
  match ty with
  | Value.Tint -> map (fun i -> Value.Int i) small_signed_int
  | Value.Tfloat -> map (fun i -> Value.Float (float_of_int i /. 8.)) small_signed_int
  | Value.Tstr -> map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 8))
  | Value.Tdate -> map (fun d -> Value.Date d) (int_range 0 100_000)
  | Value.Tbool -> map (fun b -> Value.Bool b) bool

let nullable_gen ty =
  QCheck.Gen.(frequency [ (1, return Value.Null); (3, value_gen_of_ty ty) ])

let prop_column_roundtrip =
  let gen =
    let open QCheck.Gen in
    oneofl all_tys >>= fun ty ->
    list_size (int_range 0 300) (nullable_gen ty) >>= fun vs ->
    return (ty, Array.of_list vs)
  in
  QCheck.Test.make ~count:300 ~name:"column round trip (values and null bitmap)"
    (QCheck.make
       ~print:(fun (ty, vs) ->
         Fmt.str "%s: %a" (Value.ty_to_string ty)
           Fmt.(array ~sep:comma (of_to_string Value.to_string))
           vs)
       gen)
    (fun (ty, vs) ->
      let typed = Col.of_values_typed ty vs in
      let sniffed = Col.of_values (Array.copy vs) in
      let identical c =
        Col.length c = Array.length vs
        && Array.for_all2 Value.equal vs (Col.to_values c)
        && Array.for_all
             (fun i -> Col.is_null c i = Value.is_null vs.(i))
             (Array.init (Array.length vs) (fun i -> i))
      in
      identical typed && identical sniffed
      (* gathering by the identity permutation changes nothing *)
      && Array.for_all2 Value.equal vs
           (Col.to_values
              (Col.gather typed (Array.init (Array.length vs) (fun i -> i)))))

let prop_relation_roundtrip =
  let row_gen =
    let rec seq = function
      | [] -> QCheck.Gen.return []
      | g :: gs ->
        QCheck.Gen.(g >>= fun v -> seq gs >>= fun vs -> return (v :: vs))
    in
    QCheck.Gen.map Array.of_list (seq (List.map nullable_gen all_tys))
  in
  let schema5 =
    List.mapi (fun i _ -> Attr.make ~rel:"u" ~name:(Printf.sprintf "c%d" i)) all_tys
  in
  QCheck.Test.make ~count:200 ~name:"relation rows -> columns -> rows identity"
    (QCheck.make QCheck.Gen.(map Array.of_list (list_size (int_range 0 200) row_gen)))
    (fun rows ->
      let r = Storage.Relation.make ~schema:schema5 ~rows in
      (* force the columnar side, then rebuild the row view from a fresh
         relation over those very columns *)
      let r2 =
        Storage.Relation.of_cols ~schema:schema5 ~card:(Array.length rows)
          (Storage.Relation.cols r)
      in
      let rows2 = Storage.Relation.rows r2 in
      Array.length rows = Array.length rows2
      && Array.for_all2 (fun a b -> Array.for_all2 Value.equal a b) rows rows2)

let test_duplicate_attr_resolution () =
  (* exact match first, last occurrence winning on duplicates; bare-name
     lookup only resolves when unique — unchanged by the columnar layout *)
  let a_r = Attr.make ~rel:"r" ~name:"a" and a_s = Attr.make ~rel:"s" ~name:"a" in
  let b = Attr.make ~rel:"r" ~name:"b" in
  let r =
    Storage.Relation.make ~schema:[ a_r; a_s; b ]
      ~rows:[| [| Value.Int 1; Value.Int 2; Value.Int 3 |] |]
  in
  Storage.Relation.columnarize r;
  Alcotest.(check bool) "exact r.a" true (Storage.Relation.find_index r a_r = Some 0);
  Alcotest.(check bool) "exact s.a" true (Storage.Relation.find_index r a_s = Some 1);
  Alcotest.(check bool) "ambiguous bare a" true
    (Storage.Relation.find_index r (Attr.unqualified "a") = None);
  Alcotest.(check bool) "unique bare b" true
    (Storage.Relation.find_index r (Attr.unqualified "b") = Some 2);
  let dup =
    Storage.Relation.make ~schema:[ a_r; a_r ]
      ~rows:[| [| Value.Int 1; Value.Int 2 |] |]
  in
  Alcotest.(check bool) "duplicate exact last wins" true
    (Storage.Relation.find_index dup a_r = Some 1);
  let look = Storage.Relation.lookup_fn dup in
  Alcotest.(check bool) "lookup uses the winning column" true
    (Value.equal (look a_r (Storage.Relation.rows dup).(0)) (Value.Int 2))

let test_csv_golden () =
  let csv = "a,b,c\n1,\"he said \"\"hi\"\"\",2.5\n,\"x,y\",\n3,,0.25\n" in
  let schema =
    [
      Attr.make ~rel:"t" ~name:"a";
      Attr.make ~rel:"t" ~name:"b";
      Attr.make ~rel:"t" ~name:"c";
    ]
  in
  let r =
    Storage.Csv.parse ~schema ~types:[ Value.Tint; Value.Tstr; Value.Tfloat ] csv
  in
  Alcotest.(check int) "three rows" 3 (Storage.Relation.cardinality r);
  let expect =
    [|
      [| Value.Int 1; Value.Str "he said \"hi\""; Value.Float 2.5 |];
      [| Value.Null; Value.Str "x,y"; Value.Null |];
      [| Value.Int 3; Value.Null; Value.Float 0.25 |];
    |]
  in
  let rows = Storage.Relation.rows r in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if not (Value.equal v expect.(i).(j)) then
            Alcotest.failf "row %d col %d: %s, expected %s" i j (Value.to_string v)
              (Value.to_string expect.(i).(j)))
        row)
    rows;
  (* the load landed column-major with the declared types, NULLs in the
     bitmap rather than as a boxed-values fallback *)
  let cols = Storage.Relation.cols r in
  (match cols.(0).Col.data with
  | Col.Ints _ -> ()
  | _ -> Alcotest.fail "int column not int-backed");
  (match cols.(2).Col.data with
  | Col.Floats _ -> ()
  | _ -> Alcotest.fail "float column not float-backed");
  Alcotest.(check bool) "a null bit" true (Col.is_null cols.(0) 1);
  Alcotest.(check bool) "b null bit" true (Col.is_null cols.(1) 2);
  Alcotest.(check bool) "non-null bit clear" false (Col.is_null cols.(0) 0)

let test_byte_size_layout_independent () =
  (* serialized size is a property of the values, not the layout *)
  let r = rel [ (1, "x"); (2, "yy"); (3, "zzz") ] in
  let manual =
    Array.fold_left
      (fun acc row ->
        acc + Array.fold_left (fun a v -> a + Value.byte_width v) 0 row)
      0 (Storage.Relation.rows r)
  in
  Alcotest.(check int) "row view" manual (Storage.Relation.byte_size r);
  let rc = Storage.Relation.of_cols ~schema ~card:3 (Storage.Relation.cols r) in
  Alcotest.(check int) "columnar view" manual (Storage.Relation.byte_size rc)

let test_byte_size_pinned () =
  (* exact accounting, pinned: strings are a 4-byte length prefix plus
     the heap bytes, NULL slots are 1 byte whatever the column type *)
  let c =
    Col.of_values_typed Value.Tstr
      [| Value.Str "ab"; Value.Null; Value.Str ""; Value.Str "xyz" |]
  in
  Alcotest.(check int) "strs: offsets + heap" (6 + 1 + 4 + 7) (Col.byte_size c);
  let ci =
    Col.of_values_typed Value.Tint [| Value.Int 1; Value.Null; Value.Int 3 |]
  in
  Alcotest.(check int) "ints with nulls" (8 + 1 + 8) (Col.byte_size ci);
  let cb = Col.of_values_typed Value.Tbool [| Value.Bool true; Value.Bool false |] in
  Alcotest.(check int) "bools" 2 (Col.byte_size cb);
  let cd = Col.of_values_typed Value.Tdate [| Value.Date 1; Value.Null |] in
  Alcotest.(check int) "dates" (4 + 1) (Col.byte_size cd);
  (* ... and always equal to the boxed per-value widths *)
  let boxed c =
    Array.fold_left (fun a v -> a + Value.byte_width v) 0 (Col.to_values c)
  in
  List.iter
    (fun c -> Alcotest.(check int) "matches boxed widths" (boxed c) (Col.byte_size c))
    [ c; ci; cb; cd ]

let test_all_null_sniffed_is_null () =
  (* an all-NULL input gives the sniffer no type evidence, so it lands
     in the boxed fallback with no bitmap — [is_null] must still hold
     (regression: it used to consult only the bitmap) *)
  List.iter
    (fun n ->
      let c = Col.of_values (Array.make n Value.Null) in
      for i = 0 to n - 1 do
        Alcotest.(check bool) "sniffed all-NULL is_null" true (Col.is_null c i);
        Alcotest.(check bool) "get yields NULL" true
          (Value.is_null (Col.get c i))
      done)
    [ 1; 9 ]

(* --- disk-backed segment store --------------------------------------

   Round trips must be representation-exact: same column variant (the
   meta file stores the tag), same values, same null bitmap, same
   byte_size — so a paged relation is indistinguishable from the
   resident one to all three engines. *)

let fresh_dir () =
  let f = Filename.temp_file "cgqp-segtest-" "" in
  Sys.remove f;
  f ^ ".d"

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      (Sys.readdir d);
    try Sys.rmdir d with Sys_error _ -> ()
  end

let col_tag (c : Col.t) =
  match c.Col.data with
  | Col.Ints _ -> 0
  | Col.Floats _ -> 1
  | Col.Strs _ -> 2
  | Col.Dates _ -> 3
  | Col.Bools _ -> 4
  | Col.Values _ -> 5

let same_col (a : Col.t) (b : Col.t) =
  col_tag a = col_tag b
  && Col.length a = Col.length b
  && Array.for_all2 Value.equal (Col.to_values a) (Col.to_values b)
  && Array.for_all
       (fun i -> Col.is_null a i = Col.is_null b i)
       (Array.init (Col.length a) (fun i -> i))
  && Col.byte_size a = Col.byte_size b

let seg_schema =
  List.mapi (fun i _ -> Attr.make ~rel:"s" ~name:(Printf.sprintf "c%d" i)) all_tys

(* deterministic mixed-type relation with NULLs sprinkled in *)
let seg_rel n =
  let cols =
    Array.of_list
      (List.mapi
         (fun j ty ->
           Col.of_values_typed ty
             (Array.init n (fun i ->
                  if (i + j) mod 7 = 0 then Value.Null
                  else
                    match ty with
                    | Value.Tint -> Value.Int ((i * 3) - 1)
                    | Value.Tfloat -> Value.Float (float_of_int i /. 4.)
                    | Value.Tstr -> Value.Str (String.make (i mod 5) 'x')
                    | Value.Tdate -> Value.Date (10_000 + i)
                    | Value.Tbool -> Value.Bool (i mod 2 = 0))))
         all_tys)
  in
  Storage.Relation.of_cols ~schema:seg_schema ~card:n cols

let check_seg_roundtrip n =
  let r = seg_rel n in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Storage.Segment.write ~dir r;
  let h = Storage.Segment.openh ~dir in
  Alcotest.(check int) "cardinality" n (Storage.Segment.cardinality h);
  let segs = (n + Storage.Segment.segment_rows - 1) / Storage.Segment.segment_rows in
  Alcotest.(check int) "segment count" segs (Storage.Segment.num_segments h);
  let cols = Storage.Segment.read_all h in
  let orig = Storage.Relation.cols r in
  Array.iteri
    (fun j c ->
      if not (same_col orig.(j) c) then
        Alcotest.failf "column %d not representation-identical after round trip" j)
    cols;
  let pr = Storage.Segment.relation h in
  Alcotest.(check bool) "is_paged" true (Storage.Relation.is_paged pr);
  Alcotest.(check bool) "resident relation is not paged" false
    (Storage.Relation.is_paged r);
  Alcotest.(check int) "paged byte_size" (Storage.Relation.byte_size r)
    (Storage.Relation.byte_size pr)

let test_segment_empty () = check_seg_roundtrip 0
let test_segment_one_row () = check_seg_roundtrip 1
let test_segment_exact_64k () = check_seg_roundtrip Storage.Segment.segment_rows
let test_segment_64k_plus_one () =
  check_seg_roundtrip (Storage.Segment.segment_rows + 1)

let test_segment_all_null_and_values () =
  (* an all-NULL typed column and a boxed [Values] column both keep
     their variant through the round trip — no sniffing on read *)
  let n = 10 in
  let sch = [ Attr.make ~rel:"s" ~name:"n"; Attr.make ~rel:"s" ~name:"v" ] in
  let cn = Col.of_values_typed Value.Tint (Array.make n Value.Null) in
  let cv =
    Col.of_value_array
      (Array.init n (fun i -> if i mod 2 = 0 then Value.Int i else Value.Str "m"))
  in
  let r = Storage.Relation.of_cols ~schema:sch ~card:n [| cn; cv |] in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Storage.Segment.write ~dir r;
  let cols = Storage.Segment.read_all (Storage.Segment.openh ~dir) in
  Alcotest.(check bool) "all-NULL int column" true (same_col cn cols.(0));
  Alcotest.(check bool) "boxed Values column" true (same_col cv cols.(1))

let test_segment_page_reads () =
  let r = seg_rel 100 in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Storage.Segment.write ~dir r;
  let pr = Storage.Segment.relation (Storage.Segment.openh ~dir) in
  Storage.Segment.reset_page_reads ();
  ignore (Storage.Relation.rows pr);
  let r1 = Storage.Segment.page_reads () in
  Alcotest.(check bool) "reads counted" true (r1 > 0);
  Alcotest.(check bool) "bytes counted" true (Storage.Segment.page_read_bytes () > 0);
  ignore (Storage.Relation.rows pr);
  (* the out-of-core contract: paged relations never cache *)
  Alcotest.(check bool) "second access pages again" true
    (Storage.Segment.page_reads () > r1)

let same_rel a b =
  Storage.Relation.cardinality a = Storage.Relation.cardinality b
  && Array.for_all2
       (fun x y -> Array.for_all2 Value.equal x y)
       (Storage.Relation.rows a) (Storage.Relation.rows b)

let test_database_paged () =
  let db = Storage.Database.create () in
  Storage.Database.add db ~table:"t" (rel [ (1, "x"); (2, "y") ]);
  Storage.Database.add db ~table:"t" ~partition:1 (rel [ (3, "z") ]);
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun s -> rm_rf (Filename.concat dir s)) (Sys.readdir dir);
        try Sys.rmdir dir with Sys_error _ -> ()
      end)
  @@ fun () ->
  let pdb = Storage.Database.paged db ~dir in
  Alcotest.(check int) "total rows" (Storage.Database.total_rows db)
    (Storage.Database.total_rows pdb);
  let part p =
    ( Option.get (Storage.Database.find db ~table:"t" ~partition:p ()),
      Option.get (Storage.Database.find pdb ~table:"t" ~partition:p ()) )
  in
  List.iter
    (fun p ->
      let o, pg = part p in
      Alcotest.(check bool)
        (Printf.sprintf "partition %d paged" p)
        true
        (Storage.Relation.is_paged pg);
      Alcotest.(check bool) (Printf.sprintf "partition %d rows" p) true
        (same_rel o pg))
    [ 0; 1 ]

let prop_builder_matches_typed =
  let gen =
    let open QCheck.Gen in
    oneofl all_tys >>= fun ty ->
    list_size (int_range 0 300) (nullable_gen ty) >>= fun vs ->
    return (ty, Array.of_list vs)
  in
  QCheck.Test.make ~count:200
    ~name:"Column.Builder equals of_values_typed (variant, nulls, bytes)"
    (QCheck.make
       ~print:(fun (ty, vs) ->
         Fmt.str "%s: %a" (Value.ty_to_string ty)
           Fmt.(array ~sep:comma (of_to_string Value.to_string))
           vs)
       gen)
    (fun (ty, vs) ->
      let b = Col.Builder.create ~hint:4 ty in
      Array.iter (Col.Builder.add b) vs;
      same_col (Col.of_values_typed ty vs) (Col.Builder.finish b))

let prop_segment_roundtrip =
  let gen =
    let open QCheck.Gen in
    oneofl all_tys >>= fun ty ->
    list_size (int_range 0 300) (nullable_gen ty) >>= fun vs ->
    return (ty, Array.of_list vs)
  in
  QCheck.Test.make ~count:150 ~name:"segment round trip per column type"
    (QCheck.make
       ~print:(fun (ty, vs) ->
         Fmt.str "%s: %a" (Value.ty_to_string ty)
           Fmt.(array ~sep:comma (of_to_string Value.to_string))
           vs)
       gen)
    (fun (ty, vs) ->
      let c = Col.of_values_typed ty vs in
      let r =
        Storage.Relation.of_cols
          ~schema:[ Attr.make ~rel:"q" ~name:"c" ]
          ~card:(Array.length vs) [| c |]
      in
      let dir = fresh_dir () in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      Storage.Segment.write ~dir r;
      same_col c (Storage.Segment.read_all (Storage.Segment.openh ~dir)).(0))

let prop_pick_in_list =
  QCheck.Test.make ~name:"pick returns a member" ~count:200
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 20) small_int))
    (fun (seed, xs) ->
      let g = Prng.create ~seed in
      List.mem (Prng.pick g xs) xs)

let () =
  Alcotest.run "storage"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "pick_k" `Quick test_prng_pick_k;
          Alcotest.test_case "distribution" `Quick test_prng_distribution;
          QCheck_alcotest.to_alcotest prop_pick_in_list;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basic" `Quick test_relation_basic;
          Alcotest.test_case "lookup" `Quick test_relation_lookup;
          Alcotest.test_case "arity check" `Quick test_relation_arity_check;
          Alcotest.test_case "database" `Quick test_database;
          Alcotest.test_case "order_by/take" `Quick test_order_by_and_take;
          Alcotest.test_case "split" `Quick test_split_independence;
        ] );
      ( "columnar",
        [
          QCheck_alcotest.to_alcotest prop_column_roundtrip;
          QCheck_alcotest.to_alcotest prop_relation_roundtrip;
          Alcotest.test_case "duplicate attribute resolution" `Quick
            test_duplicate_attr_resolution;
          Alcotest.test_case "CSV golden (empty/quoted/NULL)" `Quick test_csv_golden;
          Alcotest.test_case "byte size layout-independent" `Quick
            test_byte_size_layout_independent;
          Alcotest.test_case "byte size pinned (strings, nulls)" `Quick
            test_byte_size_pinned;
          Alcotest.test_case "all-NULL sniffed column is_null" `Quick
            test_all_null_sniffed_is_null;
          QCheck_alcotest.to_alcotest prop_builder_matches_typed;
        ] );
      ( "segments",
        [
          Alcotest.test_case "empty relation" `Quick test_segment_empty;
          Alcotest.test_case "one row" `Quick test_segment_one_row;
          Alcotest.test_case "exactly 64K rows" `Quick test_segment_exact_64k;
          Alcotest.test_case "64K + 1 rows" `Quick test_segment_64k_plus_one;
          Alcotest.test_case "all-NULL and boxed Values columns" `Quick
            test_segment_all_null_and_values;
          Alcotest.test_case "page-read accounting, no caching" `Quick
            test_segment_page_reads;
          Alcotest.test_case "Database.paged twin" `Quick test_database_paged;
          QCheck_alcotest.to_alcotest prop_segment_roundtrip;
        ] );
    ]
