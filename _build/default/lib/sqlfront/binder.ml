(* Name resolution: turns a parsed [Ast.query] into a canonical logical
   plan. The initial plan is a left-deep chain of condition-less joins
   with the full WHERE predicate on top; the optimizer's pushdown rules
   distribute conjuncts afterwards. *)

open Relalg

exception Error of string

let fail fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

type scope = {
  aliases : (string * string) list;  (* alias -> table *)
  cols : (string * string list) list;  (* alias -> column names *)
}

let make_scope ~table_cols (from : (string * string) list) : scope =
  let cols =
    List.map
      (fun (table, alias) ->
        match table_cols table with
        | Some cs -> (alias, cs)
        | None -> fail "unknown table %s" table)
      from
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (_, alias) ->
      if Hashtbl.mem seen alias then fail "duplicate alias %s" alias;
      Hashtbl.add seen alias ())
    from;
  { aliases = from; cols }

(* Qualify a column reference: unqualified names must resolve to exactly
   one alias. *)
let resolve_attr (scope : scope) (a : Attr.t) : Attr.t =
  if Attr.is_qualified a then begin
    match List.assoc_opt a.Attr.rel scope.cols with
    | Some cs when List.mem a.Attr.name cs -> a
    | Some _ -> fail "column %s not found in relation %s" a.Attr.name a.Attr.rel
    | None -> fail "unknown relation alias %s" a.Attr.rel
  end
  else
    let owners =
      List.filter (fun (_, cs) -> List.mem a.Attr.name cs) scope.cols
    in
    match owners with
    | [ (alias, _) ] -> Attr.make ~rel:alias ~name:a.Attr.name
    | [] -> fail "unknown column %s" a.Attr.name
    | _ :: _ :: _ -> fail "ambiguous column %s" a.Attr.name

let resolve_scalar scope e = Expr.map_cols (resolve_attr scope) e
let resolve_pred scope p = Pred.map_cols (resolve_attr scope) p

let default_agg_alias i (fn : Expr.agg_fn) (arg : Expr.scalar) =
  match arg with
  | Expr.Col a -> Expr.agg_fn_to_string fn ^ "_" ^ a.Attr.name
  | _ -> Printf.sprintf "%s_%d" (Expr.agg_fn_to_string fn) i

let bind_query ~(table_cols : string -> string list option) (q : Ast.query) : Plan.t =
  if q.Ast.select = [] then fail "empty select list";
  if q.Ast.from = [] then fail "empty from list";
  let scope = make_scope ~table_cols q.Ast.from in
  let base =
    match q.Ast.from with
    | [] -> assert false
    | (t0, a0) :: rest ->
      List.fold_left
        (fun acc (t, a) -> Plan.Join (Pred.True, acc, Plan.Scan { table = t; alias = a }))
        (Plan.Scan { table = t0; alias = a0 })
        rest
  in
  let where = resolve_pred scope q.Ast.where in
  let filtered = if where = Pred.True then base else Plan.Select (where, base) in
  if Ast.is_aggregate_query q then begin
    let keys = List.map (resolve_attr scope) q.Ast.group_by in
    let aggs, out_items =
      List.fold_left
        (fun (aggs, items) item ->
          match item with
          | Ast.Agg_item (fn, arg, alias) ->
            let arg = resolve_scalar scope arg in
            let alias =
              match alias with
              | Some a -> a
              | None -> default_agg_alias (List.length aggs) fn arg
            in
            ( { Expr.fn; arg; alias } :: aggs,
              (Expr.Col (Attr.unqualified alias), Attr.unqualified alias) :: items )
          | Ast.Scalar_item (e, alias) -> (
            match resolve_scalar scope e with
            | Expr.Col a when List.exists (Attr.equal a) keys ->
              let name =
                match alias with Some al -> Attr.unqualified al | None -> a
              in
              (aggs, (Expr.Col a, name) :: items)
            | Expr.Col a ->
              fail "column %s must appear in GROUP BY" (Attr.to_string a)
            | _ -> fail "select expressions over group keys are not supported"))
        ([], []) q.Ast.select
    in
    let aggs = List.rev aggs and out_items = List.rev out_items in
    let agg_plan = Plan.Aggregate { keys; aggs; input = filtered } in
    (* HAVING references group keys (qualified) or aggregate aliases
       (unqualified); resolve keys, leave aliases untouched *)
    let agg_plan =
      match q.Ast.having with
      | Pred.True -> agg_plan
      | having ->
        let resolve_having a =
          if List.exists (fun (g : Expr.agg) -> String.equal g.alias a.Attr.name) aggs
          then Attr.unqualified a.Attr.name
          else resolve_attr scope a
        in
        Plan.Select (Pred.map_cols resolve_having having, agg_plan)
    in
    Plan.Project (out_items, agg_plan)
  end
  else begin
    if q.Ast.having <> Pred.True then fail "HAVING requires GROUP BY or aggregates";
    let items =
      List.mapi
        (fun i item ->
          match item with
          | Ast.Scalar_item (e, alias) ->
            let e = resolve_scalar scope e in
            let name =
              match alias, e with
              | Some a, _ -> Attr.unqualified a
              | None, Expr.Col a -> a
              | None, _ -> Attr.unqualified (Printf.sprintf "col_%d" i)
            in
            (e, name)
          | Ast.Agg_item _ -> assert false)
        q.Ast.select
    in
    Plan.Project (items, filtered)
  end

(* Convenience: parse then bind. *)
let plan_of_sql ~table_cols sql =
  let ast = Parser.query sql in
  bind_query ~table_cols ast
