(* Hand-written lexer for the SQL subset and for policy expressions.

   Identifiers may contain '-' when the character that follows is a
   letter (needed for database names such as "db-5"); consequently,
   subtraction between two column references must be written with
   surrounding spaces ("a - b"). *)

type token =
  | Ident of string  (* lowercased *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Star
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Plus
  | Minus
  | Slash
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

exception Error of string

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "ident %s" s
  | Int_lit i -> Fmt.pf ppf "int %d" i
  | Float_lit f -> Fmt.pf ppf "float %g" f
  | String_lit s -> Fmt.pf ppf "string '%s'" s
  | Star -> Fmt.string ppf "*"
  | Comma -> Fmt.string ppf ","
  | Dot -> Fmt.string ppf "."
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Plus -> Fmt.string ppf "+"
  | Minus -> Fmt.string ppf "-"
  | Slash -> Fmt.string ppf "/"
  | Eq -> Fmt.string ppf "="
  | Neq -> Fmt.string ppf "<>"
  | Lt -> Fmt.string ppf "<"
  | Le -> Fmt.string ppf "<="
  | Gt -> Fmt.string ppf ">"
  | Ge -> Fmt.string ppf ">="
  | Eof -> Fmt.string ppf "<eof>"

let token_to_string t = Fmt.str "%a" pp_token t

let is_digit c = c >= '0' && c <= '9'
let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_start c = is_letter c || c = '_'
let is_ident_char c = is_letter c || is_digit c || c = '_'

let tokenize (s : string) : token list =
  let n = String.length s in
  let rec skip_ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r') then
      skip_ws (i + 1)
    else i
  in
  let rec lex acc i =
    let i = skip_ws i in
    if i >= n then List.rev (Eof :: acc)
    else
      let c = s.[i] in
      if is_ident_start c then begin
        let j = ref i in
        let continue = ref true in
        while !continue && !j < n do
          let cj = s.[!j] in
          if is_ident_char cj then incr j
          else if cj = '-' && !j + 1 < n && is_letter s.[!j + 1] then incr j
          else if cj = '-' && !j + 1 < n && is_digit s.[!j + 1]
                  && !j > i && is_letter s.[!j - 1] then
            (* "db-5": dash followed by digit, preceded by a letter *)
            incr j
          else continue := false
        done;
        let word = String.lowercase_ascii (String.sub s i (!j - i)) in
        lex (Ident word :: acc) !j
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit s.[!j] do incr j done;
        if !j < n && s.[!j] = '.' && !j + 1 < n && is_digit s.[!j + 1] then begin
          incr j;
          while !j < n && is_digit s.[!j] do incr j done;
          let f = float_of_string (String.sub s i (!j - i)) in
          lex (Float_lit f :: acc) !j
        end
        else
          let v = int_of_string (String.sub s i (!j - i)) in
          lex (Int_lit v :: acc) !j
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Error "unterminated string literal")
          else if s.[j] = '\'' then
            if j + 1 < n && s.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf s.[j];
            scan (j + 1)
          end
        in
        let j = scan (i + 1) in
        lex (String_lit (Buffer.contents buf) :: acc) j
      end
      else
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | "<>" -> lex (Neq :: acc) (i + 2)
        | "!=" -> lex (Neq :: acc) (i + 2)
        | "<=" -> lex (Le :: acc) (i + 2)
        | ">=" -> lex (Ge :: acc) (i + 2)
        | _ -> (
          match c with
          | '*' -> lex (Star :: acc) (i + 1)
          | ',' -> lex (Comma :: acc) (i + 1)
          | '.' -> lex (Dot :: acc) (i + 1)
          | '(' -> lex (Lparen :: acc) (i + 1)
          | ')' -> lex (Rparen :: acc) (i + 1)
          | '+' -> lex (Plus :: acc) (i + 1)
          | '-' -> lex (Minus :: acc) (i + 1)
          | '/' -> lex (Slash :: acc) (i + 1)
          | '=' -> lex (Eq :: acc) (i + 1)
          | '<' -> lex (Lt :: acc) (i + 1)
          | '>' -> lex (Gt :: acc) (i + 1)
          | _ -> raise (Error (Printf.sprintf "unexpected character %C at offset %d" c i)))
  in
  lex [] 0
