(** Workload generators (§7.1): random PK–FK join queries spanning two
    or more locations, and policy-expression sets instantiated from the
    T / C / CR / CR+A templates against the schema and a property file
    analogue. Fully deterministic given a seed. *)

val visible_cols : string -> string list
(** Columns the workload may reference (free-text columns excluded). *)

val aggregatable : string -> string list
val groupable : string -> string list

val location_of : string -> Catalog.Location.t
(** Home location of a table under the Table 2 distribution. *)

val gen_queries : ?seed:int -> n:int -> unit -> string list
(** [n] random ad-hoc queries as SQL text: 55% over two tables, 35%
    three, 10% four; ~30% aggregation queries; 3–4 non-join predicates
    each; always spanning at least two locations. [seed] defaults to
    {!Storage.Seed.resolve} (the [CGQP_SEED] environment variable,
    else 42). *)

val gen_expressions :
  ?seed:int ->
  template:Policies.set_name ->
  n:int ->
  ?locations:Catalog.Location.t list ->
  ?locs_per_expr:int ->
  unit ->
  string list
(** [n] policy expressions: a backbone expression per table (ensuring
    every query keeps a compliant plan via the hub L1) plus
    template-shaped random expressions. [locs_per_expr] fixes the
    number of [to] locations per expression (the Fig. 8 experiment). *)
