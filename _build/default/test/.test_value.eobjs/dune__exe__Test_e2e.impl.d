test/test_e2e.ml: Alcotest Array Attr Catalog Cgqp Exec Expr Float Fmt List Optimizer Plan Pred Printf Relalg Storage Tpch Value
