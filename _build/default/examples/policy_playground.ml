(* Policy playground: the worked example of the paper's Table 1.

   A relation T(A,...,G) is governed by four policy expressions; we
   evaluate the policy evaluation algorithm 𝒜 on the two example queries
   and on a few variations, showing how output columns, predicates,
   grouping and aggregation functions interact.

   Run with: dune exec examples/policy_playground.exe *)

open Relalg

let cat =
  let open Catalog.Table_def in
  let col c = column c Value.Tint in
  let t =
    make ~name:"t"
      ~columns:[ col "a"; col "b"; col "c"; col "d"; col "e"; col "f"; col "g" ]
      ~key:[ "a" ] ~row_count:1000 ()
  in
  Catalog.make
    ~network:
      (Catalog.Network.uniform ~locations:[ "l0"; "l1"; "l2"; "l3"; "l4" ] ~alpha:100.
         ~beta:1e-5)
    [ (t, [ { Catalog.db = "db-t"; location = "l0"; fraction = 1.0 } ]) ]

let expressions =
  [
    "ship a, b, c from t to l2, l3";
    "ship a, b from t to l1, l2, l3, l4";
    "ship a, d from t to l1, l3 where b > 10";
    "ship f, g as aggregates sum, avg from t to l1, l2 group by e, c";
  ]

let policies = Policy.Pcatalog.of_texts cat expressions

let table_cols name = Catalog.table_cols cat name

let show sql =
  let plan =
    Sqlfront.Binder.plan_of_sql
      ~table_cols:(fun t ->
        match Catalog.find_table cat t with
        | Some e -> Some (Catalog.Table_def.col_names e.Catalog.def)
        | None -> None)
      sql
  in
  let summary = Summary.analyze ~table_cols plan in
  let locs = Policy.Evaluator.locations_for ~catalog:cat ~policies summary in
  Fmt.pr "  %-55s -> %a@." sql Catalog.Location.Set.pp locs

let () =
  Fmt.pr "Policy expressions over T(a..g) at l0 (the paper's Table 1):@.";
  List.iter (Fmt.pr "  %s@.") expressions;
  Fmt.pr "@.A(q, D, P) — where may each query's output be shipped?@.";
  Fmt.pr "(the home location l0 is always legal)@.@.";
  show "SELECT a, c, d FROM t WHERE b > 15";
  show "SELECT c, SUM(f * (1 - g)) FROM t GROUP BY c";
  Fmt.pr "@.Variations:@.";
  show "SELECT a FROM t";
  show "SELECT d FROM t";
  show "SELECT d FROM t WHERE b = 11";
  show "SELECT e, SUM(f) FROM t GROUP BY e";
  show "SELECT d, SUM(f) FROM t GROUP BY d";
  show "SELECT MIN(f) FROM t";
  show "SELECT f FROM t";
  Fmt.pr "@.A query whose derivation the analysis cannot sanction is@.";
  Fmt.pr "rejected by the optimizer; try: SELECT f FROM t with a target@.";
  Fmt.pr "other than l0.@."
