(* Execution-engine tests: each physical operator, SHIP accounting, and
   ship insertion. *)

open Relalg
module P = Exec.Pplan

let network = Catalog.Network.uniform ~locations:[ "x"; "y" ] ~alpha:10. ~beta:1.0

let attr rel name = Attr.make ~rel ~name
let col rel name = Expr.Col (attr rel name)

let db_with tables =
  let db = Storage.Database.create () in
  List.iter
    (fun (name, cols, rows) ->
      let schema = List.map (fun c -> attr name c) cols in
      Storage.Database.add db ~table:name
        (Storage.Relation.make ~schema ~rows:(Array.of_list rows)))
    tables;
  db

let table_cols = function
  | "r" -> [ "a"; "b" ]
  | "s" -> [ "a"; "c" ]
  | t -> Alcotest.failf "unknown table %s" t

let default_db () =
  db_with
    [
      ( "r",
        [ "a"; "b" ],
        [
          [| Value.Int 1; Value.Str "one" |];
          [| Value.Int 2; Value.Str "two" |];
          [| Value.Int 3; Value.Str "three" |];
        ] );
      ( "s",
        [ "a"; "c" ],
        [
          [| Value.Int 1; Value.Int 10 |];
          [| Value.Int 1; Value.Int 20 |];
          [| Value.Int 3; Value.Int 30 |];
          [| Value.Int 4; Value.Int 40 |];
        ] );
    ]

let node ?(loc = "x") ?(est = { P.est_rows = 1.; est_width = 8. }) n children =
  { P.node = n; loc; children; est }

let run ?(db = default_db ()) plan =
  Exec.Interp.run ~network ~db ~table_cols plan

let scan ?(loc = "x") t = node ~loc (P.Table_scan { table = t; alias = t; partition = 0 }) []

let test_scan () =
  let r = run (scan "r") in
  Alcotest.(check int) "three rows" 3 (Storage.Relation.cardinality r.relation);
  Alcotest.(check int) "two cols" 2 (List.length (Storage.Relation.schema r.relation))

let test_filter () =
  let plan =
    node (P.Filter (Pred.Atom (Pred.Cmp (Pred.Ge, col "r" "a", Expr.Const (Value.Int 2)))))
      [ scan "r" ]
  in
  let r = run plan in
  Alcotest.(check int) "two rows" 2 (Storage.Relation.cardinality r.relation)

let test_project () =
  let plan =
    node
      (P.Project
         [ (Expr.Binop (Expr.Mul, col "r" "a", Expr.Const (Value.Int 10)), Attr.unqualified "x") ])
      [ scan "r" ]
  in
  let r = run plan in
  let rows = Storage.Relation.rows r.relation in
  Alcotest.(check bool) "computed" true (Value.equal rows.(0).(0) (Value.Int 10));
  Alcotest.(check bool) "computed2" true (Value.equal rows.(2).(0) (Value.Int 30))

let test_hash_join () =
  let plan =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; scan "s" ]
  in
  let r = run plan in
  (* keys 1 (x2), 3 (x1): 3 join rows *)
  Alcotest.(check int) "join rows" 3 (Storage.Relation.cardinality r.relation);
  Alcotest.(check int) "concat schema" 4 (List.length (Storage.Relation.schema r.relation))

let test_hash_join_residual () =
  let plan =
    node
      (P.Hash_join
         {
           keys = [ (attr "r" "a", attr "s" "a") ];
           residual = Pred.Atom (Pred.Cmp (Pred.Gt, col "s" "c", Expr.Const (Value.Int 15)));
         })
      [ scan "r"; scan "s" ]
  in
  let r = run plan in
  Alcotest.(check int) "residual filters" 2 (Storage.Relation.cardinality r.relation)

let test_nl_join () =
  let plan =
    node
      (P.Nl_join (Pred.Atom (Pred.Cmp (Pred.Lt, col "r" "a", col "s" "c"))))
      [ scan "r"; scan "s" ]
  in
  let r = run plan in
  (* all 12 combinations satisfy a < c *)
  Alcotest.(check int) "cross filtered" 12 (Storage.Relation.cardinality r.relation)

let test_merge_join () =
  (* inputs sorted ascending on the key; duplicate keys on both sides *)
  let db =
    db_with
      [
        ( "r",
          [ "a"; "b" ],
          [
            [| Value.Int 1; Value.Str "r1" |];
            [| Value.Int 1; Value.Str "r1b" |];
            [| Value.Int 2; Value.Str "r2" |];
            [| Value.Int 4; Value.Str "r4" |];
          ] );
        ( "s",
          [ "a"; "c" ],
          [
            [| Value.Int 1; Value.Int 10 |];
            [| Value.Int 1; Value.Int 11 |];
            [| Value.Int 3; Value.Int 30 |];
            [| Value.Int 4; Value.Int 40 |];
          ] );
      ]
  in
  let merge =
    node
      (P.Merge_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; scan "s" ]
  in
  let hash =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; scan "s" ]
  in
  let rows p =
    Storage.Relation.rows (run ~db p).relation
    |> Array.to_list |> List.map Array.to_list
    |> List.sort (List.compare Value.compare)
  in
  (* 2x2 for key 1, plus key 4: five rows, identical to the hash join *)
  Alcotest.(check int) "five rows" 5 (List.length (rows merge));
  Alcotest.(check bool) "merge = hash" true (rows merge = rows hash)

let test_merge_join_nulls_and_residual () =
  let db =
    db_with
      [
        ("r", [ "a"; "b" ], [ [| Value.Null; Value.Str "n" |]; [| Value.Int 1; Value.Str "x" |] ]);
        ("s", [ "a"; "c" ], [ [| Value.Int 1; Value.Int 5 |]; [| Value.Int 1; Value.Int 50 |] ]);
      ]
  in
  let plan =
    node
      (P.Merge_join
         {
           keys = [ (attr "r" "a", attr "s" "a") ];
           residual = Pred.Atom (Pred.Cmp (Pred.Gt, col "s" "c", Expr.Const (Value.Int 10)));
         })
      [ scan "r"; scan "s" ]
  in
  let r = run ~db plan in
  Alcotest.(check int) "null skipped, residual filters" 1
    (Storage.Relation.cardinality r.relation)

let test_sort_operator () =
  let plan = node (P.Sort [ (attr "s" "c", true) ]) [ scan "s" ] in
  let r = run plan in
  let look = Storage.Relation.lookup_fn r.relation in
  let vals =
    Array.to_list (Storage.Relation.rows r.relation)
    |> List.map (fun row -> look (attr "s" "c") row)
  in
  let rec desc = function
    | a :: (b :: _ as rest) -> Value.compare a b >= 0 && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (desc vals)

let test_hash_agg () =
  let plan =
    node
      (P.Hash_agg
         {
           keys = [ attr "s" "a" ];
           aggs =
             [
               { Expr.fn = Expr.Sum; arg = col "s" "c"; alias = "total" };
               { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1); alias = "n" };
               { Expr.fn = Expr.Min; arg = col "s" "c"; alias = "lo" };
               { Expr.fn = Expr.Max; arg = col "s" "c"; alias = "hi" };
               { Expr.fn = Expr.Avg; arg = col "s" "c"; alias = "mean" };
             ];
         })
      [ scan "s" ]
  in
  let r = run plan in
  Alcotest.(check int) "three groups" 3 (Storage.Relation.cardinality r.relation);
  let look = Storage.Relation.lookup_fn r.relation in
  let find_group k =
    match
      Array.find_opt
        (fun row -> Value.equal (look (attr "s" "a") row) (Value.Int k))
        (Storage.Relation.rows r.relation)
    with
    | Some row -> row
    | None -> Alcotest.failf "group %d missing" k
  in
  let g1 = find_group 1 in
  Alcotest.(check bool) "sum" true (Value.equal (look (Attr.unqualified "total") g1) (Value.Int 30));
  Alcotest.(check bool) "count" true (Value.equal (look (Attr.unqualified "n") g1) (Value.Int 2));
  Alcotest.(check bool) "min" true (Value.equal (look (Attr.unqualified "lo") g1) (Value.Int 10));
  Alcotest.(check bool) "max" true (Value.equal (look (Attr.unqualified "hi") g1) (Value.Int 20));
  Alcotest.(check bool) "avg" true
    (Value.equal (look (Attr.unqualified "mean") g1) (Value.Float 15.))

let test_global_agg_empty_input () =
  let plan =
    node
      (P.Hash_agg
         {
           keys = [];
           aggs = [ { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1); alias = "n" } ];
         })
      [
        node (P.Filter Pred.False) [ scan "s" ];
      ]
  in
  let r = run plan in
  Alcotest.(check int) "one row" 1 (Storage.Relation.cardinality r.relation);
  let row = (Storage.Relation.rows r.relation).(0) in
  Alcotest.(check bool) "count zero" true (Value.equal row.(0) (Value.Int 0))

let test_union_all () =
  let plan = node P.Union_all [ scan "r"; scan "r" ] in
  let r = run plan in
  Alcotest.(check int) "doubled" 6 (Storage.Relation.cardinality r.relation)

let test_ship_accounting () =
  let inner = scan ~loc:"y" "r" in
  let plan =
    node (P.Ship { from_loc = "y"; to_loc = "x" }) [ inner ]
  in
  let r = run plan in
  Alcotest.(check int) "one ship" 1 (List.length r.stats.Exec.Interp.ships);
  let s = List.hd r.stats.Exec.Interp.ships in
  Alcotest.(check int) "rows shipped" 3 s.Exec.Interp.rows;
  Alcotest.(check bool) "bytes positive" true (s.Exec.Interp.bytes > 0);
  (* alpha 10 + beta 1.0 per byte *)
  Alcotest.(check (float 1e-6)) "cost model" (10. +. float_of_int s.Exec.Interp.bytes)
    s.Exec.Interp.cost_ms

let test_multisite_join_accounting () =
  (* Both join inputs cross the wire: every per-operator figure in the
     Obs profile must agree with the stats block and with the network
     cost model. *)
  let plan =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [
        node (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "r" ];
        node (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "s" ];
      ]
  in
  let r = run plan in
  let ships = r.stats.Exec.Interp.ships in
  Alcotest.(check int) "two ships" 2 (List.length ships);
  List.iter
    (fun (s : Exec.Interp.ship_record) ->
      Alcotest.(check (float 1e-6)) "cost model per ship"
        (Catalog.Network.ship_cost network ~from_loc:s.from_loc ~to_loc:s.to_loc
           ~bytes:(float_of_int s.bytes))
        s.cost_ms;
      Alcotest.(check int) "single attempt" 1 s.attempts)
    ships;
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 ships in
  Alcotest.(check int) "payload total"
    (sum (fun (s : Exec.Interp.ship_record) -> s.bytes))
    (Exec.Interp.total_ship_bytes r.stats);
  Alcotest.(check int) "retry-free traffic equals payload"
    (Exec.Interp.total_ship_bytes r.stats)
    (Exec.Interp.total_traffic_bytes r.stats);
  (* profile cross-check: the SHIP operators' profile entries carry the
     same records, and their actual rows/bytes are the shipped ones *)
  let profiled =
    List.filter_map (fun (p : Exec.Interp.node_profile) -> Option.map (fun s -> (p, s)) p.ship)
      r.profile
  in
  Alcotest.(check int) "profiled ships" 2 (List.length profiled);
  List.iter
    (fun ((p : Exec.Interp.node_profile), (s : Exec.Interp.ship_record)) ->
      Alcotest.(check bool) "profile record is the stats record" true
        (List.mem s ships);
      Alcotest.(check int) "profile rows" s.rows p.actual_rows;
      Alcotest.(check int) "profile bytes" s.bytes p.actual_bytes)
    profiled;
  (* the r-side ship moved 3 rows, the s-side 4 *)
  Alcotest.(check (list int)) "row counts" [ 3; 4 ]
    (List.sort compare (List.map (fun (s : Exec.Interp.ship_record) -> s.rows) ships))

let test_retry_accounting_totals () =
  (* Under a flaky link, retried bytes count once toward the payload
     totals (the result is delivered once) and [attempts] times toward
     the traffic the wire actually carried. Drop fates are a pure
     function of the schedule seed, so scan seeds until one yields a
     completed run that did retry — the pick is then deterministic
     forever. *)
  let plan = node (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "r" ] in
  let flaky seed =
    Catalog.Network.Fault.make ~seed
      [ Catalog.Network.Fault.Transient_drop { from_loc = "x"; to_loc = "y"; p = 0.5 } ]
  in
  let rec find seed =
    if seed > 1000 then Alcotest.fail "no seed in 0..1000 yields a retried success"
    else
      match Exec.Interp.run ~faults:(flaky seed) ~network ~db:(default_db ()) ~table_cols plan with
      | r when r.Exec.Interp.stats.Exec.Interp.ship_retries > 0 -> (seed, r)
      | _ | (exception Exec.Interp.Ship_failed _) -> find (seed + 1)
  in
  let _seed, r = find 0 in
  let s = List.hd r.Exec.Interp.stats.Exec.Interp.ships in
  Alcotest.(check int) "retries = attempts - 1"
    (s.Exec.Interp.attempts - 1)
    r.Exec.Interp.stats.Exec.Interp.ship_retries;
  Alcotest.(check int) "payload counted once" s.Exec.Interp.bytes
    (Exec.Interp.total_ship_bytes r.Exec.Interp.stats);
  Alcotest.(check int) "traffic counted per attempt"
    (s.Exec.Interp.bytes * s.Exec.Interp.attempts)
    (Exec.Interp.total_traffic_bytes r.Exec.Interp.stats);
  (* the delivered relation is the same as a fault-free run's *)
  let clean = run plan in
  Alcotest.(check string) "same delivered bytes"
    (Storage.Relation.to_csv clean.Exec.Interp.relation)
    (Storage.Relation.to_csv r.Exec.Interp.relation);
  (* each failed attempt also pays its transfer before backing off *)
  let one_try =
    Catalog.Network.ship_cost network ~from_loc:"y" ~to_loc:"x"
      ~bytes:(float_of_int s.Exec.Interp.bytes)
  in
  Alcotest.(check bool) "cost exceeds attempts * transfer" true
    (s.Exec.Interp.cost_ms
    >= (float_of_int s.Exec.Interp.attempts *. one_try) -. 1e-9)

let test_with_ships () =
  let j =
    node ~loc:"x"
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan ~loc:"x" "r"; scan ~loc:"y" "s" ]
  in
  let shipped = P.with_ships j in
  let ships = P.ships shipped in
  Alcotest.(check int) "one ship inserted" 1 (List.length ships);
  (match ships with
  | [ (f, t, _) ] ->
    Alcotest.(check string) "from" "y" f;
    Alcotest.(check string) "to" "x" t
  | _ -> Alcotest.fail "expected one ship");
  (* executing the shipped plan matches the unshipped result *)
  let r1 = run j and r2 = run shipped in
  Alcotest.(check int) "same result"
    (Storage.Relation.cardinality r1.relation)
    (Storage.Relation.cardinality r2.relation)

let test_makespan_parallel_branches () =
  (* two shipped children proceed in parallel: the makespan reflects the
     slower branch plus local work, not the sum *)
  let j =
    node ~loc:"x"
      (P.Nl_join Pred.True)
      [
        node ~loc:"x" (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "r" ];
        node ~loc:"x" (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "s" ];
      ]
  in
  let r = run j in
  let total = Exec.Interp.total_ship_cost r.stats in
  Alcotest.(check bool) "makespan below the serial total" true
    (r.Exec.Interp.makespan_ms < total);
  Alcotest.(check bool) "but at least the slower ship" true
    (r.Exec.Interp.makespan_ms
    >= List.fold_left
         (fun m (s : Exec.Interp.ship_record) -> Float.max m s.cost_ms)
         0. r.stats.Exec.Interp.ships)

let test_malformed_plan () =
  let bad = node (P.Filter Pred.True) [] in
  match run bad with
  | exception Exec.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "malformed plan must raise"

let test_null_join_keys () =
  (* rows with NULL join keys never match *)
  let db =
    db_with
      [
        ("r", [ "a"; "b" ], [ [| Value.Null; Value.Str "n" |]; [| Value.Int 1; Value.Str "o" |] ]);
        ("s", [ "a"; "c" ], [ [| Value.Null; Value.Int 9 |]; [| Value.Int 1; Value.Int 10 |] ]);
      ]
  in
  let plan =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; scan "s" ]
  in
  let r = run ~db plan in
  Alcotest.(check int) "nulls do not join" 1 (Storage.Relation.cardinality r.relation)

let () =
  Alcotest.run "exec"
    [
      ( "operators",
        [
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "hash join" `Quick test_hash_join;
          Alcotest.test_case "hash join residual" `Quick test_hash_join_residual;
          Alcotest.test_case "nl join" `Quick test_nl_join;
          Alcotest.test_case "merge join" `Quick test_merge_join;
          Alcotest.test_case "merge join nulls/residual" `Quick
            test_merge_join_nulls_and_residual;
          Alcotest.test_case "sort" `Quick test_sort_operator;
          Alcotest.test_case "hash agg" `Quick test_hash_agg;
          Alcotest.test_case "empty global agg" `Quick test_global_agg_empty_input;
          Alcotest.test_case "union all" `Quick test_union_all;
          Alcotest.test_case "null join keys" `Quick test_null_join_keys;
        ] );
      ( "ships",
        [
          Alcotest.test_case "ship accounting" `Quick test_ship_accounting;
          Alcotest.test_case "multi-site join accounting" `Quick
            test_multisite_join_accounting;
          Alcotest.test_case "retry accounting totals" `Quick
            test_retry_accounting_totals;
          Alcotest.test_case "with_ships" `Quick test_with_ships;
          Alcotest.test_case "malformed" `Quick test_malformed_plan;
          Alcotest.test_case "makespan parallelism" `Quick test_makespan_parallel_branches;
        ] );
    ]
