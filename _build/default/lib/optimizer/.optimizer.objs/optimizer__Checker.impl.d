lib/optimizer/checker.ml: Catalog Exec Expr Fmt List Plan Policy Pred Printf Relalg String Summary
