(** Vectorized executor for placed physical plans.

    The third engine: where {!Compile} runs index-addressed closures
    over one boxed row at a time, this engine executes over the
    column-major storage ({!Storage.Column}) directly in 1024-row
    batches. Filters refine per-batch selection vectors without
    materializing, hash joins build and probe over column slices and
    materialize once with typed gathers, aggregation runs fused
    accumulator loops bound to the columns per batch, and sort produces
    a permutation selvec instead of moving rows. Comparisons against
    constants specialize to primitive loops over the unboxed column
    representation when types match exactly.

    The vectorized engine is {e byte-identical} to the other two: same
    result rows in the same order, same SHIP records (order, bytes,
    simulated cost, retry fates — ship fates are keyed by ship index,
    so the child-iteration contract in runtime.mli applies), same
    per-operator profiles and bit-equal makespans. Scalar/predicate
    compilation, aggregate accumulators and the SHIP path are shared
    via {!Runtime}; the invariant is enforced by the three-way
    differential property and golden tests in [test/test_exec.ml].
    See [docs/EXECUTOR.md]. *)

open Relalg

type t
(** A compiled vectorized plan: reusable across executions. *)

val schema : t -> Attr.t list
(** Output schema, fixed at compile time. *)

val compile :
  db:Storage.Database.t -> table_cols:(string -> string list) -> Pplan.t -> t
(** Compile a placed plan against the column-major base tables: resolve
    every attribute to a column index, build per-operator binders that
    specialize on the concrete column representation at execution time,
    and precompute join/group key index vectors. [table_cols] resolves
    a table's stored column order, used to re-qualify scan schemas with
    the query alias (as in {!Interp.run}). Raises
    {!Runtime.Runtime_error} on malformed plans and [Invalid_argument]
    on unknown tables. *)

val execute :
  ?faults:Catalog.Network.Fault.schedule ->
  ?retry:Runtime.retry_policy ->
  ?budget:int ->
  network:Catalog.Network.t ->
  t ->
  Runtime.result
(** Execute a compiled vectorized plan. Semantics, SHIP accounting,
    fault injection and observability are exactly those of
    {!Interp.run}, including the [budget] memory account (default
    [CGQP_MEM_BUDGET], else unlimited) with byte-identical spilling;
    raises {!Runtime.Ship_failed} on permanent transfer failures. *)

val run :
  ?faults:Catalog.Network.Fault.schedule ->
  ?retry:Runtime.retry_policy ->
  ?budget:int ->
  network:Catalog.Network.t ->
  db:Storage.Database.t ->
  table_cols:(string -> string list) ->
  Pplan.t ->
  Runtime.result
(** [compile] then [execute] — drop-in replacement for {!Interp.run}. *)
