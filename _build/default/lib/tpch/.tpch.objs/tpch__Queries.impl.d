lib/tpch/queries.ml: List String
