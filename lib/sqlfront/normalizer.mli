(** Literal normalization for template-level plan caching.

    [normalize] rewrites equality literals out of a SELECT's WHERE
    clause into a parameter vector, so that statements differing only
    in those constants share one {e template} text — the cache key that
    lets millions of distinct user statements collapse onto a few
    template plans (see [docs/FEEDBACK.md]).

    The rewrite is deliberately conservative; a literal is
    parameterized only when every condition below holds, because each
    one is load-bearing for the byte-identity contract (a template hit
    must return exactly what a fresh optimization would have produced):

    - the statement is a [SELECT] with a [WHERE] clause, and the WHERE
      section contains no [OR], [NOT] or [BETWEEN] — conjunct-only
      predicates keep the optimizer's canonical conjunct order
      independent of the literal values;
    - the atom has the shape [col = literal] or [literal = col] (bare
      or alias-qualified column). Range comparisons ([<], [<=], [>],
      [>=]), [LIKE] patterns, [IN] lists and [date '...'] literals are
      never parameterized: their selectivity estimates depend on the
      constant's value, so merging them could change the plan;
      equality selectivity ([1/distinct]) is value-independent;
    - the bare column name occurs exactly once in the whole statement
      (counted over every token, SELECT list and GROUP BY included) —
      ruling out multi-atom interactions on one attribute, which are
      the only way two equality constants can influence each other's
      implication results or canonical order.

    Anything that fails a condition simply falls back to the exact,
    full-text cache key: under-merging costs a missed hit, never
    correctness. Whether a parameter's {e value} may still affect the
    compliance verdict (its column occurs in some policy predicate) is
    judged by the caller against the active policy catalog — see
    [Cgqp] and [Plan_cache.template_key]. *)

type param = { column : string;  (** bare (unqualified) column name *)
               value : Relalg.Value.t }

type t = {
  template : string;
      (** canonical rendering with each parameterized literal as [?] *)
  params : param list;  (** in textual (ordinal) order *)
}

val normalize : string -> t option
(** [None] when the statement is not parameterizable (not a SELECT, no
    WHERE, a disqualifying construct, no eligible literal, or a lex
    error — the parser will report the latter downstream). *)
