(* Disk-backed column segment store.

   A relation is persisted as one directory: a small text [meta] file
   (schema, cardinality, per-column representation tags) plus one
   [col<j>.seg] file per column holding a sequence of append-only
   segments of up to [segment_rows] (64K) rows each. Fixed-width
   columns (ints/floats/dates/bools) store one little-endian word per
   row; strings are offset-indexed (an (n+1)-entry offset array into a
   heap of concatenated payload bytes); the boxed [Values] fallback
   uses a tagged per-value codec. Every segment carries its null
   bitmap and a footer with row/null counts, min/max and the
   serialized byte size.

   The cursor API yields segments back as the same [Column.t] batches
   the vectorized engine consumes; [relation] wraps a stored directory
   as a paged [Relation.t] whose every access re-reads from disk, so a
   relation is resident or disk-backed invisibly to all three engines.

   Round-trips are representation-exact: the per-column tag recorded in
   [meta] (and per segment) is the source column's variant, NULL slots
   re-read as the same dummy values [Column.of_values_typed] writes,
   and floats travel as raw IEEE bits — so a read-back column is
   variant-, value- and [byte_size]-identical to what was written. *)

open Relalg

let segment_rows = 65536
let magic_byte = '\xC5'
let meta_magic = "cgqp-segments 1"

(* Page-in accounting (one "page read" = one segment of one column
   decoded from disk). Atomics: executions run concurrently on OCaml 5
   domains in the serving layer. *)
let reads = Atomic.make 0
let read_bytes = Atomic.make 0
let page_reads () = Atomic.get reads
let page_read_bytes () = Atomic.get read_bytes
let reset_page_reads () =
  Atomic.set reads 0;
  Atomic.set read_bytes 0

let fail fmt = Printf.ksprintf failwith fmt

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.is_directory d -> ()
    end
  in
  go dir

let col_file j = Printf.sprintf "col%d.seg" j

(* --- value codec (Values payloads, footer min/max) --- *)

let add_value buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char buf '\000'
  | Value.Int x ->
    Buffer.add_char buf '\001';
    Buffer.add_int64_le buf (Int64.of_int x)
  | Value.Float f ->
    Buffer.add_char buf '\002';
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Str s ->
    Buffer.add_char buf '\003';
    Buffer.add_int32_le buf (Int32.of_int (String.length s));
    Buffer.add_string buf s
  | Value.Date d ->
    Buffer.add_char buf '\004';
    Buffer.add_int64_le buf (Int64.of_int d)
  | Value.Bool b ->
    Buffer.add_char buf '\005';
    Buffer.add_char buf (if b then '\001' else '\000')

(* Decode one value from [b] at [!pos], advancing it. *)
let get_value b pos : Value.t =
  let tag = Bytes.get b !pos in
  incr pos;
  match tag with
  | '\000' -> Value.Null
  | '\001' ->
    let x = Int64.to_int (Bytes.get_int64_le b !pos) in
    pos := !pos + 8;
    Value.Int x
  | '\002' ->
    let f = Int64.float_of_bits (Bytes.get_int64_le b !pos) in
    pos := !pos + 8;
    Value.Float f
  | '\003' ->
    let len = Int32.to_int (Bytes.get_int32_le b !pos) in
    pos := !pos + 4;
    let s = Bytes.sub_string b !pos len in
    pos := !pos + len;
    Value.Str s
  | '\004' ->
    let d = Int64.to_int (Bytes.get_int64_le b !pos) in
    pos := !pos + 8;
    Value.Date d
  | '\005' ->
    let x = Bytes.get b !pos <> '\000' in
    incr pos;
    Value.Bool x
  | c -> fail "Segment: bad value tag 0x%02x" (Char.code c)

(* --- low-level channel reads --- *)

let r_bytes ic n =
  let b = Bytes.create n in
  really_input ic b 0 n;
  b

let r_u8 ic = input_byte ic
let r_i64 ic = Int64.to_int (Bytes.get_int64_le (r_bytes ic 8) 0)

let r_value ic =
  (* footer min/max: small, read via a scratch decode of the remaining
     tag + payload *)
  let tag = input_char ic in
  match tag with
  | '\000' -> Value.Null
  | '\001' -> Value.Int (Int64.to_int (Bytes.get_int64_le (r_bytes ic 8) 0))
  | '\002' -> Value.Float (Int64.float_of_bits (Bytes.get_int64_le (r_bytes ic 8) 0))
  | '\003' ->
    let len = Int32.to_int (Bytes.get_int32_le (r_bytes ic 4) 0) in
    Value.Str (Bytes.to_string (r_bytes ic len))
  | '\004' -> Value.Date (Int64.to_int (Bytes.get_int64_le (r_bytes ic 8) 0))
  | '\005' -> Value.Bool (r_u8 ic <> 0)
  | c -> fail "Segment: bad value tag 0x%02x" (Char.code c)

(* --- column representation tags --- *)

let tag_of_data = function
  | Column.Ints _ -> 0
  | Column.Floats _ -> 1
  | Column.Strs _ -> 2
  | Column.Dates _ -> 3
  | Column.Bools _ -> 4
  | Column.Values _ -> 5

(* Rebuild a column of representation [tag] from boxed values. Typed
   tags rebuild through [of_values_typed] (same dummies, same bitmap);
   the boxed fallback must NOT re-sniff, or an all-NULL or
   uniform-content [Values] column would come back typed. *)
let column_of_tag tag (vals : Value.t array) : Column.t =
  match tag with
  | 0 -> Column.of_values_typed Value.Tint vals
  | 1 -> Column.of_values_typed Value.Tfloat vals
  | 2 -> Column.of_values_typed Value.Tstr vals
  | 3 -> Column.of_values_typed Value.Tdate vals
  | 4 -> Column.of_values_typed Value.Tbool vals
  | 5 -> Column.of_value_array vals
  | t -> fail "Segment: bad column tag %d" t

let empty_column_of_tag tag = column_of_tag tag [||]

(* --- segment write --- *)

(* One segment of [c] covering rows [lo, hi): header, null bitmap,
   payload, footer. *)
let write_segment oc (c : Column.t) lo hi =
  let n = hi - lo in
  let isnull i =
    match c.Column.data with
    | Column.Values a -> a.(i) = Value.Null
    | _ -> Column.is_null c i
  in
  (* null bitmap over the slice *)
  let bitmap = Bytes.make ((n + 7) / 8) '\000' in
  let nulls = ref 0 in
  for i = lo to hi - 1 do
    if isnull i then begin
      incr nulls;
      let j = i - lo in
      Bytes.set bitmap (j lsr 3)
        (Char.chr (Char.code (Bytes.get bitmap (j lsr 3)) lor (1 lsl (j land 7))))
    end
  done;
  let has_nulls = !nulls > 0 in
  (* payload: NULL slots are normalized to the dummy the typed
     constructors use (0 / 0. / "" / false), so read-back slices are
     representation-identical *)
  let payload = Buffer.create (8 * n) in
  (match c.Column.data with
  | Column.Ints a | Column.Dates a ->
    for i = lo to hi - 1 do
      Buffer.add_int64_le payload (if isnull i then 0L else Int64.of_int a.(i))
    done
  | Column.Floats a ->
    for i = lo to hi - 1 do
      Buffer.add_int64_le payload
        (if isnull i then 0L else Int64.bits_of_float a.(i))
    done
  | Column.Strs a ->
    (* offset-indexed: (n+1) i64 offsets into the heap, then the heap *)
    let heap = Buffer.create (16 * n) in
    Buffer.add_int64_le payload 0L;
    for i = lo to hi - 1 do
      if not (isnull i) then Buffer.add_string heap a.(i);
      Buffer.add_int64_le payload (Int64.of_int (Buffer.length heap))
    done;
    Buffer.add_buffer payload heap
  | Column.Bools b ->
    for i = lo to hi - 1 do
      Buffer.add_char payload (if isnull i then '\000' else Bytes.get b i)
    done
  | Column.Values a ->
    for i = lo to hi - 1 do
      add_value payload a.(i)
    done);
  (* footer stats over the slice *)
  let bytes = ref 0 in
  let mn = ref Value.Null and mx = ref Value.Null in
  for i = lo to hi - 1 do
    let v = Column.get c i in
    bytes := !bytes + Value.byte_width v;
    if v <> Value.Null then begin
      if !mn = Value.Null || Value.compare v !mn < 0 then mn := v;
      if !mx = Value.Null || Value.compare v !mx > 0 then mx := v
    end
  done;
  (* header *)
  let hd = Buffer.create 32 in
  Buffer.add_char hd magic_byte;
  Buffer.add_char hd (Char.chr (tag_of_data c.Column.data));
  Buffer.add_int64_le hd (Int64.of_int n);
  Buffer.add_char hd (if has_nulls then '\001' else '\000');
  Buffer.add_int64_le hd (Int64.of_int (Buffer.length payload));
  Buffer.output_buffer oc hd;
  if has_nulls then output_bytes oc bitmap;
  Buffer.output_buffer oc payload;
  let ft = Buffer.create 32 in
  Buffer.add_int64_le ft (Int64.of_int !nulls);
  Buffer.add_int64_le ft (Int64.of_int !bytes);
  add_value ft !mn;
  add_value ft !mx;
  Buffer.output_buffer oc ft

let write_col path (c : Column.t) =
  let n = Column.length c in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  let nseg = (n + segment_rows - 1) / segment_rows in
  for s = 0 to nseg - 1 do
    let lo = s * segment_rows in
    write_segment oc c lo (min n (lo + segment_rows))
  done

let write ~dir rel =
  mkdir_p dir;
  let schema = Relation.schema rel in
  let card = Relation.cardinality rel in
  let cols = Relation.cols rel in
  let oc = open_out (Filename.concat dir "meta") in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  Printf.fprintf oc "%s\ncard %d\nsegment_rows %d\nwidth %d\n" meta_magic card
    segment_rows (Array.length cols);
  List.iteri
    (fun j (a : Attr.t) ->
      Printf.fprintf oc "col\t%d\t%s\t%s\n" (tag_of_data cols.(j).Column.data)
        a.Attr.rel a.Attr.name)
    schema;
  Array.iteri (fun j c -> write_col (Filename.concat dir (col_file j)) c) cols

(* --- handles and cursors --- *)

type handle = {
  dir : string;
  schema : Attr.t list;
  card : int;
  tags : int array;  (* per-column representation tag *)
}

let openh ~dir =
  let ic = open_in (Filename.concat dir "meta") in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let line () = try input_line ic with End_of_file -> fail "Segment: truncated meta in %s" dir in
  if line () <> meta_magic then fail "Segment: bad meta magic in %s" dir;
  let scan fmt conv =
    let l = line () in
    try Scanf.sscanf l fmt conv
    with Scanf.Scan_failure _ | Failure _ -> fail "Segment: bad meta line %S in %s" l dir
  in
  let card = scan "card %d" Fun.id in
  let srows = scan "segment_rows %d" Fun.id in
  if srows <> segment_rows then
    fail "Segment: %s uses %d-row segments, this build expects %d" dir srows
      segment_rows;
  let width = scan "width %d" Fun.id in
  let cols =
    List.init width (fun _ ->
        match String.split_on_char '\t' (line ()) with
        | [ "col"; tag; rel; name ] -> (int_of_string tag, Attr.make ~rel ~name)
        | _ -> fail "Segment: bad col line in %s" dir)
  in
  {
    dir;
    schema = List.map snd cols;
    card;
    tags = Array.of_list (List.map fst cols);
  }

let schema h = h.schema
let cardinality h = h.card
let num_segments h = (h.card + segment_rows - 1) / segment_rows

type cursor = {
  h : handle;
  mutable ics : in_channel array option;  (* None once closed *)
  mutable seg : int;
}

let cursor h =
  let ics =
    if num_segments h = 0 then None
    else
      Some
        (Array.init (Array.length h.tags) (fun j ->
             open_in_bin (Filename.concat h.dir (col_file j))))
  in
  { h; ics; seg = 0 }

let close cur =
  (match cur.ics with
  | Some ics -> Array.iter close_in ics
  | None -> ());
  cur.ics <- None

(* Read the next segment block of one column file. *)
let read_segment h ic =
  if input_char ic <> magic_byte then fail "Segment: bad segment magic in %s" h.dir;
  let tag = r_u8 ic in
  let n = r_i64 ic in
  let has_nulls = r_u8 ic <> 0 in
  let plen = r_i64 ic in
  let bitmap = if has_nulls then r_bytes ic ((n + 7) / 8) else Bytes.empty in
  let payload = r_bytes ic plen in
  let _null_count = r_i64 ic in
  let _byte_size = r_i64 ic in
  let _mn = r_value ic in
  let _mx = r_value ic in
  Atomic.incr reads;
  ignore (Atomic.fetch_and_add read_bytes plen);
  let isnull i =
    has_nulls
    && Char.code (Bytes.get bitmap (i lsr 3)) land (1 lsl (i land 7)) <> 0
  in
  let vals =
    match tag with
    | 0 | 3 ->
      let box = if tag = 0 then fun x -> Value.Int x else fun x -> Value.Date x in
      Array.init n (fun i ->
          if isnull i then Value.Null
          else box (Int64.to_int (Bytes.get_int64_le payload (8 * i))))
    | 1 ->
      Array.init n (fun i ->
          if isnull i then Value.Null
          else Value.Float (Int64.float_of_bits (Bytes.get_int64_le payload (8 * i))))
    | 2 ->
      let off i = Int64.to_int (Bytes.get_int64_le payload (8 * i)) in
      let heap0 = 8 * (n + 1) in
      Array.init n (fun i ->
          if isnull i then Value.Null
          else
            Value.Str
              (Bytes.sub_string payload (heap0 + off i) (off (i + 1) - off i)))
    | 4 ->
      Array.init n (fun i ->
          if isnull i then Value.Null
          else Value.Bool (Bytes.get payload i <> '\000'))
    | 5 ->
      let pos = ref 0 in
      Array.init n (fun _ -> get_value payload pos)
    | t -> fail "Segment: bad column tag %d in %s" t h.dir
  in
  column_of_tag tag vals

let next cur =
  match cur.ics with
  | None -> None
  | Some ics ->
    let batch = Array.map (read_segment cur.h) ics in
    cur.seg <- cur.seg + 1;
    if cur.seg >= num_segments cur.h then close cur;
    Some batch

(* Page the whole relation in: per-column concat of all segments.
   Same-variant segments concatenate back to the typed representation
   (and merged bitmap) that was written. *)
let read_all h =
  let width = Array.length h.tags in
  if num_segments h = 0 then Array.init width (fun j -> empty_column_of_tag h.tags.(j))
  else begin
    let parts = Array.make width [] in
    let cur = cursor h in
    Fun.protect ~finally:(fun () -> close cur) @@ fun () ->
    let rec go () =
      match next cur with
      | None -> ()
      | Some batch ->
        Array.iteri (fun j c -> parts.(j) <- c :: parts.(j)) batch;
        go ()
    in
    go ();
    Array.init width (fun j ->
        match parts.(j) with [ c ] -> c | cs -> Column.concat (List.rev cs))
  end

let relation h =
  Relation.paged ~schema:h.schema ~card:h.card ~load:(fun () -> read_all h)
