examples/adhoc_workload.ml: Array Fmt List Optimizer Policy Printf Sys Tpch
