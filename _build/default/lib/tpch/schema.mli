(** The TPC-H schema (column names unprefixed, as in the paper's
    Table 3), its catalog statistics as a function of the scale factor,
    and the five-location distribution of Table 2. *)

val day : string -> float
(** Day count of an ISO date, for statistics bounds. *)

val rows_at : float -> string -> int
(** dbgen cardinalities at a scale factor, clamped to small minima so
    tiny scale factors stay executable. *)

val tables : sf:float -> Catalog.Table_def.t list
(** The eight table definitions with statistics at scale factor [sf]. *)

val distribution : (string * string * Catalog.Location.t) list
(** Table 2: (table, database, location) — customer/orders at db-1/L1,
    supplier/partsupp at db-2/L2, part at db-3/L3, lineitem at db-4/L4,
    nation/region at db-5/L5. *)

val catalog :
  ?sf:float ->
  ?partition_tables:string list ->
  ?partition_count:int ->
  ?network:Catalog.Network.t ->
  unit ->
  Catalog.t
(** The geo-distributed TPC-H catalog. [sf] (default 10, the paper's
    setting) drives the statistics only. [partition_tables] spreads the
    named tables over the first [partition_count] locations in equal
    fractions (the §7.5 setup); [network] defaults to
    {!Catalog.Network.paper_default}. *)
