lib/sqlfront/ast.ml: Attr Expr List Pred Relalg
