test/test_summary.mli:
