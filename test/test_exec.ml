(* Execution-engine tests: each physical operator, SHIP accounting, and
   ship insertion. *)

open Relalg
module P = Exec.Pplan

let network = Catalog.Network.uniform ~locations:[ "x"; "y" ] ~alpha:10. ~beta:1.0

let attr rel name = Attr.make ~rel ~name
let col rel name = Expr.Col (attr rel name)

let db_with tables =
  let db = Storage.Database.create () in
  List.iter
    (fun (name, cols, rows) ->
      let schema = List.map (fun c -> attr name c) cols in
      Storage.Database.add db ~table:name
        (Storage.Relation.make ~schema ~rows:(Array.of_list rows)))
    tables;
  db

let table_cols = function
  | "r" -> [ "a"; "b" ]
  | "s" -> [ "a"; "c" ]
  | t -> Alcotest.failf "unknown table %s" t

let default_db () =
  db_with
    [
      ( "r",
        [ "a"; "b" ],
        [
          [| Value.Int 1; Value.Str "one" |];
          [| Value.Int 2; Value.Str "two" |];
          [| Value.Int 3; Value.Str "three" |];
        ] );
      ( "s",
        [ "a"; "c" ],
        [
          [| Value.Int 1; Value.Int 10 |];
          [| Value.Int 1; Value.Int 20 |];
          [| Value.Int 3; Value.Int 30 |];
          [| Value.Int 4; Value.Int 40 |];
        ] );
    ]

let node ?(loc = "x") ?(est = { P.est_rows = 1.; est_width = 8. }) n children =
  { P.node = n; loc; children; est }

let run ?(db = default_db ()) plan =
  Exec.Interp.run ~network ~db ~table_cols plan

let scan ?(loc = "x") t = node ~loc (P.Table_scan { table = t; alias = t; partition = 0 }) []

let test_scan () =
  let r = run (scan "r") in
  Alcotest.(check int) "three rows" 3 (Storage.Relation.cardinality r.relation);
  Alcotest.(check int) "two cols" 2 (List.length (Storage.Relation.schema r.relation))

let test_filter () =
  let plan =
    node (P.Filter (Pred.Atom (Pred.Cmp (Pred.Ge, col "r" "a", Expr.Const (Value.Int 2)))))
      [ scan "r" ]
  in
  let r = run plan in
  Alcotest.(check int) "two rows" 2 (Storage.Relation.cardinality r.relation)

let test_project () =
  let plan =
    node
      (P.Project
         [ (Expr.Binop (Expr.Mul, col "r" "a", Expr.Const (Value.Int 10)), Attr.unqualified "x") ])
      [ scan "r" ]
  in
  let r = run plan in
  let rows = Storage.Relation.rows r.relation in
  Alcotest.(check bool) "computed" true (Value.equal rows.(0).(0) (Value.Int 10));
  Alcotest.(check bool) "computed2" true (Value.equal rows.(2).(0) (Value.Int 30))

let test_hash_join () =
  let plan =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; scan "s" ]
  in
  let r = run plan in
  (* keys 1 (x2), 3 (x1): 3 join rows *)
  Alcotest.(check int) "join rows" 3 (Storage.Relation.cardinality r.relation);
  Alcotest.(check int) "concat schema" 4 (List.length (Storage.Relation.schema r.relation))

let test_hash_join_residual () =
  let plan =
    node
      (P.Hash_join
         {
           keys = [ (attr "r" "a", attr "s" "a") ];
           residual = Pred.Atom (Pred.Cmp (Pred.Gt, col "s" "c", Expr.Const (Value.Int 15)));
         })
      [ scan "r"; scan "s" ]
  in
  let r = run plan in
  Alcotest.(check int) "residual filters" 2 (Storage.Relation.cardinality r.relation)

let test_nl_join () =
  let plan =
    node
      (P.Nl_join (Pred.Atom (Pred.Cmp (Pred.Lt, col "r" "a", col "s" "c"))))
      [ scan "r"; scan "s" ]
  in
  let r = run plan in
  (* all 12 combinations satisfy a < c *)
  Alcotest.(check int) "cross filtered" 12 (Storage.Relation.cardinality r.relation)

let test_merge_join () =
  (* inputs sorted ascending on the key; duplicate keys on both sides *)
  let db =
    db_with
      [
        ( "r",
          [ "a"; "b" ],
          [
            [| Value.Int 1; Value.Str "r1" |];
            [| Value.Int 1; Value.Str "r1b" |];
            [| Value.Int 2; Value.Str "r2" |];
            [| Value.Int 4; Value.Str "r4" |];
          ] );
        ( "s",
          [ "a"; "c" ],
          [
            [| Value.Int 1; Value.Int 10 |];
            [| Value.Int 1; Value.Int 11 |];
            [| Value.Int 3; Value.Int 30 |];
            [| Value.Int 4; Value.Int 40 |];
          ] );
      ]
  in
  let merge =
    node
      (P.Merge_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; scan "s" ]
  in
  let hash =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; scan "s" ]
  in
  let rows p =
    Storage.Relation.rows (run ~db p).relation
    |> Array.to_list |> List.map Array.to_list
    |> List.sort (List.compare Value.compare)
  in
  (* 2x2 for key 1, plus key 4: five rows, identical to the hash join *)
  Alcotest.(check int) "five rows" 5 (List.length (rows merge));
  Alcotest.(check bool) "merge = hash" true (rows merge = rows hash)

let test_merge_join_nulls_and_residual () =
  let db =
    db_with
      [
        ("r", [ "a"; "b" ], [ [| Value.Null; Value.Str "n" |]; [| Value.Int 1; Value.Str "x" |] ]);
        ("s", [ "a"; "c" ], [ [| Value.Int 1; Value.Int 5 |]; [| Value.Int 1; Value.Int 50 |] ]);
      ]
  in
  let plan =
    node
      (P.Merge_join
         {
           keys = [ (attr "r" "a", attr "s" "a") ];
           residual = Pred.Atom (Pred.Cmp (Pred.Gt, col "s" "c", Expr.Const (Value.Int 10)));
         })
      [ scan "r"; scan "s" ]
  in
  let r = run ~db plan in
  Alcotest.(check int) "null skipped, residual filters" 1
    (Storage.Relation.cardinality r.relation)

let test_sort_operator () =
  let plan = node (P.Sort [ (attr "s" "c", true) ]) [ scan "s" ] in
  let r = run plan in
  let look = Storage.Relation.lookup_fn r.relation in
  let vals =
    Array.to_list (Storage.Relation.rows r.relation)
    |> List.map (fun row -> look (attr "s" "c") row)
  in
  let rec desc = function
    | a :: (b :: _ as rest) -> Value.compare a b >= 0 && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (desc vals)

let test_hash_agg () =
  let plan =
    node
      (P.Hash_agg
         {
           keys = [ attr "s" "a" ];
           aggs =
             [
               { Expr.fn = Expr.Sum; arg = col "s" "c"; alias = "total" };
               { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1); alias = "n" };
               { Expr.fn = Expr.Min; arg = col "s" "c"; alias = "lo" };
               { Expr.fn = Expr.Max; arg = col "s" "c"; alias = "hi" };
               { Expr.fn = Expr.Avg; arg = col "s" "c"; alias = "mean" };
             ];
         })
      [ scan "s" ]
  in
  let r = run plan in
  Alcotest.(check int) "three groups" 3 (Storage.Relation.cardinality r.relation);
  let look = Storage.Relation.lookup_fn r.relation in
  let find_group k =
    match
      Array.find_opt
        (fun row -> Value.equal (look (attr "s" "a") row) (Value.Int k))
        (Storage.Relation.rows r.relation)
    with
    | Some row -> row
    | None -> Alcotest.failf "group %d missing" k
  in
  let g1 = find_group 1 in
  Alcotest.(check bool) "sum" true (Value.equal (look (Attr.unqualified "total") g1) (Value.Int 30));
  Alcotest.(check bool) "count" true (Value.equal (look (Attr.unqualified "n") g1) (Value.Int 2));
  Alcotest.(check bool) "min" true (Value.equal (look (Attr.unqualified "lo") g1) (Value.Int 10));
  Alcotest.(check bool) "max" true (Value.equal (look (Attr.unqualified "hi") g1) (Value.Int 20));
  Alcotest.(check bool) "avg" true
    (Value.equal (look (Attr.unqualified "mean") g1) (Value.Float 15.))

let test_global_agg_empty_input () =
  let plan =
    node
      (P.Hash_agg
         {
           keys = [];
           aggs = [ { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1); alias = "n" } ];
         })
      [
        node (P.Filter Pred.False) [ scan "s" ];
      ]
  in
  let r = run plan in
  Alcotest.(check int) "one row" 1 (Storage.Relation.cardinality r.relation);
  let row = (Storage.Relation.rows r.relation).(0) in
  Alcotest.(check bool) "count zero" true (Value.equal row.(0) (Value.Int 0))

let test_union_all () =
  let plan = node P.Union_all [ scan "r"; scan "r" ] in
  let r = run plan in
  Alcotest.(check int) "doubled" 6 (Storage.Relation.cardinality r.relation)

let test_ship_accounting () =
  let inner = scan ~loc:"y" "r" in
  let plan =
    node (P.Ship { from_loc = "y"; to_loc = "x" }) [ inner ]
  in
  let r = run plan in
  Alcotest.(check int) "one ship" 1 (List.length r.stats.Exec.Interp.ships);
  let s = List.hd r.stats.Exec.Interp.ships in
  Alcotest.(check int) "rows shipped" 3 s.Exec.Interp.rows;
  Alcotest.(check bool) "bytes positive" true (s.Exec.Interp.bytes > 0);
  (* alpha 10 + beta 1.0 per byte *)
  Alcotest.(check (float 1e-6)) "cost model" (10. +. float_of_int s.Exec.Interp.bytes)
    s.Exec.Interp.cost_ms

let test_multisite_join_accounting () =
  (* Both join inputs cross the wire: every per-operator figure in the
     Obs profile must agree with the stats block and with the network
     cost model. *)
  let plan =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [
        node (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "r" ];
        node (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "s" ];
      ]
  in
  let r = run plan in
  let ships = r.stats.Exec.Interp.ships in
  Alcotest.(check int) "two ships" 2 (List.length ships);
  List.iter
    (fun (s : Exec.Interp.ship_record) ->
      Alcotest.(check (float 1e-6)) "cost model per ship"
        (Catalog.Network.ship_cost network ~from_loc:s.from_loc ~to_loc:s.to_loc
           ~bytes:(float_of_int s.bytes))
        s.cost_ms;
      Alcotest.(check int) "single attempt" 1 s.attempts)
    ships;
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 ships in
  Alcotest.(check int) "payload total"
    (sum (fun (s : Exec.Interp.ship_record) -> s.bytes))
    (Exec.Interp.total_ship_bytes r.stats);
  Alcotest.(check int) "retry-free traffic equals payload"
    (Exec.Interp.total_ship_bytes r.stats)
    (Exec.Interp.total_traffic_bytes r.stats);
  (* profile cross-check: the SHIP operators' profile entries carry the
     same records, and their actual rows/bytes are the shipped ones *)
  let profiled =
    List.filter_map (fun (p : Exec.Interp.node_profile) -> Option.map (fun s -> (p, s)) p.ship)
      r.profile
  in
  Alcotest.(check int) "profiled ships" 2 (List.length profiled);
  List.iter
    (fun ((p : Exec.Interp.node_profile), (s : Exec.Interp.ship_record)) ->
      Alcotest.(check bool) "profile record is the stats record" true
        (List.mem s ships);
      Alcotest.(check int) "profile rows" s.rows p.actual_rows;
      Alcotest.(check int) "profile bytes" s.bytes p.actual_bytes)
    profiled;
  (* the r-side ship moved 3 rows, the s-side 4 *)
  Alcotest.(check (list int)) "row counts" [ 3; 4 ]
    (List.sort compare (List.map (fun (s : Exec.Interp.ship_record) -> s.rows) ships))

let test_retry_accounting_totals () =
  (* Under a flaky link, retried bytes count once toward the payload
     totals (the result is delivered once) and [attempts] times toward
     the traffic the wire actually carried. Drop fates are a pure
     function of the schedule seed, so scan seeds until one yields a
     completed run that did retry — the pick is then deterministic
     forever. *)
  let plan = node (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "r" ] in
  let flaky seed =
    Catalog.Network.Fault.make ~seed
      [ Catalog.Network.Fault.Transient_drop { from_loc = "x"; to_loc = "y"; p = 0.5 } ]
  in
  let rec find seed =
    if seed > 1000 then Alcotest.fail "no seed in 0..1000 yields a retried success"
    else
      match Exec.Interp.run ~faults:(flaky seed) ~network ~db:(default_db ()) ~table_cols plan with
      | r when r.Exec.Interp.stats.Exec.Interp.ship_retries > 0 -> (seed, r)
      | _ | (exception Exec.Interp.Ship_failed _) -> find (seed + 1)
  in
  let _seed, r = find 0 in
  let s = List.hd r.Exec.Interp.stats.Exec.Interp.ships in
  Alcotest.(check int) "retries = attempts - 1"
    (s.Exec.Interp.attempts - 1)
    r.Exec.Interp.stats.Exec.Interp.ship_retries;
  Alcotest.(check int) "payload counted once" s.Exec.Interp.bytes
    (Exec.Interp.total_ship_bytes r.Exec.Interp.stats);
  Alcotest.(check int) "traffic counted per attempt"
    (s.Exec.Interp.bytes * s.Exec.Interp.attempts)
    (Exec.Interp.total_traffic_bytes r.Exec.Interp.stats);
  (* the delivered relation is the same as a fault-free run's *)
  let clean = run plan in
  Alcotest.(check string) "same delivered bytes"
    (Storage.Relation.to_csv clean.Exec.Interp.relation)
    (Storage.Relation.to_csv r.Exec.Interp.relation);
  (* each failed attempt also pays its transfer before backing off *)
  let one_try =
    Catalog.Network.ship_cost network ~from_loc:"y" ~to_loc:"x"
      ~bytes:(float_of_int s.Exec.Interp.bytes)
  in
  Alcotest.(check bool) "cost exceeds attempts * transfer" true
    (s.Exec.Interp.cost_ms
    >= (float_of_int s.Exec.Interp.attempts *. one_try) -. 1e-9)

let test_with_ships () =
  let j =
    node ~loc:"x"
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan ~loc:"x" "r"; scan ~loc:"y" "s" ]
  in
  let shipped = P.with_ships j in
  let ships = P.ships shipped in
  Alcotest.(check int) "one ship inserted" 1 (List.length ships);
  (match ships with
  | [ (f, t, _) ] ->
    Alcotest.(check string) "from" "y" f;
    Alcotest.(check string) "to" "x" t
  | _ -> Alcotest.fail "expected one ship");
  (* executing the shipped plan matches the unshipped result *)
  let r1 = run j and r2 = run shipped in
  Alcotest.(check int) "same result"
    (Storage.Relation.cardinality r1.relation)
    (Storage.Relation.cardinality r2.relation)

let test_makespan_parallel_branches () =
  (* two shipped children proceed in parallel: the makespan reflects the
     slower branch plus local work, not the sum *)
  let j =
    node ~loc:"x"
      (P.Nl_join Pred.True)
      [
        node ~loc:"x" (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "r" ];
        node ~loc:"x" (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "s" ];
      ]
  in
  let r = run j in
  let total = Exec.Interp.total_ship_cost r.stats in
  Alcotest.(check bool) "makespan below the serial total" true
    (r.Exec.Interp.makespan_ms < total);
  Alcotest.(check bool) "but at least the slower ship" true
    (r.Exec.Interp.makespan_ms
    >= List.fold_left
         (fun m (s : Exec.Interp.ship_record) -> Float.max m s.cost_ms)
         0. r.stats.Exec.Interp.ships)

let test_malformed_plan () =
  let bad = node (P.Filter Pred.True) [] in
  match run bad with
  | exception Exec.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "malformed plan must raise"

(* --- three-engine equivalence -------------------------------------

   The compiled and vectorized engines must be byte-identical to the
   reference interpreter (and hence to each other): same rows in the
   same order, same SHIP records (order, bytes, cost, retry fates),
   same per-operator profiles, same makespan. *)

let result_fp (r : Exec.Interp.result) =
  ( Storage.Relation.to_csv r.relation,
    r.stats.Exec.Interp.ships,
    r.stats.Exec.Interp.rows_processed,
    r.stats.Exec.Interp.ship_retries,
    r.profile,
    r.makespan_ms )

let check_engines_agree ?faults ?(network = network) ~db ~table_cols plan =
  let reference = Exec.Interp.run ?faults ~network ~db ~table_cols plan
  and compiled = Exec.Compile.run ?faults ~network ~db ~table_cols plan
  and vector = Exec.Vector.run ?faults ~network ~db ~table_cols plan in
  List.iter
    (fun (na, (a : Exec.Interp.result), nb, (b : Exec.Interp.result)) ->
      if result_fp a <> result_fp b then
        Alcotest.failf
          "%s and %s disagree on plan:@.%a@.%s rows=%d ships=%d \
           makespan=%.6f@.%s rows=%d ships=%d makespan=%.6f@.%s csv:@.%s@.%s \
           csv:@.%s"
          na nb (P.pp ?indent:None) plan na
          (Storage.Relation.cardinality a.relation)
          (List.length a.stats.Exec.Interp.ships)
          a.makespan_ms nb
          (Storage.Relation.cardinality b.relation)
          (List.length b.stats.Exec.Interp.ships)
          b.makespan_ms na
          (Storage.Relation.to_csv a.relation)
          nb
          (Storage.Relation.to_csv b.relation))
    [
      ("reference", reference, "compiled", compiled);
      ("reference", reference, "vector", vector);
      ("compiled", compiled, "vector", vector);
    ]

(* Random well-formed plans over the r/s tables, tracking each
   subplan's attribute universe so predicates, projections and join
   keys always reference live columns (dead references are legal too —
   they read NULL — and the generator produces some via the shared
   attr pool). *)
module Plangen = struct
  open QCheck

  let locs = [ "x"; "y" ]

  let base_attrs = function
    | "r" -> [ attr "r" "a"; attr "r" "b" ]
    | _ -> [ attr "s" "a"; attr "s" "c" ]

  let const_gen =
    Gen.oneof
      [
        Gen.map (fun i -> Value.Int i) (Gen.int_range 0 5);
        Gen.oneofl
          [ Value.Str "one"; Value.Str "two"; Value.Str "three"; Value.Null ];
      ]

  let scalar_gen attrs =
    let col = Gen.map (fun a -> Expr.Col a) (Gen.oneofl attrs) in
    Gen.oneof
      [
        col;
        Gen.map (fun v -> Expr.Const v) const_gen;
        Gen.map3
          (fun op l r -> Expr.Binop (op, l, r))
          (Gen.oneofl [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div ])
          col
          (Gen.map (fun v -> Expr.Const v) const_gen);
      ]

  let atom_gen attrs =
    let open Gen in
    oneof
      [
        map3
          (fun c l r -> Pred.Cmp (c, l, r))
          (oneofl [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ])
          (scalar_gen attrs) (scalar_gen attrs);
        map2
          (fun a pat -> Pred.Like (Expr.Col a, pat))
          (oneofl attrs)
          (oneofl [ "%o%"; "t__"; "one"; "%e" ]);
        map2
          (fun e vs -> Pred.In (e, vs))
          (scalar_gen attrs)
          (list_size (int_range 1 3) const_gen);
        map (fun a -> Pred.Is_null (Expr.Col a)) (oneofl attrs);
        map (fun a -> Pred.Not_null (Expr.Col a)) (oneofl attrs);
      ]

  let rec pred_gen depth attrs =
    let open Gen in
    if depth = 0 then map (fun a -> Pred.Atom a) (atom_gen attrs)
    else
      frequency
        [
          (3, map (fun a -> Pred.Atom a) (atom_gen attrs));
          ( 1,
            map2 (fun l r -> Pred.And (l, r))
              (pred_gen (depth - 1) attrs)
              (pred_gen (depth - 1) attrs) );
          ( 1,
            map2 (fun l r -> Pred.Or (l, r))
              (pred_gen (depth - 1) attrs)
              (pred_gen (depth - 1) attrs) );
          (1, map (fun p -> Pred.Not p) (pred_gen (depth - 1) attrs));
          (1, oneofl [ Pred.True; Pred.False ]);
        ]

  (* A generated subplan and the attributes its output carries. *)
  let scan_gen =
    Gen.map2
      (fun t loc -> (scan ~loc t, base_attrs t))
      (Gen.oneofl [ "r"; "s" ]) (Gen.oneofl locs)

  let ship_wrap =
    Gen.map2
      (fun f t -> fun (p, attrs) -> (node (P.Ship { from_loc = f; to_loc = t }) [ p ], attrs))
      (Gen.oneofl locs) (Gen.oneofl locs)

  let rec plan_gen depth =
    let open Gen in
    if depth = 0 then scan_gen
    else
      let sub = plan_gen (depth - 1) in
      frequency
        [
          (2, scan_gen);
          ( 2,
            sub >>= fun (p, attrs) ->
            map (fun pr -> (node (P.Filter pr) [ p ], attrs)) (pred_gen 2 attrs) );
          ( 1,
            sub >>= fun (p, attrs) ->
            map
              (fun scalars ->
                let items =
                  List.mapi
                    (fun i e -> (e, Attr.unqualified (Printf.sprintf "p%d" i)))
                    scalars
                in
                (node (P.Project items) [ p ], List.map snd items))
              (list_size (int_range 1 3) (scalar_gen attrs)) );
          ( 1,
            sub >>= fun (p, attrs) ->
            map
              (fun keys ->
                (node (P.Sort (List.map (fun (a, d) -> (a, d)) keys)) [ p ], attrs))
              (list_size (int_range 1 2) (pair (oneofl attrs) bool)) );
          ( 1,
            sub >>= fun (p, attrs) ->
            map2
              (fun keys fns ->
                let aggs =
                  List.mapi
                    (fun i (fn, a) ->
                      { Expr.fn; arg = Expr.Col a; alias = Printf.sprintf "g%d" i })
                    fns
                in
                let out =
                  keys @ List.map (fun (a : Expr.agg) -> Attr.unqualified a.alias) aggs
                in
                (node (P.Hash_agg { keys; aggs }) [ p ], out))
              (list_size (int_range 0 2) (oneofl attrs))
              (list_size (int_range 1 2)
                 (pair
                    (oneofl [ Expr.Sum; Expr.Count; Expr.Min; Expr.Max; Expr.Avg ])
                    (oneofl attrs))) );
          ( 1,
            sub >>= fun lhs ->
            sub >>= fun rhs ->
            let (lp, lattrs) = lhs and (rp, rattrs) = rhs in
            map3
              (fun la ra residual ->
                ( node
                    (P.Hash_join { keys = [ (la, ra) ]; residual })
                    [ lp; rp ],
                  lattrs @ rattrs ))
              (oneofl lattrs) (oneofl rattrs)
              (pred_gen 1 (lattrs @ rattrs)) );
          ( 1,
            sub >>= fun lhs ->
            sub >>= fun rhs ->
            let (lp, lattrs) = lhs and (rp, rattrs) = rhs in
            map3
              (fun la ra residual ->
                (* merge join over (sometimes) sorted inputs; byte-
                   identity must hold either way *)
                let lp = node (P.Sort [ (la, false) ]) [ lp ] in
                ( node
                    (P.Merge_join { keys = [ (la, ra) ]; residual })
                    [ lp; rp ],
                  lattrs @ rattrs ))
              (oneofl lattrs) (oneofl rattrs)
              (pred_gen 1 (lattrs @ rattrs)) );
          ( 1,
            sub >>= fun lhs ->
            sub >>= fun rhs ->
            let (lp, lattrs) = lhs and (rp, rattrs) = rhs in
            map
              (fun pr -> (node (P.Nl_join pr) [ lp; rp ], lattrs @ rattrs))
              (pred_gen 1 (lattrs @ rattrs)) );
          ( 1,
            (* union of two filters over the same scan: children share
               arity by construction *)
            scan_gen >>= fun (p, attrs) ->
            map2
              (fun pr1 pr2 ->
                ( node P.Union_all
                    [ node (P.Filter pr1) [ p ]; node (P.Filter pr2) [ p ] ],
                  attrs ))
              (pred_gen 1 attrs) (pred_gen 1 attrs) );
          (2, map2 (fun w sub -> w sub) ship_wrap sub);
        ]

  let arbitrary_plan =
    QCheck.make
      ~print:(fun (p, _) -> Fmt.str "%a" (P.pp ?indent:None) p)
      Gen.(int_range 1 4 >>= plan_gen)
end

let test_differential_random_plans () =
  let db = default_db () in
  let prop (plan, _) =
    check_engines_agree ~db ~table_cols plan;
    true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"three engines agree (fault-free)"
       Plangen.arbitrary_plan prop)

let test_differential_under_faults () =
  (* Under transient drops, all engines must see identical drop fates
     (ship-index keyed), hence identical retry counts and costs — or
     fail identically. *)
  let db = default_db () in
  let faults_of seed =
    Catalog.Network.Fault.make ~seed
      [
        Catalog.Network.Fault.Transient_drop { from_loc = "x"; to_loc = "y"; p = 0.4 };
      ]
  in
  let prop ((plan, _), seed) =
    let faults = faults_of seed in
    let run f =
      try Ok (result_fp (f ()))
      with Exec.Interp.Ship_failed { from_loc; to_loc; attempts; reason } ->
        Error (from_loc, to_loc, attempts, reason)
    in
    let reference = run (fun () -> Exec.Interp.run ~faults ~network ~db ~table_cols plan)
    and compiled = run (fun () -> Exec.Compile.run ~faults ~network ~db ~table_cols plan)
    and vector = run (fun () -> Exec.Vector.run ~faults ~network ~db ~table_cols plan) in
    if reference <> compiled || reference <> vector then
      Alcotest.failf "engines disagree under faults (seed %d) on plan:@.%a" seed
        (P.pp ?indent:None) plan;
    true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"three engines agree (transient drops)"
       (QCheck.pair Plangen.arbitrary_plan QCheck.small_nat)
       prop)

let test_differential_spill () =
  (* Spilling is invisible: the same plan under an unlimited budget and
     under budget 0 (every hash join/agg Grace-partitions to disk) must
     produce byte-identical reports, on all three engines. *)
  let db = default_db () in
  let prop (plan, _) =
    let fps =
      List.concat_map
        (fun (name, exec) ->
          List.map
            (fun budget -> (name, budget, result_fp (exec ~budget)))
            [ Exec.Runtime.unlimited_budget; 0 ])
        [
          ("reference", fun ~budget -> Exec.Interp.run ~budget ~network ~db ~table_cols plan);
          ("compiled", fun ~budget -> Exec.Compile.run ~budget ~network ~db ~table_cols plan);
          ("vector", fun ~budget -> Exec.Vector.run ~budget ~network ~db ~table_cols plan);
        ]
    in
    let name_of, budget_of, fp_of =
      ( (fun (n, _, _) -> n),
        (fun (_, b, _) -> if b = 0 then "budget 0" else "unlimited"),
        fun (_, _, fp) -> fp )
    in
    let reference = List.hd fps in
    List.iter
      (fun other ->
        if fp_of other <> fp_of reference then
          Alcotest.failf
            "%s (%s) and %s (%s) disagree on plan:@.%a" (name_of reference)
            (budget_of reference) (name_of other) (budget_of other)
            (P.pp ?indent:None) plan)
      (List.tl fps);
    true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:220
       ~name:"spill differential: budget unlimited vs 0, three engines"
       Plangen.arbitrary_plan prop)

let test_spill_cleanup () =
  (* Spill run files must vanish on every exit path: normal completion
     and a Ship_failed unwind alike leave CGQP_SPILL_DIR empty. *)
  let dir = Filename.temp_file "cgqp-spilltest-" "" in
  Sys.remove dir;
  let dir = dir ^ ".d" in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "CGQP_SPILL_DIR" "";
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      Unix.putenv "CGQP_SPILL_DIR" dir;
      let db = default_db () in
      let spilling_join ?loc () =
        node ?loc
          (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
          [ scan ?loc "r"; scan ?loc "s" ]
      in
      let spilling_plan =
        node
          (P.Hash_agg
             {
               keys = [ attr "r" "b" ];
               aggs = [ { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1); alias = "n" } ];
             })
          [ spilling_join () ]
      in
      let check_empty ctx =
        Alcotest.(check (array string))
          (ctx ^ ": spill dir empty") [||] (Sys.readdir dir)
      in
      List.iter
        (fun (name, exec) ->
          let spilled0 = Exec.Runtime.spilled_operators () in
          let (_ : Exec.Interp.result) = exec ~budget:0 spilling_plan in
          Alcotest.(check bool)
            (name ^ ": operators spilled") true
            (Exec.Runtime.spilled_operators () > spilled0);
          check_empty (name ^ " after normal run"))
        [
          ("reference", fun ~budget p -> Exec.Interp.run ~budget ~network ~db ~table_cols p);
          ("compiled", fun ~budget p -> Exec.Compile.run ~budget ~network ~db ~table_cols p);
          ("vector", fun ~budget p -> Exec.Vector.run ~budget ~network ~db ~table_cols p);
        ];
      (* Ship_failed unwind: the SHIP above the spilling join crosses a
         permanently downed link, so execution aborts after the join has
         already spilled — cleanup must still run. *)
      let faults =
        Catalog.Network.Fault.make ~seed:7
          [ Catalog.Network.Fault.Link_down ("x", "y") ]
      in
      let doomed =
        node
          (P.Ship { from_loc = "y"; to_loc = "x" })
          [ spilling_join ~loc:"y" () ]
      in
      List.iter
        (fun (name, exec) ->
          (match exec ~budget:0 doomed with
          | (_ : Exec.Interp.result) ->
            Alcotest.failf "%s: downed link must raise Ship_failed" name
          | exception Exec.Interp.Ship_failed _ -> ());
          check_empty (name ^ " after Ship_failed"))
        [
          ( "reference",
            fun ~budget p -> Exec.Interp.run ~faults ~budget ~network ~db ~table_cols p );
          ( "compiled",
            fun ~budget p -> Exec.Compile.run ~faults ~budget ~network ~db ~table_cols p );
          ( "vector",
            fun ~budget p -> Exec.Vector.run ~faults ~budget ~network ~db ~table_cols p );
        ])

let test_tpch_golden_equivalence () =
  (* The paper's twelve TPC-H queries, optimized then executed on all
     three engines: results, ships and profiles must be byte-identical. *)
  let cat = Tpch.Schema.catalog () in
  let db = Tpch.Datagen.load ~cat (Tpch.Datagen.generate ~sf:0.002 ()) in
  let session = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies session Tpch.Policies.unrestricted;
  Cgqp.attach_database session db;
  List.iter
    (fun (name, sql) ->
      match Cgqp.optimize session sql with
      | Error e -> Alcotest.failf "%s failed to optimize: %s" name (Cgqp.error_to_string e)
      | Ok planned ->
        check_engines_agree ~network:(Catalog.network cat) ~db
          ~table_cols:(Catalog.table_cols cat) planned.Optimizer.Planner.plan)
    Tpch.Queries.all_extended

let test_engine_selection () =
  Alcotest.(check bool) "of_string reference" true
    (Exec.Engine.of_string "reference" = Some Exec.Engine.Reference);
  Alcotest.(check bool) "of_string compiled" true
    (Exec.Engine.of_string "Compiled" = Some Exec.Engine.Compiled);
  Alcotest.(check bool) "of_string interp alias" true
    (Exec.Engine.of_string "interp" = Some Exec.Engine.Reference);
  Alcotest.(check bool) "of_string vector" true
    (Exec.Engine.of_string "Vector" = Some Exec.Engine.Vector);
  Alcotest.(check bool) "of_string vectorized alias" true
    (Exec.Engine.of_string "vectorized" = Some Exec.Engine.Vector);
  Alcotest.(check bool) "of_string junk" true (Exec.Engine.of_string "jit" = None);
  Alcotest.(check string) "to_string roundtrip" "reference"
    (Exec.Engine.to_string Exec.Engine.Reference);
  (* sessions expose and honor the engine choice *)
  let cat = Tpch.Schema.catalog () in
  let session = Cgqp.create ~catalog:cat () in
  Cgqp.set_engine session Exec.Engine.Reference;
  Alcotest.(check string) "session engine" "reference"
    (Exec.Engine.to_string (Cgqp.engine session));
  (* Engine.run dispatches identically either way on a simple plan *)
  let db = default_db () in
  let plan = node (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "r" ] in
  let a = Exec.Engine.run ~engine:Exec.Engine.Reference ~network ~db ~table_cols plan
  and b = Exec.Engine.run ~engine:Exec.Engine.Compiled ~network ~db ~table_cols plan
  and c = Exec.Engine.run ~engine:Exec.Engine.Vector ~network ~db ~table_cols plan in
  Alcotest.(check bool) "dispatch parity" true
    (result_fp a = result_fp b && result_fp a = result_fp c)

let test_compile_reuse () =
  (* one compiled plan, executed twice: identical results both times *)
  let db = default_db () in
  let plan =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; node (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "s" ] ]
  in
  let compiled = Exec.Compile.compile ~db ~table_cols plan in
  let r1 = Exec.Compile.execute ~network compiled
  and r2 = Exec.Compile.execute ~network compiled in
  Alcotest.(check bool) "re-execution identical" true (result_fp r1 = result_fp r2);
  Alcotest.(check int) "schema exposed" 4 (List.length (Exec.Compile.schema compiled))

let test_ship_order_contract () =
  (* The child-iteration contract (runtime.mli): binary operators
     execute the right child first, Union_all children left-to-right.
     [stats.ships] is most-recent-first, so the recorded row counts pin
     the execution order for every engine. *)
  let db = default_db () in
  let ship p = node (P.Ship { from_loc = "y"; to_loc = "x" }) [ p ] in
  let join =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ ship (scan ~loc:"y" "r"); ship (scan ~loc:"y" "s") ]
  in
  let union =
    (* r, r, s: an asymmetric sequence, so a wrong order cannot pass *)
    node P.Union_all
      [ ship (scan ~loc:"y" "r"); ship (scan ~loc:"y" "r"); ship (scan ~loc:"y" "s") ]
  in
  let ship_rows (r : Exec.Interp.result) =
    List.map (fun (s : Exec.Interp.ship_record) -> s.rows) r.stats.Exec.Interp.ships
  in
  List.iter
    (fun (name, run) ->
      (* right child (s, 4 rows) ships before left (r, 3): the head of
         the list is the most recent ship *)
      Alcotest.(check (list int)) (name ^ ": join right child first") [ 3; 4 ]
        (ship_rows (run join));
      Alcotest.(check (list int)) (name ^ ": union left-to-right") [ 3; 3; 4 ]
        (List.rev (ship_rows (run union))))
    [
      ("reference", fun p -> Exec.Interp.run ~network ~db ~table_cols p);
      ("compiled", fun p -> Exec.Compile.run ~network ~db ~table_cols p);
      ("vector", fun p -> Exec.Vector.run ~network ~db ~table_cols p);
    ]

(* --- batch boundaries ---------------------------------------------

   The vectorized engine chunks work in 1024-row batches; cardinalities
   straddling the batch size (and the empty and single-row cases) must
   flow through filter, join and aggregation without disturbing
   byte-identity. *)

let boundary_db n =
  let rows_r =
    List.init n (fun i -> [| Value.Int (i mod 7); Value.Str (string_of_int i) |])
  in
  let rows_s =
    List.init ((n / 2) + 1) (fun i -> [| Value.Int (i mod 7); Value.Int i |])
  in
  db_with [ ("r", [ "a"; "b" ], rows_r); ("s", [ "a"; "c" ], rows_s) ]

let test_vector_batch_boundaries () =
  List.iter
    (fun n ->
      let db = boundary_db n in
      let filter =
        node
          (P.Filter (Pred.Atom (Pred.Cmp (Pred.Ge, col "r" "a", Expr.Const (Value.Int 3)))))
          [ scan "r" ]
      in
      let join =
        node
          (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
          [ filter; scan "s" ]
      in
      let agg =
        node
          (P.Hash_agg
             {
               keys = [ attr "r" "a" ];
               aggs =
                 [
                   { Expr.fn = Expr.Sum; arg = col "s" "c"; alias = "total" };
                   { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1); alias = "n" };
                 ];
             })
          [ join ]
      in
      List.iter (fun plan -> check_engines_agree ~db ~table_cols plan)
        [ filter; join; agg ])
    [ 0; 1; 1023; 1024; 1025 ]

let test_vector_all_null_column () =
  (* A column that is entirely NULL across a batch boundary: filters
     reject, joins never match, aggregation groups the NULLs into one
     group and the accumulators skip them. *)
  let rows_r =
    List.init 1500 (fun i -> [| Value.Null; Value.Str (string_of_int (i mod 5)) |])
  in
  let db =
    db_with
      [ ("r", [ "a"; "b" ], rows_r); ("s", [ "a"; "c" ], [ [| Value.Int 1; Value.Int 10 |] ]) ]
  in
  let filter =
    node
      (P.Filter (Pred.Atom (Pred.Cmp (Pred.Ge, col "r" "a", Expr.Const (Value.Int 0)))))
      [ scan "r" ]
  in
  let join =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; scan "s" ]
  in
  let agg =
    node
      (P.Hash_agg
         {
           keys = [ attr "r" "a" ];
           aggs =
             [
               { Expr.fn = Expr.Sum; arg = col "r" "a"; alias = "total" };
               { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1); alias = "n" };
               { Expr.fn = Expr.Min; arg = col "r" "b"; alias = "lo" };
             ];
         })
      [ scan "r" ]
  in
  List.iter (fun plan -> check_engines_agree ~db ~table_cols plan) [ filter; join; agg ]

let test_vector_reuse () =
  (* one compiled vectorized plan, executed twice: identical both times *)
  let db = default_db () in
  let plan =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; node (P.Ship { from_loc = "y"; to_loc = "x" }) [ scan ~loc:"y" "s" ] ]
  in
  let compiled = Exec.Vector.compile ~db ~table_cols plan in
  let r1 = Exec.Vector.execute ~network compiled
  and r2 = Exec.Vector.execute ~network compiled in
  Alcotest.(check bool) "re-execution identical" true (result_fp r1 = result_fp r2);
  Alcotest.(check int) "schema exposed" 4 (List.length (Exec.Vector.schema compiled));
  (* and it matches the other engines' execution of the same plan *)
  let i = Exec.Interp.run ~network ~db ~table_cols plan in
  Alcotest.(check bool) "matches reference" true (result_fp i = result_fp r1)

let test_null_join_keys () =
  (* rows with NULL join keys never match *)
  let db =
    db_with
      [
        ("r", [ "a"; "b" ], [ [| Value.Null; Value.Str "n" |]; [| Value.Int 1; Value.Str "o" |] ]);
        ("s", [ "a"; "c" ], [ [| Value.Null; Value.Int 9 |]; [| Value.Int 1; Value.Int 10 |] ]);
      ]
  in
  let plan =
    node
      (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True })
      [ scan "r"; scan "s" ]
  in
  let r = run ~db plan in
  Alcotest.(check int) "nulls do not join" 1 (Storage.Relation.cardinality r.relation)

let () =
  Alcotest.run "exec"
    [
      ( "operators",
        [
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "hash join" `Quick test_hash_join;
          Alcotest.test_case "hash join residual" `Quick test_hash_join_residual;
          Alcotest.test_case "nl join" `Quick test_nl_join;
          Alcotest.test_case "merge join" `Quick test_merge_join;
          Alcotest.test_case "merge join nulls/residual" `Quick
            test_merge_join_nulls_and_residual;
          Alcotest.test_case "sort" `Quick test_sort_operator;
          Alcotest.test_case "hash agg" `Quick test_hash_agg;
          Alcotest.test_case "empty global agg" `Quick test_global_agg_empty_input;
          Alcotest.test_case "union all" `Quick test_union_all;
          Alcotest.test_case "null join keys" `Quick test_null_join_keys;
        ] );
      ( "ships",
        [
          Alcotest.test_case "ship accounting" `Quick test_ship_accounting;
          Alcotest.test_case "multi-site join accounting" `Quick
            test_multisite_join_accounting;
          Alcotest.test_case "retry accounting totals" `Quick
            test_retry_accounting_totals;
          Alcotest.test_case "with_ships" `Quick test_with_ships;
          Alcotest.test_case "malformed" `Quick test_malformed_plan;
          Alcotest.test_case "makespan parallelism" `Quick test_makespan_parallel_branches;
        ] );
      ( "engines",
        [
          Alcotest.test_case "differential: random plans" `Quick
            test_differential_random_plans;
          Alcotest.test_case "differential: under faults" `Quick
            test_differential_under_faults;
          Alcotest.test_case "differential: spill vs in-memory" `Quick
            test_differential_spill;
          Alcotest.test_case "spill dir cleanup on all exit paths" `Quick
            test_spill_cleanup;
          Alcotest.test_case "TPC-H golden equivalence" `Slow
            test_tpch_golden_equivalence;
          Alcotest.test_case "engine selection" `Quick test_engine_selection;
          Alcotest.test_case "compiled plan reuse" `Quick test_compile_reuse;
          Alcotest.test_case "vector plan reuse" `Quick test_vector_reuse;
          Alcotest.test_case "ship order contract" `Quick test_ship_order_contract;
        ] );
      ( "batches",
        [
          Alcotest.test_case "batch boundaries 0/1/1023/1024/1025" `Quick
            test_vector_batch_boundaries;
          Alcotest.test_case "all-NULL column" `Quick test_vector_all_null_column;
        ] );
    ]
