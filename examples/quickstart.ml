(* Quickstart: the CarCo running example from §2 of the paper.

   CarCo stores Customer data in North America, Orders in Europe and
   Supply data in Asia. Each region's data officer declares dataflow
   policies; the operations team then runs the cross-border analysis
   query Q_ex. The compliance-based optimizer produces the plan of
   Figure 1(b): Customer is masked by projection before leaving North
   America, Supply is aggregated per order before leaving Asia, and both
   joins execute in Europe.

   Run with: dune exec examples/quickstart.exe *)

open Relalg

let carco_catalog () =
  let open Catalog.Table_def in
  let customer =
    make ~name:"customer" ~key:[ "custkey" ] ~row_count:1000 ()
      ~columns:
        [
          column ~stat:{ default_stat with distinct = 1000 } "custkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 1000; width = 16 } "name" Value.Tstr;
          column ~stat:{ default_stat with distinct = 500 } "acctbal" Value.Tint;
          column ~stat:{ default_stat with distinct = 3; width = 12 } "mktseg" Value.Tstr;
          column ~stat:{ default_stat with distinct = 5; width = 10 } "region" Value.Tstr;
        ]
  in
  let orders =
    make ~name:"orders" ~key:[ "ordkey" ] ~row_count:10_000 ()
      ~columns:
        [
          column ~stat:{ default_stat with distinct = 1000 } "custkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 10_000 } "ordkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 5000 } "totprice" Value.Tint;
        ]
  in
  let supply =
    make ~name:"supply" ~key:[ "ordkey"; "extprice" ] ~row_count:40_000 ()
      ~columns:
        [
          column ~stat:{ default_stat with distinct = 10_000 } "ordkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 50 } "quantity" Value.Tint;
          column ~stat:{ default_stat with distinct = 5000 } "extprice" Value.Tint;
        ]
  in
  let network =
    Catalog.Network.make
      ~locations:[ "NorthAmerica"; "Europe"; "Asia" ]
      ~links:
        [
          ("NorthAmerica", "Europe", 90., 1.1e-6);
          ("NorthAmerica", "Asia", 180., 2.2e-6);
          ("Europe", "Asia", 240., 2.9e-6);
        ]
      ()
  in
  Catalog.make ~network
    [
      (customer, [ { Catalog.db = "d_n"; location = "NorthAmerica"; fraction = 1.0 } ]);
      (orders, [ { Catalog.db = "d_e"; location = "Europe"; fraction = 1.0 } ]);
      (supply, [ { Catalog.db = "d_a"; location = "Asia"; fraction = 1.0 } ]);
    ]

(* The dataflow policies of §2, written as policy expressions (§4):
   P_N: customer data leaves North America only without the account
        balance;
   P_E: order keys travel freely, but only aggregated order prices may
        reach Asia and prices must not reach North America raw;
   P_A: supply data leaves Asia only aggregated per order. *)
let carco_policies =
  [
    "ship custkey, name, mktseg, region from customer to Europe, Asia";
    "ship custkey, ordkey from orders to NorthAmerica, Europe, Asia";
    "ship totprice from orders to Europe";
    "ship totprice as aggregates sum from orders to Europe, Asia group by custkey, ordkey";
    "ship quantity, extprice as aggregates sum from supply to Europe group by ordkey";
  ]

(* A deterministic toy dataset. *)
let carco_data cat =
  let g = Storage.Prng.create ~seed:7 in
  let db = Storage.Database.create () in
  let add name rows =
    let schema =
      List.map
        (fun c -> Attr.make ~rel:name ~name:c)
        (Catalog.table_cols cat name)
    in
    Storage.Database.add db ~table:name
      (Storage.Relation.make ~schema ~rows:(Array.of_list rows))
  in
  let vi i = Value.Int i and vs s = Value.Str s in
  add "customer"
    (List.init 20 (fun i ->
         [|
           vi i;
           vs (Printf.sprintf "Customer-%02d" i);
           vi (100 * (i + 1));
           vs (if i mod 2 = 0 then "commercial" else "private");
           vs (List.nth [ "west"; "east" ] (i mod 2));
         |]));
  add "orders"
    (List.init 60 (fun i -> [| vi (i mod 20); vi i; vi (50 + Storage.Prng.int g 500) |]));
  add "supply"
    (List.concat_map
       (fun o ->
         List.init
           (1 + Storage.Prng.int g 3)
           (fun _ -> [| Value.Int o; vi (1 + Storage.Prng.int g 9); vi (10 + Storage.Prng.int g 90) |]))
       (List.init 60 (fun o -> o)));
  db

let q_ex =
  "SELECT c.name, SUM(o.totprice), SUM(s.quantity) \
   FROM customer AS c, orders AS o, supply AS s \
   WHERE c.custkey = o.custkey AND o.ordkey = s.ordkey \
   GROUP BY c.name"

let () =
  let cat = carco_catalog () in
  let session = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies session carco_policies;
  Cgqp.attach_database session (carco_data cat);

  Fmt.pr "=== CarCo: the paper's §2 running example ===@.@.";
  Fmt.pr "Dataflow policies:@.";
  List.iter (Fmt.pr "  %s@.") carco_policies;

  (* What would a purely cost-based optimizer do? *)
  Cgqp.set_mode session Optimizer.Memo.Traditional;
  (match Cgqp.optimize session q_ex with
  | Ok p ->
    Fmt.pr "@.--- traditional (cost-only) plan: %s ---@.%a@."
      (if p.Optimizer.Planner.violations = [] then "compliant" else "NON-COMPLIANT")
      (Exec.Pplan.pp ~indent:2) p.Optimizer.Planner.plan;
    List.iter
      (fun v -> Fmt.pr "  violation: %a@." Optimizer.Checker.pp_violation v)
      p.Optimizer.Planner.violations
  | Error e -> Fmt.pr "traditional optimizer failed: %s@." (Cgqp.error_to_string e));

  (* The compliance-based optimizer (Figure 1(b)). *)
  Cgqp.set_mode session Optimizer.Memo.Compliant;
  match Cgqp.run session q_ex with
  | Ok r ->
    Fmt.pr "@.--- compliant plan (cf. Figure 1(b)) ---@.%a@."
      (Exec.Pplan.pp ~indent:2) r.Cgqp.plan;
    Fmt.pr "--- query result ---@.%a@." (Storage.Relation.pp ~max_rows:10) r.Cgqp.relation;
    Fmt.pr "(shipped %d bytes across borders; simulated transfer cost %.2f ms)@."
      r.Cgqp.shipped_bytes r.Cgqp.ship_cost_ms
  | Error e -> Fmt.pr "compliant optimization failed: %s@." (Cgqp.error_to_string e)
