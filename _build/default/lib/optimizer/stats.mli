(** Cardinality and width estimation for logical plans, driven by
    catalog statistics. System-R style selectivities; only relative
    magnitudes matter, exactly as in the paper's cost model (§6). *)

open Relalg

type col_info = {
  distinct : float;
  width : float;
  lo : float option;
  hi : float option;
}

type node_est = { rows : float; cols : (Attr.t * col_info) list }

val width_of : node_est -> float
(** Estimated row width in bytes. *)

val find_col : node_est -> Attr.t -> col_info
(** Exact match, then unique bare-name match, then a default. *)

val selectivity : node_est -> Pred.t -> float

val estimate : Catalog.t -> Plan.t -> node_est

val scan_est : Catalog.t -> table:string -> alias:string -> fraction:float -> node_est
(** Estimate for one partition of a table ([fraction] of its rows). *)
