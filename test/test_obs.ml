(* Observability layer tests: the disabled tracer is a true no-op
   (byte-identical optimizer output with tracing on and off), spans
   nest well-formed, the jsonl trace round-trips, the metrics registry
   behaves, and the EXPLAIN renderer output is locked by golden
   tests. *)

open Optimizer

let cat = Tpch.Schema.catalog ()
let data = Tpch.Datagen.generate ~sf:0.003 ()
let db = Tpch.Datagen.load ~cat data
let policies = Tpch.Policies.catalog_of cat Tpch.Policies.CR

let sql_of name = List.assoc name Tpch.Queries.all_extended

(* --- Json ------------------------------------------------------- *)

let sample_json =
  Obs.Json.(
    Obj
      [
        ("null", Null);
        ("t", Bool true);
        ("f", Bool false);
        ("int", Num 42.);
        ("neg", Num (-7.));
        ("frac", Num 2.5);
        ("str", Str "a \"quoted\" \\ line\nwith\ttabs");
        ("arr", Arr [ Num 1.; Str "two"; Arr []; Obj [] ]);
      ])

let test_json_roundtrip () =
  let s = Obs.Json.to_string sample_json in
  match Obs.Json.of_string s with
  | Ok v -> Alcotest.(check bool) "round-trips" true (v = sample_json)
  | Error e -> Alcotest.failf "parse of own output failed: %s (input %s)" e s

let test_json_errors () =
  List.iter
    (fun input ->
      match Obs.Json.of_string input with
      | Ok _ -> Alcotest.failf "expected a parse error on %S" input
      | Error _ -> ())
    [ "{"; "[1,]"; "nul"; "\"unterminated"; "1 2"; "" ]

(* --- Trace ------------------------------------------------------ *)

(* A deterministic clock so nothing in these tests depends on time. *)
let install_test_clock () =
  let t = ref 0. in
  Obs.Trace.set_clock (fun () ->
      t := !t +. 1.;
      !t)

let with_tracing ?capacity f =
  install_test_clock ();
  Obs.Trace.enable ?capacity ();
  Fun.protect ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Trace.clear ())
    f

let test_disabled_noop () =
  (* when disabled, span is exactly the thunk and instants vanish *)
  Obs.Trace.disable ();
  Obs.Trace.clear ();
  Obs.Trace.instant "should.not.record" [];
  let r = Obs.Trace.span "neither.this" (fun () -> 41 + 1) in
  Alcotest.(check int) "span returns the thunk's value" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Trace.events ()))

(* The tentpole guarantee: running the optimizer with tracing enabled
   yields byte-identical plans and costs to running it with tracing
   off. Reuses the differential-suite comparison style. *)
let test_tracing_differential () =
  let optimize () =
    List.map
      (fun (name, sql) -> (name, Planner.optimize_sql ~cat ~policies sql))
      Tpch.Queries.all_extended
  in
  let render outcomes =
    String.concat "\n"
      (List.map
         (fun (name, o) ->
           match o with
           | Planner.Rejected reason -> name ^ ": REJECTED " ^ reason
           | Planner.Planned p ->
             Printf.sprintf "%s: cost %.6f ship %.6f\n%s%s" name p.Planner.phase1_cost
               p.Planner.ship_cost
               (Exec.Pplan.to_string p.Planner.plan)
               (Explain.render p))
         outcomes)
  in
  Obs.Trace.disable ();
  let off = render (optimize ()) in
  let on = with_tracing (fun () -> render (optimize ())) in
  Alcotest.(check string) "byte-identical plans, costs and EXPLAIN" off on;
  Alcotest.(check bool) "tracing actually recorded something" true
    (with_tracing (fun () ->
         ignore (optimize ());
         List.length (Obs.Trace.events ()) > 0))

let test_span_nesting () =
  let events =
    with_tracing (fun () ->
        ignore (Planner.optimize_sql ~cat ~policies (sql_of "Q3"));
        Obs.Trace.events ())
  in
  Alcotest.(check bool) "nonempty" true (events <> []);
  (* Begin/End bracket like parentheses; End names match their Begin;
     recorded depths equal the bracket depth at emission. *)
  let stack = ref [] in
  List.iter
    (fun (e : Obs.Trace.event) ->
      match e.kind with
      | Obs.Trace.Begin ->
        Alcotest.(check int) "begin depth" (List.length !stack) e.depth;
        stack := e.name :: !stack
      | Obs.Trace.End -> (
        match !stack with
        | top :: rest ->
          Alcotest.(check string) "end matches innermost begin" top e.name;
          stack := rest;
          Alcotest.(check int) "end depth" (List.length !stack) e.depth
        | [] -> Alcotest.fail "End without a matching Begin")
      | Obs.Trace.Instant ->
        Alcotest.(check int) "instant depth" (List.length !stack) e.depth)
    events;
  Alcotest.(check (list string)) "all spans closed" [] !stack;
  (* the optimizer's outer span is present and encloses its phases *)
  let names = List.map (fun (e : Obs.Trace.event) -> e.name) events in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "optimizer.optimize"; "optimizer.normalize"; "optimizer.phase1.extract";
      "optimizer.phase2.place"; "optimizer.certify" ]

let test_ring_buffer () =
  with_tracing ~capacity:4 (fun () ->
      for i = 1 to 10 do
        Obs.Trace.instant "tick" [ ("i", Obs.Json.Num (float_of_int i)) ]
      done;
      let events = Obs.Trace.events () in
      Alcotest.(check int) "ring keeps capacity" 4 (List.length events);
      Alcotest.(check int) "dropped counts evictions" 6 (Obs.Trace.dropped ());
      (* oldest dropped: the survivors are the last four, in order *)
      let is =
        List.map
          (fun (e : Obs.Trace.event) ->
            match List.assoc "i" e.Obs.Trace.attrs with
            | Obs.Json.Num f -> int_of_float f
            | _ -> -1)
          events
      in
      Alcotest.(check (list int)) "newest survive, oldest first" [ 7; 8; 9; 10 ] is)

let test_jsonl_roundtrip () =
  let events, jsonl =
    with_tracing (fun () ->
        ignore (Planner.optimize_sql ~cat ~policies (sql_of "Q3"));
        (Obs.Trace.events (), Obs.Trace.to_jsonl ()))
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per event" (List.length events) (List.length lines);
  List.iter2
    (fun (e : Obs.Trace.event) line ->
      match Obs.Json.of_string line with
      | Error msg -> Alcotest.failf "unparseable trace line: %s (%s)" line msg
      | Ok j -> (
        match Obs.Trace.event_of_json j with
        | Error msg -> Alcotest.failf "undecodable event: %s (%s)" line msg
        | Ok e' -> Alcotest.(check bool) "event round-trips" true (e = e')))
    events lines

(* --- Metrics ---------------------------------------------------- *)

let test_counter_identity () =
  let a = Obs.Metrics.counter ~labels:[ ("x", "1"); ("y", "2") ] "test_obs_ctr_total" in
  (* same name, same labels in a different order: the same counter *)
  let b = Obs.Metrics.counter ~labels:[ ("y", "2"); ("x", "1") ] "test_obs_ctr_total" in
  let before = Obs.Metrics.value a in
  Obs.Metrics.inc a;
  Obs.Metrics.inc ~by:4 b;
  Alcotest.(check int) "shared across registrations" (before + 5) (Obs.Metrics.value a);
  (* different labels: a distinct counter *)
  let c = Obs.Metrics.counter ~labels:[ ("x", "other") ] "test_obs_ctr_total" in
  Alcotest.(check int) "distinct label set starts fresh" 0 (Obs.Metrics.value c)

let test_histogram () =
  let h =
    Obs.Metrics.histogram ~buckets:[ 1.; 10.; 100. ] "test_obs_hist_ms"
      ~labels:[ ("case", "basic") ]
  in
  List.iter (Obs.Metrics.observe h) [ 0.5; 5.; 50.; 500. ];
  Alcotest.(check int) "count" 4 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 555.5 (Obs.Metrics.hist_sum h)

let test_dump_roundtrip () =
  (* force some registered instruments to be nonzero *)
  ignore (Planner.optimize_sql ~cat ~policies (sql_of "Q3"));
  let dump = Obs.Metrics.dump () in
  let s = Obs.Json.to_string dump in
  (match Obs.Json.of_string s with
  | Ok v -> Alcotest.(check bool) "dump parses back identically" true (v = dump)
  | Error e -> Alcotest.failf "dump did not round-trip: %s" e);
  (* the PR-1 stats surfaced through the registry are present *)
  let counters =
    match Obs.Json.member "counters" dump with
    | Some (Obs.Json.Arr cs) -> cs
    | _ -> Alcotest.fail "dump has no counters array"
  in
  let has name =
    List.exists
      (fun c -> Obs.Json.member "name" c = Some (Obs.Json.Str name))
      counters
  in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered") true (has n))
    [ "cgqp_policy_eta_total"; "cgqp_policy_implication_tests_total";
      "cgqp_policy_cache_total"; "cgqp_optimizer_memo_groups_total";
      "cgqp_optimizer_queries_total" ];
  let gauges =
    match Obs.Json.member "gauges" dump with
    | Some (Obs.Json.Arr gs) -> gs
    | _ -> Alcotest.fail "dump has no gauges array"
  in
  Alcotest.(check bool) "intern-pool gauges registered" true
    (List.exists
       (fun g -> Obs.Json.member "name" g = Some (Obs.Json.Str "cgqp_intern_pool_size"))
       gauges)

(* --- EXPLAIN ---------------------------------------------------- *)

(* Golden test on a small deterministic query: single-table filter +
   projection under the CR policy set. *)
let golden_sql = "SELECT name FROM nation WHERE regionkey = 1"

let golden_expected =
  "compliant plan\n\
   phase-1 cost 80 | est. ship cost 0.00 ms | memo groups 4\n\
   policy evaluation: eta 4, implication tests 4\n\
   pruning: bound 80, pruned 0 groups / 0 entries / 0 combos\n\
   \n\
   Project [nation.name] @ L5  (est 5 rows)\n\
   \xe2\x94\x94\xe2\x94\x80 Filter [nation.regionkey = 1] @ L5  (est 5 rows)\n\
   \   \xe2\x94\x94\xe2\x94\x80 Project [nation.name, nation.regionkey] @ L5  (est 25 rows)\n\
   \      \xe2\x94\x94\xe2\x94\x80 Scan nation @ L5  (est 25 rows)\n"

let test_explain_golden () =
  match Planner.optimize_sql ~cat ~policies golden_sql with
  | Planner.Rejected r -> Alcotest.failf "golden query rejected: %s" r
  | Planner.Planned p ->
    Alcotest.(check string) "EXPLAIN output" golden_expected (Explain.render p)

let test_explain_analyze () =
  let session = Cgqp.create ~catalog:cat ~database:db () in
  Cgqp.set_policy_catalog session policies;
  match Cgqp.explain_analyze session (sql_of "Q3") with
  | Error e -> Alcotest.failf "explain analyze failed: %s" (Cgqp.error_to_string e)
  | Ok text ->
    let contains needle =
      let n = String.length needle and m = String.length text in
      let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("output mentions " ^ needle) true (contains needle))
      [ "compliant plan"; "act"; "SHIP"; "[ok]"; "execution:"; "makespan" ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "tracing on/off differential" `Quick
            test_tracing_differential;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "ring buffer" `Quick test_ring_buffer;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter identity" `Quick test_counter_identity;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "dump round-trip" `Quick test_dump_roundtrip;
        ] );
      ( "explain",
        [
          Alcotest.test_case "golden" `Quick test_explain_golden;
          Alcotest.test_case "analyze smoke" `Quick test_explain_analyze;
        ] );
    ]
