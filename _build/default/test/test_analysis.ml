(* Policy-analysis tooling tests: coverage, redundancy, no-op grants. *)

module Locset = Catalog.Location.Set

let locset = Alcotest.testable Locset.pp Locset.equal
let cat = Tpch.Schema.catalog ()

let coverage_of policies table col =
  match
    List.find_opt
      (fun (c : Policy.Analysis.column_coverage) -> c.column = col)
      (Policy.Analysis.coverage cat policies table)
  with
  | Some c -> c
  | None -> Alcotest.failf "no coverage row for %s.%s" table col

let test_coverage_raw () =
  let pols = Tpch.Policies.catalog_of cat Tpch.Policies.CRA in
  let c = coverage_of pols "customer" "acctbal" in
  Alcotest.check locset "acctbal raw" (Locset.of_list [ "L4"; "L5" ])
    c.Policy.Analysis.raw_unconditional;
  let sensitive = coverage_of pols "customer" "phone" in
  Alcotest.check locset "phone nowhere" Locset.empty
    sensitive.Policy.Analysis.raw_unconditional

let test_coverage_aggregate_only () =
  let pols = Tpch.Policies.catalog_of cat Tpch.Policies.CRA in
  let c = coverage_of pols "lineitem" "extendedprice" in
  Alcotest.check locset "raw only to L5" (Locset.of_list [ "L5" ])
    c.Policy.Analysis.raw_unconditional;
  match List.assoc_opt Relalg.Expr.Sum c.Policy.Analysis.aggregate_only with
  | Some locs -> Alcotest.check locset "sum to L1" (Locset.of_list [ "L1" ]) locs
  | None -> Alcotest.fail "sum coverage missing"

let test_coverage_conditional () =
  let pols = Tpch.Policies.catalog_of cat Tpch.Policies.CR in
  (* e4 grants part columns to L4 under a row condition; the backbone
     already grants L4 unconditionally, so the conditional column only
     shows extra sites when there are any *)
  let c = coverage_of pols "part" "size" in
  Alcotest.(check bool) "unconditional includes L4" true
    (Locset.mem "L4" c.Policy.Analysis.raw_unconditional);
  Alcotest.(check bool) "conditional disjoint" true
    (Locset.is_empty
       (Locset.inter c.Policy.Analysis.raw_unconditional
          c.Policy.Analysis.raw_conditional))

let test_redundant () =
  let pols =
    Policy.Pcatalog.of_texts cat
      [
        "ship name, regionkey from db-5.nation to L1, L2";
        "ship name, regionkey, nationkey from db-5.nation to L1, L2, L3";
        "ship name from db-5.nation to L1 where regionkey > 2";
      ]
  in
  let rs = Policy.Analysis.redundant pols in
  (* the first expression is subsumed by the second; the third too
     (its condition implies True and its grant is narrower) *)
  Alcotest.(check int) "two redundancies" 2 (List.length rs);
  List.iter
    (fun ((_, by) : Policy.Expression.t * Policy.Expression.t) ->
      Alcotest.(check bool) "witness is the wide grant" true
        (String.length by.Policy.Expression.text > 40))
    rs

let test_not_redundant () =
  let pols =
    Policy.Pcatalog.of_texts cat
      [
        "ship name from db-5.nation to L1, L2";
        "ship name as aggregates min from db-5.nation to L1, L2 group by regionkey";
        "ship regionkey from db-5.nation to L3";
      ]
  in
  (* the aggregate grant is subsumed by the raw one; but neither raw
     grant subsumes the other *)
  let rs = Policy.Analysis.redundant pols in
  Alcotest.(check int) "only the aggregate is redundant" 1 (List.length rs);
  match rs with
  | [ (e, _) ] ->
    Alcotest.(check bool) "it is the aggregate" true (Policy.Expression.is_aggregate e)
  | _ -> Alcotest.fail "expected exactly one"

let test_aggregate_subsumption_requires_fns () =
  let pols =
    Policy.Pcatalog.of_texts cat
      [
        "ship acctbal as aggregates sum from db-1.customer to L4 group by mktsegment";
        "ship acctbal as aggregates avg from db-1.customer to L4 group by mktsegment";
      ]
  in
  Alcotest.(check int) "different functions: no redundancy" 0
    (List.length (Policy.Analysis.redundant pols))

let test_dead_grants () =
  let pols =
    Policy.Pcatalog.of_texts cat
      [
        "ship name from db-5.nation to L5";  (* nation's own home *)
        "ship name from db-5.nation to L1";
      ]
  in
  match Policy.Analysis.dead cat pols with
  | [ e ] ->
    Alcotest.(check bool) "home-only grant flagged" true
      (Locset.equal e.Policy.Expression.to_locs (Locset.singleton "L5"))
  | ds -> Alcotest.failf "expected one dead grant, got %d" (List.length ds)

let () =
  Alcotest.run "analysis"
    [
      ( "analysis",
        [
          Alcotest.test_case "raw coverage" `Quick test_coverage_raw;
          Alcotest.test_case "aggregate-only coverage" `Quick test_coverage_aggregate_only;
          Alcotest.test_case "conditional coverage" `Quick test_coverage_conditional;
          Alcotest.test_case "redundant" `Quick test_redundant;
          Alcotest.test_case "not redundant" `Quick test_not_redundant;
          Alcotest.test_case "agg fns matter" `Quick test_aggregate_subsumption_requires_fns;
          Alcotest.test_case "dead grants" `Quick test_dead_grants;
        ] );
    ]
