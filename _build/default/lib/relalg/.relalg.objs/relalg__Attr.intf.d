lib/relalg/attr.mli: Format Map Set
