(* Predicates: boolean combinations of comparison / LIKE / IN atoms over
   scalar expressions. Used both for query WHERE clauses and for the
   `where` clause of policy expressions. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom =
  | Cmp of cmp * Expr.scalar * Expr.scalar
  | Like of Expr.scalar * string  (* SQL LIKE with % and _ wildcards *)
  | In of Expr.scalar * Value.t list
  | Is_null of Expr.scalar
  | Not_null of Expr.scalar

type t =
  | True
  | False
  | Atom of atom
  | And of t * t
  | Or of t * t
  | Not of t

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let flip_cmp = function Eq -> Eq | Ne -> Ne | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le

let atom_cols = function
  | Cmp (_, l, r) -> Attr.Set.union (Expr.cols l) (Expr.cols r)
  | Like (e, _) | In (e, _) | Is_null e | Not_null e -> Expr.cols e

let rec cols = function
  | True | False -> Attr.Set.empty
  | Atom a -> atom_cols a
  | And (l, r) | Or (l, r) -> Attr.Set.union (cols l) (cols r)
  | Not p -> cols p

let conj a b =
  match a, b with
  | True, p | p, True -> p
  | False, _ | _, False -> False
  | _ -> And (a, b)

let disj a b =
  match a, b with
  | False, p | p, False -> p
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let conj_all = List.fold_left conj True

(* Split a predicate into its top-level conjuncts. *)
let rec conjuncts = function
  | True -> []
  | And (l, r) -> conjuncts l @ conjuncts r
  | p -> [ p ]

let map_atom_exprs f = function
  | Cmp (c, l, r) -> Cmp (c, f l, f r)
  | Like (e, pat) -> Like (f e, pat)
  | In (e, vs) -> In (f e, vs)
  | Is_null e -> Is_null (f e)
  | Not_null e -> Not_null (f e)

let rec map_exprs f = function
  | True -> True
  | False -> False
  | Atom a -> Atom (map_atom_exprs f a)
  | And (l, r) -> And (map_exprs f l, map_exprs f r)
  | Or (l, r) -> Or (map_exprs f l, map_exprs f r)
  | Not p -> Not (map_exprs f p)

let map_cols f p = map_exprs (Expr.map_cols f) p
let subst env p = map_exprs (Expr.subst env) p

(* SQL LIKE matching: '%' matches any sequence, '_' any single char. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi = np then si = ns
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

let eval_cmp c v1 v2 =
  match v1, v2 with
  | Value.Null, _ | _, Value.Null -> false
  | _ ->
    let k = Value.compare v1 v2 in
    (match c with
    | Eq -> k = 0
    | Ne -> k <> 0
    | Lt -> k < 0
    | Le -> k <= 0
    | Gt -> k > 0
    | Ge -> k >= 0)

let eval_atom lookup = function
  | Cmp (c, l, r) -> eval_cmp c (Expr.eval lookup l) (Expr.eval lookup r)
  | Like (e, pat) -> (
    match Expr.eval lookup e with
    | Value.Str s -> like_match ~pattern:pat s
    | _ -> false)
  | In (e, vs) ->
    let v = Expr.eval lookup e in
    (not (Value.is_null v)) && List.exists (Value.equal v) vs
  | Is_null e -> Value.is_null (Expr.eval lookup e)
  | Not_null e -> not (Value.is_null (Expr.eval lookup e))

let rec eval lookup = function
  | True -> true
  | False -> false
  | Atom a -> eval_atom lookup a
  | And (l, r) -> eval lookup l && eval lookup r
  | Or (l, r) -> eval lookup l || eval lookup r
  | Not p -> not (eval lookup p)

let pp_atom ppf = function
  | Cmp (c, l, r) -> Fmt.pf ppf "%a %s %a" Expr.pp_scalar l (cmp_to_string c) Expr.pp_scalar r
  | Like (e, pat) -> Fmt.pf ppf "%a LIKE '%s'" Expr.pp_scalar e pat
  | In (e, vs) -> Fmt.pf ppf "%a IN (%a)" Expr.pp_scalar e Fmt.(list ~sep:comma Value.pp) vs
  | Is_null e -> Fmt.pf ppf "%a IS NULL" Expr.pp_scalar e
  | Not_null e -> Fmt.pf ppf "%a IS NOT NULL" Expr.pp_scalar e

let rec pp ppf = function
  | True -> Fmt.string ppf "TRUE"
  | False -> Fmt.string ppf "FALSE"
  | Atom a -> pp_atom ppf a
  | And (l, r) -> Fmt.pf ppf "(%a AND %a)" pp l pp r
  | Or (l, r) -> Fmt.pf ppf "(%a OR %a)" pp l pp r
  | Not p -> Fmt.pf ppf "NOT (%a)" pp p

let to_string p = Fmt.str "%a" pp p

let rec compare_pred a b =
  if a == b then 0 (* hash-consed subterms short-circuit *)
  else
    Stdlib.compare (rank a) (rank b) |> fun c ->
    if c <> 0 then c
    else
      match a, b with
      | True, True | False, False -> 0
      | Atom x, Atom y -> compare_atom x y
      | And (l1, r1), And (l2, r2) | Or (l1, r1), Or (l2, r2) ->
        let c = compare_pred l1 l2 in
        if c <> 0 then c else compare_pred r1 r2
      | Not p, Not q -> compare_pred p q
      | _ -> 0

and rank = function True -> 0 | False -> 1 | Atom _ -> 2 | And _ -> 3 | Or _ -> 4 | Not _ -> 5

and compare_atom x y =
  match x, y with
  | Cmp (c1, l1, r1), Cmp (c2, l2, r2) ->
    let c = Stdlib.compare c1 c2 in
    if c <> 0 then c
    else
      let c = Expr.compare_scalar l1 l2 in
      if c <> 0 then c else Expr.compare_scalar r1 r2
  | Like (e1, p1), Like (e2, p2) ->
    let c = Expr.compare_scalar e1 e2 in
    if c <> 0 then c else String.compare p1 p2
  | In (e1, v1), In (e2, v2) ->
    let c = Expr.compare_scalar e1 e2 in
    if c <> 0 then c else List.compare Value.compare v1 v2
  | Is_null e1, Is_null e2 | Not_null e1, Not_null e2 -> Expr.compare_scalar e1 e2
  | Cmp _, _ -> -1
  | _, Cmp _ -> 1
  | Like _, _ -> -1
  | _, Like _ -> 1
  | In _, _ -> -1
  | _, In _ -> 1
  | Is_null _, _ -> -1
  | _, Is_null _ -> 1

let equal a b = a == b || compare_pred a b = 0

(* -- Hash-consing -------------------------------------------------

   [compare_pred] treats [Int n] and [Float n.] as equal (numeric
   comparison in [Value.compare]), so the hash must too: [Value.hash]
   hashes integer-valued floats like the integer. Everything else in a
   predicate is strings and constant constructors, where the
   polymorphic hash agrees with the structural compare. *)

let hash_combine h1 h2 = (h1 * 0x01000193) lxor h2

let rec hash_scalar = function
  | Expr.Col a -> hash_combine 3 (Hashtbl.hash a)
  | Expr.Const v -> hash_combine 5 (Value.hash v)
  | Expr.Binop (op, l, r) ->
    hash_combine (hash_combine (hash_combine 7 (Hashtbl.hash op)) (hash_scalar l))
      (hash_scalar r)

let hash_atom = function
  | Cmp (c, l, r) ->
    hash_combine (hash_combine (hash_combine 11 (Hashtbl.hash c)) (hash_scalar l))
      (hash_scalar r)
  | Like (e, pat) -> hash_combine (hash_combine 13 (hash_scalar e)) (Hashtbl.hash pat)
  | In (e, vs) ->
    List.fold_left
      (fun acc v -> hash_combine acc (Value.hash v))
      (hash_combine 17 (hash_scalar e))
      vs
  | Is_null e -> hash_combine 19 (hash_scalar e)
  | Not_null e -> hash_combine 23 (hash_scalar e)

let rec hash = function
  | True -> 1
  | False -> 2
  | Atom a -> hash_combine 29 (hash_atom a)
  | And (l, r) -> hash_combine (hash_combine 31 (hash l)) (hash r)
  | Or (l, r) -> hash_combine (hash_combine 37 (hash l)) (hash r)
  | Not p -> hash_combine 41 (hash p)

module Hc = Intern.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* Bottom-up interning: children are canonicalized first, so shared
   subterms become physically equal and [compare_pred] on two
   hash-consed predicates short-circuits at the first shared node. *)
let rec hc p : Hc.node =
  match p with
  | True | False | Atom _ -> Hc.intern p
  | And (l, r) ->
    let l' = (hc l).node and r' = (hc r).node in
    Hc.intern (if l' == l && r' == r then p else And (l', r'))
  | Or (l, r) ->
    let l' = (hc l).node and r' = (hc r).node in
    Hc.intern (if l' == l && r' == r then p else Or (l', r'))
  | Not q ->
    let q' = (hc q).node in
    Hc.intern (if q' == q then p else Not q')

let hashcons p = (hc p).node

(* Canonical node plus unique id, the key shape used by verdict
   caches: two predicates imply the same cache slot iff they are
   structurally equal. *)
let intern p =
  let n = hc p in
  (n.node, n.id)

let intern_stats () = (Hc.hits (), Hc.misses (), Hc.size ())
