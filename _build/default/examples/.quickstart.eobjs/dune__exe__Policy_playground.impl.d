examples/policy_playground.ml: Catalog Fmt List Policy Relalg Sqlfront Summary Value
