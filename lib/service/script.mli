(** The workload-script format driven by [cgqp serve] — a line-based
    DSL (one statement per line, [#] comments) describing tenants,
    sessions and the statements each session submits:

    {v
    seed 7
    tenant analytics max-inflight 2 ship-budget 500000 window 1000 on-deny queue
    open s1 tenant analytics policies CR
    submit s1 Q3
    policy s1 ship custkey, name from customer to Europe
    submit s1 SELECT ...
    clear-policies s1
    wait s1 250
    close s1
    v}

    Statements: [seed N] · [tenant NAME (max-inflight N | ship-budget
    BYTES | window MS | on-deny reject|queue)*] · [open SID (tenant
    NAME)? (policies SET)?] · [submit SID SQL] · [policy SID TEXT] ·
    [set-policies SID SET] · [clear-policies SID] · [mode SID
    compliant|traditional] · [wait SID MS] · [close SID].

    Sessions without an explicit tenant belong to a tenant named after
    the session; tenants without a [tenant] line run {!Admission.unlimited}.
    [SET] names (e.g. the built-in TPC-H policy sets) and [Qn] query
    names are resolved by the scheduler's environment, not here. The
    full grammar is documented in [docs/SERVICE.md]. *)

type action =
  | Submit of string  (** SQL text, or a name the environment resolves *)
  | Add_policy of string  (** one policy expression, appended *)
  | Set_policy_set of string  (** replace policies with a named set *)
  | Clear_policies
  | Set_mode of Optimizer.Memo.mode
  | Wait of float  (** advance the session's clock by [ms] *)

type session_spec = {
  sid : string;
  tenant : string;
  actions : action list;  (** executed in order, interleaved across sessions *)
}

type t = {
  seed : int option;  (** [seed N] statement, if any *)
  tenants : (string * Admission.quota) list;
  sessions : session_spec list;  (** in [open] order *)
}

val zipf_workload :
  ?skew:float ->
  ?tenants:(string * Admission.quota) list ->
  sessions:int ->
  statements:int ->
  universe:int ->
  make_statement:(int -> string) ->
  seed:int ->
  unit ->
  t
(** Generate a skewed point-lookup workload: [statements] submissions
    spread round-robin over [sessions] sessions, each statement's
    parameter drawn from a Zipf distribution over [0, universe) with
    exponent [skew] (default 1.1 — rank-1 dominates, a long tail of
    cold values). [make_statement v] renders the SQL for parameter [v];
    with a template-friendly shape (a single equality literal) the hot
    ranks collapse onto one cached template plan, which is what [bench
    feedback] measures. Sampling is CDF inversion over a splitmix64
    stream seeded from [seed], so the script — including its embedded
    [seed] statement — is a pure function of the arguments. Raises
    [Invalid_argument] on non-positive [sessions], [statements],
    [universe] or [skew]. *)

val parse : string -> (t, string) result
(** Parse script text; [Error msg] carries the offending line number. *)

val parse_file : string -> (t, string) result

val to_string : t -> string
(** Render in the {!parse} grammar (round-trips structurally; the
    [open ... policies SET] sugar is emitted as a [set-policies]
    statement). *)

val pp : Format.formatter -> t -> unit
