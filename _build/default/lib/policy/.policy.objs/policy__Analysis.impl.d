lib/policy/analysis.ml: Catalog Expr Expression Fmt Implication List Pcatalog Pred Relalg String
