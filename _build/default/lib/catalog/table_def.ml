(* Definition and statistics of one global table. Statistics drive the
   optimizer's cardinality estimation; they are set independently of the
   physical data so the cost model can mimic any scale factor. *)

type col_stat = {
  distinct : int;  (* number of distinct values *)
  width : int;  (* average serialized width in bytes *)
  lo : float option;  (* numeric minimum, when meaningful *)
  hi : float option;  (* numeric maximum, when meaningful *)
}

let default_stat = { distinct = 1000; width = 8; lo = None; hi = None }

type column = { cname : string; ty : Relalg.Value.ty; stat : col_stat }

type t = {
  name : string;  (* global table name, lowercase *)
  columns : column list;
  key : string list;  (* primary key columns *)
  row_count : int;
  clustered : bool;  (* rows stored in primary-key order *)
}

let make ?(clustered = false) ~name ~columns ~key ~row_count () =
  let name = String.lowercase_ascii name in
  let columns =
    List.map (fun c -> { c with cname = String.lowercase_ascii c.cname }) columns
  in
  { name; columns; key = List.map String.lowercase_ascii key; row_count; clustered }

let column ?(stat = default_stat) cname ty = { cname = String.lowercase_ascii cname; ty; stat }

let col_names t = List.map (fun c -> c.cname) t.columns

let find_col t name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun c -> String.equal c.cname name) t.columns

let has_col t name = find_col t name <> None

let is_key t cols =
  (* [cols] functionally determine the row iff they cover the key *)
  t.key <> [] && List.for_all (fun k -> List.exists (String.equal k) cols) t.key

let row_width t =
  List.fold_left (fun acc c -> acc + c.stat.width) 0 t.columns

let pp ppf t =
  Fmt.pf ppf "%s(%a) [rows=%d key=%a]" t.name
    Fmt.(list ~sep:comma (using (fun c -> c.cname) string))
    t.columns t.row_count
    Fmt.(list ~sep:comma string)
    t.key
