lib/policy/expression.ml: Attr Catalog Expr Fmt List Option Pred Relalg Sqlfront String
