(* The policy evaluation algorithm 𝒜 (Algorithm 1 of the paper).

   Given the summary of a (sub)query pertaining to a single database and
   the policy catalog, it returns the set of locations to which the
   query's output can legally be shipped. The disclosure model is
   conservative (§4): an attribute is shippable nowhere unless some
   policy expression says otherwise, and any output whose derivation the
   summary analysis could not track ([opaque]) makes the result empty.

   Two refinements match the paper's worked examples (§3.1, §4.1):
   - the result always contains the home location of every
     (non-partitioned) referenced table — data may always "ship" to the
     site it already resides at (e.g. 𝒜(Π_n(σ_a=100(C)), D_N, P_N) =
     {N});
   - columns *accessed* by predicates are disclosed through filtering
     ("if a subquery accesses only the specified cells, then its output
     can be shipped"), so they carry obligations even when projected
     away — this is what restricts σ_a=100 above. *)

open Relalg
module Locset = Catalog.Location.Set

(* Mutable instrumentation, cf. §7.5: [eta] counts the (expression,
   evaluation) pairs for which ship attributes overlap the query's
   attributes and the implication test holds — the paper's η_{q,|E|}.
   [implication_tests] counts calls to the implication test. *)
type stats = { mutable eta : int; mutable implication_tests : int }

let fresh_stats () = { eta = 0; implication_tests = 0 }

(* Global observability instruments. Unlike the per-run [stats] record,
   these accumulate across the whole process and feed the metrics
   registry ([--metrics], CGQP_METRICS_OUT); cache hits replay their
   recorded increments so η stays exact either way. *)
let c_eta = Obs.Metrics.counter "cgqp_policy_eta_total"
let c_impl_tests = Obs.Metrics.counter "cgqp_policy_implication_tests_total"

let c_cache_hit =
  Obs.Metrics.counter
    ~labels:[ ("cache", "evaluator"); ("outcome", "hit") ]
    "cgqp_policy_cache_total"

let c_cache_miss =
  Obs.Metrics.counter
    ~labels:[ ("cache", "evaluator"); ("outcome", "miss") ]
    "cgqp_policy_cache_total"

(* One per-attribute obligation extracted from the query summary. *)
type requirement = {
  col : Summary.base_col;
  agg : Expr.agg_fn option;
  group_key : bool;
  accessed_only : bool;  (* read by a predicate, not part of the output *)
}

let requirements_of_summary (s : Summary.t) : requirement list option =
  (* None = some output is opaque: evaluate to the empty location set *)
  let exception Opaque in
  try
    let of_outputs =
      List.concat_map
        (fun (r : Summary.out_ref) ->
          if r.opaque then raise Opaque
          else
            List.map
              (fun col ->
                { col; agg = r.agg; group_key = r.group_key; accessed_only = false })
              r.sources)
        s.outputs
    in
    let of_group =
      match s.group_cols with
      | None -> []
      | Some gs ->
        List.map (fun col -> { col; agg = None; group_key = true; accessed_only = false }) gs
    in
    let of_accessed =
      List.map
        (fun (col, agg) -> { col; agg; group_key = false; accessed_only = true })
        s.accessed
    in
    let dedup rs =
      List.fold_left
        (fun acc r ->
          if
            List.exists
              (fun r' ->
                Summary.base_col_equal r.col r'.col
                && r.agg = r'.agg && r.group_key = r'.group_key
                && r.accessed_only = r'.accessed_only)
              acc
          then acc
          else r :: acc)
        [] rs
      |> List.rev
    in
    Some (dedup (of_outputs @ of_group @ of_accessed))
  with Opaque -> None

let mem_col c cols = List.exists (String.equal c) cols

(* Group-by columns of the summary that belong to [table]. *)
let group_cols_of s table =
  match s.Summary.group_cols with
  | None -> []
  | Some gs ->
    List.filter_map
      (fun (g : Summary.base_col) ->
        if String.equal g.table table then Some g.column else None)
      gs

(* Case 3 of Algorithm 1 (lines 6–10): does aggregate expression [e]
   sanction [r] for an aggregation query? The group-by attributes of the
   query restricted to [e]'s table must be a subset of G_e (the empty
   subset included); then the attribute must be a sanctioned grouping
   column, or a ship attribute aggregated by a sanctioned function. *)
let aggregate_case_grants (s : Summary.t) (e : Expression.t) (r : requirement) =
  let gq = group_cols_of s e.Expression.table in
  List.for_all (fun g -> mem_col g e.Expression.group_by) gq
  && (mem_col r.col.column e.Expression.group_by
     ||
     match r.agg with
     | Some f ->
       (not r.group_key)
       && mem_col r.col.column e.Expression.ship_cols
       && List.mem f e.Expression.agg_fns
     | None -> false)

(* Home locations: sites where a referenced table (non-partitioned)
   already resides. *)
let home_locations (catalog : Catalog.t) (s : Summary.t) =
  List.fold_left
    (fun acc (_, table) ->
      match Catalog.find_table catalog table with
      | Some { placements = [ p ]; _ } -> Locset.add p.Catalog.location acc
      | Some _ | None -> acc)
    Locset.empty s.Summary.tables

let locations_for_uncached ?stats ?(include_home = true) ~(catalog : Catalog.t)
    ~(policies : Pcatalog.t) (s : Summary.t) : Locset.t =
  let all_locations = Locset.of_list (Catalog.locations catalog) in
  let home = if include_home then home_locations catalog s else Locset.empty in
  if not s.valid then Locset.empty
  else
    match requirements_of_summary s with
    | None -> Locset.empty
    | Some [] ->
      (* No attribute obligations (e.g. a bare COUNT( * )): under the
         attribute-based disclosure model nothing restricted is
         shipped. *)
      all_locations
    | Some reqs ->
      let is_agg_query = Summary.is_aggregate s in
      let tables =
        List.sort_uniq String.compare (List.map (fun r -> r.col.Summary.table) reqs)
      in
      (* Per expression: does the implication hold? Evaluated once, with
         η updated when ship attributes overlap the query's attributes
         (Algorithm 1, line 2). Keyed by physical identity: the same
         expression values flow from the policy catalog to every
         lookup. *)
      let applicable : (Expression.t * bool) list ref = ref [] in
      List.iter
        (fun table ->
          List.iter
            (fun (e : Expression.t) ->
              let shares_attr =
                List.exists
                  (fun r ->
                    String.equal r.col.Summary.table e.Expression.table
                    && mem_col r.col.Summary.column e.Expression.ship_cols)
                  reqs
              in
              if shares_attr then begin
                (match stats with
                | Some st -> st.implication_tests <- st.implication_tests + 1
                | None -> ());
                Obs.Metrics.inc c_impl_tests;
                let holds = Implication.implies s.pred e.Expression.pred in
                if holds then begin
                  Option.iter (fun st -> st.eta <- st.eta + 1) stats;
                  Obs.Metrics.inc c_eta
                end;
                if Obs.Trace.enabled () then
                  Obs.Trace.instant "policy.verdict"
                    [
                      ("table", Obs.Json.Str e.Expression.table);
                      ("expr", Obs.Json.Str e.Expression.text);
                      ("holds", Obs.Json.Bool holds);
                    ];
                applicable := (e, holds) :: !applicable
              end
              else applicable := (e, false) :: !applicable)
            (Pcatalog.for_table policies table))
        tables;
      let locations_of_requirement r =
        List.fold_left
          (fun acc (e : Expression.t) ->
            if not (List.assq_opt e !applicable = Some true) then acc
            else if Expression.is_basic e then
              (* Cases 1 & 2: a basic expression covers the attribute in
                 raw form, hence also any aggregation of it. *)
              if mem_col r.col.Summary.column e.Expression.ship_cols then
                Locset.union acc e.Expression.to_locs
              else acc
            else if is_agg_query && aggregate_case_grants s e r then
              Locset.union acc e.Expression.to_locs
            else acc)
          Locset.empty
          (Pcatalog.for_table policies r.col.Summary.table)
      in
      let granted =
        List.fold_left
          (fun acc r -> Locset.inter acc (locations_of_requirement r))
          all_locations reqs
      in
      Locset.union granted home

(* -- Compliance-verdict cache -------------------------------------

   Algorithm 1 is pure in (catalog, policies, include_home, summary);
   both catalogs are immutable and carry construction-time stamps, and
   summaries are plain data, so the whole evaluation memoizes on a
   structural key. Cached entries also record how much they bumped the
   instrumentation counters (η, implication tests), and hits replay
   those increments — E7-style η reports stay exact whether or not the
   cache is warm. The [enabled] switch exists for the differential
   suite. *)

type verdict = { locs : Locset.t; d_eta : int; d_tests : int }

let cache : ((int * int * bool) * Summary.t, verdict) Hashtbl.t = Hashtbl.create 1024
let cache_lock = Mutex.create ()
let enabled = ref true
let hits = ref 0
let misses = ref 0
let max_entries = 1 lsl 16

let set_cache_enabled b = enabled := b
let cache_stats () = Mutex.protect cache_lock (fun () -> (!hits, !misses))

let reset_cache () =
  Mutex.protect cache_lock (fun () ->
      Hashtbl.reset cache;
      hits := 0;
      misses := 0)

let replay stats ~d_eta ~d_tests =
  match stats with
  | None -> ()
  | Some st ->
    st.eta <- st.eta + d_eta;
    st.implication_tests <- st.implication_tests + d_tests

(* Shared across domains: lookups/inserts run under the lock, the
   evaluation itself outside it. Two domains evaluating the same cold
   key both compute the same verdict (Algorithm 1 is pure in the key)
   and the second insert is dropped, so replayed η/test increments stay
   exact either way; only the hit/miss diagnostic counters are
   timing-dependent (excluded from the docs/PARALLELISM.md contract). *)
let locations_for ?stats ?(include_home = true) ~(catalog : Catalog.t)
    ~(policies : Pcatalog.t) (s : Summary.t) : Locset.t =
  if not !enabled then locations_for_uncached ?stats ~include_home ~catalog ~policies s
  else
    let key = ((Catalog.stamp catalog, Pcatalog.stamp policies, include_home), s) in
    let cached =
      Mutex.protect cache_lock (fun () ->
          match Hashtbl.find_opt cache key with
          | Some v ->
            incr hits;
            Some v
          | None ->
            incr misses;
            None)
    in
    match cached with
    | Some v ->
      Obs.Metrics.inc c_cache_hit;
      (* replay the recorded increments into the registry too, so the
         global η counter is cache-transparent like the stats record *)
      Obs.Metrics.inc ~by:v.d_eta c_eta;
      Obs.Metrics.inc ~by:v.d_tests c_impl_tests;
      replay stats ~d_eta:v.d_eta ~d_tests:v.d_tests;
      v.locs
    | None ->
      Obs.Metrics.inc c_cache_miss;
      let local = fresh_stats () in
      let locs = locations_for_uncached ~stats:local ~include_home ~catalog ~policies s in
      Mutex.protect cache_lock (fun () ->
          if Hashtbl.length cache >= max_entries then Hashtbl.reset cache;
          if not (Hashtbl.mem cache key) then
            Hashtbl.add cache key
              { locs; d_eta = local.eta; d_tests = local.implication_tests });
      replay stats ~d_eta:local.eta ~d_tests:local.implication_tests;
      locs
