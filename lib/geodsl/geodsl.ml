(* A small text language for defining geo-distributed catalogs, so the
   system can be deployed without writing OCaml:

   {v
   # comments start with '#'
   network uniform alpha 150 beta 0.000002
   location l1
   location l2
   link l1 l2 alpha 90 beta 0.0000011

   table customer at db-1 on l1 rows 150000 (
     custkey int key distinct 150000,
     name string width 18,
     acctbal float min -999 max 9999 distinct 15000,
     nationkey int distinct 25
   )
   table orders at db-1 on l1, l2 rows 1500000 ( ... )   # partitioned evenly
   v}

   Identifiers are lowercased by the lexer, so location names are
   case-insensitive. Tables listed [on] several locations are
   horizontally partitioned in equal fractions. *)

open Relalg
module Lexer = Sqlfront.Lexer

exception Error of string

let fail fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

(* --- token-stream helpers (comments stripped before lexing) --- *)

let strip_comments text =
  String.split_on_char '\n' text
  |> List.map (fun line ->
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line)
  |> String.concat "\n"

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let ident st =
  match peek st with
  | Lexer.Ident s ->
    advance st;
    s
  | t -> fail "expected identifier, found %s" (Lexer.token_to_string t)

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %s, found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek st))

let number st =
  match peek st with
  | Lexer.Int_lit i ->
    advance st;
    float_of_int i
  | Lexer.Float_lit f ->
    advance st;
    f
  | Lexer.Minus ->
    advance st;
    -.(match peek st with
      | Lexer.Int_lit i ->
        advance st;
        float_of_int i
      | Lexer.Float_lit f ->
        advance st;
        f
      | t -> fail "expected number after '-', found %s" (Lexer.token_to_string t))
  | t -> fail "expected number, found %s" (Lexer.token_to_string t)

let int_number st =
  let f = number st in
  if Float.is_integer f then int_of_float f else fail "expected an integer, got %g" f

(* --- grammar --- *)

let ty_of_string = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" | "text" -> Value.Tstr
  | "date" -> Value.Tdate
  | "bool" -> Value.Tbool
  | s -> fail "unknown column type %s" s

let parse_column st : Catalog.Table_def.column * bool =
  let name = ident st in
  let ty = ty_of_string (ident st) in
  let stat = ref Catalog.Table_def.default_stat in
  let is_key = ref false in
  let rec options () =
    match peek st with
    | Lexer.Ident "key" ->
      advance st;
      is_key := true;
      options ()
    | Lexer.Ident "distinct" ->
      advance st;
      stat := { !stat with Catalog.Table_def.distinct = int_number st };
      options ()
    | Lexer.Ident "width" ->
      advance st;
      stat := { !stat with Catalog.Table_def.width = int_number st };
      options ()
    | Lexer.Ident "min" ->
      advance st;
      stat := { !stat with Catalog.Table_def.lo = Some (number st) };
      options ()
    | Lexer.Ident "max" ->
      advance st;
      stat := { !stat with Catalog.Table_def.hi = Some (number st) };
      options ()
    | _ -> ()
  in
  options ();
  (Catalog.Table_def.column ~stat:!stat name ty, !is_key)

let parse_table st : Catalog.Table_def.t * Catalog.placement list =
  let name = ident st in
  (match ident st with "at" -> () | k -> fail "expected 'at', found %s" k);
  let db = ident st in
  (match ident st with "on" -> () | k -> fail "expected 'on', found %s" k);
  let rec locs acc =
    let l = ident st in
    match peek st with
    | Lexer.Comma ->
      advance st;
      locs (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  let locations = locs [] in
  let rows =
    match peek st with
    | Lexer.Ident "rows" ->
      advance st;
      int_number st
    | _ -> 1000
  in
  expect st Lexer.Lparen;
  let rec columns acc =
    let c = parse_column st in
    match peek st with
    | Lexer.Comma ->
      advance st;
      columns (c :: acc)
    | _ ->
      expect st Lexer.Rparen;
      List.rev (c :: acc)
  in
  let cols = columns [] in
  let def =
    Catalog.Table_def.make ~name
      ~columns:(List.map fst cols)
      ~key:(List.filter_map (fun (c, k) -> if k then Some c.Catalog.Table_def.cname else None) cols)
      ~row_count:rows ()
  in
  let fraction = 1.0 /. float_of_int (List.length locations) in
  (def, List.map (fun location -> { Catalog.db; location; fraction }) locations)

type doc = {
  mutable uniform : (float * float) option;
  mutable locations : string list;
  mutable links : (string * string * float * float) list;
  mutable tables : (Catalog.Table_def.t * Catalog.placement list) list;
}

(* [parse_catalog text] builds a catalog from the schema language. *)
let parse_catalog (text : string) : Catalog.t =
  let st =
    { toks = (try Lexer.tokenize (strip_comments text) with Lexer.Error m -> fail "%s" m) }
  in
  let doc = { uniform = None; locations = []; links = []; tables = [] } in
  let rec statements () =
    match peek st with
    | Lexer.Eof -> ()
    | Lexer.Ident "network" ->
      advance st;
      (match ident st with "uniform" -> () | k -> fail "expected 'uniform', found %s" k);
      (match ident st with "alpha" -> () | k -> fail "expected 'alpha', found %s" k);
      let a = number st in
      (match ident st with "beta" -> () | k -> fail "expected 'beta', found %s" k);
      let b = number st in
      doc.uniform <- Some (a, b);
      statements ()
    | Lexer.Ident "location" ->
      advance st;
      doc.locations <- doc.locations @ [ ident st ];
      statements ()
    | Lexer.Ident "link" ->
      advance st;
      let i = ident st in
      let j = ident st in
      (match ident st with "alpha" -> () | k -> fail "expected 'alpha', found %s" k);
      let a = number st in
      (match ident st with "beta" -> () | k -> fail "expected 'beta', found %s" k);
      let b = number st in
      doc.links <- doc.links @ [ (i, j, a, b) ];
      statements ()
    | Lexer.Ident "table" ->
      advance st;
      doc.tables <- doc.tables @ [ parse_table st ];
      statements ()
    | t -> fail "unexpected token %s at top level" (Lexer.token_to_string t)
  in
  statements ();
  if doc.locations = [] then fail "no locations declared";
  (* validate table locations *)
  List.iter
    (fun (_, placements) ->
      List.iter
        (fun (p : Catalog.placement) ->
          if not (List.mem p.Catalog.location doc.locations) then
            fail "undeclared location %s" p.Catalog.location)
        placements)
    doc.tables;
  let network =
    let base_a, base_b = Option.value doc.uniform ~default:(150., 2e-6) in
    let n = Catalog.Network.uniform ~locations:doc.locations ~alpha:base_a ~beta:base_b in
    if doc.links = [] then n
    else begin
      (* overriding links: rebuild with explicit entries on top of the
         uniform base *)
      let all_pairs =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                if String.equal i j then None
                else
                  match
                    List.find_opt
                      (fun (a, b, _, _) ->
                        (a = i && b = j) || (a = j && b = i))
                      doc.links
                  with
                  | Some (_, _, al, be) -> Some (i, j, al, be)
                  | None -> Some (i, j, base_a, base_b))
              doc.locations)
          doc.locations
      in
      Catalog.Network.make ~locations:doc.locations ~links:all_pairs ()
    end
  in
  Catalog.make ~network doc.tables

let load_catalog_file path : Catalog.t =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse_catalog text

(* [load_csv_dir ~cat dir] loads [dir]/<table>.csv for every table of
   the catalog into a database; partitioned tables are split round-robin
   like the TPC-H loader. Missing files load as empty relations. *)
let load_csv_dir ~(cat : Catalog.t) (dir : string) : Storage.Database.t =
  let db = Storage.Database.create () in
  List.iter
    (fun (entry : Catalog.entry) ->
      let def = entry.Catalog.def in
      let name = def.Catalog.Table_def.name in
      let schema =
        List.map
          (fun (c : Catalog.Table_def.column) -> Attr.make ~rel:name ~name:c.cname)
          def.Catalog.Table_def.columns
      in
      let types =
        List.map (fun (c : Catalog.Table_def.column) -> c.ty) def.Catalog.Table_def.columns
      in
      let path = Filename.concat dir (name ^ ".csv") in
      let rel =
        if Sys.file_exists path then Storage.Csv.load_file ~schema ~types path
        else Storage.Relation.empty ~schema
      in
      match entry.Catalog.placements with
      | [ _ ] -> Storage.Database.add db ~table:name rel
      | ps ->
        let k = List.length ps in
        List.iteri
          (fun i _ ->
            let rows =
              Array.of_seq
                (Seq.filter_map
                   (fun (j, row) -> if j mod k = i then Some row else None)
                   (Array.to_seqi (Storage.Relation.rows rel)))
            in
            Storage.Database.add db ~table:name ~partition:i
              (Storage.Relation.make ~schema ~rows))
          ps)
    (Catalog.all_tables cat);
  db
