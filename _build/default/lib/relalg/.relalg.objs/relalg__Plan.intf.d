lib/relalg/plan.mli: Attr Expr Format Pred
