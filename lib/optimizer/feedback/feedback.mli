(** Cardinality feedback: fold observed scan cardinalities from
    executor profiles back into catalog statistics.

    The optimizer's scan estimates come from [Catalog.Table_def]
    [row_count]s that are set independently of the attached data (e.g.
    the TPC-H catalog carries SF-10 statistics while a session attaches
    SF-0.01 data), so estimated and actual rows can disagree by orders
    of magnitude — visible as the est-vs-actual columns of
    [EXPLAIN ANALYZE]. A feedback store accumulates, per base table,
    the {e global} row count implied by each executed scan
    ([actual_rows / placement.fraction]); once a table has enough
    observations ([min_obs]) and the implied mean disagrees with the
    catalog by more than [threshold] (relative), {!fold} builds a new
    catalog with the corrected [row_count]s.

    Folding never mutates the current catalog — catalogs are immutable
    with process-unique stamps, so the new catalog has a new stamp and
    every plan-cache key referencing the old one goes stale on its
    own. Callers additionally bump the cache epoch
    ([Plan_cache.bump_epoch ~reason:"feedback"]) so the stale entries
    are purged eagerly; see [docs/FEEDBACK.md] for the invalidation
    flow and [Cgqp] / [Service.Scheduler] for the wiring.

    Everything here is deterministic: observations arrive in statement
    order, means are exact sums, and {!fold} rebuilds tables in
    [Catalog.all_tables] order — so feedback-driven re-optimization
    replays bit-for-bit from one seed. *)

type t

val create : ?min_obs:int -> ?threshold:float -> unit -> t
(** A fresh store. [min_obs] (default 3) is the per-table observation
    count required before folding; [threshold] (default 0.5) is the
    relative est-vs-actual gap — mean implied rows vs catalog
    [row_count] — below which a table is left alone (re-optimizing on
    noise would thrash the plan cache). *)

val observe :
  t ->
  cat:Catalog.t ->
  plan:Exec.Pplan.t ->
  profile:Exec.Interp.node_profile list ->
  unit
(** Record every [Table_scan] of an executed plan. [profile] is the
    executor's per-node profile ([Exec.Interp.result.profile]); nodes
    are matched by tree path, the same convention EXPLAIN ANALYZE
    uses. Scans of partitions with fraction 0, or missing from the
    profile, are ignored. *)

val fold : t -> Catalog.t -> Catalog.t option
(** [fold t cat] is [Some cat'] — a new catalog (new stamp, same
    network) with corrected [row_count]s — when at least one table has
    [min_obs] observations and a gap above [threshold]; [None]
    otherwise. Folded tables' accumulators reset so the next fold needs
    fresh evidence against the corrected statistics. *)

val observations : t -> int
(** Total scan observations recorded. *)

val folds : t -> int
(** Number of times {!fold} returned [Some _]. *)

val converged : t -> actual:(string -> int option) -> bool
(** Have the statistics converged onto the ground truth? True iff no
    accumulated table with [min_obs] observations still shows a gap
    above [threshold] against [actual table] (the true row count —
    [None] skips the table). Once a fold has installed row counts that
    match the data, the post-fold observations agree with them and this
    stays true: no further fold can fire. Pure — accumulators are not
    touched. *)

val pending : t -> (string * int * float) list
(** [(table, observations, implied mean rows)] for every table with at
    least one observation since its last fold, sorted by table name
    (diagnostics and the feedback bench). *)
