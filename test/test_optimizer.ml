(* Optimizer tests: memo exploration, annotation traits, Theorem 1
   (the compliance-based optimizer never emits a non-compliant plan),
   the site-selector DP against brute force, and plan extraction. *)

open Relalg
module Locset = Catalog.Location.Set

let cat = Tpch.Schema.catalog ()
let cra = Tpch.Policies.catalog_of cat Tpch.Policies.CRA
let t_set = Tpch.Policies.catalog_of cat Tpch.Policies.T

let optimize ?(mode = Optimizer.Memo.Compliant) ~policies sql =
  Optimizer.Planner.optimize_sql ~mode ~cat ~policies sql

let planned = function
  | Optimizer.Planner.Planned p -> p
  | Optimizer.Planner.Rejected r -> Alcotest.failf "unexpectedly rejected: %s" r

(* --- basic end-to-end planning --- *)

let test_all_queries_compliant () =
  List.iter
    (fun set ->
      let policies = Tpch.Policies.catalog_of cat set in
      List.iter
        (fun (name, sql) ->
          let p = planned (optimize ~policies sql) in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s compliant" (Tpch.Policies.set_name_to_string set) name)
            []
            (List.map
               (fun v -> Fmt.str "%a" Optimizer.Checker.pp_violation v)
               p.Optimizer.Planner.violations))
        Tpch.Queries.all)
    Tpch.Policies.all_sets

let test_traditional_q2_non_compliant () =
  let p = planned (optimize ~mode:Optimizer.Memo.Traditional ~policies:t_set Tpch.Queries.q2) in
  Alcotest.(check bool) "Q2 traditional violates" true
    (p.Optimizer.Planner.violations <> [])

let test_rejection () =
  (* no policies at all: a cross-border join is impossible *)
  let empty = Policy.Pcatalog.empty in
  match
    optimize ~policies:empty
      "SELECT c.name FROM customer c, lineitem l WHERE c.custkey = l.orderkey"
  with
  | Optimizer.Planner.Rejected _ -> ()
  | Optimizer.Planner.Planned _ -> Alcotest.fail "must reject without policies"

let test_single_site_needs_no_policy () =
  (* customer and orders are co-located at L1: legal with no policies *)
  let empty = Policy.Pcatalog.empty in
  let p =
    planned
      (optimize ~policies:empty
         "SELECT c.name, o.totalprice FROM customer c, orders o WHERE c.custkey = o.custkey")
  in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> Fmt.str "%a" Optimizer.Checker.pp_violation v)
       p.Optimizer.Planner.violations);
  (* every operator must run at L1 *)
  let rec locs (pl : Exec.Pplan.t) =
    pl.Exec.Pplan.loc :: List.concat_map locs pl.Exec.Pplan.children
  in
  Alcotest.(check (list string)) "all at L1" [ "L1" ]
    (List.sort_uniq String.compare (locs (planned (optimize ~policies:empty
      "SELECT c.name, o.totalprice FROM customer c, orders o WHERE c.custkey = o.custkey"))
      .Optimizer.Planner.plan))

let test_q3_pushes_aggregate_below_ship () =
  let p = planned (optimize ~policies:cra Tpch.Queries.q3) in
  (* find a HashAgg strictly below a Ship L4->L1 *)
  let rec has_agg_below_ship (pl : Exec.Pplan.t) =
    (match pl.Exec.Pplan.node with
    | Exec.Pplan.Ship { from_loc = "L4"; to_loc = "L1" } -> (
      match pl.Exec.Pplan.children with
      | [ { Exec.Pplan.node = Exec.Pplan.Hash_agg _; _ } ] -> true
      | _ -> false)
    | _ -> false)
    || List.exists has_agg_below_ship pl.Exec.Pplan.children
  in
  Alcotest.(check bool) "Fig 5(e) shape" true (has_agg_below_ship p.Optimizer.Planner.plan)

let test_traditional_does_not_push_aggregate () =
  let p = planned (optimize ~mode:Optimizer.Memo.Traditional ~policies:cra Tpch.Queries.q3) in
  let rec agg_count (pl : Exec.Pplan.t) =
    (match pl.Exec.Pplan.node with Exec.Pplan.Hash_agg _ -> 1 | _ -> 0)
    + List.fold_left (fun a c -> a + agg_count c) 0 pl.Exec.Pplan.children
  in
  Alcotest.(check int) "single aggregate (Fig 5(d))" 1 (agg_count p.Optimizer.Planner.plan)

let test_same_plan_when_traditional_compliant () =
  (* §7.4: identical plans whenever the cost-based plan is compliant and
     no compliant-only rules fire (Q5 under C involves no aggregates
     pushdown opportunity exploited differently) *)
  let c_set = Tpch.Policies.catalog_of cat Tpch.Policies.C in
  let t = planned (optimize ~mode:Optimizer.Memo.Traditional ~policies:c_set Tpch.Queries.q3) in
  let c = planned (optimize ~policies:c_set Tpch.Queries.q3) in
  Alcotest.(check bool) "traditional compliant" true (t.Optimizer.Planner.violations = []);
  Alcotest.(check (float 1e-6)) "same ship cost" t.Optimizer.Planner.ship_cost
    c.Optimizer.Planner.ship_cost

(* --- memo internals --- *)

let test_memo_dedup () =
  let m = Optimizer.Memo.create ~mode:Optimizer.Memo.Compliant ~cat ~policies:cra () in
  let plan sql =
    Sqlfront.Binder.plan_of_sql
      ~table_cols:(fun t ->
        Option.map (fun e -> Catalog.Table_def.col_names e.Catalog.def)
          (Catalog.find_table cat t))
      sql
  in
  let g1 =
    Optimizer.Memo.ingest m
      (plan "SELECT c.name FROM customer c, orders o WHERE c.custkey = o.custkey")
  in
  let g2 =
    Optimizer.Memo.ingest m
      (plan "SELECT c.name FROM orders o, customer c WHERE o.custkey = c.custkey")
  in
  Alcotest.(check bool)
    "commuted queries reach equal-sized memos" true
    (g1 >= 0 && g2 >= 0)

let test_exploration_grows_plan_space () =
  let count mode =
    let p = planned (optimize ~mode ~policies:cra Tpch.Queries.q5) in
    p.Optimizer.Planner.groups
  in
  let trad = count Optimizer.Memo.Traditional in
  let comp = count Optimizer.Memo.Compliant in
  (* the compliant optimizer explores at least as much (extra eager-agg
     alternatives), cf. §7.3's plan-space growth *)
  Alcotest.(check bool) "plan space grows" true (comp >= trad)

(* --- Theorem 1 as a property --- *)

let prop_theorem_1 =
  QCheck.Test.make ~name:"theorem 1: compliant optimizer never emits violations" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Storage.Prng.create ~seed in
      let sql = List.hd (Tpch.Workload.gen_queries ~seed ~n:1 ()) in
      (* random, possibly very restrictive policy set: no backbone *)
      let n_expr = 2 + Storage.Prng.int g 10 in
      let template = Storage.Prng.pick g Tpch.Policies.all_sets in
      let texts =
        Tpch.Workload.gen_expressions ~seed:(seed + 1) ~template ~n:n_expr ()
        (* drop some backbone expressions to provoke rejections *)
        |> List.filteri (fun i _ -> i mod 3 <> 0)
      in
      let policies = Policy.Pcatalog.of_texts cat texts in
      match optimize ~policies sql with
      | Optimizer.Planner.Planned p -> p.Optimizer.Planner.violations = []
      | Optimizer.Planner.Rejected _ -> true (* rejecting is always sound *))

(* --- site selector: DP equals brute force --- *)

let gen_anode seed =
  let g = Storage.Prng.create ~seed in
  let locations = [ "L1"; "L2"; "L3"; "L4"; "L5" ] in
  let uid = ref 0 in
  let rec build depth =
    incr uid;
    let my_uid = !uid in
    let exec =
      Locset.of_list (Storage.Prng.pick_k g (1 + Storage.Prng.int g 3) locations)
    in
    let children =
      if depth = 0 then []
      else List.init (1 + Storage.Prng.int g 2) (fun _ -> build (depth - 1))
    in
    let exec = if children = [] then Locset.singleton (Storage.Prng.pick g locations) else exec in
    {
      Optimizer.Memo.uid = my_uid;
      shape = Exec.Pplan.Union_all;
      children;
      exec;
      rows = float_of_int (1 + Storage.Prng.int g 1000);
      width = float_of_int (8 + Storage.Prng.int g 64);
    }
  in
  build (1 + Storage.Prng.int g 2)

let prop_site_selector_optimal =
  QCheck.Test.make ~name:"site-selector DP matches brute force" ~count:120
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let network = Catalog.network cat in
      let anode = gen_anode seed in
      let dp = Optimizer.Site_selector.select ~network anode in
      let bf = Optimizer.Site_selector.brute_force ~network anode in
      match dp, bf with
      | Some { cost; _ }, Some expect -> Float.abs (cost -. expect) < 1e-6
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let test_response_time_objective () =
  (* the critical-path objective never exceeds the total-cost value of
     its own plan, and still yields a compliant placement *)
  let total = planned (optimize ~policies:cra Tpch.Queries.q5) in
  let resp =
    match
      Optimizer.Planner.optimize_sql ~mode:Optimizer.Memo.Compliant
        ~objective:`Response_time ~cat ~policies:cra Tpch.Queries.q5
    with
    | Optimizer.Planner.Planned p -> p
    | Optimizer.Planner.Rejected r -> Alcotest.failf "rejected: %s" r
  in
  Alcotest.(check bool) "critical path <= total" true
    (resp.Optimizer.Planner.ship_cost <= total.Optimizer.Planner.ship_cost +. 1e-6);
  Alcotest.(check (list string)) "still compliant" []
    (List.map (fun v -> Fmt.str "%a" Optimizer.Checker.pp_violation v)
       resp.Optimizer.Planner.violations)

let rec plan_has pred (pl : Exec.Pplan.t) =
  pred pl.Exec.Pplan.node || List.exists (plan_has pred) pl.Exec.Pplan.children

let test_merge_join_on_clustered_keys () =
  (* partsupp and part are both clustered on partkey: a sort-free merge
     join beats the hash join under the cost model *)
  let p =
    planned
      (optimize ~policies:t_set
         "SELECT ps.partkey, p.retailprice FROM partsupp ps, part p \
          WHERE ps.partkey = p.partkey")
  in
  Alcotest.(check bool) "merge join chosen" true
    (plan_has
       (function Exec.Pplan.Merge_join _ -> true | _ -> false)
       p.Optimizer.Planner.plan);
  Alcotest.(check bool) "no sorts needed" false
    (plan_has (function Exec.Pplan.Sort _ -> true | _ -> false) p.Optimizer.Planner.plan)

let test_order_by_enforcer () =
  (* an ORDER BY satisfied by the plan's natural order adds no Sort; an
     unsatisfied one adds exactly one root enforcer *)
  let satisfied =
    planned
      (Optimizer.Planner.optimize_sql ~cat ~policies:t_set
         ~required_order:[ (Attr.make ~rel:"ps" ~name:"partkey", false) ]
         "SELECT ps.partkey, p.retailprice FROM partsupp ps, part p \
          WHERE ps.partkey = p.partkey")
  in
  Alcotest.(check bool) "no sort when satisfied" false
    (plan_has
       (function Exec.Pplan.Sort _ -> true | _ -> false)
       satisfied.Optimizer.Planner.plan);
  let unsatisfied =
    planned
      (Optimizer.Planner.optimize_sql ~cat ~policies:t_set
         ~required_order:[ (Attr.make ~rel:"p" ~name:"retailprice", true) ]
         "SELECT ps.partkey, p.retailprice FROM partsupp ps, part p \
          WHERE ps.partkey = p.partkey")
  in
  Alcotest.(check bool) "sort added" true
    (plan_has
       (function Exec.Pplan.Sort _ -> true | _ -> false)
       unsatisfied.Optimizer.Planner.plan)

(* --- checker --- *)

let test_checker_flags_bad_ship () =
  (* hand-build a plan shipping raw lineitem pricing data to L1 under CR+A *)
  let mk ?(loc = "L4") node children =
    { Exec.Pplan.node; loc; children; est = { Exec.Pplan.est_rows = 1.; est_width = 8. } }
  in
  let scan =
    mk (Exec.Pplan.Table_scan { table = "lineitem"; alias = "l"; partition = 0 }) []
  in
  let project =
    mk
      (Exec.Pplan.Project
         [ (Expr.Col (Attr.make ~rel:"l" ~name:"extendedprice"),
            Attr.make ~rel:"l" ~name:"extendedprice") ])
      [ scan ]
  in
  let shipped =
    mk ~loc:"L1" (Exec.Pplan.Ship { from_loc = "L4"; to_loc = "L1" }) [ project ]
  in
  let violations = Optimizer.Checker.certify ~cat ~policies:cra shipped in
  Alcotest.(check int) "one violation" 1 (List.length violations);
  (* the same ship to L5 is fine *)
  let ok = mk ~loc:"L5" (Exec.Pplan.Ship { from_loc = "L4"; to_loc = "L5" }) [ project ] in
  Alcotest.(check int) "no violation to L5" 0
    (List.length (Optimizer.Checker.certify ~cat ~policies:cra ok))

let test_stats_sanity () =
  let est = Optimizer.Stats.estimate cat (Plan.Scan { table = "lineitem"; alias = "l" }) in
  Alcotest.(check bool) "row count" true (est.Optimizer.Stats.rows > 1e6);
  let filtered =
    Optimizer.Stats.estimate cat
      (Plan.Select
         ( Pred.Atom
             (Pred.Cmp
                ( Pred.Eq,
                  Expr.Col (Attr.make ~rel:"l" ~name:"orderkey"),
                  Expr.Const (Value.Int 5) )),
           Plan.Scan { table = "lineitem"; alias = "l" } ))
  in
  Alcotest.(check bool) "selection reduces" true
    (filtered.Optimizer.Stats.rows < est.Optimizer.Stats.rows);
  let agg =
    Optimizer.Stats.estimate cat
      (Plan.Aggregate
         {
           keys = [ Attr.make ~rel:"l" ~name:"returnflag" ];
           aggs = [];
           input = Plan.Scan { table = "lineitem"; alias = "l" };
         })
  in
  Alcotest.(check bool) "few groups" true (agg.Optimizer.Stats.rows <= 3.5)

let () =
  Alcotest.run "optimizer"
    [
      ( "planning",
        [
          Alcotest.test_case "all queries compliant" `Slow test_all_queries_compliant;
          Alcotest.test_case "traditional Q2 NC" `Quick test_traditional_q2_non_compliant;
          Alcotest.test_case "rejection" `Quick test_rejection;
          Alcotest.test_case "single site" `Quick test_single_site_needs_no_policy;
          Alcotest.test_case "Q3 pushdown" `Quick test_q3_pushes_aggregate_below_ship;
          Alcotest.test_case "trad no pushdown" `Quick test_traditional_does_not_push_aggregate;
          Alcotest.test_case "same plan when compliant" `Quick
            test_same_plan_when_traditional_compliant;
          Alcotest.test_case "response-time objective" `Quick
            test_response_time_objective;
          Alcotest.test_case "merge join on clustered keys" `Quick
            test_merge_join_on_clustered_keys;
          Alcotest.test_case "order-by enforcer" `Quick test_order_by_enforcer;
        ] );
      ( "memo",
        [
          Alcotest.test_case "dedup" `Quick test_memo_dedup;
          Alcotest.test_case "plan space" `Quick test_exploration_grows_plan_space;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_theorem_1;
          QCheck_alcotest.to_alcotest prop_site_selector_optimal;
          Alcotest.test_case "checker flags" `Quick test_checker_flags_bad_ship;
        ] );
    ]
