test/test_exec.ml: Alcotest Array Attr Catalog Exec Expr Float List Pred Relalg Storage Value
