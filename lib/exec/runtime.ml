(* Shared execution scaffolding for the engines (the reference
   interpreter in [Interp], the compiling executor in [Compile] and the
   vectorized executor in [Vector]): SHIP accounting under the message
   cost model with fault injection and retry/backoff, per-operator
   profiles for EXPLAIN ANALYZE, scalar/predicate compilation, and the
   metrics/trace emission. Keeping this in one place is what makes the
   engines byte-identical on stats, profiles and traces. *)

open Relalg

type ship_record = {
  from_loc : Catalog.Location.t;
  to_loc : Catalog.Location.t;
  bytes : int;
  rows : int;
  cost_ms : float;
  attempts : int;
}

type stats = {
  mutable ships : ship_record list;
  mutable rows_processed : int;
  mutable ship_retries : int;
}

let fresh_stats () = { ships = []; rows_processed = 0; ship_retries = 0 }

type retry_policy = {
  max_attempts : int;  (* total tries per SHIP, >= 1 *)
  base_backoff_ms : float;  (* backoff before retry k: base * 2^(k-1), capped *)
  max_backoff_ms : float;
  attempt_timeout_ms : float;
      (* an attempt whose simulated transfer time exceeds this is
         abandoned (and charged the timeout) *)
  budget_ms : float;  (* simulated-clock budget per SHIP, backoffs included *)
}

let default_retry =
  {
    max_attempts = 4;
    base_backoff_ms = 50.;
    max_backoff_ms = 1600.;
    attempt_timeout_ms = Float.infinity;
    budget_ms = Float.infinity;
  }

type ship_failure =
  [ `Link_down
  | `Site_down of Catalog.Location.t
  | `Attempts_exhausted
  | `Budget_exhausted ]

exception
  Ship_failed of {
    from_loc : Catalog.Location.t;
    to_loc : Catalog.Location.t;
    attempts : int;
    reason : ship_failure;
  }

let ship_failure_to_string : ship_failure -> string = function
  | `Link_down -> "link down"
  | `Site_down l -> "site " ^ l ^ " down"
  | `Attempts_exhausted -> "retry attempts exhausted"
  | `Budget_exhausted -> "simulated-clock budget exhausted"

exception
  Replica_stale of {
    table : string;
    partition : int;
    site : Catalog.Location.t;
  }

(* Freshness gate every engine runs before reading a scan's rows: a
   scheduled [replica-lag] makes the copy at [site] unreadable, exactly
   like a down link makes a SHIP impossible. The predicate only looks at
   (faults, table, site) — never at the catalog — so a session whose
   catalog carries no replica sets raises identically when its (only)
   copy is scheduled stale, and the degradation path stays uniform. *)
let check_replica ~faults ~table ~partition ~site =
  if Catalog.Network.Fault.replica_stale faults ~table ~site then
    raise (Replica_stale { table; partition; site })

let () =
  Printexc.register_printer (function
    | Ship_failed { from_loc; to_loc; attempts; reason } ->
      Some
        (Printf.sprintf "Exec.Interp.Ship_failed(%s -> %s after %d attempts: %s)"
           from_loc to_loc attempts (ship_failure_to_string reason))
    | Replica_stale { table; partition; site } ->
      Some
        (Printf.sprintf "Exec.Interp.Replica_stale(%s/%d at %s)" table partition
           site)
    | _ -> None)

(* Per-operator execution profile, keyed by the node's position in the
   plan tree (root-to-node child indices) so EXPLAIN ANALYZE can match
   actuals back to plan nodes without identity tricks. *)
type node_profile = {
  path : int list;
  label : string;
  actual_rows : int;
  actual_bytes : int;
  ship : ship_record option;
}

type result = {
  relation : Storage.Relation.t;
  stats : stats;
  profile : node_profile list;  (* execution (post-) order *)
  makespan_ms : float;
      (* simulated response time: sibling subtrees proceed in parallel,
         transfers follow the message cost model, local processing is
         charged per materialized row *)
}

let c_rows = Obs.Metrics.counter "cgqp_exec_rows_processed_total"
let c_ships = Obs.Metrics.counter "cgqp_exec_ships_total"
let c_ship_bytes = Obs.Metrics.counter "cgqp_exec_ship_bytes_total"
let c_ship_retries = Obs.Metrics.counter "cgqp_exec_ship_retries_total"
let c_ship_retry_bytes = Obs.Metrics.counter "cgqp_exec_ship_retry_bytes_total"
let h_ship_cost_ms = Obs.Metrics.histogram "cgqp_exec_ship_cost_ms"

(* Simulated per-row local processing cost (ms); only relative
   magnitudes matter. *)
let row_cost_ms = 1e-5

let total_ship_cost stats = List.fold_left (fun a s -> a +. s.cost_ms) 0. stats.ships
let total_ship_bytes stats = List.fold_left (fun a s -> a + s.bytes) 0 stats.ships

(* Bytes the network actually carried: a retried payload crosses the
   link once per attempt, but counts only once toward the result. *)
let total_traffic_bytes stats =
  List.fold_left (fun a s -> a + (s.bytes * s.attempts)) 0 stats.ships

exception Runtime_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

(* Serialized size of a row set — what a SHIP of those rows moves. *)
let rows_bytes (rows : Value.t array array) =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc v -> acc + Value.byte_width v) acc row)
    0 rows

(* --- memory budget ------------------------------------------------

   A per-execution byte account over serialized sizes (the same
   [Value.byte_width] sums the SHIP ledger uses, so the numbers are
   engine-independent): every operator charges its materialized output
   and releases its children's after consuming them; hash join and
   aggregation additionally charge their scratch state (the build side
   / the input) for the duration of the kernel. When a charge would
   exceed the budget, those two operators switch to the Grace spill
   path ([Spill]) instead. [unlimited_budget] (the default) makes all
   accounting a no-op, so budget-free runs pay nothing.

   The spill decision is a pure function of (budget, deterministic byte
   counts), identical across engines — which is what lets the spilling
   and in-memory paths be differentially tested for byte-identity. *)

type mem = {
  budget : int;
  mutable tracked : int;  (* currently charged bytes *)
  mutable peak : int;
  mutable spill_ops : int;  (* operators that took the spill path *)
  mutable spill_parts : int;  (* Grace partitions across those *)
  mutable spill_run_bytes : int;  (* bytes written to run files *)
}

let unlimited_budget = max_int

let mem_create ~budget =
  { budget; tracked = 0; peak = 0; spill_ops = 0; spill_parts = 0;
    spill_run_bytes = 0 }

let mem_charge m b =
  if m.budget <> unlimited_budget then begin
    m.tracked <- m.tracked + b;
    if m.tracked > m.peak then m.peak <- m.tracked
  end

let mem_release m b =
  if m.budget <> unlimited_budget then m.tracked <- max 0 (m.tracked - b)

(* Would charging [b] more bytes trip the budget? *)
let should_spill m b =
  m.budget <> unlimited_budget && b > 0 && m.tracked + b > m.budget

(* Grace fan-out: enough partitions that one partition of [bytes]
   plausibly fits in a quarter of the budget, clamped to [2, 64]. *)
let spill_partitions_for m ~bytes =
  if m.budget <= 0 then 64
  else
    let per = max 1 (m.budget / 4) in
    min 64 (max 2 ((bytes / per) + 1))

(* "64m"-style byte counts: plain bytes, or a k/m/g suffix (powers of
   1024); "unlimited" / empty / unset mean no budget. *)
let parse_budget s =
  let s = String.trim (String.lowercase_ascii s) in
  match s with
  | "" | "unlimited" | "none" | "inf" -> Some unlimited_budget
  | _ ->
    let mul, num =
      let n = String.length s in
      match s.[n - 1] with
      | 'k' -> (1024, String.sub s 0 (n - 1))
      | 'm' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'g' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    (match int_of_string_opt (String.trim num) with
    | Some v when v >= 0 -> Some (v * mul)
    | _ -> None)

let budget_from_env () =
  match Sys.getenv_opt "CGQP_MEM_BUDGET" with
  | None -> unlimited_budget
  | Some s -> (
    match parse_budget s with
    | Some b -> b
    | None ->
      invalid_arg
        (Printf.sprintf
           "CGQP_MEM_BUDGET=%S: expected bytes, optionally suffixed k/m/g" s))

(* Process-wide spill/paging observability (executions may run
   concurrently on domains; the per-execution [mem] folds in at the
   end). *)
let c_spill_ops = Obs.Metrics.counter "cgqp_exec_spilled_operators_total"
let c_spill_parts = Obs.Metrics.counter "cgqp_exec_spill_partitions_total"
let c_spill_bytes = Obs.Metrics.counter "cgqp_exec_spill_bytes_total"
let peak_tracked = Atomic.make 0

let () =
  Obs.Metrics.gauge "cgqp_exec_peak_tracked_bytes" (fun () ->
      float_of_int (Atomic.get peak_tracked));
  Obs.Metrics.gauge "cgqp_storage_segment_page_reads" (fun () ->
      float_of_int (Storage.Segment.page_reads ()))

(* Fold a finished execution's account into the process-wide stats. *)
let mem_finish m =
  let rec bump () =
    let cur = Atomic.get peak_tracked in
    if m.peak > cur && not (Atomic.compare_and_set peak_tracked cur m.peak) then
      bump ()
  in
  bump ();
  if m.spill_ops > 0 then begin
    Obs.Metrics.inc ~by:m.spill_ops c_spill_ops;
    Obs.Metrics.inc ~by:m.spill_parts c_spill_parts;
    Obs.Metrics.inc ~by:m.spill_run_bytes c_spill_bytes
  end

(* Readers for [--stats] and the bench. *)
let peak_tracked_bytes () = Atomic.get peak_tracked
let spilled_operators () = Obs.Metrics.value c_spill_ops
let spill_partitions () = Obs.Metrics.value c_spill_parts
let spill_run_bytes () = Obs.Metrics.value c_spill_bytes
let segment_page_reads () = Storage.Segment.page_reads ()

let reset_mem_stats () = Atomic.set peak_tracked 0

(* --- aggregate accumulation --- *)

type acc = {
  mutable sum : Value.t;
  mutable count : int;
  mutable vmin : Value.t;
  mutable vmax : Value.t;
}

let fresh_acc () = { sum = Value.Null; count = 0; vmin = Value.Null; vmax = Value.Null }

let feed acc v =
  if not (Value.is_null v) then begin
    acc.count <- acc.count + 1;
    acc.sum <- (if Value.is_null acc.sum then v else Value.add acc.sum v);
    acc.vmin <-
      (if Value.is_null acc.vmin || Value.compare v acc.vmin < 0 then v else acc.vmin);
    acc.vmax <-
      (if Value.is_null acc.vmax || Value.compare v acc.vmax > 0 then v else acc.vmax)
  end

let finish (fn : Expr.agg_fn) acc =
  match fn with
  | Expr.Sum -> acc.sum
  | Expr.Count -> Value.Int acc.count
  | Expr.Min -> acc.vmin
  | Expr.Max -> acc.vmax
  | Expr.Avg ->
    if acc.count = 0 then Value.Null
    else Value.div acc.sum (Value.Int acc.count)

(* --- scalar / predicate compilation ---

   Shared by the compiling and vectorized engines: attributes resolve
   to integer column indices once, Pred/Expr ASTs become closures,
   constant subterms fold, and null checks specialize away where an
   operand is a known non-null constant. Having exactly one copy of
   this logic is what keeps engine semantics identical by
   construction. *)

let binop_fn : Expr.binop -> Value.t -> Value.t -> Value.t = function
  | Expr.Add -> Value.add
  | Expr.Sub -> Value.sub
  | Expr.Mul -> Value.mul
  | Expr.Div -> Value.div

(* Fold constant subterms bottom-up: a Binop over two Consts becomes a
   Const. Arithmetic here is [Value.add] etc., exactly what evaluation
   would do, so folding cannot change results. *)
let rec fold_scalar (e : Expr.scalar) : Expr.scalar =
  match e with
  | Expr.Col _ | Expr.Const _ -> e
  | Expr.Binop (op, l, r) -> (
    let l = fold_scalar l and r = fold_scalar r in
    match l, r with
    | Expr.Const a, Expr.Const b -> Expr.Const (binop_fn op a b)
    | _ -> Expr.Binop (op, l, r))

let compile_scalar (rv : Storage.Relation.resolver) (e : Expr.scalar) :
    Value.t array -> Value.t =
  let rec go e =
    match e with
    | Expr.Const v -> fun _ -> v
    | Expr.Col a -> (
      match Storage.Relation.resolve rv a with
      | Some ix -> fun row -> if ix < Array.length row then row.(ix) else Value.Null
      | None -> fun _ -> Value.Null)
    | Expr.Binop (op, l, r) ->
      let fl = go l and fr = go r in
      let f = binop_fn op in
      fun row -> f (fl row) (fr row)
  in
  go (fold_scalar e)

let cmp_fn : Pred.cmp -> int -> bool = function
  | Pred.Eq -> fun k -> k = 0
  | Pred.Ne -> fun k -> k <> 0
  | Pred.Lt -> fun k -> k < 0
  | Pred.Le -> fun k -> k <= 0
  | Pred.Gt -> fun k -> k > 0
  | Pred.Ge -> fun k -> k >= 0

let const_true = fun (_ : Value.t array) -> true
let const_false = fun (_ : Value.t array) -> false

(* LIKE patterns without wildcards are plain string equality. *)
let has_wildcard pat = String.exists (fun c -> c = '%' || c = '_') pat

let compile_atom rv (a : Pred.atom) : Value.t array -> bool =
  match a with
  | Pred.Cmp (c, l, r) -> (
    let test = cmp_fn c in
    match fold_scalar l, fold_scalar r with
    | Expr.Const a, Expr.Const b ->
      if Pred.eval_cmp c a b then const_true else const_false
    | Expr.Const a, r ->
      (* NULL cmp anything is false, so a null constant kills the atom;
         a non-null constant needs no per-row null check on its side *)
      if Value.is_null a then const_false
      else
        let fr = compile_scalar rv r in
        fun row ->
          let b = fr row in
          (not (Value.is_null b)) && test (Value.compare a b)
    | l, Expr.Const b ->
      if Value.is_null b then const_false
      else
        let fl = compile_scalar rv l in
        fun row ->
          let a = fl row in
          (not (Value.is_null a)) && test (Value.compare a b)
    | l, r ->
      let fl = compile_scalar rv l and fr = compile_scalar rv r in
      fun row ->
        let a = fl row in
        (not (Value.is_null a))
        &&
        let b = fr row in
        (not (Value.is_null b)) && test (Value.compare a b))
  | Pred.Like (e, pat) ->
    let fe = compile_scalar rv e in
    if has_wildcard pat then fun row ->
      (match fe row with Value.Str s -> Pred.like_match ~pattern:pat s | _ -> false)
    else fun row ->
      (match fe row with Value.Str s -> String.equal s pat | _ -> false)
  | Pred.In (e, vs) ->
    let fe = compile_scalar rv e in
    fun row ->
      let v = fe row in
      (not (Value.is_null v)) && List.exists (Value.equal v) vs
  | Pred.Is_null e ->
    let fe = compile_scalar rv e in
    fun row -> Value.is_null (fe row)
  | Pred.Not_null e ->
    let fe = compile_scalar rv e in
    fun row -> not (Value.is_null (fe row))

(* Fold column-free subtrees to True/False (their value cannot depend
   on the row; evaluate once with a never-called lookup) and simplify
   through the boolean connectives. *)
let rec fold_pred (p : Pred.t) : Pred.t =
  match p with
  | Pred.True | Pred.False -> p
  | Pred.Atom a ->
    if Attr.Set.is_empty (Pred.atom_cols a) then
      if Pred.eval_atom (fun _ -> Value.Null) a then Pred.True else Pred.False
    else p
  | Pred.And (l, r) -> Pred.conj (fold_pred l) (fold_pred r)
  | Pred.Or (l, r) -> Pred.disj (fold_pred l) (fold_pred r)
  | Pred.Not q -> (
    match fold_pred q with
    | Pred.True -> Pred.False
    | Pred.False -> Pred.True
    | q -> Pred.Not q)

let compile_pred rv (p : Pred.t) : Value.t array -> bool =
  let rec go = function
    | Pred.True -> const_true
    | Pred.False -> const_false
    | Pred.Atom a -> compile_atom rv a
    | Pred.And (l, r) ->
      let fl = go l and fr = go r in
      fun row -> fl row && fr row
    | Pred.Or (l, r) ->
      let fl = go l and fr = go r in
      fun row -> fl row || fr row
    | Pred.Not q ->
      let f = go q in
      fun row -> not (f row)
  in
  go (fold_pred p)

(* --- key index vectors --- *)

(* Column positions of join/group keys; [-1] marks an unresolvable
   attribute, which reads as NULL for every row (same as the
   interpreter's lookup). *)
let key_ixs rv attrs : int array =
  Array.of_list
    (List.map
       (fun a -> match Storage.Relation.resolve rv a with Some i -> i | None -> -1)
       attrs)

let key_val (row : Value.t array) ix =
  if ix >= 0 && ix < Array.length row then row.(ix) else Value.Null

(* Fill [buf] with the key of [row]; false if any component is NULL
   (such rows never join). *)
let fill_key (ixs : int array) (row : Value.t array) (buf : Value.t array) =
  let ok = ref true in
  for i = 0 to Array.length ixs - 1 do
    let v = key_val row ixs.(i) in
    if Value.is_null v then ok := false;
    buf.(i) <- v
  done;
  !ok

(* --- row utilities --- *)

module Row_key = struct
  type t = Value.t array

  let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

  let hash a = Array.fold_left (fun h v -> (h * 31) + Value.hash v) 17 a
end

module Row_tbl = Hashtbl.Make (Row_key)

(* --- shared SHIP path --- *)

(* Execute one SHIP: topology checks, then the retry loop on the
   simulated clock, then stats/metrics/trace. The drop fate of each
   attempt is keyed by the ship's index in [stats.ships] — engines must
   therefore execute ships in the same order to see the same fates. *)
let do_ship ~faults ~retry ~network ~stats ~from_loc ~to_loc ~bytes ~rows :
    ship_record =
  let ship_idx = List.length stats.ships in
  let fail_ship ~attempts reason =
    raise (Ship_failed { from_loc; to_loc; attempts; reason })
  in
  (* permanent topology failures discovered at transfer time *)
  if Catalog.Network.Fault.site_down faults from_loc then
    fail_ship ~attempts:0 (`Site_down from_loc);
  if Catalog.Network.Fault.site_down faults to_loc then
    fail_ship ~attempts:0 (`Site_down to_loc);
  if Catalog.Network.Fault.link_down faults ~from_loc ~to_loc then
    fail_ship ~attempts:0 `Link_down;
  (* Healthy transfer time, inflated by any latency fault. The
     schedule is applied here, on top of the network's own — run
     with a healthy network plus an explicit schedule, or with a
     pre-masked network and no schedule, never both. *)
  let attempt_cost =
    Catalog.Network.ship_cost network ~from_loc ~to_loc ~bytes:(float_of_int bytes)
    *. Catalog.Network.Fault.latency_factor faults ~from_loc ~to_loc
  in
  (* Retry loop on the simulated clock: a dropped or timed-out
     attempt consumes the link (bytes crossed, result lost), then
     backs off exponentially with a cap. *)
  let rec go ~attempt ~elapsed =
    if attempt > retry.max_attempts then
      fail_ship ~attempts:(attempt - 1) `Attempts_exhausted;
    if elapsed +. attempt_cost > retry.budget_ms then
      fail_ship ~attempts:(attempt - 1) `Budget_exhausted;
    let timed_out = attempt_cost > retry.attempt_timeout_ms in
    if
      timed_out
      || Catalog.Network.Fault.drops faults ~from_loc ~to_loc ~ship:ship_idx
           ~attempt
    then begin
      let charged = Float.min attempt_cost retry.attempt_timeout_ms in
      let backoff =
        Float.min retry.max_backoff_ms
          (retry.base_backoff_ms *. (2. ** float_of_int (attempt - 1)))
      in
      if Obs.Trace.enabled () then
        Obs.Trace.instant "exec.ship_retry"
          [
            ("from", Obs.Json.Str from_loc);
            ("to", Obs.Json.Str to_loc);
            ("attempt", Obs.Json.Num (float_of_int attempt));
            ("cause", Obs.Json.Str (if timed_out then "timeout" else "drop"));
            ("backoff_ms", Obs.Json.Num backoff);
          ];
      go ~attempt:(attempt + 1) ~elapsed:(elapsed +. charged +. backoff)
    end
    else (attempt, elapsed +. attempt_cost)
  in
  let attempts, cost_ms = go ~attempt:1 ~elapsed:0. in
  let record = { from_loc; to_loc; bytes; rows; cost_ms; attempts } in
  stats.ships <- record :: stats.ships;
  stats.ship_retries <- stats.ship_retries + (attempts - 1);
  Obs.Metrics.inc c_ships;
  Obs.Metrics.inc ~by:bytes c_ship_bytes;
  if attempts > 1 then begin
    Obs.Metrics.inc ~by:(attempts - 1) c_ship_retries;
    Obs.Metrics.inc ~by:(bytes * (attempts - 1)) c_ship_retry_bytes
  end;
  Obs.Metrics.observe h_ship_cost_ms cost_ms;
  if Obs.Trace.enabled () then
    Obs.Trace.instant "exec.ship"
      [
        ("from", Obs.Json.Str from_loc);
        ("to", Obs.Json.Str to_loc);
        ("bytes", Obs.Json.Num (float_of_int bytes));
        ("rows", Obs.Json.Num (float_of_int rows));
        ("cost_ms", Obs.Json.Num cost_ms);
        ("attempts", Obs.Json.Num (float_of_int attempts));
      ];
  record

(* Post-order per-node bookkeeping, identical across engines:
   rows_processed, the rows counter, the profile entry and the
   per-operator trace event. *)
let record_node ~stats ~(profile : node_profile list ref) ~rpath ~label
    ~(loc : Catalog.Location.t) ~ship ~card ~bytes =
  stats.rows_processed <- stats.rows_processed + card;
  Obs.Metrics.inc ~by:card c_rows;
  profile :=
    { path = List.rev rpath; label; actual_rows = card; actual_bytes = bytes; ship }
    :: !profile;
  if Obs.Trace.enabled () then
    Obs.Trace.instant "exec.op"
      [
        ("op", Obs.Json.Str label);
        ("loc", Obs.Json.Str loc);
        ("rows", Obs.Json.Num (float_of_int card));
      ]
