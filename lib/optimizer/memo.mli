(** A memo-based top-down optimizer in the style of the Volcano
    optimizer generator (§6.1 of the paper), extended with the
    compliance machinery:

    - groups of logically-equivalent expressions, deduplicated by a
      canonical representative ({!Normalize.canon});
    - transformation rules: join commutativity and associativity, eager
      aggregation pushdown (the rewrite §6.4 identifies as necessary for
      completeness), and filter/projection distribution over partition
      unions;
    - annotation rules AR1–AR4 deriving {e execution traits} ℰ (where an
      operator may legally run) and {e shipping traits} 𝒮 (where its
      output may legally be sent) bottom-up;
    - the compliance-based cost function: alternatives with an empty
      execution trait have infinite cost, i.e. are pruned.

    Because the phase-1 cost model ignores data location (two-phase
    optimization, §6), plan cost is independent of traits; each group
    keeps a small Pareto frontier of (cost, 𝒮) alternatives — the
    analogue of Calcite's trait-bearing equivalence nodes whose
    plan-space growth the paper reports in §7.3. *)

open Relalg
module Locset = Catalog.Location.Set

type gid = int
(** Memo-group identifier. *)

type mexpr =
  | E_scan of {
      table : string;
      alias : string;
      partition : int;
      location : Catalog.Location.t;
      fraction : float;
    }
  | E_filter of Pred.t * gid
  | E_project of (Expr.scalar * Attr.t) list * gid
  | E_join of Pred.t * gid * gid
  | E_agg of Attr.t list * Expr.agg list * gid
  | E_union of gid list
      (** a multi-expression whose children are memo groups *)

type group = {
  id : gid;
  repr : Plan.t;  (** canonical logical form (group identity) *)
  mutable exprs : mexpr list;
  mutable explored : bool;
  mutable entries : entry list option;
  est : Stats.node_est;
  summary : Summary.t;
  tables : (string * string) list;
  partition_tag : int;  (** >= 0 when the subtree reads one partition *)
  single_loc : Catalog.Location.t option;
  policy_ships : Locset.t Lazy.t;  (** AR4 contribution (evaluated once) *)
  lb : float;
      (** static lower bound on any entry's cost (summed base-table scan
          estimates), used by branch-and-bound pruning *)
}

and entry = {
  cost : float;
  exec_trait : Locset.t;  (** ℰ *)
  ship_trait : Locset.t;  (** 𝒮 *)
  order : (Attr.t * bool) list;  (** delivered sort order (attr, desc) *)
  phys : phys;
  mex : mexpr;
  sub : entry list;  (** chosen child entries, in child order *)
}

(** Physical alternative: joins may run as hash (default; preserves the
    probe side's order) or as merge with sort enforcers on unsorted
    inputs — the Volcano enforcer mechanism of the paper's Figure 3. *)
and phys = P_default | P_merge of { sort_left : bool; sort_right : bool }

type mode =
  | Compliant  (** trait-annotating optimizer (the paper's contribution) *)
  | Traditional
      (** purely cost-based baseline ("Calcite as-is"): no annotation
          rules, no eager aggregation, all locations treated legal *)

type rules = {
  join_commute : bool;
  join_associate : bool;
  eager_aggregation : bool;
  union_pushdown : bool;
}
(** Transformation-rule toggles, for the ablation experiments. *)

val default_rules : rules
(** All rules enabled. *)

type prune_stats = {
  bound : float;  (** the branch-and-bound upper bound U; infinite = never seeded *)
  groups_pruned : int;  (** groups skipped outright (lower bound above U) *)
  entries_pruned : int;  (** annotated candidates dropped for costing above U *)
  combos_pruned : int;  (** join child combinations skipped before annotation *)
}

type t

val create :
  ?max_frontier:int ->
  ?prune:bool ->
  ?rules:rules ->
  ?eval_stats:Policy.Evaluator.stats ->
  mode:mode ->
  cat:Catalog.t ->
  policies:Policy.Pcatalog.t ->
  unit ->
  t
(** [prune] (default true) enables branch-and-bound: {!extract} first
    costs the plan as ingested — a complete plan whose cost U bounds
    the optimum — then skips groups, candidates and join combos whose
    cost provably exceeds U. Chosen plans are unaffected: every entry
    of the optimal plan costs at most U, so only non-optimal
    alternatives are discarded. *)

val prune_stats : t -> prune_stats
(** Branch-and-bound counters accumulated so far (zeros when [prune]
    is off or {!extract} has not run). *)

val group : t -> gid -> group
(** Look up a group by id (raises [Not_found] on an unknown id). *)

val group_count : t -> int
(** Number of groups — the plan-space size the §7.3 experiments
    report. *)

val ingest : t -> Plan.t -> gid
(** Insert a (normalized) logical plan, expanding partitioned scans into
    unions of per-partition scans (§7.5). *)

val explore : t -> group -> unit
(** Apply transformation rules to fixpoint. *)

val entries_of : t -> group -> entry list
(** The group's Pareto frontier of annotated alternatives (explores on
    demand). Empty in compliant mode means no compliant plan exists for
    this group. *)

(** {2 Phase-1 result} *)

type anode = {
  uid : int;
  shape : Exec.Pplan.node;
  children : anode list;
  exec : Locset.t;  (** execution trait, consumed by the site selector *)
  rows : float;
  width : float;
}
(** A node of the annotated best plan. *)

val pp_anode : ?indent:int -> Format.formatter -> anode -> unit
(** Render the annotated plan with each operator's execution trait —
    useful for understanding why a placement was (im)possible. *)

val extract :
  ?required_order:(Attr.t * bool) list -> t -> gid -> (anode * float) option
(** Cheapest annotated plan of the group with its phase-1 cost, or
    [None] when the query must be rejected. [required_order] is the
    root's desired sort order (part of the §6.2 optimization goal): a
    final Sort enforcer is added when the best plan does not already
    deliver it. *)
