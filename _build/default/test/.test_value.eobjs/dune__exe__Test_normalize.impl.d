test/test_normalize.ml: Alcotest Array Attr Catalog Exec Expr List Optimizer Option Plan Pred Printf QCheck QCheck_alcotest Relalg Storage Value
