test/test_policy.ml: Alcotest Attr Catalog Expr List Plan Policy Pred QCheck QCheck_alcotest Relalg Storage Summary Tpch Value
