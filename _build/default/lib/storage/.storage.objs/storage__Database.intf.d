lib/storage/database.mli: Relation
