(* Policy evaluator tests, centred on the paper's Table 1 worked example
   and the §3.1/§2 running example (CarCo). *)

open Relalg
module Locset = Catalog.Location.Set

let locset = Alcotest.testable Locset.pp Locset.equal

(* --- Table 1 fixture: relation T(A,...,G) at location l0 --- *)

let t1_catalog () =
  let open Catalog.Table_def in
  let col c = column c Relalg.Value.Tint in
  let t =
    make ~name:"t"
      ~columns:[ col "a"; col "b"; col "c"; col "d"; col "e"; col "f"; col "g" ]
      ~key:[ "a" ] ~row_count:1000 ()
  in
  let network =
    Catalog.Network.uniform ~locations:[ "l0"; "l1"; "l2"; "l3"; "l4" ] ~alpha:100.
      ~beta:1e-5
  in
  Catalog.make ~network
    [ (t, [ { Catalog.db = "db-t"; location = "l0"; fraction = 1.0 } ]) ]

let t1_policies cat =
  Policy.Pcatalog.of_texts cat
    [
      "ship a, b, c from t to l2, l3";
      "ship a, b from t to l1, l2, l3, l4";
      "ship a, d from t to l1, l3 where b > 10";
      "ship f, g as aggregates sum, avg from t to l1, l2 group by e, c";
    ]

let table_cols_of cat name =
  match Catalog.find_table cat name with
  | Some e -> Catalog.Table_def.col_names e.Catalog.def
  | None -> Alcotest.failf "unknown table %s" name

let summarize cat plan =
  Summary.analyze ~table_cols:(table_cols_of cat) plan

let eval ?stats cat pols plan =
  Policy.Evaluator.locations_for ?stats ~catalog:cat ~policies:pols (summarize cat plan)

let attr name = Attr.make ~rel:"t" ~name
let col name = Expr.Col (attr name)

(* q1 = Project_{A,C,D}(Select_{B>15}(T)) *)
let q1 =
  Plan.Project
    ( [ (col "a", attr "a"); (col "c", attr "c"); (col "d", attr "d") ],
      Plan.Select
        ( Pred.Atom (Pred.Cmp (Pred.Gt, col "b", Expr.Const (Value.Int 15))),
          Plan.Scan { table = "t"; alias = "t" } ) )

(* q2 = Gamma_{C; sum(F*(1-G))}(T) *)
let q2 =
  Plan.Aggregate
    {
      keys = [ attr "c" ];
      aggs =
        [
          {
            Expr.fn = Expr.Sum;
            arg =
              Expr.Binop
                ( Expr.Mul,
                  col "f",
                  Expr.Binop (Expr.Sub, Expr.Const (Value.Int 1), col "g") );
            alias = "s";
          };
        ];
      input = Plan.Scan { table = "t"; alias = "t" };
    }

let test_table1_q1 () =
  let cat = t1_catalog () in
  let pols = t1_policies cat in
  (* {l3} from the policies plus the table's home location l0 *)
  Alcotest.check locset "A(q1) = {l0,l3}" (Locset.of_list [ "l0"; "l3" ]) (eval cat pols q1)

let test_table1_q2 () =
  (* The running text of §5 concludes "of query q2 to locations l1 and
     l2" (the {l1,l2,l3} in the preprint's Table 1 footer is a typo:
     L_F = L_G = {l1,l2} so the intersection cannot contain l3). *)
  let cat = t1_catalog () in
  let pols = t1_policies cat in
  Alcotest.check locset "A(q2) = {l0,l1,l2}" (Locset.of_list [ "l0"; "l1"; "l2" ])
    (eval cat pols q2)

let test_table1_intermediate () =
  (* Column-wise locations after each expression, as in Table 1:
     a query projecting only A must be shippable to l1..l4. *)
  let cat = t1_catalog () in
  let pols = t1_policies cat in
  let proj cols =
    Plan.Project (List.map (fun c -> (col c, attr c)) cols, Plan.Scan { table = "t"; alias = "t" })
  in
  Alcotest.check locset "A only" (Locset.of_list [ "l0"; "l1"; "l2"; "l3"; "l4" ])
    (eval cat pols (proj [ "a" ]));
  Alcotest.check locset "C only" (Locset.of_list [ "l0"; "l2"; "l3" ])
    (eval cat pols (proj [ "c" ]));
  (* D is only covered by e3, whose predicate b > 10 is not implied by
     an unfiltered scan: only the home location remains. *)
  Alcotest.check locset "D unfiltered" (Locset.of_list [ "l0" ]) (eval cat pols (proj [ "d" ]));
  let filtered =
    Plan.Project
      ( [ (col "d", attr "d") ],
        Plan.Select
          ( Pred.Atom (Pred.Cmp (Pred.Eq, col "b", Expr.Const (Value.Int 11))),
            Plan.Scan { table = "t"; alias = "t" } ) )
  in
  Alcotest.check locset "D with b=11" (Locset.of_list [ "l0"; "l1"; "l3" ])
    (eval cat pols filtered)

let test_group_subset_check () =
  (* Aggregating F grouped by a non-sanctioned key must fail; grouping
     by a subset of G_e (including the empty set) must pass. *)
  let cat = t1_catalog () in
  let pols = t1_policies cat in
  let agg keys =
    Plan.Aggregate
      {
        keys = List.map attr keys;
        aggs = [ { Expr.fn = Expr.Sum; arg = col "f"; alias = "s" } ];
        input = Plan.Scan { table = "t"; alias = "t" };
      }
  in
  Alcotest.check locset "group by e" (Locset.of_list [ "l0"; "l1"; "l2" ])
    (eval cat pols (agg [ "e" ]));
  Alcotest.check locset "group by nothing" (Locset.of_list [ "l0"; "l1"; "l2" ])
    (eval cat pols (agg []));
  Alcotest.check locset "group by d (not allowed)" (Locset.of_list [ "l0" ])
    (eval cat pols (agg [ "d" ]))

let test_aggregate_fn_check () =
  (* MIN is not in F_e of e4. *)
  let cat = t1_catalog () in
  let pols = t1_policies cat in
  let plan =
    Plan.Aggregate
      {
        keys = [];
        aggs = [ { Expr.fn = Expr.Min; arg = col "f"; alias = "m" } ];
        input = Plan.Scan { table = "t"; alias = "t" };
      }
  in
  Alcotest.check locset "min(f) not sanctioned" (Locset.of_list [ "l0" ]) (eval cat pols plan)

let test_raw_column_of_agg_expr () =
  (* Example 2 of the paper: a plain projection of an
     aggregates-only column can be shipped nowhere. *)
  let cat = t1_catalog () in
  let pols = t1_policies cat in
  let plan =
    Plan.Project ([ (col "f", attr "f") ], Plan.Scan { table = "t"; alias = "t" })
  in
  Alcotest.check locset "raw f stays home" (Locset.of_list [ "l0" ]) (eval cat pols plan)

let test_eta_counter () =
  let cat = t1_catalog () in
  let pols = t1_policies cat in
  let stats = Policy.Evaluator.fresh_stats () in
  let _ = eval ~stats cat pols q1 in
  (* e1, e2, e3 share ship attributes with q1 and their implications
     hold (e3's b>10 is implied by b>15); e4 shares no ship attribute
     with q1's outputs. *)
  Alcotest.(check int) "eta for q1" 3 stats.Policy.Evaluator.eta

(* --- CarCo running example (§2) --- *)

let carco_catalog () =
  let open Catalog.Table_def in
  let coli c = column c Relalg.Value.Tint in
  let cols c = column c Relalg.Value.Tstr in
  let customer =
    make ~name:"customer"
      ~columns:[ coli "custkey"; cols "name"; coli "acctbal"; cols "mktseg"; cols "region" ]
      ~key:[ "custkey" ] ~row_count:10_000 ()
  in
  let orders =
    make ~name:"orders"
      ~columns:[ coli "custkey"; coli "ordkey"; coli "totprice" ]
      ~key:[ "ordkey" ] ~row_count:100_000 ()
  in
  let supply =
    make ~name:"supply"
      ~columns:[ coli "ordkey"; coli "quantity"; coli "extprice" ]
      ~key:[ "ordkey"; "extprice" ] ~row_count:400_000 ()
  in
  let network = Catalog.Network.uniform ~locations:[ "n"; "e"; "a" ] ~alpha:100. ~beta:1e-5 in
  Catalog.make ~network
    [
      (customer, [ { Catalog.db = "dn"; location = "n"; fraction = 1.0 } ]);
      (orders, [ { Catalog.db = "de"; location = "e"; fraction = 1.0 } ]);
      (supply, [ { Catalog.db = "da"; location = "a"; fraction = 1.0 } ]);
    ]

let carco_policies cat =
  Policy.Pcatalog.of_texts cat
    [
      (* P_N: customer data leaves North America only without acctbal *)
      "ship custkey, name, mktseg, region from customer to e, a";
      (* P_E: orders may go to Asia only aggregated; ordkey/custkey may
         go anywhere, totprice must not reach North America raw *)
      "ship custkey, ordkey from orders to n, a, e";
      "ship totprice from orders to e";
      "ship totprice as aggregates sum from orders to e, a group by custkey, ordkey";
      (* P_A: supply ships to Europe only aggregated *)
      "ship quantity, extprice as aggregates sum from supply to e group by ordkey";
    ]

let test_carco_masked_customer () =
  let cat = carco_catalog () in
  let pols = carco_policies cat in
  let c name = Expr.Col (Attr.make ~rel:"c" ~name) in
  let masked =
    Plan.Project
      ( [ (c "custkey", Attr.make ~rel:"c" ~name:"custkey");
          (c "name", Attr.make ~rel:"c" ~name:"name") ],
        Plan.Scan { table = "customer"; alias = "c" } )
  in
  Alcotest.check locset "Pi_{c,n}(C) -> {n,a,e}" (Locset.of_list [ "n"; "a"; "e" ])
    (Policy.Evaluator.locations_for ~catalog:cat ~policies:pols
       (Summary.analyze ~table_cols:(table_cols_of cat) masked));
  let raw = Plan.Scan { table = "customer"; alias = "c" } in
  Alcotest.check locset "raw C stays home" (Locset.of_list [ "n" ])
    (Policy.Evaluator.locations_for ~catalog:cat ~policies:pols
       (Summary.analyze ~table_cols:(table_cols_of cat) raw))

let test_carco_supply_aggregate () =
  let cat = carco_catalog () in
  let pols = carco_policies cat in
  let s name = Expr.Col (Attr.make ~rel:"s" ~name) in
  let agg =
    Plan.Aggregate
      {
        keys = [ Attr.make ~rel:"s" ~name:"ordkey" ];
        aggs = [ { Expr.fn = Expr.Sum; arg = s "quantity"; alias = "sum_q" } ];
        input = Plan.Scan { table = "supply"; alias = "s" };
      }
  in
  Alcotest.check locset "Gamma(o, sum(q))(S) -> {e,a}" (Locset.of_list [ "e"; "a" ])
    (Policy.Evaluator.locations_for ~catalog:cat ~policies:pols
       (Summary.analyze ~table_cols:(table_cols_of cat) agg))

let test_evaluator_no_policies () =
  let cat = t1_catalog () in
  let pols = Policy.Pcatalog.empty in
  Alcotest.check locset "no policies -> home only" (Locset.of_list [ "l0" ])
    (eval cat pols q1)

(* --- expression binding --- *)

let test_expression_binding () =
  let cat = Tpch.Schema.catalog () in
  let e = Policy.Expression.parse cat "ship * from db-5.nation to *" in
  Alcotest.(check int) "star expands" 4 (List.length e.Policy.Expression.ship_cols);
  Alcotest.(check int) "all locations" 5
    (Catalog.Location.Set.cardinal e.Policy.Expression.to_locs);
  (* alias-qualified predicate columns are normalized to the table *)
  let e2 =
    Policy.Expression.parse cat
      "ship partkey, size from db-3.part p to L1 where p.size > 40"
  in
  Alcotest.(check bool) "pred over base table" true
    (Attr.Set.mem
       (Attr.make ~rel:"part" ~name:"size")
       (Pred.cols e2.Policy.Expression.pred))

let test_expression_binding_errors () =
  let cat = Tpch.Schema.catalog () in
  let expect_fail text =
    match Policy.Expression.parse cat text with
    | exception Policy.Expression.Bind_error _ -> ()
    | _ -> Alcotest.failf "expected bind error for %S" text
  in
  expect_fail "ship foo from db-5.nation to *";
  expect_fail "ship name from db-5.nosuch to *";
  expect_fail "ship name from db-9.nation to *";
  expect_fail "ship name from db-5.nation to Mars";
  expect_fail "ship name from db-5.nation to * where other.name = 'x'";
  expect_fail "ship name as aggregates sum from db-5.nation to * group by nosuchcol"

let test_partitioned_home_excluded () =
  (* for partitioned tables the evaluator must not grant blanket "home"
     locations: data at one partition is not at the others *)
  let cat =
    Tpch.Schema.catalog ~partition_tables:[ "customer" ] ~partition_count:3 ()
  in
  let pols = Policy.Pcatalog.empty in
  let plan = Plan.Scan { table = "customer"; alias = "c" } in
  let s =
    Summary.analyze ~table_cols:(Catalog.table_cols cat) plan
  in
  Alcotest.check locset "no home for partitioned table" Locset.empty
    (Policy.Evaluator.locations_for ~catalog:cat ~policies:pols s)

(* property: adding policy expressions never shrinks the evaluator's
   location set (grants are monotone) *)
let prop_evaluator_monotone =
  QCheck.Test.make ~name:"A is monotone in the policy set" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Storage.Prng.create ~seed in
      let cat = t1_catalog () in
      let base_texts =
        Storage.Prng.pick_k g
          (1 + Storage.Prng.int g 3)
          [
            "ship a, b, c from t to l2, l3";
            "ship a, b from t to l1, l2, l3, l4";
            "ship a, d from t to l1, l3 where b > 10";
            "ship f, g as aggregates sum, avg from t to l1, l2 group by e, c";
            "ship c, d from t to l4";
            "ship e from t to l1 where a < 100";
          ]
      in
      let extra = "ship a, b, c, d, e, f, g from t to l4" in
      let small = Policy.Pcatalog.of_texts cat base_texts in
      let large = Policy.Pcatalog.of_texts cat (base_texts @ [ extra ]) in
      let query =
        let cols = Storage.Prng.pick_k g (1 + Storage.Prng.int g 3) [ "a"; "b"; "c"; "d" ] in
        Plan.Project
          (List.map (fun c -> (col c, attr c)) cols, Plan.Scan { table = "t"; alias = "t" })
      in
      Locset.subset (eval cat small query) (eval cat large query))

(* property: interning policy expressions is semantically invisible —
   equal/compare are preserved and equal expressions share one node *)
let prop_expression_interning =
  QCheck.Test.make ~name:"Expression.intern preserves equal/compare" ~count:200
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Storage.Prng.create ~seed in
      let cat = t1_catalog () in
      let texts =
        Storage.Prng.pick_k g
          (1 + Storage.Prng.int g 4)
          [
            "ship a, b, c from t to l2, l3";
            "ship a, b from t to l1, l2, l3, l4";
            "ship a, d from t to l1, l3 where b > 10";
            "ship f, g as aggregates sum, avg from t to l1, l2 group by e, c";
            "ship c, d from t to l4";
            "ship e from t to l1 where a < 100";
          ]
      in
      List.for_all
        (fun text ->
          let e = Policy.Expression.parse cat text in
          let e' = Policy.Expression.intern e in
          Policy.Expression.equal e e'
          && Policy.Expression.compare e e' = 0
          && Policy.Expression.hash e' = Policy.Expression.hash e
          (* re-parsing yields a structurally equal but physically
             distinct value; interning must unify them *)
          && Policy.Expression.intern (Policy.Expression.parse cat text) == e')
        texts)

(* property: the compliance-verdict cache is transparent — cached and
   uncached evaluation agree on the location set and the η counter *)
let prop_evaluator_cache_transparent =
  QCheck.Test.make ~name:"cached locations_for = uncached" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Storage.Prng.create ~seed in
      let cat = t1_catalog () in
      let pols =
        Policy.Pcatalog.of_texts cat
          (Storage.Prng.pick_k g
             (1 + Storage.Prng.int g 4)
             [
               "ship a, b, c from t to l2, l3";
               "ship a, b from t to l1, l2, l3, l4";
               "ship a, d from t to l1, l3 where b > 10";
               "ship f, g as aggregates sum, avg from t to l1, l2 group by e, c";
               "ship c, d from t to l4";
             ])
      in
      let query =
        let cols = Storage.Prng.pick_k g (1 + Storage.Prng.int g 4) [ "a"; "b"; "c"; "d"; "e" ] in
        Plan.Project
          (List.map (fun c -> (col c, attr c)) cols, Plan.Scan { table = "t"; alias = "t" })
      in
      let s = summarize cat query in
      Policy.Evaluator.set_cache_enabled true;
      let stats_miss = Policy.Evaluator.fresh_stats () in
      let cached =
        Policy.Evaluator.locations_for ~stats:stats_miss ~catalog:cat ~policies:pols s
      in
      (* second call: guaranteed cache hit, must replay the same stats *)
      let stats_hit = Policy.Evaluator.fresh_stats () in
      let hit =
        Policy.Evaluator.locations_for ~stats:stats_hit ~catalog:cat ~policies:pols s
      in
      let stats_raw = Policy.Evaluator.fresh_stats () in
      let uncached =
        Policy.Evaluator.locations_for_uncached ~stats:stats_raw ~catalog:cat
          ~policies:pols s
      in
      Locset.equal cached uncached && Locset.equal hit uncached
      && stats_miss.Policy.Evaluator.eta = stats_raw.Policy.Evaluator.eta
      && stats_hit.Policy.Evaluator.eta = stats_raw.Policy.Evaluator.eta)

let () =
  Alcotest.run "policy"
    [
      ( "table1",
        [
          Alcotest.test_case "q1 locations" `Quick test_table1_q1;
          Alcotest.test_case "q2 locations" `Quick test_table1_q2;
          Alcotest.test_case "columnwise" `Quick test_table1_intermediate;
          Alcotest.test_case "group subset" `Quick test_group_subset_check;
          Alcotest.test_case "aggregate fn" `Quick test_aggregate_fn_check;
          Alcotest.test_case "raw agg-only column" `Quick test_raw_column_of_agg_expr;
          Alcotest.test_case "eta counter" `Quick test_eta_counter;
        ] );
      ( "carco",
        [
          Alcotest.test_case "masked customer" `Quick test_carco_masked_customer;
          Alcotest.test_case "supply aggregate" `Quick test_carco_supply_aggregate;
          Alcotest.test_case "conservative default" `Quick test_evaluator_no_policies;
          QCheck_alcotest.to_alcotest prop_evaluator_monotone;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "binding" `Quick test_expression_binding;
          Alcotest.test_case "binding errors" `Quick test_expression_binding_errors;
          Alcotest.test_case "partitioned home" `Quick test_partitioned_home_excluded;
          QCheck_alcotest.to_alcotest prop_expression_interning;
          QCheck_alcotest.to_alcotest prop_evaluator_cache_transparent;
        ] );
    ]
