(** Execution scaffolding shared by the engines.

    The reference interpreter ({!Interp}), the compiling executor
    ({!Compile}) and the vectorized executor ({!Vector}) all route
    SHIPs, retries, per-operator profiles, scalar/predicate compilation
    and metrics/trace emission through this module, which is what makes
    their stats, profiles and observability output byte-identical (see
    [docs/EXECUTOR.md]).

    {2 Child-iteration contract}

    Per-attempt SHIP drop fates are keyed by the ship's index in
    [stats.ships] (see {!do_ship}), and the row view handed to each
    operator ({!Storage.Relation.rows} or the equivalent column order)
    iterates rows in relation order — so both the {e order in which
    children execute} and the {e order in which rows are visited} are
    part of engine equivalence, not an implementation detail. Every
    engine MUST:

    - execute the {b right child first} for binary operators
      (joins) — the historical order was OCaml's right-to-left tuple
      evaluation, and all engines now make it explicit;
    - execute [Union_all] children {b left-to-right};
    - visit input rows in relation order (index [0] upward), emitting
      join matches for each probe row in the build table's
      reverse-insertion order (what [Row_tbl.find_all] yields);
    - key batch-local work off absolute row indices, so batching (the
      vectorized engine's 1024-row chunks) never reorders emission.

    [test/test_exec.ml]'s "ship order contract" unit test asserts the
    child-order half of this against all engines; the differential
    property locks the rest. *)

open Relalg

type ship_record = {
  from_loc : Catalog.Location.t;
  to_loc : Catalog.Location.t;
  bytes : int;  (** serialized size of the shipped relation *)
  rows : int;
  cost_ms : float;
      (** simulated transfer time under the message cost model,
          including failed attempts and backoff waits *)
  attempts : int;  (** 1 = first try succeeded; [n > 1] means [n-1] retries *)
}
(** One executed SHIP: an intermediate result crossing sites. *)

type stats = {
  mutable ships : ship_record list;
  mutable rows_processed : int;  (** total rows materialized, all operators *)
  mutable ship_retries : int;  (** total retried attempts across all ships *)
}

val fresh_stats : unit -> stats

type retry_policy = {
  max_attempts : int;  (** total tries per SHIP (>= 1) *)
  base_backoff_ms : float;
      (** backoff before retry [k] is [base * 2^(k-1)], capped below *)
  max_backoff_ms : float;
  attempt_timeout_ms : float;
      (** an attempt whose simulated transfer time exceeds this is
          abandoned (charged the timeout) and retried *)
  budget_ms : float;
      (** simulated-clock budget per SHIP, backoffs included; exceeding
          it raises {!Ship_failed} with [`Budget_exhausted] *)
}

val default_retry : retry_policy
(** 4 attempts, 50 ms base backoff capped at 1600 ms, no per-attempt
    timeout, unlimited budget. *)

type ship_failure =
  [ `Link_down  (** the schedule marks the link permanently down *)
  | `Site_down of Catalog.Location.t  (** one endpoint site is down *)
  | `Attempts_exhausted  (** every allowed attempt dropped or timed out *)
  | `Budget_exhausted  (** the SHIP's simulated-clock budget ran out *) ]

exception
  Ship_failed of {
    from_loc : Catalog.Location.t;
    to_loc : Catalog.Location.t;
    attempts : int;
    reason : ship_failure;
  }
(** A SHIP could not complete under the fault schedule. The degradation
    path masks the link (or site) and re-plans; plain callers see the
    exception. *)

val ship_failure_to_string : ship_failure -> string

exception
  Replica_stale of {
    table : string;
    partition : int;
    site : Catalog.Location.t;
  }
(** The copy of [table]/[partition] the plan reads at [site] is stale —
    the fault schedule carries a [replica-lag] for it. The degradation
    path masks the replica and re-plans onto a fresh sibling (or, when
    none is compliant, aborts [`Unsatisfiable]); plain callers see the
    exception. *)

val check_replica :
  faults:Catalog.Network.Fault.schedule ->
  table:string ->
  partition:int ->
  site:Catalog.Location.t ->
  unit
(** Freshness gate every engine runs before reading a scan's rows;
    raises {!Replica_stale} when {!Catalog.Network.Fault.replica_stale}
    holds for [(table, site)]. Deliberately catalog-oblivious, so
    sessions without replica sets degrade identically. *)

(** Per-operator execution profile. [path] is the node's position in
    the plan tree as the list of child indices from the root (the root
    itself is [[]]), which is how [Optimizer.Explain] matches actuals
    back to plan nodes for EXPLAIN ANALYZE. *)
type node_profile = {
  path : int list;
  label : string;  (** {!Pplan.node_label} of the operator *)
  actual_rows : int;
  actual_bytes : int;  (** materialized output size *)
  ship : ship_record option;  (** set iff the operator is a SHIP *)
}

type result = {
  relation : Storage.Relation.t;
  stats : stats;
  profile : node_profile list;  (** execution (post-) order *)
  makespan_ms : float;
      (** simulated response time: sibling subtrees proceed in parallel,
          transfers follow the message cost model, local processing is
          charged per materialized row *)
}

val row_cost_ms : float
(** Simulated local processing cost per materialized row (ms). *)

val total_ship_cost : stats -> float
(** Sum of {!ship_record.cost_ms} over all ships (the total-cost
    objective's measured counterpart; compare [result.makespan_ms]). *)

val total_ship_bytes : stats -> int
(** Sum of {!ship_record.bytes} over all ships — payload bytes, each
    counted once regardless of retries. *)

val total_traffic_bytes : stats -> int
(** Bytes the network actually carried: each ship's payload times its
    attempt count. Equals {!total_ship_bytes} on a retry-free run. *)

exception Runtime_error of string
(** Malformed plans (wrong arity, missing relations). *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

val rows_bytes : Value.t array array -> int
(** Serialized size of a row set — what a SHIP of those rows moves.
    Agrees with [Storage.Relation.byte_size] on the same rows. *)

(** {2 Memory budget}

    A per-execution byte account over serialized sizes (the same
    [Value.byte_width] sums the SHIP ledger uses, so the numbers are
    engine-independent): every operator charges its materialized output
    and releases its children's after consuming them; hash join and
    aggregation additionally charge their scratch state (build side /
    input) for the kernel's duration, and switch to the Grace spill
    path ({!Spill}) when that charge would trip the budget. The spill
    decision is a pure function of (budget, deterministic byte counts)
    and the spill path re-emits in kernel order, so budget ∞ and
    budget ε produce byte-identical reports — locked by the qcheck
    differential in [test/test_exec.ml]. *)

type mem = {
  budget : int;  (** {!unlimited_budget} = no accounting at all *)
  mutable tracked : int;  (** currently charged bytes *)
  mutable peak : int;
  mutable spill_ops : int;  (** operators that took the spill path *)
  mutable spill_parts : int;  (** Grace partitions across those *)
  mutable spill_run_bytes : int;  (** bytes written to run files *)
}

val unlimited_budget : int
(** [max_int]: disables accounting (budget-free runs pay nothing). *)

val mem_create : budget:int -> mem
val mem_charge : mem -> int -> unit
val mem_release : mem -> int -> unit

val should_spill : mem -> int -> bool
(** Would charging this many more bytes exceed the budget? Always
    [false] under {!unlimited_budget}. *)

val spill_partitions_for : mem -> bytes:int -> int
(** Grace fan-out for spilling [bytes] of state: enough partitions
    that one plausibly fits in a quarter of the budget, in [2, 64]. *)

val parse_budget : string -> int option
(** ["64m"]-style byte counts: plain bytes or a [k]/[m]/[g] suffix
    (powers of 1024); ["unlimited"]/[""] mean no budget. [None] =
    unparseable. *)

val budget_from_env : unit -> int
(** [CGQP_MEM_BUDGET] via {!parse_budget}; {!unlimited_budget} when
    unset. Raises [Invalid_argument] on an unparseable value. *)

val mem_finish : mem -> unit
(** Fold a finished execution's account into the process-wide stats
    (peak gauge + spill counters). Engines call this on every exit
    path. *)

val peak_tracked_bytes : unit -> int
(** Process-wide high-water mark of tracked bytes (across executions
    since the last {!reset_mem_stats}). *)

val spilled_operators : unit -> int
val spill_partitions : unit -> int
val spill_run_bytes : unit -> int

val segment_page_reads : unit -> int
(** Re-export of {!Storage.Segment.page_reads} for [--stats]. *)

val reset_mem_stats : unit -> unit
(** Zero the peak gauge (the spill counters live in {!Obs.Metrics} and
    reset with [Obs.Metrics.reset]). *)

(** {2 Aggregate accumulation} *)

type acc = {
  mutable sum : Value.t;
  mutable count : int;
  mutable vmin : Value.t;
  mutable vmax : Value.t;
}

val fresh_acc : unit -> acc

val feed : acc -> Value.t -> unit
(** Fold one value into the accumulator; [Null] is skipped. *)

val finish : Expr.agg_fn -> acc -> Value.t

(** {2 Scalar / predicate compilation}

    Shared by the compiling and vectorized engines: attributes resolve
    to integer column indices once per operator, Pred/Expr ASTs become
    closures, constant subterms fold, and null checks specialize away
    where an operand is a known non-null constant. One copy of this
    logic keeps engine semantics identical by construction. *)

val binop_fn : Expr.binop -> Value.t -> Value.t -> Value.t

val fold_scalar : Expr.scalar -> Expr.scalar
(** Fold constant subterms bottom-up using the same [Value] arithmetic
    evaluation would use, so folding cannot change results. *)

val compile_scalar :
  Storage.Relation.resolver -> Expr.scalar -> Value.t array -> Value.t
(** Compile a scalar to an index-addressed closure over a row;
    unresolvable attributes read as NULL. *)

val cmp_fn : Pred.cmp -> int -> bool
(** The comparison's test on a [Value.compare] result. *)

val has_wildcard : string -> bool
(** A LIKE pattern without [%]/[_] is plain string equality. *)

val fold_pred : Pred.t -> Pred.t
(** Fold column-free subtrees to [True]/[False] and simplify through
    the boolean connectives. *)

val compile_atom : Storage.Relation.resolver -> Pred.atom -> Value.t array -> bool
val compile_pred : Storage.Relation.resolver -> Pred.t -> Value.t array -> bool

val key_ixs : Storage.Relation.resolver -> Attr.t list -> int array
(** Column positions of join/group keys; [-1] marks an unresolvable
    attribute, which reads as NULL for every row. *)

val key_val : Value.t array -> int -> Value.t
(** Read a key column from a row; out-of-range (incl. [-1]) is NULL. *)

val fill_key : int array -> Value.t array -> Value.t array -> bool
(** Fill the buffer with the row's key; [false] if any component is
    NULL (such rows never join). *)

(** {2 Row utilities} *)

module Row_key : sig
  type t = Value.t array

  val equal : t -> t -> bool
  val hash : t -> int
end

module Row_tbl : Hashtbl.S with type key = Value.t array

(** {2 Shared SHIP path and node bookkeeping} *)

val do_ship :
  faults:Catalog.Network.Fault.schedule ->
  retry:retry_policy ->
  network:Catalog.Network.t ->
  stats:stats ->
  from_loc:Catalog.Location.t ->
  to_loc:Catalog.Location.t ->
  bytes:int ->
  rows:int ->
  ship_record
(** Execute one SHIP: permanent-topology checks, the retry loop on the
    simulated clock, then stats, metrics and trace emission. The drop
    fate of each attempt is keyed by the ship's index in [stats.ships],
    so engines must execute ships in the same order to see the same
    fates. Raises {!Ship_failed} on permanent failures. *)

val record_node :
  stats:stats ->
  profile:node_profile list ref ->
  rpath:int list ->
  label:string ->
  loc:Catalog.Location.t ->
  ship:ship_record option ->
  card:int ->
  bytes:int ->
  unit
(** Post-order per-node bookkeeping, identical across engines:
    [rows_processed], the rows counter, the profile entry (pushed in
    execution order; [rpath] is the reversed root-to-node path) and the
    per-operator trace event. *)
