lib/sqlfront/parser.ml: Ast Attr Expr Fmt Lexer List Option Pred Relalg String Value
