lib/storage/relation.mli: Attr Format Relalg Value
