lib/policy/pcatalog.mli: Catalog Expression Format
