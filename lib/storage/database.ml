(* Physical storage: maps (table, partition index) to a materialized
   relation. Partition 0 is the sole partition of unpartitioned
   tables. *)

module Key = struct
  type t = string * int

  let compare = Stdlib.compare
end

module Key_map = Map.Make (Key)

type t = { mutable store : Relation.t Key_map.t }

let create () = { store = Key_map.empty }

let add t ~table ?(partition = 0) rel =
  (* Stored base tables are the vectorized engine's scan inputs:
     columnarize once at load time so no query pays the conversion.
     (No-op for paged relations, which page in per access.) *)
  Relation.columnarize rel;
  t.store <- Key_map.add (String.lowercase_ascii table, partition) rel t.store

let find t ~table ?(partition = 0) () =
  Key_map.find_opt (String.lowercase_ascii table, partition) t.store

let find_exn t ~table ?(partition = 0) () =
  match find t ~table ~partition () with
  | Some r -> r
  | None ->
    invalid_arg (Printf.sprintf "Database: no relation for %s[%d]" table partition)

let tables t =
  Key_map.bindings t.store |> List.map fst

let total_rows t =
  Key_map.fold (fun _ r acc -> acc + Relation.cardinality r) t.store 0

(* Persist every stored relation as column segments under
   [dir/<table>_<partition>/] and return a database of paged relations
   over them — the out-of-core twin of [t]. *)
let paged t ~dir =
  let out = create () in
  Key_map.iter
    (fun (table, partition) rel ->
      let d = Filename.concat dir (Printf.sprintf "%s_%d" table partition) in
      Segment.write ~dir:d rel;
      add out ~table ~partition (Segment.relation (Segment.openh ~dir:d)))
    t.store;
  out
