(* A bound (name-resolved) policy expression, cf. §4 of the paper.
   [ship_cols] is the concrete column list ("*" is expanded at bind
   time); [to_locs] likewise. The predicate is expressed over base
   columns [Attr {rel = table; name = column}]. *)

open Relalg

type t = {
  table : string;  (* global table name *)
  ship_cols : string list;  (* A_e *)
  agg_fns : Expr.agg_fn list;  (* F_e; empty for basic expressions *)
  to_locs : Catalog.Location.Set.t;  (* L_e *)
  pred : Pred.t;  (* P_e, over base columns *)
  group_by : string list;  (* G_e *)
  text : string;  (* original statement, for display *)
}

let is_basic e = e.agg_fns = []
let is_aggregate e = e.agg_fns <> []

exception Bind_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Bind_error m)) fmt

(* Resolve a parsed policy statement against the catalog. Location names
   are matched case-insensitively against the catalog's site list. *)
let of_ast (cat : Catalog.t) (stmt : Sqlfront.Ast.policy_stmt) ~text : t =
  let table = stmt.p_table in
  let def =
    match Catalog.find_table cat table with
    | Some e -> e.Catalog.def
    | None -> fail "policy references unknown table %s" table
  in
  (* When a database qualifier is given, check it matches a placement. *)
  (match stmt.p_db with
  | None -> ()
  | Some db ->
    let ok =
      List.exists
        (fun (p : Catalog.placement) -> String.equal (String.lowercase_ascii p.db) db)
        (Catalog.placements cat table)
    in
    if not ok then fail "table %s is not stored in database %s" table db);
  let all_cols = Catalog.Table_def.col_names def in
  let ship_cols =
    match stmt.ship_attrs with
    | Sqlfront.Ast.All_attrs -> all_cols
    | Sqlfront.Ast.Attr_list cs ->
      List.iter
        (fun c -> if not (List.mem c all_cols) then fail "unknown column %s.%s" table c)
        cs;
      cs
  in
  let locations = Catalog.locations cat in
  let canon_loc l =
    let l' = String.lowercase_ascii l in
    match
      List.find_opt (fun k -> String.equal (String.lowercase_ascii k) l') locations
    with
    | Some k -> k
    | None -> fail "unknown location %s" l
  in
  let to_locs =
    match stmt.to_locs with
    | Sqlfront.Ast.All_locs -> Catalog.Location.Set.of_list locations
    | Sqlfront.Ast.Loc_list ls -> Catalog.Location.Set.of_list (List.map canon_loc ls)
  in
  let group_by =
    List.map
      (fun c ->
        if not (List.mem c all_cols) then fail "unknown group-by column %s.%s" table c;
        c)
      stmt.p_group_by
  in
  (* Normalize predicate columns: the statement may qualify them with the
     alias or table name, or leave them bare. *)
  let alias = Option.value stmt.p_alias ~default:table in
  let pred =
    Pred.map_cols
      (fun a ->
        let rel_ok =
          a.Attr.rel = "" || String.equal a.Attr.rel alias || String.equal a.Attr.rel table
        in
        if not rel_ok then fail "predicate references foreign relation %s" a.Attr.rel;
        if not (List.mem a.Attr.name all_cols) then
          fail "predicate references unknown column %s" a.Attr.name;
        Attr.make ~rel:table ~name:a.Attr.name)
      stmt.p_where
  in
  { table; ship_cols; agg_fns = stmt.aggregates; to_locs; pred; group_by; text }

let parse (cat : Catalog.t) (text : string) : t =
  let stmt =
    try Sqlfront.Parser.policy text
    with Sqlfront.Parser.Error m -> fail "%s (in policy %S)" m text
  in
  of_ast cat stmt ~text

(* -- Structural order and hash-consing ---------------------------- *)

let compare (a : t) (b : t) =
  if a == b then 0
  else
    let c = String.compare a.table b.table in
    if c <> 0 then c
    else
      let c = List.compare String.compare a.ship_cols b.ship_cols in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.agg_fns b.agg_fns in
        if c <> 0 then c
        else
          let c = Catalog.Location.Set.compare a.to_locs b.to_locs in
          if c <> 0 then c
          else
            let c = Pred.compare_pred a.pred b.pred in
            if c <> 0 then c
            else
              let c = List.compare String.compare a.group_by b.group_by in
              if c <> 0 then c else String.compare a.text b.text

let equal a b = a == b || compare a b = 0

let hash (e : t) =
  let h = Hashtbl.hash (e.table, e.ship_cols, e.agg_fns, e.group_by, e.text) in
  let h = (h * 0x01000193) lxor Pred.hash e.pred in
  (h * 0x01000193) lxor Hashtbl.hash (Catalog.Location.Set.elements e.to_locs)

module Hc = Intern.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* Canonicalize the predicate first so that equal policy predicates
   across different expressions (and query summaries) share one node —
   this is what warms the implication-verdict cache across queries. *)
let intern e =
  let p = Pred.hashcons e.pred in
  let e = if p == e.pred then e else { e with pred = p } in
  (Hc.intern e).Hc.node

let intern_stats () = (Hc.hits (), Hc.misses (), Hc.size ())

let pp ppf e = Fmt.string ppf e.text
