(* Minimal CSV reading/writing for bringing external data into the
   engine. Quoting follows RFC 4180: fields may be wrapped in double
   quotes, embedded quotes are doubled; separators are commas, records
   newlines. Values are parsed according to declared column types; empty
   fields read as NULL. *)

open Relalg

exception Error of string

let fail fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

(* Split one CSV document into records of fields. *)
let parse_fields (s : string) : string list list =
  let records = ref [] and fields = ref [] and buf = Buffer.create 32 in
  let n = String.length s in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec go i in_quotes =
    if i >= n then begin
      if Buffer.length buf > 0 || !fields <> [] then flush_record ();
      List.rev !records
    end
    else
      let c = s.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && s.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else
        match c with
        | '"' -> go (i + 1) true
        | ',' ->
          flush_field ();
          go (i + 1) false
        | '\r' -> go (i + 1) false
        | '\n' ->
          flush_record ();
          go (i + 1) false
        | c ->
          Buffer.add_char buf c;
          go (i + 1) false
  in
  go 0 false

let value_of_string (ty : Value.ty) (s : string) : Value.t =
  let s = String.trim s in
  if s = "" then Value.Null
  else
    match ty with
    | Value.Tint -> (
      match int_of_string_opt s with
      | Some i -> Value.Int i
      | None -> fail "not an integer: %S" s)
    | Value.Tfloat -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> fail "not a float: %S" s)
    | Value.Tstr -> Value.Str s
    | Value.Tdate -> (
      match Value.date_of_string s with
      | Some d -> Value.Date d
      | None -> fail "not an ISO date: %S" s)
    | Value.Tbool -> (
      match String.lowercase_ascii s with
      | "true" | "t" | "1" -> Value.Bool true
      | "false" | "f" | "0" -> Value.Bool false
      | _ -> fail "not a boolean: %S" s)

(* [parse ~schema ~types ?header text]: rows typed per column. With
   [header] (default true) the first record is skipped. *)
let parse ~(schema : Attr.t list) ~(types : Value.ty list) ?(header = true)
    (text : string) : Relation.t =
  let arity = List.length schema in
  if List.length types <> arity then fail "schema/types arity mismatch";
  let records = parse_fields text in
  let records = if header then match records with _ :: r -> r | [] -> [] else records in
  let rows =
    List.mapi
      (fun lineno fields ->
        if List.length fields <> arity then
          fail "record %d has %d fields, expected %d" (lineno + 1)
            (List.length fields) arity
        else Array.of_list (List.map2 value_of_string types fields))
      records
  in
  let rows = Array.of_list rows in
  (* Build typed columns directly from the declared types — loaded data
     lands column-major without a sniffing pass. *)
  let card = Array.length rows in
  let cols =
    Array.of_list
      (List.mapi
         (fun j ty ->
           Column.of_values_typed ty (Array.init card (fun i -> rows.(i).(j))))
         types)
  in
  Relation.of_cols ~schema ~card cols

let load_file ~schema ~types ?header path : Relation.t =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse ~schema ~types ?header text
