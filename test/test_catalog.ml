let test_network_ship_cost () =
  let n =
    Catalog.Network.make ~locations:[ "a"; "b" ] ~links:[ ("a", "b", 100., 0.001) ] ()
  in
  Alcotest.(check (float 1e-9)) "local is free" 0.
    (Catalog.Network.ship_cost n ~from_loc:"a" ~to_loc:"a" ~bytes:1e9);
  Alcotest.(check (float 1e-6)) "alpha + beta*b" 1100.
    (Catalog.Network.ship_cost n ~from_loc:"a" ~to_loc:"b" ~bytes:1e6);
  (* symmetric by default *)
  Alcotest.(check (float 1e-6)) "symmetric" 1100.
    (Catalog.Network.ship_cost n ~from_loc:"b" ~to_loc:"a" ~bytes:1e6)

let test_network_uniform () =
  let n = Catalog.Network.uniform ~locations:[ "x"; "y"; "z" ] ~alpha:10. ~beta:0.5 in
  Alcotest.(check int) "three locations" 3 (List.length (Catalog.Network.locations n));
  Alcotest.(check (float 1e-9)) "pairwise" 15.
    (Catalog.Network.ship_cost n ~from_loc:"x" ~to_loc:"z" ~bytes:10.)

let test_network_unknown_link () =
  (* Satellite of the chaos PR: a missing link is a hard error unless
     the caller opted into a default, so a silently-mispriced SHIP can
     never hide a topology mistake (or a chaos mask). *)
  let n =
    Catalog.Network.make ~locations:[ "a"; "b"; "c" ]
      ~links:[ ("a", "b", 100., 0.001) ] ()
  in
  Alcotest.check_raises "miss raises" (Catalog.Network.Unknown_link ("a", "c"))
    (fun () -> ignore (Catalog.Network.ship_cost n ~from_loc:"a" ~to_loc:"c" ~bytes:1.));
  let n' =
    Catalog.Network.make ~default:(150., 0.002) ~locations:[ "a"; "b"; "c" ]
      ~links:[ ("a", "b", 100., 0.001) ] ()
  in
  Alcotest.(check (float 1e-6)) "explicit default fills the miss"
    (150. +. (0.002 *. 1e3))
    (Catalog.Network.ship_cost n' ~from_loc:"a" ~to_loc:"c" ~bytes:1e3);
  Alcotest.(check (float 1e-6)) "listed links unaffected by the default"
    (100. +. (0.001 *. 1e3))
    (Catalog.Network.ship_cost n' ~from_loc:"b" ~to_loc:"a" ~bytes:1e3)

let test_paper_network () =
  let n = Catalog.Network.paper_default () in
  Alcotest.(check int) "five regions" 5 (List.length (Catalog.Network.locations n));
  (* every inter-region link has a positive cost *)
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i <> j then
            Alcotest.(check bool) "positive cost" true
              (Catalog.Network.ship_cost n ~from_loc:i ~to_loc:j ~bytes:1. > 0.))
        (Catalog.Network.locations n))
    (Catalog.Network.locations n)

let test_table_def () =
  let open Catalog.Table_def in
  let t =
    make ~name:"Orders"
      ~columns:
        [ column "OrderKey" Relalg.Value.Tint; column "custkey" Relalg.Value.Tint ]
      ~key:[ "ORDERKEY" ] ~row_count:100 ()
  in
  Alcotest.(check string) "lowercased" "orders" t.name;
  Alcotest.(check bool) "has col" true (has_col t "orderkey");
  Alcotest.(check bool) "key check" true (is_key t [ "orderkey"; "custkey" ]);
  Alcotest.(check bool) "not key" false (is_key t [ "custkey" ]);
  Alcotest.(check int) "row width" 16 (row_width t)

let test_catalog_lookup () =
  let cat = Tpch.Schema.catalog () in
  Alcotest.(check int) "five locations" 5 (List.length (Catalog.locations cat));
  Alcotest.(check int) "eight tables" 8 (List.length (Catalog.all_tables cat));
  Alcotest.(check string) "lineitem home" "L4" (Catalog.home_location cat "lineitem");
  Alcotest.(check bool) "unknown table" true (Catalog.find_table cat "nope" = None);
  Alcotest.(check (option string)) "db at L5" (Some "db-5") (Catalog.db_at cat "L5");
  Alcotest.(check (list string)) "tables at L1" [ "customer"; "orders" ]
    (List.sort String.compare (Catalog.tables_at cat "L1"));
  Alcotest.(check int) "lineitem cols" 16 (List.length (Catalog.table_cols cat "lineitem"))

let test_partitioned_catalog () =
  let cat =
    Tpch.Schema.catalog ~partition_tables:[ "customer" ] ~partition_count:3 ()
  in
  Alcotest.(check bool) "customer partitioned" true (Catalog.is_partitioned cat "customer");
  Alcotest.(check int) "three placements" 3
    (List.length (Catalog.placements cat "customer"));
  let fracs =
    List.fold_left
      (fun acc (p : Catalog.placement) -> acc +. p.fraction)
      0. (Catalog.placements cat "customer")
  in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0 fracs;
  Alcotest.(check bool) "orders not partitioned" false (Catalog.is_partitioned cat "orders")

let test_rows_at_scaling () =
  Alcotest.(check int) "region fixed" 5 (Tpch.Schema.rows_at 10.0 "region");
  Alcotest.(check int) "lineitem sf 1" 6_000_000 (Tpch.Schema.rows_at 1.0 "lineitem");
  Alcotest.(check bool) "small sf clamps" true (Tpch.Schema.rows_at 0.00001 "orders" >= 20)

let () =
  Alcotest.run "catalog"
    [
      ( "network",
        [
          Alcotest.test_case "ship cost" `Quick test_network_ship_cost;
          Alcotest.test_case "uniform" `Quick test_network_uniform;
          Alcotest.test_case "unknown link" `Quick test_network_unknown_link;
          Alcotest.test_case "paper default" `Quick test_paper_network;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "table def" `Quick test_table_def;
          Alcotest.test_case "lookup" `Quick test_catalog_lookup;
          Alcotest.test_case "partitioned" `Quick test_partitioned_catalog;
          Alcotest.test_case "row scaling" `Quick test_rows_at_scaling;
        ] );
    ]
