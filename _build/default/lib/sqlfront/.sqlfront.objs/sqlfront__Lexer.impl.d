lib/sqlfront/lexer.ml: Buffer Fmt List Printf String
