(* Recursive-descent parser for the SQL subset (Select-Project-Join-
   GroupBy queries) and for policy expressions. Functions thread the
   remaining token list explicitly; backtracking uses exceptions. *)

open Relalg

exception Error of string

let fail fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

type tokens = Lexer.token list

let peek = function [] -> Lexer.Eof | t :: _ -> t
let advance = function [] -> [] | _ :: r -> r

let expect tok ts =
  match ts with
  | t :: r when t = tok -> r
  | t :: _ -> fail "expected %s but found %s" (Lexer.token_to_string tok) (Lexer.token_to_string t)
  | [] -> fail "expected %s but found end of input" (Lexer.token_to_string tok)

let kw name ts =
  match ts with
  | Lexer.Ident s :: r when String.equal s name -> r
  | t :: _ -> fail "expected keyword %s but found %s" name (Lexer.token_to_string t)
  | [] -> fail "expected keyword %s" name

let is_kw name ts = match peek ts with Lexer.Ident s -> String.equal s name | _ -> false

let ident ts =
  match ts with
  | Lexer.Ident s :: r -> (s, r)
  | t :: _ -> fail "expected identifier, found %s" (Lexer.token_to_string t)
  | [] -> fail "expected identifier"

(* Reserved words that terminate expression/alias positions. *)
let reserved =
  [ "select"; "from"; "where"; "group"; "by"; "as"; "and"; "or"; "not"; "like"; "in";
    "is"; "null"; "between"; "ship"; "deny"; "to"; "aggregates"; "order"; "having";
    "limit" ]

let is_reserved s = List.mem s reserved

(* A string literal shaped like an ISO date becomes a Date value so that
   comparisons against date columns work without a typing pass. *)
let literal_of_string s =
  match Value.date_of_string s with Some d -> Value.Date d | None -> Value.Str s

(* --- scalar expressions --- *)

let rec parse_expr ts : Expr.scalar * tokens =
  let lhs, ts = parse_term ts in
  parse_expr_rest lhs ts

and parse_expr_rest lhs ts =
  match peek ts with
  | Lexer.Plus ->
    let rhs, ts = parse_term (advance ts) in
    parse_expr_rest (Expr.Binop (Expr.Add, lhs, rhs)) ts
  | Lexer.Minus ->
    let rhs, ts = parse_term (advance ts) in
    parse_expr_rest (Expr.Binop (Expr.Sub, lhs, rhs)) ts
  | _ -> (lhs, ts)

and parse_term ts =
  let lhs, ts = parse_factor ts in
  parse_term_rest lhs ts

and parse_term_rest lhs ts =
  match peek ts with
  | Lexer.Star ->
    let rhs, ts = parse_factor (advance ts) in
    parse_term_rest (Expr.Binop (Expr.Mul, lhs, rhs)) ts
  | Lexer.Slash ->
    let rhs, ts = parse_factor (advance ts) in
    parse_term_rest (Expr.Binop (Expr.Div, lhs, rhs)) ts
  | _ -> (lhs, ts)

and parse_factor ts =
  match ts with
  | Lexer.Int_lit v :: r -> (Expr.Const (Value.Int v), r)
  | Lexer.Float_lit v :: r -> (Expr.Const (Value.Float v), r)
  | Lexer.String_lit s :: r -> (Expr.Const (literal_of_string s), r)
  | Lexer.Minus :: Lexer.Int_lit v :: r -> (Expr.Const (Value.Int (-v)), r)
  | Lexer.Minus :: Lexer.Float_lit v :: r -> (Expr.Const (Value.Float (-.v)), r)
  | Lexer.Lparen :: r ->
    let e, r = parse_expr r in
    (e, expect Lexer.Rparen r)
  | Lexer.Ident "date" :: Lexer.String_lit s :: r -> (
    match Value.date_of_string s with
    | Some d -> (Expr.Const (Value.Date d), r)
    | None -> fail "invalid date literal '%s'" s)
  | Lexer.Ident "null" :: r -> (Expr.Const Value.Null, r)
  | Lexer.Ident name :: r when not (is_reserved name) -> (
    match r with
    | Lexer.Dot :: Lexer.Ident col :: r2 -> (Expr.Col (Attr.make ~rel:name ~name:col), r2)
    | _ -> (Expr.Col (Attr.unqualified name), r))
  | t :: _ -> fail "unexpected token %s in expression" (Lexer.token_to_string t)
  | [] -> fail "unexpected end of input in expression"

(* --- predicates --- *)

let cmp_of_token = function
  | Lexer.Eq -> Some Pred.Eq
  | Lexer.Neq -> Some Pred.Ne
  | Lexer.Lt -> Some Pred.Lt
  | Lexer.Le -> Some Pred.Le
  | Lexer.Gt -> Some Pred.Gt
  | Lexer.Ge -> Some Pred.Ge
  | _ -> None

let parse_literal ts : Value.t * tokens =
  match ts with
  | Lexer.Int_lit v :: r -> (Value.Int v, r)
  | Lexer.Float_lit v :: r -> (Value.Float v, r)
  | Lexer.String_lit s :: r -> (literal_of_string s, r)
  | Lexer.Minus :: Lexer.Int_lit v :: r -> (Value.Int (-v), r)
  | Lexer.Minus :: Lexer.Float_lit v :: r -> (Value.Float (-.v), r)
  | Lexer.Ident "date" :: Lexer.String_lit s :: r -> (
    match Value.date_of_string s with
    | Some d -> (Value.Date d, r)
    | None -> fail "invalid date literal '%s'" s)
  | t :: _ -> fail "expected literal, found %s" (Lexer.token_to_string t)
  | [] -> fail "expected literal"

let rec parse_pred ts : Pred.t * tokens =
  let lhs, ts = parse_and ts in
  match peek ts with
  | Lexer.Ident "or" ->
    let rhs, ts = parse_pred (advance ts) in
    (Pred.Or (lhs, rhs), ts)
  | _ -> (lhs, ts)

and parse_and ts =
  let lhs, ts = parse_not ts in
  match peek ts with
  | Lexer.Ident "and" ->
    let rhs, ts = parse_and (advance ts) in
    (Pred.And (lhs, rhs), ts)
  | _ -> (lhs, ts)

and parse_not ts =
  match peek ts with
  | Lexer.Ident "not" ->
    let p, ts = parse_not (advance ts) in
    (Pred.Not p, ts)
  | _ -> parse_primary ts

and parse_primary ts =
  (* Try a comparison first; on failure re-parse as a parenthesized
     predicate. *)
  match try Some (parse_comparison ts) with Error _ -> None with
  | Some res -> res
  | None -> (
    match ts with
    | Lexer.Lparen :: r ->
      let p, r = parse_pred r in
      (p, expect Lexer.Rparen r)
    | t :: _ -> fail "cannot parse predicate at %s" (Lexer.token_to_string t)
    | [] -> fail "unexpected end of input in predicate")

and parse_comparison ts =
  let lhs, ts = parse_expr ts in
  match ts with
  | Lexer.Ident "like" :: Lexer.String_lit pat :: r -> (Pred.Atom (Pred.Like (lhs, pat)), r)
  | Lexer.Ident "not" :: Lexer.Ident "like" :: Lexer.String_lit pat :: r ->
    (Pred.Not (Pred.Atom (Pred.Like (lhs, pat))), r)
  | Lexer.Ident "between" :: r ->
    let lo, r = parse_literal r in
    let r = kw "and" r in
    let hi, r = parse_literal r in
    ( Pred.And
        ( Pred.Atom (Pred.Cmp (Pred.Ge, lhs, Expr.Const lo)),
          Pred.Atom (Pred.Cmp (Pred.Le, lhs, Expr.Const hi)) ),
      r )
  | Lexer.Ident "in" :: Lexer.Lparen :: r ->
    let rec values acc r =
      let v, r = parse_literal r in
      match peek r with
      | Lexer.Comma -> values (v :: acc) (advance r)
      | _ -> (List.rev (v :: acc), expect Lexer.Rparen r)
    in
    let vs, r = values [] r in
    (Pred.Atom (Pred.In (lhs, vs)), r)
  | Lexer.Ident "is" :: Lexer.Ident "null" :: r -> (Pred.Atom (Pred.Is_null lhs), r)
  | Lexer.Ident "is" :: Lexer.Ident "not" :: Lexer.Ident "null" :: r ->
    (Pred.Atom (Pred.Not_null lhs), r)
  | t :: _ when cmp_of_token t <> None ->
    let c = Option.get (cmp_of_token t) in
    let rhs, r = parse_expr (advance ts) in
    (Pred.Atom (Pred.Cmp (c, lhs, rhs)), r)
  | t :: _ -> fail "expected comparison operator, found %s" (Lexer.token_to_string t)
  | [] -> fail "expected comparison operator"

(* --- select items --- *)

let agg_fn_token ts =
  match ts with
  | Lexer.Ident s :: Lexer.Lparen :: _ -> Expr.agg_fn_of_string s
  | _ -> None

let parse_select_item ts : Ast.select_item * tokens =
  match agg_fn_token ts with
  | Some fn -> (
    let ts = advance (advance ts) (* fn ( *) in
    let arg, ts =
      match peek ts with
      | Lexer.Star -> (Expr.Const (Value.Int 1), advance ts)
      | _ -> parse_expr ts
    in
    let ts = expect Lexer.Rparen ts in
    match ts with
    | Lexer.Ident "as" :: r ->
      let a, r = ident r in
      (Ast.Agg_item (fn, arg, Some a), r)
    | _ -> (Ast.Agg_item (fn, arg, None), ts))
  | None -> (
    let e, ts = parse_expr ts in
    match ts with
    | Lexer.Ident "as" :: r ->
      let a, r = ident r in
      (Ast.Scalar_item (e, Some a), r)
    | _ -> (Ast.Scalar_item (e, None), ts))

let rec parse_select_items acc ts =
  let item, ts = parse_select_item ts in
  match peek ts with
  | Lexer.Comma -> parse_select_items (item :: acc) (advance ts)
  | _ -> (List.rev (item :: acc), ts)

let parse_table_ref ts : (string * string) * tokens =
  let t, ts = ident ts in
  if is_reserved t then fail "expected table name, found keyword %s" t
  else
    match ts with
    | Lexer.Ident "as" :: r ->
      let a, r = ident r in
      ((t, a), r)
    | Lexer.Ident a :: r when not (is_reserved a) -> ((t, a), r)
    | _ -> ((t, t), ts)

let rec parse_from acc ts =
  let tr, ts = parse_table_ref ts in
  match peek ts with
  | Lexer.Comma -> parse_from (tr :: acc) (advance ts)
  | _ -> (List.rev (tr :: acc), ts)

let parse_group_by ts : Attr.t list * tokens =
  let rec cols acc ts =
    let e, ts = parse_expr ts in
    let a =
      match e with Expr.Col a -> a | _ -> fail "GROUP BY supports plain columns only"
    in
    match peek ts with
    | Lexer.Comma -> cols (a :: acc) (advance ts)
    | _ -> (List.rev (a :: acc), ts)
  in
  cols [] ts

(* --- entry points --- *)

let query (input : string) : Ast.query =
  let ts = try Lexer.tokenize input with Lexer.Error m -> raise (Error m) in
  let ts = kw "select" ts in
  let select, ts = parse_select_items [] ts in
  let ts = kw "from" ts in
  let from, ts = parse_from [] ts in
  let where, ts =
    if is_kw "where" ts then parse_pred (advance ts) else (Pred.True, ts)
  in
  let group_by, ts =
    if is_kw "group" ts then parse_group_by (kw "by" (advance ts)) else ([], ts)
  in
  let having, ts =
    if is_kw "having" ts then parse_pred (advance ts) else (Pred.True, ts)
  in
  let order_by, ts =
    if is_kw "order" ts then begin
      let ts = kw "by" (advance ts) in
      let rec items acc ts =
        let e, ts = parse_expr ts in
        let a =
          match e with
          | Expr.Col a -> a
          | _ -> fail "ORDER BY supports plain columns only"
        in
        let desc, ts =
          if is_kw "desc" ts then (true, advance ts)
          else if is_kw "asc" ts then (false, advance ts)
          else (false, ts)
        in
        match peek ts with
        | Lexer.Comma -> items ((a, desc) :: acc) (advance ts)
        | _ -> (List.rev ((a, desc) :: acc), ts)
      in
      items [] ts
    end
    else ([], ts)
  in
  let limit, ts =
    if is_kw "limit" ts then
      match advance ts with
      | Lexer.Int_lit n :: r -> (Some n, r)
      | _ -> fail "LIMIT expects an integer"
    else (None, ts)
  in
  (match peek ts with
  | Lexer.Eof -> ()
  | t -> fail "trailing input at %s" (Lexer.token_to_string t));
  { Ast.select; from; where; group_by; having; order_by; limit }

let policy_body ~lead (input : string) : Ast.policy_stmt =
  let ts = try Lexer.tokenize input with Lexer.Error m -> raise (Error m) in
  let ts = kw lead ts in
  let ship_attrs, ts =
    match peek ts with
    | Lexer.Star -> (Ast.All_attrs, advance ts)
    | _ ->
      let rec cols acc ts =
        let c, ts = ident ts in
        match peek ts with
        | Lexer.Comma -> cols (c :: acc) (advance ts)
        | _ -> (List.rev (c :: acc), ts)
      in
      let cs, ts = cols [] ts in
      (Ast.Attr_list cs, ts)
  in
  let aggregates, ts =
    if is_kw "as" ts then begin
      let ts = kw "aggregates" (advance ts) in
      let rec fns acc ts =
        let f, ts = ident ts in
        let fn =
          match Expr.agg_fn_of_string f with
          | Some fn -> fn
          | None -> fail "unknown aggregate function %s" f
        in
        match peek ts with
        | Lexer.Comma -> fns (fn :: acc) (advance ts)
        | _ -> (List.rev (fn :: acc), ts)
      in
      fns [] ts
    end
    else ([], ts)
  in
  let ts = kw "from" ts in
  let name, ts = ident ts in
  let p_db, p_table, ts =
    match ts with
    | Lexer.Dot :: r ->
      let t, r = ident r in
      (Some name, t, r)
    | _ -> (None, name, ts)
  in
  let p_alias, ts =
    match ts with
    | Lexer.Ident a :: r when not (is_reserved a) -> (Some a, r)
    | _ -> (None, ts)
  in
  let ts = kw "to" ts in
  let to_locs, ts =
    match peek ts with
    | Lexer.Star -> (Ast.All_locs, advance ts)
    | _ ->
      let rec locs acc ts =
        let l, ts =
          match ts with
          | Lexer.Ident s :: r -> (s, r)
          | t :: _ -> fail "expected location, found %s" (Lexer.token_to_string t)
          | [] -> fail "expected location"
        in
        match peek ts with
        | Lexer.Comma -> locs (l :: acc) (advance ts)
        | _ -> (List.rev (l :: acc), ts)
      in
      let ls, ts = locs [] ts in
      (Ast.Loc_list ls, ts)
  in
  let p_where, ts =
    if is_kw "where" ts then parse_pred (advance ts) else (Pred.True, ts)
  in
  let p_group_by, ts =
    if is_kw "group" ts then begin
      let ts = kw "by" (advance ts) in
      let rec cols acc ts =
        let c, ts = ident ts in
        match peek ts with
        | Lexer.Comma -> cols (c :: acc) (advance ts)
        | _ -> (List.rev (c :: acc), ts)
      in
      cols [] ts
    end
    else ([], ts)
  in
  (match peek ts with
  | Lexer.Eof -> ()
  | t -> fail "trailing input at %s" (Lexer.token_to_string t));
  { Ast.ship_attrs; aggregates; p_db; p_table; p_alias; to_locs; p_where; p_group_by }

let policy input = policy_body ~lead:"ship" input

(* Negative statements share the grammar with [ship], introduced by the
   keyword [deny]. *)
let deny input = policy_body ~lead:"deny" input
