(* Compliance-preserving degradation: permanent failures either fail
   over to the cheapest *compliant* alternative or abort with
   [`Unsatisfiable] — never a silent non-compliant ship. Scenarios are
   fully deterministic, so the degraded EXPLAIN ANALYZE transcript is a
   golden. *)

module Fault = Catalog.Network.Fault

let counter_value name = Obs.Metrics.value (Obs.Metrics.counter name)

(* -------- failover to a compliant alternative -------- *)

let test_failover_success () =
  let before = counter_value "cgqp_exec_ship_failovers_total" in
  let s = Fixture.session () in
  let baseline =
    match Cgqp.run (Fixture.session ()) Fixture.q with
    | Ok r -> Fixture.canon r.Cgqp.relation
    | Error e -> Alcotest.failf "baseline: %s" (Cgqp.error_to_string e)
  in
  Cgqp.set_faults s (Fault.make ~seed:3 [ Fault.Link_down ("NA", "EU") ]);
  match Cgqp.run s Fixture.q with
  | Error e -> Alcotest.failf "expected failover, got: %s" (Cgqp.error_to_string e)
  | Ok r ->
    Alcotest.(check int) "one failover" 1 r.Cgqp.recovery.Cgqp.failovers;
    Alcotest.(check (list (pair string string))) "masked link"
      [ ("EU", "NA") ]
      r.Cgqp.recovery.Cgqp.masked_links;
    Alcotest.(check (list string)) "no masked site" []
      r.Cgqp.recovery.Cgqp.masked_sites;
    Alcotest.(check bool) "degraded answer equals healthy answer" true
      (Fixture.canon r.Cgqp.relation = baseline);
    (* the executed plan is certified compliant even after re-planning *)
    Alcotest.(check int) "certified clean" 0
      (List.length
         (Optimizer.Checker.certify ~cat:(Cgqp.catalog s)
            ~policies:(Cgqp.policies s) r.Cgqp.plan));
    (* no executed SHIP uses the dead link *)
    List.iter
      (fun (sr : Exec.Interp.ship_record) ->
        if
          Fault.link_down (Cgqp.faults s) ~from_loc:sr.Exec.Interp.from_loc
            ~to_loc:sr.Exec.Interp.to_loc
        then Alcotest.fail "shipped over the dead link")
      r.Cgqp.interp.Exec.Interp.stats.Exec.Interp.ships;
    Alcotest.(check bool) "failover counter incremented" true
      (counter_value "cgqp_exec_ship_failovers_total" > before)

(* -------- topology change makes the only compliant route dead ------- *)

let expect_unsatisfiable ~msg_fragment s =
  match Cgqp.run s Fixture.q with
  | Ok _ -> Alcotest.fail "expected `Unsatisfiable, run succeeded"
  | Error (`Unsatisfiable m) ->
    let lower = String.lowercase_ascii m in
    let frag = String.lowercase_ascii msg_fragment in
    let contains hay needle =
      let lh = String.length hay and ln = String.length needle in
      let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
      ln = 0 || go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" m msg_fragment)
      true (contains lower frag)
  | Error e ->
    Alcotest.failf "expected `Unsatisfiable, got: %s" (Cgqp.error_to_string e)

let test_unsatisfiable_link_down () =
  (* Satellite 4: the strict policy admits exactly one route
     (customer NA -> EU). The plan is compliant pre-failure; once NA-EU
     dies the only alternatives are non-compliant, so the session must
     abort — a silent ship to AS or NA would violate the policy. *)
  let s = Fixture.session ~policies:Fixture.strict_policies () in
  Alcotest.(check bool) "query is legal pre-failure" true (Cgqp.is_legal s Fixture.q);
  Cgqp.set_faults s (Fault.make ~seed:3 [ Fault.Link_down ("NA", "EU") ]);
  expect_unsatisfiable ~msg_fragment:"link down" s

let test_unsatisfiable_attempts_exhausted () =
  let s = Fixture.session ~policies:Fixture.strict_policies () in
  Cgqp.set_faults s
    (Fault.make ~seed:3
       [ Fault.Transient_drop { from_loc = "NA"; to_loc = "EU"; p = 1.0 } ]);
  expect_unsatisfiable ~msg_fragment:"attempts exhausted" s

let test_unsatisfiable_budget_exhausted () =
  let s = Fixture.session ~policies:Fixture.strict_policies () in
  Cgqp.set_faults s (Fault.make ~seed:3 []);
  Cgqp.set_retry s { Exec.Interp.default_retry with Exec.Interp.budget_ms = 0.5 };
  expect_unsatisfiable ~msg_fragment:"budget" s

let test_site_down_masks_site () =
  (* A topology where AS is the cheap rendezvous: the healthy plan
     ships both inputs there. AS stores nothing, so when it dies the
     run degrades and records a masked *site*, falling back to a join
     at NA or EU over the expensive direct link. (Killing a site that
     holds the only replica of a table is correctly `Unsatisfiable
     instead: there is nothing to fail over to.) *)
  let s =
    Fixture.session
      ~links:[ ("NA", "EU", 500., 1e-3); ("NA", "AS", 10., 1e-4); ("EU", "AS", 10., 1e-4) ]
      ()
  in
  Cgqp.set_faults s (Fault.make ~seed:3 [ Fault.Site_down "AS" ]);
  match Cgqp.run s Fixture.q with
  | Error e -> Alcotest.failf "expected failover, got: %s" (Cgqp.error_to_string e)
  | Ok r ->
    Alcotest.(check (list string)) "masked site" [ "AS" ]
      r.Cgqp.recovery.Cgqp.masked_sites;
    List.iter
      (fun (sr : Exec.Interp.ship_record) ->
        if sr.Exec.Interp.from_loc = "AS" || sr.Exec.Interp.to_loc = "AS" then
          Alcotest.fail "shipped through the dead site")
      r.Cgqp.interp.Exec.Interp.stats.Exec.Interp.ships

(* -------- degraded-run gauge -------- *)

let test_degraded_gauge () =
  let s = Fixture.session () in
  Cgqp.set_faults s (Fault.make ~seed:3 [ Fault.Link_down ("NA", "EU") ]);
  (match Cgqp.run s Fixture.q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "failover run failed: %s" (Cgqp.error_to_string e));
  let dump = Fmt.str "%a" Obs.Metrics.render () in
  let has_line =
    String.split_on_char '\n' dump
    |> List.exists (fun l ->
           match String.index_opt l ' ' with
           | Some i when String.sub l 0 i = "cgqp_session_degraded_runs" ->
             (try int_of_string (String.trim (String.sub l i (String.length l - i))) > 0
              with _ -> false)
           | _ -> false)
  in
  Alcotest.(check bool) "cgqp_session_degraded_runs > 0" true has_line

(* -------- golden degraded EXPLAIN ANALYZE transcript -------- *)

let golden_degraded_explain =
  "compliant plan\n\
   phase-1 cost 380 | est. ship cost 141.28 ms | memo groups 9\n\
   policy evaluation: eta 5, implication tests 5\n\
   pruning: bound 460, pruned 0 groups / 4 entries / 0 combos\n\
   \n\
   Project [c.name, sum_totprice] @ AS  (est 20 rows, act 20 rows)\n\
   \xE2\x94\x94\xE2\x94\x80 HashAgg [keys: c.name; aggs: sum(sum_totprice__p) AS \
   sum_totprice] @ AS  (est 20 rows, act 20 rows)\n\
   \x20  \xE2\x94\x94\xE2\x94\x80 HashJoin [c.custkey=o.custkey] @ AS  (est 20 rows, \
   act 20 rows)\n\
   \x20     \xE2\x94\x9C\xE2\x94\x80 SHIP NA -> AS  (est 400 B; act 20 rows, 300 B, \
   80.60 ms)  [ok]\n\
   \x20     \xE2\x94\x82  \xE2\x94\x94\xE2\x94\x80 Project [c.custkey, c.name] @ NA  \
   (est 20 rows, act 20 rows)\n\
   \x20     \xE2\x94\x82     \xE2\x94\x94\xE2\x94\x80 Scan customer as c [p0] @ NA  \
   (est 20 rows, act 20 rows)\n\
   \x20     \xE2\x94\x94\xE2\x94\x80 SHIP EU -> AS  (est 320 B; act 20 rows, 320 B, \
   60.48 ms)  [ok]\n\
   \x20        \xE2\x94\x94\xE2\x94\x80 HashAgg [keys: o.custkey; aggs: sum(o.totprice) \
   AS sum_totprice__p] @ EU  (est 20 rows, act 20 rows)\n\
   \x20           \xE2\x94\x94\xE2\x94\x80 Project [o.custkey, o.totprice] @ EU  (est \
   60 rows, act 60 rows)\n\
   \x20              \xE2\x94\x94\xE2\x94\x80 Scan orders as o [p0] @ EU  (est 60 rows, \
   act 60 rows)\n\
   \n\
   execution: 280 rows processed, 2 ships, 620 B shipped, makespan 80.60 ms\n\
   degraded: 1 failover re-plan (masked links EU<->NA)\n"

let test_golden_degraded_explain () =
  let s = Fixture.session () in
  Cgqp.set_faults s (Fault.make ~seed:3 [ Fault.Link_down ("NA", "EU") ]);
  match Cgqp.explain_analyze s Fixture.q with
  | Error e -> Alcotest.failf "explain analyze failed: %s" (Cgqp.error_to_string e)
  | Ok text ->
    if Sys.getenv_opt "CGQP_GOLDEN_CAPTURE" <> None then (
      print_string text;
      Alcotest.fail "capture mode: transcript printed above")
    else Alcotest.(check string) "degraded transcript" golden_degraded_explain text

let () =
  Alcotest.run "degradation"
    [
      ( "failover",
        [
          Alcotest.test_case "re-plans compliantly around a dead link" `Quick
            test_failover_success;
          Alcotest.test_case "masks a dead site" `Quick test_site_down_masks_site;
        ] );
      ( "unsatisfiable",
        [
          Alcotest.test_case "dead link on the only compliant route" `Quick
            test_unsatisfiable_link_down;
          Alcotest.test_case "retry attempts exhausted" `Quick
            test_unsatisfiable_attempts_exhausted;
          Alcotest.test_case "simulated-clock budget exhausted" `Quick
            test_unsatisfiable_budget_exhausted;
        ] );
      ( "observability",
        [
          Alcotest.test_case "degraded-run gauge" `Quick test_degraded_gauge;
          Alcotest.test_case "golden degraded EXPLAIN ANALYZE" `Quick
            test_golden_degraded_explain;
        ] );
    ]
