(** Logical query plans.

    A [Scan] references a {e global} table name plus the alias used in
    the query; the catalog later resolves it to a database/location, or
    to a union of partition scans for horizontally partitioned tables
    (§7.5 of the paper). *)

type t =
  | Scan of { table : string; alias : string }
  | Select of Pred.t * t
  | Project of (Expr.scalar * Attr.t) list * t  (** expr AS attr *)
  | Join of Pred.t * t * t
  | Aggregate of aggregate
  | Union of t list  (** bag union of union-compatible inputs *)

and aggregate = { keys : Attr.t list; aggs : Expr.agg list; input : t }

val compare : t -> t -> int
val equal : t -> t -> bool

val base_tables : t -> (string * string) list
(** Aliases of all base relations in the subtree, with their global
    table names, left to right. *)

val all_preds : t -> Pred.t
(** Conjunction of every selection and join predicate in the subtree. *)

val output_cols : table_cols:(string -> string list) -> t -> Attr.t list
(** Columns produced by the plan, in order. [table_cols] supplies the
    column list of each base table. *)

val pp : ?indent:int -> Format.formatter -> t -> unit
val to_string : t -> string

val join_count : t -> int
(** Number of join operators — the paper's query-complexity measure. *)
