test/test_ablation.ml: Alcotest Array Catalog Exec Float List Optimizer Policy QCheck QCheck_alcotest Relalg Storage Tpch
