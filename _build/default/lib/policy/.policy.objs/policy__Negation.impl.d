lib/policy/negation.ml: Catalog Expression Fmt List Pcatalog Printf Relalg Sqlfront String
