(* Physical, site-annotated query execution plans. Every operator
   carries the location it executes at; [Ship] marks the points where
   intermediate results cross sites (and hence where dataflow policies
   bite). Estimated output size is recorded for cost accounting. *)

open Relalg

type est = { est_rows : float; est_width : float }

type node =
  | Table_scan of { table : string; alias : string; partition : int }
  | Filter of Pred.t
  | Project of (Expr.scalar * Attr.t) list
  | Hash_join of { keys : (Attr.t * Attr.t) list; residual : Pred.t }
    (* left-key / right-key equi pairs; residual applied post-match *)
  | Nl_join of Pred.t
  | Hash_agg of { keys : Attr.t list; aggs : Expr.agg list }
  | Sort of (Attr.t * bool) list  (* enforcer: (key, descending) *)
  | Merge_join of { keys : (Attr.t * Attr.t) list; residual : Pred.t }
    (* inputs must arrive sorted (ascending) on their key columns *)
  | Union_all
  | Ship of { from_loc : Catalog.Location.t; to_loc : Catalog.Location.t }

type t = {
  node : node;
  loc : Catalog.Location.t;  (* where this operator executes *)
  children : t list;
  est : est;
}

let make ?(est = { est_rows = 0.; est_width = 0. }) ~loc node children =
  { node; loc; children; est }

let est_bytes t = t.est.est_rows *. t.est.est_width

let rec ships t =
  (match t.node with
  | Ship { from_loc; to_loc } -> [ (from_loc, to_loc, t) ]
  | Table_scan _ | Filter _ | Project _ | Hash_join _ | Nl_join _ | Hash_agg _
  | Sort _ | Merge_join _ | Union_all ->
    [])
  @ List.concat_map ships t.children

let node_label = function
  | Table_scan { table; alias; partition } ->
    if partition = 0 && String.equal table alias then Printf.sprintf "Scan %s" table
    else Printf.sprintf "Scan %s as %s [p%d]" table alias partition
  | Filter p -> Fmt.str "Filter [%a]" Pred.pp p
  | Project items ->
    Fmt.str "Project [%a]"
      Fmt.(
        list ~sep:comma (fun ppf (e, n) ->
            match e with
            | Expr.Col a when Attr.equal a n -> Attr.pp ppf a
            | _ -> Fmt.pf ppf "%a AS %a" Expr.pp_scalar e Attr.pp n))
      items
  | Hash_join { keys; residual } ->
    Fmt.str "HashJoin [%a%s]"
      Fmt.(
        list ~sep:comma (fun ppf (l, r) -> Fmt.pf ppf "%a=%a" Attr.pp l Attr.pp r))
      keys
      (match residual with Pred.True -> "" | p -> Fmt.str "; %a" Pred.pp p)
  | Nl_join p -> Fmt.str "NLJoin [%a]" Pred.pp p
  | Hash_agg { keys; aggs } ->
    Fmt.str "HashAgg [keys: %a; aggs: %a]"
      Fmt.(list ~sep:comma Attr.pp)
      keys
      Fmt.(list ~sep:comma Expr.pp_agg)
      aggs
  | Sort keys ->
    Fmt.str "Sort [%a]"
      Fmt.(
        list ~sep:comma (fun ppf (a, desc) ->
            Fmt.pf ppf "%a%s" Attr.pp a (if desc then " desc" else "")))
      keys
  | Merge_join { keys; residual } ->
    Fmt.str "MergeJoin [%a%s]"
      Fmt.(
        list ~sep:comma (fun ppf (l, r) -> Fmt.pf ppf "%a=%a" Attr.pp l Attr.pp r))
      keys
      (match residual with Pred.True -> "" | p -> Fmt.str "; %a" Pred.pp p)
  | Union_all -> "UnionAll"
  | Ship { from_loc; to_loc } -> Printf.sprintf "SHIP %s -> %s" from_loc to_loc

let rec pp ?(indent = 0) ppf t =
  Fmt.pf ppf "%s%s @@%s (%.0f rows)@." (String.make indent ' ') (node_label t.node)
    t.loc t.est.est_rows;
  List.iter (pp ~indent:(indent + 2) ppf) t.children

let to_string t = Fmt.str "%a" (pp ~indent:0) t

let rec count_ops t = 1 + List.fold_left (fun acc c -> acc + count_ops c) 0 t.children

(* Graphviz rendering: one node per operator, clustered by execution
   site; SHIP edges are drawn bold. *)
let to_dot t =
  let buf = Buffer.create 1024 in
  let next = ref 0 in
  let esc s = String.concat "\\n" (String.split_on_char '\n' (String.escaped s)) in
  Buffer.add_string buf "digraph plan {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  (* gather nodes per location for clustering *)
  let clusters : (string, (int * string) list ref) Hashtbl.t = Hashtbl.create 8 in
  let edges = Buffer.create 256 in
  let rec walk p =
    incr next;
    let id = !next in
    let label = esc (node_label p.node) in
    let bucket =
      match Hashtbl.find_opt clusters p.loc with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace clusters p.loc l;
        l
    in
    bucket := (id, label) :: !bucket;
    List.iter
      (fun c ->
        let cid = walk c in
        let style =
          match c.node with Ship _ -> " [penwidth=2, color=red]" | _ -> ""
        in
        Buffer.add_string edges (Printf.sprintf "  n%d -> n%d%s;\n" cid id style))
      p.children;
    id
  in
  ignore (walk t);
  Hashtbl.iter
    (fun loc nodes ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph \"cluster_%s\" {\n    label=\"%s\";\n" loc loc);
      List.iter
        (fun (id, label) ->
          Buffer.add_string buf (Printf.sprintf "    n%d [label=\"%s\"];\n" id label))
        !nodes;
      Buffer.add_string buf "  }\n")
    clusters;
  Buffer.add_buffer buf edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Insert SHIP operators between every child/parent pair at different
   locations, bottom-up. The input tree has locations but no Ship
   nodes. *)
let rec with_ships t =
  match t.node with
  | Ship _ -> { t with children = List.map with_ships t.children }
  | _ ->
    let children =
      List.map
        (fun c ->
          let c = with_ships c in
          if String.equal c.loc t.loc then c
          else
            { node = Ship { from_loc = c.loc; to_loc = t.loc }; loc = t.loc;
              children = [ c ]; est = c.est })
        t.children
    in
    { t with children }
