test/test_pplan.ml: Alcotest Attr Exec Expr List Pred QCheck QCheck_alcotest Relalg Storage String
