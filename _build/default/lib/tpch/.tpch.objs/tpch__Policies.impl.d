lib/tpch/policies.ml: List Policy Printf Schema
