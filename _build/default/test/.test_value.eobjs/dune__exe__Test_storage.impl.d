test/test_storage.ml: Alcotest Array Attr List QCheck QCheck_alcotest Relalg Storage Value
