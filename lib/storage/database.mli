(** Physical storage: maps (table, partition index) to a materialized
    relation. Partition 0 is the sole partition of unpartitioned
    tables. Table names are case-insensitive. *)

type t

val create : unit -> t
val add : t -> table:string -> ?partition:int -> Relation.t -> unit
val find : t -> table:string -> ?partition:int -> unit -> Relation.t option

val find_exn : t -> table:string -> ?partition:int -> unit -> Relation.t
(** Raises [Invalid_argument] when absent. *)

val tables : t -> (string * int) list
(** All stored (table, partition) pairs. *)

val total_rows : t -> int

val paged : t -> dir:string -> t
(** Write every stored relation as column segments under
    [dir/<table>_<partition>/] ({!Segment.write}) and return a new
    database whose relations are disk-backed ({!Segment.relation}) —
    same tables, same data, resident working set near zero. *)
