lib/exec/pplan.mli: Attr Catalog Expr Format Pred Relalg
