(* Chaos harness: seeded fault schedules against the full stack.

   The headline properties (see docs/FAULTS.md):
   - under ANY fault schedule, no executed SHIP traverses a link the
     policy evaluator rejects — runs either complete compliantly or
     abort as `Unsatisfiable;
   - retry accounting replays bit-for-bit: same schedule, same seed,
     same attempt counts, same byte totals;
   - an empty schedule is byte-identical to an executor that never
     heard of faults.

   The qcheck cases are deterministic: the generator PRNG is seeded
   from CGQP_SEED (default 42), echoed below, so a CI failure replays
   locally with the same environment variable. *)

open Relalg
module Fault = Catalog.Network.Fault
module P = Exec.Pplan

let chaos_seed = Storage.Seed.resolve ()

(* ---------------- fault-schedule DSL ---------------- *)

let dsl_text =
  "# two permanent failures, one flaky link, one slow link\n\
   seed 9\n\
   link-down NA EU\n\
   site-down AS\n\
   drop NA AS 0.25\n\
   slow EU AS 2.5\n"

let test_dsl_parse () =
  match Fault.parse dsl_text with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok s ->
    Alcotest.(check int) "seed" 9 (Fault.seed s);
    Alcotest.(check int) "four events" 4 (List.length (Fault.events s));
    Alcotest.(check bool) "link down" true
      (Fault.link_down s ~from_loc:"EU" ~to_loc:"NA");
    Alcotest.(check bool) "site down kills its links" true
      (Fault.link_down s ~from_loc:"EU" ~to_loc:"AS");
    Alcotest.(check bool) "site down" true (Fault.site_down s "AS");
    Alcotest.(check (float 1e-9)) "drop p" 0.25
      (Fault.drop_probability s ~from_loc:"AS" ~to_loc:"NA");
    Alcotest.(check (float 1e-9)) "latency factor" 2.5
      (Fault.latency_factor s ~from_loc:"EU" ~to_loc:"AS");
    Alcotest.(check (float 1e-9)) "unrelated link untouched" 1.0
      (Fault.latency_factor s ~from_loc:"NA" ~to_loc:"AS")

let test_dsl_round_trip () =
  match Fault.parse dsl_text with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok s -> (
    match Fault.parse (Fault.to_string s) with
    | Error m -> Alcotest.failf "re-parse failed: %s" m
    | Ok s' ->
      Alcotest.(check string) "round trip" (Fault.to_string s) (Fault.to_string s'))

let test_dsl_errors () =
  let expect_line n text =
    match Fault.parse text with
    | Ok _ -> Alcotest.failf "expected a parse error for %S" text
    | Error m ->
      let prefix = Printf.sprintf "line %d:" n in
      Alcotest.(check bool)
        (Printf.sprintf "error %S names line %d" m n)
        true
        (String.length m >= String.length prefix
        && String.sub m 0 (String.length prefix) = prefix)
  in
  expect_line 1 "nonsense A B";
  expect_line 2 "seed 3\nlink-down OnlyOne";
  expect_line 1 "drop A B not-a-number";
  expect_line 3 "# fine\nseed 1\nslow A B"

(* ---------------- deterministic drop stream ---------------- *)

let test_drops_deterministic () =
  let s = Fault.make ~seed:11 [ Fault.Transient_drop { from_loc = "x"; to_loc = "y"; p = 0.5 } ] in
  let stream () =
    List.init 64 (fun i ->
        Fault.drops s ~from_loc:"x" ~to_loc:"y" ~ship:(i / 4) ~attempt:(i mod 4))
  in
  Alcotest.(check (list bool)) "pure function of (seed, link, ship, attempt)"
    (stream ()) (stream ());
  (* both directions of the undirected link share one fate stream *)
  Alcotest.(check bool) "direction-independent" true
    (List.for_all
       (fun i ->
         Fault.drops s ~from_loc:"x" ~to_loc:"y" ~ship:i ~attempt:1
         = Fault.drops s ~from_loc:"y" ~to_loc:"x" ~ship:i ~attempt:1)
       (List.init 32 Fun.id));
  let other = Fault.make ~seed:12 [ Fault.Transient_drop { from_loc = "x"; to_loc = "y"; p = 0.5 } ] in
  Alcotest.(check bool) "seed matters" true
    (stream ()
    <> List.init 64 (fun i ->
           Fault.drops other ~from_loc:"x" ~to_loc:"y" ~ship:(i / 4) ~attempt:(i mod 4)))

(* ---------------- property: compliance under any schedule ------------- *)

let gen_loc = QCheck.Gen.oneofl Fixture.locations
let gen_pair = QCheck.Gen.pair gen_loc gen_loc

let gen_event =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun (a, b) -> Fault.Link_down (a, b)) gen_pair;
      QCheck.Gen.map (fun l -> Fault.Site_down l) gen_loc;
      QCheck.Gen.map2
        (fun (a, b) p -> Fault.Transient_drop { from_loc = a; to_loc = b; p })
        gen_pair
        (QCheck.Gen.float_bound_inclusive 1.0);
      QCheck.Gen.map2
        (fun (a, b) f -> Fault.Latency_mult { from_loc = a; to_loc = b; factor = f })
        gen_pair
        (QCheck.Gen.float_range 0.25 4.0);
    ]

let gen_schedule =
  QCheck.Gen.map2
    (fun seed events -> Fault.make ~seed events)
    (QCheck.Gen.int_bound 1_000_000)
    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4) gen_event)

let arb_schedule = QCheck.make ~print:Fault.to_string gen_schedule

let baseline_rows =
  lazy
    (let s = Fixture.session () in
     match Cgqp.run s Fixture.q with
     | Ok r -> Fixture.canon r.Cgqp.relation
     | Error e -> failwith ("fault-free baseline failed: " ^ Cgqp.error_to_string e))

let prop_no_illegal_ship =
  QCheck.Test.make ~count:500 ~name:"no SHIP over a policy-rejected link, any schedule"
    arb_schedule (fun sched ->
      let s = Fixture.session () in
      Cgqp.set_faults s sched;
      match Cgqp.run s Fixture.q with
      | Error (`Unsatisfiable _) ->
        (* acceptable degradation: the run aborted, nothing shipped
           outside policy *)
        true
      | Error e ->
        QCheck.Test.fail_reportf "unexpected error: %s" (Cgqp.error_to_string e)
      | Ok r ->
        let cat = Cgqp.catalog s in
        (match
           Optimizer.Checker.certify ~cat ~policies:(Cgqp.policies s) r.Cgqp.plan
         with
        | [] -> ()
        | v :: _ ->
          QCheck.Test.fail_reportf "executed plan violates policy: %s"
            (Fmt.str "%a" Optimizer.Checker.pp_violation v));
        (* the executor can only have completed over live links *)
        List.for_all
          (fun (sr : Exec.Interp.ship_record) ->
            not (Fault.link_down sched ~from_loc:sr.from_loc ~to_loc:sr.to_loc))
          r.Cgqp.interp.Exec.Interp.stats.Exec.Interp.ships
        (* and degraded answers are still the right answers *)
        && Fixture.canon r.Cgqp.relation = Lazy.force baseline_rows)

(* ---------------- property: retry accounting replays ---------------- *)

(* A bare executor fixture: one SHIP y -> x over a uniform network, so
   every accounting quantity has a closed form. *)
let uni = Catalog.Network.uniform ~locations:[ "x"; "y" ] ~alpha:10. ~beta:1.0

let exec_db () =
  let db = Storage.Database.create () in
  let schema = [ Attr.make ~rel:"r" ~name:"a"; Attr.make ~rel:"r" ~name:"b" ] in
  Storage.Database.add db ~table:"r"
    (Storage.Relation.make ~schema
       ~rows:
         (Array.init 8 (fun i -> [| Value.Int i; Value.Str (string_of_int (i * i)) |])));
  db

let exec_table_cols = function
  | "r" -> [ "a"; "b" ]
  | t -> Alcotest.failf "unknown table %s" t

let ship_plan =
  let est = { P.est_rows = 8.; est_width = 16. } in
  {
    P.node = P.Ship { from_loc = "y"; to_loc = "x" };
    loc = "x";
    children =
      [
        {
          P.node = P.Table_scan { table = "r"; alias = "r"; partition = 0 };
          loc = "y";
          children = [];
          est;
        };
      ];
    est;
  }

let run_exec ?faults ?retry () =
  let db = exec_db () in
  match Exec.Interp.run ?faults ?retry ~network:uni ~db ~table_cols:exec_table_cols ship_plan with
  | r ->
    Ok
      ( Storage.Relation.to_csv r.Exec.Interp.relation,
        List.map
          (fun (s : Exec.Interp.ship_record) -> (s.bytes, s.attempts, s.cost_ms))
          r.Exec.Interp.stats.Exec.Interp.ships,
        Exec.Interp.total_traffic_bytes r.Exec.Interp.stats,
        Exec.Interp.total_ship_bytes r.Exec.Interp.stats )
  | exception Exec.Interp.Ship_failed { attempts; reason; _ } ->
    Error (attempts, Exec.Interp.ship_failure_to_string reason)

(* Simulated cost of a SHIP that needed [n] attempts under the default
   retry policy: n transfers plus the backoffs after the n-1 failures. *)
let closed_form_cost ~attempt_cost n =
  let rp = Exec.Interp.default_retry in
  let rec go k acc =
    if k >= n then acc +. attempt_cost
    else
      go (k + 1)
        (acc +. attempt_cost
        +. Float.min rp.Exec.Interp.max_backoff_ms
             (rp.Exec.Interp.base_backoff_ms *. (2. ** float_of_int (k - 1))))
  in
  go 1 0.

let arb_drop_schedule =
  QCheck.make
    ~print:(fun s -> Fault.to_string s)
    (QCheck.Gen.map2
       (fun seed p ->
         Fault.make ~seed [ Fault.Transient_drop { from_loc = "x"; to_loc = "y"; p } ])
       (QCheck.Gen.int_bound 1_000_000)
       (QCheck.Gen.float_bound_inclusive 1.0))

let prop_retry_accounting =
  QCheck.Test.make ~count:500 ~name:"retry accounting replays to exact byte totals"
    arb_drop_schedule (fun sched ->
      let once = run_exec ~faults:sched () in
      let again = run_exec ~faults:sched () in
      if once <> again then QCheck.Test.fail_report "chaos run did not replay";
      match once with
      | Error (attempts, _) ->
        (* exhausted: the default policy allows exactly 4 tries *)
        attempts = Exec.Interp.default_retry.Exec.Interp.max_attempts
      | Ok (_, ships, traffic, payload) ->
        List.for_all
          (fun (bytes, attempts, cost_ms) ->
            let attempt_cost =
              Catalog.Network.ship_cost uni ~from_loc:"y" ~to_loc:"x"
                ~bytes:(float_of_int bytes)
            in
            attempts >= 1
            && attempts <= Exec.Interp.default_retry.Exec.Interp.max_attempts
            && Float.abs (cost_ms -. closed_form_cost ~attempt_cost attempts) < 1e-6)
          ships
        && traffic = List.fold_left (fun a (b, n, _) -> a + (b * n)) 0 ships
        && payload = List.fold_left (fun a (b, _, _) -> a + b) 0 ships)

(* ---------------- fault-free differential ---------------- *)

let test_fault_free_differential () =
  (* executor level: an empty schedule vs never passing one *)
  let plain = run_exec () in
  let empty = run_exec ~faults:Fault.empty () in
  let explicit_empty = run_exec ~faults:(Fault.make ~seed:12345 []) () in
  Alcotest.(check bool) "empty schedule is byte-identical" true (plain = empty);
  Alcotest.(check bool) "seeded empty schedule too" true (plain = explicit_empty);
  (* session level: same relation, same ship totals, no recovery *)
  let s0 = Fixture.session () in
  let s1 = Fixture.session () in
  Cgqp.set_faults s1 (Fault.make ~seed:99 []);
  match (Cgqp.run s0 Fixture.q, Cgqp.run s1 Fixture.q) with
  | Ok r0, Ok r1 ->
    Alcotest.(check bool) "same rows" true
      (Fixture.canon r0.Cgqp.relation = Fixture.canon r1.Cgqp.relation);
    Alcotest.(check int) "same shipped bytes" r0.Cgqp.shipped_bytes r1.Cgqp.shipped_bytes;
    Alcotest.(check (float 1e-9)) "same ship cost" r0.Cgqp.ship_cost_ms r1.Cgqp.ship_cost_ms;
    Alcotest.(check (float 1e-9)) "same makespan" r0.Cgqp.makespan_ms r1.Cgqp.makespan_ms;
    Alcotest.(check int) "no failovers" 0 r1.Cgqp.recovery.Cgqp.failovers;
    Alcotest.(check int) "no retries" 0
      r1.Cgqp.interp.Exec.Interp.stats.Exec.Interp.ship_retries
  | _ -> Alcotest.fail "fault-free runs must succeed"

(* ---------------- latency faults ---------------- *)

let test_latency_multiplier () =
  let sched = Fault.make ~seed:1 [ Fault.Latency_mult { from_loc = "x"; to_loc = "y"; factor = 2.0 } ] in
  match (run_exec (), run_exec ~faults:sched ()) with
  | Ok (csv0, [ (b0, a0, c0) ], _, _), Ok (csv1, [ (b1, a1, c1) ], _, _) ->
    Alcotest.(check string) "same result" csv0 csv1;
    Alcotest.(check int) "same bytes" b0 b1;
    Alcotest.(check int) "one attempt each" a0 a1;
    Alcotest.(check (float 1e-9)) "cost doubled" (2. *. c0) c1
  | _ -> Alcotest.fail "latency-only schedules must not fail"

(* ---------------- runner ---------------- *)

let () =
  (* CI artifact hook: with CGQP_CHAOS_TRACE_OUT set, record the full
     structured trace of the chaos run and write it as JSON lines. *)
  (match Sys.getenv_opt "CGQP_CHAOS_TRACE_OUT" with
  | None -> ()
  | Some file ->
    Obs.Trace.enable ();
    at_exit (fun () ->
        let oc = open_out file in
        Obs.Trace.write_jsonl oc;
        close_out oc));
  Fmt.epr "chaos seed: %d (set %s to replay)@." chaos_seed Storage.Seed.env_var;
  let rand = Random.State.make [| chaos_seed |] in
  Alcotest.run "chaos"
    [
      ( "dsl",
        [
          Alcotest.test_case "parse" `Quick test_dsl_parse;
          Alcotest.test_case "round trip" `Quick test_dsl_round_trip;
          Alcotest.test_case "errors name the line" `Quick test_dsl_errors;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "drop stream" `Quick test_drops_deterministic;
          Alcotest.test_case "fault-free differential" `Quick test_fault_free_differential;
          Alcotest.test_case "latency multiplier" `Quick test_latency_multiplier;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest ~rand prop_no_illegal_ship;
          QCheck_alcotest.to_alcotest ~rand prop_retry_accounting;
        ] );
    ]
