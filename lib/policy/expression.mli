(** Bound (name-resolved) policy expressions — the paper's §4.

    A policy expression declares which cells of a table may legally be
    shipped to which locations, optionally only in aggregated form:

    {v
    ship <columns|*> from [db.]table [alias] to <locations|*>
        [where <condition>]
    ship <columns> as aggregates <fns> from [db.]table to <locations>
        [where <condition>] group by <columns>
    v} *)

open Relalg

type t = {
  table : string;  (** global table name *)
  ship_cols : string list;  (** A_e; ["*"] is expanded at bind time *)
  agg_fns : Expr.agg_fn list;  (** F_e; empty for basic expressions *)
  to_locs : Catalog.Location.Set.t;  (** L_e *)
  pred : Pred.t;  (** P_e, over base columns *)
  group_by : string list;  (** G_e *)
  text : string;  (** original statement, for display *)
}

val is_basic : t -> bool
val is_aggregate : t -> bool

exception Bind_error of string

val of_ast : Catalog.t -> Sqlfront.Ast.policy_stmt -> text:string -> t
(** Resolve a parsed statement: checks table, columns and database
    qualifier against the catalog; matches location names
    case-insensitively; normalizes predicate columns to
    [Attr {rel = table; _}]. Raises {!Bind_error} on any mismatch. *)

val parse : Catalog.t -> string -> t
(** Parse then bind. Raises {!Bind_error} (including on syntax
    errors). *)

val compare : t -> t -> int
(** Structural order over all fields (predicates via
    {!Relalg.Pred.compare_pred}). *)

val equal : t -> t -> bool

val hash : t -> int
(** Consistent with [equal]. *)

val intern : t -> t
(** Hash-consed representative (predicate included): [equal e f]
    implies [intern e == intern f]. The policy catalog interns every
    expression at construction, so equality checks inside the
    optimizer hot path are pointer comparisons. *)

val intern_stats : unit -> int * int * int
(** [(hits, misses, size)] of the expression intern table. *)

val pp : Format.formatter -> t -> unit
