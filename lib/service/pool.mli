(** Fork/join domain pool with a deterministic, static work assignment.

    The serving scheduler's recording pass runs one task per session on
    this pool ({!map}); task [i] always executes on worker [i mod
    domains], so results — and the domain tags on trace events — do not
    depend on how the OS schedules the domains. See
    [docs/PARALLELISM.md] for the full determinism contract. *)

val default_domains : unit -> int
(** The pool width requested by the [CGQP_DOMAINS] environment variable
    (default [1] when unset or empty). Raises [Invalid_argument] if the
    value is not a positive integer. *)

val map : domains:int -> (unit -> 'a) array -> 'a array
(** [map ~domains tasks] runs every task and returns their results in
    task order. Task [i] runs on worker [i mod domains]; worker [0] is
    the calling domain, workers [1 .. domains-1] are spawned domains
    whose trace events are tagged with their worker index
    ({!Obs.Trace.set_domain_tag}). Extra width is wasted, not an error:
    at most [Array.length tasks] domains run.

    If tasks raise, every task still runs to completion (or failure)
    and the exception of the {e lowest-indexed} failing task is
    re-raised with its backtrace — again independent of domain timing.
    Raises [Invalid_argument] if [domains < 1]. *)
