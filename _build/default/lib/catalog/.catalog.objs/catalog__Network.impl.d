lib/catalog/network.ml: Hashtbl List Location String
