lib/optimizer/planner.mli: Attr Catalog Checker Exec Format Memo Plan Policy Relalg Site_selector
