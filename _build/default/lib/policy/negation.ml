(* Negative policy statements, cf. §4 "Disclosure Model": specifying
   what is *not* allowed is sometimes more convenient; under the closed
   world assumption such statements are handled by a preprocessing step
   that subtracts the denied shipments from the positive grants.

   A deny statement shares the ship grammar:

     deny <columns|*> from [db.]table to <locations|*> [where <cond>]

   Preprocessing is conservative: a grant whose ship (or group-by)
   attributes intersect the denied columns loses the denied locations
   outright — even when the deny carries a row condition, since a grant
   cannot be partially honoured without row-level enforcement. Grants
   whose location set becomes empty are dropped. *)

type t = {
  d_table : string;
  d_cols : string list;
  d_locs : Catalog.Location.Set.t;
  d_pred : Relalg.Pred.t;  (* recorded for display; subtraction ignores it *)
  d_text : string;
}

let parse (cat : Catalog.t) (text : string) : t =
  let stmt =
    try Sqlfront.Parser.deny text
    with Sqlfront.Parser.Error m ->
      raise (Expression.Bind_error (Printf.sprintf "%s (in deny %S)" m text))
  in
  if stmt.Sqlfront.Ast.aggregates <> [] then
    raise (Expression.Bind_error "deny statements cannot carry aggregates");
  (* reuse the positive binder for validation and normalization *)
  let e = Expression.of_ast cat stmt ~text in
  {
    d_table = e.Expression.table;
    d_cols = e.Expression.ship_cols;
    d_locs = e.Expression.to_locs;
    d_pred = e.Expression.pred;
    d_text = text;
  }

let affects (d : t) (e : Expression.t) =
  String.equal d.d_table e.Expression.table
  && List.exists
       (fun c ->
         List.exists (String.equal c) e.Expression.ship_cols
         || List.exists (String.equal c) e.Expression.group_by)
       d.d_cols

(* Subtract every deny from every affected grant. *)
let apply ~(denies : t list) (grants : Expression.t list) : Expression.t list =
  List.filter_map
    (fun (e : Expression.t) ->
      let to_locs =
        List.fold_left
          (fun locs d ->
            if affects d e then Catalog.Location.Set.diff locs d.d_locs else locs)
          e.Expression.to_locs denies
      in
      if Catalog.Location.Set.is_empty to_locs then None
      else Some { e with Expression.to_locs })
    grants

(* Convenience: build a policy catalog from positive and negative
   statement texts. *)
let catalog_of_texts (cat : Catalog.t) ~grants ~denies : Pcatalog.t =
  let gs = List.map (Expression.parse cat) grants in
  let ds = List.map (parse cat) denies in
  Pcatalog.make (apply ~denies:ds gs)

let pp ppf d = Fmt.string ppf d.d_text
