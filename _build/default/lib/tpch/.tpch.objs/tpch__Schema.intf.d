lib/tpch/schema.mli: Catalog
