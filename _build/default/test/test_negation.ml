(* Negative policy statements (§4 "Disclosure Model"): deny statements
   preprocessed against positive grants under the closed-world
   assumption. *)

module Locset = Catalog.Location.Set

let locset = Alcotest.testable Locset.pp Locset.equal
let cat = Tpch.Schema.catalog ()

let test_parse_deny () =
  let d = Policy.Negation.parse cat "deny acctbal from db-1.customer to L4, L5" in
  Alcotest.(check string) "table" "customer" d.Policy.Negation.d_table;
  Alcotest.(check (list string)) "cols" [ "acctbal" ] d.Policy.Negation.d_cols;
  Alcotest.check locset "locs" (Locset.of_list [ "L4"; "L5" ]) d.Policy.Negation.d_locs

let test_deny_subtracts () =
  let grants =
    List.map (Policy.Expression.parse cat)
      [
        "ship custkey, name, acctbal from db-1.customer to L2, L4, L5";
        "ship custkey, name from db-1.customer to L3";
      ]
  in
  let denies = [ Policy.Negation.parse cat "deny acctbal from db-1.customer to L4, L5" ] in
  match Policy.Negation.apply ~denies grants with
  | [ e1; e2 ] ->
    Alcotest.check locset "acctbal grant narrowed" (Locset.of_list [ "L2" ])
      e1.Policy.Expression.to_locs;
    Alcotest.check locset "unrelated grant untouched" (Locset.of_list [ "L3" ])
      e2.Policy.Expression.to_locs
  | es -> Alcotest.failf "expected two grants, got %d" (List.length es)

let test_deny_drops_empty_grants () =
  let grants =
    [ Policy.Expression.parse cat "ship acctbal from db-1.customer to L4" ]
  in
  let denies = [ Policy.Negation.parse cat "deny acctbal from db-1.customer to *" ] in
  Alcotest.(check int) "grant fully revoked" 0
    (List.length (Policy.Negation.apply ~denies grants))

let test_deny_on_group_by () =
  (* denying a grouping column also narrows aggregate grants *)
  let grants =
    [
      Policy.Expression.parse cat
        "ship extendedprice as aggregates sum from db-4.lineitem to L1, L5 \
         group by suppkey";
    ]
  in
  let denies = [ Policy.Negation.parse cat "deny suppkey from db-4.lineitem to L5" ] in
  match Policy.Negation.apply ~denies grants with
  | [ e ] ->
    Alcotest.check locset "L5 revoked" (Locset.of_list [ "L1" ]) e.Policy.Expression.to_locs
  | _ -> Alcotest.fail "grant disappeared"

let test_deny_rejects_aggregates () =
  match
    Policy.Negation.parse cat
      "deny acctbal as aggregates sum from db-1.customer to L4"
  with
  | exception Policy.Expression.Bind_error _ -> ()
  | _ -> Alcotest.fail "aggregate deny must be rejected"

let test_catalog_of_texts () =
  let pc =
    Policy.Negation.catalog_of_texts cat
      ~grants:[ "ship * from db-5.nation to *"; "ship * from db-5.region to *" ]
      ~denies:[ "deny name from db-5.nation to L2" ]
  in
  match Policy.Pcatalog.for_table pc "nation" with
  | [ e ] ->
    Alcotest.(check bool) "L2 gone" false (Locset.mem "L2" e.Policy.Expression.to_locs);
    Alcotest.(check bool) "L1 kept" true (Locset.mem "L1" e.Policy.Expression.to_locs)
  | _ -> Alcotest.fail "nation grant missing"

let test_end_to_end_with_denials () =
  (* a deny flips a previously legal shipment into a rejection *)
  let grants = Tpch.Policies.set_t in
  let with_denial =
    Policy.Negation.catalog_of_texts cat ~grants
      ~denies:[ "deny quantity from db-4.lineitem to L1, L5" ]
  in
  let without = Policy.Pcatalog.of_texts cat grants in
  let sql =
    "SELECT o.orderkey, l.quantity FROM orders o, lineitem l WHERE o.orderkey = l.orderkey"
  in
  (match Optimizer.Planner.optimize_sql ~cat ~policies:without sql with
  | Optimizer.Planner.Planned _ -> ()
  | Optimizer.Planner.Rejected r -> Alcotest.failf "should be legal without deny: %s" r);
  match Optimizer.Planner.optimize_sql ~cat ~policies:with_denial sql with
  | Optimizer.Planner.Planned p ->
    (* lineitem data may no longer leave its site: no SHIP out of L4,
       and the join runs there *)
    Alcotest.(check (list string)) "no ship out of L4" []
      (List.filter_map
         (fun (f, t, _) -> if f = "L4" then Some (f ^ "->" ^ t) else None)
         (Exec.Pplan.ships p.Optimizer.Planner.plan));
    Alcotest.(check string) "root at L4" "L4" p.Optimizer.Planner.plan.Exec.Pplan.loc
  | Optimizer.Planner.Rejected _ -> ()

let () =
  Alcotest.run "negation"
    [
      ( "negation",
        [
          Alcotest.test_case "parse" `Quick test_parse_deny;
          Alcotest.test_case "subtracts" `Quick test_deny_subtracts;
          Alcotest.test_case "drops empty" `Quick test_deny_drops_empty_grants;
          Alcotest.test_case "group-by columns" `Quick test_deny_on_group_by;
          Alcotest.test_case "no aggregate denies" `Quick test_deny_rejects_aggregates;
          Alcotest.test_case "catalog helper" `Quick test_catalog_of_texts;
          Alcotest.test_case "end to end" `Quick test_end_to_end_with_denials;
        ] );
    ]
