(** Physical, site-annotated query execution plans.

    Every operator carries the location it executes at; [Ship] marks
    the points where intermediate results cross sites — where dataflow
    policies bite. Estimated output sizes are recorded for cost
    accounting. *)

open Relalg

type est = { est_rows : float; est_width : float }
(** Optimizer estimate of an operator's output: rows and average row
    width in bytes. *)

type node =
  | Table_scan of { table : string; alias : string; partition : int }
  | Filter of Pred.t
  | Project of (Expr.scalar * Attr.t) list
  | Hash_join of { keys : (Attr.t * Attr.t) list; residual : Pred.t }
      (** left/right equi-key pairs; [residual] applied after matching *)
  | Nl_join of Pred.t
  | Hash_agg of { keys : Attr.t list; aggs : Expr.agg list }
  | Sort of (Attr.t * bool) list  (** enforcer: (key, descending) *)
  | Merge_join of { keys : (Attr.t * Attr.t) list; residual : Pred.t }
      (** inputs must arrive sorted ascending on their key columns *)
  | Union_all
  | Ship of { from_loc : Catalog.Location.t; to_loc : Catalog.Location.t }

type t = {
  node : node;
  loc : Catalog.Location.t;  (** where this operator executes *)
  children : t list;
  est : est;
}

val make : ?est:est -> loc:Catalog.Location.t -> node -> t list -> t
(** Build a node; [est] defaults to zero (callers that price plans
    always supply it). *)

val est_bytes : t -> float
(** [est_rows *. est_width] — the size the cost model charges a SHIP
    of this node's output. *)

val ships : t -> (Catalog.Location.t * Catalog.Location.t * t) list
(** All SHIP operators in the tree with their endpoints. *)

val node_label : node -> string
(** Short operator label, e.g. ["HashJoin [l.orderkey=o.orderkey]"]
    (may wrap across lines for long predicate/projection lists). *)

val pp : ?indent:int -> Format.formatter -> t -> unit
(** Indented tree rendering with per-node locations. *)

val to_string : t -> string
(** {!pp} to a string. *)

val count_ops : t -> int
(** Number of operators in the tree, SHIPs included. *)

val to_dot : t -> string
(** Graphviz rendering, operators clustered by execution site and SHIP
    edges highlighted. *)

val with_ships : t -> t
(** Insert a [Ship] between every child/parent pair at different
    locations. The input tree has locations but no [Ship] nodes. *)
