(* The one deterministic seed: explicit argument > CGQP_SEED > 42. *)

let env_var = "CGQP_SEED"
let default = 42

let override () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let resolve ?cli () =
  match cli with
  | Some s -> s
  | None -> ( match override () with Some s -> s | None -> default)
