open Relalg

let value = Alcotest.testable Value.pp Value.equal

let test_compare_numeric () =
  Alcotest.(check int) "int order" (-1) (compare (Value.compare (Value.Int 1) (Value.Int 2)) 0);
  Alcotest.(check bool) "mixed int/float eq" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "mixed int/float lt" true
    (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  Alcotest.(check bool) "null sorts first" true
    (Value.compare Value.Null (Value.Int min_int) < 0)

let test_hash_consistent () =
  (* equal values must hash equal, incl. across Int/Float *)
  Alcotest.(check int) "int/float hash" (Value.hash (Value.Int 42))
    (Value.hash (Value.Float 42.0))

let test_arith () =
  Alcotest.check value "add" (Value.Int 7) (Value.add (Value.Int 3) (Value.Int 4));
  Alcotest.check value "promote" (Value.Float 7.5) (Value.add (Value.Int 3) (Value.Float 4.5));
  Alcotest.check value "null absorbs" Value.Null (Value.mul Value.Null (Value.Int 3));
  Alcotest.check value "div by zero" Value.Null (Value.div (Value.Int 1) (Value.Int 0));
  Alcotest.check value "int div is exact" (Value.Float 2.5)
    (Value.div (Value.Int 5) (Value.Int 2))

let test_dates () =
  Alcotest.(check (option int)) "epoch" (Some 0) (Value.date_of_string "1970-01-01");
  Alcotest.(check (option int)) "day two" (Some 1) (Value.date_of_string "1970-01-02");
  (match Value.date_of_string "1995-03-15" with
  | Some d -> Alcotest.(check string) "round trip" "1995-03-15" (Value.date_to_string d)
  | None -> Alcotest.fail "parse failed");
  Alcotest.(check (option int)) "bad month" None (Value.date_of_string "1995-13-01");
  Alcotest.(check (option int)) "garbage" None (Value.date_of_string "hello");
  (* leap year round trip *)
  (match Value.date_of_string "2000-02-29" with
  | Some d -> Alcotest.(check string) "leap" "2000-02-29" (Value.date_to_string d)
  | None -> Alcotest.fail "leap parse failed")

let test_byte_width () =
  Alcotest.(check int) "int width" 8 (Value.byte_width (Value.Int 5));
  Alcotest.(check int) "str width" 9 (Value.byte_width (Value.Str "hello"))

let prop_date_roundtrip =
  QCheck.Test.make ~name:"date round-trips through string" ~count:500
    QCheck.(int_range (-100_000) 100_000)
    (fun d ->
      match Value.date_of_string (Value.date_to_string d) with
      | Some d' -> d = d'
      | None -> false)

let prop_compare_total_order =
  let gen =
    QCheck.oneof
      [
        QCheck.map (fun i -> Value.Int i) QCheck.small_signed_int;
        QCheck.map (fun f -> Value.Float f) (QCheck.float_bound_exclusive 1000.);
        QCheck.map (fun s -> Value.Str s) QCheck.small_printable_string;
        QCheck.always Value.Null;
      ]
  in
  QCheck.Test.make ~name:"compare is antisymmetric and transitive-ish" ~count:1000
    (QCheck.triple gen gen gen)
    (fun (a, b, c) ->
      let sgn x = Stdlib.compare x 0 in
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let () =
  Alcotest.run "value"
    [
      ( "value",
        [
          Alcotest.test_case "compare numeric" `Quick test_compare_numeric;
          Alcotest.test_case "hash consistency" `Quick test_hash_consistent;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "dates" `Quick test_dates;
          Alcotest.test_case "byte width" `Quick test_byte_width;
          QCheck_alcotest.to_alcotest prop_date_roundtrip;
          QCheck_alcotest.to_alcotest prop_compare_total_order;
        ] );
    ]
