(* A flat fork/join pool over OCaml 5 domains for the serving layer's
   recording pass (docs/PARALLELISM.md).

   Determinism comes from the *static* work assignment: task [i] always
   runs on worker [i mod domains], and worker [w]'s trace events carry
   domain tag [w], so the merged trace and every per-task result are
   independent of how the OS actually interleaves the domains. The pool
   is deliberately not work-stealing — stealing would trade determinism
   of the assignment for load balance, and the scheduler's tasks
   (whole-session replays) are numerous enough that round-robin
   balances fine. *)

let default_domains () =
  match Sys.getenv_opt "CGQP_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "CGQP_DOMAINS=%S: expected a positive integer" s))

let map ~domains (tasks : (unit -> 'a) array) : 'a array =
  if domains < 1 then invalid_arg "Pool.map: domains must be positive";
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let domains = min domains n in
    (* Workers park results (or the exception a task raised) into
       distinct slots; [Domain.join] gives the happens-before edge that
       makes every slot visible to the caller. *)
    let results : ('a, Printexc.raw_backtrace * exn) result option array =
      Array.make n None
    in
    let run_worker w =
      let i = ref w in
      while !i < n do
        results.(!i) <-
          Some
            (try Ok (tasks.(!i) ())
             with e -> Error (Printexc.get_raw_backtrace (), e));
        i := !i + domains
      done
    in
    if domains = 1 then run_worker 0
    else begin
      let spawned =
        Array.init (domains - 1) (fun k ->
            Domain.spawn (fun () ->
                Obs.Trace.set_domain_tag (k + 1);
                run_worker (k + 1)))
      in
      (* the calling domain is worker 0 — it works instead of idling at
         the join *)
      run_worker 0;
      Array.iter Domain.join spawned
    end;
    (* Re-raise the failure of the lowest-indexed failing task (again:
       deterministic, however the domains raced). *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (bt, e)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end
