(** Minimal CSV reading (RFC 4180 quoting) for bringing external data
    into the engine. Values are typed per declared column; empty fields
    read as NULL. *)

open Relalg

exception Error of string

val parse_fields : string -> string list list
(** Raw records of fields. *)

val value_of_string : Value.ty -> string -> Value.t
(** Raises {!Error} on type mismatches. *)

val parse :
  schema:Attr.t list -> types:Value.ty list -> ?header:bool -> string -> Relation.t
(** [header] (default true) skips the first record. *)

val load_file :
  schema:Attr.t list -> types:Value.ty list -> ?header:bool -> string -> Relation.t
