(* Literal normalization for template plan caching: rewrite eligible
   equality constants in a SELECT's WHERE clause into a parameter
   vector, rendering a canonical template with '?' placeholders. The
   eligibility rules (and why each one is load-bearing for the
   byte-identity contract) are documented in normalizer.mli and
   docs/FEEDBACK.md. *)

open Relalg

type param = { column : string; value : Value.t }
type t = { template : string; params : param list }

(* Keywords of the SQL subset (plus aggregate names): never column
   candidates. *)
let reserved =
  [
    "select"; "from"; "where"; "group"; "order"; "having"; "limit"; "by";
    "as"; "and"; "or"; "not"; "like"; "in"; "is"; "null"; "between";
    "asc"; "desc"; "distinct"; "date"; "aggregates";
    "sum"; "avg"; "min"; "max"; "count";
  ]

let is_reserved s = List.mem s reserved

(* Section enders: the WHERE clause runs to the first of these (the
   subset has no subqueries, so a flat scan is exact). *)
let ends_where = function
  | Lexer.Ident ("group" | "order" | "having" | "limit") -> true
  | Lexer.Eof -> true
  | _ -> false

(* The value the parser will bind for this literal token (see
   Parser.literal_of_string: date-shaped strings become dates). *)
let lit_value = function
  | Lexer.Int_lit v -> Some (Value.Int v)
  | Lexer.Float_lit f -> Some (Value.Float f)
  | Lexer.String_lit s ->
    Some
      (match Value.date_of_string s with
      | Some d -> Value.Date d
      | None -> Value.Str s)
  | _ -> None

(* Canonical token rendering. Distinct constants must render to
   distinct text (a collision would silently merge two different
   statements into one template), hence %.17g for floats — exact
   round-trip, unlike %g. *)
let render_tok b = function
  | Lexer.Ident s -> Buffer.add_string b s
  | Lexer.Int_lit v -> Buffer.add_string b (string_of_int v)
  | Lexer.Float_lit f -> Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Lexer.String_lit s ->
    Buffer.add_char b '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
      s;
    Buffer.add_char b '\''
  | Lexer.Star -> Buffer.add_char b '*'
  | Lexer.Comma -> Buffer.add_char b ','
  | Lexer.Dot -> Buffer.add_char b '.'
  | Lexer.Lparen -> Buffer.add_char b '('
  | Lexer.Rparen -> Buffer.add_char b ')'
  | Lexer.Plus -> Buffer.add_char b '+'
  | Lexer.Minus -> Buffer.add_char b '-'
  | Lexer.Slash -> Buffer.add_char b '/'
  | Lexer.Eq -> Buffer.add_char b '='
  | Lexer.Neq -> Buffer.add_string b "<>"
  | Lexer.Lt -> Buffer.add_char b '<'
  | Lexer.Le -> Buffer.add_string b "<="
  | Lexer.Gt -> Buffer.add_char b '>'
  | Lexer.Ge -> Buffer.add_string b ">="
  | Lexer.Eof -> ()

let normalize sql =
  match Lexer.tokenize sql with
  | exception Lexer.Error _ -> None
  | [] -> None
  | Lexer.Ident "select" :: _ as toks -> (
    let arr = Array.of_list toks in
    let n = Array.length arr in
    (* locate the WHERE section *)
    let where_at = ref (-1) in
    (try
       for i = 0 to n - 1 do
         if arr.(i) = Lexer.Ident "where" then begin
           where_at := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !where_at < 0 then None
    else begin
      let where_start = !where_at + 1 in
      let where_end = ref n in
      (try
         for i = where_start to n - 1 do
           if ends_where arr.(i) then begin
             where_end := i;
             raise Exit
           end
         done
       with Exit -> ());
      let where_end = !where_end in
      let disqualified = ref false in
      for i = where_start to where_end - 1 do
        match arr.(i) with
        | Lexer.Ident ("or" | "not" | "between") -> disqualified := true
        | _ -> ()
      done;
      if !disqualified then None
      else begin
        (* occurrence count of every identifier over the whole
           statement — the single-occurrence rule counts SELECT list,
           GROUP BY and ORDER BY uses too *)
        let counts = Hashtbl.create 16 in
        Array.iter
          (function
            | Lexer.Ident s ->
              Hashtbl.replace counts s
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))
            | _ -> ())
          arr;
        let once c = Hashtbl.find_opt counts c = Some 1 in
        let b = Buffer.create (String.length sql) in
        let first = ref true in
        let sep () = if !first then first := false else Buffer.add_char b ' ' in
        let emit tok = sep (); render_tok b tok in
        let emit_param () = sep (); Buffer.add_char b '?' in
        let params = ref [] in
        let push c v = params := { column = c; value = v } :: !params in
        let in_where i len = i >= where_start && i + len <= where_end in
        let i = ref 0 in
        while !i < n do
          let consumed =
            if not (in_where !i 3) then 0
            else
              match
                ( arr.(!i),
                  (if !i + 1 < n then arr.(!i + 1) else Lexer.Eof),
                  (if !i + 2 < n then arr.(!i + 2) else Lexer.Eof),
                  (if !i + 3 < n then arr.(!i + 3) else Lexer.Eof),
                  (if !i + 4 < n then arr.(!i + 4) else Lexer.Eof) )
              with
              (* t.c = lit *)
              | Lexer.Ident t, Lexer.Dot, Lexer.Ident c, Lexer.Eq, lit
                when in_where !i 5 && (not (is_reserved c)) && once c
                     && lit_value lit <> None ->
                emit (Lexer.Ident t);
                emit Lexer.Dot;
                emit (Lexer.Ident c);
                emit Lexer.Eq;
                emit_param ();
                push c (Option.get (lit_value lit));
                5
              (* c = lit *)
              | Lexer.Ident c, Lexer.Eq, lit, _, _
                when (not (is_reserved c)) && once c && lit_value lit <> None
                ->
                emit (Lexer.Ident c);
                emit Lexer.Eq;
                emit_param ();
                push c (Option.get (lit_value lit));
                3
              (* lit = t.c *)
              | lit, Lexer.Eq, Lexer.Ident t, Lexer.Dot, Lexer.Ident c
                when in_where !i 5 && (not (is_reserved c)) && once c
                     && lit_value lit <> None ->
                emit_param ();
                push c (Option.get (lit_value lit));
                emit Lexer.Eq;
                emit (Lexer.Ident t);
                emit Lexer.Dot;
                emit (Lexer.Ident c);
                5
              (* lit = c *)
              | lit, Lexer.Eq, Lexer.Ident c, after, _
                when (not (is_reserved c)) && after <> Lexer.Dot
                     && once c && lit_value lit <> None ->
                emit_param ();
                push c (Option.get (lit_value lit));
                emit Lexer.Eq;
                emit (Lexer.Ident c);
                3
              | _ -> 0
          in
          if consumed = 0 then begin
            emit arr.(!i);
            incr i
          end
          else i := !i + consumed
        done;
        match List.rev !params with
        | [] -> None
        | params -> Some { template = Buffer.contents b; params }
      end
    end)
  | _ -> None
