(* Logical query plans. A [Scan] references a *global* table name plus
   the alias used in the query; the catalog later resolves it to a
   database/location (or to a union of partitions, cf. §7.5). *)

type t =
  | Scan of { table : string; alias : string }
  | Select of Pred.t * t
  | Project of (Expr.scalar * Attr.t) list * t  (* expr AS attr *)
  | Join of Pred.t * t * t
  | Aggregate of aggregate
  | Union of t list  (* bag union of union-compatible inputs *)

and aggregate = { keys : Attr.t list; aggs : Expr.agg list; input : t }

let rec compare a b =
  let c = Int.compare (rank a) (rank b) in
  if c <> 0 then c
  else
    match a, b with
    | Scan s1, Scan s2 ->
      let c = String.compare s1.table s2.table in
      if c <> 0 then c else String.compare s1.alias s2.alias
    | Select (p1, i1), Select (p2, i2) ->
      let c = Pred.compare_pred p1 p2 in
      if c <> 0 then c else compare i1 i2
    | Project (xs1, i1), Project (xs2, i2) ->
      let cmp_item (e1, n1) (e2, n2) =
        let c = Expr.compare_scalar e1 e2 in
        if c <> 0 then c else Attr.compare n1 n2
      in
      let c = List.compare cmp_item xs1 xs2 in
      if c <> 0 then c else compare i1 i2
    | Join (p1, l1, r1), Join (p2, l2, r2) ->
      let c = Pred.compare_pred p1 p2 in
      if c <> 0 then c
      else
        let c = compare l1 l2 in
        if c <> 0 then c else compare r1 r2
    | Aggregate a1, Aggregate a2 ->
      let c = List.compare Attr.compare a1.keys a2.keys in
      if c <> 0 then c
      else
        let cmp_agg (x : Expr.agg) (y : Expr.agg) =
          let c = Stdlib.compare x.Expr.fn y.Expr.fn in
          if c <> 0 then c
          else
            let c = Expr.compare_scalar x.arg y.arg in
            if c <> 0 then c else String.compare x.alias y.alias
        in
        let c = List.compare cmp_agg a1.aggs a2.aggs in
        if c <> 0 then c else compare a1.input a2.input
    | Union xs1, Union xs2 -> List.compare compare xs1 xs2
    | (Scan _ | Select _ | Project _ | Join _ | Aggregate _ | Union _), _ -> 0

and rank = function
  | Scan _ -> 0
  | Select _ -> 1
  | Project _ -> 2
  | Join _ -> 3
  | Aggregate _ -> 4
  | Union _ -> 5

let equal a b = compare a b = 0

(* Aliases of all base relations referenced in the subtree, mapped to
   their global table names. *)
let rec base_tables = function
  | Scan { table; alias } -> [ (alias, table) ]
  | Select (_, i) | Project (_, i) -> base_tables i
  | Join (_, l, r) -> base_tables l @ base_tables r
  | Aggregate { input; _ } -> base_tables input
  | Union xs -> List.concat_map base_tables xs

(* All selection/join predicates in the subtree, conjoined. *)
let rec all_preds = function
  | Scan _ -> Pred.True
  | Select (p, i) -> Pred.conj p (all_preds i)
  | Project (_, i) -> all_preds i
  | Join (p, l, r) -> Pred.conj p (Pred.conj (all_preds l) (all_preds r))
  | Aggregate { input; _ } -> all_preds input
  | Union xs -> List.fold_left (fun acc x -> Pred.conj acc (all_preds x)) Pred.True xs

(* Names of the columns produced by the plan, in order. Scans cannot be
   resolved without a catalog, so the caller provides the column list of
   each base table via [table_cols]. *)
let rec output_cols ~(table_cols : string -> string list) = function
  | Scan { table; alias } ->
    List.map (fun c -> Attr.make ~rel:alias ~name:c) (table_cols table)
  | Select (_, i) -> output_cols ~table_cols i
  | Project (items, _) -> List.map snd items
  | Join (_, l, r) -> output_cols ~table_cols l @ output_cols ~table_cols r
  | Aggregate { keys; aggs; _ } ->
    keys @ List.map (fun (a : Expr.agg) -> Attr.unqualified a.alias) aggs
  | Union (x :: _) -> output_cols ~table_cols x
  | Union [] -> []

let rec pp ?(indent = 0) ppf plan =
  let pad = String.make indent ' ' in
  match plan with
  | Scan { table; alias } ->
    if table = alias then Fmt.pf ppf "%sScan %s" pad table
    else Fmt.pf ppf "%sScan %s AS %s" pad table alias
  | Select (p, i) -> Fmt.pf ppf "%sSelect [%a]@.%a" pad Pred.pp p (pp ~indent:(indent + 2)) i
  | Project (items, i) ->
    let pp_item ppf (e, n) =
      match e with
      | Expr.Col a when Attr.equal a n -> Expr.pp_scalar ppf e
      | _ -> Fmt.pf ppf "%a AS %a" Expr.pp_scalar e Attr.pp n
    in
    Fmt.pf ppf "%sProject [%a]@.%a" pad Fmt.(list ~sep:comma pp_item) items
      (pp ~indent:(indent + 2))
      i
  | Join (p, l, r) ->
    Fmt.pf ppf "%sJoin [%a]@.%a@.%a" pad Pred.pp p (pp ~indent:(indent + 2)) l
      (pp ~indent:(indent + 2))
      r
  | Aggregate { keys; aggs; input } ->
    Fmt.pf ppf "%sAggregate [keys: %a; aggs: %a]@.%a" pad
      Fmt.(list ~sep:comma Attr.pp)
      keys
      Fmt.(list ~sep:comma Expr.pp_agg)
      aggs
      (pp ~indent:(indent + 2))
      input
  | Union xs ->
    Fmt.pf ppf "%sUnion@.%a" pad Fmt.(list ~sep:(any "@.") (pp ~indent:(indent + 2))) xs

let to_string plan = Fmt.str "%a" (pp ~indent:0) plan

(* Number of join operators, the paper's query-complexity measure. *)
let rec join_count = function
  | Scan _ -> 0
  | Select (_, i) | Project (_, i) -> join_count i
  | Join (_, l, r) -> 1 + join_count l + join_count r
  | Aggregate { input; _ } -> join_count input
  | Union xs -> List.fold_left (fun acc x -> acc + join_count x) 0 xs
