(** Observability: structured tracing, metrics, and their JSON codec.

    This library is the telemetry backbone of the system. It is
    deliberately dependency-free (stdlib only) so that every other
    layer — optimizer, policy evaluator, executor, CLI, bench — can
    emit events and counters without introducing cycles.

    Three sub-modules:

    - {!Json}: a minimal JSON value type with a printer and parser,
      sufficient for the trace/metrics export formats (round-trips its
      own output; not a general-purpose JSON library).
    - {!Trace}: a typed event tracer — spans and instants with
      attributes, buffered in a bounded ring. {b Off by default}; when
      disabled every emission is a single flag test, so instrumented
      hot paths stay at their un-instrumented speed and produce
      byte-identical results (locked in by [test/test_obs.ml]'s
      differential tests).
    - {!Metrics}: a global registry of monotonic counters, histograms
      and sampled gauges with Prometheus-style labels. Always on
      (increments are a few nanoseconds); rendered as text or dumped
      as JSON.

    Both {!Trace} and {!Metrics} are domain-safe: counters are atomics,
    histograms are sharded per domain and merged on read, and each
    domain traces into its own ring buffer, merged deterministically by
    (domain tag, per-domain sequence). The contract is spelled out in
    [docs/PARALLELISM.md]; the event schema and metric naming
    convention in [docs/TRACING.md]. *)

(** Minimal JSON values, printer and parser. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering. Integral [Num]s print without a decimal
      point; strings are escaped per RFC 8259 (double-quote,
      backslash, control characters). *)

  val of_string : string -> (t, string) result
  (** Parse a single JSON value; [Error msg] carries the byte offset
      of the failure. Accepts everything {!to_string} emits. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] on anything else. *)
end

(** Typed event tracing: spans + instants in a bounded ring buffer. *)
module Trace : sig
  type kind =
    | Begin  (** span start *)
    | End  (** span end (matches the most recent unmatched [Begin]) *)
    | Instant  (** point event *)

  type event = {
    seq : int;
        (** per-domain emission index, monotonically increasing within
            one domain tag *)
    ts_ms : float;  (** milliseconds since {!enable} (see {!set_clock}) *)
    kind : kind;
    name : string;  (** dotted event name, e.g. ["memo.explore"] *)
    depth : int;  (** span-nesting depth at emission (per domain) *)
    dom : int;
        (** domain tag the event was emitted from: 0 for the main
            domain, whatever {!set_domain_tag} installed elsewhere (the
            serving pool tags its workers 1..N) *)
    attrs : (string * Json.t) list;  (** event attributes *)
  }

  val enabled : unit -> bool
  (** Whether events are being recorded. Instrumentation sites guard
      attribute construction on this, so a disabled tracer costs one
      load per site. *)

  val enable : ?capacity:int -> unit -> unit
  (** Start recording, each domain into a fresh ring of [capacity]
      events (default 65536). When a ring is full the {e oldest} events
      of that domain are dropped and {!dropped} counts them. Call from
      the main domain with no worker emitting. *)

  val disable : unit -> unit
  (** Stop recording. Buffered events remain readable. *)

  val clear : unit -> unit
  (** Drop all buffered events and reset [seq], depth and the drop
      counter in every domain (recording state is unchanged). Call from
      the main domain with no worker emitting. *)

  val set_domain_tag : int -> unit
  (** Set the calling domain's tag, stamped into {!event.dom} and used
      as the major key when {!events} merges the per-domain buffers.
      The main domain defaults to [0]; a worker pool should tag its
      workers with distinct, deterministically assigned values (the
      serving pool uses 1..N by worker index) so merged traces are
      reproducible. *)

  val set_clock : (unit -> float) -> unit
  (** Replace the timestamp source (milliseconds, monotone). The
      default is [Sys.time () *. 1000.] — process CPU time, which
      keeps this library dependency-free; a caller with [unix] linked
      can install a wall clock. Tests install a deterministic
      counter. *)

  val now_ms : unit -> float
  (** Read the current clock (independent of {!enabled}). *)

  val instant : string -> (string * Json.t) list -> unit
  (** Emit a point event. No-op when disabled. *)

  val span : string -> ?attrs:(string * Json.t) list -> (unit -> 'a) -> 'a
  (** [span name f] runs [f ()] bracketed by a [Begin]/[End] pair;
      the [End] carries a ["dur_ms"] attribute (and ["error"] if [f]
      raised — the exception is re-raised). When disabled this is
      exactly [f ()]. *)

  val events : unit -> event list
  (** Buffered events from every domain, merged by (domain tag,
      per-domain [seq]) — a deterministic order whenever work is
      assigned to tags deterministically. Read after joining any worker
      domains; reading while workers emit is racy. *)

  val dropped : unit -> int
  (** Events evicted from the rings (all domains) since the last
      {!clear}. *)

  val event_to_json : event -> Json.t
  val event_of_json : Json.t -> (event, string) result

  val to_jsonl : unit -> string
  (** All buffered events, one JSON object per line (the [--trace]
      export format). *)

  val write_jsonl : out_channel -> unit

  val pp_event : Format.formatter -> event -> unit
  (** One-line human-readable rendering. *)
end

(** Global metrics registry: counters, histograms, gauges.

    Instruments are registered (get-or-create) under a name plus an
    optional label set, following the naming convention documented in
    [docs/TRACING.md]: [cgqp_<subsystem>_<quantity>[_<unit>]], with
    [_total] suffix for monotonic counters. *)
module Metrics : sig
  type counter
  type histogram

  val counter : ?labels:(string * string) list -> string -> counter
  (** Get-or-create the monotonic counter registered under
      [name]/[labels] (label order is irrelevant). Raises
      [Invalid_argument] if [name]/[labels] is already registered as a
      different instrument kind. *)

  val inc : ?by:int -> counter -> unit
  (** Add [by] (default 1) to the counter. Lock-free (one atomic
      fetch-and-add); safe from any domain. *)

  val value : counter -> int

  val histogram :
    ?labels:(string * string) list -> ?buckets:float list -> string -> histogram
  (** Get-or-create a histogram. [buckets] are inclusive upper bounds
      of the counting buckets (an implicit [+inf] bucket is always
      appended); the default is a decade ladder from [0.001] to
      [10000] suited to millisecond latencies. Bucket bounds are fixed
      at first registration. *)

  val observe : histogram -> float -> unit
  (** Record one observation, into the calling domain's shard (no
      locking on the hot path; readers merge the shards). *)

  val hist_count : histogram -> int
  (** Number of observations. *)

  val hist_sum : histogram -> float
  (** Sum of all observed values. *)

  val gauge : ?labels:(string * string) list -> string -> (unit -> float) -> unit
  (** Register (or replace) a sampled gauge: the callback is invoked
      at {!dump}/{!render} time. Used to expose externally-owned
      state, e.g. the intern-pool sizes and hit counts. *)

  val reset : unit -> unit
  (** Zero every counter and histogram (registrations and gauge
      callbacks are kept). Intended for tests and bench isolation. *)

  val dump : unit -> Json.t
  (** The whole registry as one JSON object
      [{"counters": [...]; "histograms": [...]; "gauges": [...]}],
      instruments sorted by name then labels — the [--metrics] /
      [CGQP_METRICS_OUT] export format. *)

  val render : Format.formatter -> unit -> unit
  (** Human-readable table of every instrument with a nonzero value
      (and all gauges). *)
end
