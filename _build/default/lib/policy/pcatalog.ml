(* The policy catalog (Figure 2): all policy expressions in force,
   indexed by the table they govern. *)

module String_map = Map.Make (String)

type t = {
  by_table : Expression.t list String_map.t;
  all : Expression.t list;
}

let empty = { by_table = String_map.empty; all = [] }

let make (exprs : Expression.t list) : t =
  let by_table =
    List.fold_left
      (fun m e ->
        String_map.update e.Expression.table
          (function None -> Some [ e ] | Some es -> Some (es @ [ e ]))
          m)
      String_map.empty exprs
  in
  { by_table; all = exprs }

let of_texts (cat : Catalog.t) (texts : string list) : t =
  make (List.map (Expression.parse cat) texts)

let for_table t name =
  match String_map.find_opt (String.lowercase_ascii name) t.by_table with
  | Some es -> es
  | None -> []

let all t = t.all
let size t = List.length t.all

let pp ppf t =
  Fmt.(list ~sep:(any "@.") Expression.pp) ppf t.all
