lib/policy/implication.ml: Attr Expr List Pred Relalg Value
