(** Deterministic logical rewrites applied before memo exploration.

    Selection pushdown distributes WHERE conjuncts to the deepest
    operator they can sit on; column pruning wraps every scan in a
    projection keeping only the columns the plan uses — the paper's
    "masking via projection" (a restricted column that is never
    referenced disappears before any SHIP could expose it). *)

open Relalg

val pushdown : table_cols:(string -> string list) -> Plan.t -> Plan.t
(** Distribute each WHERE conjunct to the deepest operator whose
    schema covers it. [table_cols] resolves a table's column list (the
    catalog's view, for expanding [*]). *)

val prune_columns : table_cols:(string -> string list) -> Plan.t -> Plan.t
(** Wrap every scan in a projection keeping only the columns the plan
    references above it. *)

val normalize : table_cols:(string -> string list) -> Plan.t -> Plan.t
(** [pushdown] followed by [prune_columns]. *)

val canon : Plan.t -> Plan.t
(** Canonical representative used as memo-group identity: join trees are
    flattened and rebuilt left-deep over sorted leaves with the full
    join predicate on top; conjunct and key lists are sorted. Plans
    related by join commutativity/associativity share one
    representative. *)
