examples/tpch_demo.ml: Array Cgqp Exec Fmt List Optimizer Storage Sys Tpch
