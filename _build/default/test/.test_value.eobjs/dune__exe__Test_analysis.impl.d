test/test_analysis.ml: Alcotest Catalog List Policy Relalg String Tpch
