test/test_pplan.mli:
