(* Engine selection: the compiling executor ([Compile]) is the default;
   the tree-walking interpreter ([Interp]) stays available as the
   reference engine for differential testing and debugging, and the
   vectorized executor ([Vector]) runs batch-at-a-time over the
   column-major storage. All three are byte-identical on results, SHIP
   accounting and profiles. *)

type t = Reference | Compiled | Vector

let to_string = function
  | Reference -> "reference"
  | Compiled -> "compiled"
  | Vector -> "vector"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "reference" | "interp" | "interpreter" -> Some Reference
  | "compiled" | "compile" -> Some Compiled
  | "vector" | "vectorized" -> Some Vector
  | _ -> None

let default () =
  match Sys.getenv_opt "CGQP_ENGINE" with
  | None | Some "" -> Compiled
  | Some s -> (
    match of_string s with
    | Some e -> e
    | None ->
      invalid_arg
        (Printf.sprintf
           "CGQP_ENGINE=%S: expected \"reference\", \"compiled\" or \"vector\"" s))

let run ?(engine = Compiled) ?faults ?retry ?budget ~network ~db ~table_cols
    plan =
  match engine with
  | Reference -> Interp.run ?faults ?retry ?budget ~network ~db ~table_cols plan
  | Compiled -> Compile.run ?faults ?retry ?budget ~network ~db ~table_cols plan
  | Vector -> Vector.run ?faults ?retry ?budget ~network ~db ~table_cols plan
