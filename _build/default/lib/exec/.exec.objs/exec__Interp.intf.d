lib/exec/interp.mli: Catalog Pplan Storage
