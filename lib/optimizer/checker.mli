(** Compliance certification of a {e placed} physical plan
    (Definition 1 of the paper, checked through the trait derivation
    underlying Theorem 1).

    Used both to re-certify the compliant optimizer's output
    independently of the memo, and to classify the traditional
    optimizer's plans as C/NC in the experiments (Fig. 5(a),
    Fig. 6). *)

open Relalg

type violation = {
  at : string;  (** pretty-printed shipped operator *)
  from_loc : Catalog.Location.t;
  to_loc : Catalog.Location.t;
  allowed : Catalog.Location.Set.t;  (** the shipped subtree's 𝒮 *)
}

val pp_violation : Format.formatter -> violation -> unit
(** One-line human-readable rendering (also used by the CLI and the
    EXPLAIN annotations). *)

val logical_of : Exec.Pplan.t -> Plan.t
(** Reconstruct the logical expression of a physical subtree (SHIP
    operators are transparent). *)

val certify :
  cat:Catalog.t -> policies:Policy.Pcatalog.t -> Exec.Pplan.t -> violation list
(** All SHIP edges whose destination lies outside the shipped subtree's
    shipping trait; empty means compliant. *)

val is_compliant :
  cat:Catalog.t -> policies:Policy.Pcatalog.t -> Exec.Pplan.t -> bool
