(* Cardinality feedback store: per-table accumulators of the global
   row count implied by executed scans, folded into a fresh catalog
   once the evidence is strong enough. See feedback.mli and
   docs/FEEDBACK.md. *)

type acc = { mutable n : int; mutable sum : float }

type t = {
  min_obs : int;
  threshold : float;
  tables : (string, acc) Hashtbl.t;
  mutable observations : int;
  mutable folds : int;
}

let c_observations = Obs.Metrics.counter "cgqp_feedback_observations_total"
let c_folds = Obs.Metrics.counter "cgqp_feedback_folds_total"

let create ?(min_obs = 3) ?(threshold = 0.5) () =
  if min_obs <= 0 then invalid_arg "Feedback.create: min_obs must be positive";
  if threshold < 0. then
    invalid_arg "Feedback.create: threshold must be non-negative";
  { min_obs; threshold; tables = Hashtbl.create 16; observations = 0; folds = 0 }

let observe t ~cat ~plan ~profile =
  (* per-node profiles are keyed by tree path (child indices from the
     root), the same convention EXPLAIN ANALYZE matches on *)
  let idx = Hashtbl.create 32 in
  List.iter
    (fun (p : Exec.Interp.node_profile) -> Hashtbl.replace idx p.path p)
    profile;
  let rec walk ~path (pl : Exec.Pplan.t) =
    (match pl.Exec.Pplan.node with
    | Exec.Pplan.Table_scan { table; partition; _ } -> (
      match Hashtbl.find_opt idx (List.rev path) with
      | None -> ()
      | Some prof -> (
        match List.nth_opt (Catalog.placements cat table) partition with
        | Some plc when plc.Catalog.fraction > 0. ->
          let implied =
            float_of_int prof.Exec.Interp.actual_rows /. plc.Catalog.fraction
          in
          let a =
            match Hashtbl.find_opt t.tables table with
            | Some a -> a
            | None ->
              let a = { n = 0; sum = 0. } in
              Hashtbl.add t.tables table a;
              a
          in
          a.n <- a.n + 1;
          a.sum <- a.sum +. implied;
          t.observations <- t.observations + 1;
          Obs.Metrics.inc c_observations
        | _ -> ()))
    | _ -> ());
    List.iteri (fun i c -> walk ~path:(i :: path) c) pl.Exec.Pplan.children
  in
  walk ~path:[] plan

let fold t cat =
  (* deterministic sweep: candidate selection and the rebuild both
     follow Catalog.all_tables order, never Hashtbl order *)
  let entries = Catalog.all_tables cat in
  let updates =
    List.filter_map
      (fun (e : Catalog.entry) ->
        let name = e.def.Catalog.Table_def.name in
        match Hashtbl.find_opt t.tables name with
        | Some a when a.n >= t.min_obs ->
          let mean = a.sum /. float_of_int a.n in
          let cur = float_of_int e.def.Catalog.Table_def.row_count in
          if Float.abs (mean -. cur) > t.threshold *. Float.max cur 1.0 then
            Some (name, max 1 (int_of_float (Float.round mean)))
          else None
        | _ -> None)
      entries
  in
  if updates = [] then None
  else begin
    let tables' =
      List.map
        (fun (e : Catalog.entry) ->
          let def = e.def in
          let def =
            match List.assoc_opt def.Catalog.Table_def.name updates with
            | Some rows -> { def with Catalog.Table_def.row_count = rows }
            | None -> def
          in
          (def, e.placements))
        entries
    in
    List.iter (fun (name, _) -> Hashtbl.remove t.tables name) updates;
    t.folds <- t.folds + 1;
    Obs.Metrics.inc c_folds;
    if Obs.Trace.enabled () then
      Obs.Trace.instant "feedback.fold"
        [
          ("tables", Obs.Json.Num (float_of_int (List.length updates)));
          ( "names",
            Obs.Json.Str (String.concat "," (List.map fst updates)) );
        ];
    Some (Catalog.make ~network:(Catalog.network cat) tables')
  end

let observations t = t.observations
let folds t = t.folds

let converged t ~actual =
  Hashtbl.fold
    (fun name a ok ->
      ok
      &&
      if a.n < t.min_obs then true
      else
        match actual name with
        | None -> true
        | Some rows ->
          let cur = float_of_int rows in
          Float.abs ((a.sum /. float_of_int a.n) -. cur)
          <= t.threshold *. Float.max cur 1.0)
    t.tables true

let pending t =
  Hashtbl.fold
    (fun name a acc ->
      if a.n > 0 then (name, a.n, a.sum /. float_of_int a.n) :: acc else acc)
    t.tables []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
