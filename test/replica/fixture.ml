(* Shared fixture for the replica suite: the chaos shape (two tables
   over three regions, deterministic data) extended with replica sets.
   The geography reads as jurisdictions — NA, EU, AS — so the
   data-domiciling scenarios state their intent directly: customer
   lives in NA, orders live in EU, and copies placed elsewhere are
   only readable where the policies say the data may go. *)

open Relalg

let locations = [ "AS"; "EU"; "NA" ]

let default_links =
  [ ("NA", "EU", 50., 1e-3); ("NA", "AS", 80., 2e-3); ("EU", "AS", 60., 1.5e-3) ]

let copy ?pin ?(lag = 0.) site = { Catalog.site; lag_ms = lag; pin }

let catalog ?(links = default_links) ?(replicas = []) () =
  let open Catalog.Table_def in
  let customer =
    make ~name:"customer" ~key:[ "custkey" ] ~row_count:20 ()
      ~columns:
        [
          column ~stat:{ default_stat with distinct = 20 } "custkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 20; width = 12 } "name" Value.Tstr;
          column ~stat:{ default_stat with distinct = 10 } "acctbal" Value.Tint;
        ]
  in
  let orders =
    make ~name:"orders" ~key:[ "ordkey" ] ~row_count:60 ()
      ~columns:
        [
          column ~stat:{ default_stat with distinct = 20 } "custkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 60 } "ordkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 40 } "totprice" Value.Tint;
        ]
  in
  let network = Catalog.Network.make ~locations ~links () in
  let cat =
    Catalog.make ~network
      [
        (customer, [ { Catalog.db = "d1"; location = "NA"; fraction = 1.0 } ]);
        (orders, [ { Catalog.db = "d2"; location = "EU"; fraction = 1.0 } ]);
      ]
  in
  match replicas with [] -> cat | rs -> Catalog.with_replicas cat rs

(* Routes exist around any single failure. Policies cover the full row
   of each table: replica eligibility is judged on the scan group,
   which produces every stored column, so a policy that omits a column
   keeps every non-primary copy compliance-ineligible (the conservative
   reading documented in docs/REPLICA.md). *)
let open_policies =
  [
    "ship custkey, name, acctbal from customer to EU, AS";
    "ship custkey, ordkey, totprice from orders to NA, AS";
  ]

(* customer rows may only leave NA for EU: the domiciling policy the
   scenario pack revolves around. *)
let strict_policies = [ "ship custkey, name, acctbal from customer to EU" ]

(* The churn regime that moves customer processing to AS instead. *)
let as_policies =
  [
    "ship custkey, name, acctbal from customer to AS";
    "ship custkey, ordkey, totprice from orders to AS";
  ]

let data cat =
  let g = Storage.Prng.create ~seed:7 in
  let db = Storage.Database.create () in
  let add name rows =
    let schema =
      List.map (fun c -> Attr.make ~rel:name ~name:c) (Catalog.table_cols cat name)
    in
    Storage.Database.add db ~table:name
      (Storage.Relation.make ~schema ~rows:(Array.of_list rows))
  in
  add "customer"
    (List.init 20 (fun i ->
         [| Value.Int i; Value.Str (Printf.sprintf "c%02d" i); Value.Int (100 * i) |]));
  add "orders"
    (List.init 60 (fun i ->
         [| Value.Int (i mod 20); Value.Int i; Value.Int (10 + Storage.Prng.int g 90) |]));
  db

let q =
  "SELECT c.name, SUM(o.totprice) FROM customer AS c, orders AS o \
   WHERE c.custkey = o.custkey GROUP BY c.name"

let session ?(policies = open_policies) ?links ?replicas () =
  let cat = catalog ?links ?replicas () in
  let s = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies s policies;
  Cgqp.attach_database s (data cat);
  s

(* Canonical row image: sorted, floats rounded — order- and
   plan-independent. *)
let canon rel =
  Storage.Relation.rows rel |> Array.to_list
  |> List.map (fun row ->
         Array.to_list row
         |> List.map (function
              | Value.Float f -> Value.Float (Float.round (f *. 1e4) /. 1e4)
              | v -> v))
  |> List.sort (List.compare Value.compare)

(* Every scan site in an executed plan, with its table. *)
let scan_sites plan =
  let rec go (n : Exec.Pplan.t) acc =
    let acc =
      match n.Exec.Pplan.node with
      | Exec.Pplan.Table_scan { table; _ } -> (table, n.Exec.Pplan.loc) :: acc
      | _ -> acc
    in
    List.fold_left (fun acc c -> go c acc) acc n.Exec.Pplan.children
  in
  List.sort compare (go plan [])
