(* EXPLAIN / EXPLAIN ANALYZE rendering. A pure function of the
   optimizer output (plus, optionally, the executor's per-node
   profile): no clocks, no global state — the same plan always renders
   the same text, which the golden tests lock in. *)

(* Operator labels come from [Fmt] and may contain line breaks when a
   predicate or projection list is long; EXPLAIN is strictly one line
   per node, so flatten them. *)
let label node =
  String.map (fun c -> if c = '\n' then ' ' else c) (Exec.Pplan.node_label node)

let fmt_bytes b =
  if b < 1024. then Printf.sprintf "%.0f B" b
  else if b < 1024. *. 1024. then Printf.sprintf "%.1f KiB" (b /. 1024.)
  else Printf.sprintf "%.1f MiB" (b /. (1024. *. 1024.))

(* Actual rows/bytes per plan position, from the interpreter profile. *)
let profile_index (r : Exec.Interp.result) =
  let tbl : (int list, Exec.Interp.node_profile) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (p : Exec.Interp.node_profile) -> Hashtbl.replace tbl p.path p) r.profile;
  tbl

(* The checker reports a violation as (shipped operator, endpoints);
   match each SHIP node against the not-yet-consumed violations so two
   identical ships with one violation do not both get flagged. *)
let take_violation pending ~from_loc ~to_loc ~at =
  let rec go acc = function
    | [] -> None
    | (v : Checker.violation) :: rest ->
      if
        String.equal v.from_loc from_loc
        && String.equal v.to_loc to_loc
        && String.equal v.at at
      then begin
        pending := List.rev_append acc rest;
        Some v
      end
      else go (v :: acc) rest
  in
  go [] !pending

(* What the degradation path did to finish a run: how many times the
   session re-planned around a permanent failure, and which topology it
   masked while doing so. Rendered as a footer only when non-trivial so
   healthy-run goldens are unaffected. *)
type recovery = {
  failovers : int;
  masked_links : (Catalog.Location.t * Catalog.Location.t) list;
  masked_sites : Catalog.Location.t list;
  masked_replicas : (string * Catalog.Location.t) list;
}

let no_recovery =
  { failovers = 0; masked_links = []; masked_sites = []; masked_replicas = [] }

(* Primary placement site of a scan — the baseline against which a
   replica read is annotated. [None] when no catalog was supplied or
   the lookup fails (stale catalog): annotations just stay silent. *)
let primary_of cat ~table ~partition =
  Option.bind cat (fun cat ->
      match List.nth_opt (Catalog.resolve cat ~table) partition with
      | Some (p : Catalog.placement) -> Some p.Catalog.location
      | None | (exception Invalid_argument _) -> None)

let render ?analyze ?(recovery = no_recovery) ?cat (p : Planner.planned) : string =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* --- header --- *)
  (match p.violations with
  | [] -> pr "compliant plan\n"
  | vs ->
    pr "NON-COMPLIANT plan (%d violation%s)\n" (List.length vs)
      (if List.length vs = 1 then "" else "s"));
  pr "phase-1 cost %.0f | est. ship cost %.2f ms | memo groups %d\n" p.phase1_cost
    p.ship_cost p.groups;
  pr "policy evaluation: eta %d, implication tests %d\n"
    p.eval_stats.Policy.Evaluator.eta p.eval_stats.Policy.Evaluator.implication_tests;
  let ps = p.prune_stats in
  if ps.Memo.bound < Float.infinity then
    pr "pruning: bound %.0f, pruned %d groups / %d entries / %d combos\n"
      ps.Memo.bound ps.Memo.groups_pruned ps.Memo.entries_pruned ps.Memo.combos_pruned
  else pr "pruning: bound not seeded\n";
  pr "\n";
  (* --- operator tree --- *)
  let profiles = Option.map profile_index analyze in
  let actual path = Option.bind profiles (fun t -> Hashtbl.find_opt t path) in
  let pending = ref p.violations in
  let rec walk ~prefix ~connector ~path (n : Exec.Pplan.t) =
    let act = actual (List.rev path) in
    let annot =
      match n.Exec.Pplan.node with
      | Exec.Pplan.Ship { from_loc; to_loc } ->
        let est = Printf.sprintf "est %s" (fmt_bytes (Exec.Pplan.est_bytes n)) in
        let act_part =
          match act with
          | Some { Exec.Interp.ship = Some s; _ } ->
            (* the attempts note only appears on retried ships, so
               fault-free transcripts render exactly as before *)
            let retried =
              if s.Exec.Interp.attempts > 1 then
                Printf.sprintf ", %d attempts" s.Exec.Interp.attempts
              else ""
            in
            Printf.sprintf "; act %d rows, %s, %.2f ms%s" s.Exec.Interp.rows
              (fmt_bytes (float_of_int s.Exec.Interp.bytes))
              s.Exec.Interp.cost_ms retried
          | Some _ | None -> ""
        in
        let at =
          match n.Exec.Pplan.children with
          | c :: _ -> Exec.Pplan.node_label c.Exec.Pplan.node
          | [] -> ""
        in
        let verdict =
          match take_violation pending ~from_loc ~to_loc ~at with
          | Some v ->
            Printf.sprintf "  [VIOLATION: allowed {%s}]"
              (String.concat ", " (Catalog.Location.Set.elements v.Checker.allowed))
          | None -> "  [ok]"
        in
        (* which copy a shipped scan actually read, and whether the
           degradation path switched replica to get there; silent
           unless the catalog offers a real choice (two or more
           copies), so singleton replica sets render byte-identically
           to an unreplicated catalog *)
        let rec shipped_scan (n : Exec.Pplan.t) =
          match (n.Exec.Pplan.node, n.Exec.Pplan.children) with
          | Exec.Pplan.Table_scan { table; partition; _ }, _ ->
            Some (table, partition, n.Exec.Pplan.loc)
          | _, [ c ] -> shipped_scan c
          | _, _ -> None
        in
        let replica_note =
          match Option.bind (List.nth_opt n.Exec.Pplan.children 0) shipped_scan with
          | Some (table, partition, scan_loc)
            when Option.fold ~none:false
                   ~some:(fun c ->
                     match Catalog.replicas c ~table ~partition with
                     | [] | [ _ ] -> false
                     | _ -> true)
                   cat ->
            let switched =
              match
                List.find_opt
                  (fun (t, s) ->
                    String.equal t (String.lowercase_ascii table)
                    && not (String.equal s scan_loc))
                  recovery.masked_replicas
              with
              | Some (_, s) -> Printf.sprintf ", switched from %s" s
              | None -> ""
            in
            Printf.sprintf "  [read replica %s%s]" scan_loc switched
          | _ -> ""
        in
        Printf.sprintf "  (%s%s)%s%s" est act_part verdict replica_note
      | _ ->
        let est = Printf.sprintf "est %.0f rows" n.Exec.Pplan.est.Exec.Pplan.est_rows in
        let act_part =
          match act with
          | Some a -> Printf.sprintf ", act %d rows" a.Exec.Interp.actual_rows
          | None -> ""
        in
        (* a scan reading a non-primary copy says so *)
        let replica_part =
          match n.Exec.Pplan.node with
          | Exec.Pplan.Table_scan { table; partition; _ } -> (
            match primary_of cat ~table ~partition with
            | Some primary when not (String.equal primary n.Exec.Pplan.loc) ->
              Printf.sprintf "  [replica of %s]" primary
            | _ -> "")
          | _ -> ""
        in
        Printf.sprintf " @ %s  (%s%s)%s" n.Exec.Pplan.loc est act_part replica_part
    in
    pr "%s%s%s%s\n" prefix connector (label n.Exec.Pplan.node) annot;
    let child_prefix =
      if connector = "" then prefix
      else prefix ^ if connector = "└─ " then "   " else "│  "
    in
    let last = List.length n.Exec.Pplan.children - 1 in
    List.iteri
      (fun i c ->
        walk ~prefix:child_prefix
          ~connector:(if i = last then "└─ " else "├─ ")
          ~path:(i :: path) c)
      n.Exec.Pplan.children
  in
  walk ~prefix:"" ~connector:"" ~path:[] p.plan;
  (* --- analyze footer --- *)
  (match analyze with
  | None -> ()
  | Some (r : Exec.Interp.result) ->
    pr "\n";
    pr "execution: %d rows processed, %d ships, %s shipped, makespan %.2f ms\n"
      r.stats.Exec.Interp.rows_processed
      (List.length r.stats.Exec.Interp.ships)
      (fmt_bytes (float_of_int (Exec.Interp.total_ship_bytes r.stats)))
      r.makespan_ms;
    if r.stats.Exec.Interp.ship_retries > 0 then
      pr "retries: %d retried SHIP attempts, %s carried on the wire\n"
        r.stats.Exec.Interp.ship_retries
        (fmt_bytes (float_of_int (Exec.Interp.total_traffic_bytes r.stats))));
  if recovery.failovers > 0 then begin
    let masked =
      (match recovery.masked_links with
      | [] -> []
      | ls ->
        [
          "links "
          ^ String.concat ", " (List.map (fun (a, b) -> a ^ "<->" ^ b) ls);
        ])
      @ (match recovery.masked_sites with
        | [] -> []
        | ss -> [ "sites " ^ String.concat ", " ss ])
      @
      match recovery.masked_replicas with
      | [] -> []
      | rs ->
        [
          "replicas "
          ^ String.concat ", " (List.map (fun (t, s) -> t ^ "@" ^ s) rs);
        ]
    in
    pr "degraded: %d failover re-plan%s (masked %s)\n" recovery.failovers
      (if recovery.failovers = 1 then "" else "s")
      (String.concat "; " masked)
  end;
  Buffer.contents buf
