(* Replica-aware compliant placement: the data-domiciling scenario
   pack, plus the headline transparency and compliance properties
   (docs/REPLICA.md).

   - Scenarios (golden transcripts): an EU copy keeps EU-bound data in
     EU; a copy in the wrong jurisdiction is *refused* and the run
     aborts `Unsatisfiable rather than read it; a lagging replica fails
     over to a fresh compliant sibling; policy churn flips which copy
     is eligible mid-workload without ever serving a stale plan.
   - Properties: under random replica sets, random policies and ANY
     fault schedule, no executed plan violates a policy and no scan
     reads a site its table's policies do not certify; collapsing every
     replica set to its first copy reproduces the unreplicated
     session's transcripts byte-for-byte.
   - Fault DSL edge cases: zero-effect events, overlapping faults on
     one link, the replica-lag round trip.

   The qcheck generator PRNG is seeded from CGQP_SEED (default 42) so a
   CI failure replays locally. *)

module Fault = Catalog.Network.Fault

let replica_seed = Storage.Seed.resolve ()
let check_golden name expected actual = Alcotest.(check string) name expected actual

let explain_ok s q =
  match Cgqp.explain s q with
  | Ok t -> t
  | Error e -> Alcotest.failf "explain: %s" (Cgqp.error_to_string e)

let run_ok s q =
  match Cgqp.run s q with
  | Ok r -> r
  | Error e -> Alcotest.failf "run: %s" (Cgqp.error_to_string e)

let certified_clean s (plan : Exec.Pplan.t) =
  Optimizer.Checker.certify ~cat:(Cgqp.catalog s) ~policies:(Cgqp.policies s) plan = []

(* ---------------- catalog: replica sets behind the existing API ------ *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_with_replicas_validation () =
  let cat = Fixture.catalog () in
  expect_invalid "first copy must be the primary" (fun () ->
      Catalog.with_replicas cat [ ("customer", 0, [ Fixture.copy "EU" ]) ]);
  expect_invalid "unknown site" (fun () ->
      Catalog.with_replicas cat
        [ ("customer", 0, [ Fixture.copy "NA"; Fixture.copy "XX" ]) ]);
  expect_invalid "unknown pin" (fun () ->
      Catalog.with_replicas cat
        [ ("customer", 0, [ Fixture.copy "NA"; Fixture.copy ~pin:"XX" "EU" ]) ]);
  expect_invalid "partition out of range" (fun () ->
      Catalog.with_replicas cat [ ("customer", 5, [ Fixture.copy "NA" ]) ]);
  expect_invalid "negative lag" (fun () ->
      Catalog.with_replicas cat [ ("customer", 0, [ Fixture.copy ~lag:(-1.) "NA" ]) ]);
  expect_invalid "empty replica set" (fun () ->
      Catalog.with_replicas cat [ ("customer", 0, []) ])

let test_replica_accessors () =
  let cat = Fixture.catalog () in
  Alcotest.(check bool) "no replicas by default" false (Catalog.has_replicas cat);
  Alcotest.(check int) "empty list by default" 0
    (List.length (Catalog.replicas cat ~table:"customer" ~partition:0));
  let cat' =
    Catalog.with_replicas cat
      [ ("Customer", 0, [ Fixture.copy "NA"; Fixture.copy ~pin:"EU" "EU" ]) ]
  in
  Alcotest.(check bool) "attached" true (Catalog.has_replicas cat');
  Alcotest.(check int) "case-insensitive lookup" 2
    (List.length (Catalog.replicas cat' ~table:"CUSTOMER" ~partition:0));
  (match Catalog.replicas cat' ~table:"customer" ~partition:0 with
  | [ p; r ] ->
    Alcotest.(check string) "primary first" "NA" p.Catalog.site;
    Alcotest.(check (option string)) "pin survives" (Some "EU") r.Catalog.pin
  | _ -> Alcotest.fail "expected two copies");
  Alcotest.(check bool) "replica assignment takes a fresh stamp" true
    (Catalog.stamp cat <> Catalog.stamp cat');
  match Catalog.replica_map cat' with
  | [ ("customer", 0, [ _; _ ]) ] -> ()
  | _ -> Alcotest.fail "replica_map shape"

(* ---------------- scenario pack: data domiciling ---------------- *)

(* S1: EU-bound customer data gains an EU copy — the optimizer reads
   the copy in place of shipping NA -> EU, and the whole plan goes
   network-silent. *)

let golden_domicile =
  {|compliant plan
phase-1 cost 380 | est. ship cost 0.00 ms | memo groups 9
policy evaluation: eta 2, implication tests 2
pruning: bound 460, pruned 0 groups / 4 entries / 0 combos

Project [c.name, sum_totprice] @ EU  (est 20 rows)
└─ HashAgg [keys: c.name; aggs: sum(sum_totprice__p) AS sum_totprice] @ EU  (est 20 rows)
   └─ HashJoin [c.custkey=o.custkey] @ EU  (est 20 rows)
      ├─ Project [c.custkey, c.name] @ EU  (est 20 rows)
      │  └─ Scan customer as c [p0] @ EU  (est 20 rows)  [replica of NA]
      └─ HashAgg [keys: o.custkey; aggs: sum(o.totprice) AS sum_totprice__p] @ EU  (est 20 rows)
         └─ Project [o.custkey, o.totprice] @ EU  (est 60 rows)
            └─ Scan orders as o [p0] @ EU  (est 60 rows)
|}

let test_scenario_domicile () =
  let reps = [ ("customer", 0, [ Fixture.copy "NA"; Fixture.copy "EU" ]) ] in
  let s = Fixture.session ~policies:Fixture.strict_policies ~replicas:reps () in
  check_golden "EU-data-stays-in-EU explain" golden_domicile (explain_ok s Fixture.q);
  let baseline =
    run_ok (Fixture.session ~policies:Fixture.strict_policies ()) Fixture.q
  in
  let r = run_ok s Fixture.q in
  Alcotest.(check bool) "certified clean" true (certified_clean s r.Cgqp.plan);
  Alcotest.(check bool) "same answer as the unreplicated run" true
    (Fixture.canon r.Cgqp.relation = Fixture.canon baseline.Cgqp.relation);
  Alcotest.(check int) "customer read at EU, nothing crosses a border" 0
    r.Cgqp.shipped_bytes;
  Alcotest.(check bool) "unreplicated run did ship" true
    (baseline.Cgqp.shipped_bytes > 0);
  Alcotest.(check (list (pair string string))) "scan sites"
    [ ("customer", "EU"); ("orders", "EU") ]
    (Fixture.scan_sites r.Cgqp.plan)

(* S2: jurisdiction conflict. The only other copy of customer sits in
   AS, where the domiciling policy forbids customer rows; when the
   NA -> EU route dies, the run must abort rather than read the
   non-compliant copy. *)

let golden_conflict =
  "unsatisfiable under failures: no compliant plan survives the failure of NA \
   -> EU (link down): site selection found no feasible placement"

let test_scenario_conflict () =
  let reps = [ ("customer", 0, [ Fixture.copy "NA"; Fixture.copy "AS" ]) ] in
  let s = Fixture.session ~policies:Fixture.strict_policies ~replicas:reps () in
  Cgqp.set_faults s (Fault.make ~seed:5 [ Fault.Link_down ("NA", "EU") ]);
  (match Cgqp.run s Fixture.q with
  | Ok _ -> Alcotest.fail "expected `Unsatisfiable, got a result"
  | Error (`Unsatisfiable _ as e) ->
    check_golden "conflict aborts" golden_conflict (Cgqp.error_to_string e)
  | Error e -> Alcotest.failf "wrong error: %s" (Cgqp.error_to_string e));
  (* under policies that certify AS the very same failure fails over to
     the AS copy instead — the conflict was jurisdictional, not
     topological *)
  let s' = Fixture.session ~policies:Fixture.open_policies ~replicas:reps () in
  Cgqp.set_faults s' (Fault.make ~seed:5 [ Fault.Link_down ("NA", "EU") ]);
  let r = run_ok s' Fixture.q in
  Alcotest.(check int) "one failover" 1 r.Cgqp.recovery.Cgqp.failovers;
  Alcotest.(check bool) "certified clean" true (certified_clean s' r.Cgqp.plan);
  Alcotest.(check bool) "customer read from the AS copy" true
    (List.mem ("customer", "AS") (Fixture.scan_sites r.Cgqp.plan))

(* S3: replica lag. The planner picks the EU copy; execution discovers
   it is stale, masks that one copy and re-plans onto the fresh
   primary — a replica failover, not a site mask. *)

let golden_lag_analyze =
  {|compliant plan
phase-1 cost 380 | est. ship cost 50.40 ms | memo groups 9
policy evaluation: eta 2, implication tests 2
pruning: bound 460, pruned 0 groups / 4 entries / 0 combos

Project [c.name, sum_totprice] @ EU  (est 20 rows, act 20 rows)
└─ HashAgg [keys: c.name; aggs: sum(sum_totprice__p) AS sum_totprice] @ EU  (est 20 rows, act 20 rows)
   └─ HashJoin [c.custkey=o.custkey] @ EU  (est 20 rows, act 20 rows)
      ├─ SHIP NA -> EU  (est 400 B; act 20 rows, 300 B, 50.30 ms)  [ok]  [read replica NA, switched from EU]
      │  └─ Project [c.custkey, c.name] @ NA  (est 20 rows, act 20 rows)
      │     └─ Scan customer as c [p0] @ NA  (est 20 rows, act 20 rows)
      └─ HashAgg [keys: o.custkey; aggs: sum(o.totprice) AS sum_totprice__p] @ EU  (est 20 rows, act 20 rows)
         └─ Project [o.custkey, o.totprice] @ EU  (est 60 rows, act 60 rows)
            └─ Scan orders as o [p0] @ EU  (est 60 rows, act 60 rows)

execution: 260 rows processed, 1 ships, 300 B shipped, makespan 50.30 ms
degraded: 1 failover re-plan (masked replicas customer@EU)
|}

let test_scenario_lag_failover () =
  let reps = [ ("customer", 0, [ Fixture.copy "NA"; Fixture.copy "EU" ]) ] in
  let lag =
    Fault.make ~seed:5
      [ Fault.Replica_lag { table = "customer"; site = "EU"; lag_ms = 400. } ]
  in
  let s = Fixture.session ~policies:Fixture.strict_policies ~replicas:reps () in
  Cgqp.set_faults s lag;
  let r = run_ok s Fixture.q in
  Alcotest.(check int) "one failover" 1 r.Cgqp.recovery.Cgqp.failovers;
  Alcotest.(check (list (pair string string))) "the stale copy was masked"
    [ ("customer", "EU") ]
    r.Cgqp.recovery.Cgqp.masked_replicas;
  Alcotest.(check (list string)) "no site was masked" []
    r.Cgqp.recovery.Cgqp.masked_sites;
  Alcotest.(check bool) "fell back to the fresh primary" true
    (List.mem ("customer", "NA") (Fixture.scan_sites r.Cgqp.plan));
  let healthy =
    run_ok (Fixture.session ~policies:Fixture.strict_policies ()) Fixture.q
  in
  Alcotest.(check bool) "stale-failover answer equals healthy answer" true
    (Fixture.canon r.Cgqp.relation = Fixture.canon healthy.Cgqp.relation);
  let s' = Fixture.session ~policies:Fixture.strict_policies ~replicas:reps () in
  Cgqp.set_faults s' lag;
  match Cgqp.explain_analyze s' Fixture.q with
  | Error e -> Alcotest.failf "explain analyze: %s" (Cgqp.error_to_string e)
  | Ok t -> check_golden "lag-failover transcript" golden_lag_analyze t

(* S4: policy-churn storm. Flipping the domiciling regime mid-workload
   moves customer processing EU <-> AS; the plan cache never serves a
   plan certified under the other regime, and every executed plan is
   clean under the policies of its moment. *)

let test_scenario_policy_churn () =
  let reps =
    [ ("customer", 0, [ Fixture.copy "NA"; Fixture.copy "EU"; Fixture.copy "AS" ]) ]
  in
  let s = Fixture.session ~policies:Fixture.strict_policies ~replicas:reps () in
  Cgqp.set_plan_cache s (Some (Cgqp.Plan_cache.create ~capacity:32 ()));
  let baseline =
    Fixture.canon
      (run_ok (Fixture.session ~policies:Fixture.strict_policies ()) Fixture.q)
        .Cgqp.relation
  in
  let expected_site = function `Strict -> "EU" | `As -> "AS" in
  let regimes = [ `Strict; `As; `Strict; `As; `Strict; `As; `Strict; `As ] in
  List.iteri
    (fun i regime ->
      Cgqp.clear_policies s;
      Cgqp.add_policies s
        (match regime with
        | `Strict -> Fixture.strict_policies
        | `As -> Fixture.as_policies);
      let r = run_ok s Fixture.q in
      Alcotest.(check bool)
        (Printf.sprintf "storm step %d certified clean" i)
        true
        (certified_clean s r.Cgqp.plan);
      Alcotest.(check bool)
        (Printf.sprintf "storm step %d reads the regime's copy" i)
        true
        (List.mem ("customer", expected_site regime) (Fixture.scan_sites r.Cgqp.plan));
      Alcotest.(check bool)
        (Printf.sprintf "storm step %d answer unchanged" i)
        true
        (Fixture.canon r.Cgqp.relation = baseline))
    regimes;
  (* cache-on == cache-off: the cached transcript of each regime is the
     uncached one *)
  List.iter
    (fun (name, policies) ->
      Cgqp.clear_policies s;
      Cgqp.add_policies s policies;
      let uncached = Fixture.session ~policies ~replicas:reps () in
      check_golden
        (Printf.sprintf "cache transparency under %s" name)
        (explain_ok uncached Fixture.q) (explain_ok s Fixture.q))
    [ ("strict", Fixture.strict_policies); ("as", Fixture.as_policies) ]

(* ---------------- properties ---------------- *)

let gen_loc = QCheck.Gen.oneofl Fixture.locations
let gen_pair = QCheck.Gen.pair gen_loc gen_loc
let gen_table = QCheck.Gen.oneofl [ "customer"; "orders" ]

let gen_event =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun (a, b) -> Fault.Link_down (a, b)) gen_pair;
      QCheck.Gen.map (fun l -> Fault.Site_down l) gen_loc;
      QCheck.Gen.map2
        (fun (a, b) p -> Fault.Transient_drop { from_loc = a; to_loc = b; p })
        gen_pair
        (QCheck.Gen.float_bound_inclusive 1.0);
      QCheck.Gen.map2
        (fun (a, b) f -> Fault.Latency_mult { from_loc = a; to_loc = b; factor = f })
        gen_pair
        (QCheck.Gen.float_range 0.25 4.0);
      QCheck.Gen.map3
        (fun table site lag_ms -> Fault.Replica_lag { table; site; lag_ms })
        gen_table gen_loc
        (QCheck.Gen.oneofl [ 0.; 250. ]);
    ]

let gen_schedule =
  QCheck.Gen.map2
    (fun seed events -> Fault.make ~seed events)
    (QCheck.Gen.int_bound 1_000_000)
    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4) gen_event)

(* Policy regimes with their statically-known allowed destinations per
   table — what the compliance filter must never exceed. *)
let regimes =
  [
    ("open", Fixture.open_policies, [ ("customer", [ "EU"; "AS" ]); ("orders", [ "NA"; "AS" ]) ]);
    ("strict", Fixture.strict_policies, [ ("customer", [ "EU" ]); ("orders", []) ]);
    ( "both",
      Fixture.open_policies @ Fixture.strict_policies,
      [ ("customer", [ "EU"; "AS" ]); ("orders", [ "NA"; "AS" ]) ] );
  ]

let primaries = [ ("customer", "NA"); ("orders", "EU") ]

(* Random replica sets: primary first, then any subset of the other
   regions, each copy with a random pin. *)
let gen_replicas =
  let open QCheck.Gen in
  let gen_copy site =
    map
      (fun pin -> Fixture.copy ?pin site)
      (oneofl [ None; Some site; Some "NA" ])
  in
  let gen_for table =
    let primary = List.assoc table primaries in
    let others = List.filter (fun l -> l <> primary) Fixture.locations in
    let* attach = bool in
    if not attach then return None
    else
      let* extras = flatten_l (List.map gen_copy others) in
      let* keep = flatten_l (List.map (fun _ -> bool) extras) in
      let copies =
        Fixture.copy primary
        :: List.filteri (fun i _ -> List.nth keep i) extras
      in
      return (Some (table, 0, copies))
  in
  let* c = gen_for "customer" in
  let* o = gen_for "orders" in
  return (List.filter_map Fun.id [ c; o ])

let pp_replicas rs =
  String.concat "; "
    (List.map
       (fun (t, p, copies) ->
         Printf.sprintf "%s/%d=[%s]" t p
           (String.concat ","
              (List.map
                 (fun (r : Catalog.replica) ->
                   r.Catalog.site
                   ^ match r.Catalog.pin with None -> "" | Some x -> "^" ^ x)
                 copies)))
       rs)

let arb_chaos =
  QCheck.make
    ~print:(fun (rs, regime, sched) ->
      Printf.sprintf "replicas: %s | policies: %s | schedule:\n%s" (pp_replicas rs)
        regime (Fault.to_string sched))
    QCheck.Gen.(
      triple gen_replicas
        (oneofl (List.map (fun (n, _, _) -> n) regimes))
        gen_schedule)

let regime_policies name =
  let _, ps, _ = List.find (fun (n, _, _) -> n = name) regimes in
  ps

let regime_allowed name table =
  let _, _, allowed = List.find (fun (n, _, _) -> n = name) regimes in
  List.assoc table allowed

let healthy_baselines =
  lazy
    (List.map
       (fun (name, policies, _) ->
         match Cgqp.run (Fixture.session ~policies ()) Fixture.q with
         | Ok r -> (name, Fixture.canon r.Cgqp.relation)
         | Error e ->
           failwith (name ^ " healthy baseline failed: " ^ Cgqp.error_to_string e))
       regimes)

let prop_compliance_first =
  QCheck.Test.make ~count:320
    ~name:"random replicas + policies + any schedule: no non-compliant read or ship"
    arb_chaos (fun (replicas, regime, sched) ->
      let s =
        Fixture.session ~policies:(regime_policies regime)
          ~replicas:(match replicas with [] -> [] | rs -> rs)
          ()
      in
      Cgqp.set_faults s sched;
      match Cgqp.run s Fixture.q with
      | Error (`Unsatisfiable _) -> true
      | Error e ->
        QCheck.Test.fail_reportf "unexpected error: %s" (Cgqp.error_to_string e)
      | Ok r ->
        (match
           Optimizer.Checker.certify ~cat:(Cgqp.catalog s)
             ~policies:(Cgqp.policies s) r.Cgqp.plan
         with
        | [] -> ()
        | v :: _ ->
          QCheck.Test.fail_reportf "executed plan violates policy: %s"
            (Fmt.str "%a" Optimizer.Checker.pp_violation v));
        List.iter
          (fun (table, site) ->
            let primary = List.assoc table primaries in
            if site <> primary && not (List.mem site (regime_allowed regime table))
            then
              QCheck.Test.fail_reportf
                "%s scanned at %s, outside its policy destinations under %s"
                table site regime)
          (Fixture.scan_sites r.Cgqp.plan);
        List.for_all
          (fun (sr : Exec.Interp.ship_record) ->
            not (Fault.link_down sched ~from_loc:sr.from_loc ~to_loc:sr.to_loc))
          r.Cgqp.interp.Exec.Interp.stats.Exec.Interp.ships
        && Fixture.canon r.Cgqp.relation
           = List.assoc regime (Lazy.force healthy_baselines))

let singleton_replicas =
  List.map (fun (t, primary) -> (t, 0, [ Fixture.copy primary ])) primaries

let arb_collapse =
  QCheck.make
    ~print:(fun (regime, sched) ->
      Printf.sprintf "policies: %s | schedule:\n%s" regime (Fault.to_string sched))
    QCheck.Gen.(pair (oneofl (List.map (fun (n, _, _) -> n) regimes)) gen_schedule)

let run_image s =
  match Cgqp.run s Fixture.q with
  | Ok r ->
    Ok
      ( Fixture.canon r.Cgqp.relation,
        r.Cgqp.shipped_bytes,
        r.Cgqp.ship_cost_ms,
        r.Cgqp.makespan_ms,
        r.Cgqp.recovery,
        Fixture.scan_sites r.Cgqp.plan )
  | Error e -> Error (Cgqp.error_to_string e)

let prop_first_replica_collapse =
  QCheck.Test.make ~count:320
    ~name:"collapsing every replica set to its first copy is byte-transparent"
    arb_collapse (fun (regime, sched) ->
      let policies = regime_policies regime in
      let plain = Fixture.session ~policies () in
      let collapsed = Fixture.session ~policies ~replicas:singleton_replicas () in
      let e0 = Cgqp.explain plain Fixture.q in
      let e1 = Cgqp.explain collapsed Fixture.q in
      if e0 <> e1 then QCheck.Test.fail_report "healthy EXPLAIN diverged";
      Cgqp.set_faults plain sched;
      Cgqp.set_faults collapsed sched;
      if run_image plain <> run_image collapsed then
        QCheck.Test.fail_report "run outcome diverged";
      let a0 = Cgqp.explain_analyze plain Fixture.q in
      let a1 = Cgqp.explain_analyze collapsed Fixture.q in
      (match (a0, a1) with
      | Ok t0, Ok t1 when t0 <> t1 ->
        QCheck.Test.fail_reportf "EXPLAIN ANALYZE diverged:\n--- plain\n%s--- collapsed\n%s" t0 t1
      | Ok _, Error _ | Error _, Ok _ ->
        QCheck.Test.fail_report "one side failed, the other did not"
      | _ -> ());
      true)

(* ---------------- fault DSL edge cases ---------------- *)

let test_zero_effect_events () =
  let sched =
    Fault.make ~seed:3
      [
        Fault.Transient_drop { from_loc = "NA"; to_loc = "EU"; p = 0. };
        Fault.Latency_mult { from_loc = "NA"; to_loc = "EU"; factor = 1.0 };
        Fault.Replica_lag { table = "customer"; site = "EU"; lag_ms = 0. };
      ]
  in
  Alcotest.(check bool) "zero lag is not stale" false
    (Fault.replica_stale sched ~table:"customer" ~site:"EU");
  let s0 = Fixture.session () in
  let s1 = Fixture.session () in
  Cgqp.set_faults s1 sched;
  let r0 = run_ok s0 Fixture.q and r1 = run_ok s1 Fixture.q in
  Alcotest.(check bool) "same rows" true
    (Fixture.canon r0.Cgqp.relation = Fixture.canon r1.Cgqp.relation);
  Alcotest.(check int) "same bytes" r0.Cgqp.shipped_bytes r1.Cgqp.shipped_bytes;
  Alcotest.(check (float 1e-9)) "same cost" r0.Cgqp.ship_cost_ms r1.Cgqp.ship_cost_ms;
  Alcotest.(check (float 1e-9)) "same makespan" r0.Cgqp.makespan_ms r1.Cgqp.makespan_ms;
  Alcotest.(check int) "no failovers" 0 r1.Cgqp.recovery.Cgqp.failovers;
  Alcotest.(check int) "no retries" 0
    r1.Cgqp.interp.Exec.Interp.stats.Exec.Interp.ship_retries

let test_overlapping_faults_same_link () =
  let down = [ Fault.Link_down ("NA", "EU") ] in
  let overlap =
    down @ [ Fault.Latency_mult { from_loc = "NA"; to_loc = "EU"; factor = 3.0 } ]
  in
  let sched = Fault.make ~seed:3 overlap in
  Alcotest.(check bool) "link is down" true
    (Fault.link_down sched ~from_loc:"EU" ~to_loc:"NA");
  Alcotest.(check (float 1e-9)) "slowdown still reported" 3.0
    (Fault.latency_factor sched ~from_loc:"NA" ~to_loc:"EU");
  let s0 = Fixture.session () in
  let s1 = Fixture.session () in
  Cgqp.set_faults s0 (Fault.make ~seed:3 down);
  Cgqp.set_faults s1 sched;
  let r0 = run_ok s0 Fixture.q and r1 = run_ok s1 Fixture.q in
  Alcotest.(check bool) "down dominates its overlapping slow" true
    (Fixture.canon r0.Cgqp.relation = Fixture.canon r1.Cgqp.relation
    && r0.Cgqp.shipped_bytes = r1.Cgqp.shipped_bytes
    && r0.Cgqp.recovery = r1.Cgqp.recovery)

let test_replica_lag_dsl_round_trip () =
  let text = "seed 4\nreplica-lag customer EU 400\nreplica-lag orders AS 0\n" in
  (match Fault.parse text with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok s ->
    Alcotest.(check int) "two events" 2 (List.length (Fault.events s));
    Alcotest.(check bool) "positive lag is stale" true
      (Fault.replica_stale s ~table:"customer" ~site:"EU");
    Alcotest.(check bool) "table names are case-insensitive" true
      (Fault.replica_stale s ~table:"Customer" ~site:"EU");
    Alcotest.(check bool) "zero lag is fresh" false
      (Fault.replica_stale s ~table:"orders" ~site:"AS");
    Alcotest.(check bool) "other site untouched" false
      (Fault.replica_stale s ~table:"customer" ~site:"NA");
    (match Fault.parse (Fault.to_string s) with
    | Error m -> Alcotest.failf "re-parse failed: %s" m
    | Ok s' ->
      Alcotest.(check string) "round trip" (Fault.to_string s) (Fault.to_string s')));
  (match Fault.parse "replica-lag customer EU -1" with
  | Ok _ -> Alcotest.fail "negative lag must not parse"
  | Error m ->
    Alcotest.(check bool) "error names line 1" true
      (String.length m >= 7 && String.sub m 0 7 = "line 1:"));
  match Fault.parse "seed 1\nreplica-lag customer EU" with
  | Ok _ -> Alcotest.fail "missing lag must not parse"
  | Error m ->
    Alcotest.(check bool) "arity error names line 2" true
      (String.length m >= 7 && String.sub m 0 7 = "line 2:")

(* ---------------- cache key: the replica mask dimension -------------- *)

let test_mask_fingerprint_replicas () =
  let fp ?replicas ?(links = []) ?(sites = []) () =
    Cgqp.Plan_cache.mask_fingerprint ?replicas ~links ~sites ()
  in
  let healthy = fp () in
  Alcotest.(check bool) "a masked replica changes the key" true
    (fp ~replicas:[ ("customer", "EU") ] () <> healthy);
  Alcotest.(check int) "order-independent"
    (fp ~replicas:[ ("customer", "EU"); ("orders", "AS") ] ())
    (fp ~replicas:[ ("orders", "AS"); ("customer", "EU") ] ());
  Alcotest.(check bool) "replica mask is not a site mask" true
    (fp ~replicas:[ ("customer", "EU") ] () <> fp ~sites:[ "EU" ] ());
  Alcotest.(check bool) "table identity matters" true
    (fp ~replicas:[ ("customer", "EU") ] () <> fp ~replicas:[ ("orders", "EU") ] ());
  Alcotest.(check bool) "composes with link masks" true
    (fp ~replicas:[ ("customer", "EU") ] ~links:[ ("EU", "NA") ] ()
    <> fp ~links:[ ("EU", "NA") ] ())

(* ---------------- runner ---------------- *)

let () =
  Fmt.epr "replica seed: %d (set %s to replay)@." replica_seed Storage.Seed.env_var;
  let rand = Random.State.make [| replica_seed |] in
  Alcotest.run "replica"
    [
      ( "catalog",
        [
          Alcotest.test_case "with_replicas validation" `Quick
            test_with_replicas_validation;
          Alcotest.test_case "accessors" `Quick test_replica_accessors;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "EU data stays in EU" `Quick test_scenario_domicile;
          Alcotest.test_case "jurisdiction conflict aborts" `Quick
            test_scenario_conflict;
          Alcotest.test_case "replica-lag failover" `Quick test_scenario_lag_failover;
          Alcotest.test_case "policy-churn storm" `Quick test_scenario_policy_churn;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest ~rand prop_compliance_first;
          QCheck_alcotest.to_alcotest ~rand prop_first_replica_collapse;
        ] );
      ( "fault edges",
        [
          Alcotest.test_case "zero-effect events" `Quick test_zero_effect_events;
          Alcotest.test_case "overlapping faults on one link" `Quick
            test_overlapping_faults_same_link;
          Alcotest.test_case "replica-lag round trip" `Quick
            test_replica_lag_dsl_round_trip;
          Alcotest.test_case "mask fingerprint replicas" `Quick
            test_mask_fingerprint_replicas;
        ] );
    ]
