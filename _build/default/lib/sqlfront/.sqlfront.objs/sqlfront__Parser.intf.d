lib/sqlfront/parser.mli: Ast
