lib/optimizer/normalize.ml: Attr Expr List Plan Pred Relalg String
