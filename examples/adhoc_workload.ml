(* Ad-hoc workload demo (§7.1 / Fig. 6(a)): generates random PK–FK join
   queries spanning several locations plus generated policy-expression
   sets, and measures, per template, the fraction of queries for which
   each optimizer produces a compliant plan.

   Run with: dune exec examples/adhoc_workload.exe [-- <#queries>] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 40 in
  let cat = Tpch.Schema.catalog ~sf:10.0 () in
  let queries = Tpch.Workload.gen_queries ~seed:2026 ~n () in
  Fmt.pr "Generated %d ad-hoc queries; first three:@." n;
  List.iteri (fun i q -> if i < 3 then Fmt.pr "  %s@." q) queries;
  Fmt.pr "@.%-9s %-22s %-22s@." "template" "traditional compliant" "compliance-based";
  List.iter
    (fun template ->
      let n_expr = match template with Tpch.Policies.T -> 8 | _ -> 50 in
      let texts =
        Tpch.Workload.gen_expressions ~seed:11 ~template ~n:n_expr ()
      in
      let policies = Policy.Pcatalog.of_texts cat texts in
      let count mode =
        List.length
          (List.filter
             (fun sql ->
               match Optimizer.Planner.optimize_sql ~mode ~cat ~policies sql with
               | Optimizer.Planner.Planned p -> p.Optimizer.Planner.violations = []
               | Optimizer.Planner.Rejected _ -> false)
             queries)
      in
      let t = count Optimizer.Memo.Traditional in
      let c = count Optimizer.Memo.Compliant in
      Fmt.pr "%-9s %3d/%-3d (%4.0f%%)        %3d/%-3d (%4.0f%%)@."
        (Printf.sprintf "%s(%d)" (Tpch.Policies.set_name_to_string template) n_expr)
        t n
        (100. *. float_of_int t /. float_of_int n)
        c n
        (100. *. float_of_int c /. float_of_int n))
    Tpch.Policies.all_sets
