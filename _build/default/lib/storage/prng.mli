(** Deterministic splitmix64 pseudo-random generator.

    All data and workload generation goes through this module so that
    every experiment is reproducible from a seed; no ambient randomness
    is used anywhere in the repository. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises
    [Invalid_argument] for non-positive bounds. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_k : t -> int -> 'a list -> 'a list
(** [pick_k t k xs]: [k] distinct elements, in random order. *)

val shuffle : t -> 'a list -> 'a list

val split : t -> t
(** An independent generator derived from this one's state. *)
