(** Deterministic TPC-H-shaped data generator. Follows dbgen's value
    domains (names, segments, types, date ranges, pricing rules) closely
    enough that query selectivities behave like the original, while
    staying small and fully seeded. *)

open Relalg

(** dbgen value domains, exposed for the workload generators. *)

val regions : string list
val nations : (string * int) list
(** Nation name and region index. *)

val segments : string list
val priorities : string list
val type_syl1 : string list
val type_syl2 : string list
val type_syl3 : string list

type tables = {
  region : Value.t array array;
  nation : Value.t array array;
  supplier : Value.t array array;
  part : Value.t array array;
  partsupp : Value.t array array;
  customer : Value.t array array;
  orders : Value.t array array;
  lineitem : Value.t array array;
}

val generate : ?seed:int -> sf:float -> unit -> tables
(** Rows for all eight tables at scale factor [sf], deterministic in
    [seed] (default {!Storage.Seed.resolve}: the [CGQP_SEED]
    environment variable, else 42). Referential integrity holds across
    the tables. *)

val load : cat:Catalog.t -> tables -> Storage.Database.t
(** Load the rows into a database, splitting partitioned tables
    round-robin according to the catalog's placements. *)
