lib/optimizer/memo.ml: Attr Catalog Exec Expr Float Fmt Fun Hashtbl Lazy List Normalize Option Plan Policy Pred Printf Queue Relalg Stats Stdlib String Summary Value
