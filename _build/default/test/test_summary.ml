open Relalg

let table_cols = function
  | "customer" -> [ "custkey"; "name"; "acctbal"; "mktseg"; "region" ]
  | "orders" -> [ "custkey"; "ordkey"; "totprice" ]
  | "supply" -> [ "ordkey"; "quantity"; "extprice" ]
  | t -> Alcotest.failf "unknown table %s" t

let scan ?alias table =
  Plan.Scan { table; alias = Option.value alias ~default:table }

let col rel name = Expr.Col (Attr.make ~rel ~name)

let analyze = Summary.analyze ~table_cols

let find_out s name =
  match List.find_opt (fun (r : Summary.out_ref) -> r.name = name) s.Summary.outputs with
  | Some r -> r
  | None -> Alcotest.failf "output %s not found" name

let test_scan_summary () =
  let s = analyze (scan "customer") in
  Alcotest.(check int) "five outputs" 5 (List.length s.Summary.outputs);
  Alcotest.(check bool) "valid" true s.Summary.valid;
  Alcotest.(check bool) "not aggregate" false (Summary.is_aggregate s);
  let r = find_out s "acctbal" in
  Alcotest.(check int) "single source" 1 (List.length r.Summary.sources)

let test_project_provenance () =
  let plan =
    Plan.Project
      ( [ (col "c" "name", Attr.unqualified "n");
        (Expr.Binop (Expr.Add, col "c" "acctbal", col "c" "custkey"), Attr.unqualified "d") ],
        scan ~alias:"c" "customer" )
  in
  let s = analyze plan in
  let n = find_out s "n" in
  Alcotest.(check bool) "renamed keeps source" true
    (List.exists
       (fun (b : Summary.base_col) -> b.table = "customer" && b.column = "name")
       n.Summary.sources);
  let d = find_out s "d" in
  Alcotest.(check int) "derived has two sources" 2 (List.length d.Summary.sources);
  Alcotest.(check bool) "derived not opaque" false d.Summary.opaque

let test_select_normalizes_pred () =
  let plan =
    Plan.Select
      ( Pred.Atom (Pred.Cmp (Pred.Gt, col "c" "acctbal", Expr.Const (Value.Int 5))),
        scan ~alias:"c" "customer" )
  in
  let s = analyze plan in
  let cols = Pred.cols s.Summary.pred in
  Alcotest.(check bool) "pred over base columns" true
    (Attr.Set.mem (Attr.make ~rel:"customer" ~name:"acctbal") cols)

let test_aggregate_summary () =
  let plan =
    Plan.Aggregate
      {
        keys = [ Attr.make ~rel:"s" ~name:"ordkey" ];
        aggs = [ { Expr.fn = Expr.Sum; arg = col "s" "quantity"; alias = "q" } ];
        input = scan ~alias:"s" "supply";
      }
  in
  let s = analyze plan in
  Alcotest.(check bool) "aggregate" true (Summary.is_aggregate s);
  let k = find_out s "ordkey" in
  Alcotest.(check bool) "key flag" true k.Summary.group_key;
  let q = find_out s "q" in
  Alcotest.(check bool) "sum fn" true (q.Summary.agg = Some Expr.Sum)

let test_reaggregation_compose () =
  (* sum of partial sums stays sum; min of partial max is opaque *)
  let inner =
    Plan.Aggregate
      {
        keys = [ Attr.make ~rel:"s" ~name:"ordkey" ];
        aggs = [ { Expr.fn = Expr.Sum; arg = col "s" "quantity"; alias = "partial" } ];
        input = scan ~alias:"s" "supply";
      }
  in
  let outer fn =
    Plan.Aggregate
      {
        keys = [];
        aggs = [ { Expr.fn; arg = Expr.Col (Attr.unqualified "partial"); alias = "total" } ];
        input = inner;
      }
  in
  let s = analyze (outer Expr.Sum) in
  let t = find_out s "total" in
  Alcotest.(check bool) "sum.sum = sum" true (t.Summary.agg = Some Expr.Sum);
  Alcotest.(check bool) "still valid" true s.Summary.valid;
  let s2 = analyze (outer Expr.Avg) in
  let t2 = find_out s2 "total" in
  Alcotest.(check bool) "avg.sum opaque" true t2.Summary.opaque

let test_regroup_must_coarsen () =
  (* outer keys must be a subset of inner keys *)
  let inner =
    Plan.Aggregate
      {
        keys = [ Attr.make ~rel:"o" ~name:"custkey" ];
        aggs = [ { Expr.fn = Expr.Sum; arg = col "o" "totprice"; alias = "p" } ];
        input = scan ~alias:"o" "orders";
      }
  in
  let bad =
    Plan.Aggregate
      {
        keys = [ Attr.unqualified "p" ];
        aggs = [ { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1); alias = "c" } ];
        input = inner;
      }
  in
  let s = analyze bad in
  Alcotest.(check bool) "grouping by aggregate invalid" false s.Summary.valid

let test_join_summary () =
  let plan =
    Plan.Join
      ( Pred.Atom (Pred.Cmp (Pred.Eq, col "c" "custkey", col "o" "custkey")),
        scan ~alias:"c" "customer",
        scan ~alias:"o" "orders" )
  in
  let s = analyze plan in
  Alcotest.(check int) "outputs concat" 8 (List.length s.Summary.outputs);
  Alcotest.(check int) "two tables" 2 (List.length s.Summary.tables);
  Alcotest.(check bool) "join pred kept" true (s.Summary.pred <> Pred.True)

let test_join_above_aggregate_invalid () =
  let agg =
    Plan.Aggregate
      {
        keys = [ Attr.make ~rel:"o" ~name:"custkey" ];
        aggs = [ { Expr.fn = Expr.Sum; arg = col "o" "totprice"; alias = "p" } ];
        input = scan ~alias:"o" "orders";
      }
  in
  let plan =
    Plan.Join
      ( Pred.Atom (Pred.Cmp (Pred.Eq, col "c" "custkey", Expr.Col (Attr.make ~rel:"o" ~name:"custkey"))),
        scan ~alias:"c" "customer",
        agg )
  in
  (* the join references o.custkey which the aggregate renamed; the
     summary must be conservative *)
  let s = analyze plan in
  Alcotest.(check bool) "beyond SP/SPG" false s.Summary.valid

let test_opaque_compound_over_aggregate () =
  let agg =
    Plan.Aggregate
      {
        keys = [];
        aggs = [ { Expr.fn = Expr.Sum; arg = col "o" "totprice"; alias = "p" } ];
        input = scan ~alias:"o" "orders";
      }
  in
  let plan =
    Plan.Project
      ( [ (Expr.Binop (Expr.Mul, Expr.Col (Attr.unqualified "p"), Expr.Const (Value.Int 2)), Attr.unqualified "x") ],
        agg )
  in
  let s = analyze plan in
  let x = find_out s "x" in
  Alcotest.(check bool) "2*sum is opaque" true x.Summary.opaque

let test_count_star_no_sources () =
  let plan =
    Plan.Aggregate
      {
        keys = [];
        aggs = [ { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1); alias = "n" } ];
        input = scan "orders";
      }
  in
  let s = analyze plan in
  let n = find_out s "n" in
  Alcotest.(check int) "no sources" 0 (List.length n.Summary.sources);
  Alcotest.(check bool) "not opaque" false n.Summary.opaque

let () =
  Alcotest.run "summary"
    [
      ( "summary",
        [
          Alcotest.test_case "scan" `Quick test_scan_summary;
          Alcotest.test_case "project provenance" `Quick test_project_provenance;
          Alcotest.test_case "select normalizes" `Quick test_select_normalizes_pred;
          Alcotest.test_case "aggregate" `Quick test_aggregate_summary;
          Alcotest.test_case "re-aggregation" `Quick test_reaggregation_compose;
          Alcotest.test_case "regroup coarsens" `Quick test_regroup_must_coarsen;
          Alcotest.test_case "join" `Quick test_join_summary;
          Alcotest.test_case "join above agg" `Quick test_join_above_aggregate_invalid;
          Alcotest.test_case "opaque compound" `Quick test_opaque_compound_over_aggregate;
          Alcotest.test_case "count star" `Quick test_count_star_no_sources;
        ] );
    ]
