test/test_summary.ml: Alcotest Attr Expr List Option Plan Pred Relalg Summary Value
