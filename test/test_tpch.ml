(* TPC-H substrate tests: schema/catalog shape, deterministic data
   generation with referential integrity, query parsing, and the
   workload generators. *)

open Relalg

let cat = Tpch.Schema.catalog ()

let test_distribution_matches_table2 () =
  List.iter
    (fun (table, db, loc) ->
      match Catalog.placements cat table with
      | [ p ] ->
        Alcotest.(check string) (table ^ " db") db p.Catalog.db;
        Alcotest.(check string) (table ^ " loc") loc p.Catalog.location
      | _ -> Alcotest.failf "%s should have one placement" table)
    Tpch.Schema.distribution

let tiny = Tpch.Datagen.generate ~sf:0.002 ()

let test_datagen_shapes () =
  Alcotest.(check int) "regions" 5 (Array.length tiny.Tpch.Datagen.region);
  Alcotest.(check int) "nations" 25 (Array.length tiny.Tpch.Datagen.nation);
  Alcotest.(check bool) "lineitems per order 1..7" true
    (let n_ord = Array.length tiny.Tpch.Datagen.orders in
     let n_li = Array.length tiny.Tpch.Datagen.lineitem in
     n_li >= n_ord && n_li <= 7 * n_ord);
  Alcotest.(check int) "partsupp = 4x part" (4 * Array.length tiny.Tpch.Datagen.part)
    (Array.length tiny.Tpch.Datagen.partsupp)

let test_datagen_deterministic () =
  let a = Tpch.Datagen.generate ~seed:5 ~sf:0.002 () in
  let b = Tpch.Datagen.generate ~seed:5 ~sf:0.002 () in
  Alcotest.(check bool) "same data" true (a.Tpch.Datagen.orders = b.Tpch.Datagen.orders);
  let c = Tpch.Datagen.generate ~seed:6 ~sf:0.002 () in
  Alcotest.(check bool) "different seeds differ" true
    (c.Tpch.Datagen.orders <> a.Tpch.Datagen.orders)

let test_referential_integrity () =
  let n_cust = Array.length tiny.Tpch.Datagen.customer in
  let n_part = Array.length tiny.Tpch.Datagen.part in
  let n_supp = Array.length tiny.Tpch.Datagen.supplier in
  let n_ord = Array.length tiny.Tpch.Datagen.orders in
  Array.iter
    (fun row ->
      match row.(1) with
      | Value.Int ck ->
        if ck < 1 || ck > n_cust then Alcotest.failf "orders.custkey %d out of range" ck
      | _ -> Alcotest.fail "orders.custkey not an int")
    tiny.Tpch.Datagen.orders;
  Array.iter
    (fun row ->
      (match row.(0) with
      | Value.Int ok ->
        if ok < 1 || ok > n_ord then Alcotest.failf "lineitem.orderkey %d" ok
      | _ -> Alcotest.fail "orderkey");
      (match row.(1) with
      | Value.Int pk -> if pk < 1 || pk > n_part then Alcotest.failf "lineitem.partkey %d" pk
      | _ -> Alcotest.fail "partkey");
      match row.(2) with
      | Value.Int sk -> if sk < 1 || sk > n_supp then Alcotest.failf "lineitem.suppkey %d" sk
      | _ -> Alcotest.fail "suppkey")
    tiny.Tpch.Datagen.lineitem;
  Array.iter
    (fun row ->
      match row.(2) with
      | Value.Int nk -> if nk < 0 || nk > 24 then Alcotest.failf "nation.regionkey? %d" nk
      | _ -> ())
    tiny.Tpch.Datagen.supplier

let test_dates_in_range () =
  let lo = Option.get (Value.date_of_string "1992-01-01") in
  let hi = Option.get (Value.date_of_string "1998-12-31") in
  Array.iter
    (fun row ->
      match row.(4) with
      | Value.Date d ->
        if d < lo || d > hi then
          Alcotest.failf "orderdate out of range: %s" (Value.date_to_string d)
      | _ -> Alcotest.fail "orderdate not a date")
    tiny.Tpch.Datagen.orders

let test_load_partitions () =
  let pcat =
    Tpch.Schema.catalog ~partition_tables:[ "customer" ] ~partition_count:3 ()
  in
  let db = Tpch.Datagen.load ~cat:pcat tiny in
  let total =
    List.fold_left
      (fun acc i ->
        match Storage.Database.find db ~table:"customer" ~partition:i () with
        | Some r -> acc + Storage.Relation.cardinality r
        | None -> Alcotest.failf "missing partition %d" i)
      0 [ 0; 1; 2 ]
  in
  Alcotest.(check int) "partitions cover the table"
    (Array.length tiny.Tpch.Datagen.customer)
    total

let table_cols t =
  Option.map (fun e -> Catalog.Table_def.col_names e.Catalog.def) (Catalog.find_table cat t)

let test_queries_parse_and_bind () =
  List.iter
    (fun (name, sql) ->
      match Sqlfront.Binder.plan_of_sql ~table_cols sql with
      | plan ->
        Alcotest.(check bool) (name ^ " has joins") true (Plan.join_count plan >= 2)
      | exception e -> Alcotest.failf "%s failed: %s" name (Printexc.to_string e))
    Tpch.Queries.all

let test_extended_queries_parse_and_plan () =
  let pols = Tpch.Policies.catalog_of cat Tpch.Policies.CRA in
  List.iter
    (fun (name, sql) ->
      match Optimizer.Planner.optimize_sql ~cat ~policies:pols sql with
      | Optimizer.Planner.Planned p ->
        Alcotest.(check bool) (name ^ " compliant") true
          (p.Optimizer.Planner.violations = [])
      | Optimizer.Planner.Rejected r -> Alcotest.failf "%s rejected: %s" name r)
    Tpch.Queries.extended;
  Alcotest.(check int) "twelve queries total" 12 (List.length Tpch.Queries.all_extended)

let test_single_site_queries_ship_nothing () =
  (* Q1 and Q6 touch only lineitem: their plans must contain no SHIP *)
  let pols = Tpch.Policies.catalog_of cat Tpch.Policies.CRA in
  List.iter
    (fun name ->
      match Optimizer.Planner.optimize_sql ~cat ~policies:pols (Tpch.Queries.by_name name) with
      | Optimizer.Planner.Planned p ->
        Alcotest.(check int) (name ^ " no ships") 0
          (List.length (Exec.Pplan.ships p.Optimizer.Planner.plan))
      | Optimizer.Planner.Rejected r -> Alcotest.failf "%s rejected: %s" name r)
    [ "Q1"; "Q6" ]

let test_query_join_complexity () =
  let joins name = Plan.join_count (Sqlfront.Binder.plan_of_sql ~table_cols (Tpch.Queries.by_name name)) in
  (* the paper's complexity buckets: Q3/Q10 low, Q5/Q9 medium, Q2/Q8 high *)
  Alcotest.(check int) "Q3" 2 (joins "Q3");
  Alcotest.(check int) "Q10" 3 (joins "Q10");
  Alcotest.(check int) "Q5" 5 (joins "Q5");
  Alcotest.(check int) "Q9" 5 (joins "Q9");
  Alcotest.(check int) "Q8" 7 (joins "Q8");
  Alcotest.(check int) "Q2" 8 (joins "Q2")

let test_policy_sets_parse () =
  List.iter
    (fun set ->
      let pc = Tpch.Policies.catalog_of cat set in
      Alcotest.(check bool)
        (Tpch.Policies.set_name_to_string set ^ " non-empty")
        true
        (Policy.Pcatalog.size pc >= 8))
    Tpch.Policies.all_sets;
  Alcotest.(check int) "T has 8" 8 (List.length Tpch.Policies.set_t);
  Alcotest.(check int) "C has 10" 10 (List.length Tpch.Policies.set_c);
  Alcotest.(check int) "CR has 10" 10 (List.length Tpch.Policies.set_cr)

let test_workload_queries_valid () =
  let queries = Tpch.Workload.gen_queries ~seed:99 ~n:100 () in
  Alcotest.(check int) "100 queries" 100 (List.length queries);
  List.iter
    (fun sql ->
      match Sqlfront.Binder.plan_of_sql ~table_cols sql with
      | plan ->
        (* every ad-hoc query must span >= 2 locations (§7.1) *)
        let locs =
          Plan.base_tables plan
          |> List.map (fun (_, t) -> Catalog.home_location cat t)
          |> List.sort_uniq String.compare
        in
        Alcotest.(check bool) "spans locations" true (List.length locs >= 2)
      | exception e -> Alcotest.failf "generated query invalid: %s\n%s" (Printexc.to_string e) sql)
    queries

let test_workload_aggregate_share () =
  let queries = Tpch.Workload.gen_queries ~seed:7 ~n:200 () in
  let n_agg =
    List.length
      (List.filter
         (fun q ->
           let ast = Sqlfront.Parser.query q in
           Sqlfront.Ast.is_aggregate_query ast)
         queries)
  in
  (* ~30% aggregation queries (§7.1) *)
  Alcotest.(check bool) "aggregate share ~30%" true (n_agg > 30 && n_agg < 90)

let test_generated_expressions_parse () =
  List.iter
    (fun template ->
      let texts = Tpch.Workload.gen_expressions ~seed:3 ~template ~n:50 () in
      Alcotest.(check int) "50 expressions" 50 (List.length texts);
      List.iter
        (fun t ->
          match Policy.Expression.parse cat t with
          | _ -> ()
          | exception e ->
            Alcotest.failf "bad expression %S: %s" t (Printexc.to_string e))
        texts)
    Tpch.Policies.all_sets

let test_generated_cra_has_aggregates () =
  let texts = Tpch.Workload.gen_expressions ~seed:3 ~template:Tpch.Policies.CRA ~n:60 () in
  let n_agg =
    List.length
      (List.filter
         (fun t -> Policy.Expression.is_aggregate (Policy.Expression.parse cat t))
         texts)
  in
  Alcotest.(check bool) "some aggregate expressions" true (n_agg > 5)

let () =
  Alcotest.run "tpch"
    [
      ( "schema",
        [
          Alcotest.test_case "table 2 distribution" `Quick test_distribution_matches_table2;
          Alcotest.test_case "policy sets parse" `Quick test_policy_sets_parse;
        ] );
      ( "datagen",
        [
          Alcotest.test_case "shapes" `Quick test_datagen_shapes;
          Alcotest.test_case "deterministic" `Quick test_datagen_deterministic;
          Alcotest.test_case "referential integrity" `Quick test_referential_integrity;
          Alcotest.test_case "dates in range" `Quick test_dates_in_range;
          Alcotest.test_case "partitioned load" `Quick test_load_partitions;
        ] );
      ( "queries",
        [
          Alcotest.test_case "parse and bind" `Quick test_queries_parse_and_bind;
          Alcotest.test_case "join complexity" `Quick test_query_join_complexity;
          Alcotest.test_case "extended workload" `Quick test_extended_queries_parse_and_plan;
          Alcotest.test_case "single-site ship nothing" `Quick
            test_single_site_queries_ship_nothing;
        ] );
      ( "workload",
        [
          Alcotest.test_case "queries valid" `Quick test_workload_queries_valid;
          Alcotest.test_case "aggregate share" `Quick test_workload_aggregate_share;
          Alcotest.test_case "expressions parse" `Quick test_generated_expressions_parse;
          Alcotest.test_case "cra aggregates" `Quick test_generated_cra_has_aggregates;
        ] );
    ]
