(** Compliant geo-distributed query processing — the end-to-end system
    of the paper (Figure 2).

    A {!session} bundles the geo-distributed catalog, the policy catalog
    populated by the data officers' policy expressions, and (optionally)
    the physical data. Queries submitted as SQL are parsed, bound,
    optimized by the compliance-based two-phase optimizer, certified,
    and executed against the in-memory engine with simulated wide-area
    SHIP costs.

    {[
      let session = Cgqp.create ~catalog () in
      Cgqp.add_policies session
        [ "ship custkey, name from customer to Europe" ];
      match Cgqp.run session "SELECT ..." with
      | Ok r -> ...
      | Error (`Rejected reason) -> ...
    ]} *)

(** The policy-epoch plan cache (the serving layer's reuse of certified
    plans). Attach one with {!set_plan_cache}; policy mutations on the
    session bump its epoch automatically. *)
module Plan_cache : module type of Plan_cache

(** The cardinality-feedback store (est-vs-actual folding back into
    catalog statistics). Attach one with {!set_feedback}; see
    [docs/FEEDBACK.md]. *)
module Feedback : module type of Feedback

type session

type error =
  [ `Parse of string  (** SQL or policy syntax error *)
  | `Bind of string  (** unknown table/column, ambiguity *)
  | `Rejected of string
    (** no compliant plan exists — the "reject" arrow of Figure 2 *)
  | `Unsatisfiable of string
    (** a compliant plan existed, but no compliant alternative survives
        the permanent failures encountered at execution time. The
        degradation path never falls back to a non-compliant plan: it
        aborts instead. *) ]

type recovery = Optimizer.Explain.recovery = {
  failovers : int;  (** failover re-plans performed during the run *)
  masked_links : (Catalog.Location.t * Catalog.Location.t) list;
      (** undirected links masked as down while re-planning *)
  masked_sites : Catalog.Location.t list;
  masked_replicas : (string * Catalog.Location.t) list;
      (** (table, site) replicas masked as stale while re-planning —
          a stale copy fails over to a fresh compliant sibling before
          any whole-site mask is considered *)
}
(** What the degradation path did to complete a run (all zero/empty on
    a healthy run). *)

type run_result = {
  relation : Storage.Relation.t;  (** the query's answer *)
  plan : Exec.Pplan.t;  (** the executed placed plan *)
  ship_cost_ms : float;  (** simulated network cost actually incurred *)
  shipped_bytes : int;
  makespan_ms : float;  (** simulated response time (critical path) *)
  planned : Optimizer.Planner.planned;  (** full optimizer output *)
  interp : Exec.Interp.result;
      (** raw executor output, including the per-node profile that
          {!explain_analyze} renders *)
  recovery : recovery;
}

val create : ?database:Storage.Database.t -> catalog:Catalog.t -> unit -> session

val set_mode : session -> Optimizer.Memo.mode -> unit
(** Switch between the compliance-based optimizer (default) and the
    purely cost-based baseline. *)

val catalog : session -> Catalog.t

val set_catalog : session -> Catalog.t -> unit
(** Install a replacement catalog — the cardinality-feedback fold path
    ({!set_feedback}, [Service.Scheduler]). No epoch bump happens here:
    cache keys carry the catalog stamp, so entries certified under the
    old catalog can never be served; the feedback paths bump the epoch
    themselves (exactly once per fold) to purge them eagerly. *)

val policies : session -> Policy.Pcatalog.t

val set_faults : session -> Catalog.Network.Fault.schedule -> unit
(** Install the fault schedule {!run} executes under (default empty —
    and an empty schedule makes {!run} byte-identical to a session that
    never heard of faults). The planner stays oblivious: faults are
    runtime surprises, handled by retries and compliant failover. *)

val faults : session -> Catalog.Network.Fault.schedule

val set_retry : session -> Exec.Interp.retry_policy -> unit
(** Tune SHIP retry/backoff (default {!Exec.Interp.default_retry}). *)

val retry : session -> Exec.Interp.retry_policy

val set_engine : session -> Exec.Engine.t -> unit
(** Choose which executor {!run} uses: the compiling engine (default),
    the vectorized engine or the tree-walking reference interpreter.
    All three are byte-identical on results, SHIP accounting and
    profiles (see [docs/EXECUTOR.md]); sessions start from
    {!Exec.Engine.default}, which honors the [CGQP_ENGINE] environment
    variable. *)

val engine : session -> Exec.Engine.t

val set_mem_budget : session -> int option -> unit
(** Byte-accounted memory budget for the executor: hash join/aggregation
    spill to disk (Grace-style, byte-identical results — see
    [docs/STORAGE.md]) when their scratch state would trip it. [None]
    (the default) defers to the [CGQP_MEM_BUDGET] environment variable
    at execution time; [Some Exec.Runtime.unlimited_budget] disables
    accounting outright. *)

val mem_budget : session -> int option

val set_plan_cache : session -> Plan_cache.t option -> unit
(** Attach (or detach, with [None]) a plan cache. {!optimize} and
    {!run} then reuse certified optimizer outcomes keyed by
    (normalized SQL, policy fingerprint, catalog stamp, failover mask,
    mode); every policy mutation ({!add_policies}, {!clear_policies},
    {!set_policy_catalog}) bumps the cache's epoch, purging all
    entries. The cache may be shared between sessions — the serving
    layer's multi-tenant setup (see [docs/SERVICE.md]). Default:
    [None], the paper's one-shot behavior. *)

val plan_cache : session -> Plan_cache.t option

val set_template_cache : session -> bool -> unit
(** Enable template-level caching on the attached plan cache: lookups
    first try the literal-normalized template table
    ([Sqlfront.Normalizer] template + parameter fingerprint over the
    compliance-sensitive literals), falling back to the exact key. A
    template hit substitutes the bound literals into the stored plan
    and is byte-identical to a fresh optimization
    ([test/test_feedback.ml]'s transparency property). Defaults to the
    [CGQP_TEMPLATE_CACHE] environment variable; a no-op without an
    attached cache. *)

val template_cache : session -> bool

val set_feedback : session -> Feedback.t option -> unit
(** Attach (or detach) a cardinality-feedback store. After every
    successful {!run}, executed scan cardinalities are
    {!Feedback.observe}d; when {!Feedback.fold} fires, the corrected
    catalog replaces the session's ({!set_catalog}) and the attached
    plan cache's epoch is bumped exactly once (reason ["feedback"]),
    so subsequent submissions re-optimize under the corrected
    statistics. The serving scheduler wires a shared store across
    sessions itself — use [Service.Scheduler.env ?feedback] there. *)

val feedback : session -> Feedback.t option

val attach_database : session -> Storage.Database.t -> unit

val add_policies : session -> string list -> unit
(** Parse and install policy expressions (the data officer's offline
    step). Raises [Invalid_argument] on malformed statements.
    Idempotent for duplicate statements: structurally equal expressions
    are installed once, so re-adding a policy changes neither the
    catalog's fingerprint nor the evaluator's work. Bumps the attached
    plan cache's epoch. *)

val clear_policies : session -> unit

val set_policy_catalog : session -> Policy.Pcatalog.t -> unit
(** Install a pre-built policy catalog wholesale (e.g. one preprocessed
    by {!Policy.Negation}). *)

val plan_of_sql : session -> string -> (Relalg.Plan.t, error) result
(** Parse and bind only. *)

val optimize : session -> string -> (Optimizer.Planner.planned, error) result

val is_legal : session -> string -> bool
(** Does the query admit at least one compliant execution plan under
    the session's policies? *)

val run : session -> string -> (run_result, error) result
(** Optimize and execute. Requires an attached database.

    Execution runs under the session's fault schedule ({!set_faults}).
    Transient drops and timeouts are retried per {!retry}; when a SHIP
    fails permanently, the session masks the failed link or site,
    re-invokes the full compliance-based optimizer against the masked
    network, and fails over to the cheapest plan that is still
    compliant. Each failover increments
    [cgqp_exec_ship_failovers_total] and is recorded in
    [run_result.recovery]; if no compliant alternative exists the run
    returns [`Unsatisfiable] rather than ship data a policy forbids. *)

(** {2 Record/replay}

    The serving layer's parallel pipeline (see [docs/PARALLELISM.md])
    executes statements speculatively on pool domains and then replays
    the memoized outcomes from the deterministic discrete-event loop.
    A run's outcome is a pure function of session-local state and the
    plan cache is outcome-transparent, so recording on an equal-state
    session replica computes exactly what the sequential run would. *)

type memo
(** Everything one {!run} did: its result, plus the ordered
    (failover-mask fingerprint, optimizer outcome) of every optimizer
    invocation — the session's plan-cache conversation — and a
    fingerprint of the session state it was recorded under. *)

val run_recorded : session -> string -> (run_result, error) result * memo
(** [run_recorded session sql] is {!run} plus a {!memo} of what it did.
    Byte-identical to {!run} on the same session state. *)

val run_replay : session -> memo -> (run_result, error) result
(** Replay a recorded run without executing: performs the identical
    plan-cache find/add sequence (healthy plan and failover re-plans
    alike) against [session]'s attached cache — so cache statistics,
    LRU order, evictions and epochs advance exactly as a live {!run}
    would — and returns the memoized result. If [session]'s state no
    longer matches the memo's recording-time fingerprint (policies,
    catalog, mode, engine, faults, retry), falls back to a real {!run}
    and increments [cgqp_session_replay_fallbacks_total]. *)

val explain : session -> string -> (string, error) result
(** Optimize only and render the {!Optimizer.Explain} plan tree —
    execution sites, estimated rows, SHIP sizes and compliance
    verdicts. *)

val explain_analyze : session -> string -> (string, error) result
(** Optimize, execute, and render the plan tree annotated with actual
    per-operator row counts, SHIP bytes and simulated transfer costs.
    Requires an attached database. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string
