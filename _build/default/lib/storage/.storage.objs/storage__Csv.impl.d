lib/storage/csv.ml: Array Attr Buffer Fmt List Relalg Relation String Value
