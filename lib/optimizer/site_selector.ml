(* Phase 2 (§6.3): place every operator of the annotated plan at a
   concrete site, minimizing total data-shipping cost under the message
   cost model, restricted to each operator's execution trait. Memoized
   recursive top-down dynamic programming — Algorithm 2 of the paper. *)

module Locset = Catalog.Location.Set

let infinity_cost = Float.max_float

type placement = { plan : Exec.Pplan.t; cost : float }

(* Optimization objective, cf. the paper's §3.3 discussion: [`Total]
   minimizes the sum of all transfers (total query execution cost);
   [`Response_time] treats sibling subtrees as shipping in parallel and
   minimizes the critical path. *)
type objective = [ `Total | `Response_time ]

(* [select ~network anode] returns the cheapest compliant placement, or
   None if some operator has an empty execution trait (cannot happen for
   plans produced by the compliant annotator). *)
let select ?(objective = `Total) ~(network : Catalog.Network.t) (root : Memo.anode) :
    placement option =
  let memo : (int * Catalog.Location.t, float) Hashtbl.t = Hashtbl.create 256 in
  let choice : (int * Catalog.Location.t, Catalog.Location.t list) Hashtbl.t =
    Hashtbl.create 256
  in
  (* CostOf(n, l): minimum cost of computing [n]'s subtree with [n]
     executing at [l]; records the chosen child locations. *)
  let rec cost_of (n : Memo.anode) (l : Catalog.Location.t) : float =
    match Hashtbl.find_opt memo (n.uid, l) with
    | Some c -> c
    | None ->
      let c =
        (* a site the network's fault schedule marks down cannot host
           any operator — this is how degraded re-planning masks failed
           topology without touching the traits *)
        if not (Catalog.Network.site_up network l) then infinity_cost
        else
        match n.children with
        | [] ->
          (* base case: a table scan is free at the table's location and
             impossible elsewhere *)
          if Locset.mem l n.exec then 0. else infinity_cost
        | children ->
          let per_child =
            List.map
              (fun (child : Memo.anode) ->
                let bytes = child.rows *. child.width in
                Locset.fold
                  (fun l' best ->
                    let c' = cost_of child l' in
                    if c' >= infinity_cost then best
                    else
                      let total =
                        c'
                        +. Catalog.Network.ship_cost network ~from_loc:l' ~to_loc:l ~bytes
                      in
                      (* a down link ships at infinite cost: infeasible *)
                      if total >= infinity_cost then best
                      else
                        match best with
                        | Some (_, bc) when bc <= total -> best
                        | _ -> Some (l', total))
                  child.exec None)
              children
          in
          if List.for_all Option.is_some per_child then begin
            Hashtbl.replace choice (n.uid, l)
              (List.map (fun o -> fst (Option.get o)) per_child);
            match objective with
            | `Total ->
              List.fold_left (fun acc o -> acc +. snd (Option.get o)) 0. per_child
            | `Response_time ->
              (* children ship concurrently: the critical path governs *)
              List.fold_left
                (fun acc o -> Float.max acc (snd (Option.get o)))
                0. per_child
          end
          else infinity_cost
      in
      Hashtbl.replace memo (n.uid, l) c;
      c
  in
  (* pick the best root location among the root's execution trait *)
  let best =
    Locset.fold
      (fun l acc ->
        let c = cost_of root l in
        match acc with
        | Some (_, bc) when bc <= c -> acc
        | _ when c >= infinity_cost -> acc
        | _ -> Some (l, c))
      root.exec None
  in
  match best with
  | None -> None
  | Some (root_loc, total) ->
    if Obs.Trace.enabled () then
      Obs.Trace.instant "site_selector.placed"
        [
          ("root_loc", Obs.Json.Str root_loc);
          ("ship_cost_ms", Obs.Json.Num total);
          ("objective",
           Obs.Json.Str
             (match objective with `Total -> "total" | `Response_time -> "response_time"));
        ];
    let rec build (n : Memo.anode) (l : Catalog.Location.t) : Exec.Pplan.t =
      let child_locs =
        match Hashtbl.find_opt choice (n.uid, l) with Some ls -> ls | None -> []
      in
      let children = List.map2 build n.children child_locs in
      {
        Exec.Pplan.node = n.shape;
        loc = l;
        children;
        est = { Exec.Pplan.est_rows = n.rows; est_width = n.width };
      }
    in
    let placed = build root root_loc in
    Some { plan = Exec.Pplan.with_ships placed; cost = total }

(* Exhaustive reference implementation used by the tests to validate the
   DP: enumerates every assignment of locations (exponential). *)
let brute_force ~(network : Catalog.Network.t) (root : Memo.anode) : float option =
  let up = Catalog.Network.site_up network in
  let rec go (n : Memo.anode) : (Catalog.Location.t * float) list =
    match n.children with
    | [] -> Locset.fold (fun l acc -> if up l then (l, 0.) :: acc else acc) n.exec []
    | children ->
      let child_choices = List.map go children in
      Locset.fold
        (fun l acc ->
          if not (up l) then acc
          else
          let cost =
            List.fold_left2
              (fun acc (child : Memo.anode) choices ->
                let best =
                  List.fold_left
                    (fun b (l', c') ->
                      let t =
                        c'
                        +. Catalog.Network.ship_cost network ~from_loc:l' ~to_loc:l
                             ~bytes:(child.rows *. child.width)
                      in
                      Float.min b t)
                    infinity_cost choices
                in
                acc +. best)
              0. children child_choices
          in
          (l, cost) :: acc)
        n.exec []
  in
  match go root with
  | [] -> None
  | xs -> Some (List.fold_left (fun b (_, c) -> Float.min b c) infinity_cost xs)
