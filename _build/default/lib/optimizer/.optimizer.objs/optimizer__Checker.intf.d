lib/optimizer/checker.mli: Catalog Exec Format Plan Policy Relalg
