lib/relalg/plan.ml: Attr Expr Fmt Int List Pred Stdlib String
