lib/storage/prng.ml: Array Int64 List
