test/test_implication.ml: Alcotest Attr Expr List Option Policy Pred QCheck QCheck_alcotest Relalg Value
