(** Negative policy statements, cf. the paper's §4 "Disclosure Model":
    specifying what is {e not} allowed is sometimes more convenient;
    under the closed-world assumption such statements are handled by a
    preprocessing step that subtracts the denied shipments from the
    positive grants.

    {v deny <columns|*> from [db.]table to <locations|*> [where <cond>] v}

    Preprocessing is conservative: a grant whose ship or group-by
    attributes intersect the denied columns loses the denied locations
    outright (row conditions on the deny are not used to keep partial
    grants); grants whose location set becomes empty are dropped. *)

type t = {
  d_table : string;
  d_cols : string list;
  d_locs : Catalog.Location.Set.t;
  d_pred : Relalg.Pred.t;  (** recorded for display; subtraction ignores it *)
  d_text : string;
}

val parse : Catalog.t -> string -> t
(** Raises {!Expression.Bind_error} on malformed statements or
    aggregate denies. *)

val affects : t -> Expression.t -> bool

val apply : denies:t list -> Expression.t list -> Expression.t list

val catalog_of_texts :
  Catalog.t -> grants:string list -> denies:string list -> Pcatalog.t

val pp : Format.formatter -> t -> unit
