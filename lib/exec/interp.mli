(** Reference interpreter for placed physical plans.

    A straightforward tree-walker kept as the semantic baseline: the
    compiling executor ({!Compile}) is differentially tested against it
    and must produce byte-identical results, SHIP accounting and
    profiles (see [docs/EXECUTOR.md]). Use {!Engine.run} to select an
    engine; this module re-exports the shared {!Runtime} scaffolding,
    so [Exec.Interp.Ship_failed] is the {e same} exception either
    engine raises.

    Executes bottom-up against a {!Storage.Database.t} and accounts the
    bytes, rows and simulated cost of every SHIP operator under the
    message cost model (§7.4 of the paper). SHIPs optionally run under
    a deterministic {!Catalog.Network.Fault.schedule}: transient drops
    and per-attempt timeouts are retried with capped exponential
    backoff on the simulated clock; permanent link/site outages (or
    exhausted retry budgets) raise {!Ship_failed}, which the session
    layer turns into a compliant failover re-plan (see [Cgqp.run] and
    [docs/FAULTS.md]). *)

type ship_record = Runtime.ship_record = {
  from_loc : Catalog.Location.t;
  to_loc : Catalog.Location.t;
  bytes : int;  (** serialized size of the shipped relation *)
  rows : int;
  cost_ms : float;
      (** simulated transfer time under the message cost model,
          including failed attempts and backoff waits *)
  attempts : int;  (** 1 = first try succeeded; [n > 1] means [n-1] retries *)
}
(** One executed SHIP: an intermediate result crossing sites. *)

type stats = Runtime.stats = {
  mutable ships : ship_record list;
  mutable rows_processed : int;  (** total rows materialized, all operators *)
  mutable ship_retries : int;  (** total retried attempts across all ships *)
}

type retry_policy = Runtime.retry_policy = {
  max_attempts : int;  (** total tries per SHIP (>= 1) *)
  base_backoff_ms : float;
      (** backoff before retry [k] is [base * 2^(k-1)], capped below *)
  max_backoff_ms : float;
  attempt_timeout_ms : float;
      (** an attempt whose simulated transfer time exceeds this is
          abandoned (charged the timeout) and retried *)
  budget_ms : float;
      (** simulated-clock budget per SHIP, backoffs included; exceeding
          it raises {!Ship_failed} with [`Budget_exhausted] *)
}

val default_retry : retry_policy
(** 4 attempts, 50 ms base backoff capped at 1600 ms, no per-attempt
    timeout, unlimited budget. *)

type ship_failure = Runtime.ship_failure

exception
  Ship_failed of {
    from_loc : Catalog.Location.t;
    to_loc : Catalog.Location.t;
    attempts : int;
    reason : ship_failure;
  }
(** A SHIP could not complete under the fault schedule. The degradation
    path masks the link (or site) and re-plans; plain callers see the
    exception. Same constructor as {!Runtime.Ship_failed} — handlers
    catch it whichever engine raised. *)

val ship_failure_to_string : ship_failure -> string

exception
  Replica_stale of {
    table : string;
    partition : int;
    site : Catalog.Location.t;
  }
(** The copy of [table]/[partition] the plan reads at [site] is stale
    under the fault schedule ([replica-lag]). The degradation path
    masks the replica and re-plans onto a fresh compliant sibling.
    Same constructor as {!Runtime.Replica_stale} — handlers catch it
    whichever engine raised. *)

(** Per-operator execution profile. [path] is the node's position in
    the plan tree as the list of child indices from the root (the root
    itself is [[]]), which is how [Optimizer.Explain] matches actuals
    back to plan nodes for EXPLAIN ANALYZE. *)
type node_profile = Runtime.node_profile = {
  path : int list;
  label : string;  (** {!Pplan.node_label} of the operator *)
  actual_rows : int;
  actual_bytes : int;  (** materialized output size *)
  ship : ship_record option;  (** set iff the operator is a SHIP *)
}

type result = Runtime.result = {
  relation : Storage.Relation.t;
  stats : stats;
  profile : node_profile list;  (** execution (post-) order *)
  makespan_ms : float;
      (** simulated response time: sibling subtrees proceed in parallel,
          transfers follow the message cost model, local processing is
          charged per materialized row *)
}

val row_cost_ms : float
(** Simulated local processing cost per materialized row (ms). *)

val total_ship_cost : stats -> float
(** Sum of {!ship_record.cost_ms} over all ships (the total-cost
    objective's measured counterpart; compare [result.makespan_ms]). *)

val total_ship_bytes : stats -> int
(** Sum of {!ship_record.bytes} over all ships — payload bytes, each
    counted once regardless of retries. *)

val total_traffic_bytes : stats -> int
(** Bytes the network actually carried: each ship's payload times its
    attempt count. Equals {!total_ship_bytes} on a retry-free run. *)

exception Runtime_error of string
(** Malformed plans (wrong arity, missing relations); same constructor
    as {!Runtime.Runtime_error}. *)

val run :
  ?faults:Catalog.Network.Fault.schedule ->
  ?retry:retry_policy ->
  ?budget:int ->
  network:Catalog.Network.t ->
  db:Storage.Database.t ->
  table_cols:(string -> string list) ->
  Pplan.t ->
  result
(** Execute a placed plan bottom-up, materializing every operator.
    [budget] (default: [CGQP_MEM_BUDGET], else unlimited) is the
    byte-accounted memory budget — hash join/aggregation spill to disk
    when their scratch state would trip it, with byte-identical
    results (see {!Runtime.mem} and {!Spill}).
    [table_cols] resolves a table's stored column order, used to
    re-qualify scan schemas with the query alias. [faults] (default
    empty — a fault-free run is byte-identical to one without the
    parameter) injects deterministic failures per SHIP attempt, applied
    {e on top of} the network's own schedule: pass a healthy network
    plus an explicit schedule, or a pre-masked network and no schedule,
    never both. Emits trace events and metrics per operator and per
    SHIP (see [docs/TRACING.md]); raises {!Runtime_error} on malformed
    plans and {!Ship_failed} on permanent transfer failures. *)
