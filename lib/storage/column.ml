(* Column-major storage: one typed, unboxed array per column plus a
   packed null bitmap. This is the physical layout the vectorized
   engine's kernels run over; the row-oriented engines see it only
   through [Relation]'s row-view shim.

   Representation rules:
   - a column whose non-null values all share one [Value.ty] is stored
     in the matching typed array ([int array] / [float array] /
     [string array] / packed bools), with NULL slots holding a dummy
     and the bitmap marking them;
   - a heterogeneous (or empty, or all-NULL) column falls back to a
     boxed [Value.t array], where NULLs are stored directly and the
     bitmap stays empty.

   Columns are immutable after construction; [byte_size] is memoized
   because the per-operator profile charges it on every execution. *)

open Relalg

type data =
  | Ints of int array
  | Floats of float array  (* flat float array: unboxed in OCaml *)
  | Strs of string array
  | Dates of int array
  | Bools of Bytes.t  (* one byte per row: 0 = false, 1 = true *)
  | Values of Value.t array  (* heterogeneous / all-NULL fallback *)

type t = {
  data : data;
  nulls : Bytes.t;
      (* packed bitmap, bit [i] set = row [i] is NULL; [Bytes.empty]
         means "no nulls" (and is mandatory for [Values]) *)
  mutable bytes : int;
      (* memoized serialized size; -1 = not computed. Benign race under
         domains: a pure function of the immutable data, and a single
         word-sized write, so concurrent fills store the same value. *)
}

let no_nulls = Bytes.empty

let length t =
  match t.data with
  | Ints a | Dates a -> Array.length a
  | Floats a -> Array.length a
  | Strs a -> Array.length a
  | Bools b -> Bytes.length b
  | Values a -> Array.length a

let has_nulls t = Bytes.length t.nulls > 0

(* The boxed fallback stores [Null] in the data array itself and may
   carry no bitmap (e.g. [of_value_array] on an all-NULL input, where
   sniffing finds no type evidence) — consult the values too. *)
let is_null t i =
  (Bytes.length t.nulls > 0
  && Char.code (Bytes.unsafe_get t.nulls (i lsr 3)) land (1 lsl (i land 7)) <> 0)
  || match t.data with Values a -> Value.is_null a.(i) | _ -> false

(* --- null bitmap helpers --- *)

let bitmap_create n = Bytes.make ((n + 7) / 8) '\000'

let bitmap_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

let bitmap_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let get t i =
  if is_null t i then Value.Null
  else
    match t.data with
    | Ints a -> Value.Int a.(i)
    | Floats a -> Value.Float a.(i)
    | Strs a -> Value.Str a.(i)
    | Dates a -> Value.Date a.(i)
    | Bools b -> Value.Bool (Bytes.get b i <> '\000')
    | Values a -> a.(i)

(* --- construction --- *)

let of_value_array (vals : Value.t array) = { data = Values vals; nulls = no_nulls; bytes = -1 }

(* Sniff the uniform type of a column, if any. *)
let uniform_ty (vals : Value.t array) : Value.ty option =
  let n = Array.length vals in
  let rec first i =
    if i >= n then None
    else match Value.type_of vals.(i) with Some ty -> Some (ty, i) | None -> first (i + 1)
  in
  match first 0 with
  | None -> None (* empty or all-NULL: no type evidence *)
  | Some (ty, i0) ->
    let rec rest i =
      if i >= n then Some ty
      else
        match Value.type_of vals.(i) with
        | None -> rest (i + 1)
        | Some ty' -> if ty' = ty then rest (i + 1) else None
    in
    rest (i0 + 1)

(* Build the typed representation for a known-uniform column. *)
let of_values_typed (ty : Value.ty) (vals : Value.t array) : t =
  let n = Array.length vals in
  let nulls = bitmap_create n in
  let seen_null = ref false in
  let mark i =
    seen_null := true;
    bitmap_set nulls i
  in
  let data =
    match ty with
    | Value.Tint ->
      let a = Array.make n 0 in
      Array.iteri (fun i v -> match v with Value.Int x -> a.(i) <- x | _ -> mark i) vals;
      Ints a
    | Value.Tfloat ->
      let a = Array.make n 0. in
      Array.iteri
        (fun i v -> match v with Value.Float x -> a.(i) <- x | _ -> mark i)
        vals;
      Floats a
    | Value.Tstr ->
      let a = Array.make n "" in
      Array.iteri (fun i v -> match v with Value.Str s -> a.(i) <- s | _ -> mark i) vals;
      Strs a
    | Value.Tdate ->
      let a = Array.make n 0 in
      Array.iteri (fun i v -> match v with Value.Date d -> a.(i) <- d | _ -> mark i) vals;
      Dates a
    | Value.Tbool ->
      let b = Bytes.make n '\000' in
      Array.iteri
        (fun i v ->
          match v with
          | Value.Bool x -> if x then Bytes.set b i '\001'
          | _ -> mark i)
        vals;
      Bools b
  in
  { data; nulls = (if !seen_null then nulls else no_nulls); bytes = -1 }

let of_values (vals : Value.t array) : t =
  match uniform_ty vals with
  | Some ty -> of_values_typed ty vals
  | None -> of_value_array (Array.copy vals)

let to_values t = Array.init (length t) (fun i -> get t i)

(* --- serialized size (agrees with Value.byte_width per element) --- *)

let null_count t =
  if not (has_nulls t) then 0
  else begin
    let n = length t in
    let c = ref 0 in
    for i = 0 to n - 1 do
      if bitmap_get t.nulls i then incr c
    done;
    !c
  end

let compute_bytes t =
  let n = length t in
  match t.data with
  | Ints _ | Floats _ | Dates _ | Bools _ when not (has_nulls t) ->
    (* fixed width, no nulls: O(1) *)
    let w = match t.data with Ints _ | Floats _ -> 8 | Dates _ -> 4 | _ -> 1 in
    w * n
  | Ints _ | Floats _ | Dates _ | Bools _ ->
    (* fixed width with nulls: width per non-null, 1 (the NULL tag) per
       null — same numbers as the boxed loop below, without boxing *)
    let w = match t.data with Ints _ | Floats _ -> 8 | Dates _ -> 4 | _ -> 1 in
    let nulls = null_count t in
    (w * (n - nulls)) + nulls
  | Strs a ->
    (* exact string accounting: 4 offset bytes + heap bytes per non-null
       (= [Value.byte_width (Str s)]), 1 per null — no boxing *)
    let acc = ref 0 in
    if has_nulls t then
      for i = 0 to n - 1 do
        acc := !acc + (if bitmap_get t.nulls i then 1 else 4 + String.length a.(i))
      done
    else
      for i = 0 to n - 1 do
        acc := !acc + 4 + String.length a.(i)
      done;
    !acc
  | Values _ ->
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + Value.byte_width (get t i)
    done;
    !acc

let byte_size t =
  if t.bytes < 0 then t.bytes <- compute_bytes t;
  t.bytes

(* --- kernels' materialization primitives --- *)

(* Select rows by index; the workhorse behind selection vectors, sort
   permutations and join outputs. Typed columns stay typed. *)
let gather t (ixs : int array) : t =
  let n = Array.length ixs in
  let nulls =
    if not (has_nulls t) then no_nulls
    else begin
      let b = bitmap_create n in
      let any = ref false in
      for j = 0 to n - 1 do
        if bitmap_get t.nulls ixs.(j) then begin
          any := true;
          bitmap_set b j
        end
      done;
      if !any then b else no_nulls
    end
  in
  let data =
    match t.data with
    | Ints a -> Ints (Array.init n (fun j -> Array.unsafe_get a ixs.(j)))
    | Floats a -> Floats (Array.init n (fun j -> Array.unsafe_get a ixs.(j)))
    | Strs a -> Strs (Array.init n (fun j -> Array.unsafe_get a ixs.(j)))
    | Dates a -> Dates (Array.init n (fun j -> Array.unsafe_get a ixs.(j)))
    | Bools b ->
      let out = Bytes.make n '\000' in
      for j = 0 to n - 1 do
        Bytes.unsafe_set out j (Bytes.unsafe_get b ixs.(j))
      done;
      Bools out
    | Values a -> Values (Array.init n (fun j -> Array.unsafe_get a ixs.(j)))
  in
  { data; nulls; bytes = -1 }

(* Concatenate columns (UNION ALL). Same-variant inputs stay typed;
   mixed variants fall back to boxed values. *)
let concat (cols : t list) : t =
  match cols with
  | [] -> of_value_array [||]
  | [ c ] -> c
  | first :: _ ->
    let total = List.fold_left (fun acc c -> acc + length c) 0 cols in
    let same_variant =
      let tag t =
        match t.data with
        | Ints _ -> 0 | Floats _ -> 1 | Strs _ -> 2 | Dates _ -> 3 | Bools _ -> 4
        | Values _ -> 5
      in
      List.for_all (fun c -> tag c = tag first) cols
    in
    if not same_variant then begin
      let out = Array.make total Value.Null in
      let off = ref 0 in
      List.iter
        (fun c ->
          for i = 0 to length c - 1 do
            out.(!off + i) <- get c i
          done;
          off := !off + length c)
        cols;
      of_value_array out
    end
    else begin
      let nulls =
        if List.for_all (fun c -> not (has_nulls c)) cols then no_nulls
        else begin
          let b = bitmap_create total in
          let off = ref 0 in
          List.iter
            (fun c ->
              if has_nulls c then
                for i = 0 to length c - 1 do
                  if bitmap_get c.nulls i then bitmap_set b (!off + i)
                done;
              off := !off + length c)
            cols;
          b
        end
      in
      let concat_arr proj make0 =
        let out = make0 total in
        let off = ref 0 in
        List.iter
          (fun c ->
            let a = proj c.data in
            Array.blit a 0 out !off (Array.length a);
            off := !off + Array.length a)
          cols;
        out
      in
      let data =
        match first.data with
        | Ints _ ->
          Ints (concat_arr (function Ints a | Dates a -> a | _ -> [||]) (fun n -> Array.make n 0))
        | Dates _ ->
          Dates (concat_arr (function Ints a | Dates a -> a | _ -> [||]) (fun n -> Array.make n 0))
        | Floats _ ->
          Floats (concat_arr (function Floats a -> a | _ -> [||]) (fun n -> Array.make n 0.))
        | Strs _ ->
          Strs (concat_arr (function Strs a -> a | _ -> [||]) (fun n -> Array.make n ""))
        | Bools _ ->
          let out = Bytes.make total '\000' in
          let off = ref 0 in
          List.iter
            (fun c ->
              match c.data with
              | Bools b ->
                Bytes.blit b 0 out !off (Bytes.length b);
                off := !off + Bytes.length b
              | _ -> ())
            cols;
          Bools out
        | Values _ ->
          Values
            (concat_arr (function Values a -> a | _ -> [||]) (fun n ->
                 Array.make n Value.Null))
      in
      { data; nulls; bytes = -1 }
    end

(* --- incremental typed construction (streaming loaders) --- *)

type t_outer = t

module Builder = struct
  (* Growable typed buffers with the same NULL discipline as
     [of_values_typed]: a value of the declared type lands in the slot,
     anything else (including [Null]) stores a dummy and marks the
     bitmap. [finish] trims to length and produces the same column
     [of_values_typed ty (boxed values)] would. *)

  type payload =
    | Bints of int array
    | Bfloats of float array
    | Bstrs of string array
    | Bdates of int array
    | Bbools of Bytes.t

  type t = {
    ty : Value.ty;
    mutable n : int;
    mutable cap : int;
    mutable payload : payload;
    mutable nulls : Bytes.t;  (* bitmap sized to [cap] *)
    mutable seen_null : bool;
  }

  let make_payload ty cap =
    match ty with
    | Value.Tint -> Bints (Array.make cap 0)
    | Value.Tfloat -> Bfloats (Array.make cap 0.)
    | Value.Tstr -> Bstrs (Array.make cap "")
    | Value.Tdate -> Bdates (Array.make cap 0)
    | Value.Tbool -> Bbools (Bytes.make cap '\000')

  let create ?(hint = 1024) ty =
    let cap = max 16 hint in
    { ty; n = 0; cap; payload = make_payload ty cap; nulls = bitmap_create cap; seen_null = false }

  let length b = b.n

  let grow b =
    let cap = b.cap * 2 in
    let payload =
      match b.payload with
      | Bints a ->
        let a' = Array.make cap 0 in
        Array.blit a 0 a' 0 b.n; Bints a'
      | Bfloats a ->
        let a' = Array.make cap 0. in
        Array.blit a 0 a' 0 b.n; Bfloats a'
      | Bstrs a ->
        let a' = Array.make cap "" in
        Array.blit a 0 a' 0 b.n; Bstrs a'
      | Bdates a ->
        let a' = Array.make cap 0 in
        Array.blit a 0 a' 0 b.n; Bdates a'
      | Bbools by ->
        let by' = Bytes.make cap '\000' in
        Bytes.blit by 0 by' 0 b.n; Bbools by'
    in
    let nulls = bitmap_create cap in
    Bytes.blit b.nulls 0 nulls 0 (Bytes.length b.nulls);
    b.cap <- cap;
    b.payload <- payload;
    b.nulls <- nulls

  let add b (v : Value.t) =
    if b.n >= b.cap then grow b;
    let i = b.n in
    let mark () =
      b.seen_null <- true;
      bitmap_set b.nulls i
    in
    (match b.payload, v with
    | Bints a, Value.Int x -> a.(i) <- x
    | Bfloats a, Value.Float x -> a.(i) <- x
    | Bstrs a, Value.Str s -> a.(i) <- s
    | Bdates a, Value.Date d -> a.(i) <- d
    | Bbools by, Value.Bool x -> if x then Bytes.set by i '\001'
    | _ -> mark ());
    b.n <- b.n + 1

  let finish b : t_outer =
    let n = b.n in
    let data =
      match b.payload with
      | Bints a -> Ints (Array.sub a 0 n)
      | Bfloats a -> Floats (Array.sub a 0 n)
      | Bstrs a -> Strs (Array.sub a 0 n)
      | Bdates a -> Dates (Array.sub a 0 n)
      | Bbools by -> Bools (Bytes.sub by 0 n)
    in
    let nulls =
      if not b.seen_null then no_nulls
      else begin
        let out = bitmap_create n in
        Bytes.blit b.nulls 0 out 0 (Bytes.length out);
        out
      end
    in
    { data; nulls; bytes = -1 }
end
