lib/relalg/attr.ml: Fmt Map Set String
