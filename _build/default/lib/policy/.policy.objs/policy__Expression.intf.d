lib/policy/expression.mli: Catalog Expr Format Pred Relalg Sqlfront
