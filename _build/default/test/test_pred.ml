open Relalg

let a name = Attr.make ~rel:"t" ~name
let col name = Expr.Col (a name)
let int n = Expr.Const (Value.Int n)
let cmp c l r = Pred.Atom (Pred.Cmp (c, l, r))

let lookup_of bindings attr =
  match List.find_opt (fun (n, _) -> Attr.equal (a n) attr) bindings with
  | Some (_, v) -> v
  | None -> Value.Null

let test_eval_basic () =
  let p = Pred.And (cmp Pred.Gt (col "x") (int 5), cmp Pred.Lt (col "y") (int 3)) in
  Alcotest.(check bool) "true case" true
    (Pred.eval (lookup_of [ ("x", Value.Int 10); ("y", Value.Int 1) ]) p);
  Alcotest.(check bool) "false case" false
    (Pred.eval (lookup_of [ ("x", Value.Int 10); ("y", Value.Int 9) ]) p);
  Alcotest.(check bool) "null comparisons are false" false
    (Pred.eval (lookup_of [ ("y", Value.Int 1) ]) p)

let test_eval_or_not () =
  let p = Pred.Or (cmp Pred.Eq (col "x") (int 1), Pred.Not (cmp Pred.Eq (col "y") (int 2))) in
  Alcotest.(check bool) "left or" true
    (Pred.eval (lookup_of [ ("x", Value.Int 1); ("y", Value.Int 2) ]) p);
  Alcotest.(check bool) "not branch" true
    (Pred.eval (lookup_of [ ("x", Value.Int 0); ("y", Value.Int 3) ]) p);
  Alcotest.(check bool) "both fail" false
    (Pred.eval (lookup_of [ ("x", Value.Int 0); ("y", Value.Int 2) ]) p)

let test_like () =
  Alcotest.(check bool) "prefix" true (Pred.like_match ~pattern:"abc%" "abcdef");
  Alcotest.(check bool) "suffix" true (Pred.like_match ~pattern:"%def" "abcdef");
  Alcotest.(check bool) "infix" true (Pred.like_match ~pattern:"%cd%" "abcdef");
  Alcotest.(check bool) "underscore" true (Pred.like_match ~pattern:"a_c" "abc");
  Alcotest.(check bool) "underscore strict" false (Pred.like_match ~pattern:"a_c" "abbc");
  Alcotest.(check bool) "exact" true (Pred.like_match ~pattern:"abc" "abc");
  Alcotest.(check bool) "no match" false (Pred.like_match ~pattern:"x%" "abc");
  Alcotest.(check bool) "empty pattern" false (Pred.like_match ~pattern:"" "abc");
  Alcotest.(check bool) "lone percent" true (Pred.like_match ~pattern:"%" "");
  Alcotest.(check bool) "double percent" true (Pred.like_match ~pattern:"%%COPPER%%" "XCOPPERY")

let test_in_and_null () =
  let p = Pred.Atom (Pred.In (col "x", [ Value.Int 1; Value.Int 2 ])) in
  Alcotest.(check bool) "in hit" true (Pred.eval (lookup_of [ ("x", Value.Int 2) ]) p);
  Alcotest.(check bool) "in miss" false (Pred.eval (lookup_of [ ("x", Value.Int 3) ]) p);
  Alcotest.(check bool) "in null" false (Pred.eval (lookup_of []) p);
  Alcotest.(check bool) "is null" true
    (Pred.eval (lookup_of []) (Pred.Atom (Pred.Is_null (col "x"))));
  Alcotest.(check bool) "not null" true
    (Pred.eval (lookup_of [ ("x", Value.Int 0) ]) (Pred.Atom (Pred.Not_null (col "x"))))

let test_conjuncts () =
  let p =
    Pred.And (cmp Pred.Gt (col "x") (int 5), Pred.And (Pred.True, cmp Pred.Lt (col "y") (int 3)))
  in
  Alcotest.(check int) "two conjuncts" 2 (List.length (Pred.conjuncts p));
  Alcotest.(check int) "true has none" 0 (List.length (Pred.conjuncts Pred.True))

let test_conj_disj_simplification () =
  Alcotest.(check bool) "conj true" true (Pred.conj Pred.True Pred.True = Pred.True);
  Alcotest.(check bool) "conj false" true (Pred.conj Pred.False Pred.True = Pred.False);
  Alcotest.(check bool) "disj true" true (Pred.disj Pred.True Pred.False = Pred.True)

let test_cols () =
  let p = Pred.And (cmp Pred.Eq (col "x") (col "y"), cmp Pred.Gt (col "z") (int 1)) in
  Alcotest.(check int) "three columns" 3 (Attr.Set.cardinal (Pred.cols p))

(* random predicate generator over small domain for property tests *)
let gen_pred =
  let open QCheck.Gen in
  let atom =
    let* name = oneofl [ "x"; "y"; "z" ] in
    let* v = int_range 0 10 in
    let* c = oneofl [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ] in
    return (cmp c (col name) (Expr.Const (Value.Int v)))
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map2 (fun l r -> Pred.And (l, r)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun l r -> Pred.Or (l, r)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun p -> Pred.Not p) (go (depth - 1)));
        ]
  in
  go 3

let gen_binding =
  QCheck.Gen.(
    let* x = int_range 0 10 and* y = int_range 0 10 and* z = int_range 0 10 in
    return [ ("x", Value.Int x); ("y", Value.Int y); ("z", Value.Int z) ])

let prop_double_negation =
  QCheck.Test.make ~name:"NOT NOT p = p under eval" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_pred gen_binding))
    (fun (p, b) ->
      Pred.eval (lookup_of b) (Pred.Not (Pred.Not p)) = Pred.eval (lookup_of b) p)

let prop_demorgan =
  QCheck.Test.make ~name:"De Morgan under eval" ~count:500
    (QCheck.make QCheck.Gen.(triple gen_pred gen_pred gen_binding))
    (fun (p, q, b) ->
      let l = lookup_of b in
      Pred.eval l (Pred.Not (Pred.And (p, q)))
      = Pred.eval l (Pred.Or (Pred.Not p, Pred.Not q)))

let () =
  Alcotest.run "pred"
    [
      ( "pred",
        [
          Alcotest.test_case "eval basic" `Quick test_eval_basic;
          Alcotest.test_case "eval or/not" `Quick test_eval_or_not;
          Alcotest.test_case "like" `Quick test_like;
          Alcotest.test_case "in/null" `Quick test_in_and_null;
          Alcotest.test_case "conjuncts" `Quick test_conjuncts;
          Alcotest.test_case "conj/disj simplify" `Quick test_conj_disj_simplification;
          Alcotest.test_case "cols" `Quick test_cols;
          QCheck_alcotest.to_alcotest prop_double_negation;
          QCheck_alcotest.to_alcotest prop_demorgan;
        ] );
    ]
