(* Simulated wide-area network following the paper's message cost model
   (§7.4): shipping [b] bytes from site [i] to site [j] costs
   [alpha i j + beta i j *. b], where [alpha] is a start-up cost (one
   round trip) and [beta] a per-byte cost. Costs are in milliseconds.

   The network also carries an optional *fault schedule* (module
   [Fault]): a seeded, fully deterministic description of link/site
   outages, transient drops and latency inflation. A schedule attached
   with [with_faults] is consulted by [ship_cost] (down links cost
   [infinity], slow links are multiplied) and by the [site_up]/[link_up]
   predicates the site selector uses to mask failed topology during
   degraded re-planning. The executor additionally consults a schedule
   per SHIP attempt for transient drops (see [Exec.Interp]). *)

exception Unknown_link of Location.t * Location.t

let () =
  Printexc.register_printer (function
    | Unknown_link (i, j) ->
      Some (Printf.sprintf "Catalog.Network.Unknown_link(%s, %s)" i j)
    | _ -> None)

(* --- deterministic fault schedules --- *)

module Fault = struct
  type event =
    | Link_down of Location.t * Location.t  (* undirected: kills both ways *)
    | Site_down of Location.t  (* every link touching the site is dead *)
    | Transient_drop of { from_loc : Location.t; to_loc : Location.t; p : float }
        (* each transfer attempt over the link is dropped with
           probability [p], decided deterministically from the seed *)
    | Latency_mult of { from_loc : Location.t; to_loc : Location.t; factor : float }
        (* both alpha and beta are multiplied by [factor] *)
    | Replica_lag of { table : string; site : Location.t; lag_ms : float }
        (* the copy of [table] at [site] lags behind the primary; any
           positive lag marks it stale (unreadable) for the run *)

  type schedule = { seed : int; events : event list }

  let empty = { seed = 0; events = [] }
  let make ?(seed = 0) events = { seed; events }
  let is_empty s = s.events = []
  let seed s = s.seed
  let events s = s.events

  (* An event targets the undirected pair {i, j}. *)
  let on_link a b i j =
    (String.equal a i && String.equal b j) || (String.equal a j && String.equal b i)

  let site_down s l =
    List.exists (function Site_down x -> String.equal x l | _ -> false) s.events

  (* Is the copy of [table] at [site] stale under the schedule? Any
     scheduled positive lag makes the copy unreadable for the whole
     run — the executor raises [Replica_stale] and the session fails
     over to a fresh sibling (see docs/REPLICA.md). *)
  let replica_stale s ~table ~site =
    let table = String.lowercase_ascii table in
    List.exists
      (function
        | Replica_lag { table = t; site = l; lag_ms } ->
          String.equal (String.lowercase_ascii t) table
          && String.equal l site && lag_ms > 0.
        | _ -> false)
      s.events

  (* Is the (directed) transfer [from_loc -> to_loc] permanently
     impossible under the schedule? Local transfers never are. *)
  let link_down s ~from_loc ~to_loc =
    (not (String.equal from_loc to_loc))
    && (site_down s from_loc || site_down s to_loc
       || List.exists
            (function Link_down (a, b) -> on_link a b from_loc to_loc | _ -> false)
            s.events)

  (* Product of every matching latency multiplier (1.0 when none). *)
  let latency_factor s ~from_loc ~to_loc =
    List.fold_left
      (fun acc -> function
        | Latency_mult { from_loc = a; to_loc = b; factor }
          when on_link a b from_loc to_loc ->
          acc *. factor
        | _ -> acc)
      1.0 s.events

  (* Probability that one attempt over the link is dropped: the
     complement of every matching drop event letting it through. *)
  let drop_probability s ~from_loc ~to_loc =
    if String.equal from_loc to_loc then 0.
    else
      1.
      -. List.fold_left
           (fun acc -> function
             | Transient_drop { from_loc = a; to_loc = b; p }
               when on_link a b from_loc to_loc ->
               acc *. (1. -. p)
             | _ -> acc)
           1.0 s.events

  (* splitmix64 finalizer: a high-quality pure mixing function, so drop
     decisions are a function of (seed, link, ship index, attempt) alone
     and every chaos run replays bit-for-bit from its seed. *)
  let mix64 (x : int64) : int64 =
    let open Int64 in
    let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
    let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
    logxor x (shift_right_logical x 31)

  let hash_str h s =
    let acc = ref h in
    String.iter (fun c -> acc := mix64 (Int64.logxor !acc (Int64.of_int (Char.code c)))) s;
    !acc

  (* [drops s ~from_loc ~to_loc ~ship ~attempt]: is the [attempt]-th try
     of the [ship]-th SHIP of a run dropped? Deterministic in the
     schedule seed; uniform with the link's drop probability. *)
  let drops s ~from_loc ~to_loc ~ship ~attempt =
    let p = drop_probability s ~from_loc ~to_loc in
    if p <= 0. then false
    else if p >= 1. then true
    else begin
      let h = mix64 (Int64.of_int s.seed) in
      (* hash the unordered pair so both directions of a link share a
         fate stream, matching the undirected event semantics *)
      let a, b = if String.compare from_loc to_loc <= 0 then (from_loc, to_loc) else (to_loc, from_loc) in
      let h = hash_str (hash_str h a) b in
      let h = mix64 (Int64.logxor h (Int64.of_int ((ship * 1021) + attempt))) in
      let u = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992. in
      u < p
    end

  let pp_event ppf = function
    | Link_down (a, b) -> Fmt.pf ppf "link-down %s %s" a b
    | Site_down l -> Fmt.pf ppf "site-down %s" l
    | Transient_drop { from_loc; to_loc; p } -> Fmt.pf ppf "drop %s %s %g" from_loc to_loc p
    | Latency_mult { from_loc; to_loc; factor } ->
      Fmt.pf ppf "slow %s %s %g" from_loc to_loc factor
    | Replica_lag { table; site; lag_ms } ->
      Fmt.pf ppf "replica-lag %s %s %g" table site lag_ms

  let pp ppf s =
    Fmt.pf ppf "seed %d" s.seed;
    List.iter (fun e -> Fmt.pf ppf "@.%a" pp_event e) s.events

  let to_string s = Fmt.str "%a" pp s

  (* The fault-schedule DSL: one statement per line, [#] comments.
       seed 42
       link-down L1 L4
       site-down L3
       drop L1 L4 0.3        # transient, p = 0.3 per attempt
       slow L2 L5 4.0        # alpha and beta x4
       replica-lag orders L2 500   # the L2 copy of orders is stale
     [to_string] emits this grammar, so schedules round-trip. *)
  let parse text : (schedule, string) result =
    let seed = ref 0 and events = ref [] and error = ref None in
    let fail lineno fmt =
      Printf.ksprintf
        (fun m -> if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno m))
        fmt
    in
    let float_of lineno what s =
      match float_of_string_opt s with
      | Some f -> f
      | None ->
        fail lineno "%s: expected a number, found %S" what s;
        0.
    in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line =
          match String.index_opt line '#' with
          | Some k -> String.sub line 0 k
          | None -> line
        in
        match
          String.split_on_char ' ' (String.trim line)
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun w -> w <> "")
        with
        | [] -> ()
        | [ "seed"; n ] -> (
          match int_of_string_opt n with
          | Some n -> seed := n
          | None -> fail lineno "seed: expected an integer, found %S" n)
        | [ "link-down"; a; b ] -> events := Link_down (a, b) :: !events
        | [ "site-down"; l ] -> events := Site_down l :: !events
        | [ "drop"; a; b; p ] ->
          let p = float_of lineno "drop" p in
          if p < 0. || p > 1. then fail lineno "drop: probability %g outside [0, 1]" p
          else events := Transient_drop { from_loc = a; to_loc = b; p } :: !events
        | [ "slow"; a; b; f ] ->
          let f = float_of lineno "slow" f in
          if f < 1. then fail lineno "slow: factor %g must be >= 1" f
          else events := Latency_mult { from_loc = a; to_loc = b; factor = f } :: !events
        | [ "replica-lag"; table; site; lag ] ->
          let lag_ms = float_of lineno "replica-lag" lag in
          if lag_ms < 0. then fail lineno "replica-lag: lag %g must be >= 0" lag_ms
          else events := Replica_lag { table; site; lag_ms } :: !events
        | w :: _ -> fail lineno "unknown statement %S" w)
      (String.split_on_char '\n' text);
    match !error with
    | Some e -> Error e
    | None -> Ok { seed = !seed; events = List.rev !events }
end

type t = {
  locations : Location.t list;
  alpha : (Location.t * Location.t, float) Hashtbl.t;
  beta : (Location.t * Location.t, float) Hashtbl.t;
  default : (float * float) option;
      (* (alpha, beta) for pairs absent from the tables; [None] makes a
         lookup miss a hard [Unknown_link] error, so a chaos mask can
         never be silently absorbed by a fallback cost *)
  faults : Fault.schedule;
}

let locations t = t.locations
let faults t = t.faults
let with_faults t faults = { t with faults }

let alpha t i j =
  if String.equal i j then 0.
  else
    match Hashtbl.find_opt t.alpha (i, j) with
    | Some a -> a
    | None -> (
      match t.default with Some (a, _) -> a | None -> raise (Unknown_link (i, j)))

let beta t i j =
  if String.equal i j then 0.
  else
    match Hashtbl.find_opt t.beta (i, j) with
    | Some b -> b
    | None -> (
      match t.default with Some (_, b) -> b | None -> raise (Unknown_link (i, j)))

let site_up t l = not (Fault.site_down t.faults l)
let link_up t ~from_loc ~to_loc = not (Fault.link_down t.faults ~from_loc ~to_loc)

(* Cost in milliseconds of shipping [bytes] from [i] to [j]. Local moves
   are free: a SHIP between co-located operators is a no-op. Links the
   attached fault schedule marks down cost [infinity] (infeasible to the
   site selector); latency multipliers inflate the healthy cost. *)
let ship_cost t ~from_loc ~to_loc ~bytes =
  if String.equal from_loc to_loc then 0.
  else if Fault.link_down t.faults ~from_loc ~to_loc then Float.infinity
  else
    (alpha t from_loc to_loc +. (beta t from_loc to_loc *. bytes))
    *. Fault.latency_factor t.faults ~from_loc ~to_loc

let make ?default ~locations ~links () =
  let alpha = Hashtbl.create 16 and beta = Hashtbl.create 16 in
  List.iter
    (fun (i, j, a, b) ->
      Hashtbl.replace alpha (i, j) a;
      Hashtbl.replace beta (i, j) b;
      (* links are symmetric unless overridden later *)
      if not (Hashtbl.mem alpha (j, i)) then begin
        Hashtbl.replace alpha (j, i) a;
        Hashtbl.replace beta (j, i) b
      end)
    links;
  { locations; alpha; beta; default; faults = Fault.empty }

(* A fully-connected network with uniform link parameters; convenient
   for tests and for the scalability experiments with many sites. *)
let uniform ~locations ~alpha:a ~beta:b =
  let tbl_a = Hashtbl.create 16 and tbl_b = Hashtbl.create 16 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if not (String.equal i j) then begin
            Hashtbl.replace tbl_a (i, j) a;
            Hashtbl.replace tbl_b (i, j) b
          end)
        locations)
    locations;
  { locations; alpha = tbl_a; beta = tbl_b; default = None; faults = Fault.empty }

(* The paper's five regions (footnote 12): Europe, Africa, Asia,
   North America, Middle East as locations L1–L5. Start-up costs are
   ping round-trip times (ms); per-byte costs derive from measured
   inter-region throughput. Values are representative public-cloud
   inter-region numbers; only their relative magnitudes matter. *)
let paper_default () =
  let l1 = "L1" (* Europe *)
  and l2 = "L2" (* Africa *)
  and l3 = "L3" (* Asia *)
  and l4 = "L4" (* North America *)
  and l5 = "L5" (* Middle East *) in
  make ()
    ~locations:[ l1; l2; l3; l4; l5 ]
    ~links:
      [
        (l1, l2, 155., 1.9e-6);
        (l1, l3, 240., 2.9e-6);
        (l1, l4, 90., 1.1e-6);
        (l1, l5, 110., 1.4e-6);
        (l2, l3, 330., 4.1e-6);
        (l2, l4, 220., 2.8e-6);
        (l2, l5, 190., 2.4e-6);
        (l3, l4, 180., 2.2e-6);
        (l3, l5, 140., 1.8e-6);
        (l4, l5, 200., 2.5e-6);
      ]
