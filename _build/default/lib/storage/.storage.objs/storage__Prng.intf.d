lib/storage/prng.mli:
