(** End-to-end two-phase optimization (Figure 2 of the paper):
    normalize, explore and annotate (phase 1), select sites (phase 2),
    certify. *)

open Relalg

type planned = {
  plan : Exec.Pplan.t;  (** placed physical plan with SHIP operators *)
  annotated : Memo.anode;  (** the phase-1 plan with execution traits *)
  phase1_cost : float;  (** location-free cost-model value *)
  ship_cost : float;  (** simulated data-transfer cost, ms *)
  groups : int;  (** memo size, for the plan-space experiments *)
  eval_stats : Policy.Evaluator.stats;  (** η etc. from this run *)
  prune_stats : Memo.prune_stats;  (** branch-and-bound effectiveness *)
  violations : Checker.violation list;  (** empty = certified compliant *)
}

type outcome =
  | Planned of planned
  | Rejected of string
      (** the query has no compliant plan in the explored space — the
          "reject" arrow of Figure 2 *)

val is_compliant : outcome -> bool

val optimize :
  ?mode:Memo.mode ->
  ?prune:bool ->
  ?rules:Memo.rules ->
  ?objective:Site_selector.objective ->
  ?required_order:(Attr.t * bool) list ->
  cat:Catalog.t ->
  policies:Policy.Pcatalog.t ->
  Plan.t ->
  outcome
(** Optimize a bound logical plan. [mode] defaults to {!Memo.Compliant};
    {!Memo.Traditional} is the purely cost-based baseline of §7, whose
    output is still placed by the same site selector (all locations
    legal) and then classified by the compliance checker. [prune]
    (default true) toggles the memo's branch-and-bound pruning — see
    {!Memo.create}. *)

val optimize_sql :
  ?mode:Memo.mode ->
  ?prune:bool ->
  ?rules:Memo.rules ->
  ?objective:Site_selector.objective ->
  ?required_order:(Attr.t * bool) list ->
  cat:Catalog.t ->
  policies:Policy.Pcatalog.t ->
  string ->
  outcome
(** Parse, bind and optimize SQL text. Parser/binder errors propagate as
    exceptions ({!Sqlfront.Parser.Error}, {!Sqlfront.Binder.Error}). *)

val pp_outcome : Format.formatter -> outcome -> unit
