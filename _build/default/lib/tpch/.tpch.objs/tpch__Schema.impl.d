lib/tpch/schema.ml: Catalog List Option Relalg String
