lib/policy/negation.mli: Catalog Expression Format Pcatalog Relalg
