(** Materialized interpreter for placed physical plans.

    Executes bottom-up against a {!Storage.Database.t} and accounts the
    bytes, rows and simulated cost of every SHIP operator under the
    message cost model (§7.4 of the paper). *)

type ship_record = {
  from_loc : Catalog.Location.t;
  to_loc : Catalog.Location.t;
  bytes : int;
  rows : int;
  cost_ms : float;
}

type stats = {
  mutable ships : ship_record list;
  mutable rows_processed : int;  (** total rows materialized, all operators *)
}

type result = {
  relation : Storage.Relation.t;
  stats : stats;
  makespan_ms : float;
      (** simulated response time: sibling subtrees proceed in parallel,
          transfers follow the message cost model, local processing is
          charged per materialized row *)
}

val row_cost_ms : float
(** Simulated local processing cost per materialized row (ms). *)

val total_ship_cost : stats -> float
val total_ship_bytes : stats -> int

exception Runtime_error of string
(** Malformed plans (wrong arity, missing relations). *)

val run :
  network:Catalog.Network.t ->
  db:Storage.Database.t ->
  table_cols:(string -> string list) ->
  Pplan.t ->
  result
