(* An in-memory materialized relation: a schema of qualified column
   names over column-major storage (one [Column.t] per attribute, see
   column.ml), with a row-view shim for the row-at-a-time engines.

   A relation can be constructed from rows ([make]) or from columns
   ([of_cols]); the other representation is materialized lazily on
   first access and cached. Relations are immutable, so the caches are
   safe to share; the row-at-a-time engines ([Interp], [Compile]) pay
   no conversion cost on intermediates they build and consume as rows,
   while the vectorized engine reads stored base tables column-major
   (the conversion happens once per stored relation, not per query). *)

open Relalg

(* --- attribute resolution ---------------------------------------

   Column positions are resolved through a precomputed index: one
   hashtable keyed by the full qualified attribute (last occurrence
   wins, like the historical linear scan), and one keyed by the bare
   column name holding the position iff that name is unique in the
   schema. Resolution rule (unchanged): exact match first, then a
   unique match on the bare column name. *)

type resolver = {
  by_attr : (Attr.t, int) Hashtbl.t;
  by_name : (string, int option) Hashtbl.t;
      (* [Some i] = unique bare name at [i]; [None] = ambiguous *)
}

let resolver (schema : Attr.t list) : resolver =
  let n = List.length schema in
  let by_attr = Hashtbl.create (max 8 n) in
  let by_name = Hashtbl.create (max 8 n) in
  List.iteri
    (fun i a ->
      Hashtbl.replace by_attr a i;
      (match Hashtbl.find_opt by_name a.Attr.name with
      | None -> Hashtbl.replace by_name a.Attr.name (Some i)
      | Some _ -> Hashtbl.replace by_name a.Attr.name None))
    schema;
  { by_attr; by_name }

let resolve r (a : Attr.t) : int option =
  match Hashtbl.find_opt r.by_attr a with
  | Some _ as hit -> hit
  | None -> (
    match Hashtbl.find_opt r.by_name a.Attr.name with
    | Some (Some _ as hit) ->
      (* the unique bare-name position; never an exact duplicate of
         [a], or [by_attr] would have hit *)
      hit
    | Some None | None -> None)

let lookup_of_schema schema : Attr.t -> Value.t array -> Value.t =
  let r = resolver schema in
  fun a row ->
    match resolve r a with
    | Some ix when ix < Array.length row -> row.(ix)
    | Some _ | None -> Value.Null

type t = {
  schema : Attr.t list;
  width : int;
  card : int;
  mutable rows_v : Value.t array array option;  (* row-view cache *)
  mutable cols_v : Column.t array option;  (* column-major cache *)
  mutable index_v : resolver option;
      (* built on first lookup; operators that never resolve names
         (e.g. the compiled engine's intermediates) pay nothing.

         All three memo fields are benign races under domains: the
         cached value is a pure function of the immutable schema/rows,
         so concurrent fills compute equal content and a torn winner is
         impossible (option-pointer writes are atomic in the OCaml
         memory model). Deliberately NOT Lazy.t — forcing a Lazy from
         two domains at once raises Lazy.Undefined. *)
  pager : (unit -> Column.t array) option;
      (* [Some load] = disk-backed (segment store): [load ()] pages the
         full column set in from disk. Paged relations never cache a
         materialized view — every [rows]/[cols] access re-reads, which
         is the out-of-core contract (resident working set stays the
         operator's output, not the base table). *)
}

let make ~schema ~rows =
  let n = List.length schema in
  Array.iter
    (fun r ->
      if Array.length r <> n then invalid_arg "Relation.make: row arity mismatch")
    rows;
  { schema; width = n; card = Array.length rows; rows_v = Some rows; cols_v = None;
    index_v = None; pager = None }

let of_cols ~schema ~card cols =
  let n = List.length schema in
  if Array.length cols <> n then invalid_arg "Relation.of_cols: column arity mismatch";
  Array.iter
    (fun c ->
      if Column.length c <> card then
        invalid_arg "Relation.of_cols: column cardinality mismatch")
    cols;
  { schema; width = n; card; rows_v = None; cols_v = Some cols; index_v = None;
    pager = None }

let paged ~schema ~card ~load =
  { schema; width = List.length schema; card; rows_v = None; cols_v = None;
    index_v = None; pager = Some load }

let is_paged t = t.pager <> None

let empty ~schema = make ~schema ~rows:[||]
let schema t = t.schema
let cardinality t = t.card

(* The row-view shim: row-major [Value.t array array], materialized
   from the columns on first access and cached. Callers must not
   mutate the result. *)
let rows_of_cols t cols =
  Array.init t.card (fun i -> Array.init t.width (fun j -> Column.get cols.(j) i))

let rows t =
  match t.rows_v with
  | Some rows -> rows
  | None -> (
    match t.pager with
    | Some load -> rows_of_cols t (load ()) (* paged: never cached *)
    | None ->
      let cols = match t.cols_v with Some c -> c | None -> assert false in
      let rows = rows_of_cols t cols in
      t.rows_v <- Some rows;
      rows)

(* Column-major view, materialized from the rows on first access and
   cached; stored base tables are columnarized up front by
   [Database.add], so queries never pay this. Paged relations re-read
   from disk on every access and cache nothing. *)
let cols t =
  match t.cols_v with
  | Some cols -> cols
  | None -> (
    match t.pager with
    | Some load -> load ()
    | None ->
      let rows = match t.rows_v with Some r -> r | None -> assert false in
      let cols =
        Array.init t.width (fun j ->
            Column.of_values (Array.init t.card (fun i -> rows.(i).(j))))
      in
      t.cols_v <- Some cols;
      cols)

let columnarize t = if t.pager = None then ignore (cols t)

let index t =
  match t.index_v with
  | Some r -> r
  | None ->
    let r = resolver t.schema in
    t.index_v <- Some r;
    r

(* Index of an attribute in the schema: exact match first, then a
   unique match on the bare column name. *)
let find_index t (a : Attr.t) : int option = resolve (index t) a

let lookup_fn t : Attr.t -> Value.t array -> Value.t =
  let r = index t in
  fun a row ->
    match resolve r a with
    | Some ix when ix < Array.length row -> row.(ix)
    | Some _ | None -> Value.Null

(* Total serialized size in bytes (what a SHIP of this relation moves).
   Computed on whichever representation is materialized — both sum
   [Value.byte_width] over every cell, so they agree. *)
let byte_size t =
  match t.cols_v with
  | Some cols -> Array.fold_left (fun acc c -> acc + Column.byte_size c) 0 cols
  | None when t.pager <> None ->
    Array.fold_left (fun acc c -> acc + Column.byte_size c) 0 (cols t)
  | None ->
    Array.fold_left
      (fun acc row -> Array.fold_left (fun acc v -> acc + Value.byte_width v) acc row)
      0 (rows t)

(* Order rows by the given (attribute, descending) keys. Key positions
   are resolved once; unknown attributes read as NULL for every row. *)
let order_by t (keys : (Attr.t * bool) list) =
  let kix =
    List.map (fun (a, desc) -> ((match find_index t a with Some i -> i | None -> -1), desc)) keys
  in
  let get ix (row : Value.t array) =
    if ix >= 0 && ix < Array.length row then row.(ix) else Value.Null
  in
  let cmp r1 r2 =
    let rec go = function
      | [] -> 0
      | (ix, desc) :: rest ->
        let c = Value.compare (get ix r1) (get ix r2) in
        if c <> 0 then if desc then -c else c else go rest
    in
    go kix
  in
  let rows = Array.copy (rows t) in
  Array.stable_sort cmp rows;
  make ~schema:t.schema ~rows

(* First [n] rows. *)
let take t n =
  if cardinality t <= n then t
  else make ~schema:t.schema ~rows:(Array.sub (rows t) 0 n)

let pp ?(max_rows = 20) ppf t =
  Fmt.pf ppf "%a@." Fmt.(list ~sep:(any " | ") Attr.pp) t.schema;
  Array.iteri
    (fun i row ->
      if i < max_rows then
        Fmt.pf ppf "%a@." Fmt.(array ~sep:(any " | ") Value.pp) row)
    (rows t);
  if cardinality t > max_rows then Fmt.pf ppf "... (%d rows)@." (cardinality t)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat "," (List.map Attr.to_string t.schema));
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (Array.to_list (Array.map Value.to_string row)));
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf
