lib/tpch/workload.mli: Catalog Policies
