lib/policy/analysis.mli: Catalog Expr Expression Format Pcatalog Relalg
