(** Cardinality and width estimation for logical plans, driven by
    catalog statistics. System-R style selectivities; only relative
    magnitudes matter, exactly as in the paper's cost model (§6). *)

open Relalg

type col_info = {
  distinct : float;  (** estimated distinct values *)
  width : float;  (** average value width, bytes *)
  lo : float option;  (** numeric minimum, when known *)
  hi : float option;  (** numeric maximum, when known *)
}
(** Per-column statistics, seeded from the catalog at the scans and
    propagated (and capped) through the operators above. *)

type node_est = { rows : float; cols : (Attr.t * col_info) list }
(** Estimated output of one logical operator. *)

val width_of : node_est -> float
(** Estimated row width in bytes. *)

val find_col : node_est -> Attr.t -> col_info
(** Exact match, then unique bare-name match, then a default. *)

val selectivity : node_est -> Pred.t -> float
(** Fraction of input rows satisfying the predicate (System-R
    defaults: [1/distinct] for equality, range interpolation from
    [lo]/[hi], independence across conjuncts). *)

val estimate : Catalog.t -> Plan.t -> node_est
(** Bottom-up estimate of a whole logical plan. *)

val scan_est : Catalog.t -> table:string -> alias:string -> fraction:float -> node_est
(** Estimate for one partition of a table ([fraction] of its rows). *)
