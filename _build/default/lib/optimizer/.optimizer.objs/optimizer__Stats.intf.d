lib/optimizer/stats.mli: Attr Catalog Plan Pred Relalg
