(* Reference interpreter for physical plans: a straightforward
   tree-walker, kept as the semantic baseline the compiling executor
   ([Compile]) is differentially tested against. Executes bottom-up
   against a [Storage.Database.t]; SHIP accounting, retry/backoff,
   profiles and observability all go through the shared [Runtime], so
   both engines produce byte-identical results and stats. *)

open Relalg

(* Re-export the shared scaffolding: [Exec.Interp.Ship_failed] etc.
   remain the same constructors as [Exec.Runtime]'s, so handlers keep
   working whichever engine raised. *)
include Runtime

let run ?(faults = Catalog.Network.Fault.empty) ?(retry = default_retry) ?budget
    ~(network : Catalog.Network.t) ~(db : Storage.Database.t)
    ~(table_cols : string -> string list) (plan : Pplan.t) : result =
  let stats = fresh_stats () in
  let profile = ref [] in
  let mem =
    mem_create
      ~budget:(match budget with Some b -> b | None -> budget_from_env ())
  in
  let spill = Spill.create mem in
  (* completion time of each subtree, for the makespan *)
  let done_at : (Pplan.t, float) Hashtbl.t = Hashtbl.create 64 in
  (* charged output bytes of each subtree, released when the parent
     has consumed (and charged) its own output *)
  let bytes_at : (Pplan.t, int) Hashtbl.t = Hashtbl.create 64 in
  let child_finish p =
    List.fold_left
      (fun acc c -> Float.max acc (try Hashtbl.find done_at c with Not_found -> 0.))
      0. p.Pplan.children
  in
  (* [rpath] is the node's root-to-node child-index path, reversed. *)
  let rec exec (rpath : int list) (p : Pplan.t) : Storage.Relation.t =
    let exec1 c = exec (0 :: rpath) c in
    let exec2 l r =
      (* Right child first: SHIP indices (and with them the
         deterministic per-attempt drop fates) follow execution order.
         This is part of the child-iteration contract every engine must
         honor — see runtime.mli — and asserted by the "ship order
         contract" test in test/test_exec.ml. *)
      let rrel = exec (1 :: rpath) r in
      let lrel = exec (0 :: rpath) l in
      (lrel, rrel)
    in
    let rel =
      match p.Pplan.node, p.Pplan.children with
      | Pplan.Table_scan { table; alias; partition }, [] ->
        check_replica ~faults ~table ~partition ~site:p.Pplan.loc;
        let r = Storage.Database.find_exn db ~table ~partition () in
        let schema =
          (* re-qualify the stored schema with the query alias *)
          List.map2
            (fun (_ : Attr.t) c -> Attr.make ~rel:alias ~name:c)
            (Storage.Relation.schema r) (table_cols table)
        in
        Storage.Relation.make ~schema ~rows:(Storage.Relation.rows r)
      | Pplan.Filter pred, [ c ] ->
        let r = exec1 c in
        let look = Storage.Relation.lookup_fn r in
        let rows =
          Array.of_seq
            (Seq.filter
               (fun row -> Pred.eval (fun a -> look a row) pred)
               (Array.to_seq (Storage.Relation.rows r)))
        in
        Storage.Relation.make ~schema:(Storage.Relation.schema r) ~rows
      | Pplan.Project items, [ c ] ->
        let r = exec1 c in
        let look = Storage.Relation.lookup_fn r in
        let schema = List.map snd items in
        let exprs = Array.of_list (List.map fst items) in
        let rows =
          Array.map
            (fun row -> Array.map (fun e -> Expr.eval (fun a -> look a row) e) exprs)
            (Storage.Relation.rows r)
        in
        Storage.Relation.make ~schema ~rows
      | Pplan.Hash_join { keys; residual }, [ l; r ] ->
        let lrel, rrel = exec2 l r in
        let llook = Storage.Relation.lookup_fn lrel
        and rlook = Storage.Relation.lookup_fn rrel in
        let lkeys = List.map fst keys and rkeys = List.map snd keys in
        let schema = Storage.Relation.schema lrel @ Storage.Relation.schema rrel in
        let out = ref [] in
        let jlook = Storage.Relation.lookup_of_schema schema in
        let keep =
          match residual with
          | Pred.True -> fun _ -> true
          | residual -> fun row -> Pred.eval (fun a -> jlook a row) residual
        in
        let emit lrow rrow =
          let row = Array.append lrow rrow in
          if keep row then out := row :: !out
        in
        (* the in-memory kernel's scratch state is the build-side hash
           table — charge (or spill on) the build side's bytes *)
        let build_bytes = Storage.Relation.byte_size rrel in
        if should_spill mem build_bytes then begin
          let keyf look keys row =
            let k = Array.of_list (List.map (fun a -> look a row) keys) in
            if Array.exists Value.is_null k then None else Some k
          in
          Spill.join spill ~build_bytes ~lkey:(keyf llook lkeys)
            ~rkey:(keyf rlook rkeys) ~emit
            (Storage.Relation.rows lrel)
            (Storage.Relation.rows rrel)
        end
        else begin
          mem_charge mem build_bytes;
          let tbl = Row_tbl.create (max 16 (Storage.Relation.cardinality rrel)) in
          Array.iter
            (fun row ->
              let k = Array.of_list (List.map (fun a -> rlook a row) rkeys) in
              if not (Array.exists Value.is_null k) then Row_tbl.add tbl k row)
            (Storage.Relation.rows rrel);
          Array.iter
            (fun lrow ->
              let k = Array.of_list (List.map (fun a -> llook a lrow) lkeys) in
              if not (Array.exists Value.is_null k) then
                List.iter (fun rrow -> emit lrow rrow) (Row_tbl.find_all tbl k))
            (Storage.Relation.rows lrel);
          mem_release mem build_bytes
        end;
        Storage.Relation.make ~schema ~rows:(Array.of_list (List.rev !out))
      | Pplan.Nl_join pred, [ l; r ] ->
        let lrel, rrel = exec2 l r in
        let schema = Storage.Relation.schema lrel @ Storage.Relation.schema rrel in
        let look = Storage.Relation.lookup_of_schema schema in
        let out = ref [] in
        Array.iter
          (fun lrow ->
            Array.iter
              (fun rrow ->
                let row = Array.append lrow rrow in
                if Pred.eval (fun a -> look a row) pred then out := row :: !out)
              (Storage.Relation.rows rrel))
          (Storage.Relation.rows lrel);
        Storage.Relation.make ~schema ~rows:(Array.of_list (List.rev !out))
      | Pplan.Hash_agg { keys; aggs }, [ c ] ->
        let r = exec1 c in
        let look = Storage.Relation.lookup_fn r in
        let schema =
          keys @ List.map (fun (a : Expr.agg) -> Attr.unqualified a.alias) aggs
        in
        let finish_group k accs =
          Array.append k
            (Array.of_list
               (List.mapi (fun i (a : Expr.agg) -> finish a.fn accs.(i)) aggs))
        in
        let feed_row accs row =
          List.iteri
            (fun i (a : Expr.agg) ->
              feed accs.(i) (Expr.eval (fun at -> look at row) a.arg))
            aggs
        in
        (* the in-memory kernel's scratch is the group table, bounded by
           the input — charge (or spill on) the input's bytes. A global
           aggregate ([keys = []]) has one group and never spills. *)
        let input_bytes = Storage.Relation.byte_size r in
        let rows =
          if keys <> [] && should_spill mem input_bytes then begin
            let out = ref [] in
            Spill.agg spill ~input_bytes
              ~key:(fun row ->
                Array.of_list (List.map (fun a -> look a row) keys))
              ~na:(List.length aggs) ~feed_row
              ~emit_group:(fun k accs -> out := finish_group k accs :: !out)
              (Storage.Relation.rows r);
            Array.of_list (List.rev !out)
          end
          else begin
            mem_charge mem input_bytes;
            let groups : (Value.t array * acc array) Row_tbl.t =
              Row_tbl.create 64
            in
            let order = ref [] in
            Array.iter
              (fun row ->
                let k = Array.of_list (List.map (fun a -> look a row) keys) in
                let _, accs =
                  match Row_tbl.find_opt groups k with
                  | Some e -> e
                  | None ->
                    let e =
                      (k, Array.init (List.length aggs) (fun _ -> fresh_acc ()))
                    in
                    Row_tbl.add groups k e;
                    order := k :: !order;
                    e
                in
                feed_row accs row)
              (Storage.Relation.rows r);
            (* a global aggregate over an empty input still yields one row *)
            if keys = [] && Row_tbl.length groups = 0 then begin
              let e = ([||], Array.init (List.length aggs) (fun _ -> fresh_acc ())) in
              Row_tbl.add groups [||] e;
              order := [||] :: !order
            end;
            let rows =
              List.rev_map
                (fun k ->
                  let _, accs = Row_tbl.find groups k in
                  finish_group k accs)
                !order
              |> Array.of_list
            in
            mem_release mem input_bytes;
            rows
          end
        in
        Storage.Relation.make ~schema ~rows
      | Pplan.Sort keys, [ c ] ->
        let r = exec1 c in
        Storage.Relation.order_by r keys
      | Pplan.Merge_join { keys; residual }, [ l; r ] ->
        (* inputs arrive sorted ascending on their key columns *)
        let lrel, rrel = exec2 l r in
        let llook = Storage.Relation.lookup_fn lrel
        and rlook = Storage.Relation.lookup_fn rrel in
        let lkeys = List.map fst keys and rkeys = List.map snd keys in
        let lrows = Storage.Relation.rows lrel and rrows = Storage.Relation.rows rrel in
        let keyl row = List.map (fun a -> llook a row) lkeys in
        let keyr row = List.map (fun a -> rlook a row) rkeys in
        let schema = Storage.Relation.schema lrel @ Storage.Relation.schema rrel in
        let jlook = Storage.Relation.lookup_of_schema schema in
        let keep =
          match residual with
          | Pred.True -> fun _ -> true
          | residual -> fun row -> Pred.eval (fun a -> jlook a row) residual
        in
        let out = ref [] in
        let nl = Array.length lrows and nr = Array.length rrows in
        let j = ref 0 in
        let i = ref 0 in
        while !i < nl && !j < nr do
          let kl = keyl lrows.(!i) in
          if List.exists Value.is_null kl then incr i
          else begin
            let c = List.compare Value.compare kl (keyr rrows.(!j)) in
            if c < 0 then incr i
            else if c > 0 then incr j
            else begin
              (* find the run of equal right keys *)
              let j2 = ref !j in
              while
                !j2 < nr && List.compare Value.compare kl (keyr rrows.(!j2)) = 0
              do
                incr j2
              done;
              (* emit pairs for every left row sharing this key *)
              let i2 = ref !i in
              while !i2 < nl && List.compare Value.compare (keyl lrows.(!i2)) kl = 0 do
                for jj = !j to !j2 - 1 do
                  let row = Array.append lrows.(!i2) rrows.(jj) in
                  if keep row then out := row :: !out
                done;
                incr i2
              done;
              i := !i2;
              j := !j2
            end
          end
        done;
        Storage.Relation.make ~schema ~rows:(Array.of_list (List.rev !out))
      | Pplan.Union_all, (_ :: _ as children) ->
        (* children left-to-right, explicitly (ship-order determinism) *)
        let rec exec_children i = function
          | [] -> []
          | c :: rest ->
            let r = exec (i :: rpath) c in
            r :: exec_children (i + 1) rest
        in
        let rels = exec_children 0 children in
        let schema = Storage.Relation.schema (List.hd rels) in
        let rows = Array.concat (List.map Storage.Relation.rows rels) in
        Storage.Relation.make ~schema ~rows
      | Pplan.Ship { from_loc; to_loc }, [ c ] ->
        let r = exec1 c in
        let bytes = Storage.Relation.byte_size r in
        let (_ : ship_record) =
          do_ship ~faults ~retry ~network ~stats ~from_loc ~to_loc ~bytes
            ~rows:(Storage.Relation.cardinality r)
        in
        r
      | node, children ->
        fail "malformed plan: %s with %d children" (Pplan.node_label node)
          (List.length children)
    in
    let card = Storage.Relation.cardinality rel in
    let bytes = Storage.Relation.byte_size rel in
    let ship =
      match p.Pplan.node with
      | Pplan.Ship _ -> ( match stats.ships with s :: _ -> Some s | [] -> None)
      | _ -> None
    in
    record_node ~stats ~profile ~rpath ~label:(Pplan.node_label p.Pplan.node)
      ~loc:p.Pplan.loc ~ship ~card ~bytes;
    (* Budget account: charge this operator's materialized output and
       release the children's now that they are consumed. A SHIP is an
       alias of its child (no new materialization): charge nothing,
       keep the child's charge live under this node's entry. *)
    (match p.Pplan.node with
    | Pplan.Ship _ -> ()
    | _ ->
      mem_charge mem bytes;
      List.iter
        (fun c ->
          match Hashtbl.find_opt bytes_at c with
          | Some b -> mem_release mem b
          | None -> ())
        p.Pplan.children);
    Hashtbl.replace bytes_at p bytes;
    let own_time =
      match p.Pplan.node with
      | Pplan.Ship _ ->
        (* the transfer cost was just recorded as the head of ships *)
        (match stats.ships with s :: _ -> s.cost_ms | [] -> 0.)
      | _ -> float_of_int card *. row_cost_ms
    in
    Hashtbl.replace done_at p (child_finish p +. own_time);
    rel
  in
  let relation =
    Fun.protect
      ~finally:(fun () ->
        Spill.cleanup spill;
        mem_finish mem)
      (fun () -> Obs.Trace.span "exec.run" (fun () -> exec [] plan))
  in
  { relation; stats; profile = List.rev !profile;
    makespan_ms = (try Hashtbl.find done_at plan with Not_found -> 0.) }
