lib/catalog/catalog.ml: Fmt List Location Map Network Printf String Table_def
