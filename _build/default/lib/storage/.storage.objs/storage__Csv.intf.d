lib/storage/csv.mli: Attr Relalg Relation Value
