(** The six TPC-H queries of the paper's workload (§7.1), adapted to
    the Select-Project-Join-GroupBy subset. Join counts: Q3 = 2,
    Q10 = 3, Q5 = Q9 = 5, Q8 = 7, Q2 = 8 (the paper's low / medium /
    high complexity buckets). *)

val q2 : string
val q3 : string
val q5 : string
val q8 : string
val q9 : string
val q10 : string

val all : (string * string) list
(** [(name, sql)] pairs in Q2, Q3, Q5, Q8, Q9, Q10 order — the paper's
    workload. *)

(** {2 Extended workload}

    Six more TPC-H queries fitting the SPJG subset, beyond the paper's
    six: Q1 and Q6 are single-site pricing summaries over lineitem, Q7
    carries a disjunctive cross-table predicate, Q11 is a three-way
    value rollup, Q12 compares date columns to each other, and Q19 is
    the OR-of-conjunctions part/lineitem query. *)

val q1 : string
val q6 : string
val q7 : string
val q11 : string
val q12 : string
val q19 : string

val extended : (string * string) list
val all_extended : (string * string) list

val by_name : string -> string
(** Case-insensitive lookup over {!all_extended}; raises
    [Invalid_argument] for unknown names. *)
