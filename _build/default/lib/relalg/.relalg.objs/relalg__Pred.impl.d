lib/relalg/pred.ml: Attr Expr Fmt Hashtbl List Stdlib String Value
