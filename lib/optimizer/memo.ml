(* A memo-based top-down optimizer in the style of the Volcano optimizer
   generator (§6.1), extended with the paper's compliance machinery:

   - groups of logically-equivalent expressions, deduplicated by a
     canonical representative (Normalize.canon);
   - transformation rules: join commutativity, join associativity and
     eager aggregation pushdown (the rule §6.4 identifies as necessary
     for completeness);
   - annotation rules AR1–AR4 deriving *execution traits* ℰ (where an
     operator may legally run) and *shipping traits* 𝒮 (where its output
     may legally be sent) bottom-up;
   - the compliance-based cost function: an alternative whose execution
     trait is empty has infinite cost, i.e. it is pruned.

   Because the phase-1 cost model ignores data location (§6, two-phase
   optimization), the cost of a plan is independent of its traits; each
   group therefore keeps a small Pareto frontier of (cost, 𝒮)
   alternatives — the analogue of Calcite's trait-bearing equivalence
   nodes whose doubling of the plan space the paper reports in §7.3. *)

open Relalg
module Locset = Catalog.Location.Set

(* Observability: process-wide memo counters (cheap, unconditional) and
   trace events (guarded on [Obs.Trace.enabled], so the optimizer hot
   path pays one load per site when tracing is off). *)
let c_groups = Obs.Metrics.counter "cgqp_optimizer_memo_groups_total"
let c_exprs = Obs.Metrics.counter "cgqp_optimizer_memo_exprs_total"

let c_rule rule =
  Obs.Metrics.counter ~labels:[ ("rule", rule) ] "cgqp_optimizer_rule_firings_total"

let c_rule_commute = c_rule "join_commute"
let c_rule_associate = c_rule "join_associate"
let c_rule_eager_agg = c_rule "eager_aggregation"
let c_rule_union_pushdown = c_rule "union_pushdown"

let c_pruned kind =
  Obs.Metrics.counter ~labels:[ ("kind", kind) ] "cgqp_optimizer_pruned_total"

let c_pruned_group = c_pruned "group"
let c_pruned_entry = c_pruned "entry"
let c_pruned_combo = c_pruned "combo"

type gid = int

type mexpr =
  | E_scan of {
      table : string;
      alias : string;
      partition : int;
      location : Catalog.Location.t;
      fraction : float;
    }
  | E_filter of Pred.t * gid
  | E_project of (Expr.scalar * Attr.t) list * gid
  | E_join of Pred.t * gid * gid
  | E_agg of Attr.t list * Expr.agg list * gid
  | E_union of gid list

type group = {
  id : gid;
  repr : Plan.t;  (* canonical logical form *)
  mutable exprs : mexpr list;
  mutable explored : bool;
  mutable entries : entry list option;
  est : Stats.node_est;
  summary : Summary.t;
  tables : (string * string) list;  (* alias -> table *)
  partition_tag : int;  (* >= 0 when the whole subtree reads one partition *)
  single_loc : Catalog.Location.t option;
  policy_ships : Locset.t Lazy.t;  (* AR4 contribution for this group *)
  lb : float;  (* static lower bound on any entry's cost *)
}

and entry = {
  cost : float;
  exec_trait : Locset.t;  (* ℰ *)
  ship_trait : Locset.t;  (* 𝒮 *)
  order : (Attr.t * bool) list;  (* delivered sort order (attr, desc) *)
  phys : phys;  (* physical algorithm for the operator *)
  mex : mexpr;
  sub : entry list;  (* chosen child entries, in child order *)
}

(* Physical alternative: joins may run as hash (default; preserves the
   probe side's order) or as merge, with sort enforcers on the inputs
   that do not already deliver the join-key order — the Volcano enforcer
   mechanism of the paper's Figure 3. *)
and phys = P_default | P_merge of { sort_left : bool; sort_right : bool }

type mode = Compliant | Traditional

(* Transformation-rule toggles, for the ablation experiments: the
   paper's completeness discussion (§6.4) hinges on which algebraic
   rules the Volcano generator is given. *)
type rules = {
  join_commute : bool;
  join_associate : bool;
  eager_aggregation : bool;
  union_pushdown : bool;
}

let default_rules =
  { join_commute = true; join_associate = true; eager_aggregation = true;
    union_pushdown = true }

type prune_stats = {
  bound : float;  (* the global upper bound U; infinity = never seeded *)
  groups_pruned : int;
  entries_pruned : int;
  combos_pruned : int;
}

type t = {
  cat : Catalog.t;
  policies : Policy.Pcatalog.t;
  mode : mode;
  rules : rules;
  eval_stats : Policy.Evaluator.stats option;
  mutable groups : group list;  (* newest first; lookup by id via array below *)
  arr : (gid, group) Hashtbl.t;
  by_key : (string, gid) Hashtbl.t;  (* canonical repr (+ partition tag) -> group *)
  table_cols : string -> string list;
  mutable next_id : int;
  max_frontier : int;
  prune : bool;  (* branch-and-bound pruning enabled *)
  mutable naive : bool;  (* phase-A bound seeding: original exprs only *)
  mutable bound : float;  (* best known complete-plan cost U *)
  mutable groups_pruned : int;
  mutable entries_pruned : int;
  mutable combos_pruned : int;
}

let create ?(max_frontier = 8) ?(prune = true) ?(rules = default_rules) ?eval_stats
    ~mode ~cat ~policies () =
  let table_cols name = Catalog.table_cols cat name in
  {
    cat;
    policies;
    mode;
    rules;
    eval_stats;
    groups = [];
    arr = Hashtbl.create 64;
    by_key = Hashtbl.create 64;
    table_cols;
    next_id = 0;
    max_frontier;
    prune;
    naive = false;
    bound = Float.infinity;
    groups_pruned = 0;
    entries_pruned = 0;
    combos_pruned = 0;
  }

let prune_stats m =
  { bound = m.bound; groups_pruned = m.groups_pruned; entries_pruned = m.entries_pruned;
    combos_pruned = m.combos_pruned }

let group m id = Hashtbl.find m.arr id
let group_count m = m.next_id

let attrs_of g = List.map fst g.est.Stats.cols

let attr_set_of g =
  List.fold_left (fun s a -> Attr.Set.add a s) Attr.Set.empty (attrs_of g)

(* --- group creation --- *)

let group_key (repr : Plan.t) ~(partition : int) =
  Printf.sprintf "%d|%s" partition (Plan.to_string repr)

let all_locations m = Locset.of_list (Catalog.locations m.cat)

(* Exploration-independent lower bound on the cost of any entry of a
   group: every member plan is a tree whose leaves scan each referenced
   base table exactly once (transformation rules preserve the base
   tables), every scan costs its estimated row count, and all other
   operator costs are nonnegative — so the summed scan estimates bound
   any alternative, including ones created by rules that have not fired
   yet. This is what makes branch-and-bound pruning safe to apply
   before a group is explored. *)
let static_lb m ~(tables : (string * string) list) ~(partition : int) : float =
  let scan_rows cnt f = Float.max 1.0 (float_of_int cnt *. f) in
  List.fold_left
    (fun acc (_, t) ->
      match Catalog.find_table m.cat t with
      | None -> acc
      | Some { def; placements } ->
        let cnt = def.Catalog.Table_def.row_count in
        let contribution =
          if partition >= 0 then
            (* single-partition subtree: only that partition's share *)
            match List.nth_opt placements partition with
            | Some pl -> scan_rows cnt pl.Catalog.fraction
            | None -> scan_rows cnt 1.0
          else
            (* partitioned tables read as the union of their partition
               scans; each partition scan is costed separately *)
            List.fold_left
              (fun s (pl : Catalog.placement) -> s +. scan_rows cnt pl.Catalog.fraction)
              0. placements
        in
        acc +. contribution)
    0. tables

let new_group m ~repr ~partition ~est (expr_of_group : gid -> mexpr list) : gid =
  let id = m.next_id in
  m.next_id <- id + 1;
  let summary = Summary.analyze ~table_cols:m.table_cols repr in
  let tables = Plan.base_tables repr in
  (* A partition-tagged group reads exactly one partition of one table:
     its subquery is local to that partition's site, so AR4 applies
     there and the estimate is scaled by the partition fraction. *)
  let partition_placement =
    if partition < 0 then None
    else
      match tables with
      | [ (_, t) ] -> List.nth_opt (Catalog.placements m.cat t) partition
      | _ -> None
  in
  let single_loc =
    match partition_placement with
    | Some pl -> Some pl.Catalog.location
    | None ->
      let locs =
        List.sort_uniq String.compare
          (List.concat_map
             (fun (_, t) ->
               List.map
                 (fun (p : Catalog.placement) -> p.location)
                 (Catalog.placements m.cat t))
             tables)
      in
      (match locs with [ l ] -> Some l | _ -> None)
  in
  let policy_ships =
    lazy
      (match m.mode with
      | Traditional -> Locset.empty
      | Compliant -> (
        match single_loc with
        | None -> Locset.empty
        | Some _ ->
          Policy.Evaluator.locations_for ?stats:m.eval_stats ~include_home:false
            ~catalog:m.cat ~policies:m.policies summary))
  in
  let g =
    { id; repr; exprs = []; explored = false; entries = None; est; summary; tables;
      partition_tag = partition; single_loc; policy_ships;
      lb = static_lb m ~tables ~partition }
  in
  Hashtbl.replace m.arr id g;
  m.groups <- g :: m.groups;
  Hashtbl.replace m.by_key (group_key repr ~partition) id;
  g.exprs <- expr_of_group id;
  Obs.Metrics.inc c_groups;
  Obs.Metrics.inc ~by:(List.length g.exprs) c_exprs;
  if Obs.Trace.enabled () then
    Obs.Trace.instant "memo.group"
      [
        ("gid", Obs.Json.Num (float_of_int id));
        ("repr", Obs.Json.Str (Plan.to_string repr));
        ("partition", Obs.Json.Num (float_of_int partition));
        ("est_rows", Obs.Json.Num est.Stats.rows);
      ];
  id

(* --- m-expr structural equality (children by gid) --- *)

let mexpr_equal (a : mexpr) (b : mexpr) =
  match a, b with
  | E_scan x, E_scan y ->
    String.equal x.table y.table && String.equal x.alias y.alias && x.partition = y.partition
  | E_filter (p1, g1), E_filter (p2, g2) -> g1 = g2 && Pred.equal p1 p2
  | E_project (i1, g1), E_project (i2, g2) ->
    g1 = g2
    && List.compare
         (fun (e1, n1) (e2, n2) ->
           let c = Expr.compare_scalar e1 e2 in
           if c <> 0 then c else Attr.compare n1 n2)
         i1 i2
       = 0
  | E_join (p1, l1, r1), E_join (p2, l2, r2) -> l1 = l2 && r1 = r2 && Pred.equal p1 p2
  | E_agg (k1, a1, g1), E_agg (k2, a2, g2) ->
    g1 = g2
    && List.compare Attr.compare k1 k2 = 0
    && List.compare
         (fun (x : Expr.agg) (y : Expr.agg) ->
           match Stdlib.compare x.fn y.fn with
           | 0 -> (
             match Expr.compare_scalar x.arg y.arg with
             | 0 -> String.compare x.alias y.alias
             | c -> c)
           | c -> c)
         a1 a2
       = 0
  | E_union g1, E_union g2 -> g1 = g2
  | (E_scan _ | E_filter _ | E_project _ | E_join _ | E_agg _ | E_union _), _ -> false

let add_expr (g : group) (e : mexpr) : bool =
  if List.exists (mexpr_equal e) g.exprs then false
  else begin
    g.exprs <- g.exprs @ [ e ];
    Obs.Metrics.inc c_exprs;
    true
  end

(* --- ingestion --- *)

let repr_of_expr m (e : mexpr) : Plan.t =
  let r id = (group m id).repr in
  match e with
  | E_scan { table; alias; _ } -> Plan.Scan { table; alias }
  | E_filter (p, i) -> Plan.Select (p, r i)
  | E_project (items, i) -> Plan.Project (items, r i)
  | E_join (p, l, r') -> Plan.Join (p, r l, r r')
  | E_agg (keys, aggs, i) -> Plan.Aggregate { keys; aggs; input = r i }
  | E_union gs -> Plan.Union (List.map r gs)

(* Find-or-create the group holding [e]; the expression is added to the
   group's expression list if not already present. *)
let rec group_of_expr m (e : mexpr) : gid =
  let repr = Normalize.canon (repr_of_expr m e) in
  let partition =
    match e with
    | E_scan s -> s.partition
    | E_filter (_, i) | E_project (_, i) | E_agg (_, _, i) -> (group m i).partition_tag
    | E_join _ | E_union _ -> -1
  in
  match Hashtbl.find_opt m.by_key (group_key repr ~partition) with
  | Some id ->
    ignore (add_expr (group m id) e);
    id
  | None ->
    let est =
      match e with
      | E_scan { table; alias; fraction; _ } -> Stats.scan_est m.cat ~table ~alias ~fraction
      | _ ->
        let base = Stats.estimate m.cat repr in
        if partition < 0 then base
        else
          (* scale a single-partition wrapper by its fraction *)
          let frac =
            match Plan.base_tables repr with
            | [ (_, t) ] -> (
              match List.nth_opt (Catalog.placements m.cat t) partition with
              | Some pl -> pl.Catalog.fraction
              | None -> 1.0)
            | _ -> 1.0
          in
          { base with Stats.rows = Float.max 1.0 (base.Stats.rows *. frac) }
    in
    new_group m ~repr ~partition ~est (fun _ -> [ e ])

and ingest m (plan : Plan.t) : gid =
  match plan with
  | Plan.Scan { table; alias } -> (
    match Catalog.placements m.cat table with
    | [ p ] ->
      group_of_expr m
        (E_scan { table; alias; partition = 0; location = p.location; fraction = 1.0 })
    | ps ->
      (* §7.5: a partitioned table reads as the union of its partition
         scans, one per location *)
      let part_gids =
        List.mapi
          (fun i (p : Catalog.placement) ->
            group_of_expr m
              (E_scan
                 { table; alias; partition = i; location = p.location; fraction = p.fraction }))
          ps
      in
      (* register the union group under the plain scan's key so joins
         referencing the table resolve to it *)
      let repr = Normalize.canon plan in
      (match Hashtbl.find_opt m.by_key (group_key repr ~partition:(-1)) with
      | Some id ->
        ignore (add_expr (group m id) (E_union part_gids));
        id
      | None ->
        let est = Stats.scan_est m.cat ~table ~alias ~fraction:1.0 in
        new_group m ~repr ~partition:(-1) ~est (fun _ -> [ E_union part_gids ])))
  | Plan.Select (p, i) -> group_of_expr m (E_filter (p, ingest m i))
  | Plan.Project (items, i) -> group_of_expr m (E_project (items, ingest m i))
  | Plan.Join (p, l, r) -> group_of_expr m (E_join (p, ingest m l, ingest m r))
  | Plan.Aggregate { keys; aggs; input } -> group_of_expr m (E_agg (keys, aggs, ingest m input))
  | Plan.Union xs -> group_of_expr m (E_union (List.map (ingest m) xs))

(* --- transformation rules --- *)

let equi_pairs m (p : Pred.t) ~(lset : Attr.Set.t) ~(rset : Attr.Set.t) :
    ((Attr.t * Attr.t) list * Pred.t list) option =
  ignore m;
  let pairs, residual =
    List.fold_left
      (fun (pairs, residual) c ->
        match c with
        | Pred.Atom (Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b)) ->
          if Attr.Set.mem a lset && Attr.Set.mem b rset then ((a, b) :: pairs, residual)
          else if Attr.Set.mem b lset && Attr.Set.mem a rset then
            ((b, a) :: pairs, residual)
          else (pairs, c :: residual)
        | _ -> (pairs, c :: residual))
      ([], []) (Pred.conjuncts p)
  in
  if pairs = [] then None else Some (List.rev pairs, List.rev residual)

let reagg_fn = function
  | Expr.Sum -> Some Expr.Sum
  | Expr.Count -> Some Expr.Sum  (* a count re-aggregates by summing partial counts *)
  | Expr.Min -> Some Expr.Min
  | Expr.Max -> Some Expr.Max
  | Expr.Avg -> None

(* Eager aggregation (Yan-Larson style): G_{keys,aggs}(L join_p R) ->
   G_{keys,aggs'}(L join_p G_{(keys cap R) u joincols(R), partial}(R)).

   Sound when the left join columns contain a key of a single left base
   table (each partial group matches at most one left row, so partial
   results are never duplicated). Aggregates over R columns are pushed
   and re-aggregated above; aggregates over L columns stay on top, with
   SUMs scaled by the partial COUNT so duplicate sensitivity is
   preserved — this is what lets the Figure 1(b) plan push only the
   Supply aggregate below the join while keeping sum(totprice) exact. *)
let try_eager_agg m ~keys ~aggs ~pred ~gl ~gr : mexpr option =
  let lgroup = group m gl and rgroup = group m gr in
  let lset = attr_set_of lgroup and rset = attr_set_of rgroup in
  let qualified_cols e =
    Attr.Set.for_all (fun c -> Attr.is_qualified c) (Expr.cols e)
  in
  match equi_pairs m pred ~lset ~rset with
  | None -> None
  | Some (pairs, residual) ->
    if residual <> [] then None
    else
      (* split the aggregates into pushable (over R) and kept (over L) *)
      let classify (a : Expr.agg) =
        let cols = Expr.cols a.arg in
        if Attr.Set.is_empty cols then
          (* COUNT over a constant counts join rows; rewrite to a sum of
             partial group counts *)
          Some (`Push_count a)
        else if Attr.Set.subset cols rset && qualified_cols a.arg then
          if reagg_fn a.fn <> None then Some (`Push a) else None
        else if Attr.Set.subset cols lset then
          match a.fn with
          | Expr.Sum -> Some (`Keep_scaled a)
          | Expr.Min | Expr.Max -> Some (`Keep a)
          | Expr.Count | Expr.Avg -> None
        else None
      in
      let classified = List.map classify aggs in
      if List.exists Option.is_none classified then None
      else
        let classified = List.filter_map Fun.id classified in
        let any_push =
          List.exists (function `Push _ -> true | _ -> false) classified
        in
        if not any_push then None
        else
          let lcols = List.map fst pairs in
          (* all left join columns on one alias, covering that table's key *)
          let laliases =
            List.sort_uniq String.compare (List.map (fun a -> a.Attr.rel) lcols)
          in
          match laliases with
          | [ alias ] -> (
            match List.assoc_opt alias lgroup.tables with
            | None -> None
            | Some table ->
              let def = Catalog.table_def m.cat table in
              let names = List.map (fun a -> a.Attr.name) lcols in
              if not (Catalog.Table_def.is_key def names) then None
              else begin
                let needs_count =
                  List.exists
                    (function `Keep_scaled _ | `Push_count _ -> true | _ -> false)
                    classified
                in
                let cnt_alias = "cnt__p" in
                let rkeys_from_group_keys =
                  List.filter (fun k -> Attr.Set.mem k rset) keys
                in
                let partial_keys =
                  List.sort_uniq Attr.compare (List.map snd pairs @ rkeys_from_group_keys)
                in
                let partial_aggs =
                  List.filter_map
                    (function
                      | `Push (a : Expr.agg) ->
                        Some { a with Expr.alias = a.alias ^ "__p" }
                      | `Push_count _ | `Keep_scaled _ | `Keep _ -> None)
                    classified
                  @
                  if needs_count then
                    [ { Expr.fn = Expr.Count; arg = Expr.Const (Value.Int 1);
                        alias = cnt_alias } ]
                  else []
                in
                let g_pa = group_of_expr m (E_agg (partial_keys, partial_aggs, gr)) in
                let g_join = group_of_expr m (E_join (pred, gl, g_pa)) in
                let cnt_col = Expr.Col (Attr.unqualified cnt_alias) in
                let top_aggs =
                  List.map
                    (function
                      | `Push (a : Expr.agg) ->
                        let fn =
                          match reagg_fn a.fn with Some fn -> fn | None -> assert false
                        in
                        { Expr.fn; arg = Expr.Col (Attr.unqualified (a.alias ^ "__p"));
                          alias = a.alias }
                      | `Push_count (a : Expr.agg) ->
                        { Expr.fn = Expr.Sum; arg = cnt_col; alias = a.alias }
                      | `Keep_scaled (a : Expr.agg) ->
                        { a with Expr.arg = Expr.Binop (Expr.Mul, a.arg, cnt_col) }
                      | `Keep (a : Expr.agg) -> a)
                    classified
                in
                Some (E_agg (keys, top_aggs, g_join))
              end)
          | _ -> None

let rec apply_rules m (_g : group) (e : mexpr) : mexpr list =
  match e with
  | E_join (p, gl, gr) ->
    let commuted = if m.rules.join_commute then [ E_join (p, gr, gl) ] else [] in
    (* associativity: (A ⋈ B) ⋈ C → A ⋈ (B ⋈ C) *)
    if m.rules.join_associate then explore m (group m gl);
    let assoc =
      if not m.rules.join_associate then []
      else
      List.filter_map
        (fun le ->
          match le with
          | E_join (p2, ga, gb) -> (
            let pool = Pred.conjuncts p @ Pred.conjuncts p2 in
            let bset = attr_set_of (group m gb) and cset = attr_set_of (group m gr) in
            let bc = Attr.Set.union bset cset in
            let p_br, p_top =
              List.partition (fun c -> Attr.Set.subset (Pred.cols c) bc) pool
            in
            match p_br with
            | [] -> None (* avoid introducing cartesian products *)
            | _ ->
              let g_bc = group_of_expr m (E_join (Pred.conj_all p_br, gb, gr)) in
              Some (E_join (Pred.conj_all p_top, ga, g_bc)))
          | E_scan _ | E_filter _ | E_project _ | E_agg _ | E_union _ -> None)
        (group m gl).exprs
    in
    Obs.Metrics.inc ~by:(List.length commuted) c_rule_commute;
    Obs.Metrics.inc ~by:(List.length assoc) c_rule_associate;
    commuted @ assoc
  | E_agg (keys, aggs, gi) ->
    (* The aggregate-past-join rewrite is the extra rule the paper's
       optimizer needs for completeness (§6.4, Fig. 5(e)); the
       traditional baseline — Calcite's default rule set "as-is" — does
       not apply it. *)
    if m.mode = Traditional || not m.rules.eager_aggregation then []
    else begin
      explore m (group m gi);
      let fired =
        List.filter_map
          (fun ie ->
            match ie with
            | E_join (p, gl, gr) -> try_eager_agg m ~keys ~aggs ~pred:p ~gl ~gr
            | E_scan _ | E_filter _ | E_project _ | E_agg _ | E_union _ -> None)
          (group m gi).exprs
      in
      Obs.Metrics.inc ~by:(List.length fired) c_rule_eager_agg;
      fired
    end
  | E_filter (p, gi) when m.rules.union_pushdown ->
    (* distribute a filter over a union of partition scans so each
       branch stays a single-partition (single-database) subquery that
       AR4 can evaluate *)
    explore m (group m gi);
    let fired =
      List.filter_map
        (fun ie ->
          match ie with
          | E_union branches ->
            Some (E_union (List.map (fun b -> group_of_expr m (E_filter (p, b))) branches))
          | E_scan _ | E_filter _ | E_project _ | E_join _ | E_agg _ -> None)
        (group m gi).exprs
    in
    Obs.Metrics.inc ~by:(List.length fired) c_rule_union_pushdown;
    fired
  | E_project (items, gi) when m.rules.union_pushdown ->
    explore m (group m gi);
    let fired =
      List.filter_map
        (fun ie ->
          match ie with
          | E_union branches ->
            Some
              (E_union (List.map (fun b -> group_of_expr m (E_project (items, b))) branches))
          | E_scan _ | E_filter _ | E_project _ | E_join _ | E_agg _ -> None)
        (group m gi).exprs
    in
    Obs.Metrics.inc ~by:(List.length fired) c_rule_union_pushdown;
    fired
  | E_scan _ | E_filter _ | E_project _ | E_union _ -> []

and explore m (g : group) : unit =
  if not g.explored then begin
    g.explored <- true;
    let queue = Queue.create () in
    List.iter (fun e -> Queue.add e queue) g.exprs;
    while not (Queue.is_empty queue) do
      let e = Queue.pop queue in
      List.iter
        (fun ne -> if add_expr g ne then Queue.add ne queue)
        (apply_rules m g e)
    done
  end

(* --- annotation & costing (phase 1) --- *)

let op_cost m (g : group) (e : mexpr) : float =
  let rows id = (group m id).est.Stats.rows in
  let out = g.est.Stats.rows in
  match e with
  | E_scan _ -> out
  | E_filter (_, i) -> rows i
  | E_project (_, i) -> rows i
  | E_join (p, l, r) ->
    let lr = rows l and rr = rows r in
    let lset = attr_set_of (group m l) and rset = attr_set_of (group m r) in
    (match equi_pairs m p ~lset ~rset with
    | Some _ -> lr +. (2. *. rr) +. out (* hash join: build side costs double *)
    | None -> (lr *. rr) +. out (* nested loops *))
  | E_agg (_, _, i) -> rows i +. out
  | E_union gs -> List.fold_left (fun acc i -> acc +. rows i) 0. gs

let sort_cost rows = rows *. Float.log2 (Float.max 2. rows)

(* [order_covers a b]: an input ordered by [a] can serve any consumer
   that needs [b] (b is a prefix of a). *)
let rec order_covers (a : (Attr.t * bool) list) (b : (Attr.t * bool) list) =
  match a, b with
  | _, [] -> true
  | [], _ :: _ -> false
  | (x, dx) :: a', (y, dy) :: b' -> Attr.equal x y && dx = dy && order_covers a' b'

(* Sort order delivered by a clustered scan: the primary key,
   ascending. *)
let scan_order m ~table ~alias =
  let def = Catalog.table_def m.cat table in
  if def.Catalog.Table_def.clustered then
    List.map (fun k -> (Attr.make ~rel:alias ~name:k, false)) def.Catalog.Table_def.key
  else []

(* Order surviving a projection: prefix of the order whose columns are
   still present (as plain column items), renamed to their output
   attributes. *)
let project_order items order =
  let rec go = function
    | [] -> []
    | (a, desc) :: rest -> (
      match
        List.find_opt
          (fun (e, _) -> match e with Expr.Col c -> Attr.equal c a | _ -> false)
          items
      with
      | Some (_, n) -> (n, desc) :: go rest
      | None -> [])
  in
  go order

(* Pareto frontier on (cost, ship_trait): an entry survives unless some
   other entry is no more expensive and ships at least as widely. *)
let pareto ~cap (entries : entry list) : entry list =
  let sorted = List.sort (fun a b -> Float.compare a.cost b.cost) entries in
  let kept =
    List.fold_left
      (fun kept e ->
        if
          List.exists
            (fun k ->
              k.cost <= e.cost
              && Locset.subset e.ship_trait k.ship_trait
              && order_covers k.order e.order)
            kept
        then kept
        else e :: kept)
      [] sorted
  in
  let kept = List.rev kept in
  if List.length kept <= cap then kept
  else
    (* keep the cheapest alternatives, but never drop the widest 𝒮 *)
    let widest =
      List.fold_left
        (fun best e ->
          match best with
          | None -> Some e
          | Some b ->
            if Locset.cardinal e.ship_trait > Locset.cardinal b.ship_trait then Some e
            else best)
        None kept
    in
    let head = List.filteri (fun i _ -> i < cap - 1) kept in
    match widest with
    | Some w when not (List.memq w head) -> head @ [ w ]
    | _ -> List.filteri (fun i _ -> i < cap) kept

(* Execution trait of one scan: the sites holding a readable copy of
   the partition. Without an attached replica set this is the primary
   placement alone — the pre-replica behavior. With one, a replica is
   eligible iff its site is up, its copy is fresh (no scheduled
   [replica-lag]), its jurisdiction pin (if any) names its own site, and
   — compliance first — every policy verdict that certified the primary
   holds at the replica's site: the site must be in the group's AR4
   policy-ship set (the primary itself always qualifies). The cheapest
   eligible site then wins in the site selector's ordinary α+β·b DP; no
   replica-specific cost logic exists downstream. If filtering leaves
   nothing, we fall back to the primary so an attached catalog degrades
   exactly like an unattached one (same rejection and failover paths —
   the transparency contract, docs/REPLICA.md). *)
let scan_exec m (g : group) ~table ~partition ~location =
  match Catalog.replicas m.cat ~table ~partition with
  | [] -> Locset.singleton location
  | rs ->
    let net = Catalog.network m.cat in
    let faults = Catalog.Network.faults net in
    let eligible (r : Catalog.replica) =
      Catalog.Network.site_up net r.site
      && (not (Catalog.Network.Fault.replica_stale faults ~table ~site:r.site))
      && (match r.pin with None -> true | Some p -> String.equal p r.site)
      && (String.equal r.site location
         || m.mode = Traditional
         || Locset.mem r.site (Lazy.force g.policy_ships))
    in
    (match
       List.filter_map (fun r -> if eligible r then Some r.Catalog.site else None) rs
     with
    | [] -> Locset.singleton location
    | sites -> Locset.of_list sites)

let rec entries_of m (g : group) : entry list =
  match g.entries with
  | Some es -> es
  | None ->
    (* Branch-and-bound: a group whose static lower bound already
       exceeds the best known complete-plan cost cannot contribute to
       the final plan — skip its exploration and annotation outright. *)
    if (not m.naive) && m.prune && g.lb > m.bound then begin
      m.groups_pruned <- m.groups_pruned + 1;
      Obs.Metrics.inc c_pruned_group;
      if Obs.Trace.enabled () then
        Obs.Trace.instant "memo.prune"
          [
            ("kind", Obs.Json.Str "group");
            ("gid", Obs.Json.Num (float_of_int g.id));
            ("lb", Obs.Json.Num g.lb);
            ("bound", Obs.Json.Num m.bound);
          ];
      g.entries <- Some [];
      []
    end
    else begin
      if not m.naive then explore m g;
      (* guard against accidental cycles *)
      g.entries <- Some [];
      (* During bound seeding only the originally ingested expression
         is costed (no rule firing): a cheap complete plan whose cost
         upper-bounds the real optimum. *)
      let exprs = if m.naive then [ List.hd g.exprs ] else g.exprs in
      let candidates = List.concat_map (entry_candidates m g) exprs in
      let candidates =
        if (not m.naive) && m.prune && m.bound < Float.infinity then begin
          let n0 = List.length candidates in
          let kept = List.filter (fun e -> e.cost <= m.bound) candidates in
          let dropped = n0 - List.length kept in
          m.entries_pruned <- m.entries_pruned + dropped;
          Obs.Metrics.inc ~by:dropped c_pruned_entry;
          if dropped > 0 && Obs.Trace.enabled () then
            Obs.Trace.instant "memo.prune"
              [
                ("kind", Obs.Json.Str "entry");
                ("gid", Obs.Json.Num (float_of_int g.id));
                ("dropped", Obs.Json.Num (float_of_int dropped));
                ("bound", Obs.Json.Num m.bound);
              ];
          kept
        end
        else candidates
      in
      let result = pareto ~cap:m.max_frontier candidates in
      g.entries <- Some result;
      result
    end

and entry_candidates m (g : group) (e : mexpr) : entry list =
  let all = all_locations m in
  let finish ?(phys = P_default) ~cost ~exec ~order ~sub () =
    match m.mode with
    | Traditional ->
      (* scans keep their replica-filtered site set; everything else may
         execute anywhere *)
      let exec' = match e with E_scan _ -> exec | _ -> all in
      [ { cost; exec_trait = exec'; ship_trait = all; order; phys; mex = e; sub } ]
    | Compliant ->
      if Locset.is_empty exec then [] (* compliance cost function: infinite *)
      else
        let ship = Locset.union exec (Lazy.force g.policy_ships) in
        [ { cost; exec_trait = exec; ship_trait = ship; order; phys; mex = e; sub } ]
  in
  let cost0 = op_cost m g e in
  match e with
  | E_scan { table; alias; partition; location; _ } ->
    finish ~cost:cost0
      ~exec:(scan_exec m g ~table ~partition ~location)
      ~order:(scan_order m ~table ~alias) ~sub:[] ()
  | E_filter (_, i) ->
    List.concat_map
      (fun ce ->
        finish ~cost:(cost0 +. ce.cost) ~exec:ce.ship_trait ~order:ce.order ~sub:[ ce ] ())
      (entries_of m (group m i))
  | E_project (items, i) ->
    List.concat_map
      (fun ce ->
        finish ~cost:(cost0 +. ce.cost) ~exec:ce.ship_trait
          ~order:(project_order items ce.order) ~sub:[ ce ] ())
      (entries_of m (group m i))
  | E_agg (_, _, i) ->
    (* hash aggregation destroys any input order *)
    List.concat_map
      (fun ce ->
        finish ~cost:(cost0 +. ce.cost) ~exec:ce.ship_trait ~order:[] ~sub:[ ce ] ())
      (entries_of m (group m i))
  | E_join (p, l, r) ->
    let les = entries_of m (group m l) and res = entries_of m (group m r) in
    let lset = attr_set_of (group m l) and rset = attr_set_of (group m r) in
    let lr = (group m l).est.Stats.rows and rr = (group m r).est.Stats.rows in
    let out = g.est.Stats.rows in
    let pairs = equi_pairs m p ~lset ~rset in
    List.concat_map
      (fun le ->
        List.concat_map
          (fun re ->
            (* child costs alone already exceed the bound: every
               physical alternative of this combo is dead *)
            if m.prune && le.cost +. re.cost > m.bound then begin
              m.combos_pruned <- m.combos_pruned + 1;
              Obs.Metrics.inc c_pruned_combo;
              []
            end
            else
            let exec = Locset.inter le.ship_trait re.ship_trait in
            (* default physical join (hash when equi keys exist, nested
               loops otherwise); a hash join streams the probe (left)
               side, so its order survives *)
            let default =
              finish
                ~cost:(cost0 +. le.cost +. re.cost)
                ~exec
                ~order:(match pairs with Some _ -> le.order | None -> [])
                ~sub:[ le; re ] ()
            in
            (* merge join alternative, with sort enforcers where an
               input does not already deliver the key order *)
            let merge =
              match pairs with
              | Some (kps, _) when kps <> [] ->
                let lorder = List.map (fun (a, _) -> (a, false)) kps in
                let rorder = List.map (fun (_, b) -> (b, false)) kps in
                let sort_left = not (order_covers le.order lorder) in
                let sort_right = not (order_covers re.order rorder) in
                let cost =
                  le.cost +. re.cost +. lr +. rr +. out
                  +. (if sort_left then sort_cost lr else 0.)
                  +. if sort_right then sort_cost rr else 0.
                in
                finish ~phys:(P_merge { sort_left; sort_right }) ~cost ~exec
                  ~order:lorder ~sub:[ le; re ] ()
              | _ -> []
            in
            default @ merge)
          res)
        les
  | E_union gs ->
    (* keep the combination space small: up to 3 entries per input *)
    let per_child =
      List.map (fun i -> List.filteri (fun k _ -> k < 3) (entries_of m (group m i))) gs
    in
    let rec combos = function
      | [] -> [ [] ]
      | es :: rest ->
        let tails = combos rest in
        List.concat_map (fun e -> List.map (fun t -> e :: t) tails) es
    in
    List.concat_map
      (fun sub ->
        let exec =
          List.fold_left (fun acc (ce : entry) -> Locset.inter acc ce.ship_trait) all sub
        in
        let cost = List.fold_left (fun acc ce -> acc +. ce.cost) cost0 sub in
        finish ~cost ~exec ~order:[] ~sub ())
      (combos per_child)

(* --- phase-1 result: the annotated plan --- *)

type anode = {
  uid : int;
  shape : Exec.Pplan.node;
  children : anode list;
  exec : Locset.t;
  rows : float;
  width : float;
}

let rec pp_anode ?(indent = 0) ppf (n : anode) =
  Fmt.pf ppf "%s%s  E=%a (%.0f rows)@." (String.make indent ' ')
    (Exec.Pplan.node_label n.shape) Locset.pp n.exec n.rows;
  List.iter (pp_anode ~indent:(indent + 2) ppf) n.children

let extract ?(required_order = []) m (root_gid : gid) : (anode * float) option =
  let g = group m root_gid in
  (* pick the cheapest entry once the root's required sort order (the
     "desired physical properties" of the §6.2 optimization goal) is
     priced in: entries not delivering it pay a final sort *)
  let final_cost (e : entry) =
    e.cost
    +. if order_covers e.order required_order then 0. else sort_cost g.est.Stats.rows
  in
  (* Branch-and-bound, phase A: cost the plan as ingested (no rule
     firing) to obtain a complete compliant plan whose cost U bounds
     the optimum; phase B then skips groups, candidates and join
     combos that provably exceed U. When the naive plan is rejected,
     U stays infinite and phase B runs unpruned. *)
  if m.prune && m.bound = Float.infinity then begin
    m.naive <- true;
    (match entries_of m g with
    | [] -> ()
    | es ->
      m.bound <- List.fold_left (fun acc e -> Float.min acc (final_cost e)) Float.infinity es);
    m.naive <- false;
    if Obs.Trace.enabled () then
      Obs.Trace.instant "memo.bound_seeded" [ ("bound", Obs.Json.Num m.bound) ];
    (* forget the naive frontiers; phase B recomputes them in full *)
    Hashtbl.iter (fun _ gr -> gr.entries <- None) m.arr
  end;
  match entries_of m g with
  | [] -> None
  | es ->
    let best =
      List.fold_left
        (fun a b -> if final_cost b < final_cost a then b else a)
        (List.hd es) es
    in
    let uid = ref 0 in
    let fresh () =
      incr uid;
      !uid
    in
    let sorted_child keys (child : anode) : anode =
      { uid = fresh (); shape = Exec.Pplan.Sort keys; children = [ child ];
        exec = child.exec; rows = child.rows; width = child.width }
    in
    let rec build (gr : group) (e : entry) : anode =
      let id = fresh () in
      let child_groups =
        match e.mex with
        | E_scan _ -> []
        | E_filter (_, i) | E_project (_, i) | E_agg (_, _, i) -> [ i ]
        | E_join (_, l, r) -> [ l; r ]
        | E_union gs -> gs
      in
      let children = List.map2 (fun cg ce -> build (group m cg) ce) child_groups e.sub in
      let shape, children =
        match e.mex with
        | E_scan { table; alias; partition; _ } ->
          (Exec.Pplan.Table_scan { table; alias; partition }, children)
        | E_filter (p, _) -> (Exec.Pplan.Filter p, children)
        | E_project (items, _) -> (Exec.Pplan.Project items, children)
        | E_join (p, l, r) -> (
          let lset = attr_set_of (group m l) and rset = attr_set_of (group m r) in
          match equi_pairs m p ~lset ~rset, e.phys with
          | Some (pairs, residual), P_merge { sort_left; sort_right } ->
            let lkeys = List.map (fun (a, _) -> (a, false)) pairs in
            let rkeys = List.map (fun (_, b) -> (b, false)) pairs in
            let children =
              match children with
              | [ lc; rc ] ->
                [ (if sort_left then sorted_child lkeys lc else lc);
                  (if sort_right then sorted_child rkeys rc else rc) ]
              | cs -> cs
            in
            ( Exec.Pplan.Merge_join { keys = pairs; residual = Pred.conj_all residual },
              children )
          | Some (pairs, residual), P_default ->
            ( Exec.Pplan.Hash_join { keys = pairs; residual = Pred.conj_all residual },
              children )
          | None, _ -> (Exec.Pplan.Nl_join p, children))
        | E_agg (keys, aggs, _) -> (Exec.Pplan.Hash_agg { keys; aggs }, children)
        | E_union _ -> (Exec.Pplan.Union_all, children)
      in
      { uid = id; shape; children; exec = e.exec_trait; rows = gr.est.Stats.rows;
        width = Stats.width_of gr.est }
    in
    let root = build g best in
    let root =
      if required_order = [] || order_covers best.order required_order then root
      else
        { uid = fresh (); shape = Exec.Pplan.Sort required_order; children = [ root ];
          exec = root.exec; rows = root.rows; width = root.width }
    in
    Some (root, final_cost best)
