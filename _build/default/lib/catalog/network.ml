(* Simulated wide-area network following the paper's message cost model
   (§7.4): shipping [b] bytes from site [i] to site [j] costs
   [alpha i j + beta i j *. b], where [alpha] is a start-up cost (one
   round trip) and [beta] a per-byte cost. Costs are in milliseconds. *)

type t = {
  locations : Location.t list;
  alpha : (Location.t * Location.t, float) Hashtbl.t;
  beta : (Location.t * Location.t, float) Hashtbl.t;
}

let locations t = t.locations

let alpha t i j = if String.equal i j then 0. else
  match Hashtbl.find_opt t.alpha (i, j) with Some a -> a | None -> 150.

let beta t i j = if String.equal i j then 0. else
  match Hashtbl.find_opt t.beta (i, j) with Some b -> b | None -> 1e-4

(* Cost in milliseconds of shipping [bytes] from [i] to [j]. Local moves
   are free: a SHIP between co-located operators is a no-op. *)
let ship_cost t ~from_loc ~to_loc ~bytes =
  if String.equal from_loc to_loc then 0.
  else alpha t from_loc to_loc +. (beta t from_loc to_loc *. bytes)

let make ~locations ~links =
  let alpha = Hashtbl.create 16 and beta = Hashtbl.create 16 in
  List.iter
    (fun (i, j, a, b) ->
      Hashtbl.replace alpha (i, j) a;
      Hashtbl.replace beta (i, j) b;
      (* links are symmetric unless overridden later *)
      if not (Hashtbl.mem alpha (j, i)) then begin
        Hashtbl.replace alpha (j, i) a;
        Hashtbl.replace beta (j, i) b
      end)
    links;
  { locations; alpha; beta }

(* A fully-connected network with uniform link parameters; convenient
   for tests and for the scalability experiments with many sites. *)
let uniform ~locations ~alpha:a ~beta:b =
  let tbl_a = Hashtbl.create 16 and tbl_b = Hashtbl.create 16 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if not (String.equal i j) then begin
            Hashtbl.replace tbl_a (i, j) a;
            Hashtbl.replace tbl_b (i, j) b
          end)
        locations)
    locations;
  { locations; alpha = tbl_a; beta = tbl_b }

(* The paper's five regions (footnote 12): Europe, Africa, Asia,
   North America, Middle East as locations L1–L5. Start-up costs are
   ping round-trip times (ms); per-byte costs derive from measured
   inter-region throughput. Values are representative public-cloud
   inter-region numbers; only their relative magnitudes matter. *)
let paper_default () =
  let l1 = "L1" (* Europe *)
  and l2 = "L2" (* Africa *)
  and l3 = "L3" (* Asia *)
  and l4 = "L4" (* North America *)
  and l5 = "L5" (* Middle East *) in
  make
    ~locations:[ l1; l2; l3; l4; l5 ]
    ~links:
      [
        (l1, l2, 155., 1.9e-6);
        (l1, l3, 240., 2.9e-6);
        (l1, l4, 90., 1.1e-6);
        (l1, l5, 110., 1.4e-6);
        (l2, l3, 330., 4.1e-6);
        (l2, l4, 220., 2.8e-6);
        (l2, l5, 190., 2.4e-6);
        (l3, l4, 180., 2.2e-6);
        (l3, l5, 140., 1.8e-6);
        (l4, l5, 200., 2.5e-6);
      ]
