(* Serving-layer suite.

   The load-bearing test is the transparency property: a plan cache in
   a compliance-based optimizer may never change what a statement
   returns — not its plan, not its SHIP bytes, not its verdict — only
   how fast the optimizer answers. Every random action sequence
   (submits interleaved with policy mutations) is replayed against a
   cached and an uncached session and compared step by step; the
   directed regressions then pin the two ways the property could rot:
   a stale plan surviving a policy change, and a failover re-plan
   served for the wrong mask.

   The qcheck cases are deterministic: the generator PRNG is seeded
   from CGQP_SEED (default 42) like the chaos suite. *)

module PC = Cgqp.Plan_cache
module A = Service.Admission
module Sc = Service.Script
module Sd = Service.Scheduler

let service_seed = Storage.Seed.resolve ()

let run_ok s sql =
  match Cgqp.run s sql with
  | Ok r -> r
  | Error e -> Alcotest.failf "run failed: %s" (Cgqp.error_to_string e)

(* ---------------- plan cache mechanics ---------------- *)

let test_hit_on_repeat () =
  let cache = PC.create () in
  let s = Fixture.session ~cache () in
  let p1 = run_ok s Fixture.q in
  let p2 = run_ok s Fixture.q in
  let st = PC.stats cache in
  Alcotest.(check int) "one miss" 1 st.PC.misses;
  Alcotest.(check int) "one hit" 1 st.PC.hits;
  (* the cache returns the certified outcome itself, so a hit reuses
     the very same planned record *)
  Alcotest.(check bool) "physically reused" true (p1.Cgqp.planned == p2.Cgqp.planned);
  Alcotest.(check string) "same answer"
    (Storage.Relation.to_csv p1.Cgqp.relation)
    (Storage.Relation.to_csv p2.Cgqp.relation)

let test_normalization () =
  let cache = PC.create () in
  let s = Fixture.session ~cache () in
  ignore (run_ok s "SELECT name FROM customer");
  ignore (run_ok s "  select  NAME
 from customer");
  let st = PC.stats cache in
  Alcotest.(check int) "whitespace/case/; variants share an entry" 1 st.PC.hits;
  Alcotest.(check string) "normalize collapses" "select name from customer"
    (PC.normalize_sql "  SELECT  name
FROM customer ;");
  (* quoted literals keep their case: merging them would change results *)
  Alcotest.(check bool) "literals are case-sensitive" true
    (PC.normalize_sql "select 'ABC'" <> PC.normalize_sql "select 'abc'")

let test_lru_eviction () =
  let cache = PC.create ~capacity:2 () in
  let s = Fixture.session ~cache () in
  ignore (run_ok s (List.nth Fixture.query_pool 1));
  ignore (run_ok s (List.nth Fixture.query_pool 2));
  ignore (run_ok s (List.nth Fixture.query_pool 3));
  Alcotest.(check int) "bounded" 2 (PC.size cache);
  Alcotest.(check int) "one eviction" 1 (PC.stats cache).PC.evictions;
  (* the first (least recently used) entry is the one that left *)
  ignore (run_ok s (List.nth Fixture.query_pool 1));
  Alcotest.(check int) "evicted entry misses again" 4 (PC.stats cache).PC.misses

let test_mask_fingerprint () =
  Alcotest.(check int) "healthy mask is 0" 0
    (PC.mask_fingerprint ~links:[] ~sites:[] ());
  let fp l s = PC.mask_fingerprint ~links:l ~sites:s () in
  Alcotest.(check bool) "non-empty is non-zero" true
    (fp [ ("NA", "EU") ] [] <> 0 && fp [] [ "AS" ] <> 0);
  Alcotest.(check int) "undirected links"
    (fp [ ("NA", "EU") ] [])
    (fp [ ("EU", "NA") ] []);
  Alcotest.(check int) "order-insensitive"
    (fp [ ("NA", "EU"); ("EU", "AS") ] [ "NA"; "AS" ])
    (fp [ ("EU", "AS"); ("NA", "EU") ] [ "AS"; "NA" ]);
  Alcotest.(check bool) "links and sites are distinct dimensions" true
    (fp [ ("NA", "EU") ] [] <> fp [] [ "NA" ])

(* ---------------- policy epochs ---------------- *)

(* The acceptance regression: a policy mutation between two identical
   submissions must force a re-optimize — a stale hit here would ship
   data the new catalog forbids. *)
let test_stale_policy_regression () =
  let cache = PC.create () in
  let s = Fixture.session ~policies:Fixture.strict_policies ~cache () in
  ignore (run_ok s Fixture.q);
  Cgqp.clear_policies s;
  (match Cgqp.run s Fixture.q with
  | Error (`Rejected _) -> ()
  | Ok _ -> Alcotest.fail "stale compliant plan served after clear_policies"
  | Error e -> Alcotest.failf "expected rejection, got: %s" (Cgqp.error_to_string e));
  Alcotest.(check bool) "epoch purge counted" true
    ((PC.stats cache).PC.invalidations >= 1);
  (* and the reverse direction: adding policies back re-plans *)
  Cgqp.add_policies s Fixture.open_policies;
  let r = run_ok s Fixture.q in
  let fresh = run_ok (Fixture.session ()) Fixture.q in
  Alcotest.(check string) "re-optimized plan matches an uncached session"
    (Exec.Pplan.to_string fresh.Cgqp.plan)
    (Exec.Pplan.to_string r.Cgqp.plan)

let test_set_policy_catalog_bumps () =
  let cache = PC.create () in
  let s = Fixture.session ~cache () in
  ignore (run_ok s Fixture.q);
  let e0 = PC.epoch cache in
  Cgqp.set_policy_catalog s
    (Policy.Pcatalog.of_texts (Cgqp.catalog s) Fixture.strict_policies);
  Alcotest.(check bool) "epoch bumped" true (PC.epoch cache > e0);
  Alcotest.(check int) "purged" 0 (PC.size cache)

(* A failover re-plan is certified against a masked network; it must be
   cached under that mask's fingerprint and reused on the next run that
   degrades the same way — never for a different (or healthy) mask. *)
let test_failover_mask_reuse () =
  let sched =
    Catalog.Network.Fault.make ~seed:5 [ Catalog.Network.Fault.Link_down ("NA", "EU") ]
  in
  let cache = PC.create () in
  let cached = Fixture.session ~cache () in
  Cgqp.set_faults cached sched;
  let plain = Fixture.session () in
  Cgqp.set_faults plain sched;
  let r1 = run_ok cached Fixture.q in
  Alcotest.(check bool) "degraded" true (r1.Cgqp.recovery.Cgqp.failovers >= 1);
  let st1 = PC.stats cache in
  Alcotest.(check int) "healthy plan + masked re-plan are distinct entries" 2
    st1.PC.misses;
  let r2 = run_ok cached Fixture.q in
  let st2 = PC.stats cache in
  Alcotest.(check int) "second degraded run is all hits" (st1.PC.misses) st2.PC.misses;
  Alcotest.(check int) "two lookups served" (st1.PC.hits + 2) st2.PC.hits;
  let r0 = run_ok plain Fixture.q in
  List.iter
    (fun (r : Cgqp.run_result) ->
      Alcotest.(check string) "same executed plan as uncached"
        (Exec.Pplan.to_string r0.Cgqp.plan)
        (Exec.Pplan.to_string r.Cgqp.plan);
      Alcotest.(check int) "same bytes" r0.Cgqp.shipped_bytes r.Cgqp.shipped_bytes)
    [ r1; r2 ]

(* ---------------- transparency property ---------------- *)

type step = Submit of int | Set_pool of int | Clear

let pp_step = function
  | Submit i -> Printf.sprintf "submit q%d" i
  | Set_pool j -> Printf.sprintf "set-policies p%d" j
  | Clear -> "clear-policies"

let gen_steps =
  QCheck.Gen.(
    list_size (int_range 2 6)
      (frequency
         [
           (4, map (fun i -> Submit i) (int_bound (List.length Fixture.query_pool - 1)));
           (1, map (fun j -> Set_pool j) (int_bound (List.length Fixture.policy_pool - 1)));
           (1, return Clear);
         ]))

let arb_steps =
  QCheck.make ~print:(fun steps -> String.concat "; " (List.map pp_step steps)) gen_steps

let observe s = function
  | Submit i -> (
    match Cgqp.run s (List.nth Fixture.query_pool i) with
    | Ok r ->
      Printf.sprintf "ok plan=%s bytes=%d cost=%.4f rows=%s"
        (Digest.to_hex (Digest.string (Exec.Pplan.to_string r.Cgqp.plan)))
        r.Cgqp.shipped_bytes r.Cgqp.ship_cost_ms
        (Fmt.str "%a" (Fmt.Dump.list (Fmt.Dump.list Relalg.Value.pp))
           (Fixture.canon r.Cgqp.relation))
    | Error e -> "error " ^ Cgqp.error_to_string e)
  | Set_pool j ->
    Cgqp.clear_policies s;
    Cgqp.add_policies s (List.nth Fixture.policy_pool j);
    "set"
  | Clear ->
    Cgqp.clear_policies s;
    "clear"

let prop_transparent =
  QCheck.Test.make ~count:250
    ~name:"cache-on and cache-off sessions are observationally identical" arb_steps
    (fun steps ->
      let cached = Fixture.session ~cache:(PC.create ~capacity:4 ()) () in
      let plain = Fixture.session () in
      List.for_all
        (fun step ->
          let a = observe cached step and b = observe plain step in
          if a <> b then
            QCheck.Test.fail_reportf "diverged on [%s]:
  cached: %s
  plain:  %s"
              (pp_step step) a b
          else true)
        steps)

(* ---------------- admission control ---------------- *)

let quota ?in_flight ?budget ?(window = 1000.) ?(on_deny = A.Reject) () =
  { A.max_in_flight = in_flight; ship_budget_bytes = budget; window_ms = window; on_deny }

let check_admit = function
  | A.Admit -> ()
  | A.Deny { reason; _ } -> Alcotest.failf "denied: %s" (A.reason_to_string reason)

let retry_at = function
  | A.Admit -> Alcotest.fail "expected a denial"
  | A.Deny { retry_at; _ } -> retry_at

let test_admission_in_flight () =
  let a = A.create () in
  A.set_quota a ~tenant:"t" (quota ~in_flight:1 ());
  check_admit (A.admit a ~tenant:"t" ~now:0.);
  A.started a ~tenant:"t" ~finish_ms:100.;
  (match A.admit a ~tenant:"t" ~now:50. with
  | A.Deny { reason = A.In_flight { in_flight = 1; limit = 1; _ }; retry_at } ->
    Alcotest.(check (option (float 1e-9))) "retry at completion" (Some 100.) retry_at
  | A.Deny { reason; _ } -> Alcotest.failf "wrong reason: %s" (A.reason_to_string reason)
  | A.Admit -> Alcotest.fail "limit not enforced");
  check_admit (A.admit a ~tenant:"t" ~now:150.);
  (* other tenants are unaffected *)
  check_admit (A.admit a ~tenant:"other" ~now:50.)

let test_admission_budget () =
  let a = A.create () in
  A.set_quota a ~tenant:"t" (quota ~budget:100 ());
  check_admit (A.admit a ~tenant:"t" ~now:0.);
  A.charge a ~tenant:"t" ~now:0. ~bytes:150;
  (* post-paid: the overrun blocks the next admission until the window rolls *)
  (match A.admit a ~tenant:"t" ~now:10. with
  | A.Deny { reason = A.Ship_budget { used = 150; budget = 100; _ }; retry_at } ->
    Alcotest.(check (option (float 1e-9))) "retry at window end" (Some 1000.) retry_at
  | A.Deny { reason; _ } -> Alcotest.failf "wrong reason: %s" (A.reason_to_string reason)
  | A.Admit -> Alcotest.fail "budget not enforced");
  check_admit (A.admit a ~tenant:"t" ~now:1000.)

let test_admission_zero_budget () =
  let a = A.create () in
  A.set_quota a ~tenant:"t" (quota ~budget:0 ~on_deny:A.Queue ());
  Alcotest.(check (option (float 1e-9)))
    "a zero budget can never lift: no retry time" None
    (retry_at (A.admit a ~tenant:"t" ~now:0.))

let sched_env ?cache () =
  let cat = Fixture.catalog () in
  Sd.env ~catalog:cat ~database:(Fixture.data cat) ?cache ()

let two_session_script ~on_deny =
  let actions =
    List.map (fun t -> Sc.Add_policy t) Fixture.open_policies @ [ Sc.Submit Fixture.q ]
  in
  {
    Sc.seed = Some 1;
    tenants = [ ("t", quota ~in_flight:1 ~on_deny ()) ];
    sessions =
      [
        { Sc.sid = "s1"; tenant = "t"; actions };
        { Sc.sid = "s2"; tenant = "t"; actions };
      ];
  }

let test_scheduler_queueing () =
  let r = Sd.run ~env:(sched_env ()) (two_session_script ~on_deny:A.Queue) in
  Alcotest.(check int) "both completed" 2 r.Sd.ok;
  Alcotest.(check int) "none denied" 0 r.Sd.denied;
  let waited =
    List.filter (fun (s : Sd.stmt_record) -> s.Sd.started_ms > s.Sd.submitted_ms)
      r.Sd.statements
  in
  Alcotest.(check int) "one statement queued behind the other" 1 (List.length waited)

let test_scheduler_reject () =
  let r = Sd.run ~env:(sched_env ()) (two_session_script ~on_deny:A.Reject) in
  Alcotest.(check int) "one completed" 1 r.Sd.ok;
  Alcotest.(check int) "one denied" 1 r.Sd.denied;
  match
    List.find_opt
      (fun (s : Sd.stmt_record) ->
        match s.Sd.outcome with Sd.Denied _ -> true | _ -> false)
      r.Sd.statements
  with
  | Some { Sd.outcome = Sd.Denied { reason = A.In_flight _; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected an in-flight denial"

(* Directed retry_at coverage under the discrete-event clock: a queued
   statement must re-enter admission exactly at the denial's retry_at —
   the in-flight completion time or the window boundary — while a
   Reject tenant records the denial immediately, with zero retries. *)

let test_queue_retry_at_completion () =
  let r = Sd.run ~env:(sched_env ()) (two_session_script ~on_deny:A.Queue) in
  Alcotest.(check int) "both completed" 2 r.Sd.ok;
  let first, queued =
    match
      List.partition
        (fun (s : Sd.stmt_record) -> s.Sd.started_ms = s.Sd.submitted_ms)
        r.Sd.statements
    with
    | [ f ], [ q ] -> (f, q)
    | _ -> Alcotest.fail "expected exactly one queued statement"
  in
  (* retry_at of an in-flight denial is the blocking statement's
     completion; the queued statement starts exactly then, not later *)
  Alcotest.(check (float 1e-9)) "queued until the in-flight completion"
    first.Sd.finished_ms queued.Sd.started_ms;
  Alcotest.(check bool) "the wait is real" true
    (queued.Sd.started_ms > queued.Sd.submitted_ms)

let test_reject_records_denial_at_submission () =
  let r = Sd.run ~env:(sched_env ()) (two_session_script ~on_deny:A.Reject) in
  match
    List.find_opt
      (fun (s : Sd.stmt_record) ->
        match s.Sd.outcome with Sd.Denied _ -> true | _ -> false)
      r.Sd.statements
  with
  | Some ({ Sd.outcome = Sd.Denied { reason = A.In_flight _; retries }; _ } as s) ->
    Alcotest.(check int) "no retries under Reject" 0 retries;
    Alcotest.(check (float 1e-9)) "denied at submission time" s.Sd.submitted_ms
      s.Sd.finished_ms
  | _ -> Alcotest.fail "expected an in-flight denial"

(* Ship-budget boundary: the first statement's post-paid charge exhausts
   the window's budget, so the session's next submission is denied with
   retry_at at the window boundary. Queue mode re-admits exactly there;
   Reject mode records the denial. *)
let budget_script ~on_deny =
  {
    Sc.seed = Some 1;
    tenants = [ ("t", quota ~budget:1 ~window:1000. ~on_deny ()) ];
    sessions =
      [
        {
          Sc.sid = "s1";
          tenant = "t";
          actions =
            List.map (fun t -> Sc.Add_policy t) Fixture.open_policies
            @ [ Sc.Submit Fixture.q; Sc.Submit Fixture.q ];
        };
      ];
  }

let test_queue_retry_at_window () =
  let r = Sd.run ~env:(sched_env ()) (budget_script ~on_deny:A.Queue) in
  Alcotest.(check int) "both completed" 2 r.Sd.ok;
  let first = List.find (fun (s : Sd.stmt_record) -> s.Sd.seq = 0) r.Sd.statements in
  let second = List.find (fun (s : Sd.stmt_record) -> s.Sd.seq = 1) r.Sd.statements in
  (match first.Sd.outcome with
  | Sd.Done { shipped_bytes; _ } ->
    Alcotest.(check bool) "first overran the budget" true (shipped_bytes > 1)
  | _ -> Alcotest.fail "first statement should complete");
  Alcotest.(check (float 1e-9)) "submitted when the first completed"
    first.Sd.finished_ms second.Sd.submitted_ms;
  Alcotest.(check (float 1e-9)) "queued until the window boundary" 1000.
    second.Sd.started_ms

let test_reject_at_window_boundary () =
  let r = Sd.run ~env:(sched_env ()) (budget_script ~on_deny:A.Reject) in
  Alcotest.(check int) "first completed" 1 r.Sd.ok;
  Alcotest.(check int) "second denied" 1 r.Sd.denied;
  match
    List.find (fun (s : Sd.stmt_record) -> s.Sd.seq = 1) r.Sd.statements
  with
  | { Sd.outcome = Sd.Denied { reason = A.Ship_budget _; retries = 0 }; _ } -> ()
  | { Sd.outcome = Sd.Denied { reason; retries }; _ } ->
    Alcotest.failf "wrong denial: %s after %d retries" (A.reason_to_string reason)
      retries
  | _ -> Alcotest.fail "expected a ship-budget denial"

(* ---------------- scheduler determinism + differential ---------------- *)

let mix_script =
  let submits qs = List.map (fun i -> Sc.Submit (List.nth Fixture.query_pool i)) qs in
  {
    Sc.seed = None;
    tenants = [ ("t", quota ~in_flight:2 ~on_deny:A.Queue ()) ];
    sessions =
      [
        {
          Sc.sid = "s1";
          tenant = "t";
          actions = Sc.Set_policy_set "open" :: submits [ 0; 1; 0; 3 ];
        };
        {
          Sc.sid = "s2";
          tenant = "t";
          actions =
            (Sc.Set_policy_set "open" :: submits [ 0; 2 ])
            @ [ Sc.Set_policy_set "strict" ]
            @ submits [ 0; 0 ];
        };
        {
          Sc.sid = "s3";
          tenant = "u";
          actions = Sc.Set_policy_set "open" :: submits [ 3; 1; 0 ];
        };
      ];
  }

let mix_env ?cache () =
  let cat = Fixture.catalog () in
  Sd.env ~catalog:cat ~database:(Fixture.data cat) ?cache
    ~resolve_policy_set:(function
      | "strict" -> Some Fixture.strict_policies
      | "open" -> Some Fixture.open_policies
      | _ -> None)
    ()

let test_scheduler_deterministic () =
  let show r = Fmt.str "%a" Sd.pp_report r in
  let once = show (Sd.run ~env:(mix_env ()) ~seed:9 mix_script) in
  let again = show (Sd.run ~env:(mix_env ()) ~seed:9 mix_script) in
  Alcotest.(check string) "same seed, same report" once again

let test_scheduler_differential () =
  let key (s : Sd.stmt_record) = (s.Sd.sid, s.Sd.seq) in
  let observed (s : Sd.stmt_record) =
    match s.Sd.outcome with
    | Sd.Done { plan_sig; result_sig; rows; shipped_bytes; _ } ->
      Printf.sprintf "done %s %s %d %d" plan_sig result_sig rows shipped_bytes
    | Sd.Failed e -> "failed " ^ Cgqp.error_to_string e
    | Sd.Denied { reason; _ } -> "denied " ^ A.reason_to_string reason
  in
  let cached =
    Sd.run ~env:(mix_env ~cache:(PC.create ()) ()) ~seed:(service_seed) mix_script
  in
  let plain = Sd.run ~env:(mix_env ()) ~seed:(service_seed) mix_script in
  Alcotest.(check int) "same statement count"
    (List.length plain.Sd.statements)
    (List.length cached.Sd.statements);
  List.iter
    (fun (s : Sd.stmt_record) ->
      match
        List.find_opt (fun p -> key p = key s) plain.Sd.statements
      with
      | None -> Alcotest.failf "statement %s#%d missing uncached" s.Sd.sid s.Sd.seq
      | Some p ->
        Alcotest.(check string)
          (Printf.sprintf "%s#%d identical" s.Sd.sid s.Sd.seq)
          (observed p) (observed s))
    cached.Sd.statements;
  (* the policy churn in the script must show up as both misses and
     invalidations — and still leave repeats to hit on *)
  match cached.Sd.cache with
  | None -> Alcotest.fail "no cache stats"
  | Some st ->
    Alcotest.(check bool) "hits happened" true (st.PC.hits > 0);
    Alcotest.(check bool) "churn invalidated" true (st.PC.invalidations > 0)

(* ---------------- multicore pipeline ---------------- *)

module Pl = Service.Pool

let test_pool_map () =
  List.iter
    (fun domains ->
      let tasks = Array.init 13 (fun i () -> i * i) in
      Alcotest.(check (array int))
        (Printf.sprintf "results in task order at %d domains" domains)
        (Array.init 13 (fun i -> i * i))
        (Pl.map ~domains tasks))
    [ 1; 2; 4; 32 ]

exception Boom of int

let test_pool_exception () =
  (* several tasks fail; the lowest-indexed failure must win, however
     the domains raced *)
  let tasks =
    Array.init 8 (fun i () -> if i mod 3 = 1 then raise (Boom i) else i)
  in
  match Pl.map ~domains:4 tasks with
  | _ -> Alcotest.fail "expected an exception"
  | exception Boom i -> Alcotest.(check int) "lowest failing task wins" 1 i

(* The replay half of the pipeline in isolation: a memo replayed on an
   equal-state session returns the recorded result without executing;
   on a diverged session it falls back to a live run and counts it. *)
let test_replay_fallback () =
  let c_fallbacks = Obs.Metrics.counter "cgqp_session_replay_fallbacks_total" in
  let cat = Fixture.catalog () in
  let db = Fixture.data cat in
  let mk () =
    let s = Cgqp.create ~catalog:cat () in
    Cgqp.add_policies s Fixture.open_policies;
    Cgqp.attach_database s db;
    s
  in
  let obs = function
    | Ok (r : Cgqp.run_result) ->
      Printf.sprintf "ok plan=%s bytes=%d rows=%d"
        (Digest.to_hex (Digest.string (Exec.Pplan.to_string r.Cgqp.plan)))
        r.Cgqp.shipped_bytes
        (Storage.Relation.cardinality r.Cgqp.relation)
    | Error e -> "error " ^ Cgqp.error_to_string e
  in
  let recorder = mk () in
  let live, memo = Cgqp.run_recorded recorder Fixture.q in
  let twin = mk () in
  let f0 = Obs.Metrics.value c_fallbacks in
  Alcotest.(check string) "replay returns the recorded outcome" (obs live)
    (obs (Cgqp.run_replay twin memo));
  Alcotest.(check int) "no fallback on an equal-state session" f0
    (Obs.Metrics.value c_fallbacks);
  (* diverge the twin: the memo's policy fingerprint no longer holds *)
  Cgqp.clear_policies twin;
  let replayed = Cgqp.run_replay twin memo in
  Alcotest.(check int) "state mismatch counted as fallback" (f0 + 1)
    (Obs.Metrics.value c_fallbacks);
  Alcotest.(check string) "fallback equals a live run on the diverged state"
    (obs (Cgqp.run twin Fixture.q))
    (obs replayed)

(* The signature invariant of docs/PARALLELISM.md: for every seed,
   domain count, cache setting, fault schedule and admission policy,
   the parallel pipeline's report is byte-identical to the sequential
   run — statement records, digests, latencies, cache flags, stats. *)

type pstep = P_submit of int | P_pool of int | P_clear | P_wait of int

let pp_pstep = function
  | P_submit i -> Printf.sprintf "submit q%d" i
  | P_pool j -> Printf.sprintf "set-policies p%d" j
  | P_clear -> "clear-policies"
  | P_wait w -> Printf.sprintf "wait %d" w

type pcase = {
  steps : pstep list list;  (* one list per session *)
  case_seed : int;
  domains : int;
  with_cache : bool;
  with_faults : bool;
  adm : int;  (* 0 unlimited, 1 in-flight 1 + queue, 2 in-flight 1 + reject *)
}

let gen_pcase =
  QCheck.Gen.(
    let step =
      frequency
        [
          (5, map (fun i -> P_submit i) (int_bound (List.length Fixture.query_pool - 1)));
          (1, map (fun j -> P_pool j) (int_bound (List.length Fixture.policy_pool - 1)));
          (1, return P_clear);
          (1, map (fun w -> P_wait (10 * (w + 1))) (int_bound 20));
        ]
    in
    map
      (fun (steps, case_seed, domains, (with_cache, with_faults, adm)) ->
        { steps; case_seed; domains; with_cache; with_faults; adm })
      (quad
         (list_size (int_range 2 3) (list_size (int_range 1 6) step))
         (int_bound 9999) (int_range 2 4)
         (triple bool bool (int_bound 2))))

let pp_pcase c =
  Printf.sprintf "seed=%d domains=%d cache=%b faults=%b adm=%d [%s]" c.case_seed
    c.domains c.with_cache c.with_faults c.adm
    (String.concat " | "
       (List.map (fun s -> String.concat "; " (List.map pp_pstep s)) c.steps))

let arb_pcase = QCheck.make ~print:pp_pcase gen_pcase

let presolve name =
  match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
  | Some j when String.length name > 1 && name.[0] = 'p' ->
    List.nth_opt Fixture.policy_pool j
  | _ -> None

let pscript c =
  let action = function
    | P_submit i -> Sc.Submit (List.nth Fixture.query_pool i)
    | P_pool j -> Sc.Set_policy_set (Printf.sprintf "p%d" j)
    | P_clear -> Sc.Clear_policies
    | P_wait w -> Sc.Wait (float_of_int w)
  in
  {
    Sc.seed = None;
    tenants =
      (match c.adm with
      | 0 -> []
      | 1 -> [ ("t", quota ~in_flight:1 ~on_deny:A.Queue ()) ]
      | _ -> [ ("t", quota ~in_flight:1 ~on_deny:A.Reject ()) ]);
    sessions =
      List.mapi
        (fun k steps ->
          {
            Sc.sid = Printf.sprintf "s%d" k;
            tenant = "t";
            actions = Sc.Set_policy_set "p0" :: List.map action steps;
          })
        c.steps;
  }

let run_pcase c ~domains =
  let cat = Fixture.catalog () in
  let env =
    Sd.env ~catalog:cat ~database:(Fixture.data cat)
      ?cache:(if c.with_cache then Some (PC.create ~capacity:8 ()) else None)
      ~faults:
        (if c.with_faults then
           Catalog.Network.Fault.make ~seed:5
             [ Catalog.Network.Fault.Link_down ("NA", "EU") ]
         else Catalog.Network.Fault.empty)
      ~resolve_policy_set:presolve ()
  in
  Sd.run ~env ~seed:c.case_seed ~domains (pscript c)

let show_report r =
  Fmt.str "%a" Sd.pp_report r ^ "\n" ^ Obs.Json.to_string (Sd.report_to_json r)

let prop_parallel =
  QCheck.Test.make ~count:200
    ~name:"parallel run fingerprints == sequential run fingerprints" arb_pcase
    (fun c ->
      let seq = show_report (run_pcase c ~domains:1) in
      let par = show_report (run_pcase c ~domains:c.domains) in
      if seq <> par then
        QCheck.Test.fail_reportf
          "domains=%d diverged from the sequential run:\n%s\n=== sequential ===\n%s"
          c.domains par seq
      else true)

(* Semantic metric totals are part of the determinism contract: the
   same workload moves the executor/policy/service counters by the same
   amount at every domain count (cache off and no admission denials, so
   no statement is executed speculatively-then-denied and no private
   recording cache changes the optimizer count — the contract's
   excluded diagnostics are exactly the cache-internal hit/miss
   counters, docs/PARALLELISM.md). *)
let test_parallel_metric_totals () =
  let sems =
    [
      "cgqp_service_statements_total";
      "cgqp_exec_rows_processed_total";
      "cgqp_exec_ships_total";
      "cgqp_exec_ship_bytes_total";
      "cgqp_policy_eta_total";
      "cgqp_policy_implication_tests_total";
    ]
  in
  let h_lat = Obs.Metrics.histogram "cgqp_service_latency_ms" in
  let snapshot () =
    ( List.map (fun n -> Obs.Metrics.value (Obs.Metrics.counter n)) sems,
      Obs.Metrics.hist_count h_lat,
      Obs.Metrics.hist_sum h_lat )
  in
  let script =
    {
      Sc.seed = None;
      tenants = [];
      sessions =
        [
          {
            Sc.sid = "s0";
            tenant = "t";
            actions =
              [
                Sc.Set_policy_set "p0";
                Sc.Submit (List.nth Fixture.query_pool 0);
                Sc.Submit (List.nth Fixture.query_pool 1);
                Sc.Set_policy_set "p1";
                Sc.Submit (List.nth Fixture.query_pool 0);
              ];
          };
          {
            Sc.sid = "s1";
            tenant = "u";
            actions =
              [
                Sc.Set_policy_set "p0";
                Sc.Submit (List.nth Fixture.query_pool 2);
                Sc.Submit (List.nth Fixture.query_pool 3);
              ];
          };
        ];
    }
  in
  let deltas domains =
    let cat = Fixture.catalog () in
    let env =
      Sd.env ~catalog:cat ~database:(Fixture.data cat)
        ~resolve_policy_set:presolve ()
    in
    let c0, n0, s0 = snapshot () in
    ignore (Sd.run ~env ~seed:11 ~domains script);
    let c1, n1, s1 = snapshot () in
    (List.map2 (fun a b -> a - b) c1 c0, n1 - n0, s1 -. s0)
  in
  let c1, n1, s1 = deltas 1 in
  List.iter
    (fun domains ->
      let c, n, s = deltas domains in
      List.iteri
        (fun i name ->
          Alcotest.(check int)
            (Printf.sprintf "%s moves identically at %d domains" name domains)
            (List.nth c1 i) (List.nth c i))
        sems;
      Alcotest.(check int)
        (Printf.sprintf "latency count identical at %d domains" domains)
        n1 n;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "latency sum identical at %d domains" domains)
        s1 s)
    [ 2; 4 ]

(* ---------------- script grammar ---------------- *)

let sample =
  "# sample workload
seed 7
tenant a max-inflight 2 ship-budget 4096 window 500 on-deny queue
open s1 tenant a policies CR
submit s1 Q3
policy s1 ship custkey, name from customer to EU
wait s1 100
mode s1 traditional
submit s1 SELECT name FROM customer
clear-policies s1
close s1
"

let test_script_parse () =
  match Sc.parse sample with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok t ->
    Alcotest.(check (option int)) "seed" (Some 7) t.Sc.seed;
    let q = List.assoc "a" t.Sc.tenants in
    Alcotest.(check (option int)) "max-inflight" (Some 2) q.A.max_in_flight;
    Alcotest.(check (option int)) "ship-budget" (Some 4096) q.A.ship_budget_bytes;
    Alcotest.(check bool) "on-deny queue" true (q.A.on_deny = A.Queue);
    (match t.Sc.sessions with
    | [ { Sc.sid = "s1"; tenant = "a"; actions } ] ->
      Alcotest.(check int) "actions (open-sugar included)" 7 (List.length actions);
      (match actions with
      | Sc.Set_policy_set "CR" :: _ -> ()
      | _ -> Alcotest.fail "open ... policies CR must lead with set-policies")
    | _ -> Alcotest.fail "expected one session")

let test_script_round_trip () =
  match Sc.parse sample with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok t -> (
    match Sc.parse (Sc.to_string t) with
    | Error m -> Alcotest.failf "re-parse failed: %s" m
    | Ok t' -> Alcotest.(check bool) "round-trips structurally" true (t = t'))

let test_script_errors () =
  let bad text frag =
    match Sc.parse text with
    | Ok _ -> Alcotest.failf "accepted: %S" text
    | Error m ->
      if not (Astring.String.is_infix ~affix:frag m) then
        Alcotest.failf "error %S does not mention %S" m frag
  in
  bad "submit ghost Q1" "line 1";
  bad "open s1
open s1" "line 2";
  bad "open s1
close s1
submit s1 Q1" "line 3";
  bad "frobnicate the cache" "line 1"

(* ---------------- policy catalog fingerprints ---------------- *)

let test_fingerprint () =
  let cat = Fixture.catalog () in
  let fp texts = Policy.Pcatalog.fingerprint (Policy.Pcatalog.of_texts cat texts) in
  Alcotest.(check int) "order-insensitive"
    (fp Fixture.open_policies)
    (fp (List.rev Fixture.open_policies));
  Alcotest.(check int) "duplicate-insensitive"
    (fp Fixture.open_policies)
    (fp (Fixture.open_policies @ Fixture.open_policies));
  Alcotest.(check bool) "content-sensitive" true
    (fp Fixture.open_policies <> fp Fixture.strict_policies);
  (* identity stamps still differ where content fingerprints agree *)
  let a = Policy.Pcatalog.of_texts cat Fixture.open_policies in
  let b = Policy.Pcatalog.of_texts cat Fixture.open_policies in
  Alcotest.(check bool) "stamp is identity, fingerprint is content" true
    (Policy.Pcatalog.stamp a <> Policy.Pcatalog.stamp b
    && Policy.Pcatalog.fingerprint a = Policy.Pcatalog.fingerprint b)

let test_add_policies_idempotent () =
  let s = Fixture.session () in
  let size0 = Policy.Pcatalog.size (Cgqp.policies s) in
  let fp0 = Policy.Pcatalog.fingerprint (Cgqp.policies s) in
  Cgqp.add_policies s Fixture.open_policies;
  Alcotest.(check int) "size unchanged" size0 (Policy.Pcatalog.size (Cgqp.policies s));
  Alcotest.(check int) "fingerprint unchanged" fp0
    (Policy.Pcatalog.fingerprint (Cgqp.policies s))

(* ---------------- runner ---------------- *)

let () =
  Fmt.epr "service seed: %d (set %s to replay)@." service_seed Storage.Seed.env_var;
  let rand = Random.State.make [| service_seed |] in
  Alcotest.run "service"
    [
      ( "cache",
        [
          Alcotest.test_case "hit on repeat" `Quick test_hit_on_repeat;
          Alcotest.test_case "sql normalization" `Quick test_normalization;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "mask fingerprint" `Quick test_mask_fingerprint;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "stale policy regression" `Quick test_stale_policy_regression;
          Alcotest.test_case "set_policy_catalog bumps" `Quick test_set_policy_catalog_bumps;
          Alcotest.test_case "failover mask reuse" `Quick test_failover_mask_reuse;
        ] );
      ("transparency", [ QCheck_alcotest.to_alcotest ~rand prop_transparent ]);
      ( "admission",
        [
          Alcotest.test_case "in-flight limit" `Quick test_admission_in_flight;
          Alcotest.test_case "byte budget window" `Quick test_admission_budget;
          Alcotest.test_case "zero budget is terminal" `Quick test_admission_zero_budget;
          Alcotest.test_case "scheduler queues" `Quick test_scheduler_queueing;
          Alcotest.test_case "scheduler rejects" `Quick test_scheduler_reject;
          Alcotest.test_case "queue retries at the in-flight completion" `Quick
            test_queue_retry_at_completion;
          Alcotest.test_case "reject records the denial at submission" `Quick
            test_reject_records_denial_at_submission;
          Alcotest.test_case "queue retries at the window boundary" `Quick
            test_queue_retry_at_window;
          Alcotest.test_case "reject at the window boundary" `Quick
            test_reject_at_window_boundary;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "deterministic replay" `Quick test_scheduler_deterministic;
          Alcotest.test_case "cache-on/off differential" `Quick test_scheduler_differential;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "pool maps in task order" `Quick test_pool_map;
          Alcotest.test_case "pool exception is deterministic" `Quick
            test_pool_exception;
          Alcotest.test_case "replay falls back on state mismatch" `Quick
            test_replay_fallback;
          QCheck_alcotest.to_alcotest ~rand prop_parallel;
          Alcotest.test_case "metric totals are width-independent" `Quick
            test_parallel_metric_totals;
        ] );
      ( "script",
        [
          Alcotest.test_case "parse" `Quick test_script_parse;
          Alcotest.test_case "round trip" `Quick test_script_round_trip;
          Alcotest.test_case "errors name the line" `Quick test_script_errors;
        ] );
      ( "policies",
        [
          Alcotest.test_case "content fingerprint" `Quick test_fingerprint;
          Alcotest.test_case "add_policies idempotent" `Quick test_add_policies_idempotent;
        ] );
    ]
