lib/tpch/datagen.mli: Catalog Relalg Storage Value
