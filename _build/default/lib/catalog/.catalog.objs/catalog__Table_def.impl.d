lib/catalog/table_def.ml: Fmt List Relalg String
