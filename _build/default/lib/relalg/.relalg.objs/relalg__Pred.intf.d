lib/relalg/pred.mli: Attr Expr Format Value
