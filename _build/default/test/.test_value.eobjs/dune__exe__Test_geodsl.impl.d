test/test_geodsl.ml: Alcotest Array Attr Catalog Cgqp Exec Geodsl List Optimizer Option Relalg Storage Value
