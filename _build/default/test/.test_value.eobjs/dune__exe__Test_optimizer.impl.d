test/test_optimizer.ml: Alcotest Attr Catalog Exec Expr Float Fmt List Optimizer Option Plan Policy Pred Printf QCheck QCheck_alcotest Relalg Sqlfront Storage String Tpch Value
