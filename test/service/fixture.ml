(* Shared fixture for the serving-layer suite: the chaos suite's
   two-table, three-region setup (small enough that the differential
   property can run hundreds of optimize+execute cycles in seconds),
   plus the query/policy pools the generators draw from. *)

open Relalg

let locations = [ "AS"; "EU"; "NA" ]

let default_links =
  [ ("NA", "EU", 50., 1e-3); ("NA", "AS", 80., 2e-3); ("EU", "AS", 60., 1.5e-3) ]

let catalog ?(links = default_links) () =
  let open Catalog.Table_def in
  let customer =
    make ~name:"customer" ~key:[ "custkey" ] ~row_count:20 ()
      ~columns:
        [
          column ~stat:{ default_stat with distinct = 20 } "custkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 20; width = 12 } "name" Value.Tstr;
          column ~stat:{ default_stat with distinct = 10 } "acctbal" Value.Tint;
        ]
  in
  let orders =
    make ~name:"orders" ~key:[ "ordkey" ] ~row_count:60 ()
      ~columns:
        [
          column ~stat:{ default_stat with distinct = 20 } "custkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 60 } "ordkey" Value.Tint;
          column ~stat:{ default_stat with distinct = 40 } "totprice" Value.Tint;
        ]
  in
  let network = Catalog.Network.make ~locations ~links () in
  Catalog.make ~network
    [
      (customer, [ { Catalog.db = "d1"; location = "NA"; fraction = 1.0 } ]);
      (orders, [ { Catalog.db = "d2"; location = "EU"; fraction = 1.0 } ]);
    ]

(* Routes exist around any single failure (see test/chaos). *)
let open_policies =
  [
    "ship custkey, name from customer to EU, AS";
    "ship custkey, ordkey, totprice from orders to NA, AS";
  ]

(* Exactly one compliant route: customer -> EU, join at EU. *)
let strict_policies = [ "ship custkey, name from customer to EU" ]

let data cat =
  let g = Storage.Prng.create ~seed:7 in
  let db = Storage.Database.create () in
  let add name rows =
    let schema =
      List.map (fun c -> Attr.make ~rel:name ~name:c) (Catalog.table_cols cat name)
    in
    Storage.Database.add db ~table:name
      (Storage.Relation.make ~schema ~rows:(Array.of_list rows))
  in
  add "customer"
    (List.init 20 (fun i ->
         [| Value.Int i; Value.Str (Printf.sprintf "c%02d" i); Value.Int (100 * i) |]));
  add "orders"
    (List.init 60 (fun i ->
         [| Value.Int (i mod 20); Value.Int i; Value.Int (10 + Storage.Prng.int g 90) |]));
  db

let q =
  "SELECT c.name, SUM(o.totprice) FROM customer AS c, orders AS o \
   WHERE c.custkey = o.custkey GROUP BY c.name"

(* What the transparency generators draw from. *)
let query_pool =
  [
    q;
    "SELECT name FROM customer";
    "SELECT custkey, totprice FROM orders";
    "SELECT c.name, o.totprice FROM customer AS c, orders AS o \
     WHERE c.custkey = o.custkey";
  ]

let policy_pool =
  [
    open_policies;
    strict_policies;
    open_policies @ [ "ship acctbal from customer to EU" ];
  ]

let session ?(policies = open_policies) ?cache ?links () =
  let cat = catalog ?links () in
  let s = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies s policies;
  Cgqp.attach_database s (data cat);
  Cgqp.set_plan_cache s cache;
  s

(* Canonical row image: sorted, floats rounded — order- and
   plan-independent. *)
let canon rel =
  Storage.Relation.rows rel |> Array.to_list
  |> List.map (fun row ->
         Array.to_list row
         |> List.map (function
              | Value.Float f -> Value.Float (Float.round (f *. 1e4) /. 1e4)
              | v -> v))
  |> List.sort (List.compare Value.compare)
