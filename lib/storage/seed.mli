(** The one deterministic seed of the system.

    Every source of randomness — the TPC-H data generator, the workload
    generators, the chaos fault scheduler, property-test runners — draws
    its seed through {!resolve}, so a single knob reproduces a whole
    run:

    - an explicit argument (e.g. the [--seed] CLI flag) wins,
    - else the [CGQP_SEED] environment variable,
    - else the historical default [42].

    Tools print the effective seed in their output so a failing run can
    always be replayed (see docs/FAULTS.md). *)

val env_var : string
(** ["CGQP_SEED"]. *)

val default : int
(** [42] — the seed everything used before this module existed. *)

val override : unit -> int option
(** The [CGQP_SEED] environment override alone, if set to a valid
    integer (a malformed value is treated as unset). Use this when a
    caller has its own historical per-call default that the environment
    should trump — e.g. the bench harness's fixed per-experiment
    seeds. *)

val resolve : ?cli:int -> unit -> int
(** [resolve ?cli ()] is the effective seed: [cli] if given, else the
    environment override, else {!default}. *)
