(* Differential regression suite for the optimizer hot path.

   The verdict cache (Policy.Implication, Policy.Evaluator) and the
   memo's branch-and-bound pruning are pure accelerations: with them
   enabled the optimizer must emit, for every E1 workload query under
   every policy set, a plan with identical cost, identical compliance
   verdict and identical executed rows as the uncached, unpruned
   baseline. This suite locks that in by running both configurations
   side by side. *)

open Optimizer

let cat = Tpch.Schema.catalog ()
let data = Tpch.Datagen.generate ~sf:0.003 ()
let db = Tpch.Datagen.load ~cat data

let set_caches on =
  Policy.Implication.set_cache_enabled on;
  Policy.Evaluator.set_cache_enabled on

let reset_caches () =
  Policy.Implication.reset_cache ();
  Policy.Evaluator.reset_cache ()

(* Optimize [sql] in the uncached/unpruned baseline configuration and in
   the default accelerated one, restoring global cache state after. *)
let both ~cat ~policies sql =
  set_caches false;
  let baseline = Planner.optimize_sql ~prune:false ~cat ~policies sql in
  set_caches true;
  reset_caches ();
  let fast = Planner.optimize_sql ~cat ~policies sql in
  (baseline, fast)

let plan_string = function
  | Planner.Rejected reason -> "REJECTED: " ^ reason
  | Planner.Planned p -> Exec.Pplan.to_string p.Planner.plan

let sorted_rows rel =
  Storage.Relation.rows rel |> Array.to_list
  |> List.map Array.to_list
  |> List.sort (List.compare Relalg.Value.compare)

let canon_rows rows =
  List.map
    (List.map (fun v ->
         match v with
         | Relalg.Value.Float f -> Relalg.Value.Float (Float.round (f *. 1e4) /. 1e4)
         | _ -> v))
    rows

let execute ~cat ~db plan =
  (Exec.Interp.run ~network:(Catalog.network cat) ~db
     ~table_cols:(Catalog.table_cols cat) plan)
    .Exec.Interp.relation

(* The heart of the suite: baseline and accelerated outcomes must agree
   on verdict, cost, plan shape and — when planned — executed rows. *)
let check_identical ~label ~cat ~db baseline fast =
  (match (baseline, fast) with
  | Planner.Rejected _, Planner.Rejected _ -> ()
  | Planner.Planned b, Planner.Planned f ->
    Alcotest.(check (float 1e-6))
      (label ^ ": identical phase-1 cost")
      b.Planner.phase1_cost f.Planner.phase1_cost;
    Alcotest.(check bool)
      (label ^ ": identical compliance verdict")
      (b.Planner.violations = [])
      (f.Planner.violations = []);
    Alcotest.(check string)
      (label ^ ": identical plan")
      (Exec.Pplan.to_string b.Planner.plan)
      (Exec.Pplan.to_string f.Planner.plan);
    let rows_b = canon_rows (sorted_rows (execute ~cat ~db b.Planner.plan)) in
    let rows_f = canon_rows (sorted_rows (execute ~cat ~db f.Planner.plan)) in
    Alcotest.(check bool) (label ^ ": identical executed rows") true (rows_b = rows_f)
  | _ ->
    Alcotest.failf "%s: outcome mismatch: baseline %s vs fast %s" label
      (plan_string baseline) (plan_string fast))

let test_workload_grid () =
  List.iter
    (fun set ->
      let policies = Tpch.Policies.catalog_of cat set in
      List.iter
        (fun (name, sql) ->
          let label =
            Printf.sprintf "%s under %s" name (Tpch.Policies.set_name_to_string set)
          in
          let baseline, fast = both ~cat ~policies sql in
          check_identical ~label ~cat ~db baseline fast)
        Tpch.Queries.all)
    Tpch.Policies.all_sets;
  set_caches true

(* The extended workload exercises disjunctions, cross-column
   comparisons and single-table rollups the E1 grid does not. *)
let test_extended_workload () =
  let policies = Tpch.Policies.catalog_of cat Tpch.Policies.CRA in
  List.iter
    (fun (name, sql) ->
      let baseline, fast = both ~cat ~policies sql in
      check_identical ~label:(name ^ " under CR+A") ~cat ~db baseline fast)
    Tpch.Queries.extended;
  set_caches true

(* Partitioned scans produce unions of per-partition groups — the
   static lower bound takes a different path there (per-placement
   fractions), so pin the equivalence down separately. *)
let test_partitioned_catalog () =
  let pcat =
    Tpch.Schema.catalog ~partition_tables:[ "customer"; "orders" ] ~partition_count:3 ()
  in
  let pdb = Tpch.Datagen.load ~cat:pcat data in
  let policies =
    Policy.Pcatalog.of_texts pcat
      (Tpch.Workload.gen_expressions ~seed:11 ~template:Tpch.Policies.CRA ~n:10 ())
  in
  List.iter
    (fun (name, sql) ->
      let baseline, fast = both ~cat:pcat ~policies sql in
      check_identical ~label:(name ^ " partitioned") ~cat:pcat ~db:pdb baseline fast)
    [ ("q3", Tpch.Queries.q3); ("q10", Tpch.Queries.q10) ];
  set_caches true

(* Queries with no compliant plan must be rejected in both
   configurations — pruning must never turn a rejection into a plan or
   vice versa. *)
let test_rejection_agreement () =
  let policies = Policy.Pcatalog.make [] in
  List.iter
    (fun (name, sql) ->
      let baseline, fast = both ~cat ~policies sql in
      match (baseline, fast) with
      | Planner.Rejected _, Planner.Rejected _ -> ()
      | _ ->
        Alcotest.failf "%s: rejection disagreement: baseline %s vs fast %s" name
          (plan_string baseline) (plan_string fast))
    Tpch.Queries.all;
  set_caches true

(* The accelerated run must actually exercise the machinery it claims
   to: nonzero verdict-cache traffic and a finite branch-and-bound
   bound. Guards against the suite silently comparing two baselines. *)
let test_acceleration_engaged () =
  let policies = Tpch.Policies.catalog_of cat Tpch.Policies.CR in
  set_caches true;
  reset_caches ();
  let outcome = Planner.optimize_sql ~cat ~policies Tpch.Queries.q8 in
  let ehits, emisses = Policy.Evaluator.cache_stats () in
  Alcotest.(check bool) "evaluator cache consulted" true (ehits + emisses > 0);
  (match outcome with
  | Planner.Planned p ->
    Alcotest.(check bool) "bound seeded" true
      (p.Planner.prune_stats.Memo.bound < Float.infinity)
  | Planner.Rejected r -> Alcotest.failf "q8 unexpectedly rejected: %s" r);
  (* a second identical run hits the evaluator cache *)
  let h0, _ = Policy.Evaluator.cache_stats () in
  ignore (Planner.optimize_sql ~cat ~policies Tpch.Queries.q8);
  let h1, _ = Policy.Evaluator.cache_stats () in
  Alcotest.(check bool) "repeat run hits the cache" true (h1 > h0)

let () =
  Alcotest.run "differential"
    [
      ( "optimizer hot path",
        [
          Alcotest.test_case "E1 workload x policy sets" `Slow test_workload_grid;
          Alcotest.test_case "extended workload" `Slow test_extended_workload;
          Alcotest.test_case "partitioned catalog" `Quick test_partitioned_catalog;
          Alcotest.test_case "rejection agreement" `Quick test_rejection_agreement;
          Alcotest.test_case "acceleration engaged" `Quick test_acceleration_engaged;
        ] );
    ]
