(* Compliant geo-distributed query processing — the end-to-end system of
   the paper (Figure 2).

   A {!session} bundles the geo-distributed catalog, the policy catalog
   populated by the data officers' policy expressions, and (optionally)
   the physical data. Queries submitted as SQL are parsed, bound,
   optimized by the compliance-based two-phase optimizer, certified, and
   executed against the in-memory engine with simulated wide-area SHIP
   costs.

   {[
     let session = Cgqp.create ~catalog () in
     Cgqp.add_policies session [ "ship custkey, name from customer to Europe" ];
     match Cgqp.run session "SELECT ..." with
     | Ok r -> ...
     | Error (`Rejected reason) -> ...
   ]} *)

type session = {
  catalog : Catalog.t;
  mutable policies : Policy.Pcatalog.t;
  mutable database : Storage.Database.t option;
  mutable mode : Optimizer.Memo.mode;
}

type error =
  [ `Parse of string  (** SQL or policy syntax error *)
  | `Bind of string  (** unknown table/column, ambiguity *)
  | `Rejected of string  (** no compliant plan exists (Figure 2 "reject") *)
  ]

type run_result = {
  relation : Storage.Relation.t;
  plan : Exec.Pplan.t;
  ship_cost_ms : float;  (** simulated network cost actually incurred *)
  shipped_bytes : int;
  makespan_ms : float;  (** simulated response time (critical path) *)
  planned : Optimizer.Planner.planned;
  interp : Exec.Interp.result;  (** raw executor output incl. per-node profile *)
}

let create ?database ~catalog () =
  { catalog; policies = Policy.Pcatalog.empty; database; mode = Optimizer.Memo.Compliant }

let set_mode session mode = session.mode <- mode
let catalog session = session.catalog
let policies session = session.policies

(* Install the physical data the engine executes against. *)
let attach_database session db = session.database <- Some db

(* [add_policies session texts] parses and installs policy expressions
   (the data officer's offline step in Figure 2). *)
let add_policies session texts =
  let parsed =
    List.map
      (fun text ->
        try Policy.Expression.parse session.catalog text
        with Policy.Expression.Bind_error m -> raise (Invalid_argument m))
      texts
  in
  session.policies <-
    Policy.Pcatalog.make (Policy.Pcatalog.all session.policies @ parsed)

let clear_policies session = session.policies <- Policy.Pcatalog.empty

(* Install a pre-built (e.g. deny-preprocessed) policy catalog
   wholesale. *)
let set_policy_catalog session pc = session.policies <- pc

let table_cols_opt session t =
  match Catalog.find_table session.catalog t with
  | Some e -> Some (Catalog.Table_def.col_names e.Catalog.def)
  | None -> None

(* Parse and bind; also return the ORDER BY / LIMIT decoration, which
   is applied to the final result outside the optimizer (the paper's
   optimizer scope is Select-Project-Join-GroupBy). *)
let parse_and_bind session sql :
    (Relalg.Plan.t * (Relalg.Attr.t * bool) list * int option, error) result =
  match Sqlfront.Parser.query sql with
  | exception Sqlfront.Parser.Error m -> Error (`Parse m)
  | ast -> (
    match Sqlfront.Binder.bind_query ~table_cols:(table_cols_opt session) ast with
    | plan -> Ok (plan, ast.Sqlfront.Ast.order_by, ast.Sqlfront.Ast.limit)
    | exception Sqlfront.Binder.Error m -> Error (`Bind m))

(* Parse and bind only. *)
let plan_of_sql session sql : (Relalg.Plan.t, error) result =
  Result.map (fun (p, _, _) -> p) (parse_and_bind session sql)

(* Optimize a query under the session's dataflow policies. The ORDER BY
   clause becomes the root's required sort order — part of the
   optimization goal's physical properties (§6.2); the optimizer adds a
   Sort enforcer only when the chosen plan does not already deliver
   it. *)
let optimize session sql : (Optimizer.Planner.planned, error) result =
  match parse_and_bind session sql with
  | Error e -> Error e
  | Ok (lplan, order_by, _) -> (
    match
      Optimizer.Planner.optimize ~mode:session.mode ~required_order:order_by
        ~cat:session.catalog ~policies:session.policies lplan
    with
    | Optimizer.Planner.Planned p -> Ok p
    | Optimizer.Planner.Rejected reason -> Error (`Rejected reason))

(* [is_legal session sql] — does the query admit at least one compliant
   execution plan? *)
let is_legal session sql =
  match optimize session sql with Ok _ -> true | Error _ -> false

(* Optimize and execute; ORDER BY / LIMIT are applied to the result. *)
let run session sql : (run_result, error) result =
  match parse_and_bind session sql with
  | Error e -> Error e
  | Ok (_, order_by, limit) -> (
    match optimize session sql with
    | Error e -> Error e
    | Ok planned -> (
      match session.database with
      | None -> Error (`Rejected "no database attached to the session")
      | Some db ->
        let interp =
          Exec.Interp.run
            ~network:(Catalog.network session.catalog)
            ~db
            ~table_cols:(Catalog.table_cols session.catalog)
            planned.Optimizer.Planner.plan
        in
        let { Exec.Interp.relation; stats; makespan_ms; profile = _ } = interp in
        (* ORDER BY is enforced inside the plan (Sort enforcer); only
           LIMIT remains a result decoration *)
        ignore order_by;
        let relation =
          match limit with None -> relation | Some n -> Storage.Relation.take relation n
        in
        Ok
          {
            relation;
            plan = planned.Optimizer.Planner.plan;
            ship_cost_ms = Exec.Interp.total_ship_cost stats;
            shipped_bytes = Exec.Interp.total_ship_bytes stats;
            makespan_ms;
            planned;
            interp;
          }))

(* EXPLAIN: optimize only, render the annotated plan tree. *)
let explain session sql : (string, error) result =
  Result.map Optimizer.Explain.render (optimize session sql)

(* EXPLAIN ANALYZE: optimize, execute, render with actual rows/bytes
   per operator. Requires an attached database. *)
let explain_analyze session sql : (string, error) result =
  Result.map (fun r -> Optimizer.Explain.render ~analyze:r.interp r.planned)
    (run session sql)

let pp_error ppf = function
  | `Parse m -> Fmt.pf ppf "syntax error: %s" m
  | `Bind m -> Fmt.pf ppf "binding error: %s" m
  | `Rejected m -> Fmt.pf ppf "rejected: %s" m

let error_to_string e = Fmt.str "%a" pp_error e
