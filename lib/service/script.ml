(* The [cgqp serve] workload-script DSL: line-based, one statement per
   line, '#' comments — the same parsing discipline as the fault
   schedule DSL (Catalog.Network.Fault). Grammar in script.mli and
   docs/SERVICE.md. *)

type action =
  | Submit of string
  | Add_policy of string
  | Set_policy_set of string
  | Clear_policies
  | Set_mode of Optimizer.Memo.mode
  | Wait of float

type session_spec = { sid : string; tenant : string; actions : action list }

type t = {
  seed : int option;
  tenants : (string * Admission.quota) list;
  sessions : session_spec list;
}

(* Session being parsed: actions accumulate reversed; [closed] sessions
   reject further statements. *)
type open_session = {
  o_sid : string;
  o_tenant : string;
  mutable o_actions : action list;
  mutable o_closed : bool;
}

(* Zipf-distributed point-lookup workload: [statements] submits spread
   round-robin over [sessions] sessions, parameters drawn by CDF
   inversion over 1/(k+1)^skew weights from a splitmix64 stream — the
   whole script is a pure function of the arguments. *)
let zipf_workload ?(skew = 1.1) ?(tenants = []) ~sessions ~statements ~universe
    ~make_statement ~seed () =
  if sessions <= 0 then invalid_arg "Script.zipf_workload: sessions must be positive";
  if statements <= 0 then
    invalid_arg "Script.zipf_workload: statements must be positive";
  if universe <= 0 then invalid_arg "Script.zipf_workload: universe must be positive";
  if skew <= 0. then invalid_arg "Script.zipf_workload: skew must be positive";
  (* cdf.(k) = sum of weights for ranks 0..k; sample by binary search *)
  let cdf = Array.make universe 0. in
  let total = ref 0. in
  for k = 0 to universe - 1 do
    total := !total +. (1. /. Float.of_int (k + 1) ** skew);
    cdf.(k) <- !total
  done;
  let prng = Storage.Prng.create ~seed in
  let sample () =
    let u = Storage.Prng.float prng !total in
    let lo = ref 0 and hi = ref (universe - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) <= u then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let acts = Array.make sessions [] (* reversed per-session action lists *) in
  for i = 0 to statements - 1 do
    let s = i mod sessions in
    acts.(s) <- Submit (make_statement (sample ())) :: acts.(s)
  done;
  let specs =
    List.init sessions (fun s ->
        let sid = Printf.sprintf "z%02d" (s + 1) in
        let tenant =
          match tenants with [] -> sid | ts -> fst (List.nth ts (s mod List.length ts))
        in
        { sid; tenant; actions = List.rev acts.(s) })
  in
  { seed = Some seed; tenants; sessions = specs }

let parse text : (t, string) result =
  let error = ref None in
  let fail lineno fmt =
    Printf.ksprintf
      (fun m ->
        if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno m))
      fmt
  in
  let seed = ref None in
  let tenants = ref [] (* reversed *) in
  let sessions = ref [] (* reversed, open order *) in
  let find_session sid =
    List.find_opt (fun o -> String.equal o.o_sid sid) !sessions
  in
  let with_session lineno sid k =
    match find_session sid with
    | None -> fail lineno "unknown session %S (no open statement)" sid
    | Some o ->
      if o.o_closed then fail lineno "session %S is already closed" sid else k o
  in
  (* [tenant NAME key value ...] — keys in any order, each optional *)
  let parse_tenant lineno name opts =
    let quota = ref Admission.unlimited in
    let rec go = function
      | [] -> ()
      | "max-inflight" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n ->
          quota := { !quota with Admission.max_in_flight = Some n };
          go rest
        | None -> fail lineno "tenant %s: max-inflight expects an integer, found %S" name n)
      | "ship-budget" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n ->
          quota := { !quota with Admission.ship_budget_bytes = Some n };
          go rest
        | None -> fail lineno "tenant %s: ship-budget expects an integer, found %S" name n)
      | "window" :: n :: rest -> (
        match float_of_string_opt n with
        | Some w when w > 0. ->
          quota := { !quota with Admission.window_ms = w };
          go rest
        | _ -> fail lineno "tenant %s: window expects a positive number, found %S" name n)
      | "on-deny" :: v :: rest -> (
        match v with
        | "reject" ->
          quota := { !quota with Admission.on_deny = Admission.Reject };
          go rest
        | "queue" ->
          quota := { !quota with Admission.on_deny = Admission.Queue };
          go rest
        | _ -> fail lineno "tenant %s: on-deny expects reject|queue, found %S" name v)
      | w :: _ -> fail lineno "tenant %s: unknown option %S" name w
    in
    go opts;
    if List.mem_assoc name !tenants then fail lineno "tenant %S declared twice" name
    else tenants := (name, !quota) :: !tenants
  in
  let parse_open lineno sid opts =
    if find_session sid <> None then fail lineno "session %S opened twice" sid
    else begin
      let tenant = ref sid and policy_set = ref None in
      let rec go = function
        | [] -> ()
        | "tenant" :: name :: rest ->
          tenant := name;
          go rest
        | "policies" :: set :: rest ->
          policy_set := Some set;
          go rest
        | w :: _ -> fail lineno "open %s: unknown option %S" sid w
      in
      go opts;
      let actions =
        match !policy_set with Some s -> [ Set_policy_set s ] | None -> []
      in
      sessions :=
        { o_sid = sid; o_tenant = !tenant; o_actions = List.rev actions; o_closed = false }
        :: !sessions
    end
  in
  let push o a = o.o_actions <- a :: o.o_actions in
  (* split off the first [n] words; the remainder keeps its internal
     spacing (SQL and policy texts are free-form) *)
  let words line = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some k -> String.sub raw 0 k
        | None -> raw
      in
      let line = String.map (function '\t' -> ' ' | c -> c) (String.trim line) in
      match words line with
      | [] -> ()
      | "seed" :: rest -> (
        match rest with
        | [ n ] -> (
          match int_of_string_opt n with
          | Some n -> seed := Some n
          | None -> fail lineno "seed: expected an integer, found %S" n)
        | _ -> fail lineno "seed: expected exactly one integer")
      | "tenant" :: name :: opts -> parse_tenant lineno name opts
      | "open" :: sid :: opts -> parse_open lineno sid opts
      | "close" :: rest -> (
        match rest with
        | [ sid ] -> with_session lineno sid (fun o -> o.o_closed <- true)
        | _ -> fail lineno "close: expected exactly one session id")
      | "clear-policies" :: rest -> (
        match rest with
        | [ sid ] -> with_session lineno sid (fun o -> push o Clear_policies)
        | _ -> fail lineno "clear-policies: expected exactly one session id")
      | "set-policies" :: rest -> (
        match rest with
        | [ sid; set ] -> with_session lineno sid (fun o -> push o (Set_policy_set set))
        | _ -> fail lineno "set-policies: expected SESSION SET")
      | "mode" :: rest -> (
        match rest with
        | [ sid; "compliant" ] ->
          with_session lineno sid (fun o -> push o (Set_mode Optimizer.Memo.Compliant))
        | [ sid; "traditional" ] ->
          with_session lineno sid (fun o ->
              push o (Set_mode Optimizer.Memo.Traditional))
        | _ -> fail lineno "mode: expected SESSION compliant|traditional")
      | "wait" :: rest -> (
        match rest with
        | [ sid; ms ] -> (
          match float_of_string_opt ms with
          | Some ms when ms >= 0. -> with_session lineno sid (fun o -> push o (Wait ms))
          | _ -> fail lineno "wait: expected a non-negative number of ms, found %S" ms)
        | _ -> fail lineno "wait: expected SESSION MS")
      | "submit" :: sid :: (_ :: _ as rest) ->
        with_session lineno sid (fun o -> push o (Submit (String.concat " " rest)))
      | [ "submit"; _ ] | [ "submit" ] -> fail lineno "submit: expected SESSION SQL"
      | "policy" :: sid :: (_ :: _ as rest) ->
        with_session lineno sid (fun o -> push o (Add_policy (String.concat " " rest)))
      | [ "policy"; _ ] | [ "policy" ] -> fail lineno "policy: expected SESSION TEXT"
      | w :: _ -> fail lineno "unknown statement %S" w)
    (String.split_on_char '\n' text);
  match !error with
  | Some e -> Error e
  | None ->
    Ok
      {
        seed = !seed;
        tenants = List.rev !tenants;
        sessions =
          List.rev_map
            (fun o ->
              { sid = o.o_sid; tenant = o.o_tenant; actions = List.rev o.o_actions })
            !sessions;
      }

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match parse s with
  | Error m -> Error (Printf.sprintf "%s: %s" path m)
  | Ok t -> Ok t

let action_to_string sid = function
  | Submit sql -> Printf.sprintf "submit %s %s" sid sql
  | Add_policy text -> Printf.sprintf "policy %s %s" sid text
  | Set_policy_set set -> Printf.sprintf "set-policies %s %s" sid set
  | Clear_policies -> Printf.sprintf "clear-policies %s" sid
  | Set_mode Optimizer.Memo.Compliant -> Printf.sprintf "mode %s compliant" sid
  | Set_mode Optimizer.Memo.Traditional -> Printf.sprintf "mode %s traditional" sid
  | Wait ms -> Printf.sprintf "wait %s %g" sid ms

let to_string t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  (match t.seed with Some s -> line "seed %d" s | None -> ());
  List.iter
    (fun (name, (q : Admission.quota)) ->
      Buffer.add_string b ("tenant " ^ name);
      (match q.Admission.max_in_flight with
      | Some n -> Buffer.add_string b (Printf.sprintf " max-inflight %d" n)
      | None -> ());
      (match q.Admission.ship_budget_bytes with
      | Some n -> Buffer.add_string b (Printf.sprintf " ship-budget %d" n)
      | None -> ());
      if q.Admission.window_ms <> Admission.unlimited.Admission.window_ms then
        Buffer.add_string b (Printf.sprintf " window %g" q.Admission.window_ms);
      (match q.Admission.on_deny with
      | Admission.Queue -> Buffer.add_string b " on-deny queue"
      | Admission.Reject -> ());
      Buffer.add_char b '\n')
    t.tenants;
  List.iter
    (fun s ->
      if String.equal s.tenant s.sid then line "open %s" s.sid
      else line "open %s tenant %s" s.sid s.tenant;
      List.iter (fun a -> line "%s" (action_to_string s.sid a)) s.actions;
      line "close %s" s.sid)
    t.sessions;
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_string t)
