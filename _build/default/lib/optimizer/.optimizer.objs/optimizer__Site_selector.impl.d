lib/optimizer/site_selector.ml: Catalog Exec Float Hashtbl List Memo Option
