(* A column reference, qualified by the relation alias (or base table
   name) it belongs to. [rel = ""] denotes an unqualified reference that
   name resolution must bind later. *)

type t = { rel : string; name : string }

let make ~rel ~name = { rel = String.lowercase_ascii rel; name = String.lowercase_ascii name }
let unqualified name = { rel = ""; name = String.lowercase_ascii name }
let is_qualified a = a.rel <> ""

let compare a b =
  match String.compare a.rel b.rel with 0 -> String.compare a.name b.name | c -> c

let equal a b = compare a b = 0

let pp ppf a = if a.rel = "" then Fmt.string ppf a.name else Fmt.pf ppf "%s.%s" a.rel a.name
let to_string a = Fmt.str "%a" pp a

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
