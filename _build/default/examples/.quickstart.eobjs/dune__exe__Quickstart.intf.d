examples/quickstart.mli:
