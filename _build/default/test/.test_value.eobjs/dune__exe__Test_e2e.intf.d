test/test_e2e.mli:
