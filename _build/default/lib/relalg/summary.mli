(** Query summaries: what the policy evaluator (Algorithm 1 of the
    paper) sees of a (sub)plan.

    A summary exposes the output attributes with their base-column
    provenance and aggregation status, the conjunction of predicates
    normalized to base columns, the group-by columns, and the set of
    base columns {e accessed} by predicates (disclosed through
    filtering even when projected away, cf. §4.1 "accesses only the
    specified cells").

    The analysis is deliberately {e sound but incomplete}: any
    derivation it cannot track precisely is marked [opaque], which the
    evaluator treats as "shippable nowhere". *)

type base_col = { table : string; column : string }
(** A column of a base table (global name). *)

val base_col_compare : base_col -> base_col -> int
val base_col_equal : base_col -> base_col -> bool
val pp_base_col : Format.formatter -> base_col -> unit

type out_ref = {
  name : string;  (** output column name *)
  sources : base_col list;  (** base columns it derives from *)
  agg : Expr.agg_fn option;  (** aggregation applied, if any *)
  group_key : bool;  (** grouping attribute exposed in the output *)
  opaque : bool;  (** derivation beyond the analysis *)
}

type t = {
  tables : (string * string) list;  (** alias -> global table name *)
  outputs : out_ref list;
  pred : Pred.t;  (** over base columns [Attr {rel=table; name=column}] *)
  group_cols : base_col list option;  (** [Some _] iff aggregation query *)
  accessed : (base_col * Expr.agg_fn option) list;
      (** columns read by predicates *)
  valid : bool;  (** false when the plan shape is beyond the analysis *)
}

val is_aggregate : t -> bool

val compose_agg : outer:Expr.agg_fn -> inner:Expr.agg_fn -> Expr.agg_fn option
(** Re-aggregation of a partial aggregate: sum∘sum = sum,
    sum∘count = count, min/max idempotent; anything else is beyond the
    analysis ([None]). *)

val analyze : table_cols:(string -> string list) -> Plan.t -> t
(** Compute the summary of a logical plan. [table_cols] supplies base
    table column lists (may raise for unknown tables). *)

val pp : Format.formatter -> t -> unit
