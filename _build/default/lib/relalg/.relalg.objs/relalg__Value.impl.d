lib/relalg/value.ml: Bool Float Fmt Hashtbl Int Printf String
