(* Tests for the deterministic rewrites: selection pushdown, column
   pruning ("masking via projection") and canonicalization. *)

open Relalg
module N = Optimizer.Normalize

let table_cols = function
  | "customer" -> [ "custkey"; "name"; "acctbal" ]
  | "orders" -> [ "custkey"; "ordkey"; "totprice" ]
  | t -> Alcotest.failf "unknown table %s" t

let scan ?alias t = Plan.Scan { table = t; alias = Option.value alias ~default:t }
let col rel name = Expr.Col (Attr.make ~rel ~name)
let eq a b = Pred.Atom (Pred.Cmp (Pred.Eq, a, b))
let gt a n = Pred.Atom (Pred.Cmp (Pred.Gt, a, Expr.Const (Value.Int n)))

let test_pushdown_through_join () =
  let plan =
    Plan.Select
      ( Pred.conj_all
          [
            eq (col "customer" "custkey") (col "orders" "custkey");
            gt (col "customer" "acctbal") 10;
            gt (col "orders" "totprice") 5;
          ],
        Plan.Join (Pred.True, scan "customer", scan "orders") )
  in
  match N.pushdown ~table_cols plan with
  | Plan.Join (jp, Plan.Select (lp, Plan.Scan _), Plan.Select (rp, Plan.Scan _)) ->
    Alcotest.(check int) "join keeps the cross conjunct" 1 (List.length (Pred.conjuncts jp));
    Alcotest.(check int) "left filter" 1 (List.length (Pred.conjuncts lp));
    Alcotest.(check int) "right filter" 1 (List.length (Pred.conjuncts rp))
  | p -> Alcotest.failf "unexpected shape:@.%s" (Plan.to_string p)

let test_pushdown_through_aggregate () =
  (* a predicate over a group key sinks below the aggregation; one over
     an aggregate output stays above *)
  let agg =
    Plan.Aggregate
      {
        keys = [ Attr.make ~rel:"orders" ~name:"custkey" ];
        aggs = [ { Expr.fn = Expr.Sum; arg = col "orders" "totprice"; alias = "s" } ];
        input = scan "orders";
      }
  in
  let plan =
    Plan.Select
      ( Pred.conj
          (gt (col "orders" "custkey") 7)
          (gt (Expr.Col (Attr.unqualified "s")) 100),
        agg )
  in
  match N.pushdown ~table_cols plan with
  | Plan.Select (above, Plan.Aggregate { input = Plan.Select (below, Plan.Scan _); _ }) ->
    Alcotest.(check int) "above" 1 (List.length (Pred.conjuncts above));
    Alcotest.(check int) "below" 1 (List.length (Pred.conjuncts below))
  | p -> Alcotest.failf "unexpected shape:@.%s" (Plan.to_string p)

let test_pushdown_through_project () =
  let plan =
    Plan.Select
      ( gt (Expr.Col (Attr.unqualified "bal")) 10,
        Plan.Project ([ (col "customer" "acctbal", Attr.unqualified "bal") ], scan "customer") )
  in
  match N.pushdown ~table_cols plan with
  | Plan.Project (_, Plan.Select (p, Plan.Scan _)) ->
    (* the conjunct was rewritten through the projection *)
    Alcotest.(check bool) "rewritten to base column" true
      (Attr.Set.mem (Attr.make ~rel:"customer" ~name:"acctbal") (Pred.cols p))
  | p -> Alcotest.failf "unexpected shape:@.%s" (Plan.to_string p)

let test_prune_columns () =
  let plan =
    Plan.Project
      ( [ (col "customer" "name", Attr.unqualified "name") ],
        Plan.Select (gt (col "customer" "acctbal") 10, scan "customer") )
  in
  let pruned = N.prune_columns ~table_cols plan in
  (* the scan should now project only name and acctbal (custkey dropped) *)
  let rec find_scan_project = function
    | Plan.Project (items, Plan.Scan _) -> Some items
    | Plan.Project (_, i) | Plan.Select (_, i) -> find_scan_project i
    | _ -> None
  in
  match find_scan_project pruned with
  | Some items -> Alcotest.(check int) "two columns kept" 2 (List.length items)
  | None -> Alcotest.failf "no pruning projection inserted:@.%s" (Plan.to_string pruned)

let test_prune_keeps_semantics () =
  (* pruning must never remove columns used by predicates *)
  let plan =
    Plan.Project
      ( [ (col "orders" "ordkey", Attr.unqualified "ordkey") ],
        Plan.Select (gt (col "orders" "totprice") 3, scan "orders") )
  in
  let pruned = N.prune_columns ~table_cols plan in
  let rec scan_cols = function
    | Plan.Project (items, Plan.Scan _) -> List.map (fun (_, n) -> n.Attr.name) items
    | Plan.Project (_, i) | Plan.Select (_, i) -> scan_cols i
    | _ -> []
  in
  let cols = scan_cols pruned in
  Alcotest.(check bool) "totprice kept" true (List.mem "totprice" cols);
  Alcotest.(check bool) "custkey dropped" false (List.mem "custkey" cols)

let test_canon_join_order_invariance () =
  let a = scan ~alias:"a" "customer"
  and b = scan ~alias:"b" "orders" in
  let p = eq (col "a" "custkey") (col "b" "custkey") in
  let j1 = Plan.Join (p, a, b) in
  let j2 = Plan.Join (p, b, a) in
  Alcotest.(check bool) "commuted joins share canon" true
    (Plan.equal (N.canon j1) (N.canon j2))

let test_canon_assoc_invariance () =
  let a = scan ~alias:"a" "customer"
  and b = scan ~alias:"b" "orders"
  and c = scan ~alias:"c" "orders" in
  let pab = eq (col "a" "custkey") (col "b" "custkey") in
  let pbc = eq (col "b" "ordkey") (col "c" "ordkey") in
  let left = Plan.Join (pbc, Plan.Join (pab, a, b), c) in
  let right = Plan.Join (pab, a, Plan.Join (pbc, b, c)) in
  Alcotest.(check bool) "associated joins share canon" true
    (Plan.equal (N.canon left) (N.canon right))

let test_canon_conjunct_order () =
  let s1 =
    Plan.Select
      (Pred.conj (gt (col "customer" "acctbal") 1) (gt (col "customer" "custkey") 2),
       scan "customer")
  in
  let s2 =
    Plan.Select
      (Pred.conj (gt (col "customer" "custkey") 2) (gt (col "customer" "acctbal") 1),
       scan "customer")
  in
  Alcotest.(check bool) "conjunct order irrelevant" true
    (Plan.equal (N.canon s1) (N.canon s2))

(* property: pushdown + pruning preserve the set of base tables and all
   predicate atoms *)
let prop_normalize_preserves_tables =
  QCheck.Test.make ~name:"normalize preserves base tables" ~count:100
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Storage.Prng.create ~seed in
      let n = 1 + Storage.Prng.int g 3 in
      let aliases = List.init n (fun i -> Printf.sprintf "t%d" i) in
      let plan =
        List.fold_left
          (fun acc a ->
            Plan.Join
              ( eq (col (Printf.sprintf "t%d" 0) "custkey") (col a "custkey"),
                acc,
                Plan.Scan { table = "customer"; alias = a } ))
          (Plan.Scan { table = "customer"; alias = "t0" })
          (List.tl aliases)
      in
      let plan = Plan.Select (gt (col "t0" "acctbal") (Storage.Prng.int g 50), plan) in
      let tc = function "customer" -> [ "custkey"; "name"; "acctbal" ] | _ -> [] in
      let before = List.sort compare (Plan.base_tables plan) in
      let after = List.sort compare (Plan.base_tables (N.normalize ~table_cols:tc plan)) in
      before = after)

(* --- semantics preservation: execute original vs normalized plan --- *)

(* trivial single-site physical rendering of a logical plan *)
let rec physical_of (plan : Plan.t) : Exec.Pplan.t =
  let mk node children =
    { Exec.Pplan.node; loc = "x"; children;
      est = { Exec.Pplan.est_rows = 0.; est_width = 0. } }
  in
  match plan with
  | Plan.Scan { table; alias } ->
    mk (Exec.Pplan.Table_scan { table; alias; partition = 0 }) []
  | Plan.Select (p, i) -> mk (Exec.Pplan.Filter p) [ physical_of i ]
  | Plan.Project (items, i) -> mk (Exec.Pplan.Project items) [ physical_of i ]
  | Plan.Join (p, l, r) -> mk (Exec.Pplan.Nl_join p) [ physical_of l; physical_of r ]
  | Plan.Aggregate { keys; aggs; input } ->
    mk (Exec.Pplan.Hash_agg { keys; aggs }) [ physical_of input ]
  | Plan.Union xs -> mk Exec.Pplan.Union_all (List.map physical_of xs)

let tiny_tables = [ ("r", [ "a"; "b"; "c" ]); ("s", [ "a"; "d" ]) ]
let tiny_cols t = List.assoc t tiny_tables

let tiny_db seed =
  let g = Storage.Prng.create ~seed in
  let db = Storage.Database.create () in
  List.iter
    (fun (t, cols) ->
      let schema = List.map (fun c -> Attr.make ~rel:t ~name:c) cols in
      let rows =
        Array.init
          (5 + Storage.Prng.int g 10)
          (fun _ ->
            Array.of_list
              (List.map (fun _ -> Value.Int (Storage.Prng.int g 6)) cols))
      in
      Storage.Database.add db ~table:t (Storage.Relation.make ~schema ~rows))
    tiny_tables;
  db

let gen_tiny_plan g : Plan.t =
  let pred_over alias cols =
    let c = Storage.Prng.pick g cols in
    let v = Storage.Prng.int g 6 in
    let op = Storage.Prng.pick g [ Pred.Eq; Pred.Lt; Pred.Ge; Pred.Ne ] in
    Pred.Atom (Pred.Cmp (op, Expr.Col (Attr.make ~rel:alias ~name:c), Expr.Const (Value.Int v)))
  in
  let base = Plan.Scan { table = "r"; alias = "r" } in
  let joined =
    if Storage.Prng.bool g then
      Plan.Join
        ( Pred.Atom
            (Pred.Cmp
               ( Pred.Eq,
                 Expr.Col (Attr.make ~rel:"r" ~name:"a"),
                 Expr.Col (Attr.make ~rel:"s" ~name:"a") )),
          base,
          Plan.Scan { table = "s"; alias = "s" } )
    else base
  in
  let with_tables aliases =
    let n_preds = Storage.Prng.int g 3 in
    let preds =
      List.init n_preds (fun _ ->
          let alias = Storage.Prng.pick g aliases in
          pred_over alias (tiny_cols (if alias = "r" then "r" else "s")))
    in
    if preds = [] then joined else Plan.Select (Pred.conj_all preds, joined)
  in
  let aliases = if Plan.join_count joined > 0 then [ "r"; "s" ] else [ "r" ] in
  let filtered = with_tables aliases in
  if Storage.Prng.bool g then
    Plan.Project
      ( [ (Expr.Col (Attr.make ~rel:"r" ~name:"a"), Attr.make ~rel:"r" ~name:"a");
          (Expr.Col (Attr.make ~rel:"r" ~name:"b"), Attr.make ~rel:"r" ~name:"b") ],
        filtered )
  else
    Plan.Aggregate
      {
        keys = [ Attr.make ~rel:"r" ~name:"b" ];
        aggs =
          [ { Expr.fn = Expr.Sum; arg = Expr.Col (Attr.make ~rel:"r" ~name:"c");
              alias = "s_c" } ];
        input = filtered;
      }

let prop_normalize_preserves_semantics =
  let network = Catalog.Network.uniform ~locations:[ "x" ] ~alpha:0. ~beta:0. in
  QCheck.Test.make ~name:"normalize preserves query answers" ~count:150
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Storage.Prng.create ~seed in
      let plan = gen_tiny_plan g in
      let normalized = N.normalize ~table_cols:tiny_cols plan in
      let db = tiny_db (seed + 7) in
      let exec p =
        (Exec.Interp.run ~network ~db ~table_cols:tiny_cols (physical_of p))
          .Exec.Interp.relation
        |> Storage.Relation.rows |> Array.to_list |> List.map Array.to_list
        |> List.sort (List.compare Value.compare)
      in
      exec plan = exec normalized)

let () =
  Alcotest.run "normalize"
    [
      ( "pushdown",
        [
          Alcotest.test_case "through join" `Quick test_pushdown_through_join;
          Alcotest.test_case "through aggregate" `Quick test_pushdown_through_aggregate;
          Alcotest.test_case "through project" `Quick test_pushdown_through_project;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "prunes" `Quick test_prune_columns;
          Alcotest.test_case "keeps predicate cols" `Quick test_prune_keeps_semantics;
        ] );
      ( "canon",
        [
          Alcotest.test_case "commute" `Quick test_canon_join_order_invariance;
          Alcotest.test_case "associate" `Quick test_canon_assoc_invariance;
          Alcotest.test_case "conjunct order" `Quick test_canon_conjunct_order;
          QCheck_alcotest.to_alcotest prop_normalize_preserves_tables;
          QCheck_alcotest.to_alcotest prop_normalize_preserves_semantics;
        ] );
    ]
