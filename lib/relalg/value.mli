(** Runtime values of the relational engine.

    A small dynamically-typed value universe shared by the storage layer,
    the execution engine, and predicate evaluation. Dates are stored as a
    day count so range comparisons are plain integer comparisons. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** days since 1970-01-01 *)
  | Bool of bool

type ty = Tint | Tfloat | Tstr | Tdate | Tbool

val type_of : t -> ty option
(** [type_of v] is the type of [v], or [None] for [Null]. *)

val ty_to_string : ty -> string

val compare : t -> t -> int
(** Total order used by joins, grouping and range analysis. [Null] sorts
    before every other value; values of distinct types are ordered by an
    arbitrary but fixed type rank. Numeric values compare numerically
    across [Int]/[Float]. *)

val equal : t -> t -> bool

val is_null : t -> bool
(** Constant-time [Null] test — use this in hot paths instead of a
    polymorphic [v = Null] comparison. *)

val hash : t -> int

val byte_width : t -> int
(** Approximate serialized width in bytes, used by the network cost
    model to estimate shipped volume. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Arithmetic; [Null] is absorbing, ints are promoted to floats when
    mixed. Division by zero yields [Null]. *)

val to_float : t -> float option

val date_of_string : string -> int option
(** [date_of_string "1994-03-15"] parses an ISO date to a day count. *)

val date_to_string : int -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string
