(** Per-tenant admission control for the serving layer.

    Two quota dimensions, both on the {e simulated} clock (the same
    millisecond timeline the executor's message cost model produces):

    - [max_in_flight] — how many of the tenant's statements may execute
      concurrently across all of its sessions;
    - [ship_budget_bytes] per [window_ms] — how many simulated SHIP
      bytes the tenant may move per fixed window. The budget is
      post-paid: a statement admitted while the window is under budget
      may push it over, and the overrun blocks the {e next} admission
      until the window rolls.

    Over-budget work is either rejected outright or queued (retried at
    the returned [retry_at] time), per the tenant's [on_deny] setting —
    the scheduler implements the waiting, this module only decides.
    Tenants without an explicit quota are {!unlimited}. *)

type on_deny =
  | Reject  (** deny becomes a terminal [`Denied] statement outcome *)
  | Queue  (** the scheduler re-submits at [retry_at] *)

type quota = {
  max_in_flight : int option;  (** [None] = unlimited *)
  ship_budget_bytes : int option;  (** [None] = unlimited *)
  window_ms : float;  (** byte-budget accounting window *)
  on_deny : on_deny;
}

val unlimited : quota
(** No limits; [window_ms = 1000.], [on_deny = Reject]. *)

type reason =
  | In_flight of { tenant : string; in_flight : int; limit : int }
  | Ship_budget of { tenant : string; used : int; budget : int; window_ms : float }

val reason_to_string : reason -> string

type decision =
  | Admit
  | Deny of {
      reason : reason;
      retry_at : float option;
          (** earliest simulated time the denial could lift ([None] when
              it never can, e.g. a zero budget — always a hard
              rejection) *)
    }

type t

val create : unit -> t
val set_quota : t -> tenant:string -> quota -> unit
val quota_of : t -> tenant:string -> quota

val admit : t -> tenant:string -> now:float -> decision
(** Decide admission at simulated time [now]: purges completions due by
    [now], rolls the byte window, then checks in-flight count and
    window budget. Does {e not} register the statement — call
    {!started} once the caller commits to executing it. *)

val started : t -> tenant:string -> finish_ms:float -> unit
(** Register an admitted statement that will complete at [finish_ms]
    (it counts against [max_in_flight] until then). *)

val charge : t -> tenant:string -> now:float -> bytes:int -> unit
(** Charge shipped bytes to the window containing [now]. *)
