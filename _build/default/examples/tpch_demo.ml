(* Geo-distributed TPC-H demo (the paper's §7 setup, Table 2): generates
   TPC-H data, distributes it over five locations, installs the CR+A
   policy set, and runs the six workload queries end-to-end — comparing
   the compliance-based optimizer with the traditional cost-based one.

   Run with: dune exec examples/tpch_demo.exe [-- <sf>] *)

let () =
  let sf =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.005
  in
  let cat = Tpch.Schema.catalog ~sf:10.0 () in
  let session = Cgqp.create ~catalog:cat () in
  Cgqp.add_policies session Tpch.Policies.set_cra;
  Fmt.pr "Generating TPC-H data at sf=%.3f ...@." sf;
  let data = Tpch.Datagen.generate ~sf () in
  let db = Tpch.Datagen.load ~cat data in
  Cgqp.attach_database session db;
  Fmt.pr "Loaded %d rows across 5 sites.@.@." (Storage.Database.total_rows db);

  Fmt.pr "%-5s %-12s %-12s %-14s %-14s %-8s@." "query" "trad-status" "comp-status"
    "trad-ship(B)" "comp-ship(B)" "rows";
  List.iter
    (fun (name, sql) ->
      let run mode =
        Cgqp.set_mode session mode;
        match Cgqp.run session sql with
        | Ok r ->
          let status =
            if r.Cgqp.planned.Optimizer.Planner.violations = [] then "compliant"
            else "VIOLATES"
          in
          Some (status, r.Cgqp.shipped_bytes, Storage.Relation.cardinality r.Cgqp.relation, r)
        | Error _ -> None
      in
      let trad = run Optimizer.Memo.Traditional in
      let comp = run Optimizer.Memo.Compliant in
      match trad, comp with
      | Some (ts, tb, trows, tr), Some (cs, cb, crows, cr) ->
        Fmt.pr "%-5s %-12s %-12s %-14d %-14d %-8d@." name ts cs tb cb crows;
        (* both optimizers must compute the same result *)
        if trows <> crows then
          Fmt.pr "  !! result cardinality differs (%d vs %d)@." trows crows;
        ignore tr;
        ignore cr
      | _ -> Fmt.pr "%-5s failed@." name)
    Tpch.Queries.all;

  (* show one compliant plan in full *)
  Cgqp.set_mode session Optimizer.Memo.Compliant;
  match Cgqp.optimize session Tpch.Queries.q3 with
  | Ok p ->
    Fmt.pr "@.Compliant plan for Q3 (note the partial aggregate below the SHIP,@.\
            as in the paper's Fig. 5(e)):@.%a@."
      (Exec.Pplan.pp ~indent:2) p.Optimizer.Planner.plan
  | Error e -> Fmt.pr "Q3 failed: %s@." (Cgqp.error_to_string e)
