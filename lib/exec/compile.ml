(* Compiling executor for physical plans.

   Where the reference interpreter ([Interp]) re-resolves attribute
   names and re-walks Pred/Expr ASTs on every row, this engine does all
   of that once per operator at plan-compile time:

   - attributes are resolved against the child schema into integer
     column indices (via [Storage.Relation.resolver]);
   - Pred/Expr ASTs become index-addressed closures, with constant
     subterms folded and null checks specialized away where an operand
     is a known non-null constant;
   - join-key index vectors are precomputed, and probe keys / joined
     rows go through reused scratch buffers so the inner loops only
     allocate for rows that are actually emitted.

   Execution then runs the compiled tree over plain [Value.t array]
   rows, materializing a [Storage.Relation.t] only at the root. SHIPs,
   retries, profiles and metrics go through the shared [Runtime], and
   the engine executes children in the same order as the interpreter
   (right child first for binary operators, left-to-right for unions),
   so results, SHIP accounting and EXPLAIN ANALYZE actuals are
   byte-identical to the reference engine — see docs/EXECUTOR.md and
   the differential property in test/test_exec.ml. *)

open Relalg
open Runtime

type ctx = {
  stats : stats;
  profile : node_profile list ref;
  faults : Catalog.Network.Fault.schedule;
  retry : retry_policy;
  network : Catalog.Network.t;
  mem : mem;  (* this execution's byte account *)
  spill : Spill.t;
}

(* A compiled node: schema fixed at compile time, [exec] runs the whole
   subtree (bookkeeping included) and returns the output rows, the
   bytes charged against the memory budget for them (released by the
   parent once consumed), and the subtree's simulated finish time. *)
type cnode = {
  cschema : Attr.t list;
  exec : ctx -> Value.t array array * int * float;
}

type t = cnode

let schema t = t.cschema

(* Scalar/predicate compilation, constant folding and key index vectors
   live in [Runtime] (shared with the vectorized engine). *)

(* --- joined-row emission through a reused buffer --- *)

(* Emit machinery for join outputs, built once at compile time: with a
   residual, rows are blitted into a scratch buffer, tested, and copied
   only when kept; with [Pred.True] the buffer (and the test)
   disappears. The buffer is safe to share across executions of the
   compiled plan — execution is single-threaded and each emit fully
   overwrites it. *)
let joined_emitter ~lw ~rw ~(residual : Pred.t) ~(cschema : Attr.t list) :
    Value.t array list ref -> Value.t array -> Value.t array -> unit =
  match fold_pred residual with
  | Pred.True -> fun out lrow rrow -> out := Array.append lrow rrow :: !out
  | residual ->
    let keep = compile_pred (Storage.Relation.resolver cschema) residual in
    let buf = Array.make (lw + rw) Value.Null in
    fun out lrow rrow ->
      Array.blit lrow 0 buf 0 lw;
      Array.blit rrow 0 buf lw rw;
      if keep buf then out := Array.copy buf :: !out

(* Box a row's join key for the spill path; [None] if any component is
   NULL (such rows never join, matching the in-memory build/probe). *)
let boxed_key ixs =
  let nk = Array.length ixs in
  fun row ->
    let k = Array.make nk Value.Null in
    if fill_key ixs row k then Some k else None

(* --- operator kernels --- *)

let filter_kernel p rows =
  let out =
    Array.fold_left (fun acc row -> if p row then row :: acc else acc) [] rows
  in
  Array.of_list (List.rev out)

let project_kernel (gets : (Value.t array -> Value.t) array) rows =
  Array.map (fun row -> Array.map (fun g -> g row) gets) rows

let hash_join_kernel ~lixs ~rixs ~emit ~(out : Value.t array list ref) lrows rrows =
  let nk = Array.length rixs in
  let tbl = Row_tbl.create (max 16 (Array.length rrows)) in
  let kbuf = Array.make nk Value.Null in
  Array.iter
    (fun row -> if fill_key rixs row kbuf then Row_tbl.add tbl (Array.copy kbuf) row)
    rrows;
  Array.iter
    (fun lrow ->
      if fill_key lixs lrow kbuf then
        List.iter (fun rrow -> emit lrow rrow) (Row_tbl.find_all tbl kbuf))
    lrows;
  Array.of_list (List.rev !out)

let nl_join_kernel ~emit ~(out : Value.t array list ref) lrows rrows =
  Array.iter (fun lrow -> Array.iter (fun rrow -> emit lrow rrow) rrows) lrows;
  Array.of_list (List.rev !out)

let merge_join_kernel ~(lixs : int array) ~(rixs : int array) ~emit
    ~(out : Value.t array list ref) (lrows : Value.t array array)
    (rrows : Value.t array array) =
  (* inputs arrive sorted ascending on their key columns; same run
     logic and emit order as the interpreter *)
  let nk = Array.length lixs in
  let lnull row =
    let rec go i = i < nk && (Value.is_null (key_val row lixs.(i)) || go (i + 1)) in
    go 0
  in
  let cmp_lr lrow rrow =
    let rec go i =
      if i = nk then 0
      else
        let c = Value.compare (key_val lrow lixs.(i)) (key_val rrow rixs.(i)) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let cmp_ll row row' =
    let rec go i =
      if i = nk then 0
      else
        let c = Value.compare (key_val row lixs.(i)) (key_val row' lixs.(i)) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let nl = Array.length lrows and nr = Array.length rrows in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    let lrow = lrows.(!i) in
    if lnull lrow then incr i
    else begin
      let c = cmp_lr lrow rrows.(!j) in
      if c < 0 then incr i
      else if c > 0 then incr j
      else begin
        (* find the run of equal right keys *)
        let j2 = ref !j in
        while !j2 < nr && cmp_lr lrow rrows.(!j2) = 0 do
          incr j2
        done;
        (* emit pairs for every left row sharing this key *)
        let i2 = ref !i in
        while !i2 < nl && cmp_ll lrows.(!i2) lrow = 0 do
          for jj = !j to !j2 - 1 do
            emit lrows.(!i2) rrows.(jj)
          done;
          incr i2
        done;
        i := !i2;
        j := !j2
      end
    end
  done;
  Array.of_list (List.rev !out)

let hash_agg_kernel ~(kixs : int array) ~(agg_fns : Expr.agg_fn array)
    ~(agg_gets : (Value.t array -> Value.t) array) rows =
  let nk = Array.length kixs and na = Array.length agg_fns in
  let groups : (Value.t array * acc array) Row_tbl.t = Row_tbl.create 64 in
  let order = ref [] in
  let kbuf = Array.make nk Value.Null in
  Array.iter
    (fun row ->
      (* NULLs are legal in group keys (unlike join keys) *)
      for i = 0 to nk - 1 do
        kbuf.(i) <- key_val row kixs.(i)
      done;
      let accs =
        match Row_tbl.find_opt groups kbuf with
        | Some (_, accs) -> accs
        | None ->
          let k = Array.copy kbuf in
          let accs = Array.init na (fun _ -> fresh_acc ()) in
          Row_tbl.add groups k (k, accs);
          order := k :: !order;
          accs
      in
      for i = 0 to na - 1 do
        feed accs.(i) (agg_gets.(i) row)
      done)
    rows;
  (* a global aggregate over an empty input still yields one row *)
  if nk = 0 && Row_tbl.length groups = 0 then begin
    let accs = Array.init na (fun _ -> fresh_acc ()) in
    Row_tbl.add groups [||] ([||], accs);
    order := [||] :: !order
  end;
  List.rev_map
    (fun k ->
      let _, accs = Row_tbl.find groups k in
      let rowout = Array.make (nk + na) Value.Null in
      Array.blit k 0 rowout 0 nk;
      for i = 0 to na - 1 do
        rowout.(nk + i) <- finish agg_fns.(i) accs.(i)
      done;
      rowout)
    !order
  |> Array.of_list

let sort_kernel ~(kix : (int * bool) list) rows =
  let cmp r1 r2 =
    let rec go = function
      | [] -> 0
      | (ix, desc) :: rest ->
        let c = Value.compare (key_val r1 ix) (key_val r2 ix) in
        if c <> 0 then if desc then -c else c else go rest
    in
    go kix
  in
  let rows = Array.copy rows in
  Array.stable_sort cmp rows;
  rows

(* --- plan compilation --- *)

let compile ~(db : Storage.Database.t) ~(table_cols : string -> string list)
    (plan : Pplan.t) : t =
  (* [rpath] is the node's root-to-node child-index path, reversed —
     baked into each node's closure at compile time. *)
  let rec comp (rpath : int list) (p : Pplan.t) : cnode =
    let label = Pplan.node_label p.Pplan.node and loc = p.Pplan.loc in
    (* Post-order bookkeeping shared by every non-SHIP wrapper below:
       record the node, charge its output against the budget, release
       the children's charges ([release]) now that they are consumed. *)
    let book ctx ~release rows fin =
      let card = Array.length rows in
      let bytes = rows_bytes rows in
      record_node ~stats:ctx.stats ~profile:ctx.profile ~rpath ~label ~loc ~ship:None
        ~card ~bytes;
      mem_charge ctx.mem bytes;
      List.iter (mem_release ctx.mem) release;
      (rows, bytes, fin +. (float_of_int card *. row_cost_ms))
    in
    (* Children execute right-first for binary operators: SHIP indices
       (and with them the deterministic per-attempt drop fates) follow
       execution order, and the historical order was OCaml's
       right-to-left tuple evaluation. Matches [Interp]. *)
    let comp2 l r =
      let cl = comp (0 :: rpath) l and cr = comp (1 :: rpath) r in
      ( cl,
        cr,
        fun ctx ->
          let rrows, rb, rfin = cr.exec ctx in
          let lrows, lb, lfin = cl.exec ctx in
          (lrows, lb, rrows, rb, Float.max lfin rfin) )
    in
    match p.Pplan.node, p.Pplan.children with
    | Pplan.Table_scan { table; alias; partition }, [] ->
      let r = Storage.Database.find_exn db ~table ~partition () in
      let cschema =
        (* re-qualify the stored schema with the query alias *)
        List.map2
          (fun (_ : Attr.t) c -> Attr.make ~rel:alias ~name:c)
          (Storage.Relation.schema r) (table_cols table)
      in
      {
        cschema;
        exec =
          (fun ctx ->
            check_replica ~faults:ctx.faults ~table ~partition ~site:loc;
            (* fetched per execution, not at compile time: paged
               relations re-read their segments on every access *)
            book ctx ~release:[] (Storage.Relation.rows r) 0.);
      }
    | Pplan.Filter pred, [ c ] ->
      let cc = comp (0 :: rpath) c in
      let keep = compile_pred (Storage.Relation.resolver cc.cschema) pred in
      {
        cschema = cc.cschema;
        exec =
          (fun ctx ->
            let rows, cb, fin = cc.exec ctx in
            book ctx ~release:[ cb ] (filter_kernel keep rows) fin);
      }
    | Pplan.Project items, [ c ] ->
      let cc = comp (0 :: rpath) c in
      let rv = Storage.Relation.resolver cc.cschema in
      let gets =
        Array.of_list (List.map (fun (e, _) -> compile_scalar rv e) items)
      in
      {
        cschema = List.map snd items;
        exec =
          (fun ctx ->
            let rows, cb, fin = cc.exec ctx in
            book ctx ~release:[ cb ] (project_kernel gets rows) fin);
      }
    | Pplan.Hash_join { keys; residual }, [ l; r ] ->
      let cl, cr, exec2 = comp2 l r in
      let lrv = Storage.Relation.resolver cl.cschema
      and rrv = Storage.Relation.resolver cr.cschema in
      let lixs = key_ixs lrv (List.map fst keys)
      and rixs = key_ixs rrv (List.map snd keys) in
      let cschema = cl.cschema @ cr.cschema in
      let lw = List.length cl.cschema and rw = List.length cr.cschema in
      let emitter = joined_emitter ~lw ~rw ~residual ~cschema in
      {
        cschema;
        exec =
          (fun ctx ->
            let lrows, lb, rrows, rb, fin = exec2 ctx in
            let out = ref [] in
            let rows =
              (* [rb] is the build side's serialized size — the same
                 number [Interp] reads off the child relation, so the
                 spill decision is engine-independent *)
              if should_spill ctx.mem rb then begin
                Spill.join ctx.spill ~build_bytes:rb ~lkey:(boxed_key lixs)
                  ~rkey:(boxed_key rixs) ~emit:(emitter out) lrows rrows;
                Array.of_list (List.rev !out)
              end
              else begin
                mem_charge ctx.mem rb;
                let rows =
                  hash_join_kernel ~lixs ~rixs ~emit:(emitter out) ~out lrows rrows
                in
                mem_release ctx.mem rb;
                rows
              end
            in
            book ctx ~release:[ lb; rb ] rows fin);
      }
    | Pplan.Nl_join pred, [ l; r ] ->
      let cl, cr, exec2 = comp2 l r in
      let cschema = cl.cschema @ cr.cschema in
      let lw = List.length cl.cschema and rw = List.length cr.cschema in
      let emitter = joined_emitter ~lw ~rw ~residual:pred ~cschema in
      {
        cschema;
        exec =
          (fun ctx ->
            let lrows, lb, rrows, rb, fin = exec2 ctx in
            let out = ref [] in
            book ctx ~release:[ lb; rb ]
              (nl_join_kernel ~emit:(emitter out) ~out lrows rrows)
              fin);
      }
    | Pplan.Hash_agg { keys; aggs }, [ c ] ->
      let cc = comp (0 :: rpath) c in
      let rv = Storage.Relation.resolver cc.cschema in
      let kixs = key_ixs rv keys in
      let agg_fns = Array.of_list (List.map (fun (a : Expr.agg) -> a.fn) aggs) in
      let agg_gets =
        Array.of_list
          (List.map (fun (a : Expr.agg) -> compile_scalar rv a.arg) aggs)
      in
      let cschema =
        keys @ List.map (fun (a : Expr.agg) -> Attr.unqualified a.alias) aggs
      in
      let nk = Array.length kixs and na = Array.length agg_fns in
      let finish_group k accs =
        let rowout = Array.make (nk + na) Value.Null in
        Array.blit k 0 rowout 0 nk;
        for i = 0 to na - 1 do
          rowout.(nk + i) <- finish agg_fns.(i) accs.(i)
        done;
        rowout
      in
      {
        cschema;
        exec =
          (fun ctx ->
            let rows, cb, fin = cc.exec ctx in
            let outrows =
              (* a global aggregate ([nk = 0]) is one group of scalar
                 accumulators — nothing worth spilling *)
              if nk > 0 && should_spill ctx.mem cb then begin
                let out = ref [] in
                Spill.agg ctx.spill ~input_bytes:cb
                  ~key:(fun row -> Array.init nk (fun i -> key_val row kixs.(i)))
                  ~na
                  ~feed_row:(fun accs row ->
                    for i = 0 to na - 1 do
                      feed accs.(i) (agg_gets.(i) row)
                    done)
                  ~emit_group:(fun k accs -> out := finish_group k accs :: !out)
                  rows;
                Array.of_list (List.rev !out)
              end
              else begin
                mem_charge ctx.mem cb;
                let r = hash_agg_kernel ~kixs ~agg_fns ~agg_gets rows in
                mem_release ctx.mem cb;
                r
              end
            in
            book ctx ~release:[ cb ] outrows fin);
      }
    | Pplan.Sort keys, [ c ] ->
      let cc = comp (0 :: rpath) c in
      let rv = Storage.Relation.resolver cc.cschema in
      let kix =
        List.map
          (fun (a, desc) ->
            ((match Storage.Relation.resolve rv a with Some i -> i | None -> -1), desc))
          keys
      in
      {
        cschema = cc.cschema;
        exec =
          (fun ctx ->
            let rows, cb, fin = cc.exec ctx in
            book ctx ~release:[ cb ] (sort_kernel ~kix rows) fin);
      }
    | Pplan.Merge_join { keys; residual }, [ l; r ] ->
      let cl, cr, exec2 = comp2 l r in
      let lrv = Storage.Relation.resolver cl.cschema
      and rrv = Storage.Relation.resolver cr.cschema in
      let lixs = key_ixs lrv (List.map fst keys)
      and rixs = key_ixs rrv (List.map snd keys) in
      let cschema = cl.cschema @ cr.cschema in
      let lw = List.length cl.cschema and rw = List.length cr.cschema in
      let emitter = joined_emitter ~lw ~rw ~residual ~cschema in
      {
        cschema;
        exec =
          (fun ctx ->
            let lrows, lb, rrows, rb, fin = exec2 ctx in
            let out = ref [] in
            book ctx ~release:[ lb; rb ]
              (merge_join_kernel ~lixs ~rixs ~emit:(emitter out) ~out lrows rrows)
              fin);
      }
    | Pplan.Union_all, (_ :: _ as children) ->
      let ccs = List.mapi (fun i c -> comp (i :: rpath) c) children in
      {
        cschema = (List.hd ccs).cschema;
        exec =
          (fun ctx ->
            (* children left-to-right, explicitly (ship-order
               determinism) — matches [Interp] *)
            let rec run_children fin acc bs = function
              | [] -> (List.rev acc, List.rev bs, fin)
              | (c : cnode) :: rest ->
                let rows, b, f = c.exec ctx in
                run_children (Float.max fin f) (rows :: acc) (b :: bs) rest
            in
            let parts, bs, fin = run_children 0. [] [] ccs in
            book ctx ~release:bs (Array.concat parts) fin);
      }
    | Pplan.Ship { from_loc; to_loc }, [ c ] ->
      let cc = comp (0 :: rpath) c in
      {
        cschema = cc.cschema;
        exec =
          (fun ctx ->
            let rows, cb, fin = cc.exec ctx in
            let bytes = rows_bytes rows in
            let record =
              do_ship ~faults:ctx.faults ~retry:ctx.retry ~network:ctx.network
                ~stats:ctx.stats ~from_loc ~to_loc ~bytes ~rows:(Array.length rows)
            in
            record_node ~stats:ctx.stats ~profile:ctx.profile ~rpath ~label ~loc
              ~ship:(Some record) ~card:(Array.length rows) ~bytes;
            (* memory-wise a SHIP is an alias of its child: no charge,
               no release — the child's bytes stay live for the parent *)
            (rows, cb, fin +. record.cost_ms));
      }
    | node, children ->
      fail "malformed plan: %s with %d children" (Pplan.node_label node)
        (List.length children)
  in
  comp [] plan

let execute ?(faults = Catalog.Network.Fault.empty) ?(retry = default_retry)
    ?budget ~(network : Catalog.Network.t) (t : t) : result =
  let stats = fresh_stats () in
  let profile = ref [] in
  let mem =
    mem_create
      ~budget:(match budget with Some b -> b | None -> budget_from_env ())
  in
  let spill = Spill.create mem in
  let ctx = { stats; profile; faults; retry; network; mem; spill } in
  Fun.protect
    ~finally:(fun () ->
      Spill.cleanup spill;
      mem_finish mem)
    (fun () ->
      let rows, _bytes, makespan_ms =
        Obs.Trace.span "exec.run" (fun () -> t.exec ctx)
      in
      let relation = Storage.Relation.make ~schema:t.cschema ~rows in
      { relation; stats; profile = List.rev !profile; makespan_ms })

let run ?faults ?retry ?budget ~network ~db ~table_cols plan =
  execute ?faults ?retry ?budget ~network (compile ~db ~table_cols plan)
