(** Recursive-descent parser for the SQL subset
    (Select-Project-Join-GroupBy queries) and for policy expressions.

    Supported query grammar:
    {v
    SELECT item [, item ...]
    FROM table [AS alias] [, table [AS alias] ...]
    [WHERE predicate]
    [GROUP BY column [, column ...]]
    v}
    where items are scalar expressions or [fn(expr)] aggregates, and
    predicates support AND/OR/NOT, comparisons, BETWEEN, IN, LIKE and
    IS [NOT] NULL. ISO-dated string literals become date values. *)

exception Error of string

val query : string -> Ast.query
(** Raises {!Error} on malformed input (including lexer errors). *)

val policy : string -> Ast.policy_stmt
(** Parse a [ship ... from ... to ...] policy expression. *)

val deny : string -> Ast.policy_stmt
(** Parse a [deny ... from ... to ...] negative statement (same grammar
    as [ship]). *)
