(** The four policy-expression sets of the evaluation (§7.1):
    templates T (entire tables), C (column subsets), CR (columns + row
    conditions) and CR+A (CR plus aggregate expressions), crafted so
    that every workload query admits a compliant QEP while the purely
    cost-based optimizer is drawn into the non-compliant placements of
    Fig. 5(a). Table 3's snippet appears verbatim where applicable. *)

val set_t : string list
(** 8 expressions, one per table. *)

val set_c : string list
(** 10 expressions. *)

val set_cr : string list
(** 10 expressions. *)

val set_cra : string list
(** 11 expressions. *)

type set_name = T | C | CR | CRA

val set_name_to_string : set_name -> string
val texts : set_name -> string list
val all_sets : set_name list

val catalog_of : Catalog.t -> set_name -> Policy.Pcatalog.t

val unrestricted : string list
(** [ship * from t to *] for every table — the minimal-overhead baseline
    of Fig. 6(b). *)

val table3 : string list
(** The paper's Table 3 snippet, verbatim. *)
