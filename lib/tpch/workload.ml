(* Workload generators (§7.1):

   - the ad-hoc query generator: random PK–FK join queries spanning two
     or more locations, with random output columns, predicates and
     (for ~30% of queries) aggregations;
   - the policy-expression generator: instantiates the T / C / CR / CR+A
     templates against the schema and a "property file" describing which
     columns may be aggregated, serve as grouping keys, or carry range
     predicates.

   Both are fully deterministic given a seed. *)

module Prng = Storage.Prng

(* --- property file analogue --- *)

(* columns visible to the workload (never the free-text columns) *)
let visible_cols = function
  | "region" -> [ "regionkey"; "name" ]
  | "nation" -> [ "nationkey"; "name"; "regionkey" ]
  | "supplier" -> [ "suppkey"; "name"; "acctbal"; "nationkey" ]
  | "part" -> [ "partkey"; "name"; "mfgr"; "brand"; "type"; "size"; "retailprice" ]
  | "partsupp" -> [ "partkey"; "suppkey"; "availqty"; "supplycost" ]
  | "customer" -> [ "custkey"; "name"; "acctbal"; "mktsegment"; "nationkey" ]
  | "orders" -> [ "orderkey"; "custkey"; "orderstatus"; "totalprice"; "orderdate";
                  "orderpriority"; "shippriority" ]
  | "lineitem" -> [ "orderkey"; "partkey"; "suppkey"; "linenumber"; "quantity";
                    "extendedprice"; "discount"; "shipdate"; "returnflag"; "shipmode" ]
  | t -> invalid_arg ("visible_cols: " ^ t)

let aggregatable = function
  | "supplier" -> [ "acctbal" ]
  | "part" -> [ "retailprice"; "size" ]
  | "partsupp" -> [ "availqty"; "supplycost" ]
  | "customer" -> [ "acctbal" ]
  | "orders" -> [ "totalprice" ]
  | "lineitem" -> [ "quantity"; "extendedprice"; "discount" ]
  | _ -> []

let groupable = function
  | "region" -> [ "name" ]
  | "nation" -> [ "name"; "regionkey" ]
  | "supplier" -> [ "nationkey"; "suppkey" ]
  | "part" -> [ "mfgr"; "brand"; "size" ]
  | "partsupp" -> [ "partkey"; "suppkey" ]
  | "customer" -> [ "mktsegment"; "nationkey"; "custkey" ]
  | "orders" -> [ "orderpriority"; "orderstatus"; "custkey"; "orderkey" ]
  | "lineitem" -> [ "returnflag"; "shipmode"; "suppkey"; "orderkey" ]
  | _ -> []

(* (column, predicate-text generator) pools per table *)
let predicate_pool g table =
  let num col lo hi =
    let v = Prng.range g lo hi in
    let op = Prng.pick g [ ">"; ">="; "<"; "<=" ] in
    Printf.sprintf "%s %s %d" col op v
  in
  let streq col values = Printf.sprintf "%s = '%s'" col (Prng.pick g values) in
  match table with
  | "customer" ->
    [ streq "mktsegment" Datagen.segments; num "acctbal" (-500) 9000 ]
  | "orders" ->
    [
      Printf.sprintf "orderdate >= '19%02d-01-01'" (Prng.range g 92 97);
      num "totalprice" 1000 300000;
      streq "orderpriority" Datagen.priorities;
    ]
  | "lineitem" ->
    [
      num "quantity" 1 45;
      Printf.sprintf "shipdate >= '19%02d-01-01'" (Prng.range g 92 97);
      streq "returnflag" [ "R"; "A"; "N" ];
    ]
  | "part" ->
    [
      num "size" 1 45;
      Printf.sprintf "type LIKE '%%%s'" (Prng.pick g Datagen.type_syl3);
      streq "mfgr"
        (List.map (Printf.sprintf "Manufacturer#%d") [ 1; 2; 3; 4; 5 ]);
    ]
  | "supplier" -> [ num "acctbal" (-500) 9000 ]
  | "partsupp" -> [ num "supplycost" 10 900; num "availqty" 100 9000 ]
  | "nation" -> [ streq "name" (List.map fst Datagen.nations) ]
  | "region" -> [ streq "name" Datagen.regions ]
  | _ -> []

(* PK-FK join edges: (table1, cols1, table2, cols2) *)
let fk_edges =
  [
    ("customer", [ "nationkey" ], "nation", [ "nationkey" ]);
    ("supplier", [ "nationkey" ], "nation", [ "nationkey" ]);
    ("nation", [ "regionkey" ], "region", [ "regionkey" ]);
    ("orders", [ "custkey" ], "customer", [ "custkey" ]);
    ("lineitem", [ "orderkey" ], "orders", [ "orderkey" ]);
    ("lineitem", [ "partkey" ], "part", [ "partkey" ]);
    ("lineitem", [ "suppkey" ], "supplier", [ "suppkey" ]);
    ("lineitem", [ "partkey"; "suppkey" ], "partsupp", [ "partkey"; "suppkey" ]);
    ("partsupp", [ "partkey" ], "part", [ "partkey" ]);
    ("partsupp", [ "suppkey" ], "supplier", [ "suppkey" ]);
  ]

let location_of table =
  let _, _, l = List.find (fun (t, _, _) -> String.equal t table) Schema.distribution in
  l

(* --- ad-hoc query generation --- *)

(* Grow a connected set of distinct tables along FK edges. *)
let rec grow g tables target =
  if List.length tables >= target then tables
  else
    let candidates =
      List.filter_map
        (fun (t1, _, t2, _) ->
          if List.mem t1 tables && not (List.mem t2 tables) then Some t2
          else if List.mem t2 tables && not (List.mem t1 tables) then Some t1
          else None)
        fk_edges
    in
    match candidates with
    | [] -> tables
    | _ -> grow g (Prng.pick g candidates :: tables) target

let spans_locations tables =
  List.sort_uniq String.compare (List.map location_of tables) |> List.length >= 2

let join_conjuncts tables =
  List.filter_map
    (fun (t1, c1, t2, c2) ->
      if List.mem t1 tables && List.mem t2 tables then
        Some
          (String.concat " AND "
             (List.map2 (fun a b -> Printf.sprintf "%s.%s = %s.%s" t1 a t2 b) c1 c2))
      else None)
    fk_edges

(* One random ad-hoc query as SQL text. *)
let rec gen_query (g : Prng.t) : string =
  let n_tables =
    let d = Prng.int g 100 in
    if d < 55 then 2 else if d < 90 then 3 else 4
  in
  let start = Prng.pick g [ "customer"; "orders"; "lineitem"; "part"; "supplier"; "partsupp" ] in
  let tables = grow g [ start ] n_tables in
  if List.length tables < 2 || not (spans_locations tables) then gen_query g
  else begin
    let joins = join_conjuncts tables in
    let is_agg = Prng.int g 100 < 30 in
    let preds =
      let n = Prng.range g 3 4 in
      let all = List.concat_map (fun t -> List.map (fun p -> (t, p)) (predicate_pool g t)) tables in
      Prng.pick_k g (min n (List.length all)) all
      |> List.map (fun (t, p) ->
             (* qualify the first identifier of the predicate text *)
             let i = String.index p ' ' in
             Printf.sprintf "%s.%s%s" t (String.sub p 0 i) (String.sub p i (String.length p - i)))
    in
    let where = String.concat " AND " (joins @ preds) in
    let select, group =
      if is_agg then begin
        let agg_candidates =
          List.concat_map (fun t -> List.map (fun c -> (t, c)) (aggregatable t)) tables
        in
        let grp_candidates =
          List.concat_map (fun t -> List.map (fun c -> (t, c)) (groupable t)) tables
        in
        if agg_candidates = [] || grp_candidates = [] then
          (* fall back to a plain projection *)
          let outs =
            Prng.pick_k g
              (min 4 (List.length tables * 2))
              (List.concat_map (fun t -> List.map (fun c -> (t, c)) (visible_cols t)) tables)
          in
          (String.concat ", " (List.map (fun (t, c) -> t ^ "." ^ c) outs), "")
        else begin
          let keys = Prng.pick_k g (min (Prng.range g 1 2) (List.length grp_candidates)) grp_candidates in
          let aggs = Prng.pick_k g (min (Prng.range g 1 2) (List.length agg_candidates)) agg_candidates in
          let fns = [ "sum"; "min"; "max"; "avg"; "count" ] in
          let key_txt = List.map (fun (t, c) -> t ^ "." ^ c) keys in
          let agg_txt =
            List.mapi
              (fun i (t, c) ->
                Printf.sprintf "%s(%s.%s) AS agg_%d" (Prng.pick g fns) t c i)
              aggs
          in
          ( String.concat ", " (key_txt @ agg_txt),
            " GROUP BY " ^ String.concat ", " key_txt )
        end
      end
      else
        let all_cols =
          List.concat_map (fun t -> List.map (fun c -> (t, c)) (visible_cols t)) tables
        in
        let outs = Prng.pick_k g (min 4 (List.length all_cols)) all_cols in
        (String.concat ", " (List.map (fun (t, c) -> t ^ "." ^ c) outs), "")
    in
    Printf.sprintf "SELECT %s FROM %s WHERE %s%s" select (String.concat ", " tables)
      where group
  end

let gen_queries ?seed ~n () : string list =
  let g = Prng.create ~seed:(Storage.Seed.resolve ?cli:seed ()) in
  List.init n (fun _ -> gen_query g)

(* --- policy-expression generation --- *)

(* A backbone expression per table guarantees that every query has a
   compliant plan (all workload-visible data may reach the hub L1); the
   remaining expressions add template-specific variety, exactly like the
   paper's generator instantiating templates against the schema and
   property file. [locs_per_expr] overrides the number of `to`
   locations (Fig. 8). *)
let gen_expressions ?seed ~(template : Policies.set_name) ~n
    ?(locations = [ "L1"; "L2"; "L3"; "L4"; "L5" ]) ?locs_per_expr () : string list =
  let g = Prng.create ~seed:(Storage.Seed.resolve ?cli:seed ()) in
  let tables = List.map (fun (t, db, _) -> (t, db)) Schema.distribution in
  let pick_locs () =
    match locs_per_expr with
    | Some k -> Prng.pick_k g (min k (List.length locations)) locations
    | None ->
      let k = Prng.range g 1 (min 4 (List.length locations)) in
      Prng.pick_k g k locations
  in
  let backbone =
    List.map
      (fun (t, db) ->
        match template with
        | Policies.T ->
          Printf.sprintf "ship * from %s.%s to L1, %s" db t
            (String.concat ", " (pick_locs ()))
        | Policies.C | Policies.CR | Policies.CRA ->
          Printf.sprintf "ship %s from %s.%s to L1, %s"
            (String.concat ", " (visible_cols t))
            db t
            (String.concat ", " (pick_locs ())))
      tables
  in
  let random_expr () =
    let t, db = Prng.pick g tables in
    let locs = String.concat ", " (pick_locs ()) in
    let cols () =
      let vs = visible_cols t in
      String.concat ", " (Prng.pick_k g (Prng.range g 1 (List.length vs)) vs)
    in
    let where () =
      (* roughly half the generated expressions are unconditioned *)
      if Prng.bool g then ""
      else
        match predicate_pool g t with
        | [] -> ""
        | pool -> " where " ^ Prng.pick g pool
    in
    match template with
    | Policies.T -> Printf.sprintf "ship * from %s.%s to %s" db t locs
    | Policies.C -> Printf.sprintf "ship %s from %s.%s to %s" (cols ()) db t locs
    | Policies.CR ->
      Printf.sprintf "ship %s from %s.%s to %s%s" (cols ()) db t locs (where ())
    | Policies.CRA ->
      if Prng.bool g && aggregatable t <> [] then begin
        let ship =
          Prng.pick_k g (Prng.range g 1 (List.length (aggregatable t))) (aggregatable t)
        in
        let fns = Prng.pick_k g (Prng.range g 1 3) [ "sum"; "avg"; "min"; "max"; "count" ] in
        let grp =
          match groupable t with
          | [] -> ""
          | gs ->
            " group by "
            ^ String.concat ", " (Prng.pick_k g (Prng.range g 1 (List.length gs)) gs)
        in
        Printf.sprintf "ship %s as aggregates %s from %s.%s to %s%s%s"
          (String.concat ", " ship) (String.concat ", " fns) db t locs (where ()) grp
      end
      else Printf.sprintf "ship %s from %s.%s to %s%s" (cols ()) db t locs (where ())
  in
  let extra = max 0 (n - List.length backbone) in
  backbone @ List.init extra (fun _ -> random_expr ())
