lib/optimizer/planner.ml: Catalog Checker Exec Fmt Logs Memo Normalize Plan Policy Relalg Site_selector Sqlfront
