(* End-to-end two-phase optimization (Figure 2): normalize, explore and
   annotate (phase 1), select sites (phase 2). The [Traditional] mode is
   the baseline of §7: the same cost-based optimizer without annotation
   rules, whose plan is placed by the same site selector treating every
   location as legal, and then classified by the compliance checker. *)

open Relalg

let src = Logs.Src.create "cgqp.optimizer" ~doc:"compliance-based query optimizer"

module Log = (val Logs.src_log src : Logs.LOG)

let c_planned =
  Obs.Metrics.counter ~labels:[ ("outcome", "planned") ] "cgqp_optimizer_queries_total"

let c_rejected =
  Obs.Metrics.counter ~labels:[ ("outcome", "rejected") ] "cgqp_optimizer_queries_total"

let h_optimize_ms = Obs.Metrics.histogram "cgqp_optimizer_time_ms"

(* Intern-pool gauges: Planner is linked into every executable (CLI,
   bench, tests), so registering here guarantees the pools show up in
   any metrics dump without forcing a dependency from [obs] on the
   pools themselves. *)
let () =
  let register pool stats =
    let labels = [ ("pool", pool) ] in
    Obs.Metrics.gauge ~labels "cgqp_intern_pool_size" (fun () ->
        let size, _, _ = stats () in
        float_of_int size);
    Obs.Metrics.gauge ~labels "cgqp_intern_pool_hits" (fun () ->
        let _, hits, _ = stats () in
        float_of_int hits);
    Obs.Metrics.gauge ~labels "cgqp_intern_pool_misses" (fun () ->
        let _, _, misses = stats () in
        float_of_int misses)
  in
  register "pred" Pred.intern_stats;
  register "policy_expression" Policy.Expression.intern_stats

type planned = {
  plan : Exec.Pplan.t;
  annotated : Memo.anode;  (* phase-1 plan with execution traits *)
  phase1_cost : float;  (* location-free cost-model value *)
  ship_cost : float;  (* simulated data-transfer cost, ms *)
  groups : int;  (* memo size, for the plan-space experiments *)
  eval_stats : Policy.Evaluator.stats;
  prune_stats : Memo.prune_stats;  (* branch-and-bound effectiveness *)
  violations : Checker.violation list;  (* empty = compliant *)
}

type outcome = Planned of planned | Rejected of string

let is_compliant = function
  | Planned p -> p.violations = []
  | Rejected _ -> false

let optimize ?(mode = Memo.Compliant) ?prune ?rules ?objective ?required_order
    ~(cat : Catalog.t) ~(policies : Policy.Pcatalog.t) (lplan : Plan.t) : outcome =
  let t0 = Obs.Trace.now_ms () in
  let finish outcome =
    Obs.Metrics.observe h_optimize_ms (Obs.Trace.now_ms () -. t0);
    (match outcome with
    | Planned _ -> Obs.Metrics.inc c_planned
    | Rejected _ -> Obs.Metrics.inc c_rejected);
    outcome
  in
  Obs.Trace.span "optimizer.optimize" @@ fun () ->
  finish
  @@
  let table_cols = Catalog.table_cols cat in
  let nplan =
    Obs.Trace.span "optimizer.normalize" (fun () ->
        Normalize.normalize ~table_cols lplan)
  in
  let eval_stats = Policy.Evaluator.fresh_stats () in
  let m = Memo.create ?prune ?rules ~eval_stats ~mode ~cat ~policies () in
  let gid = Obs.Trace.span "optimizer.phase1.ingest" (fun () -> Memo.ingest m nplan) in
  match
    Obs.Trace.span "optimizer.phase1.extract" (fun () ->
        Memo.extract ?required_order m gid)
  with
  | None ->
    Log.info (fun f -> f "query rejected: no compliant plan in the explored space");
    Rejected "no compliant execution plan exists in the explored space"
  | Some (anode, phase1_cost) -> (
    Log.debug (fun f ->
        f "phase 1 done: %d memo groups, best cost %.0f, eta=%d"
          (Memo.group_count m) phase1_cost eval_stats.Policy.Evaluator.eta);
    match
      Obs.Trace.span "optimizer.phase2.place" (fun () ->
          Site_selector.select ?objective ~network:(Catalog.network cat) anode)
    with
    | None -> Rejected "site selection found no feasible placement"
    | Some { plan; cost } ->
      let violations =
        Obs.Trace.span "optimizer.certify" (fun () -> Checker.certify ~cat ~policies plan)
      in
      Log.debug (fun f ->
          f "phase 2 done: ship cost %.2f ms, %d operators, %s" cost
            (Exec.Pplan.count_ops plan)
            (if violations = [] then "compliant" else "NON-COMPLIANT"));
      Planned
        { plan; annotated = anode; phase1_cost; ship_cost = cost;
          groups = Memo.group_count m; eval_stats;
          prune_stats = Memo.prune_stats m; violations })

(* Convenience: SQL in, placed plan out. *)
let optimize_sql ?mode ?prune ?rules ?objective ?required_order ~cat ~policies sql =
  let table_cols t =
    match Catalog.find_table cat t with
    | Some e -> Some (Catalog.Table_def.col_names e.Catalog.def)
    | None -> None
  in
  let lplan = Sqlfront.Binder.plan_of_sql ~table_cols sql in
  optimize ?mode ?prune ?rules ?objective ?required_order ~cat ~policies lplan

let pp_outcome ppf = function
  | Rejected reason -> Fmt.pf ppf "REJECTED: %s" reason
  | Planned p ->
    Fmt.pf ppf "%s plan (phase-1 cost %.0f, ship cost %.2f ms):@.%a"
      (if p.violations = [] then "compliant" else "NON-COMPLIANT")
      p.phase1_cost p.ship_cost
      (Exec.Pplan.pp ~indent:2)
      p.plan
