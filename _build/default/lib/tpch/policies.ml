(* The four policy-expression sets of the evaluation (§7.1): templates
   T (whole tables), C (column subsets), CR (columns + row conditions)
   and CR+A (CR plus aggregate expressions). The sets are crafted so
   that every workload query admits at least one compliant QEP — the
   property the paper requires of its generated expressions — while the
   purely cost-based optimizer is drawn into non-compliant placements
   for the queries reported in Fig. 5(a).

   Table 3's snippet (e1–e5) appears verbatim in the CR / CR+A sets
   where applicable. *)

(* T: restrictions on entire tables (8 expressions, one per table). *)
let set_t =
  [
    "ship * from db-1.customer to L4, L5";
    "ship * from db-1.orders to L4, L5";
    "ship * from db-2.supplier to L1, L3, L4, L5";
    "ship * from db-2.partsupp to L1, L3, L4";
    "ship * from db-3.part to L1, L4, L5";
    "ship * from db-4.lineitem to L1, L5";
    "ship * from db-5.nation to *";
    "ship * from db-5.region to *";
  ]

(* C: column restrictions (10 expressions). Sensitive columns (address,
   phone, comment) never leave their sites. *)
let set_c =
  [
    "ship custkey, name, acctbal, mktsegment, nationkey from db-1.customer to L4, L5";
    "ship orderkey, custkey, orderdate, totalprice, shippriority, orderstatus, \
     orderpriority from db-1.orders to L4, L5";
    "ship orderkey, partkey, suppkey, quantity, extendedprice, discount, shipdate, \
     returnflag, linenumber from db-4.lineitem to L1, L5";
    "ship suppkey, name, acctbal, nationkey from db-2.supplier to L1, L3, L4, L5";
    "ship partkey, suppkey, supplycost, availqty from db-2.partsupp to L1, L3, L4";
    "ship partkey, name, mfgr, brand, type, size, retailprice from db-3.part to L1, L4, L5";
    "ship * from db-5.nation to *";
    "ship * from db-5.region to *";
    "ship custkey, name from db-1.customer to L2, L3";
    "ship partkey, type, size from db-3.part to L1";
  ]

(* CR: columns + row conditions (10 expressions). Orders may carry the
   order date to the lineitem site only for recent orders; part data is
   additionally constrained as in Table 3's e4. *)
let set_cr =
  [
    "ship custkey, name, acctbal, mktsegment, nationkey from db-1.customer to L4, L5";
    "ship orderkey, custkey from db-1.orders to *";
    "ship orderkey, custkey, orderdate, totalprice, shippriority from db-1.orders \
     to L4, L5 where orderdate >= '1994-01-01'";
    "ship orderkey, partkey, suppkey, quantity, extendedprice, discount, shipdate, \
     returnflag, linenumber from db-4.lineitem to L1, L5";
    "ship suppkey, name, acctbal, nationkey from db-2.supplier to L1, L3, L4, L5";
    "ship partkey, suppkey, supplycost, availqty from db-2.partsupp to L1, L3, L4";
    "ship partkey, name, mfgr, brand, type, size, retailprice from db-3.part to L1, L4, L5";
    (* Table 3, e4 *)
    "ship partkey, mfgr, size, type, name from db-3.part to L4 \
     where size > 40 OR type LIKE '%COPPER%'";
    "ship * from db-5.nation to *";
    "ship * from db-5.region to *";
  ]

(* CR+A: CR plus aggregate expressions (11 expressions). Lineitem's
   pricing columns may leave the site raw only towards L5; towards L1
   they must be aggregated per (suppkey, orderkey) — Table 3's e5 — so a
   compliant plan for Q3/Q10 must push the aggregation below the SHIP
   (the paper's Fig. 5(e)). *)
let set_cra =
  [
    "ship custkey, name, acctbal, mktsegment, nationkey from db-1.customer to L4, L5";
    "ship orderkey, custkey from db-1.orders to *";
    "ship orderkey, custkey, orderdate, totalprice, shippriority from db-1.orders \
     to L4, L5 where orderdate >= '1994-01-01'";
    "ship orderkey, partkey, suppkey, quantity, shipdate, returnflag, linenumber \
     from db-4.lineitem to L1, L5";
    "ship extendedprice, discount from db-4.lineitem to L5";
    (* Table 3, e5 *)
    "ship extendedprice, discount as aggregates sum from db-4.lineitem to L1 \
     group by suppkey, orderkey";
    "ship suppkey, name, acctbal, nationkey from db-2.supplier to L1, L3, L4, L5";
    "ship partkey, suppkey, supplycost, availqty from db-2.partsupp to L1, L3, L4";
    "ship partkey, name, mfgr, brand, type, size, retailprice from db-3.part to L1, L4, L5";
    "ship * from db-5.nation to *";
    "ship * from db-5.region to *";
  ]

type set_name = T | C | CR | CRA

let set_name_to_string = function T -> "T" | C -> "C" | CR -> "CR" | CRA -> "CR+A"

let texts = function T -> set_t | C -> set_c | CR -> set_cr | CRA -> set_cra

let all_sets = [ T; C; CR; CRA ]

let catalog_of cat set = Policy.Pcatalog.of_texts cat (texts set)

(* Policies that impose no restriction at all: the minimal-overhead
   baseline of Fig. 6(b). *)
let unrestricted =
  List.map
    (fun (t, db, _) -> Printf.sprintf "ship * from %s.%s to *" db t)
    Schema.distribution

(* Table 3 verbatim (for display in benches / docs). *)
let table3 =
  [
    "ship * from db-5.nation to *";
    "ship * from db-5.region to *";
    "ship partkey, suppkey, supplycost from db-2.partsupp to L3, L4";
    "ship partkey, mfgr, size, type, name from db-3.part to L4 \
     where size > 40 OR type LIKE '%COPPER%'";
    "ship extendedprice, discount as aggregates sum from db-4.lineitem to L1 \
     group by suppkey, orderkey";
  ]
