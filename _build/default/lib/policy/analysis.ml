(* Static analysis of a policy catalog, for the data officer's benefit:

   - per-table coverage: for each column, where may it go raw
     (unconditionally or under some row condition) and where only in
     aggregate form;
   - redundancy: expressions subsumed by another expression that grants
     at least as much under conditions at least as weak;
   - dead expressions: grants whose target locations add nothing beyond
     the table's home site.

   None of this affects evaluation — it is tooling over the catalog. *)

open Relalg
module Locset = Catalog.Location.Set

type column_coverage = {
  column : string;
  raw_unconditional : Locset.t;  (* basic grants with no row condition *)
  raw_conditional : Locset.t;  (* additional sites reachable under conditions *)
  aggregate_only : (Expr.agg_fn * Locset.t) list;  (* per sanctioned function *)
}

let coverage (cat : Catalog.t) (policies : Pcatalog.t) (table : string) :
    column_coverage list =
  let def = Catalog.table_def cat table in
  let exprs = Pcatalog.for_table policies table in
  List.map
    (fun (c : Catalog.Table_def.column) ->
      let col = c.cname in
      let raw_unconditional, raw_conditional =
        List.fold_left
          (fun (unc, cond) (e : Expression.t) ->
            if Expression.is_basic e && List.mem col e.Expression.ship_cols then
              if e.Expression.pred = Pred.True then
                (Locset.union unc e.Expression.to_locs, cond)
              else (unc, Locset.union cond e.Expression.to_locs)
            else (unc, cond))
          (Locset.empty, Locset.empty) exprs
      in
      let aggregate_only =
        List.fold_left
          (fun acc (e : Expression.t) ->
            if Expression.is_aggregate e && List.mem col e.Expression.ship_cols then
              List.fold_left
                (fun acc fn ->
                  let prev =
                    match List.assoc_opt fn acc with
                    | Some l -> l
                    | None -> Locset.empty
                  in
                  (fn, Locset.union prev e.Expression.to_locs)
                  :: List.remove_assoc fn acc)
                acc e.Expression.agg_fns
            else acc)
          [] exprs
      in
      { column = col;
        raw_unconditional;
        raw_conditional = Locset.diff raw_conditional raw_unconditional;
        aggregate_only })
    def.Catalog.Table_def.columns

(* Does [by] grant at least everything [e] grants? Uses the sound
   implication test, so the answer errs towards "not subsumed". *)
let subsumes ~(by : Expression.t) (e : Expression.t) : bool =
  by != e
  && String.equal by.Expression.table e.Expression.table
  && List.for_all
       (fun c -> List.mem c by.Expression.ship_cols)
       e.Expression.ship_cols
  && Locset.subset e.Expression.to_locs by.Expression.to_locs
  && Implication.implies e.Expression.pred by.Expression.pred
  &&
  match Expression.is_basic e, Expression.is_basic by with
  | _, true ->
    (* a raw grant dominates any grant of the same cells *)
    true
  | true, false ->
    (* an aggregate-only grant never covers a raw grant *)
    false
  | false, false ->
    (* aggregate grants: at least the same functions and at least as
       fine-grained grouping *)
    List.for_all (fun f -> List.mem f by.Expression.agg_fns) e.Expression.agg_fns
    && List.for_all
         (fun g -> List.mem g by.Expression.group_by)
         e.Expression.group_by

(* Expressions made redundant by some other expression of the catalog,
   paired with a witness. *)
let redundant (policies : Pcatalog.t) : (Expression.t * Expression.t) list =
  let all = Pcatalog.all policies in
  List.filter_map
    (fun e ->
      match List.find_opt (fun by -> subsumes ~by e) all with
      | Some by -> Some (e, by)
      | None -> None)
    all

(* Grants that only name the table's own home site (no-ops under the
   home-location rule). *)
let dead (cat : Catalog.t) (policies : Pcatalog.t) : Expression.t list =
  List.filter
    (fun (e : Expression.t) ->
      match Catalog.placements cat e.Expression.table with
      | [ p ] -> Locset.subset e.Expression.to_locs (Locset.singleton p.Catalog.location)
      | _ -> false)
    (Pcatalog.all policies)

let pp_column_coverage ppf (c : column_coverage) =
  Fmt.pf ppf "%-14s raw: %a%s%s" c.column Locset.pp c.raw_unconditional
    (if Locset.is_empty c.raw_conditional then ""
     else Fmt.str "  +cond: %a" Locset.pp c.raw_conditional)
    (match c.aggregate_only with
    | [] -> ""
    | fns ->
      Fmt.str "  agg: %s"
        (String.concat ", "
           (List.map
              (fun (fn, locs) ->
                Fmt.str "%s->%a" (Expr.agg_fn_to_string fn) Locset.pp locs)
              fns)))

let pp_report ppf (cat, policies) =
  List.iter
    (fun (entry : Catalog.entry) ->
      let t = entry.Catalog.def.Catalog.Table_def.name in
      Fmt.pf ppf "@.%s (home %s):@." t (Catalog.home_location cat t);
      List.iter (fun c -> Fmt.pf ppf "  %a@." pp_column_coverage c)
        (coverage cat policies t))
    (Catalog.all_tables cat);
  (match redundant policies with
  | [] -> Fmt.pf ppf "@.no redundant expressions@."
  | rs ->
    Fmt.pf ppf "@.redundant expressions:@.";
    List.iter
      (fun ((e : Expression.t), (by : Expression.t)) ->
        Fmt.pf ppf "  %s@.    subsumed by: %s@." e.Expression.text by.Expression.text)
      rs);
  match dead cat policies with
  | [] -> ()
  | ds ->
    Fmt.pf ppf "@.no-op expressions (grant only the home site):@.";
    List.iter (fun (e : Expression.t) -> Fmt.pf ppf "  %s@." e.Expression.text) ds
