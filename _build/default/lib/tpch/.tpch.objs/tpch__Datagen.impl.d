lib/tpch/datagen.ml: Array Attr Catalog Float List Option Printf Relalg Schema Seq Storage Value
