examples/quickstart.ml: Array Attr Catalog Cgqp Exec Fmt List Optimizer Printf Relalg Storage Value
