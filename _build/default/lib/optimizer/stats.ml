(* Cardinality and width estimation for logical plans, driven by catalog
   statistics. Standard System-R style selectivities; the absolute
   numbers only matter relative to one another, exactly as in the
   paper's cost model (§6, "cost functions are based on input
   cardinalities"). *)

open Relalg

type col_info = { distinct : float; width : float; lo : float option; hi : float option }

type node_est = {
  rows : float;
  cols : (Attr.t * col_info) list;
}

let default_col = { distinct = 1000.; width = 8.; lo = None; hi = None }

let width_of est =
  List.fold_left (fun acc (_, c) -> acc +. c.width) 0. est.cols

let find_col est a =
  match List.find_opt (fun (b, _) -> Attr.equal a b) est.cols with
  | Some (_, c) -> c
  | None -> (
    (* fall back to a unique bare-name match (post-projection refs) *)
    match
      List.filter (fun ((b : Attr.t), _) -> String.equal a.Attr.name b.Attr.name) est.cols
    with
    | [ (_, c) ] -> c
    | _ -> default_col)

let numeric_of_value v = Value.to_float v

(* Selectivity of one atom. *)
let rec selectivity est (p : Pred.t) : float =
  match p with
  | Pred.True -> 1.0
  | Pred.False -> 0.0
  | Pred.And (l, r) -> selectivity est l *. selectivity est r
  | Pred.Or (l, r) ->
    let a = selectivity est l and b = selectivity est r in
    Float.min 1.0 (a +. b -. (a *. b))
  | Pred.Not q -> Float.max 0.0 (1.0 -. selectivity est q)
  | Pred.Atom atom -> atom_selectivity est atom

and atom_selectivity est = function
  | Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b) ->
    1.0 /. Float.max (find_col est a).distinct (find_col est b).distinct
  | Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Const _)
  | Pred.Cmp (Pred.Eq, Expr.Const _, Expr.Col a) ->
    1.0 /. Float.max 1.0 (find_col est a).distinct
  | Pred.Cmp (Pred.Ne, _, _) -> 0.9
  | Pred.Cmp ((Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge) as c, Expr.Col a, Expr.Const v)
  | Pred.Cmp ((Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge) as c, Expr.Const v, Expr.Col a) -> (
    (* interpolate within [lo, hi] when known *)
    let info = find_col est a in
    match info.lo, info.hi, numeric_of_value v with
    | Some lo, Some hi, Some x when hi > lo ->
      let frac_below = Float.max 0.0 (Float.min 1.0 ((x -. lo) /. (hi -. lo))) in
      let s =
        match c with
        | Pred.Lt | Pred.Le -> frac_below
        | Pred.Gt | Pred.Ge -> 1.0 -. frac_below
        | Pred.Eq | Pred.Ne -> 0.3
      in
      Float.max 0.005 s
    | _ -> 0.33)
  | Pred.Cmp ((Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge), _, _) -> 0.33
  | Pred.Cmp (Pred.Eq, _, _) -> 0.05
  | Pred.Like (_, _) -> 0.15
  | Pred.In (Expr.Col a, vs) ->
    Float.min 1.0 (float_of_int (List.length vs) /. Float.max 1.0 (find_col est a).distinct)
  | Pred.In (_, vs) -> Float.min 1.0 (0.05 *. float_of_int (List.length vs))
  | Pred.Is_null _ -> 0.02
  | Pred.Not_null _ -> 0.98

(* Column info of a scalar expression. *)
let scalar_info est = function
  | Expr.Col a -> find_col est a
  | Expr.Const v ->
    { distinct = 1.; width = float_of_int (Value.byte_width v); lo = None; hi = None }
  | Expr.Binop (_, _, _) as e ->
    let cols = Attr.Set.elements (Expr.cols e) in
    let distinct =
      List.fold_left (fun acc a -> Float.max acc (find_col est a).distinct) 1. cols
    in
    { distinct; width = 8.; lo = None; hi = None }

let clamp_distinct rows c = { c with distinct = Float.min c.distinct rows }

let rec estimate (cat : Catalog.t) (plan : Plan.t) : node_est =
  match plan with
  | Plan.Scan { table; alias } -> scan_est cat ~table ~alias ~fraction:1.0
  | Plan.Select (p, i) ->
    let e = estimate cat i in
    let rows = Float.max 1.0 (e.rows *. selectivity e p) in
    { rows; cols = List.map (fun (a, c) -> (a, clamp_distinct rows c)) e.cols }
  | Plan.Project (items, i) ->
    let e = estimate cat i in
    { rows = e.rows;
      cols = List.map (fun (ex, n) -> (n, clamp_distinct e.rows (scalar_info e ex))) items }
  | Plan.Join (p, l, r) ->
    let el = estimate cat l and er = estimate cat r in
    let cross = { rows = el.rows *. er.rows; cols = el.cols @ er.cols } in
    let rows = Float.max 1.0 (cross.rows *. selectivity cross p) in
    { rows; cols = List.map (fun (a, c) -> (a, clamp_distinct rows c)) cross.cols }
  | Plan.Aggregate { keys; aggs; input } ->
    let e = estimate cat input in
    let group_count =
      if keys = [] then 1.0
      else
        List.fold_left (fun acc k -> acc *. (find_col e k).distinct) 1.0 keys
        |> Float.min (e.rows /. 2.0)
        |> Float.max 1.0
    in
    let key_cols = List.map (fun k -> (k, clamp_distinct group_count (find_col e k))) keys in
    let agg_cols =
      List.map
        (fun (a : Expr.agg) ->
          ( Attr.unqualified a.alias,
            { distinct = group_count; width = 8.; lo = None; hi = None } ))
        aggs
    in
    { rows = group_count; cols = key_cols @ agg_cols }
  | Plan.Union xs ->
    let es = List.map (estimate cat) xs in
    let rows = List.fold_left (fun acc e -> acc +. e.rows) 0.0 es in
    let cols = match es with [] -> [] | e :: _ -> e.cols in
    { rows; cols = List.map (fun (a, c) -> (a, clamp_distinct rows c)) cols }

and scan_est cat ~table ~alias ~fraction : node_est =
  let def = Catalog.table_def cat table in
  let rows = Float.max 1.0 (float_of_int def.Catalog.Table_def.row_count *. fraction) in
  let cols =
    List.map
      (fun (c : Catalog.Table_def.column) ->
        let s = c.stat in
        ( Attr.make ~rel:alias ~name:c.cname,
          clamp_distinct rows
            { distinct = float_of_int s.distinct; width = float_of_int s.width;
              lo = s.lo; hi = s.hi } ))
      def.Catalog.Table_def.columns
  in
  { rows; cols }
