(** Materialized interpreter for placed physical plans.

    Executes bottom-up against a {!Storage.Database.t} and accounts the
    bytes, rows and simulated cost of every SHIP operator under the
    message cost model (§7.4 of the paper). *)

type ship_record = {
  from_loc : Catalog.Location.t;
  to_loc : Catalog.Location.t;
  bytes : int;  (** serialized size of the shipped relation *)
  rows : int;
  cost_ms : float;  (** simulated transfer time under the message cost model *)
}
(** One executed SHIP: an intermediate result crossing sites. *)

type stats = {
  mutable ships : ship_record list;
  mutable rows_processed : int;  (** total rows materialized, all operators *)
}

(** Per-operator execution profile. [path] is the node's position in
    the plan tree as the list of child indices from the root (the root
    itself is [[]]), which is how [Optimizer.Explain] matches actuals
    back to plan nodes for EXPLAIN ANALYZE. *)
type node_profile = {
  path : int list;
  label : string;  (** {!Pplan.node_label} of the operator *)
  actual_rows : int;
  actual_bytes : int;  (** materialized output size *)
  ship : ship_record option;  (** set iff the operator is a SHIP *)
}

type result = {
  relation : Storage.Relation.t;
  stats : stats;
  profile : node_profile list;  (** execution (post-) order *)
  makespan_ms : float;
      (** simulated response time: sibling subtrees proceed in parallel,
          transfers follow the message cost model, local processing is
          charged per materialized row *)
}

val row_cost_ms : float
(** Simulated local processing cost per materialized row (ms). *)

val total_ship_cost : stats -> float
(** Sum of {!ship_record.cost_ms} over all ships (the total-cost
    objective's measured counterpart; compare [result.makespan_ms]). *)

val total_ship_bytes : stats -> int
(** Sum of {!ship_record.bytes} over all ships. *)

exception Runtime_error of string
(** Malformed plans (wrong arity, missing relations). *)

val run :
  network:Catalog.Network.t ->
  db:Storage.Database.t ->
  table_cols:(string -> string list) ->
  Pplan.t ->
  result
(** Execute a placed plan bottom-up, materializing every operator.
    [table_cols] resolves a table's stored column order, used to
    re-qualify scan schemas with the query alias. Emits trace events
    and metrics per operator and per SHIP (see [docs/TRACING.md]);
    raises {!Runtime_error} on malformed plans. *)
