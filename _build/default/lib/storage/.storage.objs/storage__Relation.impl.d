lib/storage/relation.ml: Array Attr Buffer Fmt List Relalg String Value
