(** EXPLAIN / EXPLAIN ANALYZE rendering of optimizer output.

    Pretty-prints a {!Planner.planned} as an annotated operator tree:
    every node shows its execution site and estimated cardinality,
    every SHIP shows its endpoints, estimated transfer size and
    compliance verdict ([\[ok\]], or the allowed destinations when the
    checker flagged it). A header summarizes the optimizer's work —
    phase-1 cost, estimated ship cost, memo size, policy-evaluation
    effort (η, implication tests) and branch-and-bound statistics.

    When an executor {!Exec.Interp.result} is supplied ([?analyze]),
    each node is additionally annotated with its {e actual} row count,
    SHIPs with actual bytes and simulated transfer cost, and a footer
    reports totals and the simulated makespan — the EXPLAIN ANALYZE
    form surfaced by [cgqp_cli --explain] / [explain --analyze].

    Output is deterministic for a given plan (no wall-clock values),
    which is what the golden tests in [test/test_obs.ml] rely on: the
    recovery footer, retry footer and per-ship attempt counts are
    emitted only when non-zero, so a fault-free run renders exactly as
    it did before fault injection existed. *)

type recovery = {
  failovers : int;  (** failover re-plans the session performed *)
  masked_links : (Catalog.Location.t * Catalog.Location.t) list;
      (** links masked as permanently down during degradation *)
  masked_sites : Catalog.Location.t list;  (** sites masked as down *)
  masked_replicas : (string * Catalog.Location.t) list;
      (** (table, site) copies masked as stale during degradation *)
}
(** What the degradation path ([Cgqp.run]) did to finish a run. *)

val no_recovery : recovery
(** Zero failovers, nothing masked — renders nothing. *)

val render :
  ?analyze:Exec.Interp.result ->
  ?recovery:recovery ->
  ?cat:Catalog.t ->
  Planner.planned ->
  string
(** [render ?analyze ?recovery ?cat planned] is the full EXPLAIN
    (ANALYZE) text, newline-terminated. [recovery] (default
    {!no_recovery}) adds a [degraded: ...] footer when the run failed
    over. [cat] enables the replica annotations: scans reading a
    non-primary copy get [\[replica of <site>\]], SHIP lines above a
    replicated scan get [\[read replica <site>\]] (plus
    [, switched from <site>] when failover swapped replica mid-run).
    Catalogs without replica sets render byte-identically with or
    without [cat]. *)
