test/test_value.ml: Alcotest QCheck QCheck_alcotest Relalg Stdlib Value
