examples/regulator.mli:
