(** Column references.

    An attribute names a column of a relation, qualified by the alias
    (or base-table name) it belongs to. Names are case-insensitive and
    stored lowercased. *)

type t = { rel : string; name : string }
(** [rel = ""] denotes an unqualified reference awaiting name
    resolution. *)

val make : rel:string -> name:string -> t
(** [make ~rel ~name] is the qualified reference [rel.name],
    lowercased. *)

val unqualified : string -> t
(** A bare column name, to be bound later (or the output of a
    projection/aggregation). *)

val is_qualified : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
