(* Query summaries: the view of a (sub)plan that the policy evaluator
   (Algorithm 1 of the paper) needs — output attributes with their
   base-column provenance and aggregation status, the conjunction of
   predicates normalized to base columns, and the group-by columns.

   The analysis is deliberately *sound but incomplete*: any derivation it
   cannot track precisely is marked [opaque], which later evaluates to
   "shippable nowhere" for the affected attribute. *)

type base_col = { table : string; column : string }

let base_col_compare a b =
  match String.compare a.table b.table with
  | 0 -> String.compare a.column b.column
  | c -> c

let base_col_equal a b = base_col_compare a b = 0
let pp_base_col ppf { table; column } = Fmt.pf ppf "%s.%s" table column

(* One output column of the (sub)query. [sources] are the base columns it
   derives from; [agg] is the aggregate applied (if any); [group_key]
   marks grouping attributes exposed in the output. *)
type out_ref = {
  name : string;
  sources : base_col list;
  agg : Expr.agg_fn option;
  group_key : bool;
  opaque : bool;
}

type t = {
  tables : (string * string) list;  (* alias -> global table name *)
  outputs : out_ref list;
  pred : Pred.t;  (* over base columns: Attr {rel = table; name = column} *)
  group_cols : base_col list option;  (* Some _ iff aggregation query *)
  accessed : (base_col * Expr.agg_fn option) list;
      (* columns read by predicates: disclosed through filtering even
         when not in the output (cf. §4.1 "accesses only the specified
         cells") *)
  valid : bool;  (* false when the shape is beyond the analysis *)
}

let is_aggregate s = s.group_cols <> None

(* --- aggregate composition (outer fn over a partially aggregated col) --- *)

let compose_agg ~outer ~inner =
  match outer, inner with
  | Expr.Sum, Expr.Sum -> Some Expr.Sum
  | Expr.Sum, Expr.Count -> Some Expr.Count
  | Expr.Min, Expr.Min -> Some Expr.Min
  | Expr.Max, Expr.Max -> Some Expr.Max
  | (Expr.Sum | Expr.Count | Expr.Min | Expr.Max | Expr.Avg), _ -> None

(* --- internal environment: alias column -> out_ref --- *)

type env = out_ref Attr.Map.t

let union_sources refs =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc c -> if List.exists (base_col_equal c) acc then acc else c :: acc)
        acc r.sources)
    [] refs
  |> List.rev

exception Unsupported

(* Resolve a scalar expression against the environment: referenced
   out_refs must all be plain (no aggregation) for the result to be a
   plain derived column. *)
let resolve_scalar (env : env) (e : Expr.scalar) : out_ref list =
  Attr.Set.fold
    (fun a acc ->
      match Attr.Map.find_opt a env with
      | Some r -> r :: acc
      | None -> raise Unsupported)
    (Expr.cols e) []

(* Rewrite a predicate so every column reference denotes a base column
   [Attr {rel = table; name = column}]. Conjuncts whose columns cannot be
   uniquely traced to plain base columns are dropped — weakening the
   predicate, which is the sound direction for the implication test. *)
let normalize_pred (env : env) (p : Pred.t) : Pred.t =
  let rewrite_conjunct c =
    try
      Some
        (Pred.map_cols
           (fun a ->
             match Attr.Map.find_opt a env with
             | Some { sources = [ bc ]; agg = None; opaque = false; _ } ->
               Attr.make ~rel:bc.table ~name:bc.column
             | Some _ | None -> raise Unsupported)
           c)
    with Unsupported -> None
  in
  Pred.conjuncts p |> List.filter_map rewrite_conjunct |> Pred.conj_all

(* Base columns (with their aggregation status) read by predicate [p];
   the boolean is false when some reference cannot be traced. *)
let accessed_of_pred (env : env) (p : Pred.t) : (base_col * Expr.agg_fn option) list * bool =
  Attr.Set.fold
    (fun a (acc, ok) ->
      match Attr.Map.find_opt a env with
      | Some { opaque = false; sources; agg; _ } ->
        (List.map (fun s -> (s, agg)) sources @ acc, ok)
      | Some _ | None -> (acc, false))
    (Pred.cols p) ([], true)

let dedup_accessed xs =
  List.fold_left
    (fun acc ((c, f) as x) ->
      if List.exists (fun (c', f') -> base_col_equal c c' && f = f') acc then acc
      else x :: acc)
    [] xs
  |> List.rev

let scan_env ~(table_cols : string -> string list) ~table ~alias : env * out_ref list =
  let cols = table_cols table in
  let refs =
    List.map
      (fun c ->
        { name = c; sources = [ { table; column = c } ]; agg = None; group_key = false;
          opaque = false })
      cols
  in
  let env =
    List.fold_left2
      (fun m c r -> Attr.Map.add (Attr.make ~rel:alias ~name:c) r m)
      Attr.Map.empty cols refs
  in
  (env, refs)

(* [analyze ~table_cols plan] returns the summary together with the
   environment binding the plan's visible columns. *)
let rec analyze_env ~table_cols (plan : Plan.t) : t * env =
  match plan with
  | Plan.Scan { table; alias } ->
    let env, outputs = scan_env ~table_cols ~table ~alias in
    ( { tables = [ (alias, table) ]; outputs; pred = Pred.True; group_cols = None;
        accessed = []; valid = true },
      env )
  | Plan.Select (p, input) ->
    (* [normalize_pred] drops conjuncts it cannot express over plain base
       columns (e.g. HAVING-like predicates over aggregates), which only
       weakens the predicate — the sound direction for implication. The
       referenced columns are still recorded as accessed. *)
    let s, env = analyze_env ~table_cols input in
    let acc, ok = accessed_of_pred env p in
    ( { s with
        pred = Pred.conj s.pred (normalize_pred env p);
        accessed = dedup_accessed (s.accessed @ acc);
        valid = s.valid && ok },
      env )
  | Plan.Project (items, input) ->
    let s, env = analyze_env ~table_cols input in
    let outputs, env' =
      List.fold_left
        (fun (outs, m) (e, n) ->
          let name = n.Attr.name in
          let r =
            try
              let refs = resolve_scalar env e in
              match e, refs with
              | Expr.Col _, [ r ] -> { r with name }
              | _, refs when List.for_all (fun r -> r.agg = None && not r.opaque) refs ->
                { name; sources = union_sources refs; agg = None; group_key = false;
                  opaque = false }
              | _ ->
                (* compound expression over aggregated inputs: opaque *)
                { name; sources = union_sources refs; agg = None; group_key = false;
                  opaque = true }
            with Unsupported ->
              { name; sources = []; agg = None; group_key = false; opaque = true }
          in
          (r :: outs, Attr.Map.add n r m))
        ([], Attr.Map.empty) items
    in
    ({ s with outputs = List.rev outputs }, env')
  | Plan.Join (p, l, r) ->
    let sl, envl = analyze_env ~table_cols l in
    let sr, envr = analyze_env ~table_cols r in
    (* A join above an aggregate is beyond the SP/SPG analysis. *)
    let valid = sl.valid && sr.valid && (not (is_aggregate sl)) && not (is_aggregate sr) in
    let env = Attr.Map.union (fun _ a _ -> Some a) envl envr in
    let pred =
      Pred.conj (normalize_pred env p) (Pred.conj sl.pred sr.pred)
    in
    let acc, ok = accessed_of_pred env p in
    ( { tables = sl.tables @ sr.tables; outputs = sl.outputs @ sr.outputs; pred;
        group_cols = None;
        accessed = dedup_accessed (sl.accessed @ sr.accessed @ acc);
        valid = valid && ok },
      env )
  | Plan.Aggregate { keys; aggs; input } ->
    let s, env = analyze_env ~table_cols input in
    if not s.valid then (s, env)
    else
      let key_refs =
        List.map
          (fun k ->
            match Attr.Map.find_opt k env with
            | Some ({ agg = None; opaque = false; sources = [ _ ]; _ } as r) ->
              { r with name = k.Attr.name; group_key = true }
            | Some r -> { r with name = k.Attr.name; group_key = true; opaque = true }
            | None ->
              { name = k.Attr.name; sources = []; agg = None; group_key = true;
                opaque = true })
          keys
      in
      let inner_group = s.group_cols in
      let agg_refs =
        List.map
          (fun (a : Expr.agg) ->
            try
              let refs = resolve_scalar env a.arg in
              match refs with
              | [] ->
                (* e.g. COUNT( * ) over a constant: no base column involved *)
                { name = a.alias; sources = []; agg = Some a.fn; group_key = false;
                  opaque = false }
              | _ when List.for_all (fun r -> r.agg = None && not r.opaque) refs ->
                (* first-level aggregation over plain columns *)
                { name = a.alias; sources = union_sources refs; agg = Some a.fn;
                  group_key = false; opaque = false }
              | [ ({ agg = Some inner; opaque = false; _ } as r) ]
                when (match a.arg with Expr.Col _ -> true | _ -> false) -> (
                (* re-aggregation of a partial aggregate *)
                match compose_agg ~outer:a.fn ~inner with
                | Some fn ->
                  { name = a.alias; sources = r.sources; agg = Some fn; group_key = false;
                    opaque = false }
                | None ->
                  { name = a.alias; sources = r.sources; agg = None; group_key = false;
                    opaque = true })
              | refs ->
                { name = a.alias; sources = union_sources refs; agg = None;
                  group_key = false; opaque = true }
            with Unsupported ->
              { name = a.alias; sources = []; agg = None; group_key = false; opaque = true })
          aggs
      in
      let group_cols =
        let resolved =
          List.map
            (fun r -> match r.sources with [ bc ] when not r.opaque -> Some bc | _ -> None)
            key_refs
        in
        if List.for_all Option.is_some resolved then
          Some (List.filter_map Fun.id resolved)
        else None
      in
      let valid, group_cols =
        match group_cols, inner_group with
        | Some gs, None -> (true, Some gs)
        | Some gs, Some inner_gs ->
          (* re-grouping of an aggregate: sound only when coarsening
             (outer keys were inner keys) *)
          let ok = List.for_all (fun g -> List.exists (base_col_equal g) inner_gs) gs in
          (ok, Some gs)
        | None, _ -> (false, Some [])
      in
      let outputs = key_refs @ agg_refs in
      (* keys stay visible under their original (qualified) attribute;
         aggregate outputs are exposed unqualified under their alias *)
      let env' =
        let m =
          List.fold_left2
            (fun m k r -> Attr.Map.add k r m)
            Attr.Map.empty keys key_refs
        in
        List.fold_left
          (fun m r -> Attr.Map.add (Attr.unqualified r.name) r m)
          m agg_refs
      in
      ( { tables = s.tables; outputs; pred = s.pred; group_cols;
          accessed = s.accessed; valid },
        env' )
  | Plan.Union xs -> (
    match xs with
    | [] -> raise Unsupported
    | first :: rest ->
      let s, env = analyze_env ~table_cols first in
      (* Partitions of the same table are union-compatible and share the
         summary shape; combine predicates disjunctively (weakest: drop)
         and accumulate every branch's accessed columns. *)
      let rest_summaries = List.map (fun x -> fst (analyze_env ~table_cols x)) rest in
      let all_same =
        List.for_all
          (fun sx ->
            List.equal (fun a b -> String.equal (snd a) (snd b)) sx.tables s.tables)
          rest_summaries
      in
      let accessed =
        dedup_accessed (List.concat_map (fun sx -> sx.accessed) (s :: rest_summaries))
      in
      ( { s with pred = Pred.True; accessed;
          valid = s.valid && all_same && List.for_all (fun sx -> sx.valid) rest_summaries },
        env ))

let analyze ~table_cols plan = fst (analyze_env ~table_cols plan)

let pp ppf s =
  let pp_out ppf r =
    Fmt.pf ppf "%s%s<-{%a}%s" r.name
      (match r.agg with Some f -> ":" ^ Expr.agg_fn_to_string f | None -> "")
      Fmt.(list ~sep:comma pp_base_col)
      r.sources
      (if r.opaque then "!" else if r.group_key then "#" else "")
  in
  Fmt.pf ppf "@[<v>tables: %a@ outputs: %a@ pred: %a@ group: %a@ valid: %b@]"
    Fmt.(list ~sep:comma (pair ~sep:(any "->") string string))
    s.tables
    Fmt.(list ~sep:semi pp_out)
    s.outputs Pred.pp s.pred
    Fmt.(option ~none:(any "-") (list ~sep:comma pp_base_col))
    (match s.group_cols with None -> None | Some g -> Some g)
    s.valid
