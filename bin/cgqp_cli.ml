(* cgqp — command-line driver for the compliant geo-distributed query
   processor, running against the built-in geo-distributed TPC-H setup.

   Subcommands:
     explain   optimize a query and print the (compliant) plan
     run       optimize + execute against generated TPC-H data
     serve     execute a multi-session workload script (plan cache,
               admission control, deterministic scheduler)
     check     report whether a query is legal under the policies
     catalog   print the geo-distributed catalog and policy sets

   Exit codes (beyond cmdliner's defaults): 3 = the query was rejected
   (no compliant plan), 4 = unsatisfiable under failures, 5 = a serve
   statement was denied by admission control (--strict).
*)

open Cmdliner

let exit_rejected = 3
let exit_unsatisfiable = 4
let exit_denied = 5

let compliance_exits =
  [
    Cmd.Exit.info exit_rejected
      ~doc:"the query has no compliant plan under the installed policies (rejected).";
    Cmd.Exit.info exit_unsatisfiable
      ~doc:
        "a compliant plan existed, but no compliant alternative survives the \
         failures encountered at execution time (unsatisfiable).";
  ]

(* Rejections and unsatisfiable runs get distinct exit codes so scripts
   can tell "the policies forbid this" from "the network killed this"
   without parsing stderr; other errors keep cmdliner's conventions. *)
let fail_with_code (e : Cgqp.error) =
  (match e with
  | `Rejected _ ->
    Fmt.epr "cgqp: %s@." (Cgqp.error_to_string e);
    Stdlib.exit exit_rejected
  | `Unsatisfiable _ ->
    Fmt.epr "cgqp: %s@." (Cgqp.error_to_string e);
    Stdlib.exit exit_unsatisfiable
  | _ -> ());
  `Error (false, Cgqp.error_to_string e)

let policy_set_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "t" -> Ok Tpch.Policies.T
    | "c" -> Ok Tpch.Policies.C
    | "cr" -> Ok Tpch.Policies.CR
    | "cra" | "cr+a" -> Ok Tpch.Policies.CRA
    | _ -> Error (`Msg "policy set must be one of: T, C, CR, CR+A")
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Tpch.Policies.set_name_to_string s))

let set_arg =
  Arg.(
    value
    & opt policy_set_conv Tpch.Policies.CR
    & info [ "p"; "policies" ] ~docv:"SET" ~doc:"Policy expression set (T, C, CR, CR+A).")

let policy_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "policy-file" ] ~docv:"FILE"
        ~doc:"Load policy expressions from FILE (one per line, overrides --policies).")

let traditional_arg =
  Arg.(
    value & flag
    & info [ "traditional" ]
        ~doc:"Use the purely cost-based optimizer (no compliance annotations).")

let engine_conv =
  let parse s =
    match Exec.Engine.of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg "engine must be `reference', `compiled' or `vector'")
  in
  Arg.conv (parse, fun ppf e -> Fmt.string ppf (Exec.Engine.to_string e))

let engine_arg =
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Executor: $(b,compiled) (one-time schema resolution and compiled \
           operator kernels, the default), $(b,vector) (batch-at-a-time over \
           column-major storage with selection vectors) or $(b,reference) \
           (the tree-walking interpreter). All three produce byte-identical \
           results and accounting. Defaults to the CGQP_ENGINE environment \
           variable, else compiled.")

let sf_arg =
  Arg.(
    value & opt float 0.01
    & info [ "sf" ] ~docv:"SF" ~doc:"TPC-H scale factor for generated data.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Deterministic seed for the data generator and the fault scheduler. \
           Defaults to the CGQP_SEED environment variable, else 42.")

let faults_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "faults" ] ~docv:"FILE"
        ~doc:
          "Inject the fault schedule in FILE (one statement per line: seed N, \
           link-down A B, site-down A, drop A B P, slow A B F, \
           replica-lag T S L; # comments). Execution retries transient drops \
           and fails over to a compliant alternative plan (preferring a fresh \
           sibling replica) on permanent failures.")

(* --replica TABLE[:PART]=COPY,COPY,...  where COPY is SITE, SITE! \
   (jurisdiction-pinned to itself), SITE^PIN or SITE~LAGMS. The first \
   copy must be the partition's primary placement. *)
let replica_conv =
  let parse s =
    try
      let table, part, rhs =
        match String.index_opt s '=' with
        | None -> failwith "expected TABLE[:PART]=SITE[,SITE...]"
        | Some i ->
          let lhs = String.sub s 0 i
          and rhs = String.sub s (i + 1) (String.length s - i - 1) in
          let table, part =
            match String.index_opt lhs ':' with
            | None -> (lhs, 0)
            | Some j -> (
              let p = String.sub lhs (j + 1) (String.length lhs - j - 1) in
              match int_of_string_opt p with
              | Some p -> (String.sub lhs 0 j, p)
              | None -> failwith (Printf.sprintf "bad partition index %S" p))
          in
          (table, part, rhs)
      in
      let copy w =
        let w = String.trim w in
        let w, lag_ms =
          match String.index_opt w '~' with
          | None -> (w, 0.)
          | Some k -> (
            let l = String.sub w (k + 1) (String.length w - k - 1) in
            match float_of_string_opt l with
            | Some l when l >= 0. -> (String.sub w 0 k, l)
            | _ -> failwith (Printf.sprintf "bad lag %S" l))
        in
        let site, pin =
          match String.index_opt w '^' with
          | Some k ->
            ( String.sub w 0 k,
              Some (String.sub w (k + 1) (String.length w - k - 1)) )
          | None ->
            let n = String.length w in
            if n > 0 && w.[n - 1] = '!' then
              let site = String.sub w 0 (n - 1) in
              (site, Some site)
            else (w, None)
        in
        if site = "" then failwith "empty site in replica spec";
        { Catalog.site; lag_ms; pin }
      in
      let copies = List.map copy (String.split_on_char ',' rhs) in
      if copies = [] then failwith "empty replica set";
      Ok (table, part, copies)
    with Failure m -> Error (`Msg ("replica spec: " ^ m))
  in
  let print ppf (table, part, copies) =
    Fmt.pf ppf "%s:%d=%s" table part
      (String.concat ","
         (List.map
            (fun (r : Catalog.replica) ->
              r.Catalog.site
              ^ (match r.Catalog.pin with
                | Some p when String.equal p r.Catalog.site -> "!"
                | Some p -> "^" ^ p
                | None -> "")
              ^ if r.Catalog.lag_ms > 0. then Printf.sprintf "~%g" r.Catalog.lag_ms else "")
            copies))
  in
  Arg.conv (parse, print)

let replicas_arg =
  Arg.(
    value
    & opt_all replica_conv []
    & info [ "replica" ] ~docv:"SPEC"
        ~doc:
          "Attach a replica set: $(b,TABLE[:PART]=SITE,SITE,...) (repeatable). \
           The first site must be the partition's primary placement; a site \
           suffixed $(b,!) is jurisdiction-pinned to itself, $(b,^PIN) pins \
           it elsewhere, $(b,~MS) declares replication lag. The optimizer \
           reads whichever compliant fresh copy is cheapest (docs/REPLICA.md).")

let read_file f =
  let ic = open_in_bin f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* An explicit seed (--seed flag or CGQP_SEED) re-seeds the schedule so
   one knob reproduces the whole run; otherwise the file's own [seed N]
   statement stands. *)
let load_faults ~cli_seed = function
  | None -> Ok None
  | Some file -> (
    match Catalog.Network.Fault.parse (read_file file) with
    | Error m -> Error (Printf.sprintf "%s: %s" file m)
    | Ok sched -> (
      match
        (match cli_seed with Some s -> Some s | None -> Storage.Seed.override ())
      with
      | Some seed ->
        Ok (Some (Catalog.Network.Fault.make ~seed (Catalog.Network.Fault.events sched)))
      | None -> Ok (Some sched)))

let query_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"QUERY"
        ~doc:"SQL text, or one of the built-in names Q2, Q3, Q5, Q8, Q9, Q10.")

let resolve_query q =
  match List.assoc_opt (String.uppercase_ascii q) Tpch.Queries.all_extended with
  | Some sql -> sql
  | None -> q

let load_policies session set file =
  let texts =
    match file with
    | Some f ->
      let ic = open_in f in
      let rec lines acc =
        match input_line ic with
        | line ->
          let line = String.trim line in
          lines (if line = "" || String.length line >= 1 && line.[0] = '#' then acc else line :: acc)
        | exception End_of_file ->
          close_in ic;
          List.rev acc
      in
      lines []
    | None -> Tpch.Policies.texts set
  in
  Cgqp.add_policies session texts

let make_session ~set ~file ~traditional ?engine ?sf ?seed ?faults
    ?(replicas = []) () =
  let cat = Tpch.Schema.catalog ~sf:10.0 () in
  (* raises Invalid_argument on a bad spec; command actions wrap it *)
  let cat = if replicas = [] then cat else Catalog.with_replicas cat replicas in
  let session = Cgqp.create ~catalog:cat () in
  load_policies session set file;
  if traditional then Cgqp.set_mode session Optimizer.Memo.Traditional;
  Option.iter (Cgqp.set_engine session) engine;
  (match sf with
  | Some sf ->
    let data = Tpch.Datagen.generate ?seed ~sf () in
    Cgqp.attach_database session (Tpch.Datagen.load ~cat data)
  | None -> ());
  Option.iter (Cgqp.set_faults session) faults;
  session

(* --- observability flags, shared by explain/run --- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured event trace (optimizer, policy evaluator, executor) \
           and write it to FILE as JSON lines.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the metrics registry (counters, histograms, gauges) afterwards.")

(* Run [f] with tracing enabled when requested; afterwards write the
   jsonl trace and/or print the metrics table. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Obs.Trace.enable ();
  let r = f () in
  (match trace with
  | Some file ->
    let oc = open_out file in
    Obs.Trace.write_jsonl oc;
    close_out oc;
    Fmt.epr "trace: %d events written to %s%s@."
      (List.length (Obs.Trace.events ()))
      file
      (match Obs.Trace.dropped () with
      | 0 -> ""
      | n -> Printf.sprintf " (%d oldest dropped)" n)
  | None -> ());
  if metrics then Fmt.pr "@.-- metrics --@.%a" Obs.Metrics.render ();
  r

let dot_arg =
  Arg.(
    value & flag
    & info [ "dot" ] ~doc:"Print the plan as a Graphviz digraph instead of text.")

let traits_arg =
  Arg.(
    value & flag
    & info [ "traits" ]
        ~doc:"Also print the annotated phase-1 plan with each operator's execution trait.")

let analyze_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "EXPLAIN ANALYZE: also execute the plan on generated TPC-H data (see \
           $(b,--sf)) and annotate each operator with actual rows and SHIP bytes.")

let explain_cmd =
  let action set file traditional engine traits dot analyze sf seed faults
      replicas trace metrics query =
    with_obs ~trace ~metrics @@ fun () ->
    match load_faults ~cli_seed:seed faults with
    | Error m -> `Error (false, m)
    | Ok faults -> (
    match
      if analyze then
        make_session ~set ~file ~traditional ?engine ~sf ?seed ?faults ~replicas ()
      else make_session ~set ~file ~traditional ?engine ?seed ?faults ~replicas ()
    with
    | exception Invalid_argument m -> `Error (false, m)
    | session -> (
    let sql = resolve_query query in
    (* optimize (and, under --analyze, execute) exactly once *)
    let outcome =
      if analyze then
        Result.map
          (fun (r : Cgqp.run_result) ->
            (r.Cgqp.planned, Some r.Cgqp.interp, r.Cgqp.recovery))
          (Cgqp.run session sql)
      else
        Result.map
          (fun p -> (p, None, Optimizer.Explain.no_recovery))
          (Cgqp.optimize session sql)
    in
    match outcome with
    | Ok (p, interp, recovery) ->
      if dot then print_string (Exec.Pplan.to_dot p.Optimizer.Planner.plan)
      else begin
        print_string
          (Optimizer.Explain.render ?analyze:interp ~recovery
             ~cat:(Cgqp.catalog session) p);
        if traits then
          Fmt.pr "@.annotated plan (execution traits per operator):@.%a"
            (Optimizer.Memo.pp_anode ~indent:2)
            p.Optimizer.Planner.annotated
      end;
      `Ok ()
    | Error e -> fail_with_code e))
  in
  Cmd.v
    (Cmd.info "explain" ~exits:(Cmd.Exit.defaults @ compliance_exits)
       ~doc:"Optimize a query and print the annotated plan")
    Term.(
      ret
        (const action $ set_arg $ policy_file_arg $ traditional_arg $ engine_arg
       $ traits_arg $ dot_arg $ analyze_arg $ sf_arg $ seed_arg $ faults_arg
       $ replicas_arg $ trace_arg $ metrics_arg $ query_arg))

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Print the full result as CSV.")

let run_explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Also print the EXPLAIN ANALYZE plan tree (actual rows, SHIP bytes).")

let mem_budget_conv =
  let parse s =
    match Exec.Runtime.parse_budget s with
    | Some b -> Ok b
    | None ->
      Error
        (`Msg
          "memory budget must be a byte count with an optional k/m/g suffix \
           (e.g. 64m), or `unlimited'")
  in
  Arg.conv (parse, fun ppf b -> Fmt.pf ppf "%d" b)

let mem_budget_arg =
  Arg.(
    value
    & opt (some mem_budget_conv) None
    & info [ "mem-budget" ] ~docv:"BYTES"
        ~doc:
          "Byte-accounted memory budget for the executor (e.g. $(b,64m)): \
           hash joins and aggregations whose scratch state would exceed it \
           spill to disk Grace-style, with byte-identical results. Defaults \
           to the CGQP_MEM_BUDGET environment variable, else unlimited.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print executor memory/IO statistics afterwards: peak tracked \
           bytes, spilled operators and partitions, and segment page reads.")

let print_exec_stats () =
  Fmt.pr
    "(mem: peak tracked %d bytes; spilled %d operator%s into %d partition%s, \
     %d run-file bytes; segment page reads %d, %d bytes)@."
    (Exec.Runtime.peak_tracked_bytes ())
    (Exec.Runtime.spilled_operators ())
    (if Exec.Runtime.spilled_operators () = 1 then "" else "s")
    (Exec.Runtime.spill_partitions ())
    (if Exec.Runtime.spill_partitions () = 1 then "" else "s")
    (Exec.Runtime.spill_run_bytes ())
    (Storage.Segment.page_reads ())
    (Storage.Segment.page_read_bytes ())

let run_cmd =
  let action set file traditional engine sf seed faults replicas csv explain
      mem_budget stats trace metrics query =
    with_obs ~trace ~metrics @@ fun () ->
    match load_faults ~cli_seed:seed faults with
    | Error m -> `Error (false, m)
    | Ok faults -> (
    match
      make_session ~set ~file ~traditional ?engine ~sf ?seed ?faults ~replicas ()
    with
    | exception Invalid_argument m -> `Error (false, m)
    | session -> (
    Option.iter (fun b -> Cgqp.set_mem_budget session (Some b)) mem_budget;
    (* the effective seed makes every run replayable: data generation
       and the fault scheduler both derive from it *)
    if faults <> None || seed <> None then begin
      Fmt.epr "seed: %d@." (Storage.Seed.resolve ?cli:seed ());
      Option.iter
        (fun f -> Fmt.epr "fault seed: %d@." (Catalog.Network.Fault.seed f))
        faults
    end;
    match Cgqp.run session (resolve_query query) with
    | Ok r ->
      if csv then print_string (Storage.Relation.to_csv r.Cgqp.relation)
      else begin
        Fmt.pr "%a@." (Storage.Relation.pp ~max_rows:25) r.Cgqp.relation;
        Fmt.pr "(%d rows; shipped %d bytes; simulated transfer cost %.2f ms)@."
          (Storage.Relation.cardinality r.Cgqp.relation)
          r.Cgqp.shipped_bytes r.Cgqp.ship_cost_ms;
        let rc = r.Cgqp.recovery in
        if rc.Cgqp.failovers > 0 then
          Fmt.pr "(degraded: %d failover re-plan%s; %d ship retries%s)@."
            rc.Cgqp.failovers
            (if rc.Cgqp.failovers = 1 then "" else "s")
            r.Cgqp.interp.Exec.Interp.stats.Exec.Interp.ship_retries
            (match rc.Cgqp.masked_replicas with
            | [] -> ""
            | rs ->
              "; stale replicas "
              ^ String.concat ", " (List.map (fun (t, s) -> t ^ "@" ^ s) rs))
      end;
      if stats then print_exec_stats ();
      if explain then begin
        Fmt.pr "@.";
        print_string
          (Optimizer.Explain.render ~analyze:r.Cgqp.interp
             ~recovery:r.Cgqp.recovery ~cat:(Cgqp.catalog session)
             r.Cgqp.planned)
      end;
      `Ok ()
    | Error e -> fail_with_code e))
  in
  Cmd.v
    (Cmd.info "run" ~exits:(Cmd.Exit.defaults @ compliance_exits)
       ~doc:"Optimize and execute a query on generated TPC-H data")
    Term.(
      ret
        (const action $ set_arg $ policy_file_arg $ traditional_arg $ engine_arg
       $ sf_arg $ seed_arg $ faults_arg $ replicas_arg $ csv_arg
       $ run_explain_arg $ mem_budget_arg $ stats_arg $ trace_arg $ metrics_arg
       $ query_arg))

let check_cmd =
  let action set file query =
    let session = make_session ~set ~file ~traditional:false () in
    match Cgqp.optimize session (resolve_query query) with
    | Ok p ->
      Fmt.pr "LEGAL: a compliant plan exists (ship cost %.2f ms, %d memo groups)@."
        p.Optimizer.Planner.ship_cost p.Optimizer.Planner.groups;
      `Ok ()
    | Error (`Rejected reason) ->
      Fmt.pr "ILLEGAL: %s@." reason;
      `Ok ()
    | Error e -> `Error (false, Cgqp.error_to_string e)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Report whether a query admits a compliant plan")
    Term.(ret (const action $ set_arg $ policy_file_arg $ query_arg))

let catalog_cmd =
  let action set =
    let cat = Tpch.Schema.catalog ~sf:10.0 () in
    Fmt.pr "Geo-distributed TPC-H catalog (Table 2 of the paper):@.%a@." Catalog.pp cat;
    Fmt.pr "Policy set %s:@." (Tpch.Policies.set_name_to_string set);
    List.iter (Fmt.pr "  %s@.") (Tpch.Policies.texts set);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "catalog" ~doc:"Print the geo-distributed catalog and a policy set")
    Term.(ret (const action $ set_arg))

(* Topology dump: sites, links and the replica map as JSON, so scenario
   packs are debuggable without reading OCaml. *)
let topology_cmd =
  let action replicas =
    let cat = Tpch.Schema.catalog ~sf:10.0 () in
    match if replicas = [] then cat else Catalog.with_replicas cat replicas with
    | exception Invalid_argument m -> `Error (false, m)
    | cat ->
      let net = Catalog.network cat in
      let sites = Catalog.locations cat in
      let links =
        (* unordered pairs; a pair absent from the network is skipped *)
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                if String.compare a b >= 0 then None
                else
                  match Catalog.Network.alpha net a b with
                  | alpha ->
                    Some
                      Obs.Json.(
                        Obj
                          [
                            ("from", Str a);
                            ("to", Str b);
                            ("alpha_ms", Num alpha);
                            ("beta_ms_per_byte", Num (Catalog.Network.beta net a b));
                          ])
                  | exception Catalog.Network.Unknown_link _ -> None)
              sites)
          sites
      in
      let placements =
        List.map
          (fun (e : Catalog.entry) ->
            Obs.Json.(
              Obj
                [
                  ("table", Str e.Catalog.def.Catalog.Table_def.name);
                  ( "placements",
                    Arr
                      (List.map
                         (fun (p : Catalog.placement) ->
                           Obj
                             [
                               ("db", Str p.Catalog.db);
                               ("site", Str p.Catalog.location);
                               ("fraction", Num p.Catalog.fraction);
                             ])
                         e.Catalog.placements) );
                ]))
          (Catalog.all_tables cat)
      in
      let replica_map =
        List.map
          (fun (table, partition, copies) ->
            Obs.Json.(
              Obj
                [
                  ("table", Str table);
                  ("partition", Num (float_of_int partition));
                  ( "copies",
                    Arr
                      (List.map
                         (fun (r : Catalog.replica) ->
                           Obj
                             [
                               ("site", Str r.Catalog.site);
                               ("lag_ms", Num r.Catalog.lag_ms);
                               ( "pin",
                                 match r.Catalog.pin with
                                 | Some p -> Str p
                                 | None -> Null );
                             ])
                         copies) );
                ]))
          (Catalog.replica_map cat)
      in
      print_endline
        (Obs.Json.to_string
           Obs.Json.(
             Obj
               [
                 ("sites", Arr (List.map (fun s -> Str s) sites));
                 ("links", Arr links);
                 ("tables", Arr placements);
                 ("replicas", Arr replica_map);
               ]));
      `Ok ()
  in
  Cmd.v
    (Cmd.info "topology"
       ~doc:"Dump sites, links and the replica map as JSON"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Prints the geo-distributed topology the other subcommands run \
              against: every site, every link with its $(b,alpha)/$(b,beta) \
              cost parameters, each table's placements, and the replica map \
              (empty unless $(b,--replica) specs are given — the same specs \
              $(b,explain) and $(b,run) accept, so a scenario's replica \
              layout can be inspected exactly as the optimizer sees it).";
         ])
    Term.(ret (const action $ replicas_arg))

(* --- interactive shell --- *)

let schema_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "schema" ] ~docv:"FILE"
        ~doc:"Geo-schema definition (geodsl text); defaults to the built-in TPC-H setup.")

let data_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "data" ] ~docv:"DIR"
        ~doc:"Directory with <table>.csv files; defaults to generated TPC-H data.")

let repl_cmd =
  let action set file schema data sf =
    let cat =
      match schema with
      | Some f -> Geodsl.load_catalog_file f
      | None -> Tpch.Schema.catalog ~sf:10.0 ()
    in
    let session = Cgqp.create ~catalog:cat () in
    let grants = ref [] and denies = ref [] in
    let set_policies () =
      Cgqp.set_policy_catalog session
        (Policy.Negation.catalog_of_texts cat ~grants:!grants ~denies:!denies)
    in
    (match file, schema with
    | Some f, _ ->
      let ic = open_in f in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then grants := !grants @ [ line ]
         done
       with End_of_file -> close_in ic)
    | None, None -> grants := Tpch.Policies.texts set
    | None, Some _ -> ());
    (match data with
    | Some dir -> Cgqp.attach_database session (Geodsl.load_csv_dir ~cat dir)
    | None ->
      if schema = None then
        Cgqp.attach_database session (Tpch.Datagen.load ~cat (Tpch.Datagen.generate ~sf ())));
    set_policies ();
    Fmt.pr "cgqp interactive shell — \\h for help, \\q to quit@.";
    let help () =
      Fmt.pr
        "  \\q                 quit@.\
        \  \\mode trad|comp    switch optimizer mode@.\
        \  \\policies          coverage report@.@.\
        \  \\ship ...          add a policy expression@.\
        \  \\deny ...          add a negative statement@.\
        \  \\explain SQL       show the plan@.\
        \  \\legal SQL         is a compliant plan possible?@.\
        \  SQL                 optimize + execute@."
    in
    let rec loop () =
      Fmt.pr "cgqp> %!";
      match input_line stdin with
      | exception End_of_file -> ()
      | line ->
        let line = String.trim line in
        (try
           if line = "" then ()
           else if line = "\\q" || line = "\\quit" then raise Exit
           else if line = "\\h" || line = "\\help" then help ()
           else if line = "\\mode trad" then begin
             Cgqp.set_mode session Optimizer.Memo.Traditional;
             Fmt.pr "mode: traditional (cost-only)@."
           end
           else if line = "\\mode comp" then begin
             Cgqp.set_mode session Optimizer.Memo.Compliant;
             Fmt.pr "mode: compliant@."
           end
           else if line = "\\policies" then
             Fmt.pr "%a@." Policy.Analysis.pp_report (cat, Cgqp.policies session)
           else if String.length line > 6 && String.sub line 0 6 = "\\ship " then begin
             grants := !grants @ [ String.sub line 1 (String.length line - 1) ];
             set_policies ();
             Fmt.pr "added.@."
           end
           else if String.length line > 6 && String.sub line 0 6 = "\\deny " then begin
             denies := !denies @ [ String.sub line 1 (String.length line - 1) ];
             set_policies ();
             Fmt.pr "added; grants re-preprocessed.@."
           end
           else if String.length line > 9 && String.sub line 0 9 = "\\explain " then begin
             match Cgqp.optimize session (String.sub line 9 (String.length line - 9)) with
             | Ok p ->
               Fmt.pr "%a@." Optimizer.Planner.pp_outcome (Optimizer.Planner.Planned p)
             | Error e -> Fmt.pr "error: %s@." (Cgqp.error_to_string e)
           end
           else if String.length line > 7 && String.sub line 0 7 = "\\legal " then
             Fmt.pr "%s@."
               (if Cgqp.is_legal session (String.sub line 7 (String.length line - 7)) then
                  "LEGAL"
                else "ILLEGAL (or invalid)")
           else
             match Cgqp.run session line with
             | Ok r ->
               Fmt.pr "%a(%d rows; shipped %d bytes; transfer cost %.2f ms)@."
                 (Storage.Relation.pp ~max_rows:20) r.Cgqp.relation
                 (Storage.Relation.cardinality r.Cgqp.relation)
                 r.Cgqp.shipped_bytes r.Cgqp.ship_cost_ms
             | Error e -> Fmt.pr "error: %s@." (Cgqp.error_to_string e)
         with
        | Exit -> raise Exit
        | e -> Fmt.pr "error: %s@." (Printexc.to_string e));
        loop ()
    in
    (try loop () with Exit -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive shell over a geo-schema and CSV data")
    Term.(ret (const action $ set_arg $ policy_file_arg $ schema_arg $ data_arg $ sf_arg))

let policies_cmd =
  let action set file =
    let session = make_session ~set ~file ~traditional:false () in
    Fmt.pr "Policy coverage report (%d expressions):@."
      (Policy.Pcatalog.size (Cgqp.policies session));
    Fmt.pr "%a@." Policy.Analysis.pp_report (Cgqp.catalog session, Cgqp.policies session);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:"Analyze a policy set: per-column coverage, redundancies, no-ops")
    Term.(ret (const action $ set_arg $ policy_file_arg))

(* --- serve: multi-session workload scripts --- *)

let script_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "script" ] ~docv:"FILE"
        ~doc:
          "Workload script: tenants, sessions and the statements each session \
           submits (grammar in docs/SERVICE.md). Required.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the plan cache (every submit re-runs the optimizer).")

let cache_capacity_arg =
  Arg.(
    value & opt int 128
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Plan cache capacity in entries (LRU eviction beyond this).")

let template_cache_arg =
  Arg.(
    value & flag
    & info [ "template-cache" ]
        ~doc:
          "Enable template-level plan caching: literals are normalized out of \
           the cache key into a parameter vector, so statements differing only \
           in constants share one cached plan (guarded by the compliance-verdict \
           fingerprint of the bound literals; see docs/FEEDBACK.md). Reports \
           stay byte-identical to non-template runs. Also honors the \
           CGQP_TEMPLATE_CACHE environment variable.")

let feedback_arg =
  Arg.(
    value & flag
    & info [ "feedback" ]
        ~doc:
          "Fold observed scan cardinalities back into the catalog statistics \
           (cardinality feedback): when the estimated-vs-actual gap crosses the \
           threshold, a corrected catalog is installed, the plan cache epoch is \
           bumped once, and subsequent submissions re-optimize. Forces \
           $(b,--domains=1).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit non-zero when any statement was denied by admission control \
           (code 5), unsatisfiable under failures (4) or rejected (3); \
           admission denials take precedence.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Print the report as JSON instead of the text summary.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Width of the execution pool (OCaml domains). Default: \
           $(b,CGQP_DOMAINS), else 1. With N > 1 the scheduler records \
           sessions in parallel and replays them on the deterministic \
           simulated clock: the report is byte-identical to \
           $(b,--domains=1); only wall-clock time changes (see \
           docs/PARALLELISM.md).")

let resolve_policy_set name =
  match String.lowercase_ascii name with
  | "t" -> Some (Tpch.Policies.texts Tpch.Policies.T)
  | "c" -> Some (Tpch.Policies.texts Tpch.Policies.C)
  | "cr" -> Some (Tpch.Policies.texts Tpch.Policies.CR)
  | "cra" | "cr+a" -> Some (Tpch.Policies.texts Tpch.Policies.CRA)
  | _ -> None

let serve_cmd =
  let action engine sf seed faults no_cache capacity template feedback strict
      json domains trace metrics script =
    with_obs ~trace ~metrics @@ fun () ->
    match Service.Script.parse_file script with
    | Error m -> `Error (false, Printf.sprintf "%s: %s" script m)
    | Ok wl -> (
      match load_faults ~cli_seed:seed faults with
      | Error m -> `Error (false, m)
      | Ok faults ->
        let cat = Tpch.Schema.catalog ~sf:10.0 () in
        let database =
          Tpch.Datagen.load ~cat (Tpch.Datagen.generate ?seed ~sf ())
        in
        let cache =
          if no_cache then None else Some (Cgqp.Plan_cache.create ~capacity ())
        in
        let template = if template then Some true else None in
        let fb = if feedback then Some (Cgqp.Feedback.create ()) else None in
        let env =
          Service.Scheduler.env ~catalog:cat ~database ?cache ?template
            ?feedback:fb ?faults ?engine ~resolve_query ~resolve_policy_set ()
        in
        let t0 = Unix.gettimeofday () in
        match Service.Scheduler.run ~env ?seed ?domains wl with
        | exception Invalid_argument m ->
          `Error (false, Printf.sprintf "%s: %s" script m)
        | report ->
        let wall_s = Unix.gettimeofday () -. t0 in
        if json then
          print_endline (Obs.Json.to_string (Service.Scheduler.report_to_json report))
        else begin
          Fmt.pr "%a@." Service.Scheduler.pp_report report;
          (* wall-clock is outside the report: it is the one
             nondeterministic quantity, kept out of the byte-identical
             surface *)
          Fmt.pr "  wall-clock %.3f s at %d domain(s)@." wall_s
            (match domains with
            | Some d -> d
            | None -> Service.Pool.default_domains ());
          (* only under --feedback: keeps default output byte-stable *)
          Option.iter
            (fun fb ->
              Fmt.pr "  feedback: %d observations, %d folds@."
                (Cgqp.Feedback.observations fb)
                (Cgqp.Feedback.folds fb))
            fb
        end;
        if strict then
          if report.Service.Scheduler.denied > 0 then Stdlib.exit exit_denied
          else if report.Service.Scheduler.unsatisfiable > 0 then
            Stdlib.exit exit_unsatisfiable
          else if report.Service.Scheduler.rejected > 0 then
            Stdlib.exit exit_rejected;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~exits:
         (Cmd.Exit.defaults @ compliance_exits
         @ [
             Cmd.Exit.info exit_denied
               ~doc:
                 "with $(b,--strict): at least one statement was denied by \
                  admission control.";
           ])
       ~doc:"Execute a multi-session workload script"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Replays a workload script against the built-in geo-distributed \
              TPC-H setup: sessions run closed-loop on a deterministic \
              simulated clock, statements pass per-tenant admission control, \
              and optimizer outcomes are served from a policy-epoch plan \
              cache shared by all sessions. Any policy mutation (or failover \
              re-plan mask) invalidates affected entries, so cached runs are \
              byte-identical to uncached ones.";
           `P
             "The report lists every statement with its simulated latency and \
              cache flag (hit/miss), then aggregates: counts by outcome, \
              cache hit rate, p50/p95 latency.";
         ])
    Term.(
      ret
        (const action $ engine_arg $ sf_arg $ seed_arg $ faults_arg $ no_cache_arg
       $ cache_capacity_arg $ template_cache_arg $ feedback_arg $ strict_arg
       $ json_arg $ domains_arg $ trace_arg $ metrics_arg $ script_arg))

(* Default term: lets the common one-shot forms work without naming a
   subcommand — [cgqp --explain Q3] is EXPLAIN ANALYZE, [cgqp Q3] is
   run. *)
let default_term =
  let action set file traditional engine sf explain trace metrics query =
    match query with
    | None -> `Help (`Pager, None)
    | Some q ->
      with_obs ~trace ~metrics @@ fun () ->
      let session = make_session ~set ~file ~traditional ?engine ~sf () in
      let sql = resolve_query q in
      if explain then (
        match Cgqp.explain_analyze session sql with
        | Ok text ->
          print_string text;
          `Ok ()
        | Error e -> fail_with_code e)
      else (
        match Cgqp.run session sql with
        | Ok r ->
          Fmt.pr "%a@." (Storage.Relation.pp ~max_rows:25) r.Cgqp.relation;
          Fmt.pr "(%d rows; shipped %d bytes; simulated transfer cost %.2f ms)@."
            (Storage.Relation.cardinality r.Cgqp.relation)
            r.Cgqp.shipped_bytes r.Cgqp.ship_cost_ms;
          `Ok ()
        | Error e -> fail_with_code e)
  in
  let opt_query =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:"SQL text, or one of the built-in names Q2, Q3, Q5, Q8, Q9, Q10.")
  in
  Term.(
    ret
      (const action $ set_arg $ policy_file_arg $ traditional_arg $ engine_arg
     $ sf_arg $ run_explain_arg $ trace_arg $ metrics_arg $ opt_query))

let () =
  let doc = "compliant geo-distributed query processing" in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_term
          (Cmd.info "cgqp" ~doc ~version:"1.0.0")
          [
            explain_cmd; run_cmd; serve_cmd; check_cmd; catalog_cmd;
            topology_cmd; policies_cmd; repl_cmd;
          ]))
