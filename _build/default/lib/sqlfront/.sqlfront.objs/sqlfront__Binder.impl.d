lib/sqlfront/binder.ml: Ast Attr Expr Fmt Hashtbl List Parser Plan Pred Printf Relalg String
