(** In-memory materialized relations: a schema of qualified column
    names and an array of rows. *)

open Relalg

type resolver
(** Precomputed attribute→position index over a schema. *)

val resolver : Attr.t list -> resolver

val resolve : resolver -> Attr.t -> int option
(** Column position: exact match first (last occurrence wins on
    duplicates), then a unique match on the bare column name. *)

val lookup_of_schema : Attr.t list -> Attr.t -> Value.t array -> Value.t
(** [lookup_of_schema schema] is an accessor over rows of [schema]
    suitable for [Pred.eval] / [Expr.eval] without materializing a
    relation; unknown attributes read as NULL. The index is built once,
    at partial application. *)

type t

val make : schema:Attr.t list -> rows:Value.t array array -> t
(** Raises [Invalid_argument] if some row's arity differs from the
    schema. *)

val empty : schema:Attr.t list -> t
val schema : t -> Attr.t list
val rows : t -> Value.t array array
val cardinality : t -> int

val find_index : t -> Attr.t -> int option
(** Column position: exact match first, then a unique match on the bare
    column name. *)

val lookup_fn : t -> Attr.t -> Value.t array -> Value.t
(** A caching accessor suitable for [Pred.eval] / [Expr.eval]; unknown
    attributes read as NULL. *)

val order_by : t -> (Attr.t * bool) list -> t
(** Stable sort by (attribute, descending?) keys; unknown attributes
    read as NULL and sort first. *)

val take : t -> int -> t
(** First [n] rows. *)

val byte_size : t -> int
(** Total serialized size — what a SHIP of this relation moves. *)

val pp : ?max_rows:int -> Format.formatter -> t -> unit
val to_csv : t -> string
