(* Deterministic logical rewrites applied before memo-based exploration:
   selection pushdown and column pruning (the paper's "masking via
   projection" — projecting restricted attributes out before data ever
   moves, cf. Figure 1(b) and §7.2). *)

open Relalg

let output_attrs ~table_cols plan = Plan.output_cols ~table_cols plan

let attr_set xs = List.fold_left (fun s a -> Attr.Set.add a s) Attr.Set.empty xs

(* --- selection pushdown --- *)

(* Push the conjuncts in [preds] as deep as possible into [plan]; any
   conjunct that cannot sink past an operator is applied just above
   it. *)
let rec push ~table_cols (plan : Plan.t) (preds : Pred.t list) : Plan.t =
  match plan with
  | Plan.Scan _ -> wrap plan preds
  | Plan.Select (p, i) -> push ~table_cols i (Pred.conjuncts p @ preds)
  | Plan.Project (items, i) ->
    (* rewrite conjuncts through the projection when possible *)
    let env =
      List.fold_left (fun m (e, n) -> Attr.Map.add n e m) Attr.Map.empty items
    in
    let rewritable, blocked =
      List.partition
        (fun c ->
          Attr.Set.for_all (fun a -> Attr.Map.mem a env) (Pred.cols c))
        preds
    in
    let rewritten = List.map (Pred.subst env) rewritable in
    wrap (Plan.Project (items, push ~table_cols i rewritten)) blocked
  | Plan.Join (p, l, r) ->
    let pool = Pred.conjuncts p @ preds in
    let lcols = attr_set (output_attrs ~table_cols l) in
    let rcols = attr_set (output_attrs ~table_cols r) in
    let lp, rest =
      List.partition (fun c -> Attr.Set.subset (Pred.cols c) lcols) pool
    in
    let rp, jp = List.partition (fun c -> Attr.Set.subset (Pred.cols c) rcols) rest in
    Plan.Join (Pred.conj_all jp, push ~table_cols l lp, push ~table_cols r rp)
  | Plan.Aggregate { keys; aggs; input } ->
    (* conjuncts over group keys commute with the aggregation *)
    let keyset = attr_set keys in
    let sinkable, blocked =
      List.partition (fun c -> Attr.Set.subset (Pred.cols c) keyset) preds
    in
    wrap
      (Plan.Aggregate { keys; aggs; input = push ~table_cols input sinkable })
      blocked
  | Plan.Union xs -> wrap (Plan.Union (List.map (fun x -> push ~table_cols x []) xs)) preds

and wrap plan = function
  | [] -> plan
  | preds -> Plan.Select (Pred.conj_all preds, plan)

let pushdown ~table_cols plan = push ~table_cols plan []

(* --- column pruning --- *)

(* Wrap every scan in a projection keeping only the columns the rest of
   the plan actually uses. This is the compliance-critical masking step:
   a restricted column that is never referenced disappears before any
   SHIP can expose it. *)
let prune_columns ~table_cols (plan : Plan.t) : Plan.t =
  (* all attributes referenced anywhere above the scans *)
  let used = ref Attr.Set.empty in
  let use_set s = used := Attr.Set.union s !used in
  let rec collect = function
    | Plan.Scan _ -> ()
    | Plan.Select (p, i) ->
      use_set (Pred.cols p);
      collect i
    | Plan.Project (items, i) ->
      List.iter (fun (e, _) -> use_set (Expr.cols e)) items;
      collect i
    | Plan.Join (p, l, r) ->
      use_set (Pred.cols p);
      collect l;
      collect r
    | Plan.Aggregate { keys; aggs; input } ->
      use_set (attr_set keys);
      List.iter (fun (a : Expr.agg) -> use_set (Expr.cols a.arg)) aggs;
      collect input
    | Plan.Union xs -> List.iter collect xs
  in
  collect plan;
  (* also keep the plan's own outputs (a bare scan as root, etc.) *)
  use_set (attr_set (output_attrs ~table_cols plan));
  let rec rewrite = function
    | Plan.Scan { table; alias } as scan ->
      let cols = table_cols table in
      let needed =
        List.filter (fun c -> Attr.Set.mem (Attr.make ~rel:alias ~name:c) !used) cols
      in
      if List.length needed = List.length cols || needed = [] then scan
      else
        Plan.Project
          ( List.map
              (fun c ->
                let a = Attr.make ~rel:alias ~name:c in
                (Expr.Col a, a))
              needed,
            scan )
    | Plan.Select (p, i) -> Plan.Select (p, rewrite i)
    | Plan.Project (items, i) -> Plan.Project (items, rewrite i)
    | Plan.Join (p, l, r) -> Plan.Join (p, rewrite l, rewrite r)
    | Plan.Aggregate { keys; aggs; input } -> Plan.Aggregate { keys; aggs; input = rewrite input }
    | Plan.Union xs -> Plan.Union (List.map rewrite xs)
  in
  rewrite plan

let normalize ~table_cols plan =
  plan |> pushdown ~table_cols |> prune_columns ~table_cols

(* --- canonicalization (memo group identity) --- *)

(* A canonical representative for a logical expression: join trees are
   flattened and rebuilt left-deep over leaves sorted by their printed
   form, with the full join predicate at the top join; conjunct lists
   are sorted. Two expressions produced by commutativity/associativity
   rewrites therefore share one representative. *)
let rec canon (plan : Plan.t) : Plan.t =
  match plan with
  | Plan.Scan _ -> plan
  | Plan.Select (p, i) ->
    let conj =
      Pred.conjuncts p |> List.sort Pred.compare_pred |> Pred.conj_all
    in
    Plan.Select (conj, canon i)
  | Plan.Project (items, i) -> Plan.Project (items, canon i)
  | Plan.Join _ ->
    let leaves, preds = flatten plan in
    let leaves = List.sort Plan.compare (List.map canon leaves) in
    let preds = List.sort Pred.compare_pred preds in
    (match leaves with
    | [] -> assert false
    | first :: rest ->
      let joined =
        List.fold_left (fun acc leaf -> Plan.Join (Pred.True, acc, leaf)) first rest
      in
      (* attach the whole predicate at the topmost join *)
      (match joined with
      | Plan.Join (_, l, r) -> Plan.Join (Pred.conj_all preds, l, r)
      | other -> wrap other preds))
  | Plan.Aggregate { keys; aggs; input } ->
    let keys = List.sort Attr.compare keys in
    let aggs =
      List.sort (fun (a : Expr.agg) (b : Expr.agg) -> String.compare a.alias b.alias) aggs
    in
    Plan.Aggregate { keys; aggs; input = canon input }
  | Plan.Union xs -> Plan.Union (List.sort Plan.compare (List.map canon xs))

and flatten = function
  | Plan.Join (p, l, r) ->
    let ll, lp = flatten l in
    let rl, rp = flatten r in
    (ll @ rl, Pred.conjuncts p @ lp @ rp)
  | other -> ([ other ], [])
