examples/regulator.ml: Exec Fmt List Optimizer Policy Tpch
