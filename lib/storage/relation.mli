(** In-memory materialized relations: a schema of qualified column
    names over column-major storage ({!Column.t} per attribute), with
    a cached row-view shim for the row-at-a-time engines. A relation
    can be built from either representation; the other is materialized
    lazily on first access. *)

open Relalg

type resolver
(** Precomputed attribute→position index over a schema. *)

val resolver : Attr.t list -> resolver

val resolve : resolver -> Attr.t -> int option
(** Column position: exact match first (last occurrence wins on
    duplicates), then a unique match on the bare column name. *)

val lookup_of_schema : Attr.t list -> Attr.t -> Value.t array -> Value.t
(** [lookup_of_schema schema] is an accessor over rows of [schema]
    suitable for [Pred.eval] / [Expr.eval] without materializing a
    relation; unknown attributes read as NULL. The index is built once,
    at partial application. *)

type t

val make : schema:Attr.t list -> rows:Value.t array array -> t
(** Build from rows (the row view is the stored representation; columns
    materialize on first {!cols}). Raises [Invalid_argument] if some
    row's arity differs from the schema. *)

val of_cols : schema:Attr.t list -> card:int -> Column.t array -> t
(** Build from columns. [card] is the row count (needed explicitly for
    width-0 relations). Raises [Invalid_argument] on arity or
    cardinality mismatch. *)

val paged : schema:Attr.t list -> card:int -> load:(unit -> Column.t array) -> t
(** A disk-backed relation: [load ()] pages the full column set in (in
    schema order, each of length [card]). Paged relations never cache a
    materialized view — every {!rows}/{!cols} access re-reads through
    [load], so the resident working set is only what operators
    materialize, not the base table. See {!Segment.relation}. *)

val is_paged : t -> bool

val empty : schema:Attr.t list -> t
val schema : t -> Attr.t list

val rows : t -> Value.t array array
(** The row-view shim: materialized from the columns on first access
    and cached. Treat the result as read-only. *)

val cols : t -> Column.t array
(** Column-major view: materialized from the rows on first access and
    cached. Stored base tables are columnarized up front by
    {!Database.add}. *)

val columnarize : t -> unit
(** Force the column-major view to be materialized now. No-op on paged
    relations, which deliberately never cache. *)

val cardinality : t -> int

val find_index : t -> Attr.t -> int option
(** Column position: exact match first, then a unique match on the bare
    column name. *)

val lookup_fn : t -> Attr.t -> Value.t array -> Value.t
(** A caching accessor suitable for [Pred.eval] / [Expr.eval]; unknown
    attributes read as NULL. *)

val order_by : t -> (Attr.t * bool) list -> t
(** Stable sort by (attribute, descending?) keys; unknown attributes
    read as NULL and sort first. *)

val take : t -> int -> t
(** First [n] rows. *)

val byte_size : t -> int
(** Total serialized size — what a SHIP of this relation moves. *)

val pp : ?max_rows:int -> Format.formatter -> t -> unit
val to_csv : t -> string
