(* Abstract syntax produced by the parser, prior to name resolution.
   Column references may be unqualified; the binder resolves them. *)

open Relalg

type select_item =
  | Scalar_item of Expr.scalar * string option  (* expr [AS alias] *)
  | Agg_item of Expr.agg_fn * Expr.scalar * string option  (* fn(expr) [AS alias] *)

type query = {
  select : select_item list;
  from : (string * string) list;  (* (table, alias); alias defaults to table *)
  where : Pred.t;
  group_by : Attr.t list;
  having : Pred.t;  (* over group keys and aggregate aliases *)
  order_by : (Attr.t * bool) list;  (* column, descending? — result decoration *)
  limit : int option;
}

(* Policy expression statement (§4):
     ship <attrs|*> [as aggregates f1, ...] from [db.]table [alias]
       to <locs|*> [where cond] [group by attrs] *)
type attr_spec = All_attrs | Attr_list of string list
type loc_spec = All_locs | Loc_list of string list

type policy_stmt = {
  ship_attrs : attr_spec;
  aggregates : Expr.agg_fn list;  (* empty for basic expressions *)
  p_db : string option;
  p_table : string;
  p_alias : string option;
  to_locs : loc_spec;
  p_where : Pred.t;
  p_group_by : string list;
}

let item_alias i =
  match i with
  | Scalar_item (Expr.Col a, None) -> Some a.Attr.name
  | Scalar_item (_, alias) -> alias
  | Agg_item (fn, arg, None) -> (
    match arg with
    | Expr.Col a -> Some (Expr.agg_fn_to_string fn ^ "_" ^ a.Attr.name)
    | _ -> None)
  | Agg_item (_, _, alias) -> alias

let is_aggregate_query q =
  q.group_by <> []
  || List.exists (function Agg_item _ -> true | Scalar_item _ -> false) q.select
