(* Deterministic multi-session scheduler over the simulated clock.
   Discrete-event: the session with the smallest ready time acts next,
   ties broken by a splitmix64 stream seeded from the run seed (the
   fault scheduler's discipline), so a contended run replays
   bit-for-bit from its seed. See scheduler.mli and docs/SERVICE.md. *)

type env = {
  catalog : Catalog.t;
  database : Storage.Database.t option;
  cache : Cgqp.Plan_cache.t option;
  template : bool option;
  feedback : Cgqp.Feedback.t option;
  faults : Catalog.Network.Fault.schedule;
  retry : Exec.Interp.retry_policy;
  engine : Exec.Engine.t;
  resolve_query : string -> string;
  resolve_policy_set : string -> string list option;
}

let env ?database ?cache ?template ?feedback
    ?(faults = Catalog.Network.Fault.empty)
    ?(retry = Exec.Interp.default_retry) ?engine ?(resolve_query = fun s -> s)
    ?(resolve_policy_set = fun _ -> None) ~catalog () =
  let engine =
    match engine with Some e -> e | None -> Exec.Engine.default ()
  in
  {
    catalog;
    database;
    cache;
    template;
    feedback;
    faults;
    retry;
    engine;
    resolve_query;
    resolve_policy_set;
  }

let max_queue_retries = 100

type cache_flag = Hit | Miss | Off

type outcome =
  | Done of {
      rows : int;
      shipped_bytes : int;
      makespan_ms : float;
      failovers : int;
      cache : cache_flag;
      plan_sig : string;
      result_sig : string;
    }
  | Failed of Cgqp.error
  | Denied of { reason : Admission.reason; retries : int }

type stmt_record = {
  sid : string;
  tenant : string;
  seq : int;
  sql : string;
  submitted_ms : float;
  started_ms : float;
  finished_ms : float;
  outcome : outcome;
}

type report = {
  seed : int;
  statements : stmt_record list;
  makespan_ms : float;
  ok : int;
  rejected : int;
  unsatisfiable : int;
  denied : int;
  failed : int;
  cache : Cgqp.Plan_cache.stats option;
  p50_ms : float;
  p95_ms : float;
}

let c_statements = Obs.Metrics.counter "cgqp_service_statements_total"
let h_latency = Obs.Metrics.histogram "cgqp_service_latency_ms"

(* Live session state of the event loop. *)
type live = {
  idx : int;  (* position in the script's session list *)
  spec : Script.session_spec;
  cg : Cgqp.session;
  mutable actions : Script.action list;
  mutable ready : float;  (* simulated time of the next action *)
  mutable seq : int;  (* submitted-statement counter *)
  mutable retries : int;  (* re-admissions of the queued head statement *)
  mutable submitted_at : float option;  (* first admission attempt of the head *)
}

(* nearest-rank percentile over Done latencies *)
let percentile p xs =
  match xs with
  | [] -> 0.
  | _ ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let hit_rate r =
  match r.cache with
  | Some { Cgqp.Plan_cache.hits; misses; _ } when hits + misses > 0 ->
    float_of_int hits /. float_of_int (hits + misses)
  | _ -> 0.

let template_hit_rate r =
  match r.cache with
  | Some { Cgqp.Plan_cache.template_hits = th; template_misses = tm; _ }
    when th + tm > 0 ->
    float_of_int th /. float_of_int (th + tm)
  | _ -> 0.

(* The recording pass of the parallel pipeline: replay one session's
   script in isolation, on a private session replica, executing every
   Submit with {!Cgqp.run_recorded} and collecting the memos in submit
   order. Sound because a run's outcome is a pure function of
   session-local state — which this replica reconstructs exactly, since
   the script's non-Submit actions (policy churn, mode switches) are
   positional within the session — and because the plan cache is
   outcome-transparent, so the replica's private cache (intra-session
   reuse only; the shared cache belongs to the sequential pass) changes
   nothing observable. Admission is ignored here: statements the event
   loop later denies are executed speculatively and their memos simply
   never consumed ([Cgqp.run] has no session-state effects, so the
   speculation is invisible to everything but wall-clock and executor
   work counters — see docs/PARALLELISM.md). *)
let record_session ~env (spec : Script.session_spec) : Cgqp.memo array =
  let cg = Cgqp.create ~catalog:env.catalog () in
  Option.iter (Cgqp.attach_database cg) env.database;
  Cgqp.set_faults cg env.faults;
  Cgqp.set_retry cg env.retry;
  Cgqp.set_engine cg env.engine;
  Option.iter (Cgqp.set_template_cache cg) env.template;
  if Option.is_some env.cache then
    Cgqp.set_plan_cache cg (Some (Cgqp.Plan_cache.create ()));
  let memos = ref [] in
  List.iter
    (fun action ->
      match action with
      | Script.Submit raw ->
        let sql = env.resolve_query raw in
        let _result, memo = Cgqp.run_recorded cg sql in
        memos := memo :: !memos
      | Script.Add_policy text -> Cgqp.add_policies cg [ text ]
      | Script.Set_policy_set name -> (
        match env.resolve_policy_set name with
        | Some texts ->
          Cgqp.set_policy_catalog cg (Policy.Pcatalog.of_texts env.catalog texts)
        | None -> invalid_arg (Printf.sprintf "unknown policy set %S" name))
      | Script.Clear_policies -> Cgqp.clear_policies cg
      | Script.Set_mode m -> Cgqp.set_mode cg m
      | Script.Wait _ -> ())
    spec.Script.actions;
  Array.of_list (List.rev !memos)

let run ~env ?seed ?domains (script : Script.t) : report =
  let domains =
    match domains with Some d -> d | None -> Pool.default_domains ()
  in
  if domains < 1 then invalid_arg "Scheduler.run: domains must be positive";
  (* Cardinality feedback replaces every session's catalog mid-run (new
     stamp), which would invalidate pass-1 memos wholesale — so a
     feedback-driven run always executes inline. *)
  let domains = if Option.is_some env.feedback then 1 else domains in
  let seed =
    match seed with
    | Some s -> s
    | None -> (
      match script.Script.seed with
      | Some s -> s
      | None -> Storage.Seed.resolve ())
  in
  (* With more than one domain, run the two-pass pipeline: pass 1
     records every session in parallel on the pool (each task is one
     whole session, statically assigned to worker idx mod domains);
     pass 2 is the unchanged discrete-event loop below, with each
     admitted Submit served by {!Cgqp.run_replay} from its session's
     memo at index [s.seq] instead of a live run. Replay re-enacts the
     exact shared-plan-cache conversation, so records, digests, cache
     flags and report are byte-identical to [domains = 1] (the qcheck
     property in test/service locks this in). *)
  let memos =
    if domains = 1 then [||]
    else
      Pool.map ~domains
        (Array.of_list
           (List.map
              (fun spec () -> record_session ~env spec)
              script.Script.sessions))
  in
  let submit_exec (s : live) sql =
    if domains = 1 then Cgqp.run s.cg sql
    else
      let session_memos = memos.(s.idx) in
      if s.seq < Array.length session_memos then
        Cgqp.run_replay s.cg session_memos.(s.seq)
      else
        (* unreachable: pass 1 recorded every Submit of the script *)
        Cgqp.run s.cg sql
  in
  let prng = Storage.Prng.create ~seed in
  let adm = Admission.create () in
  List.iter
    (fun (tenant, quota) -> Admission.set_quota adm ~tenant quota)
    script.Script.tenants;
  let mk_live idx spec =
    let cg = Cgqp.create ~catalog:env.catalog () in
    Option.iter (Cgqp.attach_database cg) env.database;
    Cgqp.set_faults cg env.faults;
    Cgqp.set_retry cg env.retry;
    Cgqp.set_engine cg env.engine;
    Option.iter (Cgqp.set_template_cache cg) env.template;
    Cgqp.set_plan_cache cg env.cache;
    {
      idx;
      spec;
      cg;
      actions = spec.Script.actions;
      ready = 0.;
      seq = 0;
      retries = 0;
      submitted_at = None;
    }
  in
  let sessions = List.mapi mk_live script.Script.sessions in
  let cache_before = Option.map Cgqp.Plan_cache.stats env.cache in
  let records = ref [] (* reversed *) in
  let makespan = ref 0. in
  let record r =
    records := r :: !records;
    makespan := Float.max !makespan r.finished_ms;
    Obs.Metrics.inc c_statements
  in
  (* cache flag from the shared cache's counter movement around one
     statement: a pure [Hit] did not run the optimizer at all *)
  let with_cache_flag f =
    match env.cache with
    | None ->
      let r = f () in
      (r, Off)
    | Some c ->
      let s0 = Cgqp.Plan_cache.stats c in
      let r = f () in
      let s1 = Cgqp.Plan_cache.stats c in
      let flag =
        if s1.Cgqp.Plan_cache.misses = s0.Cgqp.Plan_cache.misses
           && s1.Cgqp.Plan_cache.hits > s0.Cgqp.Plan_cache.hits
        then Hit
        else Miss
      in
      (r, flag)
  in
  let exec_submit (s : live) raw =
    let now = s.ready in
    let sql = env.resolve_query raw in
    let tenant = s.spec.Script.tenant in
    let submitted = Option.value s.submitted_at ~default:now in
    let finish_stmt outcome ~finished =
      record
        {
          sid = s.spec.Script.sid;
          tenant;
          seq = s.seq;
          sql;
          submitted_ms = submitted;
          started_ms = now;
          finished_ms = finished;
          outcome;
        };
      s.seq <- s.seq + 1;
      s.retries <- 0;
      s.submitted_at <- None;
      s.actions <- List.tl s.actions
    in
    match Admission.admit adm ~tenant ~now with
    | Admission.Deny { reason; retry_at } -> (
      let quota = Admission.quota_of adm ~tenant in
      match retry_at with
      | Some t
        when quota.Admission.on_deny = Admission.Queue
             && s.retries < max_queue_retries && t > now ->
        (* stay at the head of the queue; re-attempt when the denial
           can lift *)
        s.retries <- s.retries + 1;
        s.submitted_at <- Some submitted;
        s.ready <- t
      | _ -> finish_stmt (Denied { reason; retries = s.retries }) ~finished:now)
    | Admission.Admit -> (
      let result, cache = with_cache_flag (fun () -> submit_exec s sql) in
      match result with
      | Error e ->
        (* optimizer-time failures cost no simulated time: the plan
           never executed *)
        finish_stmt (Failed e) ~finished:now
      | Ok r ->
        let makespan_ms = r.Cgqp.makespan_ms in
        let finished = now +. makespan_ms in
        Admission.started adm ~tenant ~finish_ms:finished;
        Admission.charge adm ~tenant ~now ~bytes:r.Cgqp.shipped_bytes;
        (* cardinality feedback (shared store): observe the executed
           scans; on a fold, install the one corrected catalog into
           every live session — they must stay in stamp lockstep for
           the shared cache's keys to make sense — and bump the shared
           epoch exactly once *)
        (match env.feedback with
        | None -> ()
        | Some fb -> (
          Cgqp.Feedback.observe fb ~cat:(Cgqp.catalog s.cg) ~plan:r.Cgqp.plan
            ~profile:r.Cgqp.interp.Exec.Interp.profile;
          match Cgqp.Feedback.fold fb (Cgqp.catalog s.cg) with
          | None -> ()
          | Some cat' ->
            List.iter (fun l -> Cgqp.set_catalog l.cg cat') sessions;
            Option.iter
              (Cgqp.Plan_cache.bump_epoch ~reason:"feedback")
              env.cache));
        Obs.Metrics.observe h_latency (finished -. submitted);
        finish_stmt
          (Done
             {
               rows = Storage.Relation.cardinality r.Cgqp.relation;
               shipped_bytes = r.Cgqp.shipped_bytes;
               makespan_ms;
               failovers = r.Cgqp.recovery.Cgqp.failovers;
               cache;
               plan_sig = Digest.to_hex (Digest.string (Exec.Pplan.to_string r.Cgqp.plan));
               result_sig =
                 Digest.to_hex (Digest.string (Storage.Relation.to_csv r.Cgqp.relation));
             })
          ~finished;
        s.ready <- finished)
  in
  let exec_action (s : live) = function
    | Script.Submit raw -> exec_submit s raw
    | Script.Add_policy text ->
      Cgqp.add_policies s.cg [ text ];
      s.actions <- List.tl s.actions
    | Script.Set_policy_set name -> (
      match env.resolve_policy_set name with
      | Some texts ->
        Cgqp.set_policy_catalog s.cg (Policy.Pcatalog.of_texts env.catalog texts);
        s.actions <- List.tl s.actions
      | None -> invalid_arg (Printf.sprintf "unknown policy set %S" name))
    | Script.Clear_policies ->
      Cgqp.clear_policies s.cg;
      s.actions <- List.tl s.actions
    | Script.Set_mode m ->
      Cgqp.set_mode s.cg m;
      s.actions <- List.tl s.actions
    | Script.Wait ms ->
      s.ready <- s.ready +. ms;
      s.actions <- List.tl s.actions
  in
  let rec loop () =
    let alive = List.filter (fun s -> s.actions <> []) sessions in
    match alive with
    | [] -> ()
    | _ ->
      let min_ready =
        List.fold_left (fun acc s -> Float.min acc s.ready) infinity alive
      in
      let ties = List.filter (fun s -> s.ready = min_ready) alive in
      let s =
        match ties with
        | [ s ] -> s
        | ties -> List.nth ties (Storage.Prng.int prng (List.length ties))
      in
      exec_action s (List.hd s.actions);
      loop ()
  in
  loop ();
  let statements = List.rev !records in
  let count f = List.length (List.filter f statements) in
  let cache =
    match (cache_before, env.cache) with
    | Some b, Some c ->
      let a = Cgqp.Plan_cache.stats c in
      Some
        {
          Cgqp.Plan_cache.hits = a.Cgqp.Plan_cache.hits - b.Cgqp.Plan_cache.hits;
          misses = a.Cgqp.Plan_cache.misses - b.Cgqp.Plan_cache.misses;
          invalidations =
            a.Cgqp.Plan_cache.invalidations - b.Cgqp.Plan_cache.invalidations;
          evictions = a.Cgqp.Plan_cache.evictions - b.Cgqp.Plan_cache.evictions;
          template_hits =
            a.Cgqp.Plan_cache.template_hits - b.Cgqp.Plan_cache.template_hits;
          template_misses =
            a.Cgqp.Plan_cache.template_misses
            - b.Cgqp.Plan_cache.template_misses;
        }
    | _ -> None
  in
  let latencies =
    List.filter_map
      (fun r ->
        match r.outcome with
        | Done _ -> Some (r.finished_ms -. r.submitted_ms)
        | _ -> None)
      statements
  in
  {
    seed;
    statements;
    makespan_ms = !makespan;
    ok = count (fun r -> match r.outcome with Done _ -> true | _ -> false);
    rejected =
      count (fun r -> match r.outcome with Failed (`Rejected _) -> true | _ -> false);
    unsatisfiable =
      count (fun r ->
          match r.outcome with Failed (`Unsatisfiable _) -> true | _ -> false);
    denied = count (fun r -> match r.outcome with Denied _ -> true | _ -> false);
    failed =
      count (fun r ->
          match r.outcome with
          | Failed (`Parse _ | `Bind _) -> true
          | _ -> false);
    cache;
    p50_ms = percentile 50. latencies;
    p95_ms = percentile 95. latencies;
  }

let outcome_label = function
  | Done { cache = Hit; _ } -> "ok(hit)"
  | Done { cache = Miss; _ } -> "ok(miss)"
  | Done { cache = Off; _ } -> "ok"
  | Failed (`Rejected _) -> "rejected"
  | Failed (`Unsatisfiable _) -> "unsatisfiable"
  | Failed (`Parse _) -> "parse-error"
  | Failed (`Bind _) -> "bind-error"
  | Denied _ -> "denied"

let pp_report ppf r =
  Fmt.pf ppf "serve report (seed %d): %d statements in %.2f simulated ms@."
    r.seed (List.length r.statements) r.makespan_ms;
  List.iter
    (fun s ->
      Fmt.pf ppf "  [%8.2f -> %8.2f] %s/%s #%d %-13s %s@." s.started_ms s.finished_ms
        s.tenant s.sid s.seq (outcome_label s.outcome)
        (match s.outcome with
        | Done d ->
          Fmt.str "%d rows, %d bytes shipped, %.2f ms%s" d.rows d.shipped_bytes
            d.makespan_ms
            (if d.failovers > 0 then Fmt.str " (%d failovers)" d.failovers else "")
        | Failed e -> Cgqp.error_to_string e
        | Denied { reason; retries } ->
          Fmt.str "%s after %d retries" (Admission.reason_to_string reason) retries))
    r.statements;
  Fmt.pf ppf "  ok %d, rejected %d, unsatisfiable %d, denied %d, errors %d@." r.ok
    r.rejected r.unsatisfiable r.denied r.failed;
  (match r.cache with
  | Some c ->
    let total = c.Cgqp.Plan_cache.hits + c.Cgqp.Plan_cache.misses in
    Fmt.pf ppf "  cache: %d/%d hits (%.1f%%), %d invalidations, %d evictions@."
      c.Cgqp.Plan_cache.hits total
      (100. *. hit_rate r)
      c.Cgqp.Plan_cache.invalidations c.Cgqp.Plan_cache.evictions;
    let tlooks =
      c.Cgqp.Plan_cache.template_hits + c.Cgqp.Plan_cache.template_misses
    in
    if tlooks > 0 then
      Fmt.pf ppf "  template: %d/%d hits (%.1f%%)@."
        c.Cgqp.Plan_cache.template_hits tlooks
        (100. *. template_hit_rate r)
  | None -> Fmt.pf ppf "  cache: off@.");
  Fmt.pf ppf "  latency p50 %.2f ms, p95 %.2f ms@." r.p50_ms r.p95_ms

let report_to_json r =
  let open Obs.Json in
  let stmt s =
    Obj
      [
        ("sid", Str s.sid);
        ("tenant", Str s.tenant);
        ("seq", Num (float_of_int s.seq));
        ("sql", Str s.sql);
        ("submitted_ms", Num s.submitted_ms);
        ("started_ms", Num s.started_ms);
        ("finished_ms", Num s.finished_ms);
        ("outcome", Str (outcome_label s.outcome));
        ( "detail",
          match s.outcome with
          | Done d ->
            Obj
              [
                ("rows", Num (float_of_int d.rows));
                ("shipped_bytes", Num (float_of_int d.shipped_bytes));
                ("makespan_ms", Num d.makespan_ms);
                ("failovers", Num (float_of_int d.failovers));
                ("plan_sig", Str d.plan_sig);
                ("result_sig", Str d.result_sig);
              ]
          | Failed e -> Str (Cgqp.error_to_string e)
          | Denied { reason; retries } ->
            Obj
              [
                ("reason", Str (Admission.reason_to_string reason));
                ("retries", Num (float_of_int retries));
              ] );
      ]
  in
  Obj
    [
      ("seed", Num (float_of_int r.seed));
      ("makespan_ms", Num r.makespan_ms);
      ("ok", Num (float_of_int r.ok));
      ("rejected", Num (float_of_int r.rejected));
      ("unsatisfiable", Num (float_of_int r.unsatisfiable));
      ("denied", Num (float_of_int r.denied));
      ("failed", Num (float_of_int r.failed));
      ( "cache",
        match r.cache with
        | None -> Null
        | Some c ->
          Obj
            [
              ("hits", Num (float_of_int c.Cgqp.Plan_cache.hits));
              ("misses", Num (float_of_int c.Cgqp.Plan_cache.misses));
              ("invalidations", Num (float_of_int c.Cgqp.Plan_cache.invalidations));
              ("evictions", Num (float_of_int c.Cgqp.Plan_cache.evictions));
              ("hit_rate", Num (hit_rate r));
              ("template_hits", Num (float_of_int c.Cgqp.Plan_cache.template_hits));
              ( "template_misses",
                Num (float_of_int c.Cgqp.Plan_cache.template_misses) );
              ("template_hit_rate", Num (template_hit_rate r));
            ] );
      ("p50_ms", Num r.p50_ms);
      ("p95_ms", Num r.p95_ms);
      ("statements", Arr (List.map stmt r.statements));
    ]
