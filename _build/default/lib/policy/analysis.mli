(** Static analysis of a policy catalog, for data officers: per-column
    coverage matrices, redundant expressions, and no-op grants. Pure
    tooling over the catalog — evaluation is unaffected. *)

open Relalg
module Locset = Catalog.Location.Set

type column_coverage = {
  column : string;
  raw_unconditional : Locset.t;
      (** sites reachable raw with no row condition *)
  raw_conditional : Locset.t;
      (** additional sites reachable raw under some row condition *)
  aggregate_only : (Expr.agg_fn * Locset.t) list;
      (** sites reachable only in aggregated form, per function *)
}

val coverage : Catalog.t -> Pcatalog.t -> string -> column_coverage list
(** One row per column of the table. *)

val subsumes : by:Expression.t -> Expression.t -> bool
(** Does [by] grant at least everything the other expression grants
    (columns, locations, functions, grouping) under conditions at least
    as weak? Sound: errs towards [false]. *)

val redundant : Pcatalog.t -> (Expression.t * Expression.t) list
(** Expressions subsumed by another expression, with a witness. *)

val dead : Catalog.t -> Pcatalog.t -> Expression.t list
(** Grants that only name the table's own home site. *)

val pp_column_coverage : Format.formatter -> column_coverage -> unit
val pp_report : Format.formatter -> Catalog.t * Pcatalog.t -> unit
