(* Deterministic TPC-H-shaped data generator. Follows dbgen's value
   domains (names, segments, types, date ranges, pricing rules) closely
   enough that query selectivities behave like the original, while
   staying small and fully seeded. *)

open Relalg
module Prng = Storage.Prng

let regions = [ "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" ]

(* nation -> region index, the standard dbgen mapping *)
let nations =
  [
    ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1); ("EGYPT", 4);
    ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3); ("INDIA", 2); ("INDONESIA", 2);
    ("IRAN", 4); ("IRAQ", 4); ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0);
    ("MOROCCO", 0); ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
    ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3); ("UNITED KINGDOM", 3);
    ("UNITED STATES", 1);
  ]

let segments = [ "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" ]
let priorities = [ "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" ]
let type_syl1 = [ "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" ]
let type_syl2 = [ "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" ]
let type_syl3 = [ "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" ]
let containers = [ "SM CASE"; "LG BOX"; "MED BAG"; "JUMBO JAR"; "WRAP PACK" ]
let instructs = [ "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" ]
let modes = [ "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" ]
let part_words = [ "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque";
                   "black"; "blanched"; "green"; "ivory"; "lemon"; "linen" ]

let vi i = Value.Int i
let vf f = Value.Float (Float.round (f *. 100.) /. 100.)
let vs s = Value.Str s
let vd d = Value.Date d

let day s = Option.get (Value.date_of_string s)
let date_lo = day "1992-01-01"
let date_hi = day "1998-08-02"

type tables = {
  region : Value.t array array;
  nation : Value.t array array;
  supplier : Value.t array array;
  part : Value.t array array;
  partsupp : Value.t array array;
  customer : Value.t array array;
  orders : Value.t array array;
  lineitem : Value.t array array;
}

let generate ?seed ~sf () : tables =
  let g = Prng.create ~seed:(Storage.Seed.resolve ?cli:seed ()) in
  let n_supp = Schema.rows_at sf "supplier" in
  let n_cust = Schema.rows_at sf "customer" in
  let n_part = Schema.rows_at sf "part" in
  let n_ord = Schema.rows_at sf "orders" in
  let region =
    Array.of_list
      (List.mapi (fun i r -> [| vi i; vs r; vs "r" |]) regions)
  in
  let nation =
    Array.of_list
      (List.mapi (fun i (n, r) -> [| vi i; vs n; vi r; vs "n" |]) nations)
  in
  let supplier =
    Array.init n_supp (fun i ->
        [|
          vi (i + 1);
          vs (Printf.sprintf "Supplier#%09d" (i + 1));
          vs (Printf.sprintf "addr-s%d" (i + 1));
          vi (Prng.int g 25);
          vs (Printf.sprintf "%02d-%07d" (10 + Prng.int g 25) (Prng.int g 9_999_999));
          vf (float_of_int (Prng.range g (-99_900) 999_900) /. 100.);
          vs "s";
        |])
  in
  let part_price i = 90_000. +. (float_of_int ((i / 10) mod 20001)) +. (100. *. float_of_int (i mod 1000)) in
  let part =
    Array.init n_part (fun i ->
        let key = i + 1 in
        [|
          vi key;
          vs (Prng.pick g part_words ^ " " ^ Prng.pick g part_words);
          vs (Printf.sprintf "Manufacturer#%d" (1 + Prng.int g 5));
          vs (Printf.sprintf "Brand#%d%d" (1 + Prng.int g 5) (1 + Prng.int g 5));
          vs (Prng.pick g type_syl1 ^ " " ^ Prng.pick g type_syl2 ^ " " ^ Prng.pick g type_syl3);
          vi (1 + Prng.int g 50);
          vs (Prng.pick g containers);
          vf (part_price key /. 100.);
          vs "p";
        |])
  in
  let partsupp =
    Array.init (n_part * 4) (fun i ->
        let pk = (i / 4) + 1 in
        let sk = 1 + ((pk + (i mod 4 * ((n_supp / 4) + 1))) mod n_supp) in
        [|
          vi pk;
          vi sk;
          vi (1 + Prng.int g 9999);
          vf (1. +. Prng.float g 999.);
          vs "ps";
        |])
  in
  let customer =
    Array.init n_cust (fun i ->
        [|
          vi (i + 1);
          vs (Printf.sprintf "Customer#%09d" (i + 1));
          vs (Printf.sprintf "addr-c%d" (i + 1));
          vi (Prng.int g 25);
          vs (Printf.sprintf "%02d-%07d" (10 + Prng.int g 25) (Prng.int g 9_999_999));
          vf (float_of_int (Prng.range g (-99_900) 999_900) /. 100.);
          vs (Prng.pick g segments);
          vs "c";
        |])
  in
  let orders = Array.make n_ord [||] in
  let lineitems = ref [] in
  let n_lines = ref 0 in
  for i = 0 to n_ord - 1 do
    let okey = i + 1 in
    let ckey = 1 + Prng.int g n_cust in
    let odate = Prng.range g date_lo (date_hi - 151) in
    let lines = 1 + Prng.int g 7 in
    let total = ref 0. in
    for ln = 1 to lines do
      let pkey = 1 + Prng.int g n_part in
      let skey = 1 + ((pkey + (Prng.int g 4 * ((n_supp / 4) + 1))) mod n_supp) in
      let qty = 1 + Prng.int g 50 in
      let price = part_price pkey /. 100. *. float_of_int qty in
      let disc = float_of_int (Prng.int g 11) /. 100. in
      let tax = float_of_int (Prng.int g 9) /. 100. in
      let sdate = odate + 1 + Prng.int g 121 in
      let cdate = odate + 30 + Prng.int g 61 in
      let rdate = sdate + 1 + Prng.int g 30 in
      total := !total +. (price *. (1. -. disc) *. (1. +. tax));
      incr n_lines;
      lineitems :=
        [|
          vi okey; vi pkey; vi skey; vi ln; vi qty; vf price; vf disc; vf tax;
          vs (if rdate <= day "1995-06-17" then Prng.pick g [ "R"; "A" ] else "N");
          vs (if sdate > day "1995-06-17" then "O" else "F");
          vd sdate; vd cdate; vd rdate;
          vs (Prng.pick g instructs); vs (Prng.pick g modes); vs "l";
        |]
        :: !lineitems
    done;
    orders.(i) <-
      [|
        vi okey; vi ckey;
        vs (if odate > day "1995-06-17" then "O" else "F");
        vf !total; vd odate;
        vs (Prng.pick g priorities);
        vs (Printf.sprintf "Clerk#%09d" (1 + Prng.int g (max 1 (n_ord / 1000))));
        vi 0; vs "o";
      |]
  done;
  {
    region;
    nation;
    supplier;
    part;
    partsupp;
    customer;
    orders;
    lineitem = Array.of_list (List.rev !lineitems);
  }

(* Load generated rows into a database, honouring the catalog's
   partitioning: a table with k placements is split round-robin into k
   partitions. *)
let load ~(cat : Catalog.t) (t : tables) : Storage.Database.t =
  let db = Storage.Database.create () in
  let add name rows =
    let def = Catalog.table_def cat name in
    let schema =
      List.map (fun c -> Attr.make ~rel:name ~name:c) (Catalog.Table_def.col_names def)
    in
    match Catalog.placements cat name with
    | [ _ ] ->
      Storage.Database.add db ~table:name (Storage.Relation.make ~schema ~rows)
    | ps ->
      let k = List.length ps in
      List.iteri
        (fun i _ ->
          let part_rows =
            Array.of_seq
              (Seq.filter_map
                 (fun (j, row) -> if j mod k = i then Some row else None)
                 (Array.to_seqi rows))
          in
          Storage.Database.add db ~table:name ~partition:i
            (Storage.Relation.make ~schema ~rows:part_rows))
        ps
  in
  add "region" t.region;
  add "nation" t.nation;
  add "supplier" t.supplier;
  add "part" t.part;
  add "partsupp" t.partsupp;
  add "customer" t.customer;
  add "orders" t.orders;
  add "lineitem" t.lineitem;
  db
