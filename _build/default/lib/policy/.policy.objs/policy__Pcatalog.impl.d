lib/policy/pcatalog.ml: Catalog Expression Fmt List Map String
