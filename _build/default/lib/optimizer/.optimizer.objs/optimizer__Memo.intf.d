lib/optimizer/memo.mli: Attr Catalog Exec Expr Format Lazy Plan Policy Pred Relalg Stats Summary
