(** Grace-style spill-to-disk for hash join and hash aggregation.

    When {!Runtime.should_spill} says an operator's scratch state would
    trip the execution's memory budget, the kernels hand their inputs
    here: rows are hash-partitioned by {!Runtime.Row_key.hash} into
    on-disk run files, each partition is processed with only its own
    state resident, and outputs are re-emitted in {e exactly} the
    in-memory kernel's order (probe rows by input position, matches in
    reverse insertion order; groups in first-seen order, each fed its
    rows in input order) — so spilling is byte-invisible to results,
    SHIP ledgers, profiles and EXPLAIN ANALYZE. See [docs/STORAGE.md]
    and the qcheck differential in [test/test_exec.ml]. *)

open Relalg

type t
(** Per-execution spill state: a lazily created unique directory under
    [CGQP_SPILL_DIR] (default: the system temp dir), plus the
    execution's byte account. *)

val create : Runtime.mem -> t

val cleanup : t -> unit
(** Remove the spill directory and everything in it (idempotent; safe
    if nothing ever spilled). Engines call this on every exit path,
    including [Ship_failed] unwinds. *)

val join :
  t ->
  build_bytes:int ->
  lkey:(Value.t array -> Value.t array option) ->
  rkey:(Value.t array -> Value.t array option) ->
  emit:(Value.t array -> Value.t array -> unit) ->
  Value.t array array ->
  Value.t array array ->
  unit
(** [join t ~build_bytes ~lkey ~rkey ~emit lrows rrows] hash-joins
    probe side [lrows] against build side [rrows] with run files,
    calling [emit lrow rrow] in the in-memory kernel's exact sequence.
    [lkey]/[rkey] box a row's key ([None] = NULL component, row drops
    out); [build_bytes] sizes the partition fan-out. *)

val agg :
  t ->
  input_bytes:int ->
  key:(Value.t array -> Value.t array) ->
  na:int ->
  feed_row:(Runtime.acc array -> Value.t array -> unit) ->
  emit_group:(Value.t array -> Runtime.acc array -> unit) ->
  Value.t array array ->
  unit
(** [agg t ~input_bytes ~key ~na ~feed_row ~emit_group rows] groups
    [rows] by [key] with run files, calling [emit_group] per group in
    first-seen input order, accumulators fed in input order ([na]
    accumulators per group). *)
