test/test_parser.ml: Alcotest Attr Expr List Plan Pred Relalg Sqlfront String Value
