lib/optimizer/normalize.mli: Plan Relalg
