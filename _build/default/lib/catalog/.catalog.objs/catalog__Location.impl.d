lib/catalog/location.ml: Fmt Stdlib String
