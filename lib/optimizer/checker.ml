(* Compliance certification of a *placed* physical plan (Definition 1 of
   the paper, checked through the trait machinery of §6.1 — the same
   derivation that underlies Theorem 1): walking bottom-up, every
   operator's location must lie in the intersection of its inputs'
   shipping traits, where a subtree pertaining to a single database
   additionally contributes the policy evaluator's result 𝒜. Used to
   classify the traditional optimizer's plans as compliant (C) or
   non-compliant (NC) in the experiments (Fig. 5(a), Fig. 6). *)

open Relalg
module Locset = Catalog.Location.Set

let c_ship_ok =
  Obs.Metrics.counter ~labels:[ ("verdict", "ok") ] "cgqp_checker_ships_total"

let c_ship_violation =
  Obs.Metrics.counter ~labels:[ ("verdict", "violation") ] "cgqp_checker_ships_total"

type violation = {
  at : string;  (* pretty-printed operator *)
  from_loc : Catalog.Location.t;
  to_loc : Catalog.Location.t;
  allowed : Locset.t;
}

let pp_violation ppf v =
  Fmt.pf ppf "SHIP %s -> %s at [%s] violates policies (allowed: %a)" v.from_loc v.to_loc
    v.at Locset.pp v.allowed

(* Reconstruct the logical expression of a physical subtree (Ship
   operators are transparent). *)
let rec logical_of (p : Exec.Pplan.t) : Plan.t =
  match p.node, p.children with
  | Exec.Pplan.Table_scan { table; alias; _ }, [] -> Plan.Scan { table; alias }
  | Exec.Pplan.Filter pred, [ c ] -> Plan.Select (pred, logical_of c)
  | Exec.Pplan.Project items, [ c ] -> Plan.Project (items, logical_of c)
  | Exec.Pplan.Hash_join { keys; residual }, [ l; r ] ->
    let eq =
      Pred.conj_all
        (List.map
           (fun (a, b) -> Pred.Atom (Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b)))
           keys)
    in
    Plan.Join (Pred.conj eq residual, logical_of l, logical_of r)
  | Exec.Pplan.Nl_join pred, [ l; r ] -> Plan.Join (pred, logical_of l, logical_of r)
  | Exec.Pplan.Merge_join { keys; residual }, [ l; r ] ->
    let eq =
      Pred.conj_all
        (List.map
           (fun (a, b) -> Pred.Atom (Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b)))
           keys)
    in
    Plan.Join (Pred.conj eq residual, logical_of l, logical_of r)
  | Exec.Pplan.Sort _, [ c ] -> logical_of c
  | Exec.Pplan.Hash_agg { keys; aggs }, [ c ] ->
    Plan.Aggregate { keys; aggs; input = logical_of c }
  | Exec.Pplan.Union_all, cs -> Plan.Union (List.map logical_of cs)
  | Exec.Pplan.Ship _, [ c ] -> logical_of c
  | node, cs ->
    invalid_arg
      (Printf.sprintf "Checker.logical_of: %s with %d children"
         (Exec.Pplan.node_label node) (List.length cs))

(* Locations of all base tables in the subtree (using the actual scan
   partitions). *)
let rec scan_locations (cat : Catalog.t) (p : Exec.Pplan.t) : Locset.t =
  match p.node with
  | Exec.Pplan.Table_scan { table; partition; _ } -> (
    match List.nth_opt (Catalog.placements cat table) partition with
    | Some pl -> Locset.singleton pl.Catalog.location
    | None -> Locset.empty)
  | _ ->
    List.fold_left
      (fun acc c -> Locset.union acc (scan_locations cat c))
      Locset.empty p.children

let rec ops_all_at (p : Exec.Pplan.t) (l : Catalog.Location.t) : bool =
  String.equal p.Exec.Pplan.loc l && List.for_all (fun c -> ops_all_at c l) p.children

(* [certify] returns the violations of a placed plan; empty = compliant. *)
let certify ~(cat : Catalog.t) ~(policies : Policy.Pcatalog.t) (plan : Exec.Pplan.t) :
    violation list =
  let table_cols = Catalog.table_cols cat in
  let violations = ref [] in
  (* returns the shipping trait 𝒮 of the subtree's output *)
  let rec walk (p : Exec.Pplan.t) : Locset.t =
    match p.node with
    | Exec.Pplan.Ship { from_loc; to_loc } ->
      let child = List.hd p.children in
      let s = walk child in
      let ok = Locset.mem to_loc s in
      Obs.Metrics.inc (if ok then c_ship_ok else c_ship_violation);
      if Obs.Trace.enabled () then
        Obs.Trace.instant "checker.ship"
          [
            ("op", Obs.Json.Str (Exec.Pplan.node_label child.node));
            ("from", Obs.Json.Str from_loc);
            ("to", Obs.Json.Str to_loc);
            ("ok", Obs.Json.Bool ok);
          ];
      if not ok then
        violations :=
          { at = Exec.Pplan.node_label child.node; from_loc; to_loc; allowed = s }
          :: !violations;
      s
    | Exec.Pplan.Table_scan { table; partition; _ } ->
      let home =
        match List.nth_opt (Catalog.placements cat table) partition with
        | Some pl -> Locset.singleton pl.Catalog.location
        | None -> Locset.empty
      in
      let policy =
        Policy.Evaluator.locations_for ~include_home:false ~catalog:cat ~policies
          (Summary.analyze ~table_cols (logical_of p))
      in
      Locset.union home policy
    | _ ->
      let child_traits = List.map walk p.children in
      (* AR2: executable where all inputs may ship; the Ship nodes above
         children have already moved them to p.loc, so membership of
         p.loc was checked there. *)
      let exec =
        List.fold_left Locset.inter
          (Locset.of_list (Catalog.locations cat))
          child_traits
      in
      (* AR4: a single-database subtree wholly placed at its home
         location contributes the policy evaluator's locations. *)
      let slocs = scan_locations cat p in
      let policy =
        match Locset.elements slocs with
        | [ l ] when ops_all_at p l ->
          Policy.Evaluator.locations_for ~include_home:false ~catalog:cat ~policies
            (Summary.analyze ~table_cols (logical_of p))
        | _ -> Locset.empty
      in
      Locset.union exec policy
  in
  ignore (walk plan);
  List.rev !violations

let is_compliant ~cat ~policies plan = certify ~cat ~policies plan = []
