lib/relalg/summary.ml: Attr Expr Fmt Fun List Option Plan Pred String
