lib/relalg/value.mli: Format
