open Relalg
module P = Sqlfront.Parser
module Ast = Sqlfront.Ast

let test_lexer_basics () =
  let toks = Sqlfront.Lexer.tokenize "SELECT a, b FROM t WHERE x >= 1.5" in
  Alcotest.(check int) "token count" 11 (List.length toks);
  (match toks with
  | Sqlfront.Lexer.Ident "select" :: _ -> ()
  | _ -> Alcotest.fail "keywords are lowercased")

let test_lexer_db_dash () =
  (* database names like db-5 lex as one identifier *)
  match Sqlfront.Lexer.tokenize "db-5.nation" with
  | [ Ident "db-5"; Dot; Ident "nation"; Eof ] -> ()
  | ts ->
    Alcotest.failf "unexpected tokens: %s"
      (String.concat " " (List.map Sqlfront.Lexer.token_to_string ts))

let test_lexer_arith_minus () =
  (* 1-discount: minus after a number is an operator *)
  match Sqlfront.Lexer.tokenize "(1-discount)" with
  | [ Lparen; Int_lit 1; Minus; Ident "discount"; Rparen; Eof ] -> ()
  | _ -> Alcotest.fail "minus after digit should be an operator"

let test_lexer_string_escape () =
  match Sqlfront.Lexer.tokenize "'it''s'" with
  | [ String_lit "it's"; Eof ] -> ()
  | _ -> Alcotest.fail "doubled quote escape"

let test_parse_simple_query () =
  let q = P.query "SELECT c.name, c.custkey FROM customer AS c WHERE c.acctbal > 100" in
  Alcotest.(check int) "two items" 2 (List.length q.Ast.select);
  Alcotest.(check int) "one table" 1 (List.length q.Ast.from);
  Alcotest.(check bool) "has where" true (q.Ast.where <> Pred.True);
  Alcotest.(check bool) "not aggregate" false (Ast.is_aggregate_query q)

let test_parse_join_query () =
  let q =
    P.query
      "SELECT c.name, SUM(o.totprice) FROM customer c, orders o \
       WHERE c.custkey = o.custkey GROUP BY c.name"
  in
  Alcotest.(check int) "two tables" 2 (List.length q.Ast.from);
  Alcotest.(check bool) "aggregate" true (Ast.is_aggregate_query q);
  Alcotest.(check int) "one group key" 1 (List.length q.Ast.group_by)

let test_parse_expressions () =
  let q = P.query "SELECT sum(extendedprice * (1 - discount)) AS rev FROM lineitem" in
  match q.Ast.select with
  | [ Ast.Agg_item (Expr.Sum, Expr.Binop (Expr.Mul, _, _), Some "rev") ] -> ()
  | _ -> Alcotest.fail "aggregate over arithmetic expression"

let test_parse_count_star () =
  let q = P.query "SELECT count(*) FROM t" in
  match q.Ast.select with
  | [ Ast.Agg_item (Expr.Count, Expr.Const (Value.Int 1), None) ] -> ()
  | _ -> Alcotest.fail "count(*)"

let test_parse_predicates () =
  let q =
    P.query
      "SELECT a FROM t WHERE (size > 40 OR type LIKE '%COPPER%') AND d BETWEEN 1 AND 5 \
       AND r IN ('x','y') AND n IS NOT NULL"
  in
  Alcotest.(check int) "conjunct count" 5 (List.length (Pred.conjuncts q.Ast.where))

let test_parse_date_literal () =
  let q = P.query "SELECT a FROM t WHERE shipdate >= '1994-01-01'" in
  match Pred.conjuncts q.Ast.where with
  | [ Pred.Atom (Pred.Cmp (Pred.Ge, _, Expr.Const (Value.Date _))) ] -> ()
  | _ -> Alcotest.fail "ISO string should become a date"

let test_parse_order_limit () =
  let q =
    P.query "SELECT a, b FROM t WHERE a > 1 ORDER BY a DESC, b LIMIT 10"
  in
  (match q.Ast.order_by with
  | [ (a1, true); (a2, false) ] ->
    Alcotest.(check string) "first key" "a" a1.Attr.name;
    Alcotest.(check string) "second key" "b" a2.Attr.name
  | _ -> Alcotest.fail "order by keys");
  Alcotest.(check (option int)) "limit" (Some 10) q.Ast.limit;
  let q2 = P.query "SELECT a FROM t" in
  Alcotest.(check (option int)) "no limit" None q2.Ast.limit;
  Alcotest.(check int) "no order" 0 (List.length q2.Ast.order_by)

let test_parse_having () =
  let q =
    P.query
      "SELECT mktsegment, sum(acctbal) AS total FROM customer \
       GROUP BY mktsegment HAVING total > 100"
  in
  Alcotest.(check bool) "having parsed" true (q.Ast.having <> Pred.True);
  (match P.query "SELECT a FROM t" with
  | q2 -> Alcotest.(check bool) "default true" true (q2.Ast.having = Pred.True));
  (* HAVING without grouping is rejected at bind time *)
  match
    Sqlfront.Binder.plan_of_sql
      ~table_cols:(fun _ -> Some [ "a" ])
      "SELECT a FROM t HAVING a > 1"
  with
  | exception Sqlfront.Binder.Error _ -> ()
  | _ -> Alcotest.fail "HAVING without aggregation must fail"

let test_parse_errors () =
  let expect_fail sql =
    match P.query sql with
    | exception P.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" sql
  in
  expect_fail "SELECT FROM t";
  expect_fail "SELECT a";
  expect_fail "SELECT a FROM t WHERE";
  expect_fail "SELECT a FROM t GROUP BY";
  expect_fail "SELECT a FROM t extra garbage )"

let test_parse_policy_basic () =
  let p = P.policy "ship custkey, name from Customer C to Asia, Europe" in
  Alcotest.(check bool) "cols" true (p.Ast.ship_attrs = Ast.Attr_list [ "custkey"; "name" ]);
  Alcotest.(check bool) "alias" true (p.Ast.p_alias = Some "c");
  Alcotest.(check bool) "basic" true (p.Ast.aggregates = []);
  match p.Ast.to_locs with
  | Ast.Loc_list [ "asia"; "europe" ] -> ()
  | _ -> Alcotest.fail "locations"

let test_parse_policy_aggregate () =
  let p =
    P.policy
      "ship acctbal as aggregates sum, avg from Customer to * group by mktseg, region"
  in
  Alcotest.(check bool) "agg fns" true (p.Ast.aggregates = [ Expr.Sum; Expr.Avg ]);
  Alcotest.(check bool) "all locs" true (p.Ast.to_locs = Ast.All_locs);
  Alcotest.(check bool) "group" true (p.Ast.p_group_by = [ "mktseg"; "region" ])

let test_parse_policy_db_qualified () =
  let p =
    P.policy
      "ship partkey, mfgr, size, type, name from db-3.part to L4 \
       where size > 40 OR type LIKE '%COPPER%'"
  in
  Alcotest.(check bool) "db" true (p.Ast.p_db = Some "db-3");
  Alcotest.(check string) "table" "part" p.Ast.p_table;
  Alcotest.(check bool) "where" true (p.Ast.p_where <> Pred.True)

let test_parse_policy_star () =
  let p = P.policy "ship * from db-5.nation to *" in
  Alcotest.(check bool) "all attrs" true (p.Ast.ship_attrs = Ast.All_attrs);
  Alcotest.(check bool) "all locs" true (p.Ast.to_locs = Ast.All_locs)

(* --- binder tests --- *)

let table_cols = function
  | "customer" -> Some [ "custkey"; "name"; "acctbal"; "mktseg"; "region" ]
  | "orders" -> Some [ "custkey"; "ordkey"; "totprice" ]
  | "supply" -> Some [ "ordkey"; "quantity"; "extprice" ]
  | _ -> None

let test_bind_simple () =
  let plan =
    Sqlfront.Binder.plan_of_sql ~table_cols "SELECT name FROM customer WHERE acctbal > 10"
  in
  match plan with
  | Plan.Project ([ (Expr.Col a, _) ], Plan.Select (_, Plan.Scan _)) ->
    Alcotest.(check string) "qualified" "customer" a.Attr.rel
  | _ -> Alcotest.failf "unexpected plan %s" (Plan.to_string plan)

let test_bind_ambiguous () =
  match
    Sqlfront.Binder.plan_of_sql ~table_cols "SELECT custkey FROM customer, orders"
  with
  | exception Sqlfront.Binder.Error _ -> ()
  | _ -> Alcotest.fail "custkey is ambiguous"

let test_bind_unknown_column () =
  match Sqlfront.Binder.plan_of_sql ~table_cols "SELECT nosuch FROM customer" with
  | exception Sqlfront.Binder.Error _ -> ()
  | _ -> Alcotest.fail "unknown column must fail"

let test_bind_unknown_table () =
  match Sqlfront.Binder.plan_of_sql ~table_cols "SELECT a FROM nothere" with
  | exception Sqlfront.Binder.Error _ -> ()
  | _ -> Alcotest.fail "unknown table must fail"

let test_bind_aggregate_shape () =
  let plan =
    Sqlfront.Binder.plan_of_sql ~table_cols
      "SELECT c.name, SUM(o.totprice), SUM(s.quantity) FROM customer c, orders o, supply s \
       WHERE c.custkey = o.custkey AND o.ordkey = s.ordkey GROUP BY c.name"
  in
  match plan with
  | Plan.Project (items, Plan.Aggregate { keys; aggs; input = Plan.Select (_, _) }) ->
    Alcotest.(check int) "three outputs" 3 (List.length items);
    Alcotest.(check int) "one key" 1 (List.length keys);
    Alcotest.(check int) "two aggs" 2 (List.length aggs)
  | _ -> Alcotest.failf "unexpected plan %s" (Plan.to_string plan)

let test_bind_scalar_not_grouped () =
  match
    Sqlfront.Binder.plan_of_sql ~table_cols
      "SELECT name, sum(acctbal) FROM customer GROUP BY mktseg"
  with
  | exception Sqlfront.Binder.Error _ -> ()
  | _ -> Alcotest.fail "name is not in group by"

let () =
  Alcotest.run "parser"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "db dash" `Quick test_lexer_db_dash;
          Alcotest.test_case "arith minus" `Quick test_lexer_arith_minus;
          Alcotest.test_case "string escape" `Quick test_lexer_string_escape;
        ] );
      ( "query",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple_query;
          Alcotest.test_case "join+group" `Quick test_parse_join_query;
          Alcotest.test_case "expressions" `Quick test_parse_expressions;
          Alcotest.test_case "count star" `Quick test_parse_count_star;
          Alcotest.test_case "predicates" `Quick test_parse_predicates;
          Alcotest.test_case "date literal" `Quick test_parse_date_literal;
          Alcotest.test_case "order/limit" `Quick test_parse_order_limit;
          Alcotest.test_case "having" `Quick test_parse_having;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "policy",
        [
          Alcotest.test_case "basic" `Quick test_parse_policy_basic;
          Alcotest.test_case "aggregate" `Quick test_parse_policy_aggregate;
          Alcotest.test_case "db qualified" `Quick test_parse_policy_db_qualified;
          Alcotest.test_case "stars" `Quick test_parse_policy_star;
        ] );
      ( "binder",
        [
          Alcotest.test_case "simple" `Quick test_bind_simple;
          Alcotest.test_case "ambiguous" `Quick test_bind_ambiguous;
          Alcotest.test_case "unknown column" `Quick test_bind_unknown_column;
          Alcotest.test_case "unknown table" `Quick test_bind_unknown_table;
          Alcotest.test_case "aggregate shape" `Quick test_bind_aggregate_shape;
          Alcotest.test_case "scalar not grouped" `Quick test_bind_scalar_not_grouped;
        ] );
    ]
