lib/storage/database.ml: List Map Printf Relation Stdlib String
