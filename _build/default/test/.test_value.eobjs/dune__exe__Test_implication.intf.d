test/test_implication.mli:
