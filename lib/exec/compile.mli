(** Compiling executor for placed physical plans.

    The performance engine: where {!Interp} re-resolves attribute names
    and re-walks [Pred]/[Expr] ASTs per row, {!compile} does that once
    per operator — attributes become integer column indices, predicates
    and projections become index-addressed closures with constant
    folding and null-check specialization, and join/group keys become
    precomputed index vectors feeding reused scratch buffers — so the
    inner loops over [Value.t array] rows only allocate for rows they
    actually emit.

    The compiled engine is {e byte-identical} to the reference
    interpreter: same result rows in the same order, same SHIP records
    (order, bytes, simulated cost, retry fates), same per-operator
    profiles and makespan, same metrics and trace events. SHIPs,
    retries and bookkeeping run through the shared {!Runtime}; the
    invariant is enforced by the differential property and golden tests
    in [test/test_exec.ml]. See [docs/EXECUTOR.md]. *)

open Relalg

type t
(** A compiled plan: reusable across executions (e.g. across retries or
    repeated serving-path runs of a cached plan). *)

val schema : t -> Attr.t list
(** Output schema, fixed at compile time. *)

val compile :
  db:Storage.Database.t -> table_cols:(string -> string list) -> Pplan.t -> t
(** Compile a placed plan: resolve every attribute against its
    operator's input schema, specialize predicates/projections into
    closures, and precompute join-key index vectors. [table_cols]
    resolves a table's stored column order, used to re-qualify scan
    schemas with the query alias (as in {!Interp.run}). Raises
    {!Runtime.Runtime_error} on malformed plans and [Invalid_argument]
    on unknown tables. *)

val execute :
  ?faults:Catalog.Network.Fault.schedule ->
  ?retry:Runtime.retry_policy ->
  ?budget:int ->
  network:Catalog.Network.t ->
  t ->
  Runtime.result
(** Execute a compiled plan. Semantics, SHIP accounting, fault
    injection and observability are exactly those of {!Interp.run},
    including the [budget] memory account (default [CGQP_MEM_BUDGET],
    else unlimited) with byte-identical spilling; raises
    {!Runtime.Ship_failed} on permanent transfer failures. *)

val run :
  ?faults:Catalog.Network.Fault.schedule ->
  ?retry:Runtime.retry_policy ->
  ?budget:int ->
  network:Catalog.Network.t ->
  db:Storage.Database.t ->
  table_cols:(string -> string list) ->
  Pplan.t ->
  Runtime.result
(** [compile] then [execute] — drop-in replacement for {!Interp.run}. *)
