(* Physical-plan utility tests: labels, DOT rendering, SHIP insertion
   and traversal helpers. *)

open Relalg
module P = Exec.Pplan

let attr rel name = Attr.make ~rel ~name

let mk ?(loc = "x") node children =
  { P.node; loc; children; est = { P.est_rows = 10.; est_width = 8. } }

let scan ?(loc = "x") t = mk ~loc (P.Table_scan { table = t; alias = t; partition = 0 }) []

let join ?(loc = "x") l r =
  mk ~loc (P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True }) [ l; r ]

let test_labels () =
  let labels =
    [
      P.Table_scan { table = "t"; alias = "t"; partition = 0 };
      P.Filter Pred.True;
      P.Project [ (Expr.Col (attr "t" "a"), attr "t" "a") ];
      P.Hash_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True };
      P.Nl_join Pred.True;
      P.Merge_join { keys = [ (attr "r" "a", attr "s" "a") ]; residual = Pred.True };
      P.Sort [ (attr "t" "a", true) ];
      P.Hash_agg { keys = []; aggs = [] };
      P.Union_all;
      P.Ship { from_loc = "x"; to_loc = "y" };
    ]
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) "non-empty label" true (String.length (P.node_label n) > 0))
    labels;
  Alcotest.(check string) "ship label" "SHIP x -> y"
    (P.node_label (P.Ship { from_loc = "x"; to_loc = "y" }))

let test_with_ships_inserts_minimal () =
  let plan = join ~loc:"x" (scan ~loc:"x" "r") (scan ~loc:"y" "s") in
  let shipped = P.with_ships plan in
  Alcotest.(check int) "exactly one ship" 1 (List.length (P.ships shipped));
  (* already co-located plans gain nothing *)
  let local = join ~loc:"x" (scan ~loc:"x" "r") (scan ~loc:"x" "s") in
  Alcotest.(check int) "no ships when local" 0 (List.length (P.ships (P.with_ships local)))

let test_with_ships_idempotent () =
  let plan = join ~loc:"z" (scan ~loc:"x" "r") (scan ~loc:"y" "s") in
  let once = P.with_ships plan in
  let twice = P.with_ships once in
  Alcotest.(check string) "idempotent" (P.to_string once) (P.to_string twice)

let test_count_ops () =
  let plan = join (scan "r") (scan "s") in
  Alcotest.(check int) "three ops" 3 (P.count_ops plan);
  Alcotest.(check int) "with ships counts them" 3 (P.count_ops (P.with_ships plan))

let test_est_bytes () =
  Alcotest.(check (float 1e-9)) "rows*width" 80. (P.est_bytes (scan "r"))

let test_to_dot_wellformed () =
  let plan = P.with_ships (join ~loc:"x" (scan ~loc:"x" "r") (scan ~loc:"y" "s")) in
  let dot = P.to_dot plan in
  Alcotest.(check bool) "digraph" true (String.length dot > 20);
  let has sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has digraph header" true (has "digraph plan");
  Alcotest.(check bool) "clusters per site" true (has "cluster_x" && has "cluster_y");
  Alcotest.(check bool) "ship edge highlighted" true (has "penwidth=2");
  (* balanced braces *)
  let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 dot in
  Alcotest.(check int) "balanced braces" (count '{') (count '}')

let prop_with_ships_preserves_structure =
  QCheck.Test.make ~name:"with_ships preserves non-ship operators" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Storage.Prng.create ~seed in
      let locs = [ "a"; "b"; "c" ] in
      let rec build depth =
        if depth = 0 then scan ~loc:(Storage.Prng.pick g locs) "r"
        else
          match Storage.Prng.int g 3 with
          | 0 -> mk ~loc:(Storage.Prng.pick g locs) (P.Filter Pred.True) [ build (depth - 1) ]
          | 1 -> join ~loc:(Storage.Prng.pick g locs) (build (depth - 1)) (build (depth - 1))
          | _ -> mk ~loc:(Storage.Prng.pick g locs) P.Union_all [ build (depth - 1) ]
      in
      let plan = build (1 + Storage.Prng.int g 3) in
      let rec non_ship_count (p : P.t) =
        (match p.P.node with P.Ship _ -> 0 | _ -> 1)
        + List.fold_left (fun a c -> a + non_ship_count c) 0 p.P.children
      in
      non_ship_count plan = non_ship_count (P.with_ships plan))

let () =
  Alcotest.run "pplan"
    [
      ( "pplan",
        [
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "with_ships minimal" `Quick test_with_ships_inserts_minimal;
          Alcotest.test_case "with_ships idempotent" `Quick test_with_ships_idempotent;
          Alcotest.test_case "count_ops" `Quick test_count_ops;
          Alcotest.test_case "est_bytes" `Quick test_est_bytes;
          Alcotest.test_case "dot output" `Quick test_to_dot_wellformed;
          QCheck_alcotest.to_alcotest prop_with_ships_preserves_structure;
        ] );
    ]
