(** Sound-but-incomplete logical implication test (the paper's §5
    "Discussion", in the spirit of Goldstein & Larson).

    [implies pq pe] returns true only if every row binding that
    satisfies [pq] under {!Relalg.Pred.eval} — including bindings with
    NULLs — also satisfies [pe]. The test works on bounded DNF with
    per-attribute range/domain reasoning and syntactic matching;
    multi-attribute arithmetic defeats it ([A=5 AND B=3 =/=> A+B=8], the
    paper's own example). *)

open Relalg

type literal = Pos of Pred.atom | Neg of Pred.atom

val dnf : Pred.t -> literal list list option
(** Bounded disjunctive normal form; [None] when the expansion exceeds
    the internal limit. [[[]]] is [True], [[]] is [False]. *)

val conj_implies_literal : literal list -> literal -> bool
val conj_implies_conj : literal list -> literal list -> bool

val implies : Pred.t -> Pred.t -> bool
(** The sound test for [pq => pe]. Verdicts are memoized on the intern
    ids of the two predicates (unless disabled below). *)

val implies_uncached : Pred.t -> Pred.t -> bool
(** The same test, bypassing the verdict cache — the baseline the
    differential suite compares against. *)

val set_cache_enabled : bool -> unit
(** Globally enable/disable the verdict cache (default enabled). *)

val cache_stats : unit -> int * int
(** [(hits, misses)] since the last {!reset_cache}. *)

val reset_cache : unit -> unit
