lib/policy/evaluator.ml: Catalog Expr Expression Implication List Option Pcatalog Relalg String Summary
