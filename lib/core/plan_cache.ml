(* Policy-epoch plan cache: optimizer outcomes keyed by
   (normalized SQL, policy fingerprint, catalog stamp, mask fingerprint,
   optimizer mode), LRU-evicted, purged wholesale on every policy
   epoch bump. See plan_cache.mli and docs/SERVICE.md for the
   invariants. *)

type key = {
  sql : string;  (* normalized *)
  policy_fp : int;
  catalog_fp : int;
  mask_fp : int;  (* 0 = healthy network *)
  mode : Optimizer.Memo.mode;
}

type entry = {
  outcome : Optimizer.Planner.outcome;
  epoch : int;  (* insert-time epoch, for the purge sweep *)
  mutable last_use : int;  (* LRU tick *)
}

type stats = { hits : int; misses : int; invalidations : int; evictions : int }

type t = {
  table : (key, entry) Hashtbl.t;
  cap : int;
  mutable tick : int;
  mutable cur_epoch : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

(* Global metrics, aggregated over every cache instance: per-instance
   gauges would grow the registry without bound under property tests
   that create thousands of short-lived caches. *)
let c_hits = Obs.Metrics.counter "cgqp_plancache_hits_total"
let c_misses = Obs.Metrics.counter "cgqp_plancache_misses_total"
let c_invalidations = Obs.Metrics.counter "cgqp_plancache_invalidations_total"
let c_evictions = Obs.Metrics.counter "cgqp_plancache_evictions_total"

(* Entries live across all instances, sampled by one gauge. Atomic:
   instances may be touched from different domains (one cache per
   worker in the serving pipeline's recording pass). *)
let live_entries = Atomic.make 0
let live_add n = ignore (Atomic.fetch_and_add live_entries n)

let () =
  Obs.Metrics.gauge "cgqp_plancache_entries" (fun () ->
      float_of_int (Atomic.get live_entries))

let create ?(capacity = 128) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    table = Hashtbl.create (2 * capacity);
    cap = capacity;
    tick = 0;
    cur_epoch = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
  }

let capacity t = t.cap
let size t = Hashtbl.length t.table
let epoch t = t.cur_epoch
let stats t =
  { hits = t.hits; misses = t.misses; invalidations = t.invalidations;
    evictions = t.evictions }

(* --- SQL normalization --- *)

(* Whitespace runs collapse, trailing ';' drops, everything outside
   single-quoted literals is lowercased. Deliberately textual: a
   normalizer that merges too much is a compliance hazard. *)
let normalize_sql sql =
  let b = Buffer.create (String.length sql) in
  let in_string = ref false and pending_space = ref false in
  String.iter
    (fun c ->
      if !in_string then begin
        Buffer.add_char b c;
        if c = '\'' then in_string := false
      end
      else
        match c with
        | ' ' | '\t' | '\n' | '\r' -> if Buffer.length b > 0 then pending_space := true
        | c ->
          if !pending_space then begin
            Buffer.add_char b ' ';
            pending_space := false
          end;
          Buffer.add_char b (Char.lowercase_ascii c);
          if c = '\'' then in_string := true)
    sql;
  let s = Buffer.contents b in
  let n = String.length s in
  if n > 0 && s.[n - 1] = ';' then String.trim (String.sub s 0 (n - 1)) else s

(* --- fingerprints --- *)

let mix64 (x : int64) : int64 =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let hash_str h s =
  let acc = ref h in
  String.iter
    (fun c -> acc := mix64 (Int64.logxor !acc (Int64.of_int (Char.code c))))
    s;
  !acc

(* Order-insensitive over both lists; 0 iff the mask is empty, so the
   healthy-network key is stable across [run] and [optimize]. *)
let mask_fingerprint ~links ~sites =
  if links = [] && sites = [] then 0
  else
    let link_h (a, b) =
      (* undirected: both orientations hash alike *)
      let a, b = if String.compare a b <= 0 then (a, b) else (b, a) in
      hash_str (hash_str (mix64 1L) a) b
    in
    let site_h l = hash_str (mix64 2L) l in
    let hs =
      List.sort Int64.compare (List.map link_h links @ List.map site_h sites)
    in
    let h = List.fold_left (fun acc h -> mix64 (Int64.logxor acc h)) (mix64 3L) hs in
    (* never collide with the reserved healthy value *)
    let v = Int64.to_int h land max_int in
    if v = 0 then 1 else v

let key ~sql ~policies ~catalog ?(mask_fp = 0) ~mode () =
  {
    sql = normalize_sql sql;
    policy_fp = Policy.Pcatalog.fingerprint policies;
    catalog_fp = Catalog.stamp catalog;
    mask_fp;
    mode;
  }

(* --- the cache proper --- *)

let bump_epoch ?(reason = "policy-change") t =
  let purged = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  live_add (-purged);
  t.cur_epoch <- t.cur_epoch + 1;
  t.invalidations <- t.invalidations + purged;
  Obs.Metrics.inc ~by:purged c_invalidations;
  if Obs.Trace.enabled () then
    Obs.Trace.instant "plancache.invalidate"
      [
        ("reason", Obs.Json.Str reason);
        ("epoch", Obs.Json.Num (float_of_int t.cur_epoch));
        ("purged", Obs.Json.Num (float_of_int purged));
      ]

let clear t =
  live_add (-(Hashtbl.length t.table));
  Hashtbl.reset t.table

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    (* entries from an older epoch cannot survive the purge in
       [bump_epoch]; the check is belt-and-braces *)
    if e.epoch <> t.cur_epoch then begin
      Hashtbl.remove t.table key;
      live_add (-1);
      t.misses <- t.misses + 1;
      Obs.Metrics.inc c_misses;
      None
    end
    else begin
      t.tick <- t.tick + 1;
      e.last_use <- t.tick;
      t.hits <- t.hits + 1;
      Obs.Metrics.inc c_hits;
      Some e.outcome
    end
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.inc c_misses;
    None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, lu) when lu <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    t.table;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    live_add (-1);
    t.evictions <- t.evictions + 1;
    Obs.Metrics.inc c_evictions

let add t key outcome =
  (if Hashtbl.mem t.table key then begin
     Hashtbl.remove t.table key;
     live_add (-1)
   end
   else if Hashtbl.length t.table >= t.cap then evict_lru t);
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table key
    { outcome; epoch = t.cur_epoch; last_use = t.tick };
  live_add 1
