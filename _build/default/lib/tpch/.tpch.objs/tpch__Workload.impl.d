lib/tpch/workload.ml: Datagen List Policies Printf Schema Storage String
