(* An in-memory materialized relation: a schema of qualified column
   names and an array of rows. *)

open Relalg

type t = { schema : Attr.t list; rows : Value.t array array }

let make ~schema ~rows =
  let n = List.length schema in
  Array.iter
    (fun r ->
      if Array.length r <> n then invalid_arg "Relation.make: row arity mismatch")
    rows;
  { schema; rows }

let empty ~schema = { schema; rows = [||] }
let schema t = t.schema
let rows t = t.rows
let cardinality t = Array.length t.rows

(* Index of an attribute in the schema: exact match first, then a
   unique match on the bare column name. *)
let find_index t (a : Attr.t) : int option =
  let arr = Array.of_list t.schema in
  let exact = ref None and by_name = ref [] in
  Array.iteri
    (fun i b ->
      if Attr.equal a b then exact := Some i
      else if String.equal a.Attr.name b.Attr.name then by_name := i :: !by_name)
    arr;
  match !exact, !by_name with
  | Some i, _ -> Some i
  | None, [ i ] -> Some i
  | None, _ -> None

let lookup_fn t : Attr.t -> Value.t array -> Value.t =
  let cache : (Attr.t * int) list ref = ref [] in
  fun a row ->
    let ix =
      match List.assoc_opt a !cache with
      | Some i -> i
      | None -> (
        match find_index t a with
        | Some i ->
          cache := (a, i) :: !cache;
          i
        | None -> -1)
    in
    if ix >= 0 && ix < Array.length row then row.(ix) else Value.Null

(* Total serialized size in bytes (what a SHIP of this relation moves). *)
let byte_size t =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc v -> acc + Value.byte_width v) acc row)
    0 t.rows

(* Order rows by the given (attribute, descending) keys. *)
let order_by t (keys : (Attr.t * bool) list) =
  let look = lookup_fn t in
  let cmp r1 r2 =
    let rec go = function
      | [] -> 0
      | (a, desc) :: rest ->
        let c = Value.compare (look a r1) (look a r2) in
        if c <> 0 then if desc then -c else c else go rest
    in
    go keys
  in
  let rows = Array.copy t.rows in
  Array.stable_sort cmp rows;
  { t with rows }

(* First [n] rows. *)
let take t n =
  if cardinality t <= n then t
  else { t with rows = Array.sub t.rows 0 n }

let pp ?(max_rows = 20) ppf t =
  Fmt.pf ppf "%a@." Fmt.(list ~sep:(any " | ") Attr.pp) t.schema;
  Array.iteri
    (fun i row ->
      if i < max_rows then
        Fmt.pf ppf "%a@." Fmt.(array ~sep:(any " | ") Value.pp) row)
    t.rows;
  if cardinality t > max_rows then Fmt.pf ppf "... (%d rows)@." (cardinality t)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat "," (List.map Attr.to_string t.schema));
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (Array.to_list (Array.map Value.to_string row)));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf
