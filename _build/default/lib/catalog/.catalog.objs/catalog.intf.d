lib/catalog/catalog.mli: Format Relalg Set
