test/test_value.mli:
