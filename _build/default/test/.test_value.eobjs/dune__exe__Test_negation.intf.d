test/test_negation.mli:
