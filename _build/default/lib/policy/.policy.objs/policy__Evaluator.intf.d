lib/policy/evaluator.mli: Catalog Expr Pcatalog Relalg Summary
