test/test_geodsl.mli:
