(* Regulator scenario: negative policies and the response-time
   objective.

   A regulator first grants broad dataflow permissions and then issues a
   targeted prohibition ("quantity figures may no longer reach the
   European hub"). Negative statements are preprocessed under the
   closed-world assumption (§4 of the paper): the denied locations are
   subtracted from every grant that could expose the column. The same
   query is then optimized both for total transfer cost (the paper's
   model) and for response time (its §3.3 cost-model variation).

   Run with: dune exec examples/regulator.exe *)

let () =
  let cat = Tpch.Schema.catalog () in
  let grants = Tpch.Policies.set_t in
  let query =
    "SELECT o.orderkey, l.quantity FROM orders o, lineitem l \
     WHERE o.orderkey = l.orderkey AND l.quantity > 45"
  in

  Fmt.pr "=== The regulator's grants (template T) ===@.";
  List.iter (Fmt.pr "  %s@.") grants;

  let before = Policy.Pcatalog.of_texts cat grants in
  (match Optimizer.Planner.optimize_sql ~cat ~policies:before query with
  | Optimizer.Planner.Planned p ->
    Fmt.pr "@.Before the prohibition the join may leave L4:@.%a@."
      (Exec.Pplan.pp ~indent:2) p.Optimizer.Planner.plan
  | Optimizer.Planner.Rejected r -> Fmt.pr "unexpected rejection: %s@." r);

  let deny = "deny quantity from db-4.lineitem to L1, L5" in
  Fmt.pr "=== New regulation ===@.  %s@." deny;
  let after = Policy.Negation.catalog_of_texts cat ~grants ~denies:[ deny ] in
  (match Optimizer.Planner.optimize_sql ~cat ~policies:after query with
  | Optimizer.Planner.Planned p ->
    Fmt.pr "@.After: quantity data is pinned to its site — the whole plan@.\
            moves to L4 instead:@.%a@."
      (Exec.Pplan.pp ~indent:2) p.Optimizer.Planner.plan
  | Optimizer.Planner.Rejected r -> Fmt.pr "@.After: query rejected (%s)@." r);

  (* objective comparison on a wider query *)
  Fmt.pr "=== Cost-model variation (paper §3.3): total vs response time ===@.";
  let policies = Tpch.Policies.catalog_of cat Tpch.Policies.CRA in
  List.iter
    (fun (label, objective) ->
      match
        Optimizer.Planner.optimize_sql ~objective ~cat ~policies Tpch.Queries.q5
      with
      | Optimizer.Planner.Planned p ->
        Fmt.pr "  Q5 %-15s cost = %8.2f ms (%d operators)@." label
          p.Optimizer.Planner.ship_cost
          (Exec.Pplan.count_ops p.Optimizer.Planner.plan)
      | Optimizer.Planner.Rejected r -> Fmt.pr "  Q5 %s rejected: %s@." label r)
    [ ("total", `Total); ("response-time", `Response_time) ]
