(* Generic hash-consing (interning) in the style of Filliâtre &
   Conchon's "Type-safe modular hash-consing": every structurally
   distinct term is stored once, with a unique integer id, so that
   structural equality of interned terms degenerates to pointer
   equality and the ids can key O(1) memo tables (the optimizer's
   implication- and compliance-verdict caches).

   Ids are monotonically increasing and never reused, even across
   [clear]: a stale id held by some cache can then never alias a
   different term interned later.

   The table is shared by every domain and guarded by one mutex: ids
   must stay process-unique (per-domain tables would let two distinct
   terms alias one id and poison every id-keyed cache), and the memo
   tables that key on these ids rely on pointer equality of the
   canonical nodes across domains. Interning only happens on the
   optimizer path — execution never interns — so the lock is uncontended
   in the serving layer's parallel phase (see docs/PARALLELISM.md). *)

type stats = { mutable hits : int; mutable misses : int }

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type elt

  (* The canonical representative of a term together with its id. *)
  type node = { node : elt; id : int }

  val intern : elt -> node
  (** Canonical node for [x]; physically the same node for all
      structurally equal arguments. Thread-safe: may be called from any
      domain. *)

  val hits : unit -> int
  val misses : unit -> int
  val size : unit -> int
  val reset_counters : unit -> unit

  val clear : unit -> unit
  (** Drop the table (counters included). Terms interned before the
      clear keep their ids but are no longer canonical: mixing them
      with freshly interned terms breaks pointer-equality, so only
      clear when no interned terms are retained. *)
end

module Make (H : HashedType) : S with type elt = H.t = struct
  type elt = H.t
  type node = { node : elt; id : int }

  module T = Hashtbl.Make (H)

  let table : node T.t = T.create 256
  let st = { hits = 0; misses = 0 }
  let next = ref 0
  let lock = Mutex.create ()

  let intern x =
    Mutex.protect lock (fun () ->
        match T.find_opt table x with
        | Some n ->
          st.hits <- st.hits + 1;
          n
        | None ->
          st.misses <- st.misses + 1;
          let n = { node = x; id = !next } in
          incr next;
          T.add table x n;
          n)

  let hits () = Mutex.protect lock (fun () -> st.hits)
  let misses () = Mutex.protect lock (fun () -> st.misses)
  let size () = Mutex.protect lock (fun () -> T.length table)

  let reset_counters () =
    Mutex.protect lock (fun () ->
        st.hits <- 0;
        st.misses <- 0)

  let clear () =
    Mutex.protect lock (fun () ->
        T.reset table;
        st.hits <- 0;
        st.misses <- 0)
end
