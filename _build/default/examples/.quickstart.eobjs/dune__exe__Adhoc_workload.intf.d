examples/adhoc_workload.mli:
