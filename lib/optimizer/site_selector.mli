(** Phase 2 (§6.3): place every operator of the annotated plan at a
    concrete site, minimizing total shipping cost under the message
    cost model, restricted to each operator's execution trait —
    Algorithm 2 of the paper, as memoized top-down dynamic
    programming. *)

type placement = { plan : Exec.Pplan.t; cost : float }
(** A fully-placed physical plan and its shipping cost in simulated
    milliseconds (total or critical-path, per {!objective}). *)

type objective = [ `Total | `Response_time ]
(** [`Total] minimizes the sum of all transfers (the paper's default
    total-cost model); [`Response_time] treats sibling subtrees as
    shipping in parallel and minimizes the critical path (the
    alternative cost model of the §3.3 discussion). *)

val select :
  ?objective:objective -> network:Catalog.Network.t -> Memo.anode -> placement option
(** Cheapest compliant placement (with SHIP operators inserted), or
    [None] if some operator's execution trait admits no feasible
    site. *)

val brute_force : network:Catalog.Network.t -> Memo.anode -> float option
(** Exhaustive reference used by the tests to validate the DP
    (exponential; small plans only). *)
