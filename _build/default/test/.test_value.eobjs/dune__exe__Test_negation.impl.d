test/test_negation.ml: Alcotest Catalog Exec List Optimizer Policy Tpch
