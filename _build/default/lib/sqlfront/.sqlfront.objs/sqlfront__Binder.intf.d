lib/sqlfront/binder.mli: Ast Plan Relalg
