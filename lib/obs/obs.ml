(* Observability backbone: a minimal JSON codec, a ring-buffered typed
   event tracer, and a global metrics registry. Stdlib-only by design —
   every layer of the system (optimizer, policy evaluator, executor,
   CLI, bench) links against this without dependency cycles.

   The tracer is off by default and every emission site is guarded by a
   single flag test, so instrumented hot paths keep their
   un-instrumented speed and — since tracing only ever observes —
   byte-identical outputs. The metrics registry is always on; an
   increment is a field bump behind one hashtable-free pointer. *)

(* --- JSON ---------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape_string b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let add_num b f =
    if f <> f then Buffer.add_string b "null" (* nan: no JSON spelling *)
    else if f = Float.infinity then Buffer.add_string b "1e999"
    else if f = Float.neg_infinity then Buffer.add_string b "-1e999"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.0f" f)
    else
      (* shortest representation that still parses back to the same
         float, so traces round-trip exactly *)
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then Buffer.add_string b s
      else Buffer.add_string b (Printf.sprintf "%.17g" f)

  let to_string (v : t) : string =
    let b = Buffer.create 256 in
    let rec go = function
      | Null -> Buffer.add_string b "null"
      | Bool true -> Buffer.add_string b "true"
      | Bool false -> Buffer.add_string b "false"
      | Num f -> add_num b f
      | Str s -> escape_string b s
      | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
      | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            escape_string b k;
            Buffer.add_char b ':';
            go x)
          kvs;
        Buffer.add_char b '}'
    in
    go v;
    Buffer.contents b

  exception Parse_error of int * string

  (* Recursive-descent parser over the string; accepts (at least)
     everything [to_string] emits, plus insignificant whitespace. *)
  let of_string (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents b
          | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                Buffer.add_char b e;
                go ()
              | 'n' ->
                Buffer.add_char b '\n';
                go ()
              | 'r' ->
                Buffer.add_char b '\r';
                go ()
              | 't' ->
                Buffer.add_char b '\t';
                go ()
              | 'b' ->
                Buffer.add_char b '\b';
                go ()
              | 'f' ->
                Buffer.add_char b '\012';
                go ()
              | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape"
                else begin
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* Encode the code point as UTF-8 (BMP only — that is
                     all the printer ever emits, for control chars). *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end;
                  go ()
                end
              | _ -> fail "bad escape")
          | c ->
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected number"
      else
        match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> f
        | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := field () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing input";
      v
    with
    | v -> Ok v
    | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | Null | Bool _ | Num _ | Str _ | Arr _ -> None
end

(* --- Tracing ------------------------------------------------------- *)

module Trace = struct
  type kind = Begin | End | Instant

  type event = {
    seq : int;
    ts_ms : float;
    kind : kind;
    name : string;
    depth : int;
    attrs : (string * Json.t) list;
  }

  (* Clock: process CPU time by default (the only clock the stdlib
     offers); callers with [unix] linked may install a wall clock, and
     tests install a deterministic counter. *)
  let clock : (unit -> float) ref = ref (fun () -> Sys.time () *. 1000.)
  let t0 = ref 0.
  let set_clock f =
    clock := f;
    t0 := f ()

  let now_ms () = !clock () -. !t0

  (* Ring buffer state. [buf] holds the most recent [cap] events;
     [head] is the next write slot; when full, writes evict the oldest
     event and bump [n_dropped]. *)
  let on = ref false
  let buf : event option array ref = ref [||]
  let cap = ref 0
  let head = ref 0
  let stored = ref 0
  let n_dropped = ref 0
  let next_seq = ref 0
  let cur_depth = ref 0

  let enabled () = !on

  let clear () =
    Array.fill !buf 0 (Array.length !buf) None;
    head := 0;
    stored := 0;
    n_dropped := 0;
    next_seq := 0;
    cur_depth := 0

  let enable ?(capacity = 65536) () =
    let capacity = max 1 capacity in
    buf := Array.make capacity None;
    cap := capacity;
    clear ();
    t0 := !clock ();
    on := true

  let disable () = on := false

  let push kind name attrs =
    let e =
      { seq = !next_seq; ts_ms = now_ms (); kind; name; depth = !cur_depth; attrs }
    in
    incr next_seq;
    if !stored = !cap then incr n_dropped else incr stored;
    !buf.(!head) <- Some e;
    head := (!head + 1) mod !cap

  let instant name attrs = if !on then push Instant name attrs

  let span name ?(attrs = []) f =
    if not !on then f ()
    else begin
      let start = now_ms () in
      push Begin name attrs;
      incr cur_depth;
      match f () with
      | v ->
        decr cur_depth;
        push End name [ ("dur_ms", Json.Num (now_ms () -. start)) ];
        v
      | exception exn ->
        decr cur_depth;
        push End name
          [ ("dur_ms", Json.Num (now_ms () -. start));
            ("error", Json.Str (Printexc.to_string exn)) ];
        raise exn
    end

  let events () =
    if !stored = 0 then []
    else begin
      let first = (!head - !stored + !cap) mod !cap in
      List.init !stored (fun i ->
          match !buf.((first + i) mod !cap) with
          | Some e -> e
          | None -> assert false)
    end

  let dropped () = !n_dropped

  let kind_to_string = function Begin -> "B" | End -> "E" | Instant -> "I"

  let kind_of_string = function
    | "B" -> Some Begin
    | "E" -> Some End
    | "I" -> Some Instant
    | _ -> None

  let event_to_json (e : event) : Json.t =
    Json.Obj
      [
        ("seq", Json.Num (float_of_int e.seq));
        ("ts_ms", Json.Num e.ts_ms);
        ("kind", Json.Str (kind_to_string e.kind));
        ("name", Json.Str e.name);
        ("depth", Json.Num (float_of_int e.depth));
        ("attrs", Json.Obj e.attrs);
      ]

  let event_of_json (j : Json.t) : (event, string) result =
    let str = function Json.Str s -> Some s | _ -> None in
    let num = function Json.Num f -> Some f | _ -> None in
    let field k conv = Option.bind (Json.member k j) conv in
    match
      ( field "seq" num,
        field "ts_ms" num,
        field "kind" str,
        field "name" str,
        field "depth" num,
        Json.member "attrs" j )
    with
    | Some seq, Some ts_ms, Some kind, Some name, Some depth, Some (Json.Obj attrs)
      -> (
      match kind_of_string kind with
      | Some kind ->
        Ok
          { seq = int_of_float seq; ts_ms; kind; name; depth = int_of_float depth;
            attrs }
      | None -> Error ("unknown event kind: " ^ kind))
    | _ -> Error "missing or ill-typed event field"

  let to_jsonl () =
    String.concat ""
      (List.map (fun e -> Json.to_string (event_to_json e) ^ "\n") (events ()))

  let write_jsonl oc =
    List.iter
      (fun e ->
        output_string oc (Json.to_string (event_to_json e));
        output_char oc '\n')
      (events ())

  let pp_event ppf (e : event) =
    Format.fprintf ppf "%6d %9.3fms %s%s %s%s" e.seq e.ts_ms
      (String.make (2 * e.depth) ' ')
      (kind_to_string e.kind) e.name
      (match e.attrs with
      | [] -> ""
      | attrs ->
        " "
        ^ String.concat " "
            (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) attrs))
end

(* --- Metrics ------------------------------------------------------- *)

module Metrics = struct
  type counter = { mutable count : int }

  type histogram = {
    bounds : float array;  (* inclusive upper bounds, ascending *)
    counts : int array;  (* length = Array.length bounds + 1 (+inf) *)
    mutable sum : float;
    mutable n : int;
  }

  type instrument =
    | Counter of counter
    | Histogram of histogram
    | Gauge of (unit -> float) ref

  (* Registry keyed by (name, sorted labels). *)
  let registry : (string * (string * string) list, instrument) Hashtbl.t =
    Hashtbl.create 64

  let key name labels =
    (name, List.sort (fun (a, _) (b, _) -> String.compare a b) labels)

  let kind_name = function
    | Counter _ -> "counter"
    | Histogram _ -> "histogram"
    | Gauge _ -> "gauge"

  let register name labels make check =
    let k = key name labels in
    match Hashtbl.find_opt registry k with
    | Some inst -> (
      match check inst with
      | Some v -> v
      | None ->
        invalid_arg
          (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
             (kind_name inst)))
    | None ->
      let inst, v = make () in
      Hashtbl.replace registry k inst;
      v

  let counter ?(labels = []) name =
    register name labels
      (fun () ->
        let c = { count = 0 } in
        (Counter c, c))
      (function Counter c -> Some c | _ -> None)

  let inc ?(by = 1) c = c.count <- c.count + by
  let value c = c.count

  let default_buckets = [ 0.001; 0.01; 0.1; 1.; 10.; 100.; 1000.; 10000. ]

  let histogram ?(labels = []) ?(buckets = default_buckets) name =
    register name labels
      (fun () ->
        let bounds = Array.of_list (List.sort_uniq Float.compare buckets) in
        let h =
          { bounds; counts = Array.make (Array.length bounds + 1) 0; sum = 0.; n = 0 }
        in
        (Histogram h, h))
      (function Histogram h -> Some h | _ -> None)

  let observe h v =
    let rec slot i =
      if i >= Array.length h.bounds then i
      else if v <= h.bounds.(i) then i
      else slot (i + 1)
    in
    let i = slot 0 in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. v;
    h.n <- h.n + 1

  let hist_count h = h.n
  let hist_sum h = h.sum

  let gauge ?(labels = []) name f =
    let k = key name labels in
    match Hashtbl.find_opt registry k with
    | Some (Gauge r) -> r := f
    | Some inst ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
           (kind_name inst))
    | None -> Hashtbl.replace registry k (Gauge (ref f))

  let reset () =
    Hashtbl.iter
      (fun _ inst ->
        match inst with
        | Counter c -> c.count <- 0
        | Histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.sum <- 0.;
          h.n <- 0
        | Gauge _ -> ())
      registry

  let sorted_entries () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry []
    |> List.sort (fun ((n1, l1), _) ((n2, l2), _) ->
           match String.compare n1 n2 with
           | 0 -> List.compare (fun (a, b) (c, d) ->
                      match String.compare a c with
                      | 0 -> String.compare b d
                      | x -> x)
                    l1 l2
           | x -> x)

  let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

  let dump () : Json.t =
    let counters = ref [] and histograms = ref [] and gauges = ref [] in
    List.iter
      (fun ((name, labels), inst) ->
        match inst with
        | Counter c ->
          counters :=
            Json.Obj
              [ ("name", Json.Str name); ("labels", labels_json labels);
                ("value", Json.Num (float_of_int c.count)) ]
            :: !counters
        | Histogram h ->
          let buckets =
            List.init
              (Array.length h.counts)
              (fun i ->
                let le =
                  if i < Array.length h.bounds then Json.Num h.bounds.(i)
                  else Json.Str "+inf"
                in
                Json.Obj [ ("le", le); ("count", Json.Num (float_of_int h.counts.(i))) ])
          in
          histograms :=
            Json.Obj
              [ ("name", Json.Str name); ("labels", labels_json labels);
                ("count", Json.Num (float_of_int h.n)); ("sum", Json.Num h.sum);
                ("buckets", Json.Arr buckets) ]
            :: !histograms
        | Gauge f ->
          gauges :=
            Json.Obj
              [ ("name", Json.Str name); ("labels", labels_json labels);
                ("value", Json.Num (!f ())) ]
            :: !gauges)
      (sorted_entries ());
    Json.Obj
      [
        ("counters", Json.Arr (List.rev !counters));
        ("histograms", Json.Arr (List.rev !histograms));
        ("gauges", Json.Arr (List.rev !gauges));
      ]

  let render ppf () =
    let label_string labels =
      match labels with
      | [] -> ""
      | ls ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=\"" ^ v ^ "\"") ls)
        ^ "}"
    in
    List.iter
      (fun ((name, labels), inst) ->
        let id = name ^ label_string labels in
        match inst with
        | Counter c ->
          if c.count <> 0 then Format.fprintf ppf "%-64s %d@." id c.count
        | Histogram h ->
          if h.n <> 0 then
            Format.fprintf ppf "%-64s n=%d sum=%.3f mean=%.3f@." id h.n h.sum
              (h.sum /. float_of_int h.n)
        | Gauge f -> Format.fprintf ppf "%-64s %.0f@." id (!f ()))
      (sorted_entries ())
end
