(** Scalar and aggregate expressions.

    Scalars appear in projections and predicates; aggregates in
    [Plan.Aggregate] operators and in the [as aggregates] clause of
    policy expressions. *)

type binop = Add | Sub | Mul | Div

type scalar =
  | Col of Attr.t
  | Const of Value.t
  | Binop of binop * scalar * scalar

type agg_fn = Sum | Count | Min | Max | Avg

type agg = { fn : agg_fn; arg : scalar; alias : string }
(** One aggregate output: [fn] applied to [arg], exposed under [alias].
    COUNT(star) is represented as [Count] over [Const (Int 1)]. *)

val binop_to_string : binop -> string
val agg_fn_to_string : agg_fn -> string

val agg_fn_of_string : string -> agg_fn option
(** Case-insensitive; recognizes sum/count/min/max/avg. *)

val cols : scalar -> Attr.Set.t
(** All column references in the expression. *)

val map_cols : (Attr.t -> Attr.t) -> scalar -> scalar

val subst : scalar Attr.Map.t -> scalar -> scalar
(** Replace column references by whole expressions; used to rewrite
    predicates through projections. *)

val eval : (Attr.t -> Value.t) -> scalar -> Value.t
(** Evaluate under a row binding. Arithmetic over NULL is NULL. *)

val compare_scalar : scalar -> scalar -> int
val equal_scalar : scalar -> scalar -> bool

val pp_scalar : Format.formatter -> scalar -> unit
val pp_agg : Format.formatter -> agg -> unit
val scalar_to_string : scalar -> string
