(* Geo-locations (sites). A location is identified by a short name such
   as "L1" or "Europe". [Set] is the representation of execution and
   shipping traits throughout the optimizer. *)

type t = string

module Set = struct
  include Stdlib.Set.Make (String)

  let pp ppf s =
    Fmt.pf ppf "@[<h>{%a}@]" Fmt.(list ~sep:(any ", ") string) (elements s)

  let to_string s = Fmt.str "%a" pp s
end

let pp = Fmt.string
