test/test_tpch.ml: Alcotest Array Catalog Exec List Optimizer Option Plan Policy Printexc Relalg Sqlfront Storage String Tpch Value
