type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Date of int
  | Bool of bool

type ty = Tint | Tfloat | Tstr | Tdate | Tbool

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstr
  | Date _ -> Some Tdate
  | Bool _ -> Some Tbool

let ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstr -> "string"
  | Tdate -> "date"
  | Tbool -> "bool"

(* Rank used to order values of distinct, non-comparable types. Numeric
   values (Int/Float) share a rank so that mixed comparisons are
   numeric. *)
let rank = function
  | Null -> 0
  | Int _ | Float _ -> 1
  | Str _ -> 2
  | Date _ -> 3
  | Bool _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Null | Int _ | Float _ | Str _ | Date _ | Bool _), _ ->
    Int.compare (rank a) (rank b)

let equal a b = compare a b = 0
let is_null = function Null -> true | _ -> false

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash x
  | Float x ->
    (* Hash a float that is an exact integer like the integer, so that
       Int and Float keys that compare equal also hash equal. *)
    if Float.is_integer x && Float.abs x < 1e18 then Hashtbl.hash (int_of_float x)
    else Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash d
  | Bool b -> Hashtbl.hash b

let byte_width = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> String.length s + 4
  | Date _ -> 4
  | Bool _ -> 1

let num_op int_op float_op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> int_op x y
  | Float x, Float y -> float_op x y
  | Int x, Float y -> float_op (float_of_int x) y
  | Float x, Int y -> float_op x (float_of_int y)
  | _ -> Null

let add = num_op (fun x y -> Int (x + y)) (fun x y -> Float (x +. y))
let sub = num_op (fun x y -> Int (x - y)) (fun x y -> Float (x -. y))
let mul = num_op (fun x y -> Int (x * y)) (fun x y -> Float (x *. y))

let div =
  num_op
    (fun x y -> if y = 0 then Null else Float (float_of_int x /. float_of_int y))
    (fun x y -> if y = 0. then Null else Float (x /. y))

let to_float = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | Date d -> Some (float_of_int d)
  | Null | Str _ | Bool _ -> None

(* Days from the civil epoch 1970-01-01; the classic Howard Hinnant
   days_from_civil algorithm. *)
let days_from_civil ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let date_of_string s =
  match String.split_on_char '-' s with
  | [ ys; ms; ds ] -> (
    match int_of_string_opt ys, int_of_string_opt ms, int_of_string_opt ds with
    | Some y, Some m, Some d when m >= 1 && m <= 12 && d >= 1 && d <= 31 ->
      Some (days_from_civil ~y ~m ~d)
    | _ -> None)
  | _ -> None

let date_to_string z =
  let y, m, d = civil_from_days z in
  Printf.sprintf "%04d-%02d-%02d" y m d

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Int x -> Fmt.int ppf x
  | Float x -> Fmt.pf ppf "%.4f" x
  | Str s -> Fmt.pf ppf "'%s'" s
  | Date d -> Fmt.string ppf (date_to_string d)
  | Bool b -> Fmt.bool ppf b

let to_string v = Fmt.str "%a" pp v
