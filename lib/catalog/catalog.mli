(** The geo-distributed catalog: which tables exist, in which database
    at which location each (partition of a) table lives, and the network
    connecting the sites.

    The global schema is the union of local schemas (GAV mapping, §7.1
    of the paper): a global table maps to one local table per placement;
    a table with several placements is horizontally partitioned and is
    read as the union of its partitions (§7.5). *)

(** Re-exported submodules, so users write [Catalog.Network],
    [Catalog.Location], [Catalog.Table_def]. *)

module Location : sig
  type t = string
  (** A geo-location (site), e.g. ["L1"] or ["Europe"]. *)

  module Set : sig
    include Set.S with type elt = t

    val pp : Format.formatter -> t -> unit
    val to_string : t -> string
  end

  val pp : Format.formatter -> t -> unit
end

module Network : sig
  (** Simulated wide-area network following the paper's message cost
      model (§7.4): shipping [b] bytes from site [i] to [j] costs
      [alpha i j + beta i j * b] milliseconds.

      A network optionally carries a deterministic {!Fault.schedule}
      (attached with {!with_faults}): down links cost [infinity], slow
      links are inflated, and the {!site_up}/{!link_up} predicates let
      the site selector mask failed topology during degraded
      re-planning. *)

  exception Unknown_link of Location.t * Location.t
  (** Raised on a cost lookup for a link pair absent from the network
      when no explicit default was given to {!make} — unknown links are
      a configuration error, never a silent fallback cost. *)

  (** Seeded, fully deterministic fault schedules for chaos testing.
      The grammar, semantics and replay guarantees are documented in
      [docs/FAULTS.md]. *)
  module Fault : sig
    type event =
      | Link_down of Location.t * Location.t
          (** undirected: the link is dead in both directions *)
      | Site_down of Location.t
          (** every link touching the site is dead *)
      | Transient_drop of { from_loc : Location.t; to_loc : Location.t; p : float }
          (** each transfer attempt over the link is dropped with
              probability [p], decided deterministically from the
              schedule seed *)
      | Latency_mult of { from_loc : Location.t; to_loc : Location.t; factor : float }
          (** [alpha] and [beta] of the link are multiplied by [factor] *)
      | Replica_lag of { table : string; site : Location.t; lag_ms : float }
          (** the copy of [table] at [site] lags behind its primary; any
              positive lag marks the copy stale (unreadable) for the run *)

    type schedule

    val empty : schedule
    val make : ?seed:int -> event list -> schedule
    val is_empty : schedule -> bool
    val seed : schedule -> int
    val events : schedule -> event list

    val site_down : schedule -> Location.t -> bool

    val link_down : schedule -> from_loc:Location.t -> to_loc:Location.t -> bool
    (** Permanently impossible transfer (a [Link_down] event, or either
        endpoint [Site_down]). Local transfers are never down. *)

    val replica_stale : schedule -> table:string -> site:Location.t -> bool
    (** Is the copy of [table] at [site] stale — i.e. does the schedule
        carry a [Replica_lag] for it with positive lag? The optimizer's
        replica filter and the executors' scan-time freshness check both
        use this predicate, so planned-around and raised-at-runtime
        staleness agree. *)

    val latency_factor : schedule -> from_loc:Location.t -> to_loc:Location.t -> float
    (** Product of every matching [Latency_mult] (1.0 when none). *)

    val drop_probability : schedule -> from_loc:Location.t -> to_loc:Location.t -> float
    (** Per-attempt drop probability of the link: the complement of
        every matching [Transient_drop] letting the attempt through. *)

    val drops :
      schedule ->
      from_loc:Location.t ->
      to_loc:Location.t ->
      ship:int ->
      attempt:int ->
      bool
    (** Is the [attempt]-th try of the [ship]-th SHIP of a run dropped?
        A pure function of (seed, link, ship, attempt) — chaos runs
        replay bit-for-bit from the schedule alone. *)

    val parse : string -> (schedule, string) result
    (** Parse the fault-schedule DSL: one statement per line, [#]
        comments; statements are [seed N], [link-down A B],
        [site-down A], [drop A B P], [slow A B F],
        [replica-lag T S L]. *)

    val to_string : schedule -> string
    (** Render in the {!parse} grammar (round-trips). *)

    val pp : Format.formatter -> schedule -> unit
    val pp_event : Format.formatter -> event -> unit
  end

  type t

  val locations : t -> Location.t list
  val alpha : t -> Location.t -> Location.t -> float
  val beta : t -> Location.t -> Location.t -> float

  val ship_cost : t -> from_loc:Location.t -> to_loc:Location.t -> bytes:float -> float
  (** Local moves are free. Links the attached fault schedule marks
      down cost [infinity]; latency multipliers inflate the healthy
      cost. Raises {!Unknown_link} for a pair absent from the network
      when {!make} was given no [default]. *)

  val make :
    ?default:float * float ->
    locations:Location.t list ->
    links:(Location.t * Location.t * float * float) list ->
    unit ->
    t
  (** [(i, j, alpha, beta)] link parameters; links are symmetric unless
      both directions are listed. [default] is the explicit
      [(alpha, beta)] fallback for unlisted pairs; without it a lookup
      miss raises {!Unknown_link}. *)

  val uniform : locations:Location.t list -> alpha:float -> beta:float -> t
  (** Fully connected with uniform link parameters. *)

  val paper_default : unit -> t
  (** The paper's five regions (Europe, Africa, Asia, North America,
      Middle East as L1–L5) with representative ping/throughput-derived
      parameters. *)

  val faults : t -> Fault.schedule
  (** The attached fault schedule ({!Fault.empty} unless
      {!with_faults} was used). *)

  val with_faults : t -> Fault.schedule -> t
  (** A copy of the network with [schedule] attached — the masked
      topology the degradation path re-plans against. *)

  val site_up : t -> Location.t -> bool
  val link_up : t -> from_loc:Location.t -> to_loc:Location.t -> bool
end

module Table_def : sig
  (** Definition and statistics of one global table. Statistics drive
      cardinality estimation and are set independently of the physical
      data, so the cost model can mimic any scale factor. *)

  type col_stat = {
    distinct : int;
    width : int;  (** average serialized width in bytes *)
    lo : float option;  (** numeric minimum, when meaningful *)
    hi : float option;
  }

  val default_stat : col_stat

  type column = { cname : string; ty : Relalg.Value.ty; stat : col_stat }

  type t = {
    name : string;  (** global table name, lowercase *)
    columns : column list;
    key : string list;  (** primary key columns *)
    row_count : int;
    clustered : bool;  (** rows stored in primary-key order *)
  }

  val make :
    ?clustered:bool ->
    name:string ->
    columns:column list ->
    key:string list ->
    row_count:int ->
    unit ->
    t
  (** [clustered] (default false) declares that rows are physically
      stored in primary-key order, enabling sort-free merge joins. *)

  val column : ?stat:col_stat -> string -> Relalg.Value.ty -> column
  val col_names : t -> string list
  val find_col : t -> string -> column option
  val has_col : t -> string -> bool

  val is_key : t -> string list -> bool
  (** Do the given columns functionally determine the row (cover the
      primary key)? *)

  val row_width : t -> int
  val pp : Format.formatter -> t -> unit
end

type placement = {
  db : string;  (** local database name, e.g. "db-1" *)
  location : Location.t;
  fraction : float;  (** share of the global rows stored here *)
}

type entry = { def : Table_def.t; placements : placement list }

type replica = {
  site : Location.t;  (** where this copy lives *)
  lag_ms : float;
      (** declared staleness bound of the copy (descriptive metadata;
          actual staleness is scheduled through the fault DSL's
          [replica-lag] events) *)
  pin : Location.t option;
      (** jurisdiction pin: the copy may only be read at this site (a
          data-domiciling label; [None] = unpinned) *)
}
(** One physical copy of a (table, partition). The first replica of a
    set is always the primary placement itself. *)

type t

val make : network:Network.t -> (Table_def.t * placement list) list -> t
(** Raises [Invalid_argument] for tables without a placement. *)

val network : t -> Network.t
val locations : t -> Location.t list

val with_network : t -> Network.t -> t
(** The same catalog over a different network — used by the
    degradation path to re-plan against a fault-masked topology. The
    stamp is preserved: policy verdicts do not depend on link costs,
    so stamp-keyed caches remain sound. *)

val stamp : t -> int
(** Unique id assigned at [make] time. Catalogs are immutable, so the
    stamp soundly identifies one in process-wide cache keys. *)

val find_table : t -> string -> entry option
val table_def : t -> string -> Table_def.t
val placements : t -> string -> placement list
val is_partitioned : t -> string -> bool

val home_location : t -> string -> Location.t
(** Location of a table (first placement for partitioned tables). *)

val table_cols : t -> string -> string list
val all_tables : t -> entry list

val db_at : t -> Location.t -> string option
(** The database housed at a location (the paper assumes one per
    site). *)

val tables_at : t -> Location.t -> string list

val resolve : t -> table:string -> placement list

val with_replicas : t -> (string * int * replica list) list -> t
(** Attach replica sets, keyed by (table, partition index). Each set's
    first replica must be the partition's primary placement; every site
    and pin must be a network location; [lag_ms] must be non-negative.
    Raises [Invalid_argument] otherwise.

    Takes a {e fresh stamp}: replica assignment changes which plans the
    optimizer may produce, so stamp-keyed caches treat the result as a
    new catalog — this is how the replica-assignment fingerprint joins
    the plan-cache key (see [docs/REPLICA.md]). A catalog without
    attached replicas, or one whose sets are all singletons, is
    byte-for-byte equivalent to the unattached original everywhere but
    the stamp (the transparency contract). *)

val replicas : t -> table:string -> partition:int -> replica list
(** The replica set of a partition ([[]] when none was attached — the
    primary placement is then the only copy). *)

val has_replicas : t -> bool

val replica_map : t -> (string * int * replica list) list
(** Every attached replica set, for topology dumps. *)

val pp : Format.formatter -> t -> unit
