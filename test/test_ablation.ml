(* Ablation tests: each transformation rule's contribution, mirroring
   the paper's §6.4 completeness discussion. *)

let cat = Tpch.Schema.catalog ()
let cra = Tpch.Policies.catalog_of cat Tpch.Policies.CRA

let opt ?rules policies sql =
  Optimizer.Planner.optimize_sql ~mode:Optimizer.Memo.Compliant ?rules ~cat
    ~policies sql

let test_eager_agg_needed_for_completeness () =
  (* with all rules Q3 is legal; without aggregate pushdown the policy
     "pricing only aggregated towards L1" admits no plan *)
  (match opt cra Tpch.Queries.q3 with
  | Optimizer.Planner.Planned p ->
    Alcotest.(check bool) "compliant with rule" true (p.Optimizer.Planner.violations = [])
  | Optimizer.Planner.Rejected r -> Alcotest.failf "rejected with full rules: %s" r);
  match
    opt
      ~rules:
        { Optimizer.Memo.default_rules with Optimizer.Memo.eager_aggregation = false }
      cra Tpch.Queries.q3
  with
  | Optimizer.Planner.Rejected _ -> ()
  | Optimizer.Planner.Planned _ -> Alcotest.fail "should be incomplete without the rule"

let test_join_reorder_improves_cost () =
  let c_set = Tpch.Policies.catalog_of cat Tpch.Policies.C in
  let cost rules =
    match opt ~rules c_set Tpch.Queries.q5 with
    | Optimizer.Planner.Planned p -> p.Optimizer.Planner.ship_cost
    | Optimizer.Planner.Rejected r -> Alcotest.failf "rejected: %s" r
  in
  let full = cost Optimizer.Memo.default_rules in
  let no_assoc =
    cost { Optimizer.Memo.default_rules with Optimizer.Memo.join_associate = false }
  in
  Alcotest.(check bool) "reordering never hurts" true (full <= no_assoc +. 1e-6)

let test_union_pushdown_needed_for_partitions () =
  let pcat =
    Tpch.Schema.catalog ~partition_tables:[ "customer"; "orders" ] ~partition_count:3 ()
  in
  let ppol =
    Policy.Pcatalog.of_texts pcat
      (Tpch.Workload.gen_expressions ~seed:11 ~template:Tpch.Policies.CRA ~n:10 ())
  in
  (match
     Optimizer.Planner.optimize_sql ~mode:Optimizer.Memo.Compliant ~cat:pcat
       ~policies:ppol Tpch.Queries.q3
   with
  | Optimizer.Planner.Planned _ -> ()
  | Optimizer.Planner.Rejected r -> Alcotest.failf "full rules rejected: %s" r);
  match
    Optimizer.Planner.optimize_sql ~mode:Optimizer.Memo.Compliant
      ~rules:{ Optimizer.Memo.default_rules with Optimizer.Memo.union_pushdown = false }
      ~cat:pcat ~policies:ppol Tpch.Queries.q3
  with
  | Optimizer.Planner.Rejected _ -> ()
  | Optimizer.Planner.Planned _ ->
    Alcotest.fail "partition masking requires union pushdown"

let test_rules_do_not_change_semantics () =
  (* plans with and without associativity compute the same answer *)
  let data = Tpch.Datagen.generate ~sf:0.002 () in
  let db = Tpch.Datagen.load ~cat data in
  let exec rules =
    match opt ~rules (Tpch.Policies.catalog_of cat Tpch.Policies.T) Tpch.Queries.q5 with
    | Optimizer.Planner.Planned p ->
      (Exec.Interp.run ~network:(Catalog.network cat) ~db
         ~table_cols:(Catalog.table_cols cat) p.Optimizer.Planner.plan)
        .Exec.Interp.relation
    | Optimizer.Planner.Rejected r -> Alcotest.failf "rejected: %s" r
  in
  let sort rel =
    (* round floats: different join orders accumulate sums in different
       order *)
    Storage.Relation.rows rel |> Array.to_list |> List.map Array.to_list
    |> List.map
         (List.map (fun v ->
              match v with
              | Relalg.Value.Float f -> Relalg.Value.Float (Float.round (f *. 1e3) /. 1e3)
              | _ -> v))
    |> List.sort (List.compare Relalg.Value.compare)
  in
  let full = exec Optimizer.Memo.default_rules in
  let restricted =
    exec { Optimizer.Memo.default_rules with Optimizer.Memo.join_associate = false }
  in
  Alcotest.(check bool) "same answers" true (sort full = sort restricted)

(* Randomized oracle: for random ad-hoc queries (including aggregate
   queries) under a permissive generated policy set, the compliant
   optimizer (which may push aggregates past joins) and the traditional
   one (which never does) must compute identical answers. *)
let prop_random_queries_agree =
  let data = Tpch.Datagen.generate ~sf:0.002 () in
  let db = Tpch.Datagen.load ~cat data in
  let policies =
    Policy.Pcatalog.of_texts cat
      (Tpch.Workload.gen_expressions ~seed:1 ~template:Tpch.Policies.T ~n:8 ())
  in
  let canon rel =
    Storage.Relation.rows rel |> Array.to_list |> List.map Array.to_list
    |> List.map
         (List.map (fun v ->
              match v with
              | Relalg.Value.Float f ->
                Relalg.Value.Float (Float.round (f *. 1e3) /. 1e3)
              | _ -> v))
    |> List.sort (List.compare Relalg.Value.compare)
  in
  QCheck.Test.make ~name:"random queries: compliant = traditional answers" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let sql = List.hd (Tpch.Workload.gen_queries ~seed ~n:1 ()) in
      let exec mode =
        match Optimizer.Planner.optimize_sql ~mode ~cat ~policies sql with
        | Optimizer.Planner.Planned p ->
          Some
            (canon
               (Exec.Interp.run ~network:(Catalog.network cat) ~db
                  ~table_cols:(Catalog.table_cols cat) p.Optimizer.Planner.plan)
                 .Exec.Interp.relation)
        | Optimizer.Planner.Rejected _ -> None
      in
      match exec Optimizer.Memo.Compliant, exec Optimizer.Memo.Traditional with
      | Some a, Some b -> a = b
      | None, _ | _, None -> false (* T backbone guarantees plans exist *))

let () =
  Alcotest.run "ablation"
    [
      ( "ablation",
        [
          Alcotest.test_case "eager agg completeness" `Quick
            test_eager_agg_needed_for_completeness;
          Alcotest.test_case "join reorder cost" `Quick test_join_reorder_improves_cost;
          Alcotest.test_case "union pushdown" `Quick test_union_pushdown_needed_for_partitions;
          Alcotest.test_case "semantics invariant" `Quick test_rules_do_not_change_semantics;
          QCheck_alcotest.to_alcotest prop_random_queries_agree;
        ] );
    ]
