open Relalg
module Prng = Storage.Prng

let test_prng_deterministic () =
  let a = Prng.create ~seed:99 and b = Prng.create ~seed:99 in
  let xs = List.init 100 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check (list int)) "same stream" xs ys;
  let c = Prng.create ~seed:100 in
  let zs = List.init 100 (fun _ -> Prng.int c 1_000_000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_prng_bounds () =
  let g = Prng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 10_000 do
    let v = Prng.range g (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "range out of bounds: %d" v
  done;
  for _ = 1 to 1_000 do
    let f = Prng.float g 1.0 in
    if f < 0. || f >= 1.0001 then Alcotest.failf "float out of bounds: %f" f
  done

let test_prng_pick_k () =
  let g = Prng.create ~seed:5 in
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  let k = Prng.pick_k g 4 xs in
  Alcotest.(check int) "k elements" 4 (List.length k);
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare k));
  List.iter (fun x -> Alcotest.(check bool) "member" true (List.mem x xs)) k

let test_prng_distribution () =
  (* coarse uniformity: each bucket within 3x of expectation *)
  let g = Prng.create ~seed:123 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket reasonable" true (c > 300 && c < 3000))
    buckets

let schema = [ Attr.make ~rel:"t" ~name:"a"; Attr.make ~rel:"t" ~name:"b" ]

let rel rows =
  Storage.Relation.make ~schema
    ~rows:(Array.of_list (List.map (fun (a, b) -> [| Value.Int a; Value.Str b |]) rows))

let test_relation_basic () =
  let r = rel [ (1, "x"); (2, "y") ] in
  Alcotest.(check int) "cardinality" 2 (Storage.Relation.cardinality r);
  Alcotest.(check bool) "byte size positive" true (Storage.Relation.byte_size r > 0)

let test_relation_lookup () =
  let r = rel [ (1, "x") ] in
  let look = Storage.Relation.lookup_fn r in
  let row = (Storage.Relation.rows r).(0) in
  Alcotest.(check bool) "exact" true
    (Value.equal (look (Attr.make ~rel:"t" ~name:"a") row) (Value.Int 1));
  Alcotest.(check bool) "by bare name" true
    (Value.equal (look (Attr.unqualified "b") row) (Value.Str "x"));
  Alcotest.(check bool) "missing is null" true
    (Value.equal (look (Attr.unqualified "zzz") row) Value.Null)

let test_relation_arity_check () =
  match
    Storage.Relation.make ~schema ~rows:[| [| Value.Int 1 |] |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch must be rejected"

let test_database () =
  let db = Storage.Database.create () in
  Storage.Database.add db ~table:"t" (rel [ (1, "x") ]);
  Storage.Database.add db ~table:"t" ~partition:1 (rel [ (2, "y") ]);
  Alcotest.(check int) "total rows" 2 (Storage.Database.total_rows db);
  Alcotest.(check bool) "find p0" true (Storage.Database.find db ~table:"t" () <> None);
  Alcotest.(check bool) "find p1" true
    (Storage.Database.find db ~table:"t" ~partition:1 () <> None);
  Alcotest.(check bool) "missing" true
    (Storage.Database.find db ~table:"nope" () = None);
  (* case-insensitive table names *)
  Alcotest.(check bool) "case" true (Storage.Database.find db ~table:"T" () <> None)

let test_order_by_and_take () =
  let r = rel [ (3, "c"); (1, "a"); (2, "b"); (1, "z") ] in
  let sorted = Storage.Relation.order_by r [ (Attr.make ~rel:"t" ~name:"a", false) ] in
  let firsts =
    Array.to_list (Storage.Relation.rows sorted) |> List.map (fun row -> row.(0))
  in
  Alcotest.(check bool) "ascending" true
    (firsts = [ Value.Int 1; Value.Int 1; Value.Int 2; Value.Int 3 ]);
  (* stability: the two key-1 rows keep their original relative order *)
  let seconds =
    Array.to_list (Storage.Relation.rows sorted) |> List.map (fun row -> row.(1))
  in
  Alcotest.(check bool) "stable" true
    (List.filteri (fun i _ -> i < 2) seconds = [ Value.Str "a"; Value.Str "z" ]);
  let top2 = Storage.Relation.take sorted 2 in
  Alcotest.(check int) "take" 2 (Storage.Relation.cardinality top2);
  Alcotest.(check int) "take beyond size is identity" 4
    (Storage.Relation.cardinality (Storage.Relation.take sorted 100))

let test_split_independence () =
  let g = Prng.create ~seed:4 in
  let h = Prng.split g in
  let a = List.init 50 (fun _ -> Prng.int g 1000) in
  let b = List.init 50 (fun _ -> Prng.int h 1000) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let prop_pick_in_list =
  QCheck.Test.make ~name:"pick returns a member" ~count:200
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 20) small_int))
    (fun (seed, xs) ->
      let g = Prng.create ~seed in
      List.mem (Prng.pick g xs) xs)

let () =
  Alcotest.run "storage"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "pick_k" `Quick test_prng_pick_k;
          Alcotest.test_case "distribution" `Quick test_prng_distribution;
          QCheck_alcotest.to_alcotest prop_pick_in_list;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basic" `Quick test_relation_basic;
          Alcotest.test_case "lookup" `Quick test_relation_lookup;
          Alcotest.test_case "arity check" `Quick test_relation_arity_check;
          Alcotest.test_case "database" `Quick test_database;
          Alcotest.test_case "order_by/take" `Quick test_order_by_and_take;
          Alcotest.test_case "split" `Quick test_split_independence;
        ] );
    ]
