(* The geo-distributed catalog: which tables exist, in which database at
   which location each (partition of a) table lives, and the network
   connecting the sites. The global schema is the union of local schemas
   (GAV mapping, §7.1): a global table maps to one local table per
   placement; a table with several placements is horizontally
   partitioned and is read as the union of its partitions (§7.5). *)

(* [catalog.ml] doubles as the library's root module: re-export the
   sibling modules so users write [Catalog.Network], [Catalog.Location],
   [Catalog.Table_def]. *)
module Location = Location
module Network = Network
module Table_def = Table_def

module String_map = Map.Make (String)

type placement = {
  db : string;  (* local database name, e.g. "db-1" *)
  location : Location.t;
  fraction : float;  (* share of the global rows stored here *)
}

type entry = { def : Table_def.t; placements : placement list }

type replica = {
  site : Location.t;
  lag_ms : float;  (* declared staleness bound of the copy *)
  pin : Location.t option;  (* jurisdiction pin: copy only valid there *)
}

(* Replica sets are keyed per (table, partition index): the primary copy
   is always the partition's placement, replicas are the alternatives. *)
module Replica_map = Map.Make (struct
  type t = string * int

  let compare = compare
end)

type t = {
  tables : entry String_map.t;
  network : Network.t;
  replicas : replica list Replica_map.t;
  stamp : int;  (* unique per catalog; keys cross-catalog caches *)
}

(* Catalogs are immutable after [make], so a construction-time stamp
   identifies one soundly for the lifetime of the process. Atomic so
   racing domains can never issue duplicate stamps into the stamp-keyed
   caches. *)
let next_stamp = Atomic.make 0

let make ~network tables =
  let m =
    List.fold_left
      (fun m (def, placements) ->
        if placements = [] then invalid_arg "Catalog.make: table without placement";
        String_map.add def.Table_def.name { def; placements } m)
      String_map.empty tables
  in
  {
    tables = m;
    network;
    replicas = Replica_map.empty;
    stamp = Atomic.fetch_and_add next_stamp 1 + 1;
  }

let stamp t = t.stamp

let network t = t.network

(* Swap the network (e.g. for a fault-masked copy during degraded
   re-planning). The stamp is kept: policy verdicts depend on tables,
   policies and the location list — all unchanged — so caches keyed by
   the stamp stay sound across the swap. *)
let with_network t network = { t with network }
let locations t = Network.locations t.network

let find_table t name = String_map.find_opt (String.lowercase_ascii name) t.tables

let table_exn t name =
  match find_table t name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %s" name)

let table_def t name = (table_exn t name).def
let placements t name = (table_exn t name).placements

let is_partitioned t name = List.length (placements t name) > 1

(* Location of a non-partitioned table. *)
let home_location t name =
  match placements t name with
  | [ p ] -> p.location
  | ps -> (List.hd ps).location

let table_cols t name = Table_def.col_names (table_def t name)

let all_tables t = String_map.bindings t.tables |> List.map snd

(* The database housed at a location (the paper assumes one database per
   location); used to report which policy set applies. *)
let db_at t loc =
  String_map.fold
    (fun _ e acc ->
      List.fold_left
        (fun acc p -> if String.equal p.location loc then Some p.db else acc)
        acc e.placements)
    t.tables None

(* Tables (global names) whose placement includes [loc]. *)
let tables_at t loc =
  String_map.fold
    (fun name e acc ->
      if List.exists (fun p -> String.equal p.location loc) e.placements then name :: acc
      else acc)
    t.tables []
  |> List.rev

(* Resolve an aliased scan: all placements of the table. *)
let resolve t ~table = placements t table

(* ---- Replica sets -------------------------------------------------- *)

(* Attach replica sets. A fresh stamp is mandatory: replica assignment
   changes which plans the optimizer may produce, so every stamp-keyed
   cache (plan cache, verdict caches) must treat the result as a new
   catalog. An unattached catalog — and any single-replica set, whose
   only copy is the primary — behaves byte-for-byte like before. *)
let with_replicas t assignments =
  let locs = Network.locations t.network in
  let known l = List.exists (String.equal l) locs in
  let replicas =
    List.fold_left
      (fun m (table, partition, (rs : replica list)) ->
        let table = String.lowercase_ascii table in
        let ps = placements t table in
        if partition < 0 || partition >= List.length ps then
          invalid_arg
            (Printf.sprintf "Catalog.with_replicas: %s has no partition %d" table
               partition);
        (match rs with
        | [] -> invalid_arg "Catalog.with_replicas: empty replica set"
        | first :: _ ->
          let primary = (List.nth ps partition).location in
          if not (String.equal first.site primary) then
            invalid_arg
              (Printf.sprintf
                 "Catalog.with_replicas: first replica of %s/%d must be the \
                  primary placement %s (got %s)"
                 table partition primary first.site));
        List.iter
          (fun r ->
            if not (known r.site) then
              invalid_arg
                (Printf.sprintf "Catalog.with_replicas: unknown site %s" r.site);
            if r.lag_ms < 0. then
              invalid_arg "Catalog.with_replicas: negative lag_ms";
            match r.pin with
            | Some p when not (known p) ->
              invalid_arg
                (Printf.sprintf "Catalog.with_replicas: unknown pin %s" p)
            | _ -> ())
          rs;
        Replica_map.add (table, partition) rs m)
      t.replicas assignments
  in
  { t with replicas; stamp = Atomic.fetch_and_add next_stamp 1 + 1 }

let replicas t ~table ~partition =
  match Replica_map.find_opt (String.lowercase_ascii table, partition) t.replicas with
  | Some rs -> rs
  | None -> []

let has_replicas t = not (Replica_map.is_empty t.replicas)

let replica_map t =
  Replica_map.fold (fun (table, partition) rs acc -> (table, partition, rs) :: acc)
    t.replicas []
  |> List.rev

let pp ppf t =
  String_map.iter
    (fun _ e ->
      Fmt.pf ppf "%a @@ %a@."
        Table_def.pp e.def
        Fmt.(list ~sep:comma (using (fun p -> p.db ^ "/" ^ p.location) string))
        e.placements)
    t.tables
