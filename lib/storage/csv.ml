(* Minimal CSV reading/writing for bringing external data into the
   engine. Quoting follows RFC 4180: fields may be wrapped in double
   quotes, embedded quotes are doubled; separators are commas, records
   newlines. Values are parsed according to declared column types; empty
   fields read as NULL.

   Parsing is streaming: an incremental char machine emits one record
   at a time and the loader lands values directly in typed
   [Column.Builder]s, so a file is never materialized as boxed
   [Value.t] rows (or even held in memory at once — [load_file] reads
   in 64K chunks). *)

open Relalg

exception Error of string

let fail fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

(* --- incremental record machine ----------------------------------

   Feed chunks of input in any split; [finish] flushes a trailing
   record that lacks a final newline. Quote state is explicit (instead
   of one-character lookahead) so doubled quotes survive chunk
   boundaries. *)

type qstate = Plain | Quoted | Quote_seen  (* saw '"' inside quotes *)

type machine = {
  emit : string list -> unit;
  buf : Buffer.t;
  mutable fields : string list;  (* reversed *)
  mutable q : qstate;
}

let machine ~emit = { emit; buf = Buffer.create 32; fields = []; q = Plain }

let flush_field m =
  m.fields <- Buffer.contents m.buf :: m.fields;
  Buffer.clear m.buf

let flush_record m =
  flush_field m;
  let r = List.rev m.fields in
  m.fields <- [];
  m.emit r

let feed_char m c =
  let plain () =
    match c with
    | '"' -> m.q <- Quoted
    | ',' -> flush_field m
    | '\r' -> ()
    | '\n' -> flush_record m
    | c -> Buffer.add_char m.buf c
  in
  match m.q with
  | Quoted -> if c = '"' then m.q <- Quote_seen else Buffer.add_char m.buf c
  | Quote_seen ->
    if c = '"' then begin
      Buffer.add_char m.buf '"';
      m.q <- Quoted
    end
    else begin
      m.q <- Plain;
      plain ()
    end
  | Plain -> plain ()

let feed m s len =
  for i = 0 to len - 1 do
    feed_char m s.[i]
  done

let finish m = if Buffer.length m.buf > 0 || m.fields <> [] then flush_record m

(* Split one CSV document into records of fields. *)
let parse_fields (s : string) : string list list =
  let records = ref [] in
  let m = machine ~emit:(fun r -> records := r :: !records) in
  feed m s (String.length s);
  finish m;
  List.rev !records

let value_of_string (ty : Value.ty) (s : string) : Value.t =
  let s = String.trim s in
  if s = "" then Value.Null
  else
    match ty with
    | Value.Tint -> (
      match int_of_string_opt s with
      | Some i -> Value.Int i
      | None -> fail "not an integer: %S" s)
    | Value.Tfloat -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> fail "not a float: %S" s)
    | Value.Tstr -> Value.Str s
    | Value.Tdate -> (
      match Value.date_of_string s with
      | Some d -> Value.Date d
      | None -> fail "not an ISO date: %S" s)
    | Value.Tbool -> (
      match String.lowercase_ascii s with
      | "true" | "t" | "1" -> Value.Bool true
      | "false" | "f" | "0" -> Value.Bool false
      | _ -> fail "not a boolean: %S" s)

(* Shared loader core: run [source] (which feeds records through a
   machine) and land every record straight into per-column typed
   builders. *)
let build ~(schema : Attr.t list) ~(types : Value.ty list) ~header
    ~(source : (string list -> unit) -> unit) : Relation.t =
  let arity = List.length schema in
  if List.length types <> arity then fail "schema/types arity mismatch";
  let tys = Array.of_list types in
  let builders = Array.map Column.Builder.create tys in
  let nrows = ref 0 in
  let pending_header = ref header in
  let emit fields =
    if !pending_header then pending_header := false
    else begin
      incr nrows;
      let nf = List.length fields in
      if nf <> arity then
        fail "record %d has %d fields, expected %d" !nrows nf arity;
      List.iteri
        (fun j f -> Column.Builder.add builders.(j) (value_of_string tys.(j) f))
        fields
    end
  in
  source emit;
  Relation.of_cols ~schema ~card:!nrows (Array.map Column.Builder.finish builders)

(* [parse ~schema ~types ?header text]: rows typed per column. With
   [header] (default true) the first record is skipped. *)
let parse ~schema ~types ?(header = true) (text : string) : Relation.t =
  build ~schema ~types ~header ~source:(fun emit ->
      let m = machine ~emit in
      feed m text (String.length text);
      finish m)

let chunk_size = 65536

let load_file ~schema ~types ?(header = true) path : Relation.t =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  build ~schema ~types ~header ~source:(fun emit ->
      let m = machine ~emit in
      let chunk = Bytes.create chunk_size in
      let rec go () =
        let n = input ic chunk 0 chunk_size in
        if n > 0 then begin
          feed m (Bytes.sub_string chunk 0 n) n;
          go ()
        end
      in
      go ();
      finish m)
