(* Per-tenant admission control on the simulated clock: max in-flight
   statements and a post-paid SHIP-byte budget per fixed window. See
   admission.mli and docs/SERVICE.md. *)

type on_deny = Reject | Queue

type quota = {
  max_in_flight : int option;
  ship_budget_bytes : int option;
  window_ms : float;
  on_deny : on_deny;
}

let unlimited =
  { max_in_flight = None; ship_budget_bytes = None; window_ms = 1000.; on_deny = Reject }

type reason =
  | In_flight of { tenant : string; in_flight : int; limit : int }
  | Ship_budget of { tenant : string; used : int; budget : int; window_ms : float }

let reason_to_string = function
  | In_flight { tenant; in_flight; limit } ->
    Printf.sprintf "tenant %s at max in-flight (%d/%d)" tenant in_flight limit
  | Ship_budget { tenant; used; budget; window_ms } ->
    Printf.sprintf "tenant %s over SHIP budget (%d/%d bytes this %gms window)"
      tenant used budget window_ms

type decision = Admit | Deny of { reason : reason; retry_at : float option }

type tenant_state = {
  quota : quota;
  mutable in_flight : float list;  (* completion times, unsorted *)
  mutable window_start : float;
  mutable window_bytes : int;
}

type t = (string, tenant_state) Hashtbl.t

let c_admitted = Obs.Metrics.counter "cgqp_admission_admitted_total"

let c_denied_inflight =
  Obs.Metrics.counter ~labels:[ ("reason", "in_flight") ] "cgqp_admission_denied_total"

let c_denied_budget =
  Obs.Metrics.counter ~labels:[ ("reason", "ship_budget") ] "cgqp_admission_denied_total"

let create () : t = Hashtbl.create 8

let state (t : t) tenant =
  match Hashtbl.find_opt t tenant with
  | Some s -> s
  | None ->
    let s =
      { quota = unlimited; in_flight = []; window_start = 0.; window_bytes = 0 }
    in
    Hashtbl.add t tenant s;
    s

let set_quota (t : t) ~tenant quota =
  let s = state t tenant in
  Hashtbl.replace t tenant { s with quota }

let quota_of (t : t) ~tenant = (state t tenant).quota

(* Advance the byte window to the one containing [now]; a roll resets
   the spent bytes. Whole windows are skipped in one step so idle
   tenants stay O(1). *)
let roll_window s ~now =
  let w = s.quota.window_ms in
  if w > 0. && now >= s.window_start +. w then begin
    let skipped = Float.of_int (int_of_float ((now -. s.window_start) /. w)) in
    s.window_start <- s.window_start +. (skipped *. w);
    s.window_bytes <- 0
  end

let purge_completions s ~now =
  s.in_flight <- List.filter (fun f -> f > now) s.in_flight

let admit (t : t) ~tenant ~now =
  let s = state t tenant in
  purge_completions s ~now;
  roll_window s ~now;
  let in_flight_deny =
    match s.quota.max_in_flight with
    | Some limit when List.length s.in_flight >= limit ->
      let retry_at =
        (* the earliest completion frees a slot; a non-positive limit
           can never admit, so the denial is terminal *)
        if limit <= 0 then None
        else
          match s.in_flight with
          | [] -> None
          | f :: fs -> Some (List.fold_left Float.min f fs)
      in
      Some
        (Deny
           {
             reason = In_flight { tenant; in_flight = List.length s.in_flight; limit };
             retry_at;
           })
    | _ -> None
  in
  match in_flight_deny with
  | Some d ->
    Obs.Metrics.inc c_denied_inflight;
    d
  | None -> (
    match s.quota.ship_budget_bytes with
    | Some budget when s.window_bytes >= budget ->
      Obs.Metrics.inc c_denied_budget;
      let retry_at =
        (* a fresh window lifts the denial — unless nothing could ever
           fit in one *)
        if budget <= 0 then None else Some (s.window_start +. s.quota.window_ms)
      in
      Deny
        {
          reason =
            Ship_budget
              { tenant; used = s.window_bytes; budget; window_ms = s.quota.window_ms };
          retry_at;
        }
    | _ ->
      Obs.Metrics.inc c_admitted;
      Admit)

let started (t : t) ~tenant ~finish_ms =
  let s = state t tenant in
  s.in_flight <- finish_ms :: s.in_flight

let charge (t : t) ~tenant ~now ~bytes =
  let s = state t tenant in
  roll_window s ~now;
  s.window_bytes <- s.window_bytes + bytes
