(** Deterministic multi-session scheduler: interleaves N concurrent
    sessions on the simulated clock.

    Each session executes its script actions in order, closed-loop (a
    session submits its next statement when the previous one
    completes); different sessions overlap in simulated time, which is
    what admission control's in-flight and per-window limits bite on.
    The discrete-event loop always picks the session with the smallest
    ready time; ties are broken by a splitmix64 generator seeded from
    the run seed — the same seeding discipline as the fault scheduler —
    so contended runs replay bit-for-bit from [--seed] and compose with
    the chaos suite ([env.faults]).

    Statement latency is queueing delay plus the executed plan's
    simulated makespan; policy mutations and waits take zero simulated
    time. Admission denials follow the tenant's [on_deny] policy:
    [Queue] re-submits at the denial's [retry_at] (up to
    {!max_queue_retries} attempts), [Reject] records a [Denied]
    outcome. *)

type env = {
  catalog : Catalog.t;
  database : Storage.Database.t option;
      (** attached to every session; [None] makes every submit fail
          with [`Rejected] (optimize-only scripts are still useful for
          cache experiments) *)
  cache : Cgqp.Plan_cache.t option;  (** shared by all sessions *)
  template : bool option;
      (** [Some b] forces template-level caching on/off for every
          session; [None] (default) leaves each session's
          [CGQP_TEMPLATE_CACHE]-derived default in place *)
  feedback : Cgqp.Feedback.t option;
      (** shared cardinality-feedback store: every [Done] statement's
          scans are observed, and a fold installs the corrected catalog
          into {e all} sessions (stamp lockstep for the shared cache)
          and bumps the shared cache's epoch exactly once. Forces
          [domains = 1]: catalog stamps change mid-run, which would
          invalidate pass-1 memos wholesale. *)
  faults : Catalog.Network.Fault.schedule;
  retry : Exec.Interp.retry_policy;
  engine : Exec.Engine.t;
      (** executor every session runs on (reference interpreter or the
          compiling engine — byte-identical, see [docs/EXECUTOR.md]) *)
  resolve_query : string -> string;
      (** maps a submitted name (e.g. [Q3]) to SQL; identity for plain
          SQL *)
  resolve_policy_set : string -> string list option;
      (** maps a [set-policies] name (e.g. [CR]) to policy texts *)
}

val env :
  ?database:Storage.Database.t ->
  ?cache:Cgqp.Plan_cache.t ->
  ?template:bool ->
  ?feedback:Cgqp.Feedback.t ->
  ?faults:Catalog.Network.Fault.schedule ->
  ?retry:Exec.Interp.retry_policy ->
  ?engine:Exec.Engine.t ->
  ?resolve_query:(string -> string) ->
  ?resolve_policy_set:(string -> string list option) ->
  catalog:Catalog.t ->
  unit ->
  env
(** Environment with identity resolvers, no cache and no faults unless
    given; [engine] defaults to {!Exec.Engine.default} (honoring
    [CGQP_ENGINE]). *)

val max_queue_retries : int
(** Re-admission attempts before a queued statement is recorded as
    denied (100). *)

type cache_flag =
  | Hit  (** served entirely from the plan cache *)
  | Miss  (** at least one optimizer invocation ran *)
  | Off  (** no cache attached *)

type outcome =
  | Done of {
      rows : int;
      shipped_bytes : int;
      makespan_ms : float;
      failovers : int;
      cache : cache_flag;
      plan_sig : string;  (** digest of the executed plan's rendering *)
      result_sig : string;  (** digest of the result relation's CSV *)
    }
  | Failed of Cgqp.error
  | Denied of { reason : Admission.reason; retries : int }

type stmt_record = {
  sid : string;
  tenant : string;
  seq : int;  (** statement index within the session, 0-based *)
  sql : string;  (** resolved SQL *)
  submitted_ms : float;  (** first admission attempt *)
  started_ms : float;  (** admission time ([= submitted_ms] unless queued) *)
  finished_ms : float;
  outcome : outcome;
}

type report = {
  seed : int;
  statements : stmt_record list;  (** in execution order *)
  makespan_ms : float;  (** when the last session went idle *)
  ok : int;
  rejected : int;
  unsatisfiable : int;
  denied : int;
  failed : int;  (** parse/bind errors *)
  cache : Cgqp.Plan_cache.stats option;
      (** the shared cache's counter deltas over this run *)
  p50_ms : float;  (** latency percentiles over [Done] statements (0 if none) *)
  p95_ms : float;
}

val run : env:env -> ?seed:int -> ?domains:int -> Script.t -> report
(** Execute a workload script. The effective seed is [seed] if given,
    else the script's own [seed] statement, else
    {!Storage.Seed.resolve} — and it is reported back in
    [report.seed]. Raises [Invalid_argument] on unresolvable policy
    sets or malformed policy texts (script bugs, not workload
    outcomes).

    [domains] (default {!Pool.default_domains}, i.e. [CGQP_DOMAINS] or
    1) sets the width of the execution pool. With [domains = 1] the
    loop runs statements inline, exactly as before multicore. With
    [domains > 1] the scheduler runs the two-pass pipeline of
    [docs/PARALLELISM.md]: sessions are first replayed in parallel on a
    {!Pool} of domains, recording each statement's outcome with
    {!Cgqp.run_recorded}; then the discrete-event loop runs unchanged —
    same simulated clock, same splitmix64 tie-breaks, same admission
    decisions — serving each admitted statement from its memo with
    {!Cgqp.run_replay}. The report, every statement record (digests,
    latencies, cache flags) and the shared plan cache's statistics are
    byte-identical for every [domains] value and seed; only real
    wall-clock time changes. *)

val hit_rate : report -> float
(** [hits / (hits + misses)] of the run's cache deltas (0 with no cache
    or no lookups). Template hits count as hits. *)

val template_hit_rate : report -> float
(** [template_hits / (template_hits + template_misses)] of the run's
    cache deltas (0 with no cache or no template lookups). *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable summary: per-statement lines, then aggregates. *)

val report_to_json : report -> Obs.Json.t
