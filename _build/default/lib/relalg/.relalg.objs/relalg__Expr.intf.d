lib/relalg/expr.mli: Attr Format Value
