(** Execution engine selection.

    Three engines execute placed physical plans: the tree-walking
    reference interpreter ({!Interp}), the compiling executor
    ({!Compile}) and the vectorized executor ({!Vector}). They are
    byte-identical on results, SHIP accounting, profiles and
    observability output (see [docs/EXECUTOR.md]); the compiled engine
    is the default. Select per session via [Cgqp.set_engine], per
    process via the [CGQP_ENGINE] environment variable, or per CLI
    invocation with [--engine]. *)

type t = Reference | Compiled | Vector

val to_string : t -> string
(** ["reference"] / ["compiled"] / ["vector"]. *)

val of_string : string -> t option
(** Case-insensitive; recognizes ["reference"]/["interp"]/
    ["interpreter"], ["compiled"]/["compile"] and
    ["vector"]/["vectorized"]. *)

val default : unit -> t
(** The process default: [CGQP_ENGINE] if set (raising
    [Invalid_argument] on an unrecognized value), else {!Compiled}. *)

val run :
  ?engine:t ->
  ?faults:Catalog.Network.Fault.schedule ->
  ?retry:Runtime.retry_policy ->
  ?budget:int ->
  network:Catalog.Network.t ->
  db:Storage.Database.t ->
  table_cols:(string -> string list) ->
  Pplan.t ->
  Runtime.result
(** Execute a plan on the chosen engine (default {!Compiled} — note,
    {e not} {!default}, which reads the environment; session layers
    resolve the env default once at session creation). Signature and
    semantics are those of {!Interp.run}. *)
