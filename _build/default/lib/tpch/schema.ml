(* The TPC-H schema (column names unprefixed, as in the paper's
   Table 3), its catalog statistics as a function of the scale factor,
   and the five-location distribution of Table 2. *)

open Catalog.Table_def

let day s = float_of_int (Option.get (Relalg.Value.date_of_string s))

let stat ?(width = 8) ?lo ?hi distinct = { distinct; width; lo; hi }

(* Row counts at scale factor [sf] (the classic dbgen cardinalities). *)
let rows_at sf = function
  | "region" -> 5
  | "nation" -> 25
  | "supplier" -> max 5 (int_of_float (10_000. *. sf))
  | "customer" -> max 10 (int_of_float (150_000. *. sf))
  | "part" -> max 10 (int_of_float (200_000. *. sf))
  | "partsupp" -> max 20 (int_of_float (800_000. *. sf))
  | "orders" -> max 20 (int_of_float (1_500_000. *. sf))
  | "lineitem" -> max 40 (int_of_float (6_000_000. *. sf))
  | t -> invalid_arg ("Tpch.rows_at: " ^ t)

let tables ~sf : Catalog.Table_def.t list =
  let r = rows_at sf in
  (* the generator emits rows in primary-key order: clustered storage *)
  let vt = Relalg.Value.Tstr and vi = Relalg.Value.Tint and vf = Relalg.Value.Tfloat in
  let vd = Relalg.Value.Tdate in
  [
    make ~clustered:true ~name:"region" ~key:[ "regionkey" ] ~row_count:(r "region") ()
      ~columns:
        [
          column ~stat:(stat 5) "regionkey" vi;
          column ~stat:(stat ~width:12 5) "name" vt;
          column ~stat:(stat ~width:32 5) "comment" vt;
        ];
    make ~clustered:true ~name:"nation" ~key:[ "nationkey" ] ~row_count:(r "nation") ()
      ~columns:
        [
          column ~stat:(stat 25) "nationkey" vi;
          column ~stat:(stat ~width:16 25) "name" vt;
          column ~stat:(stat 5) "regionkey" vi;
          column ~stat:(stat ~width:32 25) "comment" vt;
        ];
    make ~clustered:true ~name:"supplier" ~key:[ "suppkey" ] ~row_count:(r "supplier") ()
      ~columns:
        [
          column ~stat:(stat (r "supplier")) "suppkey" vi;
          column ~stat:(stat ~width:18 (r "supplier")) "name" vt;
          column ~stat:(stat ~width:24 (r "supplier")) "address" vt;
          column ~stat:(stat 25) "nationkey" vi;
          column ~stat:(stat ~width:15 (r "supplier")) "phone" vt;
          column ~stat:(stat ~lo:(-999.) ~hi:9999. (r "supplier" / 10)) "acctbal" vf;
          column ~stat:(stat ~width:40 (r "supplier")) "comment" vt;
        ];
    make ~clustered:true ~name:"part" ~key:[ "partkey" ] ~row_count:(r "part") ()
      ~columns:
        [
          column ~stat:(stat (r "part")) "partkey" vi;
          column ~stat:(stat ~width:32 (r "part" / 10)) "name" vt;
          column ~stat:(stat ~width:14 5) "mfgr" vt;
          column ~stat:(stat ~width:10 25) "brand" vt;
          column ~stat:(stat ~width:20 150) "type" vt;
          column ~stat:(stat ~lo:1. ~hi:50. 50) "size" vi;
          column ~stat:(stat ~width:10 40) "container" vt;
          column ~stat:(stat ~lo:900. ~hi:2000. 1000) "retailprice" vf;
          column ~stat:(stat ~width:18 (r "part")) "comment" vt;
        ];
    make ~clustered:true ~name:"partsupp" ~key:[ "partkey"; "suppkey" ] ~row_count:(r "partsupp") ()
      ~columns:
        [
          column ~stat:(stat (r "part")) "partkey" vi;
          column ~stat:(stat (r "supplier")) "suppkey" vi;
          column ~stat:(stat ~lo:1. ~hi:9999. 9999) "availqty" vi;
          column ~stat:(stat ~lo:1. ~hi:1000. 1000) "supplycost" vf;
          column ~stat:(stat ~width:60 (r "partsupp")) "comment" vt;
        ];
    make ~clustered:true ~name:"customer" ~key:[ "custkey" ] ~row_count:(r "customer") ()
      ~columns:
        [
          column ~stat:(stat (r "customer")) "custkey" vi;
          column ~stat:(stat ~width:18 (r "customer")) "name" vt;
          column ~stat:(stat ~width:24 (r "customer")) "address" vt;
          column ~stat:(stat 25) "nationkey" vi;
          column ~stat:(stat ~width:15 (r "customer")) "phone" vt;
          column ~stat:(stat ~lo:(-999.) ~hi:9999. (r "customer" / 10)) "acctbal" vf;
          column ~stat:(stat ~width:10 5) "mktsegment" vt;
          column ~stat:(stat ~width:40 (r "customer")) "comment" vt;
        ];
    make ~clustered:true ~name:"orders" ~key:[ "orderkey" ] ~row_count:(r "orders") ()
      ~columns:
        [
          column ~stat:(stat (r "orders")) "orderkey" vi;
          column ~stat:(stat (r "customer")) "custkey" vi;
          column ~stat:(stat ~width:1 3) "orderstatus" vt;
          column ~stat:(stat ~lo:800. ~hi:500_000. (r "orders" / 4)) "totalprice" vf;
          column
            ~stat:(stat ~width:4 ~lo:(day "1992-01-01") ~hi:(day "1998-08-02") 2400)
            "orderdate" vd;
          column ~stat:(stat ~width:15 5) "orderpriority" vt;
          column ~stat:(stat ~width:15 1000) "clerk" vt;
          column ~stat:(stat 1) "shippriority" vi;
          column ~stat:(stat ~width:48 (r "orders")) "comment" vt;
        ];
    make ~clustered:true ~name:"lineitem" ~key:[ "orderkey"; "linenumber" ] ~row_count:(r "lineitem") ()
      ~columns:
        [
          column ~stat:(stat (r "orders")) "orderkey" vi;
          column ~stat:(stat (r "part")) "partkey" vi;
          column ~stat:(stat (r "supplier")) "suppkey" vi;
          column ~stat:(stat ~lo:1. ~hi:7. 7) "linenumber" vi;
          column ~stat:(stat ~lo:1. ~hi:50. 50) "quantity" vi;
          column ~stat:(stat ~lo:900. ~hi:105_000. (r "lineitem" / 10)) "extendedprice" vf;
          column ~stat:(stat ~lo:0. ~hi:0.1 11) "discount" vf;
          column ~stat:(stat ~lo:0. ~hi:0.08 9) "tax" vf;
          column ~stat:(stat ~width:1 3) "returnflag" vt;
          column ~stat:(stat ~width:1 2) "linestatus" vt;
          column
            ~stat:(stat ~width:4 ~lo:(day "1992-01-02") ~hi:(day "1998-12-01") 2500)
            "shipdate" vd;
          column
            ~stat:(stat ~width:4 ~lo:(day "1992-01-31") ~hi:(day "1998-10-31") 2450)
            "commitdate" vd;
          column
            ~stat:(stat ~width:4 ~lo:(day "1992-01-03") ~hi:(day "1998-12-31") 2550)
            "receiptdate" vd;
          column ~stat:(stat ~width:17 4) "shipinstruct" vt;
          column ~stat:(stat ~width:7 7) "shipmode" vt;
          column ~stat:(stat ~width:27 (r "lineitem")) "comment" vt;
        ];
  ]

(* Table 2: distribution of the TPC-H tables among five locations. *)
let distribution : (string * string * Catalog.Location.t) list =
  [
    ("customer", "db-1", "L1");
    ("orders", "db-1", "L1");
    ("supplier", "db-2", "L2");
    ("partsupp", "db-2", "L2");
    ("part", "db-3", "L3");
    ("lineitem", "db-4", "L4");
    ("nation", "db-5", "L5");
    ("region", "db-5", "L5");
  ]

(* The standard catalog: one placement per table, per Table 2.
   [partition_tables] spreads the named tables across the first
   [partition_count] locations (default: all) in equal fractions — the
   §7.5 setup. *)
let catalog ?(sf = 10.0) ?(partition_tables = []) ?partition_count ?network () : Catalog.t =
  let network = match network with Some n -> n | None -> Catalog.Network.paper_default () in
  let locations = Catalog.Network.locations network in
  let part_locs =
    match partition_count with
    | None -> locations
    | Some k -> List.filteri (fun i _ -> i < k) locations
  in
  let placements name db home =
    if List.mem name partition_tables then
      List.map
        (fun l ->
          { Catalog.db; location = l; fraction = 1.0 /. float_of_int (List.length part_locs) })
        part_locs
    else [ { Catalog.db; location = home; fraction = 1.0 } ]
  in
  let defs = tables ~sf in
  Catalog.make ~network
    (List.map
       (fun (name, db, home) ->
         let def = List.find (fun d -> String.equal d.name name) defs in
         (def, placements name db home))
       distribution)
