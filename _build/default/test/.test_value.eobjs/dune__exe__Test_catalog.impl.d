test/test_catalog.ml: Alcotest Catalog List Relalg String Tpch
