lib/optimizer/stats.ml: Attr Catalog Expr Float List Plan Pred Relalg String Value
