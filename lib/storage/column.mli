(** Column-major storage: one typed, unboxed array per column plus a
    packed, [Bytes]-backed null bitmap.

    This is the physical layout behind {!Relation.t} and the data the
    vectorized engine's kernels run over. A column whose non-null
    values share one {!Relalg.Value.ty} is stored unboxed (with NULL
    slots marked in the bitmap); heterogeneous, empty or all-NULL
    columns fall back to a boxed [Value.t array]. Columns are
    immutable after construction. *)

open Relalg

(** The physical payload. Pattern-match on this in engine fast paths;
    always honor the null bitmap alongside it. *)
type data =
  | Ints of int array
  | Floats of float array
  | Strs of string array
  | Dates of int array
  | Bools of Bytes.t  (** one byte per row: 0 = false *)
  | Values of Value.t array  (** heterogeneous / all-NULL fallback; NULLs inline *)

type t = private {
  data : data;
  nulls : Bytes.t;
      (** packed bitmap, bit [i] = row [i] is NULL; [Bytes.empty] = no
          nulls (always the case for [Values]) *)
  mutable bytes : int;  (** memoized {!byte_size}; [-1] = not yet computed *)
}

val length : t -> int
val has_nulls : t -> bool

val is_null : t -> int -> bool
(** Bitmap test only — a [Values] column stores its NULLs inline, so
    use {!get} (or check the variant) when the fallback matters. *)

val get : t -> int -> Value.t
(** Boxed read of row [i]; NULL slots read as [Value.Null] whichever
    representation holds them. *)

val of_values : Value.t array -> t
(** Sniff the uniform type and build the typed representation, falling
    back to boxed values for heterogeneous/empty/all-NULL input. The
    input array is not retained. *)

val of_value_array : Value.t array -> t
(** Wrap an array as a boxed column without sniffing (retains the
    array — do not mutate it afterwards). For freshly computed
    per-row results where a sniffing pass is not worth it. *)

val of_values_typed : Value.ty -> Value.t array -> t
(** Typed build for a column declared as [ty] (e.g. from a CSV schema):
    values of another type are stored as NULL. *)

val to_values : t -> Value.t array
(** Materialize the boxed row view of this column. *)

val byte_size : t -> int
(** Serialized size: the sum of [Value.byte_width] over all rows,
    memoized; O(1) for fixed-width columns without nulls. *)

val gather : t -> int array -> t
(** [gather c ixs] selects rows by index — the materialization
    primitive behind selection vectors, sort permutations and join
    outputs. Typed columns stay typed. *)

val concat : t list -> t
(** Row-wise concatenation (UNION ALL); same-variant inputs stay
    typed. *)

(** Incremental typed column construction for streaming loaders (the
    CSV reader feeds parsed values row-by-row without materializing the
    whole file as boxed rows first). Same NULL discipline as
    {!of_values_typed}: a value of another type is stored as NULL. *)
module Builder : sig
  type column := t

  type t

  val create : ?hint:int -> Value.ty -> t
  (** Fresh builder for a column of type [ty]; [hint] pre-sizes the
      buffer (default 1024). *)

  val add : t -> Value.t -> unit
  (** Append one value; amortized O(1). *)

  val length : t -> int

  val finish : t -> column
  (** Seal into an immutable column — identical to what
      [of_values_typed ty] over the same boxed values would build. The
      builder must not be reused afterwards. *)
end
